module dismem

go 1.22
