package dismem

// Reproduction acceptance suite: each test asserts one qualitative claim of
// the paper at the Bench preset scale. These are the checks a reviewer
// would run to confirm the reproduction still reproduces after a change —
// they test *shape* (who wins, where bars go missing, how trends move), not
// absolute numbers.

import (
	"math"
	"testing"

	"dismem/internal/experiments"
	"dismem/internal/policy"
)

func accPreset() experiments.Preset { return experiments.Bench() }

// Claim (§4.1): with accurate requests and no large jobs, the disaggregated
// policies maintain full performance at 37 % memory while the baseline
// needs 50 %.
func TestClaimSmallJobsFullThroughputAtLowProvisioning(t *testing.T) {
	p := accPreset()
	g, err := experiments.RunFig5Panel(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range g.Rows {
		if r.MemPct != 37 {
			continue
		}
		if math.IsNaN(r.Static) || math.IsNaN(r.Dynamic) {
			t.Fatal("disaggregated policies infeasible at 37%")
		}
		if r.Static < 0.9 || r.Dynamic < 0.9 {
			t.Fatalf("at 37%% memory: static %.3f dynamic %.3f, want ≥0.9", r.Static, r.Dynamic)
		}
	}
}

// Claim (§4.1): with +60 % overestimation, some jobs cannot be executed by
// the baseline policy at all (missing bars), while both disaggregated
// policies still run everything at 100 % memory.
func TestClaimBaselineInfeasibleUnderOverestimation(t *testing.T) {
	p := accPreset()
	g, err := experiments.RunFig5Panel(p, 0.5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range g.Rows {
		if !math.IsNaN(r.Baseline) {
			t.Fatalf("baseline feasible at %d%% despite +60%% overestimation on large jobs", r.MemPct)
		}
	}
	last := g.Rows[len(g.Rows)-1]
	if math.IsNaN(last.Static) || math.IsNaN(last.Dynamic) {
		t.Fatal("disaggregated policies infeasible at 100% memory")
	}
}

// Claim (§4.1, §4.4): the dynamic policy's advantage grows as the system is
// underprovisioned — the static−dynamic gap at the lowest feasible memory
// exceeds the gap at full memory.
func TestClaimDynamicAdvantageGrowsWhenUnderprovisioned(t *testing.T) {
	p := accPreset()
	g, err := experiments.RunFig5Panel(p, 0.5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	gapAt := func(pct int) float64 {
		for _, r := range g.Rows {
			if r.MemPct == pct && !math.IsNaN(r.Dynamic) && !math.IsNaN(r.Static) {
				return r.Dynamic - r.Static
			}
		}
		return math.NaN()
	}
	low := math.NaN()
	for _, pct := range []int{43, 50, 57} {
		if v := gapAt(pct); !math.IsNaN(v) {
			low = v
			break
		}
	}
	high := gapAt(100)
	if math.IsNaN(low) || math.IsNaN(high) {
		t.Skip("sweep points infeasible at this scale")
	}
	if low <= high {
		t.Fatalf("gap at low provisioning %.3f not above gap at 100%% %.3f", low, high)
	}
}

// Claim (§4.2): on underprovisioned, overestimated systems the dynamic
// policy reduces the median response time substantially (paper: 69 %).
func TestClaimMedianResponseReduction(t *testing.T) {
	p := accPreset()
	f6, err := experiments.RunFig6(p)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for _, panel := range f6.Panels {
		if panel.Overest > 0 && panel.Scenario == "underprovisioned" &&
			panel.Static != nil && panel.Dynamic != nil {
			if r := panel.MedianReduction(); r > best {
				best = r
			}
		}
	}
	if best < 0.3 {
		t.Fatalf("median response reduction %.2f, want a substantial cut (paper: 0.69)", best)
	}
}

// Claim (§4.3): the dynamic policy improves throughput per dollar, with the
// largest gains under overestimation (paper: up to 38 %).
func TestClaimThroughputPerDollarGain(t *testing.T) {
	p := accPreset()
	f7, err := experiments.RunFig7(p)
	if err != nil {
		t.Fatal(err)
	}
	if gain := f7.MaxDynamicGain(); gain < 0.10 {
		t.Fatalf("max throughput-per-dollar gain %.2f, want ≥ 0.10 (paper: 0.38)", gain)
	}
}

// Claim (§4.5): the dynamic policy reaches 95 % of the fully provisioned
// throughput with substantially less memory than static once requests are
// overestimated (paper: almost 40 points).
func TestClaimMemorySavingAtThreshold(t *testing.T) {
	p := accPreset()
	f9, err := experiments.RunFig9(p)
	if err != nil {
		t.Fatal(err)
	}
	if saving := f9.MaxMemorySaving(); saving < 20 {
		t.Fatalf("max memory saving %d points, want ≥ 20 (paper: ~40)", saving)
	}
	// And static's requirement trends upward with overestimation. Each
	// overestimation level uses its own generated trace, so the tiny
	// bench scale can jitter the 95 % crossing by one configuration
	// step; larger regressions fail.
	axis := []int{37, 43, 50, 57, 62, 75, 87, 100}
	idx := func(pct int) int {
		for i, v := range axis {
			if v == pct {
				return i
			}
		}
		return len(axis) // unreachable counts as "worse than any number"
	}
	prev := 0
	for _, pt := range f9.Points {
		cur := idx(pt.StaticPct)
		if pt.StaticPct == 0 {
			cur = len(axis)
		}
		if cur < prev-1 {
			t.Fatalf("static requirement fell more than one step (index %d -> %d) with more overestimation",
				prev, cur)
		}
		if cur > prev {
			prev = cur
		}
	}
}

// Claim (§2.2): system-level OOM kills are rare — a small share of jobs
// even on a tight system — so Fail/Restart suffices.
func TestClaimOOMRare(t *testing.T) {
	p := accPreset()
	tr, err := p.SyntheticTrace(0.5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := experiments.MemConfigByPct(50)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunScenario(tr.Jobs, p.SystemNodes, mc, policy.Dynamic)
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible {
		t.Skip("scenario infeasible at bench scale")
	}
	if res.Abandoned > 0 {
		t.Fatalf("%d jobs abandoned; the paper's F/R regime expects none", res.Abandoned)
	}
	if frac := float64(res.OOMKills) / float64(len(res.Records)); frac > 0.15 {
		t.Fatalf("OOM kill rate %.2f of jobs; far above the paper's <1%% regime", frac)
	}
}

// Claim (§1/§3.3): average memory usage sits far below the peak — the gap
// dynamic provisioning reclaims.
func TestClaimAvgUsageWellBelowPeak(t *testing.T) {
	p := accPreset()
	tr, err := p.SyntheticTrace(0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	var avg, peak float64
	for _, j := range tr.Jobs {
		m, err := j.Usage.MeanOver(j.BaseRuntime)
		if err != nil {
			t.Fatal(err)
		}
		avg += m
		peak += float64(j.PeakUsageMB())
	}
	if ratio := avg / peak; ratio > 0.85 {
		t.Fatalf("avg/peak usage ratio %.2f: no room for reclaiming", ratio)
	}
}
