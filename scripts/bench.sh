#!/bin/sh
# bench.sh — run the benchmark suite and record the results as JSON so the
# performance trajectory is tracked across PRs.
#
# Usage:  scripts/bench.sh [output.json]
#
# The default output name is BENCH_<n>.json in the repo root, where <n> is
# taken from the BENCH_SEQ environment variable (default 6, the PR that made
# the live simulation state forkable copy-on-write and added concurrent
# what-if branching off one frozen base).
# Benchmarks covered: the whole-figure pipeline benchmarks (Fig. 5 pooled
# and serial, the replicated headlines, trace generation vs cache hit), the
# end-to-end BenchmarkScenario suite (the preset-scale policies at 100x;
# grizzly-scale, its parallel twin, and the 100k-node scenario separately at
# 1x — one iteration is a full cluster-scale run), the refresh
# micro-benchmark (incremental, rescan, and elided modes), the per-domain
# refresh and windowed-dispatch benchmarks, the copy-on-write fork suite
# (snapshot cost, zero-alloc read path, first-write materialisation) and the
# what-if branching headline (branched vs nine full runs), and the
# micro-benchmarks for each indexed structure (lender ranking, sharded
# ascend, dynamic placement, engine schedule/cancel, window dispatch, team
# fan-out, trace cursor).
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_${BENCH_SEQ:-6}.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() {
    # $1 = package, $2 = benchmark regexp, $3 = benchtime, $4 = count
    # (optional, default 1). Multiple counts produce repeated lines; the awk
    # below records the MEDIAN per benchmark, the same statistic benchcheck
    # gates on — a single cold-start shot on a fast benchmark once recorded
    # a 30% phantom delta on BenchmarkScenario/baseline.
    go test -run '^$' -bench "$2" -benchmem -benchtime "$3" -count "${4:-1}" "$1" \
        | grep -E '^Benchmark' >>"$tmp" || true
}

run .                    'BenchmarkFig5$'               5x
run .                    'BenchmarkFig5Serial$'         5x
run .                    'BenchmarkHeadlines$'          3x
run .                    'BenchmarkTraceGeneration$'    1s 3
run .                    'BenchmarkTraceCacheHit$'      1s 3
run .                    'BenchmarkScenario$/^(baseline|static|dynamic)$' 100x 5
# The cluster-scale scenarios record the median of three single-iteration
# runs: one shot of a multi-second benchmark tracks recorder load as much
# as the code, and the cross-PR trajectory check diffs these recorded
# numbers directly.
run .                    'BenchmarkScenario$/^grizzly-scale$' 1x 3
run .                    'BenchmarkScenario$/^grizzly-scale-parallel$' 1x 3
run .                    'BenchmarkScenario$/^grizzly-scale-domains$' 1x 3
run .                    'BenchmarkScenario$/^100k$'    1x 3
run .                    'BenchmarkScenario$/^100k-domains$' 1x 3
run .                    'BenchmarkWhatIf$'             1x 3
run ./internal/core      'BenchmarkRefresh$'            1s 3
run ./internal/core      'BenchmarkRefreshDomains'      1s 3
run ./internal/core      'BenchmarkWindowedDispatch'    3x 3
run ./internal/cluster   'BenchmarkFork$'               1s 3
run ./internal/cluster   'BenchmarkLenderRank'          1s 3
run ./internal/cluster   'BenchmarkShardedAscend'       1s 3
run ./internal/policy    'BenchmarkPlaceDynamic'        1s 3
run ./internal/sim       'BenchmarkEngineScheduleCancel' 1s 3
run ./internal/sim       'BenchmarkWindowCycle'         1s 3
run ./internal/sweep     'BenchmarkTeamDispatch'        1s 3
run ./internal/memtrace  'BenchmarkTraceAtSequential'   1s 3

awk -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goversion="$(go version | awk '{print $3}')" '
# %.15g: exact for every integer ns/B/alloc count we record (< 2^50) without
# the float64 round-trip artifacts %.17g prints (253.30000000000001).
BEGIN { CONVFMT = "%.15g"; OFMT = "%.15g" }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
    if (!(name in count)) order[++names] = name
    r = ++count[name]
    iters[name] = $2
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns[name, r] = $i
        if ($(i+1) == "B/op") bytes[name, r] = $i
        if ($(i+1) == "allocs/op") allocs[name, r] = $i
    }
}
# median of the recorded samples for one benchmark (mean of the two middles
# for even n, matching cmd/benchcheck); "null" when the metric never appeared.
function median(arr, name, cnt,    m, i, k, t, tmp) {
    m = 0
    for (i = 1; i <= cnt; i++) if ((name, i) in arr) tmp[++m] = arr[name, i] + 0
    if (m == 0) return "null"
    for (i = 2; i <= m; i++) {
        t = tmp[i]
        for (k = i - 1; k >= 1 && tmp[k] > t; k--) tmp[k+1] = tmp[k]
        tmp[k+1] = t
    }
    if (m % 2 == 1) return tmp[(m+1)/2]
    return (tmp[m/2] + tmp[m/2+1]) / 2
}
END {
    printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", commit, date, goversion
    for (j = 1; j <= names; j++) {
        name = order[j]
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            name, iters[name], median(ns, name, count[name]), \
            median(bytes, name, count[name]), median(allocs, name, count[name]), \
            (j < names ? "," : "")
    }
    printf "  ]\n}\n"
}
' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
