#!/bin/sh
# bench.sh — run the benchmark suite and record the results as JSON so the
# performance trajectory is tracked across PRs.
#
# Usage:  scripts/bench.sh [output.json]
#
# The default output name is BENCH_<n>.json in the repo root, where <n> is
# taken from the BENCH_SEQ environment variable (default 2, the PR that
# introduced the barrier-free experiment pipeline). Benchmarks covered: the
# whole-figure pipeline benchmarks (Fig. 5 pooled and serial, the replicated
# headlines, trace generation vs cache hit), the end-to-end
# BenchmarkScenario suite, and the micro-benchmarks for each indexed
# structure (lender ranking, dynamic placement, engine schedule/cancel,
# trace cursor).
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH_${BENCH_SEQ:-2}.json}"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

run() {
    # $1 = package, $2 = benchmark regexp, $3 = benchtime
    go test -run '^$' -bench "$2" -benchmem -benchtime "$3" "$1" \
        | grep -E '^Benchmark' >>"$tmp" || true
}

run .                    'BenchmarkFig5$'               5x
run .                    'BenchmarkFig5Serial$'         5x
run .                    'BenchmarkHeadlines$'          3x
run .                    'BenchmarkTraceGeneration$'    1s
run .                    'BenchmarkTraceCacheHit$'      1s
run .                    'BenchmarkScenario'            100x
run ./internal/cluster   'BenchmarkLenderRank'          1s
run ./internal/policy    'BenchmarkPlaceDynamic'        1s
run ./internal/sim       'BenchmarkEngineScheduleCancel' 1s
run ./internal/memtrace  'BenchmarkTraceAtSequential'   1s

awk -v commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)" \
    -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v goversion="$(go version | awk '{print $3}')" '
BEGIN {
    printf "{\n  \"commit\": \"%s\",\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [\n", commit, date, goversion
    first = 1
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
    iters = $2; ns = ""; bytes = ""; allocs = ""
    for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        if ($(i+1) == "B/op") bytes = $i
        if ($(i+1) == "allocs/op") allocs = $i
    }
    if (!first) printf ",\n"
    first = 0
    printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", \
        name, iters, (ns == "" ? "null" : ns), (bytes == "" ? "null" : bytes), (allocs == "" ? "null" : allocs)
}
END { printf "\n  ]\n}\n" }
' "$tmp" >"$out"

echo "wrote $out:"
cat "$out"
