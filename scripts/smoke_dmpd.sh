#!/usr/bin/env bash
# End-to-end smoke test for the dmpd daemon: start it at the Quick preset,
# POST the committed scenario, and require the response digest to match the
# committed golden (cmd/dmpd/testdata/smoke.sha256). The daemon's answer
# must be byte-identical to an offline run of the same spec — this is the
# determinism contract of the service boundary, checked at the cheapest
# possible scale. Also exercises the telemetry and metrics endpoints and a
# graceful SIGTERM shutdown.
#
# Usage: scripts/smoke_dmpd.sh   (from anywhere; re-record the golden by
# deleting smoke.sha256 and piping a fresh response through sha256sum)
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${DMPD_PORT:-18231}"
BIN="$(mktemp -t dmpd.XXXXXX)"
trap 'kill "$DMPD_PID" 2>/dev/null || true; rm -f "$BIN"' EXIT

go build -o "$BIN" ./cmd/dmpd
"$BIN" -addr "127.0.0.1:$PORT" -preset quick &
DMPD_PID=$!

for _ in $(seq 1 100); do
  if curl -sf "127.0.0.1:$PORT/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -sf "127.0.0.1:$PORT/healthz" >/dev/null || { echo "dmpd never became healthy"; exit 1; }

RESP="$(curl -sf -XPOST "127.0.0.1:$PORT/v1/scenarios" -d @cmd/dmpd/testdata/smoke.json)"
GOT="$(printf '%s\n' "$RESP" | sha256sum | awk '{print $1}')"
WANT="$(cat cmd/dmpd/testdata/smoke.sha256)"
if [ "$GOT" != "$WANT" ]; then
  echo "response digest mismatch: got $GOT want $WANT"
  echo "response was: $RESP"
  exit 1
fi

ID="$(printf '%s' "$RESP" | sed -n 's/.*"id":"\([0-9a-f]*\)".*/\1/p')"
# No -q on the greps: under pipefail, grep -q's early exit would SIGPIPE
# curl and fail the healthy pipeline.
curl -sf "127.0.0.1:$PORT/v1/scenarios/$ID" >/dev/null
curl -sf "127.0.0.1:$PORT/v1/scenarios/$ID/telemetry" | grep '"ev":"job_submit"' >/dev/null \
  || { echo "telemetry stream empty"; exit 1; }
curl -sf "127.0.0.1:$PORT/metrics" | grep '^dmpd_result_cache_misses_total 1$' >/dev/null \
  || { echo "metrics missing cache counters"; exit 1; }

kill -TERM "$DMPD_PID"
wait "$DMPD_PID" || { echo "dmpd exited non-zero on SIGTERM"; exit 1; }
trap 'rm -f "$BIN"' EXIT
echo "dmpd smoke OK (digest $GOT)"
