// Package textplot renders small terminal charts — horizontal bar charts,
// grouped bar charts, and scatter plots — used by the experiment CLI to
// visualise figure data without any plotting dependency.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Bar is one labelled value of a bar chart.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to width characters. Negative
// and NaN values render as empty bars marked "-". The value column shows
// the raw numbers with the given format (default %.3f).
func BarChart(title string, bars []Bar, width int, format string) string {
	if width <= 0 {
		width = 40
	}
	if format == "" {
		format = "%.3f"
	}
	var max float64
	labelW := 0
	for _, b := range bars {
		if !math.IsNaN(b.Value) && b.Value > max {
			max = b.Value
		}
		if len(b.Label) > labelW {
			labelW = len(b.Label)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for _, b := range bars {
		sb.WriteString(fmt.Sprintf("%-*s ", labelW, b.Label))
		if math.IsNaN(b.Value) || b.Value < 0 {
			sb.WriteString(strings.Repeat(" ", width))
			sb.WriteString("  -\n")
			continue
		}
		n := 0
		if max > 0 {
			n = int(b.Value / max * float64(width))
		}
		if n > width {
			n = width
		}
		sb.WriteString(strings.Repeat("█", n))
		sb.WriteString(strings.Repeat(" ", width-n))
		sb.WriteString("  ")
		sb.WriteString(fmt.Sprintf(format, b.Value))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Series is one named series of a grouped chart.
type Series struct {
	Name   string
	Values []float64 // aligned with the group labels
}

// GroupedBars renders one row per group with one bar per series, for
// side-by-side policy comparisons. NaN values are rendered as "-".
func GroupedBars(title string, groups []string, series []Series, width int) string {
	if width <= 0 {
		width = 30
	}
	var max float64
	for _, s := range series {
		for _, v := range s.Values {
			if !math.IsNaN(v) && v > max {
				max = v
			}
		}
	}
	labelW := 0
	for _, g := range groups {
		if len(g) > labelW {
			labelW = len(g)
		}
	}
	nameW := 0
	for _, s := range series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for gi, g := range groups {
		for si, s := range series {
			label := ""
			if si == 0 {
				label = g
			}
			v := math.NaN()
			if gi < len(s.Values) {
				v = s.Values[gi]
			}
			sb.WriteString(fmt.Sprintf("%-*s %-*s ", labelW, label, nameW, s.Name))
			if math.IsNaN(v) || v < 0 {
				sb.WriteString("-\n")
				continue
			}
			n := 0
			if max > 0 {
				n = int(v / max * float64(width))
			}
			if n > width {
				n = width
			}
			sb.WriteString(strings.Repeat("█", n))
			sb.WriteString(fmt.Sprintf(" %.3f\n", v))
		}
	}
	return sb.String()
}

// Point is one (x, y) observation of a scatter plot.
type Point struct {
	X, Y   float64
	Marked bool // rendered as '*' instead of '·'
}

// Scatter renders points on a cols×rows character grid with axis ranges
// derived from the data. Marked points win cell conflicts.
func Scatter(title string, pts []Point, cols, rows int) string {
	if cols <= 0 {
		cols = 60
	}
	if rows <= 0 {
		rows = 16
	}
	if len(pts) == 0 {
		return title + "\n(no data)\n"
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, rows)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", cols))
	}
	for _, p := range pts {
		// The subtraction can overflow to ±Inf for extreme inputs, so
		// the cell indices are clamped defensively.
		c := clampIndex((p.X-minX)/(maxX-minX)*float64(cols-1), cols)
		r := rows - 1 - clampIndex((p.Y-minY)/(maxY-minY)*float64(rows-1), rows)
		ch := '·'
		if p.Marked {
			ch = '*'
		}
		if grid[r][c] != '*' {
			grid[r][c] = ch
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%.3g\n", maxY)
	for _, row := range grid {
		sb.WriteString("|")
		sb.WriteString(string(row))
		sb.WriteByte('\n')
	}
	sb.WriteString("+")
	sb.WriteString(strings.Repeat("-", cols))
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "%.3g%s%.3g\n", minX, strings.Repeat(" ", maxInt(1, cols-12)), maxX)
	return sb.String()
}

// Heatmap renders a matrix of non-negative values as shaded cells, darkest
// at the maximum. Rows print top-down in the given order; each cell also
// shows its value with the given format (default %.2f).
func Heatmap(title string, rowLabels, colLabels []string, cells [][]float64, format string) string {
	if format == "" {
		format = "%.2f"
	}
	var max float64
	for _, row := range cells {
		for _, v := range row {
			if !math.IsNaN(v) && v > max {
				max = v
			}
		}
	}
	shades := []rune(" ░▒▓█")
	labelW := 0
	for _, l := range rowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	cellW := 0
	for _, l := range colLabels {
		if len(l) > cellW {
			cellW = len(l)
		}
	}
	if w := len(fmt.Sprintf(format, max)) + 2; w > cellW {
		cellW = w
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	sb.WriteString(strings.Repeat(" ", labelW+1))
	for _, c := range colLabels {
		sb.WriteString(fmt.Sprintf("%*s", cellW+1, c))
	}
	sb.WriteByte('\n')
	for ri, row := range cells {
		label := ""
		if ri < len(rowLabels) {
			label = rowLabels[ri]
		}
		sb.WriteString(fmt.Sprintf("%-*s ", labelW, label))
		for _, v := range row {
			if math.IsNaN(v) {
				sb.WriteString(fmt.Sprintf("%*s", cellW+1, "-"))
				continue
			}
			shade := shades[0]
			if max > 0 {
				idx := int(v / max * float64(len(shades)-1))
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
				shade = shades[idx]
			}
			sb.WriteString(fmt.Sprintf(" %c%*s", shade, cellW-1, fmt.Sprintf(format, v)))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// clampIndex converts a possibly non-finite cell coordinate into a valid
// index in [0, n).
func clampIndex(v float64, n int) int {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if i := int(v); i < n {
		return i
	}
	return n - 1
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
