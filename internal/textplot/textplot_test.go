package textplot

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBarChartBasics(t *testing.T) {
	out := BarChart("title", []Bar{
		{"full", 1.0},
		{"half", 0.5},
		{"none", 0},
		{"missing", math.NaN()},
	}, 10, "")
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Fatalf("title line = %q", lines[0])
	}
	if got := strings.Count(lines[1], "█"); got != 10 {
		t.Fatalf("full bar = %d cells, want 10", got)
	}
	if got := strings.Count(lines[2], "█"); got != 5 {
		t.Fatalf("half bar = %d cells, want 5", got)
	}
	if strings.Count(lines[3], "█") != 0 {
		t.Fatal("zero bar not empty")
	}
	if !strings.HasSuffix(lines[4], "-") {
		t.Fatalf("NaN bar = %q, want trailing -", lines[4])
	}
	// Labels aligned to the widest.
	if !strings.HasPrefix(lines[1], "full    ") {
		t.Fatalf("label not padded: %q", lines[1])
	}
}

func TestBarChartAllZero(t *testing.T) {
	out := BarChart("", []Bar{{"a", 0}, {"b", 0}}, 10, "%.1f")
	if strings.Contains(out, "█") {
		t.Fatal("zero-valued chart drew bars")
	}
	if !strings.Contains(out, "0.0") {
		t.Fatal("custom format ignored")
	}
}

func TestGroupedBars(t *testing.T) {
	out := GroupedBars("cmp", []string{"37%", "50%"}, []Series{
		{Name: "static", Values: []float64{0.5, 0.8}},
		{Name: "dynamic", Values: []float64{1.0, math.NaN()}},
	}, 20)
	if !strings.Contains(out, "static") || !strings.Contains(out, "dynamic") {
		t.Fatal("series names missing")
	}
	if !strings.Contains(out, "37%") || !strings.Contains(out, "50%") {
		t.Fatal("group labels missing")
	}
	// NaN renders as '-'.
	lines := strings.Split(out, "\n")
	found := false
	for _, l := range lines {
		if strings.Contains(l, "dynamic") && strings.HasSuffix(strings.TrimSpace(l), "-") {
			found = true
		}
	}
	if !found {
		t.Fatalf("NaN cell not rendered as '-':\n%s", out)
	}
	// Missing values (short series) also render as '-'.
	out2 := GroupedBars("", []string{"a", "b"}, []Series{{Name: "s", Values: []float64{1}}}, 10)
	if !strings.Contains(out2, "-") {
		t.Fatal("short series not padded with '-'")
	}
}

func TestScatter(t *testing.T) {
	pts := []Point{
		{X: 0, Y: 0},
		{X: 1, Y: 1, Marked: true},
		{X: 0.5, Y: 0.5},
	}
	out := Scatter("sc", pts, 20, 10)
	if !strings.Contains(out, "*") || !strings.Contains(out, "·") {
		t.Fatalf("markers missing:\n%s", out)
	}
	// 10 grid rows plus title, top label, axis, bottom label.
	if got := strings.Count(out, "|"); got != 10 {
		t.Fatalf("grid rows = %d, want 10", got)
	}
	if Scatter("x", nil, 10, 5) != "x\n(no data)\n" {
		t.Fatal("empty scatter mis-rendered")
	}
}

func TestScatterDegenerateRanges(t *testing.T) {
	// All points identical: ranges are widened, no panic, point lands
	// somewhere on the grid.
	out := Scatter("", []Point{{X: 5, Y: 5}, {X: 5, Y: 5}}, 10, 5)
	if !strings.Contains(out, "·") {
		t.Fatalf("degenerate scatter lost its point:\n%s", out)
	}
}

// Property: bar lengths are monotone in value and bounded by width.
func TestQuickBarMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a, b = math.Abs(a), math.Abs(b)
		if math.IsInf(a, 0) || math.IsInf(b, 0) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		out := BarChart("", []Bar{{"a", a}, {"b", b}}, 25, "")
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		ca := strings.Count(lines[0], "█")
		cb := strings.Count(lines[1], "█")
		return ca <= cb && cb <= 25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: scatter never panics and keeps grid dimensions for arbitrary
// finite inputs.
func TestQuickScatterShape(t *testing.T) {
	f := func(raw []float64) bool {
		var pts []Point
		for i := 0; i+1 < len(raw); i += 2 {
			x, y := raw[i], raw[i+1]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) {
				continue
			}
			pts = append(pts, Point{X: x, Y: y})
		}
		if len(pts) == 0 {
			return true
		}
		out := Scatter("", pts, 30, 8)
		return strings.Count(out, "|") == 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHeatmap(t *testing.T) {
	out := Heatmap("hm",
		[]string{"hi", "lo"},
		[]string{"a", "b"},
		[][]float64{{1.0, 0.5}, {0.0, math.NaN()}}, "%.1f")
	if !strings.Contains(out, "hm") {
		t.Fatal("title missing")
	}
	// Maximum cell uses the darkest shade, NaN renders as '-'.
	if !strings.Contains(out, "█") {
		t.Fatalf("max shade missing:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("NaN cell missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// All-zero heatmaps must not panic or divide by zero.
	zero := Heatmap("", []string{"r"}, []string{"c"}, [][]float64{{0}}, "")
	if !strings.Contains(zero, "0.00") {
		t.Fatalf("zero heatmap broken:\n%s", zero)
	}
}
