package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestTimeSeries(t *testing.T) {
	out := TimeSeries("pool",
		[]float64{0, 10, 20, 30},
		[]Series{
			{Name: "free", Values: []float64{100, 80, 60, 90}},
			{Name: "lent", Values: []float64{0, 20, 40, math.NaN()}},
		}, 40, 8)
	if !strings.HasPrefix(out, "pool\n") {
		t.Fatalf("title missing:\n%s", out)
	}
	if got := strings.Count(out, "|"); got != 8 {
		t.Fatalf("grid rows = %d, want 8", got)
	}
	// Both series' markers on the grid and in the legend.
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("series markers missing:\n%s", out)
	}
	if !strings.Contains(out, "* free") || !strings.Contains(out, "o lent") {
		t.Fatalf("legend missing:\n%s", out)
	}
	// Axis summary carries the data ranges.
	if !strings.Contains(out, "t: 0 .. 30") {
		t.Fatalf("time range missing:\n%s", out)
	}
	if !strings.Contains(out, "y: 0 .. 100") {
		t.Fatalf("y range missing:\n%s", out)
	}
}

func TestTimeSeriesEmptyAndDegenerate(t *testing.T) {
	if got := TimeSeries("x", nil, nil, 10, 4); got != "x\n(no data)\n" {
		t.Fatalf("empty input rendered %q", got)
	}
	// All values NaN collapses to no data rather than a NaN axis.
	nan := TimeSeries("x", []float64{1, 2}, []Series{{Name: "s", Values: []float64{math.NaN(), math.NaN()}}}, 10, 4)
	if nan != "x\n(no data)\n" {
		t.Fatalf("all-NaN input rendered %q", nan)
	}
	// A single constant point must not divide by zero.
	one := TimeSeries("", []float64{5}, []Series{{Name: "s", Values: []float64{7}}}, 10, 4)
	if !strings.Contains(one, "*") {
		t.Fatalf("single point lost:\n%s", one)
	}
	// Values beyond len(t) are ignored, not out-of-range.
	long := TimeSeries("", []float64{0, 1}, []Series{{Name: "s", Values: []float64{1, 2, 3, 4}}}, 10, 4)
	if !strings.Contains(long, "y: 1 .. 2") {
		t.Fatalf("misaligned series leaked values:\n%s", long)
	}
}
