package textplot

import (
	"fmt"
	"math"
	"strings"
)

// seriesMarkers are assigned to series in order; more series than markers
// cycle back to the start.
var seriesMarkers = []rune("*o+x#@%·")

// TimeSeries renders one or more named series over a shared time axis on a
// cols×rows character grid — the timeline view dmpobs uses for pool
// occupancy and queue depth. The y-range spans all series together so the
// curves are comparable; NaN values are skipped. Each series draws with its
// own marker (later series win cell conflicts) and the legend below the axis
// maps markers to names.
func TimeSeries(title string, t []float64, series []Series, cols, rows int) string {
	if cols <= 0 {
		cols = 60
	}
	if rows <= 0 {
		rows = 12
	}
	if len(t) == 0 || len(series) == 0 {
		return title + "\n(no data)\n"
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	for _, x := range t {
		minT, maxT = math.Min(minT, x), math.Max(maxT, x)
	}
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i, v := range s.Values {
			if i >= len(t) || math.IsNaN(v) {
				continue
			}
			minY, maxY = math.Min(minY, v), math.Max(maxY, v)
		}
	}
	if math.IsInf(minY, 1) { // every value was NaN or misaligned
		return title + "\n(no data)\n"
	}
	if maxT == minT {
		maxT = minT + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, rows)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", cols))
	}
	for si, s := range series {
		mark := seriesMarkers[si%len(seriesMarkers)]
		for i, v := range s.Values {
			if i >= len(t) || math.IsNaN(v) {
				continue
			}
			c := clampIndex((t[i]-minT)/(maxT-minT)*float64(cols-1), cols)
			r := rows - 1 - clampIndex((v-minY)/(maxY-minY)*float64(rows-1), rows)
			grid[r][c] = mark
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	fmt.Fprintf(&sb, "%.4g\n", maxY)
	for _, row := range grid {
		sb.WriteString("|")
		sb.WriteString(string(row))
		sb.WriteByte('\n')
	}
	sb.WriteString("+")
	sb.WriteString(strings.Repeat("-", cols))
	sb.WriteByte('\n')
	fmt.Fprintf(&sb, "t: %.4g .. %.4g   y: %.4g .. %.4g\n", minT, maxT, minY, maxY)
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s\n", seriesMarkers[si%len(seriesMarkers)], s.Name)
	}
	return sb.String()
}
