package server

import (
	"context"
	"errors"
	"sync"
)

// errBusy is the admission verdict behind every 429: the run slots are full
// and the wait queue is at capacity.
var errBusy = errors.New("server: at capacity (queue full)")

// admission is the daemon's load gate: a semaphore of run slots plus a
// bounded count of waiters. Acquire never blocks past the queue bound —
// overflow is rejected immediately so the client gets its 429 (and
// Retry-After hint) instead of an unbounded wait. Waiting is
// context-sensitive: a client that disconnects while queued leaves the
// queue at once.
type admission struct {
	slots chan struct{} // buffered; a held token = one in-flight run

	mu       sync.Mutex
	queued   int //dmp:guardedby(mu)
	maxQueue int
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		maxQueue: maxQueue,
	}
}

// acquire takes a run slot, waiting in the bounded queue if none is free.
// It returns errBusy when the queue is full, or ctx.Err() if the caller is
// cancelled while waiting.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil // free slot, no queueing
	default:
	}
	a.mu.Lock()
	if a.queued >= a.maxQueue {
		a.mu.Unlock()
		return errBusy
	}
	a.queued++
	a.mu.Unlock()
	defer func() {
		a.mu.Lock()
		a.queued--
		a.mu.Unlock()
	}()
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot taken by acquire.
func (a *admission) release() { <-a.slots }

// depth reports (queued, inFlight) for /metrics.
func (a *admission) depth() (queued, inFlight int) {
	a.mu.Lock()
	queued = a.queued
	a.mu.Unlock()
	return queued, len(a.slots)
}
