package server

import (
	"math"
	"strconv"

	"dismem/internal/experiments"
)

// RenderResult encodes a scenario result as the daemon's response body.
// The encoder is hand-rolled in the JSONL sink's style — fixed field
// order, strconv float formatting, non-finite values as quoted strings —
// so identical results produce byte-identical responses. That property is
// load-bearing: response bodies are compared by digest against offline
// runs (the e2e suite and the CI smoke test), and the single-flight cache
// may serve one rendering to many clients.
//
// Shape:
//
//	{"id":"<sha256>","preset":"quick","name":"my-study","rows":[
//	  {"mem_pct":50,"policy":"static","throughput":0.0123,
//	   "median_response_s":840,"oom_kills":0,"mean_stretch":1.7}]}
//
// An infeasible cell carries "throughput":"NaN" (quoted, as the JSONL
// sink encodes non-finite floats); strconv.ParseFloat round-trips it.
func RenderResult(id, preset string, res *experiments.ScenarioResult) []byte {
	b := make([]byte, 0, 256+128*len(res.Rows))
	b = append(b, `{"id":`...)
	b = strconv.AppendQuote(b, id)
	b = append(b, `,"preset":`...)
	b = strconv.AppendQuote(b, preset)
	b = append(b, `,"name":`...)
	b = strconv.AppendQuote(b, res.Name)
	b = append(b, `,"rows":[`...)
	for i, row := range res.Rows {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"mem_pct":`...)
		b = strconv.AppendInt(b, int64(row.MemPct), 10)
		b = append(b, `,"policy":`...)
		b = strconv.AppendQuote(b, row.Policy)
		b = append(b, `,"throughput":`...)
		b = appendFloat(b, row.Throughput)
		b = append(b, `,"median_response_s":`...)
		b = appendFloat(b, row.MedianResponse)
		b = append(b, `,"oom_kills":`...)
		b = strconv.AppendInt(b, int64(row.OOMKills), 10)
		b = append(b, `,"mean_stretch":`...)
		b = appendFloat(b, row.MeanStretch)
		b = append(b, '}')
	}
	b = append(b, "]}\n"...)
	return b
}

// RenderBranchResult encodes a what-if branch result in RenderResult's
// deterministic style: fixed field order, strconv formatting, byte-identical
// for identical results, so branch responses are content-addressable under
// experiments.BranchKey exactly like scenario responses. The "base" row
// leads; its CoW counters are zero by definition (the base pays no copies).
func RenderBranchResult(id, preset string, res *experiments.BranchResult) []byte {
	b := make([]byte, 0, 256+192*len(res.Rows))
	b = append(b, `{"id":`...)
	b = strconv.AppendQuote(b, id)
	b = append(b, `,"preset":`...)
	b = strconv.AppendQuote(b, preset)
	b = append(b, `,"name":`...)
	b = strconv.AppendQuote(b, res.Name)
	b = append(b, `,"rows":[`...)
	for i, row := range res.Rows {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, `{"name":`...)
		b = strconv.AppendQuote(b, row.Name)
		b = append(b, `,"policy":`...)
		b = strconv.AppendQuote(b, row.Policy)
		b = append(b, `,"completed":`...)
		b = strconv.AppendInt(b, int64(row.Completed), 10)
		b = append(b, `,"oom_kills":`...)
		b = strconv.AppendInt(b, int64(row.OOMKills), 10)
		b = append(b, `,"makespan_s":`...)
		b = appendFloat(b, row.Makespan)
		b = append(b, `,"throughput":`...)
		b = appendFloat(b, row.Throughput)
		b = append(b, `,"mean_stretch":`...)
		b = appendFloat(b, row.MeanStretch)
		b = append(b, `,"shared_events":`...)
		b = strconv.AppendUint(b, row.SharedEvents, 10)
		b = append(b, `,"cow_node_copies":`...)
		b = strconv.AppendInt(b, row.NodeCopies, 10)
		b = append(b, `,"cow_shard_thaws":`...)
		b = strconv.AppendInt(b, row.ShardThaws, 10)
		b = append(b, '}')
	}
	b = append(b, "]}\n"...)
	return b
}

// appendFloat encodes finite floats bare and non-finite ones as quoted
// strings, matching the telemetry JSONL convention.
func appendFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		b = append(b, '"')
		b = strconv.AppendFloat(b, v, 'g', -1, 64)
		return append(b, '"')
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}
