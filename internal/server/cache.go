package server

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"

	"dismem/internal/experiments"
)

// entry is one scenario in the store: first a single-flight computation —
// every request for the same canonical key joins it — then, on success, a
// cached result. done is closed exactly once, after which result,
// telemetry, and err are immutable; waiters therefore read them without a
// lock.
//
// Cancellation is refcounted: each waiting request holds one reference,
// and the entry's context (the run's context) is cancelled only when the
// last reference leaves before completion. A runner whose own client
// disconnects keeps computing as long as any other request still wants the
// answer.
type entry struct {
	id     string
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	// Guarded by store.mu until completed is set.
	refs      int
	completed bool

	result    []byte // rendered response JSON
	telemetry []byte // assembled JSONL stream
	err       error

	// spec is the scenario document this entry computed, retained because
	// the branch endpoint needs it to re-simulate a cached result's prefix
	// (the id is a hash and cannot be inverted). Written by the submitting
	// handler before the run goroutine starts; readers observe it only
	// after completed, so the go statement and store.mu order the accesses.
	// Nil for branch entries: branches of branches are rejected.
	spec *experiments.ScenarioSpec

	elem *list.Element // LRU position; non-nil only for cached successes
}

// store is the content-addressed result cache with single-flight semantics.
// Running entries live in the map only; completed successes additionally
// join a bounded LRU. Completed failures are dropped immediately — errors
// here are operational (cancellation, admission overflow), not properties
// of the spec, so a retry must re-run.
type store struct {
	mu  sync.Mutex
	m   map[string]*entry //dmp:guardedby(mu)
	lru *list.List        //dmp:guardedby(mu) of *entry; front = most recent
	cap int

	hits   atomic.Int64 //dmp:atomiconly joins that found an entry (running or cached)
	misses atomic.Int64 //dmp:atomiconly joins that started a run
}

func newStore(cap int) *store {
	return &store{m: make(map[string]*entry), lru: list.New(), cap: cap}
}

// join returns the entry for id, creating it (started=true) when no run is
// in flight and no result is cached. The caller owns one reference until
// it calls leave or reads past done.
func (st *store) join(base context.Context, id string) (e *entry, started bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e = st.m[id]; e != nil {
		st.hits.Add(1)
		if e.completed {
			st.lru.MoveToFront(e.elem)
		} else {
			e.refs++
		}
		return e, false
	}
	st.misses.Add(1)
	ctx, cancel := context.WithCancel(base)
	e = &entry{id: id, ctx: ctx, cancel: cancel, done: make(chan struct{}), refs: 1}
	st.m[id] = e
	return e, true
}

// leave drops one reference from a still-running entry. When the last
// reference goes, the entry is unmapped (a later identical request starts
// fresh) and its run cancelled — the simulation aborts at its next
// interrupt poll and the slot frees.
func (st *store) leave(e *entry) {
	st.mu.Lock()
	if e.completed {
		st.mu.Unlock()
		return
	}
	e.refs--
	abandoned := e.refs == 0
	if abandoned && st.m[e.id] == e {
		delete(st.m, e.id)
	}
	st.mu.Unlock()
	if abandoned {
		e.cancel()
	}
}

// complete finishes the entry: waiters wake, successes enter the LRU (with
// eviction beyond cap), failures leave the map so the next request
// re-runs. Idempotent fields become immutable here.
func (st *store) complete(e *entry, result, telemetry []byte, err error) {
	st.mu.Lock()
	e.completed = true
	e.result, e.telemetry, e.err = result, telemetry, err
	if st.m[e.id] != e {
		// Abandoned while running: nobody is waiting and a fresh entry may
		// already own the key. Discard quietly.
	} else if err != nil {
		delete(st.m, e.id)
	} else {
		e.elem = st.lru.PushFront(e)
		for st.lru.Len() > st.cap {
			old := st.lru.Remove(st.lru.Back()).(*entry)
			delete(st.m, old.id)
		}
	}
	st.mu.Unlock()
	close(e.done)
	e.cancel()
}

// peek is the read-only lookup behind GET: reports whether the id is
// known and, if completed, hands back the immutable entry. A running entry
// returns (nil, true, false).
func (st *store) peek(id string) (e *entry, known, done bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	cur := st.m[id]
	if cur == nil {
		return nil, false, false
	}
	if !cur.completed {
		return nil, true, false
	}
	st.lru.MoveToFront(cur.elem)
	return cur, true, true
}

// stats reports (cached entries, hits, misses) for /metrics.
func (st *store) stats() (entries int, hits, misses int64) {
	st.mu.Lock()
	entries = st.lru.Len()
	st.mu.Unlock()
	return entries, st.hits.Load(), st.misses.Load()
}
