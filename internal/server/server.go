// Package server is dmpd's engine room: simulation-as-a-service over the
// experiments layer. It accepts ScenarioSpec documents, admits them through
// a bounded queue, executes them on the shared sweep pool, and serves the
// results and their telemetry streams over HTTP.
//
// The design contract is that the service boundary adds no nondeterminism:
// a scenario's response body is rendered by the same fixed-field-order
// encoder an offline caller gets from RenderResult, so the daemon's answer
// for a spec is byte-identical to dmpsim/dmpexp computing it locally. That
// makes results content-addressable — the scenario's canonical SHA-256 key
// (experiments.ScenarioKey) is both the resource ID and the cache key — and
// single-flight collapsing safe: any number of concurrent identical
// requests can share one computation and one byte answer.
//
// Unlike every package under the simulation path, server code may read the
// wall clock: request latencies and Retry-After hints are operational
// concerns, invisible to simulation results. The detclock lint guard keeps
// the boundary honest in the other direction.
package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"dismem/internal/experiments"
	"dismem/internal/telemetry"
)

// Config parameterises the daemon.
type Config struct {
	// Preset sets the scale every scenario runs at (experiments.Quick is a
	// sensible service default; tests use Bench).
	Preset experiments.Preset
	// MaxInFlight bounds concurrently executing scenarios. Each scenario
	// fans its sweep cells onto the shared pool, so this is the service's
	// load knob. Default 2.
	MaxInFlight int
	// MaxQueue bounds scenarios admitted but waiting for a run slot;
	// beyond it, POST returns 429 with a Retry-After hint. Default 8.
	MaxQueue int
	// CacheEntries bounds the completed-result cache (LRU evicted).
	// Default 64.
	CacheEntries int
	// TelemetryInterval is the pool-sampling period (simulated seconds)
	// for captured telemetry streams; 0 records the event stream only.
	TelemetryInterval float64
}

func (c *Config) normalize() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 64
	}
}

// Server is the daemon state: admission control, the single-flight result
// cache, and service metrics. Construct with New, mount Handler, and call
// Abort during shutdown once http.Server.Shutdown's drain deadline passes.
type Server struct {
	cfg   Config
	adm   *admission
	store *store

	base   context.Context // parent of every run; Abort cancels it
	cancel context.CancelFunc

	// runFn computes one scenario; New wires it to (*Server).execute.
	// Lifecycle tests substitute a controllable stand-in.
	runFn func(ctx context.Context, id string, spec *experiments.ScenarioSpec) (result, tel []byte, err error)
	// branchFn computes one what-if branch of a completed scenario; New
	// wires it to (*Server).executeBranch.
	branchFn func(ctx context.Context, id string, spec *experiments.ScenarioSpec, br *experiments.BranchSpec) ([]byte, error)

	metricsMu sync.Mutex
	runMS     *telemetry.Histogram //dmp:guardedby(metricsMu) scenario wall time, milliseconds
	started   uint64               //dmp:guardedby(metricsMu)
	completed uint64               //dmp:guardedby(metricsMu)
	failed    uint64               //dmp:guardedby(metricsMu)
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg.normalize()
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		adm:    newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		base:   base,
		cancel: cancel,
		runMS:  telemetry.NewHistogram([]int64{1, 10, 100, 1000, 10000, 60000}),
	}
	s.store = newStore(cfg.CacheEntries)
	s.runFn = s.execute
	s.branchFn = s.executeBranch
	return s
}

// Handler returns the daemon's route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/scenarios", s.handleSubmit)
	mux.HandleFunc("POST /v1/scenarios/{id}/branch", s.handleBranch)
	mux.HandleFunc("GET /v1/scenarios/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/scenarios/{id}/telemetry", s.handleTelemetry)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Abort cancels every in-flight run. Graceful shutdown calls it only after
// http.Server.Shutdown's drain deadline expires: Shutdown itself lets
// handlers — and therefore the runs they wait on — finish.
func (s *Server) Abort() { s.cancel() }

// observeRun files one finished scenario into the service metrics.
func (s *Server) observeRun(d time.Duration, err error) {
	s.metricsMu.Lock()
	defer s.metricsMu.Unlock()
	s.runMS.Observe(d.Milliseconds())
	if err != nil {
		s.failed++
	} else {
		s.completed++
	}
}
