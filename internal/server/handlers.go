package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"dismem/internal/experiments"
	"dismem/internal/tracegen"
)

// maxSpecBytes bounds a POSTed spec document. Specs are small JSON
// objects; a megabyte is three orders of magnitude of headroom.
const maxSpecBytes = 1 << 20

// handleSubmit is POST /v1/scenarios: validate, content-address, join the
// single-flight entry for the key, and block until the result (or this
// client's disconnect). Identical concurrent requests collapse onto one
// computation and receive one byte-identical rendering.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := experiments.LoadScenario(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.cfg.Preset.ScenarioKey(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e, started := s.store.join(s.base, id) //dmplint:ignore ctxflow deliberate: a scenario run outlives any one request; join refcounts waiters and derives per-entry cancellation from the daemon context
	if started {
		e.spec = spec // retained for the branch endpoint
		s.metricsMu.Lock()
		s.started++
		s.metricsMu.Unlock()
		go s.run(e, spec)
	}
	s.await(w, r, e)
}

// await blocks on one joined entry and writes its outcome — the shared tail
// of every single-flight handler.
func (s *Server) await(w http.ResponseWriter, r *http.Request, e *entry) {
	select {
	case <-e.done:
	case <-r.Context().Done():
		// Client gone: drop our reference. If we were the last interested
		// party the run is cancelled and its slot freed; the response
		// writer is dead either way.
		s.store.leave(e)
		return
	}
	if e.err != nil {
		writeRunError(w, e.err)
		return
	}
	writeResult(w, e.result)
}

// handleBranch is POST /v1/scenarios/{id}/branch: fork a completed
// scenario's selected cell at a branch point and run what-if variants off
// the shared prefix. The branch result is content-addressed like a
// scenario — its key folds the parent's key with every branch dimension —
// so identical concurrent branch requests collapse onto one prefix
// re-simulation and the rendering caches in the same LRU (a branch id also
// answers plain GET /v1/scenarios/{id}). The parent must have completed:
// branching needs its retained spec, and an in-flight parent answers 202
// exactly as a GET peek does.
func (s *Server) handleBranch(w http.ResponseWriter, r *http.Request) {
	br, err := experiments.LoadBranchSpec(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := r.PathValue("id")
	parent, known, done := s.store.peek(id)
	switch {
	case !known:
		writeError(w, http.StatusNotFound, errors.New("server: unknown scenario id"))
		return
	case !done:
		writeRunning(w)
		return
	case parent.spec == nil:
		writeError(w, http.StatusConflict, errors.New("server: id names a branch result, not a scenario"))
		return
	}
	if err := br.ValidateFor(parent.spec); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	e, started := s.store.join(s.base, experiments.BranchKey(id, br)) //dmplint:ignore ctxflow deliberate: a branch run outlives any one request; join refcounts waiters and derives per-entry cancellation from the daemon context
	if started {
		s.metricsMu.Lock()
		s.started++
		s.metricsMu.Unlock()
		go s.runBranch(e, parent.spec, br)
	}
	s.await(w, r, e)
}

// handleGet is GET /v1/scenarios/{id}: a non-blocking peek. Unknown keys
// 404, in-flight runs 202, completed runs return the cached rendering.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	e, known, done := s.store.peek(r.PathValue("id"))
	switch {
	case !known:
		writeError(w, http.StatusNotFound, errors.New("server: unknown scenario id"))
	case !done:
		writeRunning(w)
	default:
		writeResult(w, e.result)
	}
}

// handleTelemetry is GET /v1/scenarios/{id}/telemetry: the run's captured
// event stream as JSONL, one cell-header line per sweep cell followed by
// that cell's events. Deterministic for a given scenario key.
func (s *Server) handleTelemetry(w http.ResponseWriter, r *http.Request) {
	e, known, done := s.store.peek(r.PathValue("id"))
	switch {
	case !known:
		writeError(w, http.StatusNotFound, errors.New("server: unknown scenario id"))
	case !done:
		writeRunning(w)
	default:
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Content-Length", strconv.Itoa(len(e.telemetry)))
		_, _ = w.Write(e.telemetry)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

// handleMetrics exposes the service counters in Prometheus text format:
// admission state, both cache layers (the daemon's result cache and the
// shared trace cache underneath it), run counters, and the run-latency
// histogram via the telemetry package's exposition writer.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	queued, inFlight := s.adm.depth()
	entries, hits, misses := s.store.stats()
	tEntries, tHits, tMisses := tracegen.CacheStats()
	fmt.Fprintf(w,
		"# TYPE dmpd_queue_depth gauge\ndmpd_queue_depth %d\n"+
			"# TYPE dmpd_inflight gauge\ndmpd_inflight %d\n"+
			"# TYPE dmpd_result_cache_entries gauge\ndmpd_result_cache_entries %d\n"+
			"# TYPE dmpd_result_cache_hits_total counter\ndmpd_result_cache_hits_total %d\n"+
			"# TYPE dmpd_result_cache_misses_total counter\ndmpd_result_cache_misses_total %d\n"+
			"# TYPE dmpd_trace_cache_entries gauge\ndmpd_trace_cache_entries %d\n"+
			"# TYPE dmpd_trace_cache_hits_total counter\ndmpd_trace_cache_hits_total %d\n"+
			"# TYPE dmpd_trace_cache_misses_total counter\ndmpd_trace_cache_misses_total %d\n",
		queued, inFlight, entries, hits, misses, tEntries, tHits, tMisses)
	s.metricsMu.Lock()
	defer s.metricsMu.Unlock()
	fmt.Fprintf(w,
		"# TYPE dmpd_scenarios_started_total counter\ndmpd_scenarios_started_total %d\n"+
			"# TYPE dmpd_scenarios_completed_total counter\ndmpd_scenarios_completed_total %d\n"+
			"# TYPE dmpd_scenarios_failed_total counter\ndmpd_scenarios_failed_total %d\n",
		s.started, s.completed, s.failed)
	_ = s.runMS.WriteText(w, "dmpd_scenario_run_ms")
}

func writeResult(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	_, _ = w.Write(body)
}

func writeRunning(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_, _ = w.Write([]byte(`{"status":"running"}` + "\n"))
}

// writeRunError maps a failed run onto a status: admission overflow is the
// client's 429 (with a Retry-After hint), cancellation — only reachable
// when the daemon itself is shutting down, since a live waiter keeps its
// run alive — is 503, anything else 500.
func writeRunError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, errBusy):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("server: run aborted: %w", err))
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body := append(strconv.AppendQuote([]byte(`{"error":`), err.Error()), '}', '\n')
	_, _ = w.Write(body)
}
