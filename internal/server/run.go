package server

import (
	"bytes"
	"context"
	"strconv"
	"sync"
	"time"

	"dismem/internal/experiments"
	"dismem/internal/telemetry"
)

// run executes one admitted scenario to completion and publishes its
// outcome. It is the single writer of its entry and runs under the entry's
// context — not any one request's — so it survives its initiating client
// as long as anyone still waits, and aborts promptly once nobody does.
//
// runFn is swapped by lifecycle tests to stand in a controllable
// computation; production code always goes through execute.
func (s *Server) run(e *entry, spec *experiments.ScenarioSpec) {
	start := time.Now()
	result, tel, err := s.runFn(e.ctx, e.id, spec) //dmplint:ignore ctxflow e.ctx is the entry's own lifecycle context, cancelled when the last waiter leaves — the intended context here, not a dropped request one
	s.observeRun(time.Since(start), err)
	s.store.complete(e, result, tel, err)
}

// execute is the production runFn: admission, simulation, rendering.
// Admission is taken here rather than in the handler so that joining an
// in-flight or cached scenario never consumes a slot — single-flight
// collapsing is what lets 64 identical requests cost one run.
func (s *Server) execute(ctx context.Context, id string, spec *experiments.ScenarioSpec) (result, tel []byte, err error) {
	if err := s.adm.acquire(ctx); err != nil {
		return nil, nil, err
	}
	defer s.adm.release()
	cap := &telemetryCapture{interval: s.cfg.TelemetryInterval}
	spec.Telemetry = cap.factory
	res, err := s.cfg.Preset.RunScenarioSpecCtx(ctx, spec)
	if err != nil {
		return nil, nil, err
	}
	return RenderResult(id, s.cfg.Preset.Name, res), cap.assemble(res), nil
}

// runBranch executes one admitted branch request to completion, mirroring
// run: entry context, single writer, metrics. Branch entries cache their
// rendering but carry no telemetry stream (the branch rows already report
// the fork economics).
func (s *Server) runBranch(e *entry, spec *experiments.ScenarioSpec, br *experiments.BranchSpec) {
	start := time.Now()
	result, err := s.branchFn(e.ctx, e.id, spec, br) //dmplint:ignore ctxflow e.ctx is the entry's own lifecycle context, cancelled when the last waiter leaves — the intended context here, not a dropped request one
	s.observeRun(time.Since(start), err)
	s.store.complete(e, result, nil, err)
}

// executeBranch is the production branchFn: the same admission gate as a
// scenario (the prefix re-simulation plus its concurrent branch suffixes
// are one run's worth of load), then RunBranchSpec and a deterministic
// rendering.
func (s *Server) executeBranch(ctx context.Context, id string, spec *experiments.ScenarioSpec, br *experiments.BranchSpec) ([]byte, error) {
	if err := s.adm.acquire(ctx); err != nil {
		return nil, err
	}
	defer s.adm.release()
	res, err := s.cfg.Preset.RunBranchSpec(ctx, spec, br)
	if err != nil {
		return nil, err
	}
	return RenderBranchResult(id, s.cfg.Preset.Name, res), nil
}

// telemetryCapture collects one JSONL stream per sweep cell. Cells run on
// parallel sweep workers, so the factory hands each its own buffer (the
// map is the only shared state); assembly happens after the sweep returns,
// stitching the per-cell streams in result-row order under cell-header
// lines. Per-cell streams are byte-deterministic and the row order is
// fixed, so the assembled stream is too.
type telemetryCapture struct {
	interval float64
	mu       sync.Mutex
	cells    map[string]*bytes.Buffer //dmp:guardedby(mu)
}

func cellKey(memPct int, pol string) string {
	return strconv.Itoa(memPct) + "|" + pol
}

func (c *telemetryCapture) factory(memPct int, pol string) *telemetry.Recorder {
	buf := &bytes.Buffer{}
	c.mu.Lock()
	if c.cells == nil {
		c.cells = make(map[string]*bytes.Buffer)
	}
	c.cells[cellKey(memPct, pol)] = buf
	c.mu.Unlock()
	return telemetry.New(telemetry.Options{
		Sink:           telemetry.NewJSONL(buf),
		SampleInterval: c.interval,
	})
}

// assemble renders the stream: for each result row, a cell-header line
// then that cell's JSONL events. Called after every recorder is closed
// (RunScenarioSpecCtx closes them before returning), so the buffers are
// complete and quiescent.
func (c *telemetryCapture) assemble(res *experiments.ScenarioResult) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []byte
	for _, row := range res.Rows {
		out = append(out, `{"cell":{"mem_pct":`...)
		out = strconv.AppendInt(out, int64(row.MemPct), 10)
		out = append(out, `,"policy":`...)
		out = strconv.AppendQuote(out, row.Policy)
		out = append(out, "}}\n"...)
		if buf := c.cells[cellKey(row.MemPct, row.Policy)]; buf != nil {
			out = append(out, buf.Bytes()...)
		}
	}
	return out
}
