package server

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dismem/internal/experiments"
)

// benchSpec is the e2e scenario: two cells at Bench scale, small enough
// to run (with telemetry capture) in a unit-test budget.
const benchSpec = `{
  "name": "e2e",
  "mem_pcts": [100],
  "policies": ["static", "dynamic"]
}`

func loadSpec(t *testing.T, doc string) *experiments.ScenarioSpec {
	t.Helper()
	s, err := experiments.LoadScenario(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// doPost is goroutine-safe: it reports rather than fails.
func doPost(client *http.Client, url, doc string) (code int, body string, hdr http.Header, err error) {
	resp, err := client.Post(url+"/v1/scenarios", "application/json", strings.NewReader(doc))
	if err != nil {
		return 0, "", nil, err
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(b), resp.Header, err
}

func postSpec(t *testing.T, client *http.Client, url, doc string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url+"/v1/scenarios", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestSingleFlightDeterminism is the headline e2e contract: 64 concurrent
// identical POSTs execute exactly one simulation and all receive the same
// bytes — which are the bytes an offline run of the same spec renders.
func TestSingleFlightDeterminism(t *testing.T) {
	p := experiments.Bench()
	s := New(Config{Preset: p, MaxInFlight: 2, TelemetryInterval: 600})
	var runs atomic.Int32
	prod := s.runFn
	s.runFn = func(ctx context.Context, id string, spec *experiments.ScenarioSpec) ([]byte, []byte, error) {
		runs.Add(1)
		return prod(ctx, id, spec)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const clients = 64
	bodies := make([]string, clients)
	codes := make([]int, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i], bodies[i], _, errs[i] = doPost(ts.Client(), ts.URL, benchSpec)
		}(i)
	}
	wg.Wait()

	if n := runs.Load(); n != 1 {
		t.Fatalf("64 identical POSTs ran %d simulations, want 1", n)
	}
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if codes[i] != http.StatusOK {
			t.Fatalf("client %d: status %d, body %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("client %d received different bytes", i)
		}
	}

	// The service boundary adds nothing: an offline run of the same spec
	// renders the identical document.
	spec := loadSpec(t, benchSpec)
	id, err := p.ScenarioKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunScenarioSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := RenderResult(id, p.Name, res)
	if bodies[0] != string(want) {
		t.Fatalf("daemon digest %x != offline digest %x",
			sha256.Sum256([]byte(bodies[0])), sha256.Sum256(want))
	}

	// The result is cached: GET serves the same bytes, telemetry streams
	// per-cell headers, and the cache counters saw 63 collapsed joins.
	resp, body := get(t, ts.URL+"/v1/scenarios/"+id)
	if resp.StatusCode != http.StatusOK || string(body) != string(want) {
		t.Fatalf("GET: status %d, bytes match %v", resp.StatusCode, string(body) == string(want))
	}
	resp, tel := get(t, ts.URL+"/v1/scenarios/"+id+"/telemetry")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("telemetry status %d", resp.StatusCode)
	}
	for _, cell := range []string{`{"cell":{"mem_pct":100,"policy":"static"}}`, `{"cell":{"mem_pct":100,"policy":"dynamic"}}`} {
		if !strings.Contains(string(tel), cell) {
			t.Fatalf("telemetry stream missing header %s", cell)
		}
	}
	if !strings.Contains(string(tel), `"ev":"job_submit"`) {
		t.Fatal("telemetry stream has no events")
	}
	// GETs peek without joining, so the join counters are exactly the
	// POST fan-in: one run, 63 collapsed requests.
	if _, hits, misses := s.store.stats(); misses != 1 || hits != clients-1 {
		t.Fatalf("cache stats hits=%d misses=%d, want %d/1", hits, misses, clients-1)
	}

	resp, metrics := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"dmpd_result_cache_misses_total 1",
		"dmpd_scenarios_started_total 1",
		"dmpd_scenarios_completed_total 1",
		"dmpd_trace_cache_entries",
		"dmpd_scenario_run_ms_count 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("metrics missing %q:\n%s", want, metrics)
		}
	}
}

// stubRun installs a controllable runFn that still goes through real
// admission: each run signals on started, then blocks until release is
// closed or its context is cancelled.
func stubRun(s *Server, started chan string, release chan struct{}) (cur, max *atomic.Int32) {
	cur, max = new(atomic.Int32), new(atomic.Int32)
	s.runFn = func(ctx context.Context, id string, _ *experiments.ScenarioSpec) ([]byte, []byte, error) {
		if err := s.adm.acquire(ctx); err != nil {
			return nil, nil, err
		}
		defer s.adm.release()
		if c := cur.Add(1); c > max.Load() {
			max.Store(c)
		}
		defer cur.Add(-1)
		if started != nil {
			started <- id
		}
		select {
		case <-release:
			return []byte(`{"id":"` + id + `"}` + "\n"), nil, nil
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	return cur, max
}

func namedSpec(name string) string {
	return fmt.Sprintf(`{"name": %q, "mem_pcts": [100], "policies": ["static"]}`, name)
}

// TestQueueOverflow fills the one run slot and the one queue seat, then
// proves the next distinct scenario bounces with 429 + Retry-After while
// the in-flight bound holds; releasing the gate completes the admitted
// pair.
func TestQueueOverflow(t *testing.T) {
	s := New(Config{Preset: experiments.Bench(), MaxInFlight: 1, MaxQueue: 1})
	started := make(chan string, 8)
	release := make(chan struct{})
	_, maxInFlight := stubRun(s, started, release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		code int
		body string
	}
	results := make(chan result, 2)
	post := func(name string) {
		code, body, _, err := doPost(ts.Client(), ts.URL, namedSpec(name))
		if err != nil {
			t.Errorf("post %s: %v", name, err)
		}
		results <- result{code, body}
	}
	go post("a")
	<-started // a holds the slot
	go post("b")
	waitFor(t, "b to queue", func() bool { q, _ := s.adm.depth(); return q == 1 })

	resp, body := postSpec(t, ts.Client(), ts.URL, namedSpec("c"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: status %d, body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(release)
	<-started // b gets the slot
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("admitted scenario: status %d body %s", r.code, r.body)
		}
	}
	if m := maxInFlight.Load(); m != 1 {
		t.Fatalf("in-flight bound violated: saw %d concurrent runs", m)
	}
}

// TestClientCancelFreesSlot proves a disconnecting client aborts its
// (otherwise unwatched) run: the slot frees and a subsequent scenario runs.
func TestClientCancelFreesSlot(t *testing.T) {
	s := New(Config{Preset: experiments.Bench(), MaxInFlight: 1, MaxQueue: 1})
	started := make(chan string, 8)
	release := make(chan struct{})
	stubRun(s, started, release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/scenarios", strings.NewReader(namedSpec("doomed")))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := ts.Client().Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started // the run holds the only slot
	cancel()  // client disconnects; nobody else wants the answer
	if err := <-errc; err == nil {
		t.Fatal("cancelled request returned without error")
	}
	waitFor(t, "slot to free", func() bool { _, f := s.adm.depth(); return f == 0 })

	// The freed slot admits new work immediately: with the gate now open,
	// a fresh scenario acquires the slot and completes.
	close(release)
	resp, body := postSpec(t, ts.Client(), ts.URL, namedSpec("next"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-cancel scenario: status %d body %s", resp.StatusCode, body)
	}
	// The abandoned run was evicted, not cached: a retry starts fresh.
	if _, known, _ := s.store.peek(mustKey(t, s, "doomed")); known {
		t.Fatal("abandoned scenario still in store")
	}
}

func mustKey(t *testing.T, s *Server, name string) string {
	t.Helper()
	id, err := s.cfg.Preset.ScenarioKey(loadSpec(t, namedSpec(name)))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestGracefulShutdownDrains proves http.Server.Shutdown waits for an
// in-flight scenario: the client gets its full 200 even though shutdown
// began mid-run, and Shutdown returns clean.
func TestGracefulShutdownDrains(t *testing.T) {
	s := New(Config{Preset: experiments.Bench(), MaxInFlight: 1})
	started := make(chan string, 8)
	release := make(chan struct{})
	stubRun(s, started, release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		code int
		body string
	}
	results := make(chan result, 1)
	go func() {
		code, body, _, err := doPost(ts.Client(), ts.URL, namedSpec("draining"))
		if err != nil {
			t.Errorf("post: %v", err)
		}
		results <- result{code, body}
	}()
	<-started

	shut := make(chan error, 1)
	go func() { shut <- ts.Config.Shutdown(context.Background()) }()
	time.Sleep(10 * time.Millisecond) // let Shutdown observe the active request
	close(release)

	if err := <-shut; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r := <-results
	if r.code != http.StatusOK || !strings.Contains(r.body, `"id"`) {
		t.Fatalf("drained request: status %d body %s", r.code, r.body)
	}
}

// TestAbortAfterDrainDeadline is the forced half of shutdown: Abort
// cancels the base context and a stuck run surfaces as 503.
func TestAbortAfterDrainDeadline(t *testing.T) {
	s := New(Config{Preset: experiments.Bench(), MaxInFlight: 1})
	started := make(chan string, 8)
	release := make(chan struct{})
	defer close(release)
	stubRun(s, started, release)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	results := make(chan int, 1)
	go func() {
		code, _, _, err := doPost(ts.Client(), ts.URL, namedSpec("stuck"))
		if err != nil {
			t.Errorf("post: %v", err)
		}
		results <- code
	}()
	<-started
	s.Abort()
	if code := <-results; code != http.StatusServiceUnavailable {
		t.Fatalf("aborted run: status %d, want 503", code)
	}
}

// TestValidationAndLookups covers the request-level error surface.
func TestValidationAndLookups(t *testing.T) {
	s := New(Config{Preset: experiments.Bench()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postSpec(t, ts.Client(), ts.URL, `{"policies": ["magic"]}`)
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "policies[0]") {
		t.Fatalf("bad spec: status %d body %s", resp.StatusCode, body)
	}
	resp, _ = postSpec(t, ts.Client(), ts.URL, ``)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty spec: status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/scenarios/deadbeef")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/scenarios/deadbeef/telemetry")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown telemetry: status %d", resp.StatusCode)
	}
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}

	// A running scenario peeks as 202 on both GET endpoints.
	started := make(chan string, 1)
	release := make(chan struct{})
	stubRun(s, started, release)
	go doPost(ts.Client(), ts.URL, namedSpec("slow"))
	id := <-started
	resp, body = get(t, ts.URL+"/v1/scenarios/"+id)
	if resp.StatusCode != http.StatusAccepted || !strings.Contains(string(body), "running") {
		t.Fatalf("running peek: %d %s", resp.StatusCode, body)
	}
	resp, _ = get(t, ts.URL+"/v1/scenarios/"+id+"/telemetry")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("running telemetry peek: %d", resp.StatusCode)
	}
	close(release)
}

// postBranch POSTs a branch document against a scenario id.
func postBranch(t *testing.T, client *http.Client, url, id, doc string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url+"/v1/scenarios/"+id+"/branch", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestBranchEndpoint is the what-if e2e contract: a completed scenario's
// cached state branches under variant overlays, the response is
// byte-identical to an offline RunBranchSpec rendering, identical branch
// requests single-flight onto one computation, and the branch result joins
// the same cache (a branch id answers GET).
func TestBranchEndpoint(t *testing.T) {
	p := experiments.Bench()
	s := New(Config{Preset: p, MaxInFlight: 2})
	var branchRuns atomic.Int32
	prod := s.branchFn
	s.branchFn = func(ctx context.Context, id string, spec *experiments.ScenarioSpec, br *experiments.BranchSpec) ([]byte, error) {
		branchRuns.Add(1)
		return prod(ctx, id, spec, br)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const scenarioDoc = `{"name":"branchable","mem_pcts":[100],"policies":["dynamic"]}`
	resp, body := postSpec(t, ts.Client(), ts.URL, scenarioDoc)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario: status %d body %s", resp.StatusCode, body)
	}
	spec := loadSpec(t, scenarioDoc)
	id, err := p.ScenarioKey(spec)
	if err != nil {
		t.Fatal(err)
	}

	const branchDoc = `{"mem_pct":100,"policy":"dynamic","at_time_s":3600,
		"variants":[{"name":"noop"},{"name":"swap","policy":"static"},{"name":"repack","repack":true}]}`
	codes := make([]int, 8)
	bodies := make([]string, 8)
	var wg sync.WaitGroup
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/scenarios/"+id+"/branch",
				"application/json", strings.NewReader(branchDoc))
			if err != nil {
				t.Errorf("branch %d: %v", i, err)
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			codes[i], bodies[i] = resp.StatusCode, string(b)
		}(i)
	}
	wg.Wait()
	if n := branchRuns.Load(); n != 1 {
		t.Fatalf("8 identical branch POSTs ran %d computations, want 1", n)
	}
	for i := range codes {
		if codes[i] != http.StatusOK {
			t.Fatalf("branch %d: status %d body %s", i, codes[i], bodies[i])
		}
		if bodies[i] != bodies[0] {
			t.Fatalf("branch %d received different bytes", i)
		}
	}

	// The service boundary adds nothing: the offline branch run renders the
	// identical document.
	br, err := experiments.LoadBranchSpec(strings.NewReader(branchDoc))
	if err != nil {
		t.Fatal(err)
	}
	bres, err := p.RunBranchSpec(context.Background(), spec, br)
	if err != nil {
		t.Fatal(err)
	}
	bid := experiments.BranchKey(id, br)
	if want := RenderBranchResult(bid, p.Name, bres); bodies[0] != string(want) {
		t.Fatalf("daemon branch bytes != offline rendering\ndaemon:  %s\noffline: %s", bodies[0], want)
	}
	for _, frag := range []string{`"name":"base"`, `"name":"noop"`, `"name":"swap"`, `"name":"repack"`, `"shared_events":`} {
		if !strings.Contains(bodies[0], frag) {
			t.Fatalf("branch response missing %s: %s", frag, bodies[0])
		}
	}

	// The branch result is cached under its own content address.
	resp, cached := get(t, ts.URL+"/v1/scenarios/"+bid)
	if resp.StatusCode != http.StatusOK || string(cached) != bodies[0] {
		t.Fatalf("cached branch GET: status %d, bytes match %v", resp.StatusCode, string(cached) == bodies[0])
	}
}

// TestBranchErrors covers the branch endpoint's error surface.
func TestBranchErrors(t *testing.T) {
	p := experiments.Bench()
	s := New(Config{Preset: p})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const okBranch = `{"mem_pct":100,"policy":"dynamic","variants":[{"name":"noop"}]}`
	resp, _ := postBranch(t, ts.Client(), ts.URL, "deadbeef", okBranch)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown scenario: status %d", resp.StatusCode)
	}

	const scenarioDoc = `{"name":"parent","mem_pcts":[100],"policies":["dynamic"]}`
	if resp, body := postSpec(t, ts.Client(), ts.URL, scenarioDoc); resp.StatusCode != http.StatusOK {
		t.Fatalf("scenario: status %d body %s", resp.StatusCode, body)
	}
	id := func() string {
		k, err := p.ScenarioKey(loadSpec(t, scenarioDoc))
		if err != nil {
			t.Fatal(err)
		}
		return k
	}()

	for name, tc := range map[string]struct {
		doc  string
		code int
	}{
		"malformed":    {`{"mem_pct":`, http.StatusBadRequest},
		"unknown-knob": {`{"mem_pct":100,"policy":"dynamic","warp":9,"variants":[{"name":"a"}]}`, http.StatusBadRequest},
		"no-variants":  {`{"mem_pct":100,"policy":"dynamic"}`, http.StatusBadRequest},
		"foreign-cell": {`{"mem_pct":50,"policy":"dynamic","variants":[{"name":"a"}]}`, http.StatusBadRequest},
		"foreign-pol":  {`{"mem_pct":100,"policy":"static","variants":[{"name":"a"}]}`, http.StatusBadRequest},
	} {
		if resp, body := postBranch(t, ts.Client(), ts.URL, id, tc.doc); resp.StatusCode != tc.code {
			t.Fatalf("%s: status %d body %s, want %d", name, resp.StatusCode, body, tc.code)
		}
	}

	// Branching a branch result is refused.
	resp, body := postBranch(t, ts.Client(), ts.URL, id, okBranch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("branch: status %d body %s", resp.StatusCode, body)
	}
	br, err := experiments.LoadBranchSpec(strings.NewReader(okBranch))
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = postBranch(t, ts.Client(), ts.URL, experiments.BranchKey(id, br), okBranch)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("branch-of-branch: status %d, want 409", resp.StatusCode)
	}

	// An in-flight parent answers 202, like a GET peek.
	started := make(chan string, 1)
	release := make(chan struct{})
	stubRun(s, started, release)
	go doPost(ts.Client(), ts.URL, namedSpec("inflight"))
	slowID := <-started
	resp, _ = postBranch(t, ts.Client(), ts.URL, slowID, okBranch)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("in-flight parent: status %d, want 202", resp.StatusCode)
	}
	close(release)
}

// TestStoreLRUEviction bounds the result cache: completing a third entry
// under cap 2 evicts the least recently used.
func TestStoreLRUEviction(t *testing.T) {
	st := newStore(2)
	base := context.Background()
	complete := func(id string) *entry {
		e, started := st.join(base, id)
		if !started {
			t.Fatalf("join(%s) did not start", id)
		}
		st.complete(e, []byte(id), nil, nil)
		return e
	}
	complete("a")
	complete("b")
	if _, known, done := st.peek("a"); !known || !done {
		t.Fatal("a missing before eviction")
	} // also freshens a
	complete("c")
	if _, known, _ := st.peek("b"); known {
		t.Fatal("b not evicted (a was freshened)")
	}
	if _, known, _ := st.peek("a"); !known {
		t.Fatal("a evicted despite freshening")
	}
	if entries, _, _ := st.stats(); entries != 2 {
		t.Fatalf("entries = %d, want 2", entries)
	}
	// A cached hit serves without starting a run.
	e, started := st.join(base, "c")
	if started || string(e.result) != "c" {
		t.Fatalf("cached join: started=%v result=%q", started, e.result)
	}
}
