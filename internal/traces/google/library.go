package google

import (
	"errors"
	"math"
	"math/rand"

	"dismem/internal/memtrace"
)

// ShapeLibrary is the paper's Step 6: a pool of per-job memory-usage
// shapes mined from the (synthetic) Google trace, matched to synthetic jobs
// by similarity and rescaled to the job's wallclock and peak. It implements
// workload.UsageSource.
type ShapeLibrary struct {
	shapes []shape
	// RDPEpsilonFrac is the RDP tolerance as a fraction of each shape's
	// peak (default 0.05), applied when traces are extracted.
	RDPEpsilonFrac float64
}

type shape struct {
	trace   *memtrace.Trace
	peakMB  int64
	runtime float64
}

// ErrEmptyLibrary reports that filtering left no usable shapes.
var ErrEmptyLibrary = errors.New("google: no batch collections with usage data")

// NewShapeLibrary mines a dataset: batch-filters it, converts each
// collection's windows to a usage trace, and RDP-reduces the trace.
func NewShapeLibrary(d *Dataset, rdpEpsilonFrac float64) (*ShapeLibrary, error) {
	if rdpEpsilonFrac <= 0 {
		rdpEpsilonFrac = 0.05
	}
	lib := &ShapeLibrary{RDPEpsilonFrac: rdpEpsilonFrac}
	for _, c := range d.FilterBatch() {
		tr, err := c.UsageTrace()
		if err != nil {
			continue
		}
		peak := tr.Peak()
		if peak == 0 {
			continue
		}
		tr = tr.RDP(rdpEpsilonFrac * float64(peak))
		lib.shapes = append(lib.shapes, shape{trace: tr, peakMB: peak, runtime: c.RuntimeSec})
	}
	if len(lib.shapes) == 0 {
		return nil, ErrEmptyLibrary
	}
	return lib, nil
}

// Len returns the number of shapes in the library.
func (l *ShapeLibrary) Len() int { return len(l.shapes) }

// TraceFor implements workload.UsageSource: pick the nearest shape by
// log-scaled (peak memory, runtime) Euclidean distance, stretch its time
// axis to the job's runtime, and rescale its values so the peak equals
// peakMB exactly.
func (l *ShapeLibrary) TraceFor(rng *rand.Rand, peakMB int64, runtime float64) *memtrace.Trace {
	best := 0
	bestD := math.Inf(1)
	// Randomised tie-breaking start avoids always reusing shape 0 for
	// equidistant candidates.
	offset := rng.Intn(len(l.shapes))
	for k := range l.shapes {
		i := (k + offset) % len(l.shapes)
		s := &l.shapes[i]
		dm := math.Log(float64(s.peakMB)+1) - math.Log(float64(peakMB)+1)
		dr := math.Log(s.runtime+1) - math.Log(runtime+1)
		d := dm*dm + dr*dr
		if d < bestD {
			bestD = d
			best = i
		}
	}
	s := &l.shapes[best]
	scaled, err := s.trace.Scale(runtime)
	if err != nil {
		// runtime > 0 is guaranteed by job validation; fall back to a
		// constant trace rather than corrupt the pipeline.
		return memtrace.Constant(peakMB)
	}
	return rescale(scaled, peakMB)
}

// rescale multiplies a trace's values so its peak becomes peakMB.
func rescale(tr *memtrace.Trace, peakMB int64) *memtrace.Trace {
	oldPeak := tr.Peak()
	if oldPeak == 0 {
		return memtrace.Constant(peakMB)
	}
	f := float64(peakMB) / float64(oldPeak)
	pts := tr.Points()
	out := make([]memtrace.Point, len(pts))
	reachedPeak := false
	for i, p := range pts {
		mb := int64(float64(p.MB) * f)
		if p.MB == oldPeak {
			mb = peakMB // exact, immune to rounding
			reachedPeak = true
		}
		out[i] = memtrace.Point{T: p.T, MB: mb}
	}
	if !reachedPeak && len(out) > 0 {
		out[0].MB = peakMB
	}
	return memtrace.MustNew(out)
}
