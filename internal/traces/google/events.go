package google

import (
	"math/rand"
	"sort"
)

// The 2019 trace records collection lifecycles as event streams; a job may
// be evicted and rescheduled several times before finishing, being killed,
// or failing. The paper keeps only jobs that "finished normally at least
// once" — this file synthesises the event layer so that the filter derives
// from events instead of a flag.

// EventType is a collection lifecycle event kind.
type EventType int

const (
	EvSubmit EventType = iota
	EvSchedule
	EvEvict
	EvFinish
	EvKill
	EvFail
)

func (e EventType) String() string {
	switch e {
	case EvSubmit:
		return "SUBMIT"
	case EvSchedule:
		return "SCHEDULE"
	case EvEvict:
		return "EVICT"
	case EvFinish:
		return "FINISH"
	case EvKill:
		return "KILL"
	case EvFail:
		return "FAIL"
	}
	return "UNKNOWN"
}

// Terminal reports whether the event ends an execution attempt for good.
func (e EventType) Terminal() bool {
	return e == EvFinish || e == EvKill || e == EvFail
}

// Event is one lifecycle record.
type Event struct {
	TimeSec float64
	Type    EventType
}

// FinishedNormally reports whether the collection's event stream contains
// a FINISH — the paper's "finished normally at least once" filter. A
// collection without synthesised events falls back to the FinishedOK flag.
func (c *Collection) FinishedNormally() bool {
	if len(c.Events) == 0 {
		return c.FinishedOK
	}
	for _, ev := range c.Events {
		if ev.Type == EvFinish {
			return true
		}
	}
	return false
}

// Attempts counts the execution attempts (SCHEDULE events).
func (c *Collection) Attempts() int {
	n := 0
	for _, ev := range c.Events {
		if ev.Type == EvSchedule {
			n++
		}
	}
	return n
}

// synthesiseEvents builds a plausible lifecycle: SUBMIT, then one or more
// SCHEDULE attempts, each ending in EVICT (with a reschedule) until a
// terminal FINISH / KILL / FAIL. Low-priority work is evicted and killed
// more often, matching the trace's semantics of best-effort tiers making
// room for production jobs.
func synthesiseEvents(rng *rand.Rand, c *Collection) []Event {
	evictProb := 0.08
	killProb := 0.10
	if c.Priority <= BestEffortBatch {
		evictProb = 0.25
		killProb = 0.15
	}
	t := rng.Float64() * 1e6
	events := []Event{{TimeSec: t, Type: EvSubmit}}
	t += rng.Float64() * 600 // queueing delay
	for attempt := 0; ; attempt++ {
		events = append(events, Event{TimeSec: t, Type: EvSchedule})
		run := c.RuntimeSec * (0.2 + 0.8*rng.Float64())
		if attempt > 3 || rng.Float64() > evictProb {
			// This attempt reaches a terminal state.
			t += c.RuntimeSec
			switch {
			case rng.Float64() < killProb:
				events = append(events, Event{TimeSec: t, Type: EvKill})
			case rng.Float64() < 0.05:
				events = append(events, Event{TimeSec: t, Type: EvFail})
			default:
				events = append(events, Event{TimeSec: t, Type: EvFinish})
			}
			return events
		}
		t += run
		events = append(events, Event{TimeSec: t, Type: EvEvict})
		t += rng.Float64() * 1800 // requeue delay
	}
}

// ValidateEvents checks an event stream is well-formed: time-ordered,
// starting with SUBMIT, alternating SCHEDULE/(EVICT|terminal), ending with
// a terminal event.
func ValidateEvents(events []Event) bool {
	if len(events) < 3 {
		return false
	}
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].TimeSec < events[j].TimeSec }) {
		return false
	}
	if events[0].Type != EvSubmit {
		return false
	}
	if !events[len(events)-1].Type.Terminal() {
		return false
	}
	running := false
	for _, ev := range events[1:] {
		switch ev.Type {
		case EvSchedule:
			if running {
				return false
			}
			running = true
		case EvEvict:
			if !running {
				return false
			}
			running = false
		case EvFinish, EvKill, EvFail:
			if !running {
				return false
			}
			running = false
		case EvSubmit:
			return false
		}
	}
	return !running
}
