package google

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dismem/internal/memtrace"
)

func TestGeneratePopulation(t *testing.T) {
	d := Generate(rand.New(rand.NewSource(1)), 2000)
	if len(d.Collections) != 2000 {
		t.Fatalf("collections = %d", len(d.Collections))
	}
	byPrio := map[Priority]int{}
	allocSets := 0
	for i := range d.Collections {
		c := &d.Collections[i]
		byPrio[c.Priority]++
		if c.IsAllocSet {
			allocSets++
		}
		if len(c.WindowAvg) != len(c.WindowMax) || len(c.WindowMax) == 0 {
			t.Fatalf("collection %d: bad windows", c.ID)
		}
		for w := range c.WindowMax {
			if c.WindowAvg[w] > c.WindowMax[w] {
				t.Fatalf("collection %d window %d: avg %g > max %g",
					c.ID, w, c.WindowAvg[w], c.WindowMax[w])
			}
			if c.WindowMax[w] < 0 || c.WindowMax[w] > 1 {
				t.Fatalf("collection %d: normalised max %g outside [0,1]", c.ID, c.WindowMax[w])
			}
		}
	}
	// Cell b is batch-heavy: best-effort batch must dominate.
	if byPrio[BestEffortBatch] < byPrio[Production] {
		t.Fatalf("priorities = %v: batch must dominate in cell b", byPrio)
	}
	if allocSets == 0 {
		t.Fatal("no alloc sets generated")
	}
}

func TestFilterBatch(t *testing.T) {
	d := Generate(rand.New(rand.NewSource(2)), 3000)
	batch := d.FilterBatch()
	if len(batch) == 0 {
		t.Fatal("filter removed everything")
	}
	if len(batch) == len(d.Collections) {
		t.Fatal("filter removed nothing")
	}
	for _, c := range batch {
		if c.IsAllocSet || c.Priority != BestEffortBatch || c.SchedClass > 1 || !c.FinishedOK {
			t.Fatalf("filtered set contains non-conforming collection %+v", c)
		}
	}
}

func TestDenormalize(t *testing.T) {
	if got := Denormalize(1); got != LargestMachineMB {
		t.Fatalf("Denormalize(1) = %d, want %d", got, LargestMachineMB)
	}
	if got := Denormalize(0.5); got != LargestMachineMB/2 {
		t.Fatalf("Denormalize(0.5) = %d", got)
	}
	if got := Denormalize(-0.1); got != 0 {
		t.Fatalf("Denormalize(-0.1) = %d, want 0", got)
	}
}

func TestUsageTraceSemantics(t *testing.T) {
	c := &Collection{
		RuntimeSec: 900,
		WindowMax:  []float64{0.001, 0.002, 0.0015},
		WindowAvg:  []float64{0.0008, 0.0018, 0.001},
	}
	tr, err := c.UsageTrace()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 3 {
		t.Fatalf("trace points = %d, want 3", tr.Len())
	}
	// Usage between measurements equals the window max.
	if got := tr.At(100); got != Denormalize(0.001) {
		t.Fatalf("At(100) = %d, want window-0 max", got)
	}
	if got := tr.At(400); got != Denormalize(0.002) {
		t.Fatalf("At(400) = %d, want window-1 max", got)
	}
	if c.PeakMB() != Denormalize(0.002) {
		t.Fatalf("peak = %d", c.PeakMB())
	}
	empty := &Collection{}
	if _, err := empty.UsageTrace(); err != ErrNoWindows {
		t.Fatalf("err = %v, want ErrNoWindows", err)
	}
}

func TestShapeLibrary(t *testing.T) {
	d := Generate(rand.New(rand.NewSource(3)), 3000)
	lib, err := NewShapeLibrary(d, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() == 0 {
		t.Fatal("empty library")
	}
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct {
		peak    int64
		runtime float64
	}{
		{1024, 600}, {32 * 1024, 7200}, {120 * 1024, 86400}, {7, 60},
	} {
		tr := lib.TraceFor(rng, tc.peak, tc.runtime)
		if tr.Peak() != tc.peak {
			t.Fatalf("peak = %d, want %d", tr.Peak(), tc.peak)
		}
		if tr.Duration() > tc.runtime*1.0001 {
			t.Fatalf("duration = %g beyond runtime %g", tr.Duration(), tc.runtime)
		}
	}
}

func TestShapeLibraryEmptyDataset(t *testing.T) {
	if _, err := NewShapeLibrary(&Dataset{}, 0.05); err != ErrEmptyLibrary {
		t.Fatalf("err = %v, want ErrEmptyLibrary", err)
	}
}

func TestRescaleExactPeak(t *testing.T) {
	tr := memtrace.MustNew([]memtrace.Point{{T: 0, MB: 100}, {T: 10, MB: 333}, {T: 20, MB: 200}})
	out := rescale(tr, 1000)
	if out.Peak() != 1000 {
		t.Fatalf("peak = %d, want exactly 1000", out.Peak())
	}
	if out.At(0) >= out.Peak() {
		t.Fatal("shape flattened by rescale")
	}
}

// Property: library traces always hit the requested peak exactly and stay
// positive, for arbitrary peaks and runtimes.
func TestQuickLibraryPeakExact(t *testing.T) {
	d := Generate(rand.New(rand.NewSource(5)), 1000)
	lib, err := NewShapeLibrary(d, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	f := func(rawPeak uint32, rawRt uint32) bool {
		peak := int64(rawPeak%(130*1024)) + 1
		runtime := float64(rawRt%864000) + 60
		tr := lib.TraceFor(rng, peak, runtime)
		if tr.Peak() != peak {
			return false
		}
		for _, p := range tr.Points() {
			if p.MB < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
