// Package google synthesises a Borg-like cluster trace with the structure
// of the Google 2019 release (Tirmazi et al., EuroSys'20) that the paper
// mines for per-job memory-usage shapes.
//
// The real trace is obfuscated: memory is normalised to the largest machine
// (the paper denormalises against 12 TB) and usage is recorded as average
// and maximum over 5-minute windows. This package reproduces exactly those
// semantics on synthetic data so the downstream pipeline (filtering to
// best-effort batch jobs, denormalisation, window-max usage, matching by
// size/runtime/memory) exercises the same code paths.
package google

import (
	"errors"
	"math"
	"math/rand"

	"dismem/internal/memtrace"
)

// Priority tiers of the 2019 trace.
type Priority int

const (
	Free Priority = iota
	BestEffortBatch
	Mid
	Production
	Monitoring
)

func (p Priority) String() string {
	switch p {
	case Free:
		return "free"
	case BestEffortBatch:
		return "best-effort batch"
	case Mid:
		return "mid"
	case Production:
		return "production"
	case Monitoring:
		return "monitoring"
	}
	return "unknown"
}

// WindowSec is the trace's memory-usage recording window (5 minutes).
const WindowSec = 300.0

// LargestMachineMB is the denormalisation constant: the largest machine
// memory in operation at trace time was reported as 12 TB.
const LargestMachineMB = int64(12) * 1024 * 1024

// Collection is one trace entry: a job or an alloc set (a resource
// reservation jobs can run inside).
type Collection struct {
	ID         int
	IsAllocSet bool
	Priority   Priority
	SchedClass int // 0 = most latency-insensitive … 3 = most sensitive
	Tasks      int
	RuntimeSec float64
	FinishedOK bool      // finished normally at least once (derived from Events)
	Events     []Event   // lifecycle event stream
	WindowAvg  []float64 // per 5-min window, normalised to LargestMachineMB
	WindowMax  []float64
}

// Dataset is a synthetic Borg cell.
type Dataset struct {
	Collections []Collection
}

// shapeKind enumerates the synthetic usage-shape families observed in
// cluster traces: flat services, ramping batch jobs, phase-cyclic
// analytics, and spiky interactive work.
type shapeKind int

const (
	shapeFlat shapeKind = iota
	shapeRamp
	shapeCyclic
	shapeSpiky
	numShapes
)

// Generate synthesises a cell with n collections across all priority tiers.
func Generate(rng *rand.Rand, n int) *Dataset {
	d := &Dataset{Collections: make([]Collection, 0, n)}
	for i := 0; i < n; i++ {
		c := Collection{
			ID:         i + 1,
			IsAllocSet: rng.Float64() < 0.08,
			Priority:   samplePriority(rng),
			SchedClass: rng.Intn(4),
			Tasks:      1 + int(math.Exp(rng.NormFloat64()*1.2+1)),
			RuntimeSec: math.Exp(rng.NormFloat64()*1.5 + math.Log(2*3600)),
		}
		if c.RuntimeSec < WindowSec {
			c.RuntimeSec = WindowSec
		}
		c.Events = synthesiseEvents(rng, &c)
		c.FinishedOK = c.FinishedNormally()
		windows := int(math.Ceil(c.RuntimeSec / WindowSec))
		if windows > 2000 {
			windows = 2000
		}
		// Peak normalised memory: log-uniform between ~256 MB and
		// ~512 GB of the 12 TB machine.
		peak := math.Exp(rng.Float64()*math.Log(2048) + math.Log(256.0/float64(LargestMachineMB)))
		c.WindowAvg, c.WindowMax = synthesiseWindows(rng, shapeKind(rng.Intn(int(numShapes))), windows, peak)
		d.Collections = append(d.Collections, c)
	}
	return d
}

func samplePriority(rng *rand.Rand) Priority {
	// Cell b of the 2019 trace has the largest batch share.
	u := rng.Float64()
	switch {
	case u < 0.10:
		return Free
	case u < 0.60:
		return BestEffortBatch
	case u < 0.75:
		return Mid
	case u < 0.95:
		return Production
	default:
		return Monitoring
	}
}

// synthesiseWindows builds per-window (avg, max) pairs for one usage shape.
// Max ≥ avg in every window, and the global max equals peak.
func synthesiseWindows(rng *rand.Rand, kind shapeKind, n int, peak float64) (avg, max []float64) {
	avg = make([]float64, n)
	max = make([]float64, n)
	base := peak * (0.25 + 0.35*rng.Float64())
	peakAt := rng.Intn(n)
	for i := 0; i < n; i++ {
		var level float64
		switch kind {
		case shapeFlat:
			level = base * (0.9 + 0.2*rng.Float64())
		case shapeRamp:
			level = base + (peak-base)*float64(i)/float64(maxInt(n-1, 1))
		case shapeCyclic:
			phase := 2 * math.Pi * float64(i) / 12 // ~1 h period
			level = base + (peak-base)*0.5*(1+math.Sin(phase))
		case shapeSpiky:
			level = base
			if rng.Float64() < 0.1 {
				level = base + (peak-base)*rng.Float64()
			}
		}
		if level > peak {
			level = peak
		}
		jitter := 1 + 0.1*(rng.Float64()-0.5)
		a := level * jitter * 0.9
		m := level * jitter
		if m > peak {
			m = peak
		}
		if a > m {
			a = m
		}
		avg[i], max[i] = a, m
	}
	// Guarantee the peak is reached in exactly one window.
	max[peakAt] = peak
	if avg[peakAt] > peak {
		avg[peakAt] = peak
	}
	return avg, max
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FilterBatch applies the paper's selection: best-effort batch jobs (not
// alloc sets), latency-insensitive scheduling class (≤ 1), finished
// normally at least once.
func (d *Dataset) FilterBatch() []*Collection {
	var out []*Collection
	for i := range d.Collections {
		c := &d.Collections[i]
		if c.IsAllocSet || c.Priority != BestEffortBatch || c.SchedClass > 1 || !c.FinishedNormally() {
			continue
		}
		out = append(out, c)
	}
	return out
}

// ErrNoWindows reports a collection without usage records.
var ErrNoWindows = errors.New("google: collection has no usage windows")

// UsageTrace converts a collection's windowed records into a simulator
// usage trace: the maximum used memory defines the usage for the period
// between two measurements (paper §3.2.2), denormalised against the 12 TB
// machine.
func (c *Collection) UsageTrace() (*memtrace.Trace, error) {
	if len(c.WindowMax) == 0 {
		return nil, ErrNoWindows
	}
	pts := make([]memtrace.Point, len(c.WindowMax))
	for i, m := range c.WindowMax {
		pts[i] = memtrace.Point{T: float64(i) * WindowSec, MB: Denormalize(m)}
	}
	return memtrace.New(pts)
}

// Denormalize converts a normalised memory value into MB.
func Denormalize(norm float64) int64 {
	if norm < 0 {
		return 0
	}
	return int64(norm * float64(LargestMachineMB))
}

// PeakMB returns the collection's denormalised peak memory.
func (c *Collection) PeakMB() int64 {
	var p float64
	for _, m := range c.WindowMax {
		if m > p {
			p = m
		}
	}
	return Denormalize(p)
}
