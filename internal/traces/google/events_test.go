package google

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEventTypeStrings(t *testing.T) {
	for ev, want := range map[EventType]string{
		EvSubmit: "SUBMIT", EvSchedule: "SCHEDULE", EvEvict: "EVICT",
		EvFinish: "FINISH", EvKill: "KILL", EvFail: "FAIL",
	} {
		if ev.String() != want {
			t.Fatalf("%d.String() = %q", ev, ev.String())
		}
	}
	if EventType(99).String() != "UNKNOWN" {
		t.Fatal("unknown type not handled")
	}
	if !EvFinish.Terminal() || !EvKill.Terminal() || !EvFail.Terminal() {
		t.Fatal("terminal classification broken")
	}
	if EvSubmit.Terminal() || EvEvict.Terminal() || EvSchedule.Terminal() {
		t.Fatal("non-terminal classified terminal")
	}
}

func TestGeneratedEventsWellFormed(t *testing.T) {
	d := Generate(rand.New(rand.NewSource(21)), 2000)
	killed, finished, evicted := 0, 0, 0
	for i := range d.Collections {
		c := &d.Collections[i]
		if !ValidateEvents(c.Events) {
			t.Fatalf("collection %d: malformed events %v", c.ID, c.Events)
		}
		if c.FinishedOK != c.FinishedNormally() {
			t.Fatalf("collection %d: flag/event disagreement", c.ID)
		}
		if c.Attempts() < 1 {
			t.Fatalf("collection %d: no attempts", c.ID)
		}
		last := c.Events[len(c.Events)-1].Type
		switch last {
		case EvFinish:
			finished++
		case EvKill, EvFail:
			killed++
		}
		if c.Attempts() > 1 {
			evicted++
		}
	}
	if finished == 0 || killed == 0 || evicted == 0 {
		t.Fatalf("event diversity missing: finished=%d killed=%d evicted=%d", finished, killed, evicted)
	}
}

func TestBestEffortEvictedMoreThanProduction(t *testing.T) {
	d := Generate(rand.New(rand.NewSource(22)), 6000)
	attempts := map[Priority][2]int{} // [collections, attempts]
	for i := range d.Collections {
		c := &d.Collections[i]
		v := attempts[c.Priority]
		v[0]++
		v[1] += c.Attempts()
		attempts[c.Priority] = v
	}
	be := attempts[BestEffortBatch]
	prod := attempts[Production]
	if be[0] == 0 || prod[0] == 0 {
		t.Skip("tier missing at this seed")
	}
	beMean := float64(be[1]) / float64(be[0])
	prodMean := float64(prod[1]) / float64(prod[0])
	if beMean <= prodMean {
		t.Fatalf("best-effort mean attempts %g not above production %g", beMean, prodMean)
	}
}

func TestFilterUsesEvents(t *testing.T) {
	// A batch collection whose stream ends in KILL with no FINISH must
	// be filtered out even if the legacy flag says otherwise.
	c := Collection{
		ID: 1, Priority: BestEffortBatch, SchedClass: 0, FinishedOK: true,
		RuntimeSec: 600, WindowMax: []float64{0.001}, WindowAvg: []float64{0.001},
		Events: []Event{
			{TimeSec: 0, Type: EvSubmit},
			{TimeSec: 10, Type: EvSchedule},
			{TimeSec: 700, Type: EvKill},
		},
	}
	d := &Dataset{Collections: []Collection{c}}
	if got := d.FilterBatch(); len(got) != 0 {
		t.Fatal("killed-only collection survived the filter")
	}
	// Flag fallback when no events exist.
	c.Events = nil
	d = &Dataset{Collections: []Collection{c}}
	if got := d.FilterBatch(); len(got) != 1 {
		t.Fatal("event-less collection must fall back to the flag")
	}
}

func TestValidateEventsRejections(t *testing.T) {
	bad := [][]Event{
		nil,
		{{0, EvSubmit}},
		{{0, EvSchedule}, {1, EvFinish}, {2, EvFinish}},                // no submit
		{{0, EvSubmit}, {1, EvSchedule}, {2, EvEvict}},                 // no terminal
		{{0, EvSubmit}, {1, EvFinish}, {2, EvFinish}},                  // finish while not running
		{{0, EvSubmit}, {1, EvSchedule}, {2, EvSchedule}, {3, EvKill}}, // double schedule
		{{5, EvSubmit}, {1, EvSchedule}, {6, EvFinish}},                // unordered
	}
	for i, evs := range bad {
		if ValidateEvents(evs) {
			t.Errorf("case %d accepted: %v", i, evs)
		}
	}
}

// Property: synthesised event streams are always well-formed.
func TestQuickSynthesisedEventsValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := Collection{Priority: samplePriority(rng), RuntimeSec: 600 + rng.Float64()*86400}
		return ValidateEvents(synthesiseEvents(rng, &c))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
