package grizzly

import (
	"errors"
	"fmt"
	"sort"

	"dismem/internal/memtrace"
)

// This file models the raw layer of the Grizzly release: LDMS samples one
// record per node every 10 seconds, carrying the job occupying the node and
// its memory state. The paper's methodology (§3.1.1) *deduces* jobs from
// these records — a job's node count and duration come from grouping
// records by job ID. EmitRecords produces such a stream from a placed week
// and ReconstructJobs performs the paper's deduction, so the full
// records → jobs path is exercised end to end.

// Record is one LDMS sample.
type Record struct {
	TimeSec  float64
	Node     int
	JobID    int   // 0 when the node is idle
	ActiveMB int64 // memory actively used by the job on this node
	FreeMB   int64
}

// PlacedJob is a trace job with a concrete start time and node set within
// its week.
type PlacedJob struct {
	Job   *TraceJob
	Start float64
	Nodes []int
}

// End returns the job's completion time.
func (p *PlacedJob) End() float64 { return p.Start + p.Job.Duration }

// ErrTooFewNodes reports a week whose largest job exceeds the node count.
var ErrTooFewNodes = errors.New("grizzly: job larger than the system")

// Place assigns every job of the week a start time and node set using an
// earliest-free first-fit, the simplest layout consistent with the week's
// utilisation. Node IDs are 0-based and < nodes.
func (w *Week) Place(nodes int) ([]PlacedJob, error) {
	freeAt := make([]float64, nodes)
	placed := make([]PlacedJob, 0, len(w.Jobs))
	order := make([]*TraceJob, len(w.Jobs))
	for i := range w.Jobs {
		order[i] = &w.Jobs[i]
	}
	// Longest-first packing keeps the makespan near the week length.
	sort.Slice(order, func(a, b int) bool {
		if order[a].Duration != order[b].Duration {
			return order[a].Duration > order[b].Duration
		}
		return order[a].ID < order[b].ID
	})
	type nodeFree struct {
		id int
		at float64
	}
	for _, tj := range order {
		if tj.Nodes > nodes {
			return nil, fmt.Errorf("%w: job %d needs %d of %d nodes", ErrTooFewNodes, tj.ID, tj.Nodes, nodes)
		}
		nf := make([]nodeFree, nodes)
		for i := range freeAt {
			nf[i] = nodeFree{id: i, at: freeAt[i]}
		}
		sort.Slice(nf, func(a, b int) bool {
			if nf[a].at != nf[b].at {
				return nf[a].at < nf[b].at
			}
			return nf[a].id < nf[b].id
		})
		chosen := nf[:tj.Nodes]
		start := 0.0
		for _, c := range chosen {
			if c.at > start {
				start = c.at
			}
		}
		ids := make([]int, 0, tj.Nodes)
		for _, c := range chosen {
			ids = append(ids, c.id)
			freeAt[c.id] = start + tj.Duration
		}
		sort.Ints(ids)
		placed = append(placed, PlacedJob{Job: tj, Start: start, Nodes: ids})
	}
	sort.Slice(placed, func(a, b int) bool { return placed[a].Job.ID < placed[b].Job.ID })
	return placed, nil
}

// EmitRecords streams LDMS samples for the placement at the given sampling
// interval over [0, horizon). Idle nodes emit JobID 0 with full free
// memory. Records arrive in (time, node) order. The emit callback may stop
// the stream by returning an error.
func EmitRecords(placed []PlacedJob, nodes int, interval, horizon float64, emit func(Record) error) error {
	if interval <= 0 || horizon <= 0 {
		return errors.New("grizzly: non-positive interval or horizon")
	}
	// Index: node -> jobs placed on it (few per node, scan is fine).
	byNode := make([][]*PlacedJob, nodes)
	for i := range placed {
		for _, n := range placed[i].Nodes {
			byNode[n] = append(byNode[n], &placed[i])
		}
	}
	for t := 0.0; t < horizon; t += interval {
		for n := 0; n < nodes; n++ {
			rec := Record{TimeSec: t, Node: n, FreeMB: NodeMemMB}
			for _, pj := range byNode[n] {
				if t >= pj.Start && t < pj.End() {
					rec.JobID = pj.Job.ID
					rec.ActiveMB = pj.Job.Usage.At(t - pj.Start)
					rec.FreeMB = NodeMemMB - rec.ActiveMB
					break
				}
			}
			if err := emit(rec); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReconstructJobs performs the paper's deduction: group the record stream
// by job ID to recover each job's node count, duration, and per-node memory
// usage over time. The usage trace is taken from the job's lowest-numbered
// node and RDP-reduced with the given tolerance fraction of its peak.
func ReconstructJobs(records []Record, interval, rdpEpsilonFrac float64) ([]TraceJob, error) {
	if interval <= 0 {
		return nil, errors.New("grizzly: non-positive interval")
	}
	type acc struct {
		nodes   map[int]bool
		firstT  float64
		lastT   float64
		refNode int
		refPts  []memtrace.Point
		havePts bool
	}
	jobs := map[int]*acc{}
	for _, r := range records {
		if r.JobID == 0 {
			continue
		}
		a, ok := jobs[r.JobID]
		if !ok {
			a = &acc{nodes: map[int]bool{}, firstT: r.TimeSec, refNode: r.Node}
			jobs[r.JobID] = a
		}
		a.nodes[r.Node] = true
		if r.TimeSec < a.firstT {
			a.firstT = r.TimeSec
		}
		if r.TimeSec > a.lastT {
			a.lastT = r.TimeSec
		}
		if r.Node < a.refNode {
			a.refNode = r.Node
			a.refPts = nil
			a.havePts = false
		}
		if r.Node == a.refNode {
			a.refPts = append(a.refPts, memtrace.Point{T: r.TimeSec, MB: r.ActiveMB})
			a.havePts = true
		}
	}
	out := make([]TraceJob, 0, len(jobs))
	for id, a := range jobs {
		if !a.havePts {
			continue
		}
		sort.Slice(a.refPts, func(i, j int) bool { return a.refPts[i].T < a.refPts[j].T })
		pts := make([]memtrace.Point, 0, len(a.refPts))
		for _, p := range a.refPts {
			p.T -= a.firstT
			if len(pts) > 0 && p.T <= pts[len(pts)-1].T {
				continue
			}
			pts = append(pts, p)
		}
		tr, err := memtrace.New(pts)
		if err != nil {
			return nil, fmt.Errorf("grizzly: job %d: %v", id, err)
		}
		if rdpEpsilonFrac > 0 {
			tr = tr.RDP(rdpEpsilonFrac * float64(tr.Peak()))
		}
		out = append(out, TraceJob{
			ID:       id,
			Nodes:    len(a.nodes),
			Duration: a.lastT - a.firstT + interval, // last sample covers one period
			Usage:    tr,
		})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out, nil
}
