package grizzly

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dismem/internal/workload"
)

func smallParams(weeks int) Params {
	return Params{Nodes: 64, WeekCount: weeks}
}

func TestGenerateWeeks(t *testing.T) {
	d := Generate(smallParams(8), rand.New(rand.NewSource(1)))
	if len(d.Weeks) != 8 {
		t.Fatalf("weeks = %d, want 8", len(d.Weeks))
	}
	for _, w := range d.Weeks {
		if len(w.Jobs) == 0 {
			t.Fatalf("week %d has no jobs", w.Index)
		}
		if w.Utilization < 0.2 || w.Utilization > 1.2 {
			t.Fatalf("week %d utilisation %g implausible", w.Index, w.Utilization)
		}
		// Achieved utilisation must match the job content.
		var nh float64
		for i := range w.Jobs {
			nh += float64(w.Jobs[i].Nodes) * w.Jobs[i].Duration
		}
		got := nh / (float64(d.Nodes) * WeekSec)
		if math.Abs(got-w.Utilization) > 1e-9 {
			t.Fatalf("week %d: recorded util %g != computed %g", w.Index, w.Utilization, got)
		}
	}
}

func TestJobShapes(t *testing.T) {
	d := Generate(smallParams(3), rand.New(rand.NewSource(2)))
	for _, w := range d.Weeks {
		for i := range w.Jobs {
			j := &w.Jobs[i]
			if j.Nodes < 1 || j.Nodes > 128 {
				t.Fatalf("job %d: nodes %d", j.ID, j.Nodes)
			}
			if j.Duration < 120 || j.Duration > WeekSec {
				t.Fatalf("job %d: duration %g", j.ID, j.Duration)
			}
			if p := j.PeakMB(); p < 1 || p > NodeMemMB {
				t.Fatalf("job %d: peak %d outside (0, 128GB]", j.ID, p)
			}
			if j.Usage.Len() < 2 {
				t.Fatalf("job %d: trace too short", j.ID)
			}
		}
	}
}

func TestMemoryDistributionMatchesTable2(t *testing.T) {
	d := Generate(Params{Nodes: 256, WeekCount: 20}, rand.New(rand.NewSource(3)))
	var normalMB, largeMB []int64
	for _, w := range d.Weeks {
		for i := range w.Jobs {
			j := &w.Jobs[i]
			if j.Nodes > 32 {
				largeMB = append(largeMB, j.PeakMB())
			} else {
				normalMB = append(normalMB, j.PeakMB())
			}
		}
	}
	if len(normalMB) < 100 || len(largeMB) < 20 {
		t.Skipf("too few samples: %d normal, %d large", len(normalMB), len(largeMB))
	}
	got := workload.GrizzlyNormalSize.Histogram(normalMB)
	for i, b := range workload.GrizzlyNormalSize {
		if math.Abs(got[i]-b.Share) > 0.08 {
			t.Fatalf("normal-size bucket %d: share %g, want %g ± 0.08", i, got[i], b.Share)
		}
	}
}

func TestMeanMemoryUtilisationLow(t *testing.T) {
	// Panwar et al. report ~18 % average node memory utilisation; our
	// generator must keep the average well below the peak.
	d := Generate(smallParams(4), rand.New(rand.NewSource(4)))
	var meanSum, peakSum float64
	var n int
	for _, w := range d.Weeks {
		for i := range w.Jobs {
			j := &w.Jobs[i]
			m, err := j.Usage.MeanOver(j.Duration)
			if err != nil {
				t.Fatal(err)
			}
			meanSum += m
			peakSum += float64(j.PeakMB())
			n++
		}
	}
	ratio := meanSum / peakSum
	if ratio > 0.6 {
		t.Fatalf("mean/peak usage ratio = %g, want well below 1 (paper: large gap)", ratio)
	}
}

func TestSampleWeeks(t *testing.T) {
	d := Generate(smallParams(20), rand.New(rand.NewSource(5)))
	rng := rand.New(rand.NewSource(6))
	weeks, err := d.SampleWeeks(rng, 0.7, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(weeks) > 5 {
		t.Fatalf("sampled %d weeks, want ≤ 5", len(weeks))
	}
	for _, w := range weeks {
		if w.Utilization < 0.7 {
			t.Fatalf("sampled week %d with utilisation %g < 0.7", w.Index, w.Utilization)
		}
	}
	if _, err := d.SampleWeeks(rng, 2.0, 3); err == nil {
		t.Fatal("impossible threshold accepted")
	}
}

func TestBuildJobs(t *testing.T) {
	d := Generate(smallParams(4), rand.New(rand.NewSource(7)))
	w := &d.Weeks[0]
	jobs, err := w.BuildJobs(BuildParams{Overestimation: 0.6, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(w.Jobs) {
		t.Fatalf("jobs = %d, want %d", len(jobs), len(w.Jobs))
	}
	for i, j := range jobs {
		if j.RequestMB < j.PeakUsageMB() {
			t.Fatalf("job %d under-requested", j.ID)
		}
		if j.SubmitTime < 0 || j.SubmitTime >= WeekSec {
			t.Fatalf("job %d submit %g outside the week", j.ID, j.SubmitTime)
		}
		if i > 0 && jobs[i-1].SubmitTime > j.SubmitTime {
			t.Fatal("jobs not sorted by submission")
		}
		if j.Profile == nil {
			t.Fatalf("job %d has no profile", j.ID)
		}
	}
}

func TestWeekAggregates(t *testing.T) {
	d := Generate(smallParams(2), rand.New(rand.NewSource(9)))
	w := &d.Weeks[0]
	maxNH := w.MaxJobNodeHours()
	maxMem := w.MaxJobMemMB()
	for i := range w.Jobs {
		if w.Jobs[i].NodeHours() > maxNH {
			t.Fatal("MaxJobNodeHours not the maximum")
		}
		if w.Jobs[i].PeakMB() > maxMem {
			t.Fatal("MaxJobMemMB not the maximum")
		}
	}
}

// Property: overestimation sweeps preserve the request ≥ peak invariant and
// the ordering request(+a) ≤ request(+b) for a ≤ b.
func TestQuickOverestimationMonotone(t *testing.T) {
	d := Generate(smallParams(1), rand.New(rand.NewSource(10)))
	w := &d.Weeks[0]
	f := func(seed int64, a, b float64) bool {
		a = math.Abs(math.Mod(a, 1))
		b = math.Abs(math.Mod(b, 1))
		if a > b {
			a, b = b, a
		}
		ja, err := w.BuildJobs(BuildParams{Overestimation: a, Seed: seed})
		if err != nil {
			return false
		}
		jb, err := w.BuildJobs(BuildParams{Overestimation: b, Seed: seed})
		if err != nil {
			return false
		}
		for i := range ja {
			if ja[i].RequestMB > jb[i].RequestMB {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
