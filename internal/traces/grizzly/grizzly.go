// Package grizzly synthesises an LDMS-style memory-usage dataset with the
// structure of the LANL Grizzly release (LA-UR-19-28211) used by the paper:
// per-node memory samples every 10 seconds across a 1490-node, 128 GB/node
// system, grouped into one-week periods of varying CPU utilisation.
//
// The real dataset provides job IDs, node counts, durations and memory
// usage over time, but no scheduler information (submission times, memory
// requests); the paper adds those from the CIRNE model and an
// overestimation sweep — this package mirrors exactly that split. The
// synthetic generator is calibrated to the published marginals: 78 % mean
// CPU utilisation, the Table 2 "Grizzly" memory histogram, and ~18 % mean
// node-level memory utilisation.
package grizzly

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/slowdown"
	"dismem/internal/workload"
)

// Published system constants.
const (
	SystemNodes    = 1490
	NodeMemMB      = 128 * 1024
	SampleInterval = 10.0 // LDMS sampling period, seconds
	WeekSec        = 7 * 86400.0
)

// TraceJob is one job observed in the dataset: what LDMS can tell us,
// without scheduler-side fields.
type TraceJob struct {
	ID       int
	Nodes    int
	Duration float64
	Usage    *memtrace.Trace // per-node usage over the job's duration
}

// PeakMB returns the job's per-node peak memory.
func (j *TraceJob) PeakMB() int64 { return j.Usage.Peak() }

// NodeHours returns size × duration in node-hours.
func (j *TraceJob) NodeHours() float64 { return float64(j.Nodes) * j.Duration / 3600 }

// Week is one one-week period of the dataset.
type Week struct {
	Index       int
	Utilization float64 // CPU utilisation: job node-hours over system node-hours
	Jobs        []TraceJob
}

// MaxJobNodeHours returns the largest job node-hours in the week.
func (w *Week) MaxJobNodeHours() float64 {
	var m float64
	for i := range w.Jobs {
		if nh := w.Jobs[i].NodeHours(); nh > m {
			m = nh
		}
	}
	return m
}

// MaxJobMemMB returns the largest per-node peak memory in the week.
func (w *Week) MaxJobMemMB() int64 {
	var m int64
	for i := range w.Jobs {
		if p := w.Jobs[i].PeakMB(); p > m {
			m = p
		}
	}
	return m
}

// Dataset is the synthetic Grizzly release.
type Dataset struct {
	Nodes int
	Weeks []Week
}

// Params controls generation. Nodes may be scaled down for fast tests.
type Params struct {
	Nodes     int // default SystemNodes
	WeekCount int
	// MeanUtil / UtilSigma shape the per-week utilisation distribution
	// (defaults 0.70 / 0.18, matching Fig. 2's spread with a 78 % busy
	// mean in the high-utilisation region).
	MeanUtil  float64
	UtilSigma float64
	// RDPEpsilonFrac reduces each usage trace (fraction of peak,
	// default 0.02).
	RDPEpsilonFrac float64
}

func (p *Params) normalize() {
	if p.Nodes <= 0 {
		p.Nodes = SystemNodes
	}
	if p.WeekCount <= 0 {
		p.WeekCount = 26
	}
	if p.MeanUtil <= 0 {
		p.MeanUtil = 0.70
	}
	if p.UtilSigma <= 0 {
		p.UtilSigma = 0.18
	}
	if p.RDPEpsilonFrac <= 0 {
		p.RDPEpsilonFrac = 0.02
	}
}

// Generate synthesises the dataset.
func Generate(p Params, rng *rand.Rand) *Dataset {
	p.normalize()
	d := &Dataset{Nodes: p.Nodes}
	id := 1
	for w := 0; w < p.WeekCount; w++ {
		util := p.MeanUtil + rng.NormFloat64()*p.UtilSigma
		if util < 0.2 {
			util = 0.2
		}
		if util > 0.95 {
			util = 0.95
		}
		week := Week{Index: w, Utilization: util}
		target := util * float64(p.Nodes) * WeekSec
		var accum float64
		for accum < target {
			tj := generateJob(rng, id, p)
			id++
			week.Jobs = append(week.Jobs, tj)
			accum += float64(tj.Nodes) * tj.Duration
		}
		// Recompute the achieved utilisation (the last job overshoots).
		week.Utilization = accum / (float64(p.Nodes) * WeekSec)
		d.Weeks = append(d.Weeks, week)
	}
	return d
}

// generateJob draws one LDMS job: CIRNE-like size/duration, Table 2
// (Grizzly column) memory by size class, and a 10-second usage trace
// reduced with RDP.
func generateJob(rng *rand.Rand, id int, p Params) TraceJob {
	nodes := sampleSize(rng)
	if nodes > p.Nodes {
		nodes = p.Nodes // a job cannot outsize the system it ran on
	}
	duration := sampleDuration(rng)
	var peak int64
	if nodes > 32 {
		peak = workload.GrizzlyLargeSize.SampleMB(rng)
	} else {
		peak = workload.GrizzlyNormalSize.SampleMB(rng)
	}
	if peak > NodeMemMB {
		peak = NodeMemMB
	}
	usage := ldmsTrace(rng, peak, duration, p.RDPEpsilonFrac)
	return TraceJob{ID: id, Nodes: nodes, Duration: duration, Usage: usage}
}

func sampleSize(rng *rand.Rand) int {
	if rng.Float64() < 0.3 {
		return 1
	}
	x := rng.NormFloat64()*1.7 + 2.2
	for x < 0 || x > 7 { // up to 128 nodes
		x = rng.NormFloat64()*1.7 + 2.2
	}
	n := int(math.Exp2(x) + 0.5)
	if n < 1 {
		n = 1
	}
	return n
}

func sampleDuration(rng *rand.Rand) float64 {
	d := math.Exp(rng.NormFloat64()*1.4 + math.Log(3*3600))
	if d < 120 {
		d = 120
	}
	if d > WeekSec {
		d = WeekSec
	}
	return d
}

// ldmsTrace builds a 10-second-cadence usage series with an HPC phase
// structure (low mean, occasional peak phase) and reduces it with RDP.
// The raw series is capped at 20k samples; longer jobs are sampled
// proportionally coarser, which RDP would do anyway.
func ldmsTrace(rng *rand.Rand, peak int64, duration, epsFrac float64) *memtrace.Trace {
	n := int(duration / SampleInterval)
	if n < 2 {
		n = 2
	}
	if n > 20000 {
		n = 20000
	}
	step := duration / float64(n)
	base := float64(peak) * (0.1 + 0.25*rng.Float64())
	peakStart := rng.Intn(n)
	peakLen := 1 + rng.Intn(n/4+1)
	pts := make([]memtrace.Point, n)
	level := base
	for i := 0; i < n; i++ {
		if i >= peakStart && i < peakStart+peakLen {
			level = float64(peak)
		} else {
			// Mean-reverting walk around the base level.
			level += (base - level) * 0.1
			level += base * 0.05 * rng.NormFloat64()
			if level < 1 {
				level = 1
			}
			if level > float64(peak) {
				level = float64(peak)
			}
		}
		pts[i] = memtrace.Point{T: float64(i) * step, MB: int64(level)}
	}
	pts[peakStart].MB = peak // the peak value is exact
	tr := memtrace.MustNew(pts)
	return tr.RDP(epsFrac * float64(peak))
}

// SampleWeeks implements the paper's Fig. 2 sampling: keep weeks with
// utilisation ≥ minUtil and randomly choose n of them.
func (d *Dataset) SampleWeeks(rng *rand.Rand, minUtil float64, n int) ([]*Week, error) {
	var eligible []*Week
	for i := range d.Weeks {
		if d.Weeks[i].Utilization >= minUtil {
			eligible = append(eligible, &d.Weeks[i])
		}
	}
	if len(eligible) == 0 {
		return nil, errors.New("grizzly: no weeks above the utilisation threshold")
	}
	rng.Shuffle(len(eligible), func(i, j int) { eligible[i], eligible[j] = eligible[j], eligible[i] })
	if n > 0 && n < len(eligible) {
		eligible = eligible[:n]
	}
	sort.Slice(eligible, func(i, j int) bool { return eligible[i].Index < eligible[j].Index })
	return eligible, nil
}

// BuildParams controls the augmentation of a week into simulator jobs:
// submission times from the CIRNE arrival process and memory requests from
// the overestimation factor, exactly as the paper does (§3.2.1).
type BuildParams struct {
	Overestimation float64
	// LimitPadding multiplies the duration into the wallclock request
	// (default 2).
	LimitPadding float64
	Matcher      *slowdown.Matcher
	Seed         int64
}

// BuildJobs converts a sampled week into simulator-ready jobs.
func (w *Week) BuildJobs(p BuildParams) ([]*job.Job, error) {
	if p.LimitPadding < 1 {
		p.LimitPadding = 2
	}
	if p.Matcher == nil {
		p.Matcher = slowdown.NewMatcher(nil)
	}
	rng := rand.New(rand.NewSource(p.Seed))
	arr := workload.NewCirneParams(SystemNodes, 0.7, 7)
	jobs := make([]*job.Job, 0, len(w.Jobs))
	for i := range w.Jobs {
		tj := &w.Jobs[i]
		j := &job.Job{
			ID:          tj.ID,
			SubmitTime:  cirneArrival(rng, &arr),
			Nodes:       tj.Nodes,
			RequestMB:   workload.Overestimate(tj.PeakMB(), p.Overestimation),
			LimitSec:    tj.Duration * p.LimitPadding,
			BaseRuntime: tj.Duration,
			Usage:       tj.Usage,
			Profile:     p.Matcher.Match(tj.Nodes, tj.Duration),
		}
		if err := j.Validate(); err != nil {
			return nil, err
		}
		jobs = append(jobs, j)
	}
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].SubmitTime < jobs[b].SubmitTime })
	return jobs, nil
}

// cirneArrival draws one diurnal-cycled arrival within the week.
func cirneArrival(rng *rand.Rand, p *workload.CirneParams) float64 {
	peak := 1 + p.DayAmplitude
	for {
		t := rng.Float64() * WeekSec
		hour := math.Mod(t/3600, 24)
		wgt := 1 + p.DayAmplitude*math.Cos(2*math.Pi*(hour-14)/24)
		if rng.Float64()*peak <= wgt {
			return t
		}
	}
}
