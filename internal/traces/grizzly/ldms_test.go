package grizzly

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"dismem/internal/memtrace"
)

// tinyWeek builds a small week suitable for record-level tests.
func tinyWeek(t *testing.T, nodes int) *Week {
	t.Helper()
	d := Generate(Params{Nodes: nodes, WeekCount: 1, MeanUtil: 0.5}, rand.New(rand.NewSource(11)))
	return &d.Weeks[0]
}

func TestPlaceAssignsAllJobs(t *testing.T) {
	const nodes = 16
	w := tinyWeek(t, nodes)
	placed, err := w.Place(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(placed) != len(w.Jobs) {
		t.Fatalf("placed %d of %d jobs", len(placed), len(w.Jobs))
	}
	for _, pj := range placed {
		if len(pj.Nodes) != pj.Job.Nodes {
			t.Fatalf("job %d: %d nodes assigned, want %d", pj.Job.ID, len(pj.Nodes), pj.Job.Nodes)
		}
		for _, n := range pj.Nodes {
			if n < 0 || n >= nodes {
				t.Fatalf("job %d: node %d out of range", pj.Job.ID, n)
			}
		}
		if pj.Start < 0 {
			t.Fatalf("job %d: negative start", pj.Job.ID)
		}
	}
}

func TestPlaceNoOverlapPerNode(t *testing.T) {
	const nodes = 16
	w := tinyWeek(t, nodes)
	placed, err := w.Place(nodes)
	if err != nil {
		t.Fatal(err)
	}
	type span struct{ s, e float64 }
	perNode := map[int][]span{}
	for _, pj := range placed {
		for _, n := range pj.Nodes {
			perNode[n] = append(perNode[n], span{pj.Start, pj.End()})
		}
	}
	for n, spans := range perNode {
		for i := range spans {
			for j := i + 1; j < len(spans); j++ {
				a, b := spans[i], spans[j]
				if a.s < b.e && b.s < a.e {
					t.Fatalf("node %d: overlapping jobs [%g,%g) and [%g,%g)", n, a.s, a.e, b.s, b.e)
				}
			}
		}
	}
}

func TestPlaceRejectsOversizedJob(t *testing.T) {
	w := tinyWeek(t, 16)
	if _, err := w.Place(2); !errors.Is(err, ErrTooFewNodes) {
		// Only fails if the week actually has a >2-node job, which the
		// generator guarantees with overwhelming probability; tolerate
		// the alternative.
		if err != nil {
			t.Fatalf("err = %v, want ErrTooFewNodes", err)
		}
		big := false
		for i := range w.Jobs {
			if w.Jobs[i].Nodes > 2 {
				big = true
			}
		}
		if big {
			t.Fatal("oversized job accepted")
		}
	}
}

func TestEmitRecordsStream(t *testing.T) {
	const nodes = 8
	w := tinyWeek(t, nodes)
	placed, err := w.Place(nodes)
	if err != nil {
		t.Fatal(err)
	}
	const interval = 600.0
	const horizon = 6 * 3600.0
	var count, busy int
	var lastT float64
	var lastNode = -1
	err = EmitRecords(placed, nodes, interval, horizon, func(r Record) error {
		count++
		if r.TimeSec < lastT {
			t.Fatal("records not time-ordered")
		}
		if r.TimeSec == lastT && r.Node <= lastNode && count > 1 && lastNode != nodes-1 {
			t.Fatal("records not node-ordered within a tick")
		}
		lastT, lastNode = r.TimeSec, r.Node
		if r.ActiveMB+r.FreeMB != NodeMemMB {
			t.Fatalf("record accounting broken: %+v", r)
		}
		if r.JobID != 0 {
			busy++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantTicks := int(math.Ceil(horizon / interval))
	if count != wantTicks*nodes {
		t.Fatalf("records = %d, want %d", count, wantTicks*nodes)
	}
	if busy == 0 {
		t.Fatal("no busy records in a half-utilised week")
	}
}

func TestEmitRecordsValidation(t *testing.T) {
	if err := EmitRecords(nil, 4, 0, 100, func(Record) error { return nil }); err == nil {
		t.Fatal("zero interval accepted")
	}
	stop := errors.New("stop")
	err := EmitRecords(nil, 2, 10, 100, func(Record) error { return stop })
	if !errors.Is(err, stop) {
		t.Fatalf("emit error not propagated: %v", err)
	}
}

func TestReconstructJobsMatchesSource(t *testing.T) {
	// Hand-built jobs whose usage features are much wider than the
	// sampling interval, so reconstruction error is bounded by
	// granularity rather than aliasing.
	const nodes = 12
	mkTrace := func(levels ...int64) *memtrace.Trace {
		pts := make([]memtrace.Point, len(levels))
		for i, mb := range levels {
			pts[i] = memtrace.Point{T: float64(i) * 1200, MB: mb}
		}
		return memtrace.MustNew(pts)
	}
	w := &Week{Jobs: []TraceJob{
		{ID: 1, Nodes: 4, Duration: 4800, Usage: mkTrace(1000, 25000, 9000, 2000)},
		{ID: 2, Nodes: 1, Duration: 2400, Usage: mkTrace(500, 7000)},
		{ID: 3, Nodes: 8, Duration: 3600, Usage: mkTrace(12000, 60000, 12000)},
		{ID: 4, Nodes: 2, Duration: 7200, Usage: mkTrace(3000, 3000, 40000, 3000, 3000, 3000)},
	}}
	placed, err := w.Place(nodes)
	if err != nil {
		t.Fatal(err)
	}
	// Horizon long enough to cover every job completely.
	horizon := 0.0
	for _, pj := range placed {
		if pj.End() > horizon {
			horizon = pj.End()
		}
	}
	const interval = 60.0
	var records []Record
	err = EmitRecords(placed, nodes, interval, horizon+interval, func(r Record) error {
		records = append(records, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	rec, err := ReconstructJobs(records, interval, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != len(w.Jobs) {
		t.Fatalf("reconstructed %d jobs, want %d", len(rec), len(w.Jobs))
	}
	source := map[int]*TraceJob{}
	for i := range w.Jobs {
		source[w.Jobs[i].ID] = &w.Jobs[i]
	}
	for i := range rec {
		r := &rec[i]
		s, ok := source[r.ID]
		if !ok {
			t.Fatalf("reconstructed unknown job %d", r.ID)
		}
		if r.Nodes != s.Nodes {
			t.Fatalf("job %d: nodes %d, want %d", r.ID, r.Nodes, s.Nodes)
		}
		// Duration recovered to sampling granularity.
		if math.Abs(r.Duration-s.Duration) > 2*interval {
			t.Fatalf("job %d: duration %g, want %g ± %g", r.ID, r.Duration, s.Duration, 2*interval)
		}
		// Peak memory within sampling + RDP tolerance.
		rp, sp := float64(r.PeakMB()), float64(s.PeakMB())
		if math.Abs(rp-sp) > 0.25*sp+1 {
			t.Fatalf("job %d: peak %g, want ≈%g", r.ID, rp, sp)
		}
	}
}

func TestReconstructJobsValidation(t *testing.T) {
	if _, err := ReconstructJobs(nil, 0, 0.02); err == nil {
		t.Fatal("zero interval accepted")
	}
	// Idle-only records reconstruct nothing.
	recs := []Record{{TimeSec: 0, Node: 0, JobID: 0, FreeMB: NodeMemMB}}
	jobs, err := ReconstructJobs(recs, 10, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 0 {
		t.Fatalf("jobs from idle records: %d", len(jobs))
	}
}
