package slurmconf

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/policy"
	"dismem/internal/topology"
)

const sample = `# simulated system, paper Table 4
SchedulerType=sched/backfill
SchedulerParameters=bf_interval=30,default_queue_depth=100,bf_max_job_test=100
NodeName=node[0-511] CPUs=32 RealMemory=65536
NodeName=node[512-1023] CPUs=32 RealMemory=131072

DisaggPolicy=dynamic
DisaggUpdateInterval=300
DisaggOOM=fail_restart
`

func TestParseSample(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.TotalNodes() != 1024 {
		t.Fatalf("nodes = %d, want 1024", f.TotalNodes())
	}
	if len(f.Nodes) != 2 {
		t.Fatalf("groups = %d, want 2", len(f.Nodes))
	}
	if f.Nodes[0].Count != 512 || f.Nodes[0].RealMemoryMB != 65536 || f.Nodes[0].CPUs != 32 {
		t.Fatalf("group 0 = %+v", f.Nodes[0])
	}
	if got := f.Options["schedulerparameters.bf_interval"]; got != "30" {
		t.Fatalf("bf_interval = %q", got)
	}
	if got := f.Options["schedulertype"]; got != "sched/backfill" {
		t.Fatalf("schedulertype = %q", got)
	}
}

func TestCoreConfigFromSample(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Cluster.Nodes != 1024 || cfg.Cluster.NormalMB != 65536 {
		t.Fatalf("cluster = %+v", cfg.Cluster)
	}
	if cfg.Cluster.LargeFrac != 0.5 {
		t.Fatalf("large frac = %g, want 0.5", cfg.Cluster.LargeFrac)
	}
	if cfg.Policy != policy.Dynamic {
		t.Fatalf("policy = %v", cfg.Policy)
	}
	if cfg.SchedInterval != 30 || cfg.QueueDepth != 100 {
		t.Fatalf("scheduler: interval=%g depth=%d", cfg.SchedInterval, cfg.QueueDepth)
	}
	if cfg.UpdateInterval != 300 || cfg.OOM != core.FailRestart {
		t.Fatalf("dynamic params: %g %v", cfg.UpdateInterval, cfg.OOM)
	}
	// The produced config must be accepted by the simulator.
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleNodeName(t *testing.T) {
	f, err := Parse(strings.NewReader("NodeName=login CPUs=8 RealMemory=32768\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.TotalNodes() != 1 || f.Nodes[0].Name != "login" {
		t.Fatalf("nodes = %+v", f.Nodes)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"NoEqualsSign\n",
		"NodeName=node[5-2] RealMemory=100\n",
		"NodeName=node1 CPUs=abc RealMemory=100\n",
		"NodeName=node1 CPUs=4\n", // missing RealMemory
		"SchedulerParameters=bf_interval\n",
		"NodeName=node1 BadAttr\n",
	}
	for _, in := range cases {
		if _, err := Parse(strings.NewReader(in)); !errors.Is(err, ErrSyntax) {
			t.Errorf("input %q: err = %v, want ErrSyntax", in, err)
		}
	}
}

func TestCoreConfigRejections(t *testing.T) {
	cases := []struct {
		name string
		conf string
	}{
		{"no nodes", "DisaggPolicy=static\n"},
		{"non-double large", "NodeName=a[0-1] CPUs=4 RealMemory=1000\nNodeName=b[0-1] CPUs=4 RealMemory=1500\n"},
		{"three capacities", "NodeName=a CPUs=4 RealMemory=1000\nNodeName=b CPUs=4 RealMemory=2000\nNodeName=c CPUs=4 RealMemory=4000\n"},
		{"mixed cpus", "NodeName=a CPUs=4 RealMemory=1000\nNodeName=b CPUs=8 RealMemory=2000\n"},
		{"bad policy", "NodeName=a CPUs=4 RealMemory=1000\nDisaggPolicy=magic\n"},
		{"bad oom", "NodeName=a CPUs=4 RealMemory=1000\nDisaggOOM=retry\n"},
		{"bad interval", "NodeName=a CPUs=4 RealMemory=1000\nDisaggUpdateInterval=-5\n"},
		{"bad lender", "NodeName=a CPUs=4 RealMemory=1000\nDisaggLenderPolicy=random\n"},
		{"bad hop penalty", "NodeName=a CPUs=4 RealMemory=1000\nDisaggHopPenalty=-1\n"},
	}
	for _, tc := range cases {
		f, err := Parse(strings.NewReader(tc.conf))
		if err != nil {
			t.Fatalf("%s: parse: %v", tc.name, err)
		}
		if _, err := f.CoreConfig(); err == nil {
			t.Errorf("%s: invalid config accepted", tc.name)
		}
	}
}

func TestTopologyKeys(t *testing.T) {
	conf := "NodeName=n[0-63] CPUs=32 RealMemory=65536\nDisaggLenderPolicy=nearest_first\nDisaggHopPenalty=0.5\n"
	f, err := Parse(strings.NewReader(conf))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LenderPolicy != core.NearestFirst {
		t.Fatalf("lender policy = %v", cfg.LenderPolicy)
	}
	if cfg.Topology == nil || cfg.Topology.Size() < 64 {
		t.Fatalf("topology = %v", cfg.Topology)
	}
	if cfg.HopPenalty != 0.5 {
		t.Fatalf("hop penalty = %g", cfg.HopPenalty)
	}
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
}

func TestHopPenaltyAloneCreatesTopology(t *testing.T) {
	conf := "NodeName=n[0-15] CPUs=4 RealMemory=1000\nDisaggHopPenalty=0.3\n"
	f, err := Parse(strings.NewReader(conf))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := f.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Topology == nil {
		t.Fatal("hop penalty without topology must auto-design one")
	}
}

func TestCommentsAndBlanks(t *testing.T) {
	conf := "\n# full comment\n   \nNodeName=n CPUs=1 RealMemory=100\n"
	f, err := Parse(strings.NewReader(conf))
	if err != nil {
		t.Fatal(err)
	}
	if f.TotalNodes() != 1 {
		t.Fatalf("nodes = %d", f.TotalNodes())
	}
}

func TestBackfillAlgorithmKey(t *testing.T) {
	for in, want := range map[string]core.BackfillMode{
		"easy":         core.EASYBackfill,
		"conservative": core.ConservativeBackfill,
		"none":         core.NoBackfill,
	} {
		conf := "NodeName=n CPUs=1 RealMemory=100\nSchedulerParameters=bf_algorithm=" + in + "\n"
		f, err := Parse(strings.NewReader(conf))
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := f.CoreConfig()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Backfill != want {
			t.Fatalf("%s: backfill = %v, want %v", in, cfg.Backfill, want)
		}
	}
	f, err := Parse(strings.NewReader("NodeName=n CPUs=1 RealMemory=100\nSchedulerParameters=bf_algorithm=magic\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.CoreConfig(); err == nil {
		t.Fatal("bad bf_algorithm accepted")
	}
}

func TestWriteConfigRoundTrip(t *testing.T) {
	var cfg core.Config
	cfg.Cluster = cluster.Config{Nodes: 64, Cores: 32, NormalMB: 65536, LargeFrac: 0.25}
	cfg.Policy = policy.Dynamic
	cfg.SchedInterval = 30
	cfg.QueueDepth = 100
	cfg.UpdateInterval = 300
	cfg.Backfill = core.ConservativeBackfill
	cfg.OOM = core.CheckpointRestart
	cfg.HopPenalty = 0.5
	torus := topology.Design(cfg.Cluster.Nodes)
	cfg.Topology = &torus

	var buf bytes.Buffer
	if err := WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	f, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := f.CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if back.Cluster != cfg.Cluster {
		t.Fatalf("cluster mismatch:\n%+v\n%+v", back.Cluster, cfg.Cluster)
	}
	if back.Policy != cfg.Policy || back.SchedInterval != cfg.SchedInterval ||
		back.QueueDepth != cfg.QueueDepth || back.UpdateInterval != cfg.UpdateInterval ||
		back.Backfill != cfg.Backfill || back.OOM != cfg.OOM || back.HopPenalty != cfg.HopPenalty {
		t.Fatalf("config mismatch:\n%+v\n%+v", back, cfg)
	}
	if back.Topology == nil {
		t.Fatal("hop penalty must re-create a topology")
	}
}

func TestWriteConfigBaselineOmitsDynamicKeys(t *testing.T) {
	var cfg core.Config
	cfg.Cluster = cluster.Config{Nodes: 4, Cores: 8, NormalMB: 1000}
	cfg.Policy = policy.Baseline
	var buf bytes.Buffer
	if err := WriteConfig(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "DisaggUpdateInterval") || strings.Contains(out, "DisaggOOM") {
		t.Fatalf("baseline config carries dynamic keys:\n%s", out)
	}
	if !strings.Contains(out, "DisaggPolicy=baseline") {
		t.Fatalf("policy missing:\n%s", out)
	}
}
