// Package slurmconf parses Slurm-style configuration files (slurm.conf
// syntax) into simulator configurations, mirroring how the paper's
// simulator consumes a slurm.conf (Fig. 1b). Supported subset:
//
//	# comments and blank lines
//	Key=Value                            scheduler options
//	SchedulerParameters=k=v,k=v          comma-separated sub-options
//	NodeName=node[0-511] CPUs=32 RealMemory=65536
//
// plus the Disagg* extension keys introduced by this reproduction:
// DisaggPolicy, DisaggUpdateInterval, DisaggOOM, DisaggLenderPolicy,
// DisaggHopPenalty.
package slurmconf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"

	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/policy"
	"dismem/internal/topology"
)

// NodeGroup is one NodeName line: a homogeneous set of nodes.
type NodeGroup struct {
	Name         string
	Count        int
	CPUs         int
	RealMemoryMB int64
}

// File is a parsed configuration.
type File struct {
	// Options holds the flat Key=Value entries, keys lower-cased.
	// SchedulerParameters sub-options are flattened as
	// "schedulerparameters.<key>".
	Options map[string]string
	Nodes   []NodeGroup
}

// ErrSyntax reports a malformed configuration line.
var ErrSyntax = errors.New("slurmconf: syntax error")

var rangeRe = regexp.MustCompile(`^([^\[\]]*)\[(\d+)-(\d+)\]$`)

// Parse reads a configuration stream.
func Parse(r io.Reader) (*File, error) {
	f := &File{Options: map[string]string{}}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := f.parseLine(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *File) parseLine(line string) error {
	key, rest, ok := strings.Cut(line, "=")
	if !ok {
		return fmt.Errorf("%w: missing '=' in %q", ErrSyntax, line)
	}
	key = strings.TrimSpace(key)
	if strings.EqualFold(key, "NodeName") {
		return f.parseNodeLine(rest)
	}
	value := strings.TrimSpace(rest)
	lk := strings.ToLower(key)
	if lk == "schedulerparameters" {
		for _, kv := range strings.Split(value, ",") {
			sk, sv, ok := strings.Cut(kv, "=")
			if !ok {
				return fmt.Errorf("%w: scheduler parameter %q", ErrSyntax, kv)
			}
			f.Options["schedulerparameters."+strings.ToLower(strings.TrimSpace(sk))] = strings.TrimSpace(sv)
		}
		return nil
	}
	f.Options[lk] = value
	return nil
}

// parseNodeLine handles "NodeName=<spec> Attr=V Attr=V …".
func (f *File) parseNodeLine(rest string) error {
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return fmt.Errorf("%w: empty NodeName", ErrSyntax)
	}
	g := NodeGroup{CPUs: 1}
	spec := fields[0]
	if m := rangeRe.FindStringSubmatch(spec); m != nil {
		lo, err1 := strconv.Atoi(m[2])
		hi, err2 := strconv.Atoi(m[3])
		if err1 != nil || err2 != nil || hi < lo {
			return fmt.Errorf("%w: node range %q", ErrSyntax, spec)
		}
		g.Name = m[1]
		g.Count = hi - lo + 1
	} else {
		g.Name = spec
		g.Count = 1
	}
	for _, attr := range fields[1:] {
		k, v, ok := strings.Cut(attr, "=")
		if !ok {
			return fmt.Errorf("%w: node attribute %q", ErrSyntax, attr)
		}
		switch strings.ToLower(k) {
		case "cpus":
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				return fmt.Errorf("%w: CPUs=%q", ErrSyntax, v)
			}
			g.CPUs = n
		case "realmemory": // MB, as in Slurm
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil || n <= 0 {
				return fmt.Errorf("%w: RealMemory=%q", ErrSyntax, v)
			}
			g.RealMemoryMB = n
		default:
			// Unknown node attributes are ignored, like Slurm does
			// for plugins it does not load.
		}
	}
	if g.RealMemoryMB == 0 {
		return fmt.Errorf("%w: NodeName %q missing RealMemory", ErrSyntax, g.Name)
	}
	f.Nodes = append(f.Nodes, g)
	return nil
}

// TotalNodes returns the node count across all groups.
func (f *File) TotalNodes() int {
	n := 0
	for _, g := range f.Nodes {
		n += g.Count
	}
	return n
}

// CoreConfig converts the parsed file into a simulator configuration.
// Node groups must form the paper's two-tier shape: one capacity, or two
// capacities where the larger is exactly double the smaller.
func (f *File) CoreConfig() (core.Config, error) {
	var cfg core.Config
	if len(f.Nodes) == 0 {
		return cfg, errors.New("slurmconf: no NodeName entries")
	}

	caps := map[int64]int{}
	cpus := 0
	for _, g := range f.Nodes {
		caps[g.RealMemoryMB] += g.Count
		if cpus == 0 {
			cpus = g.CPUs
		} else if g.CPUs != cpus {
			return cfg, errors.New("slurmconf: heterogeneous CPU counts are not supported")
		}
	}
	switch len(caps) {
	case 1:
		for mem, count := range caps {
			cfg.Cluster = cluster.Config{Nodes: count, Cores: cpus, NormalMB: mem}
		}
	case 2:
		var lo, hi int64
		for mem := range caps {
			if lo == 0 || mem < lo {
				lo = mem
			}
			if mem > hi {
				hi = mem
			}
		}
		if hi != 2*lo {
			return cfg, fmt.Errorf("slurmconf: large nodes must have double memory (%d vs %d)", hi, lo)
		}
		total := caps[lo] + caps[hi]
		cfg.Cluster = cluster.Config{
			Nodes:     total,
			Cores:     cpus,
			NormalMB:  lo,
			LargeFrac: float64(caps[hi]) / float64(total),
		}
	default:
		return cfg, errors.New("slurmconf: more than two node capacities")
	}

	if v, ok := f.Options["schedulerparameters.bf_interval"]; ok {
		sec, err := strconv.ParseFloat(v, 64)
		if err != nil || sec <= 0 {
			return cfg, fmt.Errorf("slurmconf: bf_interval=%q", v)
		}
		cfg.SchedInterval = sec
	}
	if v, ok := f.Options["schedulerparameters.default_queue_depth"]; ok {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return cfg, fmt.Errorf("slurmconf: default_queue_depth=%q", v)
		}
		cfg.QueueDepth = n
	}
	switch strings.ToLower(f.Options["schedulerparameters.bf_algorithm"]) {
	case "", "easy":
		cfg.Backfill = core.EASYBackfill
	case "conservative":
		cfg.Backfill = core.ConservativeBackfill
	case "none":
		cfg.Backfill = core.NoBackfill
	default:
		return cfg, fmt.Errorf("slurmconf: bf_algorithm=%q", f.Options["schedulerparameters.bf_algorithm"])
	}

	switch strings.ToLower(f.Options["disaggpolicy"]) {
	case "", "baseline":
		cfg.Policy = policy.Baseline
	case "static":
		cfg.Policy = policy.Static
	case "dynamic":
		cfg.Policy = policy.Dynamic
	default:
		return cfg, fmt.Errorf("slurmconf: DisaggPolicy=%q", f.Options["disaggpolicy"])
	}
	if v, ok := f.Options["disaggupdateinterval"]; ok {
		sec, err := strconv.ParseFloat(v, 64)
		if err != nil || sec <= 0 {
			return cfg, fmt.Errorf("slurmconf: DisaggUpdateInterval=%q", v)
		}
		cfg.UpdateInterval = sec
	}
	switch strings.ToLower(f.Options["disaggoom"]) {
	case "", "fail_restart":
		cfg.OOM = core.FailRestart
	case "checkpoint_restart":
		cfg.OOM = core.CheckpointRestart
	default:
		return cfg, fmt.Errorf("slurmconf: DisaggOOM=%q", f.Options["disaggoom"])
	}
	switch strings.ToLower(f.Options["disagglenderpolicy"]) {
	case "", "most_free":
		cfg.LenderPolicy = core.MostFree
	case "nearest_first":
		cfg.LenderPolicy = core.NearestFirst
		t := topology.Design(cfg.Cluster.Nodes)
		cfg.Topology = &t
	default:
		return cfg, fmt.Errorf("slurmconf: DisaggLenderPolicy=%q", f.Options["disagglenderpolicy"])
	}
	if v, ok := f.Options["disagghoppenalty"]; ok {
		p, err := strconv.ParseFloat(v, 64)
		if err != nil || p < 0 {
			return cfg, fmt.Errorf("slurmconf: DisaggHopPenalty=%q", v)
		}
		cfg.HopPenalty = p
		if cfg.Topology == nil {
			t := topology.Design(cfg.Cluster.Nodes)
			cfg.Topology = &t
		}
	}
	return cfg, nil
}
