package slurmconf

import (
	"strings"
	"testing"
)

// FuzzParse checks the configuration parser never panics and that any
// accepted configuration either converts to a valid simulator config or
// fails conversion with an error (never a panic).
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("NodeName=n CPUs=1 RealMemory=100\n")
	f.Add("NodeName=n[0-3] RealMemory=100\nDisaggPolicy=static\n")
	f.Add("SchedulerParameters=bf_interval=30,default_queue_depth=100\n")
	f.Add("Key=Value\n# comment\n")
	f.Add("NodeName=n[9-1] RealMemory=5\n")
	f.Add("=\n")
	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		cfg, err := parsed.CoreConfig()
		if err != nil {
			return
		}
		// Whatever CoreConfig accepts must normalise cleanly.
		if err := cfg.Normalize(); err != nil {
			t.Fatalf("converted config fails Normalize: %v\ninput: %q", err, input)
		}
		if cfg.Cluster.Nodes != parsed.TotalNodes() {
			t.Fatalf("node count mismatch: %d vs %d", cfg.Cluster.Nodes, parsed.TotalNodes())
		}
	})
}
