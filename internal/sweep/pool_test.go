package sweep

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestFutureSubmitAwaitOrder(t *testing.T) {
	p := NewPool(4)
	var fs []*Future[int]
	for i := 0; i < 50; i++ {
		i := i
		fs = append(fs, Submit(p, func() (int, error) { return i * 3, nil }))
	}
	vals, err := CollectValues(fs)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if v != i*3 {
			t.Fatalf("vals[%d] = %d, want %d", i, v, i*3)
		}
	}
	if got := p.PeakWorkers(); got > p.Size() {
		t.Fatalf("peak workers %d exceeded pool size %d", got, p.Size())
	}
}

func TestFuturePanicBecomesError(t *testing.T) {
	p := NewPool(2)
	f := Submit(p, func() (int, error) { panic("kaboom") })
	ok := Submit(p, func() (int, error) { return 4, nil })
	if r := f.Wait(); !errors.Is(r.Err, ErrPanic) {
		t.Fatalf("panic err = %v, want ErrPanic", r.Err)
	}
	if v, err := ok.Get(); err != nil || v != 4 {
		t.Fatalf("sibling future broken: %d, %v", v, err)
	}
}

func TestFutureWaitIsIdempotent(t *testing.T) {
	p := NewPool(1)
	var runs atomic.Int32
	f := Submit(p, func() (int, error) { runs.Add(1); return 9, nil })
	for i := 0; i < 3; i++ {
		if v, err := f.Get(); err != nil || v != 9 {
			t.Fatalf("wait %d: %d, %v", i, v, err)
		}
	}
	if runs.Load() != 1 {
		t.Fatalf("task ran %d times, want 1", runs.Load())
	}
}

// A size-1 pool whose only worker is busy must still finish futures whose
// creator waits on them: the waiting goroutine runs queued tasks inline.
func TestWaitHelpsWhenPoolSaturated(t *testing.T) {
	p := NewPool(1)
	release := make(chan struct{})
	slow := Submit(p, func() (int, error) { <-release; return 1, nil })
	quick := Submit(p, func() (int, error) { return 2, nil })
	done := make(chan int)
	go func() {
		v, _ := quick.Get()
		done <- v
	}()
	select {
	case v := <-done:
		if v != 2 {
			t.Fatalf("helped task returned %d", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Wait did not help: deadlocked behind the saturated worker")
	}
	close(release)
	if v, _ := slow.Get(); v != 1 {
		t.Fatal("slow task lost")
	}
}

// Nested submit-and-wait to several levels on a tiny pool: the helping
// rule must keep the DAG progressing with no deadlock and no worker
// goroutines beyond the pool size.
func TestNestedFuturesDeadlockFreeAndBounded(t *testing.T) {
	p := NewPool(2)
	var fanout func(depth int) (int, error)
	fanout = func(depth int) (int, error) {
		if depth == 0 {
			return 1, nil
		}
		var fs []*Future[int]
		for i := 0; i < 3; i++ {
			fs = append(fs, Submit(p, func() (int, error) { return fanout(depth - 1) }))
		}
		sum := 0
		for _, f := range fs {
			v, err := f.Get()
			if err != nil {
				return 0, err
			}
			sum += v
		}
		return sum, nil
	}
	donec := make(chan struct{})
	var got int
	var err error
	go func() {
		got, err = fanout(4) // 3^4 = 81 leaves through 120 nested futures
		close(donec)
	}()
	select {
	case <-donec:
	case <-time.After(30 * time.Second):
		t.Fatal("nested futures deadlocked")
	}
	if err != nil {
		t.Fatal(err)
	}
	if got != 81 {
		t.Fatalf("fanout sum = %d, want 81", got)
	}
	if peak := p.PeakWorkers(); peak > p.Size() {
		t.Fatalf("peak workers %d exceeded pool size %d", peak, p.Size())
	}
}

// Nested Run calls must borrow the shared pool rather than spawning a
// fresh worker set per level: the worker-layer high-water mark stays at
// the pool size regardless of nesting depth (the old per-call pools would
// have reached NumCPU² goroutines here).
func TestNestedRunBorrowsSharedPool(t *testing.T) {
	p := SharedPool()
	inner := func() ([]Result[int], error) {
		tasks := make([]Task[int], 8)
		for i := range tasks {
			i := i
			tasks[i] = func() (int, error) { return i, nil }
		}
		return Run(tasks, 0), nil
	}
	outer := make([]Task[int], 8)
	for i := range outer {
		outer[i] = func() (int, error) {
			rs, _ := inner()
			sum := 0
			for _, r := range rs {
				sum += r.Value
			}
			return sum, nil
		}
	}
	for _, r := range Run(outer, 0) {
		if r.Err != nil || r.Value != 28 {
			t.Fatalf("nested run result %d, %v", r.Value, r.Err)
		}
	}
	if peak, size := p.PeakWorkers(), p.Size(); peak > size {
		t.Fatalf("worker layer grew to %d goroutines, pool size is %d", peak, size)
	}
}

// Run with an explicit window keeps at most that many of the call's tasks
// unfinished at once.
func TestRunWindowBound(t *testing.T) {
	var inFlight, peak atomic.Int32
	tasks := make([]Task[int], 20)
	for i := range tasks {
		tasks[i] = func() (int, error) {
			n := inFlight.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
			return 0, nil
		}
	}
	if err := FirstError(Run(tasks, 3)); err != nil {
		t.Fatal(err)
	}
	if peak.Load() > 3 {
		t.Fatalf("window of 3 reached %d tasks in flight", peak.Load())
	}
}

func BenchmarkSubmitWait(b *testing.B) {
	p := SharedPool()
	for i := 0; i < b.N; i++ {
		f := Submit(p, func() (int, error) { return i, nil })
		if _, err := f.Get(); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleSubmit() {
	p := NewPool(2)
	trace := Submit(p, func() (string, error) { return "trace", nil })
	norm := Submit(p, func() (float64, error) { return 2.0, nil })
	panel := Submit(p, func() (string, error) {
		tr, err := trace.Get()
		if err != nil {
			return "", err
		}
		n, err := norm.Get()
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s/%g", tr, n), nil
	})
	v, _ := panel.Get()
	fmt.Println(v)
	// Output: trace/2
}
