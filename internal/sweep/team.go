package sweep

import "sync/atomic"

// Team is a pinned set of worker goroutines for sub-microsecond data-parallel
// fan-out: the same fn applied over an index range, split into one contiguous
// chunk per worker. It complements Pool: the pool's submit/future machinery
// allocates per task and is built for coarse DAGs of heterogeneous work,
// while a simulator refresh fires on every event and needs a dispatch that
// allocates nothing and costs two channel operations per worker.
//
// The caller participates as worker 0, so a Team of size 1 runs entirely
// inline — no goroutines, no synchronisation — which is also the automatic
// degradation on a single-core machine. Run calls must come from one
// goroutine at a time; the workers never touch shared state except through
// the caller-provided fn, which receives disjoint [start, end) ranges and a
// worker index for per-worker scratch.
type Team struct {
	size int

	fn        func(worker, start, end int)
	n         int
	remaining atomic.Int32    //dmp:atomiconly
	wake      []chan struct{} // one per helper goroutine (size-1 of them)
	done      chan struct{}
	panicked  atomic.Pointer[panicValue] //dmp:atomiconly first panic value observed by any worker
	closed    bool
}

// panicValue boxes a recovered panic payload behind a pointer so workers can
// publish it with CompareAndSwap regardless of its concrete type. The previous
// atomic.Value field panicked inside the recover handler whenever two workers
// of the same Run raised different concrete types — atomic.Value requires
// every CompareAndSwap to use one consistent type — and Run reset it with a
// plain struct overwrite, racing nothing today only because of the done-channel
// edge but invisibly fragile (and invisible to vet, which only flags copies of
// the noCopy-bearing atomic types).
type panicValue struct {
	v any
}

// NewTeam returns a team of the given size (minimum 1). Sizing beyond
// GOMAXPROCS only adds scheduling noise to a compute-bound phase — callers
// wanting "use the machine" should pass runtime.GOMAXPROCS(0) — but it is
// permitted so the goroutine protocol stays testable on small machines.
// Close must be called to release the helpers.
func NewTeam(size int) *Team {
	if size < 1 {
		size = 1
	}
	t := &Team{size: size, done: make(chan struct{}, size)}
	for w := 1; w < size; w++ {
		ch := make(chan struct{}, 1)
		t.wake = append(t.wake, ch)
		go t.helper(w, ch)
	}
	return t
}

// Size returns the worker count (including the caller).
func (t *Team) Size() int { return t.size }

func (t *Team) helper(worker int, wake chan struct{}) {
	for range wake {
		t.runChunk(worker)
	}
}

// runChunk executes worker w's contiguous share of [0, n) and signals
// completion. Panics are captured and re-raised on the caller's goroutine.
//
//dmp:hotpath
func (t *Team) runChunk(worker int) {
	defer func() {
		if r := recover(); r != nil {
			t.panicked.CompareAndSwap(nil, &panicValue{v: r})
		}
		if t.remaining.Add(-1) == 0 {
			t.done <- struct{}{}
		}
	}()
	chunk := (t.n + t.size - 1) / t.size
	start := worker * chunk
	end := start + chunk
	if start >= t.n {
		return
	}
	if end > t.n {
		end = t.n
	}
	t.fn(worker, start, end) //dmplint:ignore hotpath-reach fn is the caller-provided chunk body; Run's contract makes the caller responsible for its allocation behaviour
}

// Run applies fn over [0, n) split into one contiguous chunk per worker and
// returns when every chunk is done. fn must write only to per-index or
// per-worker state; the team provides the happens-before edges between Run's
// return and every chunk's writes. A panic in any chunk is re-raised here
// after all workers have finished. Steady state performs zero allocations.
//
//dmp:hotpath
func (t *Team) Run(n int, fn func(worker, start, end int)) {
	if n <= 0 {
		return
	}
	if t.size == 1 || n == 1 {
		fn(0, 0, n) //dmplint:ignore hotpath-reach fn is the caller-provided chunk body; Run's contract makes the caller responsible for its allocation behaviour
		return
	}
	t.fn = fn
	t.n = n
	t.remaining.Store(int32(t.size))
	for _, ch := range t.wake {
		ch <- struct{}{}
	}
	t.runChunk(0)
	<-t.done
	t.fn = nil
	if pv := t.panicked.Load(); pv != nil {
		t.panicked.Store(nil)
		panic(pv.v)
	}
}

// Close stops the helper goroutines. The team must not be used afterwards.
// Closing a size-1 team (or closing twice) is a no-op.
func (t *Team) Close() {
	if t.closed {
		return
	}
	t.closed = true
	for _, ch := range t.wake {
		close(ch)
	}
}
