package sweep

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunPreservesOrder(t *testing.T) {
	var tasks []Task[int]
	for i := 0; i < 100; i++ {
		i := i
		tasks = append(tasks, func() (int, error) { return i * i, nil })
	}
	results := Run(tasks, 8)
	for i, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		if r.Value != i*i {
			t.Fatalf("result %d = %d, want %d", i, r.Value, i*i)
		}
	}
	vals, err := Values(results)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 100 || vals[7] != 49 {
		t.Fatalf("values broken: %v", vals[:8])
	}
}

func TestRunSerialFallback(t *testing.T) {
	n := 0
	tasks := []Task[int]{
		func() (int, error) { n++; return n, nil },
		func() (int, error) { n++; return n, nil },
	}
	// workers=1 must not race on n.
	results := Run(tasks, 1)
	if results[0].Value != 1 || results[1].Value != 2 {
		t.Fatalf("serial execution out of order: %+v", results)
	}
}

func TestRunEmptyAndBounds(t *testing.T) {
	if got := Run[int](nil, 4); len(got) != 0 {
		t.Fatal("empty task list produced results")
	}
	// workers > len(tasks) must still work.
	results := Run([]Task[int]{func() (int, error) { return 7, nil }}, 64)
	if results[0].Value != 7 {
		t.Fatal("single task broken")
	}
}

func TestErrorsDoNotShortCircuit(t *testing.T) {
	var ran atomic.Int32
	boom := errors.New("boom")
	tasks := []Task[int]{
		func() (int, error) { ran.Add(1); return 0, boom },
		func() (int, error) { ran.Add(1); return 2, nil },
		func() (int, error) { ran.Add(1); return 3, nil },
	}
	results := Run(tasks, 2)
	if ran.Load() != 3 {
		t.Fatalf("ran %d tasks, want all 3", ran.Load())
	}
	if !errors.Is(FirstError(results), boom) {
		t.Fatalf("FirstError = %v", FirstError(results))
	}
	if _, err := Values(results); !errors.Is(err, boom) {
		t.Fatalf("Values err = %v", err)
	}
	if results[1].Value != 2 || results[2].Value != 3 {
		t.Fatal("later results lost after an error")
	}
}

func TestPanicBecomesError(t *testing.T) {
	tasks := []Task[string]{
		func() (string, error) { panic("kaboom") },
		func() (string, error) { return "fine", nil },
	}
	results := Run(tasks, 2)
	if !errors.Is(results[0].Err, ErrPanic) {
		t.Fatalf("panic err = %v, want ErrPanic", results[0].Err)
	}
	if results[1].Value != "fine" {
		t.Fatal("sibling task lost")
	}
}

// Property: for any task count and worker count, each task runs exactly
// once and results align with inputs.
func TestQuickExactlyOnce(t *testing.T) {
	f := func(rawN, rawW uint8) bool {
		n := int(rawN) % 64
		w := int(rawW)%8 + 1
		counts := make([]atomic.Int32, n)
		tasks := make([]Task[int], n)
		for i := 0; i < n; i++ {
			i := i
			tasks[i] = func() (int, error) {
				counts[i].Add(1)
				return i, nil
			}
		}
		results := Run(tasks, w)
		for i := range counts {
			if counts[i].Load() != 1 {
				return false
			}
			if results[i].Value != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRunParallelism(b *testing.B) {
	work := func() (int, error) {
		s := 0
		for i := 0; i < 200000; i++ {
			s += i
		}
		return s, nil
	}
	tasks := make([]Task[int], 16)
	for i := range tasks {
		tasks[i] = work
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Run(tasks, w)
			}
		})
	}
}
