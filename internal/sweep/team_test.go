package sweep

import (
	"sync/atomic"
	"testing"
)

// TestTeamCoversRange checks every index in [0, n) is visited exactly once
// for assorted team sizes and range lengths, including ranges smaller than
// the team.
func TestTeamCoversRange(t *testing.T) {
	for _, size := range []int{1, 2, 3, 8} {
		tm := NewTeam(size)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			visits := make([]int32, n)
			tm.Run(n, func(worker, start, end int) {
				for i := start; i < end; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("size=%d n=%d: index %d visited %d times", size, n, i, v)
				}
			}
		}
		tm.Close()
	}
}

// TestTeamWorkerIndexes checks each chunk reports a distinct worker index in
// [0, Size) so per-worker scratch slots never collide.
func TestTeamWorkerIndexes(t *testing.T) {
	tm := NewTeam(4)
	defer tm.Close()
	if tm.Size() > 4 {
		t.Fatalf("Size %d exceeds requested 4", tm.Size())
	}
	seen := make([]int32, tm.Size())
	tm.Run(tm.Size()*10, func(worker, start, end int) {
		if worker < 0 || worker >= tm.Size() {
			panic("worker index out of range")
		}
		atomic.AddInt32(&seen[worker], 1)
	})
	for w, c := range seen {
		if c > 1 {
			t.Fatalf("worker %d ran %d chunks, want at most 1", w, c)
		}
	}
}

// TestTeamPanicPropagates asserts a panic inside any chunk re-raises on the
// caller after all workers finish, and the team remains usable afterwards.
func TestTeamPanicPropagates(t *testing.T) {
	tm := NewTeam(2)
	defer tm.Close()
	func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		tm.Run(100, func(worker, start, end int) {
			if start == 0 {
				panic("boom")
			}
		})
		t.Fatal("Run returned instead of panicking")
	}()
	// The team must still work after a propagated panic.
	var sum atomic.Int64
	tm.Run(10, func(worker, start, end int) {
		for i := start; i < end; i++ {
			sum.Add(int64(i))
		}
	})
	if sum.Load() != 45 {
		t.Fatalf("post-panic Run sum %d, want 45", sum.Load())
	}
}

// TestTeamMixedTypePanics is the regression test for the panic-capture slot:
// it used to be an atomic.Value, and atomic.Value.CompareAndSwap panics when
// two calls use different concrete types — so two workers of one Run raising,
// say, a string and an error crashed inside the recover handler instead of
// propagating the first panic. The pointer-based slot accepts any mix. Every
// worker panics here to force concurrent captures; under -race this also
// exercises the CompareAndSwap publication path.
func TestTeamMixedTypePanics(t *testing.T) {
	payloads := []any{"boom", 42, error(errSentinel{}), []int{1}}
	tm := NewTeam(4)
	defer tm.Close()
	for round := 0; round < 8; round++ {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("Run returned instead of panicking")
				}
				found := false
				for _, p := range payloads {
					if pe, ok := p.([]int); ok {
						if re, ok := r.([]int); ok && len(re) == len(pe) {
							found = true
						}
						continue
					}
					if r == p {
						found = true
					}
				}
				if !found {
					t.Fatalf("recovered %v (%T), not one of the seeded payloads", r, r)
				}
			}()
			tm.Run(4*tm.Size(), func(worker, start, end int) {
				panic(payloads[worker%len(payloads)])
			})
		}()
	}
	// The slot must be fully reset: a clean Run afterwards returns normally.
	var sum atomic.Int64
	tm.Run(10, func(worker, start, end int) {
		for i := start; i < end; i++ {
			sum.Add(int64(i))
		}
	})
	if sum.Load() != 45 {
		t.Fatalf("post-panic Run sum %d, want 45", sum.Load())
	}
}

type errSentinel struct{}

func (errSentinel) Error() string { return "sentinel" }

// TestTeamRunAllocationFree asserts dispatch allocates nothing at steady
// state for both the inline (size 1) and parallel paths. The fn must be
// prebuilt — a capturing closure literal at the call site would itself
// allocate, which is the caller's responsibility, not the team's.
func TestTeamRunAllocationFree(t *testing.T) {
	work := make([]int64, 256)
	fn := func(worker, start, end int) {
		for i := start; i < end; i++ {
			work[i]++
		}
	}
	for _, size := range []int{1, 2} {
		tm := NewTeam(size)
		tm.Run(len(work), fn) // warm up
		got := testing.AllocsPerRun(50, func() { tm.Run(len(work), fn) })
		tm.Close()
		if got != 0 {
			t.Fatalf("size=%d: Run allocates %.1f per dispatch, want 0", size, got)
		}
	}
}

func BenchmarkTeamDispatch(b *testing.B) {
	work := make([]float64, 4096)
	fn := func(worker, start, end int) {
		for i := start; i < end; i++ {
			work[i] *= 1.0000001
		}
	}
	for _, size := range []int{1, 2, 4} {
		tm := NewTeam(size)
		b.Run(map[int]string{1: "size=1", 2: "size=2", 4: "size=4"}[size], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tm.Run(len(work), fn)
			}
		})
		defer tm.Close()
	}
}
