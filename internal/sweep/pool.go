package sweep

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded set of worker goroutines that executes submitted tasks.
// One process-wide pool (SharedPool) is shared by every sweep and every
// experiment stage, however deeply nested, so total worker concurrency
// stays at the pool size instead of multiplying per nesting level.
//
// Deadlock freedom under nesting comes from helping: a goroutine that
// waits on a Future whose task has not started yet runs the task inline on
// its own stack instead of blocking. A worker that blocks mid-task waiting
// on a future therefore always waits on work that some goroutine is
// actively executing. The one requirement on callers is that futures form
// a DAG: a task may wait on futures submitted before or during its run,
// but two tasks must never wait on each other.
type Pool struct {
	size int

	mu      sync.Mutex
	queue   []*node //dmp:guardedby(mu) pending submissions; claimed nodes are skipped on pop
	workers int     //dmp:guardedby(mu) live worker goroutines
	peak    int     //dmp:guardedby(mu) high-water mark of workers (never exceeds size)
}

// node is the pool-internal state of one submitted task.
type node struct {
	state atomic.Int32 //dmp:atomiconly nodeQueued → nodeClaimed → nodeDone
	run   func()       // executes the task, stores the result, closes done
	done  chan struct{}
}

const (
	nodeQueued int32 = iota
	nodeClaimed
	nodeDone
)

// NewPool returns a pool with the given worker bound (minimum 1).
func NewPool(size int) *Pool {
	if size < 1 {
		size = 1
	}
	return &Pool{size: size}
}

var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// SharedPool returns the process-wide pool, sized to GOMAXPROCS. Every
// Run call and every experiment-harness stage submits here, which is what
// keeps nested sweeps from oversubscribing the machine.
func SharedPool() *Pool {
	sharedOnce.Do(func() { sharedPool = NewPool(runtime.GOMAXPROCS(0)) })
	return sharedPool
}

// Size returns the worker bound.
func (p *Pool) Size() int { return p.size }

// PeakWorkers reports the high-water mark of concurrently live worker
// goroutines. The pool guarantees PeakWorkers() <= Size() for its whole
// lifetime; tests assert it after deeply nested sweeps.
func (p *Pool) PeakWorkers() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peak
}

func (p *Pool) enqueue(n *node) {
	p.mu.Lock()
	p.queue = append(p.queue, n)
	if p.workers < p.size {
		p.workers++
		if p.workers > p.peak {
			p.peak = p.workers
		}
		go p.work()
	}
	p.mu.Unlock()
}

// work drains the queue and exits when it is empty. Exit and spawn are
// both decided under mu, so a task enqueued while the last worker is
// exiting always gets a fresh worker.
func (p *Pool) work() {
	for {
		p.mu.Lock()
		var n *node
		for len(p.queue) > 0 {
			c := p.queue[0]
			p.queue[0] = nil
			p.queue = p.queue[1:]
			if c.state.CompareAndSwap(nodeQueued, nodeClaimed) {
				n = c
				break
			}
		}
		if n == nil {
			p.workers--
			p.mu.Unlock()
			return
		}
		p.mu.Unlock()
		n.run()
	}
}

// Future is a handle to a task submitted to a pool. Create with Submit;
// read with Wait or Get (any number of times, from any goroutine).
type Future[T any] struct {
	n   *node
	res Result[T]
}

// Submit enqueues the task for execution and returns immediately. The
// task's panic, if any, surfaces as ErrPanic in the future's result.
func Submit[T any](p *Pool, t Task[T]) *Future[T] {
	f := &Future[T]{n: &node{done: make(chan struct{})}}
	f.n.run = func() {
		f.res = call(t)
		f.n.state.Store(nodeDone)
		close(f.n.done)
	}
	p.enqueue(f.n)
	return f
}

// Wait blocks until the task has run and returns its result. If the task
// is still queued, Wait claims it and runs it inline on the calling
// goroutine — the helping rule that makes nested waits deadlock-free and
// keeps a blocked caller from wasting its core.
func (f *Future[T]) Wait() Result[T] {
	if f.n.state.CompareAndSwap(nodeQueued, nodeClaimed) {
		f.n.run()
	}
	<-f.n.done
	return f.res
}

// Get is Wait unpacked into (value, error).
func (f *Future[T]) Get() (T, error) {
	r := f.Wait()
	return r.Value, r.Err
}

// Collect waits for every future and returns the results in input order.
func Collect[T any](fs []*Future[T]) []Result[T] {
	out := make([]Result[T], len(fs))
	for i, f := range fs {
		out[i] = f.Wait()
	}
	return out
}

// CollectValues waits for every future and extracts the values, returning
// the first error in input order. Like Run, it never short-circuits: every
// task still executes even when an earlier one failed.
func CollectValues[T any](fs []*Future[T]) ([]T, error) {
	return Values(Collect(fs))
}
