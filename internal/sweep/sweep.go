// Package sweep runs independent simulation tasks in parallel with a
// bounded worker pool, preserving input order in the results. The
// experiment harness uses it to spread a figure's scenario grid across
// cores; every simulation is self-contained (own engine, own RNG), so the
// only shared state is the read-only job trace.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Task computes the i-th result.
type Task[T any] func() (T, error)

// Result pairs a task's output with its error.
type Result[T any] struct {
	Value T
	Err   error
}

// Run executes all tasks with at most workers goroutines (0 = NumCPU) and
// returns the results in task order. It never short-circuits: every task
// runs even if an earlier one fails, so partial grids remain inspectable.
func Run[T any](tasks []Task[T], workers int) []Result[T] {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	results := make([]Result[T], len(tasks))
	if len(tasks) == 0 {
		return results
	}
	if workers <= 1 {
		for i := range tasks {
			results[i] = call(tasks[i])
		}
		return results
	}
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = call(tasks[i])
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// call runs one task, converting a panic into ErrPanic so a single bad
// scenario cannot take down a whole sweep.
func call[T any](t Task[T]) (res Result[T]) {
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	res.Value, res.Err = t()
	return res
}

// FirstError returns the first non-nil error in task order, or nil.
func FirstError[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// Values extracts the values, returning the first error encountered.
func Values[T any](results []Result[T]) ([]T, error) {
	if err := FirstError(results); err != nil {
		return nil, err
	}
	out := make([]T, len(results))
	for i := range results {
		out[i] = results[i].Value
	}
	return out, nil
}

// ErrPanic wraps a recovered panic from a task.
var ErrPanic = errors.New("sweep: task panicked")
