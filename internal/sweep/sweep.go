// Package sweep runs independent simulation tasks in parallel with a
// bounded worker pool, preserving input order in the results. The
// experiment harness uses it to spread a figure's scenario grid across
// cores; every simulation is self-contained (own engine, own RNG), so the
// only shared state is the read-only job trace.
//
// All parallel work in the process executes on one shared pool
// (SharedPool): Run called from inside a pool worker borrows the caller's
// pool instead of spawning a fresh worker set, so nesting sweeps (figure →
// panel → scenario grid) never oversubscribes the machine. For
// dependency-shaped work, Submit/Future expose the pool directly:
// submit-now/await-later with helping waits (see Pool).
package sweep

import (
	"errors"
	"fmt"
)

// Task computes the i-th result.
type Task[T any] func() (T, error)

// Result pairs a task's output with its error.
type Result[T any] struct {
	Value T
	Err   error
}

// Run executes all tasks on the shared pool and returns the results in
// task order. It never short-circuits: every task runs even if an earlier
// one fails, so partial grids remain inspectable.
//
// workers bounds how many of *this call's* tasks are unfinished at once:
// 0 submits everything up front (global concurrency is still capped by the
// shared pool), 1 runs serially inline, and n > 1 keeps a window of n
// tasks in flight. Unlike the retired per-call worker set, no goroutines
// are spawned beyond the shared pool's bound, no matter how deeply Run
// calls nest.
func Run[T any](tasks []Task[T], workers int) []Result[T] {
	results := make([]Result[T], len(tasks))
	if len(tasks) == 0 {
		return results
	}
	if workers == 1 || len(tasks) == 1 {
		for i := range tasks {
			results[i] = call(tasks[i])
		}
		return results
	}
	if workers <= 0 || workers > len(tasks) {
		workers = len(tasks)
	}
	p := SharedPool()
	futs := make([]*Future[T], len(tasks))
	next := 0
	for ; next < workers; next++ {
		futs[next] = Submit(p, tasks[next])
	}
	for i := range tasks {
		results[i] = futs[i].Wait()
		if next < len(tasks) {
			futs[next] = Submit(p, tasks[next])
			next++
		}
	}
	return results
}

// call runs one task, converting a panic into ErrPanic so a single bad
// scenario cannot take down a whole sweep.
func call[T any](t Task[T]) (res Result[T]) {
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("%w: %v", ErrPanic, r)
		}
	}()
	res.Value, res.Err = t()
	return res
}

// FirstError returns the first non-nil error in task order, or nil.
func FirstError[T any](results []Result[T]) error {
	for i := range results {
		if results[i].Err != nil {
			return results[i].Err
		}
	}
	return nil
}

// Values extracts the values, returning the first error encountered.
func Values[T any](results []Result[T]) ([]T, error) {
	if err := FirstError(results); err != nil {
		return nil, err
	}
	out := make([]T, len(results))
	for i := range results {
		out[i] = results[i].Value
	}
	return out, nil
}

// ErrPanic wraps a recovered panic from a task.
var ErrPanic = errors.New("sweep: task panicked")
