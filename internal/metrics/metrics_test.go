package metrics

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestECDFEmpty(t *testing.T) {
	if _, err := NewECDF(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestECDFAt(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ x, want float64 }{
		{0, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.5}, {4, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := e.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", tc.x, got, tc.want)
		}
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e, _ := NewECDF(in)
	in[0] = -100
	if e.Min() != 1 {
		t.Fatal("ECDF aliased its input slice")
	}
}

func TestQuantiles(t *testing.T) {
	e, _ := NewECDF([]float64{10, 20, 30, 40, 50})
	cases := []struct{ q, want float64 }{
		{0, 10}, {0.2, 10}, {0.25, 20}, {0.5, 30}, {0.75, 40}, {1, 50},
	}
	for _, tc := range cases {
		if got := e.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	if e.Median() != 30 {
		t.Fatalf("median = %g, want 30", e.Median())
	}
	if e.Mean() != 30 {
		t.Fatalf("mean = %g, want 30", e.Mean())
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{5, 1, 3, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := Summary{Min: 1, Q1: 2, Median: 3, Q3: 4, Max: 5}
	if s != want {
		t.Fatalf("summary = %+v, want %+v", s, want)
	}
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty summary err = %v", err)
	}
}

func TestECDFPoints(t *testing.T) {
	e, _ := NewECDF([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	pts := e.Points(5)
	if len(pts) != 5 {
		t.Fatalf("points = %d, want 5", len(pts))
	}
	if last := pts[len(pts)-1]; last.X != 10 || last.P != 1 {
		t.Fatalf("last point = %+v, want (10, 1)", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P || pts[i].X < pts[i-1].X {
			t.Fatal("ECDF points not monotone")
		}
	}
	if got := len(e.Points(0)); got != 10 {
		t.Fatalf("Points(0) = %d entries, want all 10", got)
	}
}

func TestSystemCost(t *testing.T) {
	// 1 node with 128 GB: node + one memory kit.
	got := SystemCostUSD(1, 128*1024)
	want := NodeCostUSD + MemCostUSDPer128GB
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("cost = %g, want %g", got, want)
	}
	// The paper's synthetic system: 1024 nodes, fully large (128 GB).
	full := SystemCostUSD(1024, 1024*128*1024)
	if full <= 1024*NodeCostUSD {
		t.Fatal("memory cost missing from system cost")
	}
}

func TestThroughputPerDollar(t *testing.T) {
	tpd := ThroughputPerDollar(0.01, 1024, 1024*64*1024)
	if tpd <= 0 {
		t.Fatalf("tpd = %g, want > 0", tpd)
	}
	// More memory, same throughput: worse value.
	tpd2 := ThroughputPerDollar(0.01, 1024, 1024*128*1024)
	if tpd2 >= tpd {
		t.Fatalf("tpd with more memory %g !< %g", tpd2, tpd)
	}
	if got := ThroughputPerDollar(1, 0, 0); got != 0 {
		t.Fatalf("zero-cost tpd = %g, want 0", got)
	}
}

// Property: At is a valid CDF — monotone, 0 at -inf side, 1 at max.
func TestQuickECDFIsCDF(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64() * 100
		}
		e, err := NewECDF(samples)
		if err != nil {
			return false
		}
		if e.At(e.Max()) != 1 {
			return false
		}
		if e.At(e.Min()-1) != 0 {
			return false
		}
		prev := -1.0
		for x := e.Min() - 1; x <= e.Max()+1; x += (e.Max() - e.Min() + 2) / 37 {
			p := e.At(x)
			if p < prev || p < 0 || p > 1 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: quantile and At are near-inverses: At(Quantile(q)) >= q.
func TestQuickQuantileInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.Float64() * 1000
		}
		e, err := NewECDF(samples)
		if err != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			q := rng.Float64()
			if e.At(e.Quantile(q)) < q-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: summary is ordered min <= q1 <= median <= q3 <= max.
func TestQuickSummaryOrdered(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) {
				return true
			}
		}
		s, err := Summarize(raw)
		if err != nil {
			return false
		}
		ordered := []float64{s.Min, s.Q1, s.Median, s.Q3, s.Max}
		return sort.Float64sAreSorted(ordered)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
