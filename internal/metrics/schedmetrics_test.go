package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBoundedSlowdown(t *testing.T) {
	cases := []struct {
		wait, runtime, tau, want float64
	}{
		{0, 100, 10, 1},      // no wait: slowdown 1
		{100, 100, 10, 2},    // wait == runtime
		{90, 1, 10, 9.1},     // short job bounded by tau: (90+1)/10
		{0, 0.5, 10, 1},      // ultra-short, no wait: clamped to 1
		{10, 0, 10, 1},       // zero runtime, bounded: (10+0)/10 = 1
		{100, 100, 0, 2},     // tau defaulted to 10
		{5, 1e-9, -1, 0.5e1}, // negative tau defaults to 10: 5/10 → clamps to 1? no: (5+1e-9)/10 = 0.5 → clamp to 1
	}
	for i, tc := range cases {
		got := BoundedSlowdown(tc.wait, tc.runtime, tc.tau)
		want := tc.want
		if want < 1 {
			want = 1
		}
		if math.Abs(got-want) > 1e-9 && !(i == 6 && got == 1) {
			t.Errorf("case %d: got %g, want %g", i, got, want)
		}
	}
}

func TestMeanBoundedSlowdown(t *testing.T) {
	waits := []float64{0, 100, -1, 50}
	runs := []float64{100, 100, 100, 50}
	// Valid pairs: (0,100)=1, (100,100)=2, (50,50)=2 → mean 5/3.
	got := MeanBoundedSlowdown(waits, runs, 10)
	if math.Abs(got-5.0/3.0) > 1e-9 {
		t.Fatalf("got %g, want %g", got, 5.0/3.0)
	}
	if MeanBoundedSlowdown(nil, nil, 10) != 0 {
		t.Fatal("empty input must give 0")
	}
	// Ragged input: extra waits without runtimes are skipped.
	if got := MeanBoundedSlowdown([]float64{1, 2}, []float64{10}, 10); got == 0 {
		t.Fatal("ragged input dropped everything")
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal shares: %g, want 1", got)
	}
	if got := JainFairness([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("one-holder: %g, want 0.25", got)
	}
	if JainFairness(nil) != 0 || JainFairness([]float64{0, 0}) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
	// Negative values are clamped, not allowed to inflate fairness.
	if got := JainFairness([]float64{-5, 5}); got > 0.5+1e-12 {
		t.Fatalf("negative clamping broken: %g", got)
	}
}

func TestGini(t *testing.T) {
	if got := Gini([]float64{1, 1, 1}); math.Abs(got) > 1e-12 {
		t.Fatalf("equal: %g, want 0", got)
	}
	// One holder of everything among n: G = (n-1)/n.
	if got := Gini([]float64{0, 0, 0, 12}); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("concentrated: %g, want 0.75", got)
	}
	if Gini(nil) != 0 || Gini([]float64{0}) != 0 {
		t.Fatal("degenerate inputs must give 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Percentile(xs, 50); got != 30 {
		t.Fatalf("p50 = %g", got)
	}
	if got := Percentile(xs, 100); got != 50 {
		t.Fatalf("p100 = %g", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("empty percentile must be NaN")
	}
}

// Property: Jain's index lies in [1/n, 1] for any positive sample.
func TestQuickJainRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*100 + 0.001
		}
		j := JainFairness(xs)
		return j >= 1/float64(n)-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gini lies in [0, 1) and is scale-invariant.
func TestQuickGiniScaleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		g := Gini(xs)
		if g < -1e-9 || g >= 1 {
			return false
		}
		scaled := make([]float64, n)
		k := 0.5 + rng.Float64()*10
		for i := range xs {
			scaled[i] = xs[i] * k
		}
		return math.Abs(Gini(scaled)-g) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: bounded slowdown is ≥ 1 and monotone in wait.
func TestQuickBoundedSlowdownMonotone(t *testing.T) {
	f := func(w1, w2, r float64) bool {
		w1, w2 = math.Abs(w1), math.Abs(w2)
		r = math.Abs(r)
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		s1 := BoundedSlowdown(w1, r, 10)
		s2 := BoundedSlowdown(w2, r, 10)
		return s1 >= 1 && s1 <= s2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSingleElementEdgeCases pins the degenerate single-sample behaviour of
// every fairness/quantile metric: one job is trivially fair and is its own
// every percentile.
func TestSingleElementEdgeCases(t *testing.T) {
	if got := Gini([]float64{42}); got != 0 {
		t.Fatalf("single-element Gini = %g, want 0", got)
	}
	if got := JainFairness([]float64{42}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("single-element Jain = %g, want 1", got)
	}
	for _, p := range []float64{0, 50, 100} {
		if got := Percentile([]float64{7}, p); got != 7 {
			t.Fatalf("single-element p%g = %g, want 7", p, got)
		}
	}
	// All-negative input clamps to all-zero → the defined 0 results.
	if Gini([]float64{-1, -2}) != 0 || JainFairness([]float64{-1, -2}) != 0 {
		t.Fatal("all-negative inputs must clamp to the all-zero result")
	}
}

// TestBoundedSlowdownTauClamping pins the denominator rule: max(runtime, tau),
// with non-positive tau replaced by the customary 10 s.
func TestBoundedSlowdownTauClamping(t *testing.T) {
	// runtime > tau: the denominator is the runtime, tau is irrelevant.
	if got := BoundedSlowdown(100, 50, 10); math.Abs(got-3) > 1e-12 {
		t.Fatalf("long job: %g, want 3", got)
	}
	// runtime < tau: the denominator is clamped up to tau.
	if got := BoundedSlowdown(100, 1, 50); math.Abs(got-101.0/50) > 1e-12 {
		t.Fatalf("short job under tau=50: %g, want %g", got, 101.0/50)
	}
	// tau larger than wait+runtime clamps the whole ratio below 1 → 1.
	if got := BoundedSlowdown(3, 1, 100); got != 1 {
		t.Fatalf("tau above response time: %g, want 1", got)
	}
	// Zero and negative tau both fall back to 10 s.
	if a, b := BoundedSlowdown(90, 1, 0), BoundedSlowdown(90, 1, -5); a != b || math.Abs(a-9.1) > 1e-12 {
		t.Fatalf("tau fallback: %g vs %g, want both 9.1", a, b)
	}
	// Zero runtime with defaulted tau: (wait+0)/10.
	if got := BoundedSlowdown(25, 0, 0); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("zero-runtime: %g, want 2.5", got)
	}
}
