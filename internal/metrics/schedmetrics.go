package metrics

import (
	"math"
	"sort"
)

// Scheduling-quality metrics standard in the parallel job scheduling
// literature (Feitelson et al.), computed over per-job (wait, runtime)
// pairs.

// BoundedSlowdown returns the bounded slowdown of one job:
//
//	max(1, (wait + runtime) / max(runtime, tau))
//
// where tau bounds the denominator so very short jobs do not dominate the
// average (the customary tau is 10 s).
func BoundedSlowdown(wait, runtime, tau float64) float64 {
	if tau <= 0 {
		tau = 10
	}
	den := runtime
	if den < tau {
		den = tau
	}
	if den <= 0 {
		return 1
	}
	s := (wait + runtime) / den
	if s < 1 {
		return 1
	}
	return s
}

// MeanBoundedSlowdown averages BoundedSlowdown over jobs. Pairs with
// negative wait (never started) are skipped; it returns 0 for no valid
// pairs.
func MeanBoundedSlowdown(waits, runtimes []float64, tau float64) float64 {
	var sum float64
	n := 0
	for i := range waits {
		if i >= len(runtimes) || waits[i] < 0 {
			continue
		}
		sum += BoundedSlowdown(waits[i], runtimes[i], tau)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// JainFairness returns Jain's fairness index over a set of non-negative
// allocations: (Σx)² / (n·Σx²), which is 1 for perfectly equal values and
// 1/n when one value holds everything. An empty or all-zero input yields 0.
func JainFairness(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		if x < 0 {
			x = 0
		}
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 || len(xs) == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Gini returns the Gini coefficient of a non-negative sample: 0 for
// perfect equality, approaching 1 for extreme concentration.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	for i, v := range s {
		if v < 0 {
			s[i] = 0
		}
	}
	sort.Float64s(s)
	var cum, total float64
	for i, v := range s {
		cum += float64(i+1) * v
		total += v
	}
	if total == 0 {
		return 0
	}
	n := float64(len(s))
	return (2*cum - (n+1)*total) / (n * total)
}

// Percentile returns the p-th percentile (0–100) of xs using nearest-rank;
// it returns NaN for an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	e, err := NewECDF(xs)
	if err != nil {
		return math.NaN()
	}
	return e.Quantile(p / 100)
}
