// Package metrics computes the evaluation statistics reported in the paper:
// normalised throughput, empirical CDFs of response times, quantiles,
// utilisation, and the cost–benefit (throughput per dollar) model of
// Table 4.
package metrics

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned when a statistic is requested over no samples.
var ErrEmpty = errors.New("metrics: no samples")

// ECDF is an empirical cumulative distribution function over a sample.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from samples (copied and sorted).
func NewECDF(samples []float64) (*ECDF, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	s := make([]float64, len(samples))
	copy(s, samples)
	sort.Float64s(s)
	return &ECDF{sorted: s}, nil
}

// Len returns the sample count.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-th quantile (0 <= q <= 1) using the nearest-rank
// method; q=0 gives the minimum, q=1 the maximum.
func (e *ECDF) Quantile(q float64) float64 {
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	rank := int(math.Ceil(q*float64(len(e.sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return e.sorted[rank]
}

// Median returns the 0.5 quantile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Min and Max bounds of the sample.
func (e *ECDF) Min() float64 { return e.sorted[0] }
func (e *ECDF) Max() float64 { return e.sorted[len(e.sorted)-1] }

// Mean returns the arithmetic mean.
func (e *ECDF) Mean() float64 {
	var s float64
	for _, v := range e.sorted {
		s += v
	}
	return s / float64(len(e.sorted))
}

// Points returns (x, P(X<=x)) pairs suitable for plotting the ECDF curve,
// downsampled to at most n points (n <= 0 means all).
func (e *ECDF) Points(n int) [](struct{ X, P float64 }) {
	total := len(e.sorted)
	if n <= 0 || n > total {
		n = total
	}
	out := make([]struct{ X, P float64 }, 0, n)
	for i := 0; i < n; i++ {
		idx := (i + 1) * total / n
		out = append(out, struct{ X, P float64 }{
			X: e.sorted[idx-1],
			P: float64(idx) / float64(total),
		})
	}
	return out
}

// Summary holds the five-number summary used by the paper's Table 3.
type Summary struct {
	Min, Q1, Median, Q3, Max float64
}

// Summarize computes the five-number summary of samples.
func Summarize(samples []float64) (Summary, error) {
	e, err := NewECDF(samples)
	if err != nil {
		return Summary{}, err
	}
	return Summary{
		Min:    e.Min(),
		Q1:     e.Quantile(0.25),
		Median: e.Median(),
		Q3:     e.Quantile(0.75),
		Max:    e.Max(),
	}, nil
}
