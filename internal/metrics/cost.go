package metrics

// Cost model from the paper's Table 4, taken from Ogunshile's small-scale
// HPC cloud analysis: a node (chassis, network share, switches, small
// storage — everything except DRAM) costs $10,154, and each 128 GB of DRAM
// costs $1,280.
const (
	// NodeCostUSD is the per-node cost excluding memory.
	NodeCostUSD = 10154.0
	// MemCostUSDPer128GB is the cost of one 128 GB memory kit.
	MemCostUSDPer128GB = 1280.0
)

// SystemCostUSD returns the capital cost of a system with the given node
// count and total memory in MB.
func SystemCostUSD(nodes int, totalMemMB int64) float64 {
	gb := float64(totalMemMB) / 1024.0
	return float64(nodes)*NodeCostUSD + gb/128.0*MemCostUSDPer128GB
}

// ThroughputPerDollar returns jobs/second/USD, the paper's cost–benefit
// metric (Figure 7).
func ThroughputPerDollar(throughput float64, nodes int, totalMemMB int64) float64 {
	c := SystemCostUSD(nodes, totalMemMB)
	if c <= 0 {
		return 0
	}
	return throughput / c
}
