package policy

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dismem/internal/cluster"
	"dismem/internal/job"
)

func testJob(id, nodes int, reqMB int64) *job.Job {
	return &job.Job{ID: id, Nodes: nodes, RequestMB: reqMB}
}

func TestKindString(t *testing.T) {
	if Baseline.String() != "baseline" || Static.String() != "static" || Dynamic.String() != "dynamic" {
		t.Fatal("kind names do not match the paper")
	}
	if Kind(99).String() != "unknown" {
		t.Fatal("unknown kind not handled")
	}
}

func TestNewReturnsMatchingKinds(t *testing.T) {
	for _, k := range []Kind{Baseline, Static, Dynamic} {
		p := New(k)
		if p.Kind() != k {
			t.Fatalf("New(%v).Kind() = %v", k, p.Kind())
		}
		if p.Tracks() != (k == Dynamic) {
			t.Fatalf("New(%v).Tracks() = %v", k, p.Tracks())
		}
	}
}

func TestBaselineCanEverRun(t *testing.T) {
	cl := cluster.NewMixed(cluster.Config{Nodes: 4, Cores: 32, NormalMB: 1000, LargeFrac: 0.5})
	p := New(Baseline)
	if !p.CanEverRun(cl, testJob(1, 2, 2000)) {
		t.Fatal("2 large nodes exist; 2x2000MB must be runnable")
	}
	if p.CanEverRun(cl, testJob(2, 3, 2000)) {
		t.Fatal("only 2 large nodes exist; 3x2000MB must be unrunnable")
	}
	if p.CanEverRun(cl, testJob(3, 1, 2001)) {
		t.Fatal("request above the largest node must be unrunnable")
	}
	if !p.CanEverRun(cl, testJob(4, 4, 500)) {
		t.Fatal("4 nodes of 500MB must be runnable")
	}
}

func TestBaselinePlaceExclusiveWholeNode(t *testing.T) {
	cl := cluster.New(3, 32, 1000)
	p := New(Baseline)
	ja, ok := p.Place(cl, testJob(1, 2, 400))
	if !ok {
		t.Fatal("placement failed")
	}
	// Baseline gives the job the whole node memory.
	for _, na := range ja.PerNode {
		if na.LocalMB != 1000 {
			t.Fatalf("node %d local = %d, want full 1000", na.Node, na.LocalMB)
		}
		if len(na.Leases) != 0 {
			t.Fatal("baseline must not borrow")
		}
	}
	if cl.TotalFreeMB() != 1000 {
		t.Fatalf("free = %d, want 1000 (one idle node)", cl.TotalFreeMB())
	}
}

func TestBaselinePrefersSmallNodes(t *testing.T) {
	cl := cluster.NewMixed(cluster.Config{Nodes: 4, Cores: 32, NormalMB: 1000, LargeFrac: 0.5})
	p := New(Baseline)
	ja, ok := p.Place(cl, testJob(1, 2, 500))
	if !ok {
		t.Fatal("placement failed")
	}
	for _, na := range ja.PerNode {
		if cl.Node(na.Node).CapacityMB != 1000 {
			t.Fatalf("small job placed on large node %d", na.Node)
		}
	}
}

func TestBaselineRejectsWhenBusy(t *testing.T) {
	cl := cluster.New(2, 32, 1000)
	p := New(Baseline)
	if _, ok := p.Place(cl, testJob(1, 2, 100)); !ok {
		t.Fatal("first placement failed")
	}
	if _, ok := p.Place(cl, testJob(2, 1, 100)); ok {
		t.Fatal("placement on a fully busy cluster succeeded")
	}
}

func TestStaticCanEverRunUsesPool(t *testing.T) {
	cl := cluster.New(4, 32, 1000) // 4000 MB pool
	p := New(Static)
	if !p.CanEverRun(cl, testJob(1, 1, 3000)) {
		t.Fatal("3000MB on one node is borrowable from a 4000MB pool")
	}
	if p.CanEverRun(cl, testJob(2, 2, 2500)) {
		t.Fatal("5000MB total exceeds the 4000MB pool")
	}
	if p.CanEverRun(cl, testJob(3, 5, 100)) {
		t.Fatal("5 nodes on a 4-node cluster")
	}
}

func TestStaticPlaceWithoutBorrowing(t *testing.T) {
	cl := cluster.New(2, 32, 1000)
	p := New(Static)
	ja, ok := p.Place(cl, testJob(1, 1, 800))
	if !ok {
		t.Fatal("placement failed")
	}
	na := ja.PerNode[0]
	if na.LocalMB != 800 || len(na.Leases) != 0 {
		t.Fatalf("allocation = %+v, want 800 local / no leases", na)
	}
	// Unlike baseline, static only reserves the request.
	if got := cl.Node(na.Node).FreeMB(); got != 200 {
		t.Fatalf("node free = %d, want 200", got)
	}
}

func TestStaticPlaceBorrowsDeficit(t *testing.T) {
	cl := cluster.New(3, 32, 1000)
	p := New(Static)
	ja, ok := p.Place(cl, testJob(1, 1, 1500))
	if !ok {
		t.Fatal("placement failed")
	}
	na := ja.PerNode[0]
	if na.LocalMB != 1000 {
		t.Fatalf("local = %d, want full node 1000", na.LocalMB)
	}
	if na.RemoteMB() != 500 {
		t.Fatalf("remote = %d, want 500", na.RemoteMB())
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStaticLenderBecomesMemoryNode(t *testing.T) {
	cl := cluster.New(2, 32, 1000)
	p := New(Static)
	// Job borrows 600 from the second node, pushing it past half.
	_, ok := p.Place(cl, testJob(1, 1, 1600))
	if !ok {
		t.Fatal("placement failed")
	}
	if !cl.Node(1).IsMemoryNode() {
		t.Fatal("lender past half capacity must become a memory node")
	}
	// Next 1-node job cannot start: node 1 is a memory node.
	if _, ok := p.Place(cl, testJob(2, 1, 100)); ok {
		t.Fatal("job placed on a memory node")
	}
}

func TestStaticPlaceFailsWhenPoolExhausted(t *testing.T) {
	cl := cluster.New(2, 32, 1000)
	p := New(Static)
	if _, ok := p.Place(cl, testJob(1, 1, 2500)); ok {
		t.Fatal("placement exceeding total pool succeeded")
	}
	// Cluster must be untouched.
	if cl.TotalFreeMB() != 2000 || cl.BusyNodes() != 0 {
		t.Fatal("failed placement modified the cluster")
	}
}

func TestStaticMultiNodePlacement(t *testing.T) {
	cl := cluster.New(4, 32, 1000)
	p := New(Static)
	ja, ok := p.Place(cl, testJob(1, 3, 1200))
	if !ok {
		t.Fatal("placement failed")
	}
	if got := ja.TotalMB(); got != 3600 {
		t.Fatalf("total = %d, want 3600", got)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The single remaining node lent 600 to the three compute nodes
	// (3600 total - 3000 local capacity).
	if got := ja.RemoteMB(); got != 600 {
		t.Fatalf("remote = %d, want 600", got)
	}
}

func TestDynamicPlaceMatchesStatic(t *testing.T) {
	j := testJob(1, 2, 900)
	clS := cluster.New(4, 32, 1000)
	clD := cluster.New(4, 32, 1000)
	jaS, okS := New(Static).Place(clS, j)
	jaD, okD := New(Dynamic).Place(clD, j)
	if !okS || !okD {
		t.Fatal("placement failed")
	}
	if jaS.TotalMB() != jaD.TotalMB() || jaS.RemoteMB() != jaD.RemoteMB() {
		t.Fatal("dynamic initial placement differs from static")
	}
}

func TestAdjustShrinkRemoteFirst(t *testing.T) {
	cl := cluster.New(3, 32, 1000)
	ja, ok := New(Dynamic).Place(cl, testJob(1, 1, 1500))
	if !ok {
		t.Fatal("placement failed")
	}
	// 1000 local + 500 remote; shrink to 800: all remote returned first,
	// then 200 local.
	if err := Adjust(cl, ja, 0, 800); err != nil {
		t.Fatal(err)
	}
	na := ja.PerNode[0]
	if na.RemoteMB() != 0 {
		t.Fatalf("remote = %d, want 0 (remote deallocated first)", na.RemoteMB())
	}
	if na.LocalMB != 800 {
		t.Fatalf("local = %d, want 800", na.LocalMB)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdjustGrowLocalFirst(t *testing.T) {
	cl := cluster.New(3, 32, 1000)
	ja, ok := New(Dynamic).Place(cl, testJob(1, 1, 500))
	if !ok {
		t.Fatal("placement failed")
	}
	// Grow to 1400: 500 more local fills the node, 400 borrowed.
	if err := Adjust(cl, ja, 0, 1400); err != nil {
		t.Fatal(err)
	}
	na := ja.PerNode[0]
	if na.LocalMB != 1000 {
		t.Fatalf("local = %d, want 1000 (local first)", na.LocalMB)
	}
	if na.RemoteMB() != 400 {
		t.Fatalf("remote = %d, want 400", na.RemoteMB())
	}
}

func TestAdjustNoChange(t *testing.T) {
	cl := cluster.New(2, 32, 1000)
	ja, _ := New(Dynamic).Place(cl, testJob(1, 1, 500))
	before := cl.TotalFreeMB()
	if err := Adjust(cl, ja, 0, 500); err != nil {
		t.Fatal(err)
	}
	if cl.TotalFreeMB() != before {
		t.Fatal("no-op adjust changed the ledger")
	}
	if err := Adjust(cl, ja, 0, -1); !errors.Is(err, cluster.ErrNegativeAmount) {
		t.Fatalf("negative target: err = %v", err)
	}
}

func TestAdjustOutOfMemory(t *testing.T) {
	cl := cluster.New(2, 32, 1000)
	ja, ok := New(Dynamic).Place(cl, testJob(1, 1, 1000))
	if !ok {
		t.Fatal("placement failed")
	}
	// Consume the other node's memory with a second job.
	ja2, ok := New(Dynamic).Place(cl, testJob(2, 1, 900))
	if !ok {
		t.Fatal("second placement failed")
	}
	_ = ja2
	// Job 1 wants to grow beyond what remains (only 100 free anywhere).
	err := Adjust(cl, ja, 0, 1200)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// Partial growth then release must leave a clean ledger.
	if err := ja.Release(cl); err != nil {
		t.Fatal(err)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdjustGrowToExactPoolBoundary(t *testing.T) {
	cl := cluster.New(2, 32, 1000)
	ja, _ := New(Dynamic).Place(cl, testJob(1, 1, 1000))
	// Exactly the remaining 1000 (the whole second node) is available.
	if err := Adjust(cl, ja, 0, 2000); err != nil {
		t.Fatal(err)
	}
	if cl.TotalFreeMB() != 0 {
		t.Fatalf("free = %d, want 0", cl.TotalFreeMB())
	}
}

// Property: under any sequence of placements, usage adjustments, and
// releases, cluster invariants hold and total memory is conserved.
func TestQuickPolicyLifecycleInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cl := cluster.New(10, 32, 2048)
		pol := New(Dynamic)
		type running struct{ ja *cluster.JobAllocation }
		var jobs []running
		nextID := 1
		for op := 0; op < 300; op++ {
			switch rng.Intn(3) {
			case 0:
				j := testJob(nextID, 1+rng.Intn(4), rng.Int63n(3000))
				nextID++
				if ja, ok := pol.Place(cl, j); ok {
					jobs = append(jobs, running{ja})
				}
			case 1:
				if len(jobs) == 0 {
					continue
				}
				r := jobs[rng.Intn(len(jobs))]
				i := rng.Intn(len(r.ja.PerNode))
				target := rng.Int63n(3000)
				if err := Adjust(cl, r.ja, i, target); err != nil &&
					!errors.Is(err, ErrOutOfMemory) {
					return false
				}
			case 2:
				if len(jobs) == 0 {
					continue
				}
				i := rng.Intn(len(jobs))
				if jobs[i].ja.Release(cl) != nil {
					return false
				}
				jobs = append(jobs[:i], jobs[i+1:]...)
			}
			if cl.CheckInvariants() != nil {
				return false
			}
			if cl.TotalFreeMB()+cl.TotalAllocatedMB() != cl.TotalCapacityMB() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: a successful placement always allocates exactly nodes×request MB
// for the disaggregated policies, and placement failure leaves the ledger
// untouched.
func TestQuickPlacementExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cl := cluster.NewMixed(cluster.Config{
			Nodes: 8, Cores: 32, NormalMB: 1024, LargeFrac: 0.25,
		})
		pol := New(Static)
		var placed []*cluster.JobAllocation
		for id := 1; id <= 30; id++ {
			j := testJob(id, 1+rng.Intn(3), rng.Int63n(2500))
			freeBefore := cl.TotalFreeMB()
			busyBefore := cl.BusyNodes()
			ja, ok := pol.Place(cl, j)
			if !ok {
				if cl.TotalFreeMB() != freeBefore || cl.BusyNodes() != busyBefore {
					return false
				}
				continue
			}
			if ja.TotalMB() != j.TotalRequestMB() {
				return false
			}
			placed = append(placed, ja)
		}
		for _, ja := range placed {
			if ja.Release(cl) != nil {
				return false
			}
		}
		return cl.TotalFreeMB() == cl.TotalCapacityMB() && cl.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStaticPlacement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl := cluster.New(128, 32, 65536)
		pol := New(Static)
		for id := 1; id <= 32; id++ {
			if _, ok := pol.Place(cl, testJob(id, 4, 96*1024)); !ok {
				break
			}
		}
	}
}

func BenchmarkDynamicAdjust(b *testing.B) {
	cl := cluster.New(64, 32, 65536)
	pol := New(Dynamic)
	var allocs []*cluster.JobAllocation
	for id := 1; id <= 16; id++ {
		ja, ok := pol.Place(cl, testJob(id, 2, 80*1024))
		if !ok {
			b.Fatal("placement failed")
		}
		allocs = append(allocs, ja)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ja := allocs[i%len(allocs)]
		target := int64(20*1024 + (i%5)*15*1024)
		for k := range ja.PerNode {
			if err := Adjust(cl, ja, k, target); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkPlaceDynamic measures one place/release cycle of the dynamic
// policy at paper scale (1490 nodes), on a cluster busy enough that most
// placements must borrow remote memory. This is the static/dynamic
// placement hot path the scheduler runs on every tick.
func BenchmarkPlaceDynamic(b *testing.B) {
	cl := cluster.New(1490, 32, 65536)
	// Occupy most of the cluster so candidate selection and borrow planning
	// both do real work: jobs of 8 nodes at 48 GB/node leave a thin pool.
	p := New(Dynamic)
	var held []*cluster.JobAllocation
	id := 0
	for {
		id++
		ja, ok := p.Place(cl, testJob(id, 8, 49152))
		if !ok {
			break
		}
		held = append(held, ja)
	}
	if len(held) == 0 {
		b.Fatal("setup placed nothing")
	}
	// Free one slot; the benchmark re-places into it repeatedly.
	if err := held[len(held)-1].Release(cl); err != nil {
		b.Fatal(err)
	}
	j := testJob(id+1, 8, 49152)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ja, ok := p.Place(cl, j)
		if !ok {
			b.Fatal("placement failed")
		}
		if err := ja.Release(cl); err != nil {
			b.Fatal(err)
		}
	}
}
