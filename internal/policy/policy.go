// Package policy implements the paper's three memory-allocation policies:
//
//   - Baseline: no disaggregation. A job gets exclusive access to whole
//     nodes, memory included, so its per-node request must fit a single
//     node's capacity.
//   - Static (Zacarias et al., ICPADS'21): disaggregated memory with a
//     fixed allocation equal to the submission-script request. Placement
//     prefers nodes with enough free memory and borrows any deficit from
//     the nodes with the most free memory.
//   - Dynamic (this paper): initial placement identical to Static, then the
//     allocation follows the job's observed usage — the Decider compares
//     usage with the current allocation, the Actuator frees remote memory
//     first when shrinking and takes local memory first when growing.
//
// Place methods mutate the cluster ledger only on success; a failed
// placement leaves the cluster untouched.
package policy

import (
	"sort"

	"dismem/internal/cluster"
	"dismem/internal/job"
)

// Kind enumerates the three policies.
type Kind int

const (
	Baseline Kind = iota
	Static
	Dynamic
)

// String returns the paper's name for the policy.
func (k Kind) String() string {
	switch k {
	case Baseline:
		return "baseline"
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	}
	return "unknown"
}

// LenderRanker orders candidate lender nodes for borrowing on behalf of a
// compute node. exclude contains the borrowing job's own compute nodes.
// The default ranker prefers the most-free lenders (fewest lenders per
// job); the topology-aware ranker prefers the nearest (fewest hops).
type LenderRanker func(cl *cluster.Cluster, borrower cluster.NodeID, exclude map[cluster.NodeID]bool) []cluster.NodeID

// MostFreeRanker is the default lender order: free memory descending.
func MostFreeRanker(cl *cluster.Cluster, _ cluster.NodeID, exclude map[cluster.NodeID]bool) []cluster.NodeID {
	return cl.LendersByFreeDesc(exclude)
}

// Policy decides job placement and whether allocations track usage.
type Policy interface {
	Kind() Kind
	// CanEverRun reports whether the job could run on cl if it were
	// completely empty. Scenarios containing a job that can never run
	// are reported as infeasible (the paper's "missing bars").
	CanEverRun(cl *cluster.Cluster, j *job.Job) bool
	// Place tries to start the job now, mutating the ledger on success.
	Place(cl *cluster.Cluster, j *job.Job) (*cluster.JobAllocation, bool)
	// Tracks reports whether allocations follow observed usage
	// (true only for Dynamic).
	Tracks() bool
}

// New returns the policy implementation for kind with the default
// (most-free) lender order.
func New(kind Kind) Policy { return NewWithRanker(kind, MostFreeRanker) }

// NewWithRanker returns the policy implementation for kind with a custom
// lender order. The baseline never borrows, so the ranker is ignored.
func NewWithRanker(kind Kind, ranker LenderRanker) Policy {
	if ranker == nil {
		ranker = MostFreeRanker
	}
	switch kind {
	case Baseline:
		return baselinePolicy{}
	case Static:
		return staticPolicy{ranker: ranker}
	case Dynamic:
		return dynamicPolicy{ranker: ranker}
	}
	panic("policy: unknown kind")
}

// ---------------------------------------------------------------- baseline

type baselinePolicy struct{}

func (baselinePolicy) Kind() Kind   { return Baseline }
func (baselinePolicy) Tracks() bool { return false }

func (baselinePolicy) CanEverRun(cl *cluster.Cluster, j *job.Job) bool {
	n := 0
	for _, node := range cl.Nodes() {
		if node.CapacityMB >= j.RequestMB {
			n++
			if n >= j.Nodes {
				return true
			}
		}
	}
	return false
}

// Place for the baseline picks idle nodes whose capacity covers the request,
// preferring the smallest adequate capacity so large nodes stay available
// for large jobs. The job receives the node's entire memory (exclusive use).
func (baselinePolicy) Place(cl *cluster.Cluster, j *job.Job) (*cluster.JobAllocation, bool) {
	var candidates []cluster.NodeID
	for _, node := range cl.Nodes() {
		// Baseline never lends, so idleness is the only gate besides
		// capacity.
		if node.RunningJob == cluster.NoJob && node.CapacityMB >= j.RequestMB {
			candidates = append(candidates, node.ID)
		}
	}
	if len(candidates) < j.Nodes {
		return nil, false
	}
	sort.Slice(candidates, func(a, b int) bool {
		ca, cb := cl.Node(candidates[a]).CapacityMB, cl.Node(candidates[b]).CapacityMB
		if ca != cb {
			return ca < cb
		}
		return candidates[a] < candidates[b]
	})
	ja := &cluster.JobAllocation{Job: j.ID, PerNode: make([]cluster.NodeAllocation, 0, j.Nodes)}
	for _, id := range candidates[:j.Nodes] {
		mustStart(cl, id, j.ID)
		ja.PerNode = append(ja.PerNode, cluster.NodeAllocation{Node: id})
		mustGrowLocal(cl, ja, len(ja.PerNode)-1, cl.Node(id).CapacityMB)
	}
	return ja, true
}

// ---------------------------------------------------------------- static

type staticPolicy struct {
	ranker LenderRanker
}

func (staticPolicy) Kind() Kind   { return Static }
func (staticPolicy) Tracks() bool { return false }

func (staticPolicy) CanEverRun(cl *cluster.Cluster, j *job.Job) bool {
	return disaggCanEverRun(cl, j)
}

func (p staticPolicy) Place(cl *cluster.Cluster, j *job.Job) (*cluster.JobAllocation, bool) {
	return disaggPlace(cl, j, j.RequestMB, p.ranker)
}

// ---------------------------------------------------------------- dynamic

type dynamicPolicy struct {
	ranker LenderRanker
}

func (dynamicPolicy) Kind() Kind   { return Dynamic }
func (dynamicPolicy) Tracks() bool { return true }

func (dynamicPolicy) CanEverRun(cl *cluster.Cluster, j *job.Job) bool {
	return disaggCanEverRun(cl, j)
}

// Place for the dynamic policy is identical to the static policy: the
// initial allocation honours the submission request; only later usage
// updates diverge (see Adjust).
func (p dynamicPolicy) Place(cl *cluster.Cluster, j *job.Job) (*cluster.JobAllocation, bool) {
	return disaggPlace(cl, j, j.RequestMB, p.ranker)
}

// ------------------------------------------------- shared disaggregated

// disaggCanEverRun: on an empty cluster the job needs enough compute nodes
// and, across the whole pool, enough total memory. Each compute node's local
// share plus everything borrowed must exist somewhere.
func disaggCanEverRun(cl *cluster.Cluster, j *job.Job) bool {
	if cl.Len() < j.Nodes {
		return false
	}
	return cl.TotalCapacityMB() >= j.TotalRequestMB()
}

// disaggPlace implements the Zacarias placement: prefer compute-available
// nodes whose free memory covers perNodeMB; take the most-free nodes and
// borrow the deficit from the most-free lenders otherwise.
func disaggPlace(cl *cluster.Cluster, j *job.Job, perNodeMB int64, ranker LenderRanker) (*cluster.JobAllocation, bool) {
	avail := cl.IdleComputeNodes()
	if len(avail) < j.Nodes {
		return nil, false
	}
	// Order candidates by free memory descending so the selected compute
	// nodes need as little borrowing as possible.
	sort.Slice(avail, func(a, b int) bool {
		fa, fb := cl.Node(avail[a]).FreeMB(), cl.Node(avail[b]).FreeMB()
		if fa != fb {
			return fa > fb
		}
		return avail[a] < avail[b]
	})
	chosen := avail[:j.Nodes]

	// Feasibility: total free memory in the system must cover the job.
	if cl.TotalFreeMB() < int64(j.Nodes)*perNodeMB {
		return nil, false
	}

	own := make(map[cluster.NodeID]bool, len(chosen))
	for _, id := range chosen {
		own[id] = true
	}

	// Plan local shares first (maximising the local-to-remote ratio),
	// then plan the borrowing. Planning is pure so failure needs no
	// rollback.
	type plan struct {
		node   cluster.NodeID
		local  int64
		borrow []cluster.Lease
	}
	plans := make([]plan, len(chosen))
	var deficit int64
	for i, id := range chosen {
		local := minInt64(perNodeMB, cl.Node(id).FreeMB())
		plans[i] = plan{node: id, local: local}
		deficit += perNodeMB - local
	}
	if deficit > 0 {
		// Remaining lendable memory per node, shared across the job's
		// compute nodes as leases are planned.
		lf := make(map[cluster.NodeID]int64)
		for _, n := range cl.Nodes() {
			if !own[n.ID] && n.FreeMB() > 0 {
				lf[n.ID] = n.FreeMB()
			}
		}
		for i := range plans {
			need := perNodeMB - plans[i].local
			if need == 0 {
				continue
			}
			for _, l := range ranker(cl, plans[i].node, own) {
				take := minInt64(need, lf[l])
				if take <= 0 {
					continue
				}
				plans[i].borrow = append(plans[i].borrow, cluster.Lease{Lender: l, MB: take})
				lf[l] -= take
				need -= take
				if need == 0 {
					break
				}
			}
			if need > 0 {
				return nil, false // pool exhausted despite the aggregate check
			}
		}
	}

	// Apply. Every step is guaranteed to succeed by the planning above;
	// a failure indicates ledger corruption and panics via must helpers.
	ja := &cluster.JobAllocation{Job: j.ID, PerNode: make([]cluster.NodeAllocation, 0, j.Nodes)}
	for i, p := range plans {
		mustStart(cl, p.node, j.ID)
		ja.PerNode = append(ja.PerNode, cluster.NodeAllocation{Node: p.node})
		mustGrowLocal(cl, ja, i, p.local)
		for _, lease := range p.borrow {
			mustGrowRemote(cl, ja, i, lease.Lender, lease.MB)
		}
	}
	return ja, true
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func mustStart(cl *cluster.Cluster, id cluster.NodeID, jobID int) {
	if err := cl.StartJob(id, jobID); err != nil {
		panic(err)
	}
}

func mustGrowLocal(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, mb int64) {
	if err := ja.GrowLocal(cl, i, mb); err != nil {
		panic(err)
	}
}

func mustGrowRemote(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, lender cluster.NodeID, mb int64) {
	if err := ja.GrowRemote(cl, i, lender, mb); err != nil {
		panic(err)
	}
}
