// Package policy implements the paper's three memory-allocation policies:
//
//   - Baseline: no disaggregation. A job gets exclusive access to whole
//     nodes, memory included, so its per-node request must fit a single
//     node's capacity.
//   - Static (Zacarias et al., ICPADS'21): disaggregated memory with a
//     fixed allocation equal to the submission-script request. Placement
//     prefers nodes with enough free memory and borrows any deficit from
//     the nodes with the most free memory.
//   - Dynamic (this paper): initial placement identical to Static, then the
//     allocation follows the job's observed usage — the Decider compares
//     usage with the current allocation, the Actuator frees remote memory
//     first when shrinking and takes local memory first when growing.
//
// Place methods mutate the cluster ledger only on success; a failed
// placement leaves the cluster untouched.
//
// Placement runs millions of times inside the event loop, so the policies
// are stateful only in the sense of holding reusable scratch buffers: with
// the default most-free lender order they read the cluster's incremental
// indexes (free-memory treap, idle-compute bitset, capacity order) instead
// of rescanning and sorting the node slice, and they allocate nothing on
// the steady-state path. A Policy instance is consequently not safe for
// concurrent use; each simulator builds its own.
package policy

import (
	"dismem/internal/cluster"
	"dismem/internal/job"
)

// Kind enumerates the three policies.
type Kind int

const (
	Baseline Kind = iota
	Static
	Dynamic
)

// String returns the paper's name for the policy.
func (k Kind) String() string {
	switch k {
	case Baseline:
		return "baseline"
	case Static:
		return "static"
	case Dynamic:
		return "dynamic"
	}
	return "unknown"
}

// LenderRanker orders candidate lender nodes for borrowing on behalf of a
// compute node. exclude contains the borrowing job's own compute nodes.
// A nil ranker selects the default most-free order, served directly from
// the cluster's free-memory index; a non-nil ranker (e.g. the
// topology-aware nearest-first order) is called on every borrow.
type LenderRanker func(cl *cluster.Cluster, borrower cluster.NodeID, exclude map[cluster.NodeID]bool) []cluster.NodeID

// MostFreeRanker is the default lender order: free memory descending.
// Passing it to NewWithRanker is equivalent to passing nil, except that the
// nil form uses the streaming index fast path.
func MostFreeRanker(cl *cluster.Cluster, _ cluster.NodeID, exclude map[cluster.NodeID]bool) []cluster.NodeID {
	return cl.LendersByFreeDesc(exclude)
}

// Policy decides job placement and whether allocations track usage.
type Policy interface {
	Kind() Kind
	// CanEverRun reports whether the job could run on cl if it were
	// completely empty. Scenarios containing a job that can never run
	// are reported as infeasible (the paper's "missing bars").
	CanEverRun(cl *cluster.Cluster, j *job.Job) bool
	// Place tries to start the job now, mutating the ledger on success.
	Place(cl *cluster.Cluster, j *job.Job) (*cluster.JobAllocation, bool)
	// Tracks reports whether allocations follow observed usage
	// (true only for Dynamic).
	Tracks() bool
}

// New returns the policy implementation for kind with the default
// (most-free) lender order.
func New(kind Kind) Policy { return NewWithRanker(kind, nil) }

// NewWithRanker returns the policy implementation for kind with a custom
// lender order; nil means the default most-free order. The baseline never
// borrows, so the ranker is ignored.
func NewWithRanker(kind Kind, ranker LenderRanker) Policy {
	switch kind {
	case Baseline:
		return &baselinePolicy{}
	case Static:
		return &staticPolicy{place: placer{ranker: ranker}}
	case Dynamic:
		return &dynamicPolicy{place: placer{ranker: ranker}}
	}
	panic("policy: unknown kind")
}

// NewDomainFirst returns the policy implementation for kind with
// within-domain-first lender preference: placement borrowing drains the
// borrowing node's own ledger shard (its pressure domain) before spilling
// to the global most-free order. Used by the partitioned-pressure
// contention mode, where keeping leases inside the home domain both lowers
// that domain's cross-traffic and shrinks the job's frozen domain set. The
// baseline never borrows, so it is unaffected.
func NewDomainFirst(kind Kind) Policy {
	switch kind {
	case Baseline:
		return &baselinePolicy{}
	case Static:
		return &staticPolicy{place: placer{domainFirst: true}}
	case Dynamic:
		return &dynamicPolicy{place: placer{domainFirst: true}}
	}
	panic("policy: unknown kind")
}

// ---------------------------------------------------------------- baseline

type baselinePolicy struct {
	cand []cluster.NodeID // scratch
}

func (*baselinePolicy) Kind() Kind   { return Baseline }
func (*baselinePolicy) Tracks() bool { return false }

func (*baselinePolicy) CanEverRun(cl *cluster.Cluster, j *job.Job) bool {
	n := 0
	for _, node := range cl.Nodes() {
		if node.CapacityMB >= j.RequestMB {
			n++
			if n >= j.Nodes {
				return true
			}
		}
	}
	return false
}

// Place for the baseline picks idle nodes whose capacity covers the request,
// preferring the smallest adequate capacity so large nodes stay available
// for large jobs. The job receives the node's entire memory (exclusive use).
// The cluster's static capacity order replaces the per-call candidate sort;
// the walk stops as soon as enough nodes are found.
func (p *baselinePolicy) Place(cl *cluster.Cluster, j *job.Job) (*cluster.JobAllocation, bool) {
	cand := p.cand[:0]
	for _, id := range cl.CapacityOrder() {
		node := cl.Node(id)
		// Baseline never lends, so idleness is the only gate besides
		// capacity.
		if node.RunningJob == cluster.NoJob && node.CapacityMB >= j.RequestMB {
			cand = append(cand, id)
			if len(cand) == j.Nodes {
				break
			}
		}
	}
	p.cand = cand
	if len(cand) < j.Nodes {
		return nil, false
	}
	ja := &cluster.JobAllocation{Job: j.ID, PerNode: make([]cluster.NodeAllocation, 0, j.Nodes)}
	for _, id := range cand {
		mustStart(cl, id, j.ID)
		ja.PerNode = append(ja.PerNode, cluster.NodeAllocation{Node: id})
		mustGrowLocal(cl, ja, len(ja.PerNode)-1, cl.Node(id).CapacityMB)
	}
	return ja, true
}

// ---------------------------------------------------------------- static

type staticPolicy struct {
	place placer
}

func (*staticPolicy) Kind() Kind   { return Static }
func (*staticPolicy) Tracks() bool { return false }

func (*staticPolicy) CanEverRun(cl *cluster.Cluster, j *job.Job) bool {
	return disaggCanEverRun(cl, j)
}

func (p *staticPolicy) Place(cl *cluster.Cluster, j *job.Job) (*cluster.JobAllocation, bool) {
	return p.place.place(cl, j, j.RequestMB)
}

// ---------------------------------------------------------------- dynamic

type dynamicPolicy struct {
	place placer
}

func (*dynamicPolicy) Kind() Kind   { return Dynamic }
func (*dynamicPolicy) Tracks() bool { return true }

func (*dynamicPolicy) CanEverRun(cl *cluster.Cluster, j *job.Job) bool {
	return disaggCanEverRun(cl, j)
}

// Place for the dynamic policy is identical to the static policy: the
// initial allocation honours the submission request; only later usage
// updates diverge (see Adjuster).
func (p *dynamicPolicy) Place(cl *cluster.Cluster, j *job.Job) (*cluster.JobAllocation, bool) {
	return p.place.place(cl, j, j.RequestMB)
}

// ------------------------------------------------- shared disaggregated

// disaggCanEverRun: on an empty cluster the job needs enough compute nodes
// and, across the whole pool, enough total memory. Each compute node's local
// share plus everything borrowed must exist somewhere.
func disaggCanEverRun(cl *cluster.Cluster, j *job.Job) bool {
	if cl.Len() < j.Nodes {
		return false
	}
	return cl.TotalCapacityMB() >= j.TotalRequestMB()
}

// plan is the pure placement decision for one compute node; planning never
// touches the ledger, so failure needs no rollback.
type plan struct {
	node   cluster.NodeID
	local  int64
	borrow []cluster.Lease // capacity kept across placements
}

// placer implements the Zacarias placement — prefer compute-available nodes
// whose free memory covers the per-node request; take the most-free nodes
// and borrow the deficit from the most-free lenders otherwise — with all
// working state in reusable scratch buffers.
type placer struct {
	ranker      LenderRanker // nil = most-free via the cluster index
	domainFirst bool         // within-domain-first borrowing (pressure domains)

	chosen  []cluster.NodeID
	plans   []plan
	lenders []cluster.NodeID // fast path: lender snapshot in rank order
	lf      []int64          // remaining lendable memory, parallel to lenders
	own     map[cluster.NodeID]bool
	lfMap   map[cluster.NodeID]int64 // custom-ranker and domain-first paths
}

func (p *placer) place(cl *cluster.Cluster, j *job.Job, perNodeMB int64) (*cluster.JobAllocation, bool) {
	if cl.IdleComputeCount() < j.Nodes {
		return nil, false
	}
	// Select compute nodes by free memory descending (ties by ID) so they
	// need as little borrowing as possible — read straight off the index
	// in the exact order the retired sort produced.
	chosen := p.chosen[:0]
	cl.AscendFree(func(id cluster.NodeID, _ int64) bool {
		if cl.Node(id).IsComputeAvailable() {
			chosen = append(chosen, id)
		}
		return len(chosen) < j.Nodes
	})
	p.chosen = chosen

	// Feasibility: total free memory in the system must cover the job.
	if cl.TotalFreeMB() < int64(j.Nodes)*perNodeMB {
		return nil, false
	}

	// Plan local shares first (maximising the local-to-remote ratio), then
	// plan the borrowing.
	plans := p.plans
	if cap(plans) < j.Nodes {
		plans = make([]plan, j.Nodes)
	}
	plans = plans[:j.Nodes]
	p.plans = plans
	var deficit int64
	for i, id := range chosen {
		plans[i].node = id
		plans[i].local = minInt64(perNodeMB, cl.Node(id).FreeMB())
		plans[i].borrow = plans[i].borrow[:0]
		deficit += perNodeMB - plans[i].local
	}
	if deficit > 0 {
		ok := false
		switch {
		case p.domainFirst:
			ok = p.planBorrowDomains(cl, perNodeMB)
		case p.ranker == nil:
			ok = p.planBorrowFast(cl, perNodeMB, deficit)
		default:
			ok = p.planBorrowRanked(cl, perNodeMB)
		}
		if !ok {
			return nil, false // pool exhausted despite the aggregate check
		}
	}

	// Apply. Every step is guaranteed to succeed by the planning above;
	// a failure indicates ledger corruption and panics via must helpers.
	ja := &cluster.JobAllocation{Job: j.ID, PerNode: make([]cluster.NodeAllocation, 0, j.Nodes)}
	for i := range plans {
		pl := &plans[i]
		mustStart(cl, pl.node, j.ID)
		ja.PerNode = append(ja.PerNode, cluster.NodeAllocation{Node: pl.node})
		mustGrowLocal(cl, ja, i, pl.local)
		for _, lease := range pl.borrow {
			mustGrowRemote(cl, ja, i, lease.Lender, lease.MB)
		}
	}
	return ja, true
}

// planBorrowFast plans the deficit borrowing in most-free order from the
// cluster index. The ledger does not change during planning, so the
// reference implementation's per-node re-rank always returned the same
// list; one snapshot — truncated as soon as it can cover the whole deficit
// — serves every compute node of the job.
func (p *placer) planBorrowFast(cl *cluster.Cluster, perNodeMB, deficit int64) bool {
	lenders, lf := p.lenders[:0], p.lf[:0]
	var avail int64
	cl.AscendLenders(func(id cluster.NodeID, free int64) bool {
		if !containsNode(p.chosen, id) {
			lenders = append(lenders, id)
			lf = append(lf, free)
			avail += free
		}
		return avail < deficit
	})
	p.lenders, p.lf = lenders, lf
	if avail < deficit {
		return false
	}
	for i := range p.plans {
		pl := &p.plans[i]
		need := perNodeMB - pl.local
		for k := 0; need > 0 && k < len(lenders); k++ {
			take := minInt64(need, lf[k])
			if take <= 0 {
				continue
			}
			pl.borrow = append(pl.borrow, cluster.Lease{Lender: lenders[k], MB: take})
			lf[k] -= take
			need -= take
		}
		if need > 0 {
			return false
		}
	}
	return true
}

// planBorrowRanked plans the deficit borrowing with a custom lender order,
// re-ranking per compute node exactly as the reference did (the order may
// depend on the borrower, e.g. nearest-first on a torus).
func (p *placer) planBorrowRanked(cl *cluster.Cluster, perNodeMB int64) bool {
	if p.own == nil {
		p.own = make(map[cluster.NodeID]bool, len(p.chosen))
		p.lfMap = make(map[cluster.NodeID]int64)
	}
	for id := range p.own {
		delete(p.own, id)
	}
	for id := range p.lfMap {
		delete(p.lfMap, id)
	}
	for _, id := range p.chosen {
		p.own[id] = true
	}
	// Remaining lendable memory per node, shared across the job's compute
	// nodes as leases are planned.
	for _, n := range cl.Nodes() {
		if !p.own[n.ID] && n.FreeMB() > 0 {
			p.lfMap[n.ID] = n.FreeMB()
		}
	}
	for i := range p.plans {
		pl := &p.plans[i]
		need := perNodeMB - pl.local
		if need == 0 {
			continue
		}
		for _, l := range p.ranker(cl, pl.node, p.own) {
			take := minInt64(need, p.lfMap[l])
			if take <= 0 {
				continue
			}
			pl.borrow = append(pl.borrow, cluster.Lease{Lender: l, MB: take})
			p.lfMap[l] -= take
			need -= take
			if need == 0 {
				break
			}
		}
		if need > 0 {
			return false
		}
	}
	return true
}

// planBorrowDomains plans the deficit borrowing with within-domain
// preference: each compute node borrows from lenders in its own ledger
// shard (its pressure domain) first — keeping the borrowed traffic inside
// the domain whose pressure already prices it — and spills to the global
// most-free order only for the remainder. Remaining lendable memory is
// tracked per lender across the job's compute nodes; planning never
// mutates the ledger. With a single shard the home walk IS the global
// walk, so the plan degenerates to planBorrowFast's.
func (p *placer) planBorrowDomains(cl *cluster.Cluster, perNodeMB int64) bool {
	if p.own == nil {
		p.own = make(map[cluster.NodeID]bool, len(p.chosen))
		p.lfMap = make(map[cluster.NodeID]int64)
	}
	for id := range p.own {
		delete(p.own, id)
	}
	for id := range p.lfMap {
		delete(p.lfMap, id)
	}
	for _, id := range p.chosen {
		p.own[id] = true
	}
	for i := range p.plans {
		pl := &p.plans[i]
		need := perNodeMB - pl.local
		if need == 0 {
			continue
		}
		scan := func(id cluster.NodeID, free int64) bool {
			if p.own[id] {
				return true
			}
			left, seen := p.lfMap[id]
			if !seen {
				left = free // ledger unchanged during planning
			}
			take := minInt64(need, left)
			if take > 0 {
				pl.borrow = append(pl.borrow, cluster.Lease{Lender: id, MB: take})
				p.lfMap[id] = left - take
				need -= take
			}
			return need > 0
		}
		cl.AscendShardLenders(cl.ShardOf(pl.node), scan)
		if need > 0 {
			cl.AscendLenders(scan)
		}
		if need > 0 {
			return false
		}
	}
	return true
}

func containsNode(ids []cluster.NodeID, id cluster.NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func minInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func mustStart(cl *cluster.Cluster, id cluster.NodeID, jobID int) {
	if err := cl.StartJob(id, jobID); err != nil {
		panic(err)
	}
}

func mustGrowLocal(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, mb int64) {
	if err := ja.GrowLocal(cl, i, mb); err != nil {
		panic(err)
	}
}

func mustGrowRemote(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, lender cluster.NodeID, mb int64) {
	if err := ja.GrowRemote(cl, i, lender, mb); err != nil {
		panic(err)
	}
}
