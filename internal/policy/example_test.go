package policy_test

import (
	"fmt"

	"dismem/internal/cluster"
	"dismem/internal/job"
	"dismem/internal/policy"
)

// A 1500 MB request on 1000 MB nodes: the static policy fills the compute
// node's local memory and borrows the deficit from the most-free lender.
func ExamplePolicy_place() {
	cl := cluster.New(3, 32, 1000)
	pol := policy.New(policy.Static)
	alloc, ok := pol.Place(cl, &job.Job{ID: 1, Nodes: 1, RequestMB: 1500})
	fmt.Println("placed:", ok,
		"local:", alloc.PerNode[0].LocalMB,
		"remote:", alloc.PerNode[0].RemoteMB())
	// Output: placed: true local: 1000 remote: 500
}

// The Decider/Actuator resize: shrinking to the observed 800 MB usage
// returns the remote lease first (remote memory is the expensive kind),
// then trims local memory.
func ExampleAdjust() {
	cl := cluster.New(3, 32, 1000)
	pol := policy.New(policy.Dynamic)
	alloc, _ := pol.Place(cl, &job.Job{ID: 1, Nodes: 1, RequestMB: 1500})

	_ = policy.Adjust(cl, alloc, 0, 800)
	fmt.Println("local:", alloc.PerNode[0].LocalMB,
		"remote:", alloc.PerNode[0].RemoteMB(),
		"pool free:", cl.TotalFreeMB())
	// Output: local: 800 remote: 0 pool free: 2200
}
