package policy

import (
	"errors"

	"dismem/internal/cluster"
)

// ErrOutOfMemory is returned by Adjust when a job's usage grows and the
// system-wide pool cannot satisfy it. The caller applies the configured
// out-of-memory handling (Fail/Restart or Checkpoint/Restart).
var ErrOutOfMemory = errors.New("policy: out of disaggregated memory")

// Adjust is the Decider + Actuator of the dynamic policy for one compute
// node of a running job: it resizes the node's allocation to targetMB.
//
// Shrinking deallocates remote memory before local memory; growing
// allocates local memory first and borrows remotely only for the remainder,
// maximising the local-to-remote ratio as described in §2.2.
//
// On ErrOutOfMemory the allocation retains whatever it held plus any
// partial growth — the caller is expected to kill and resubmit the job,
// which releases everything.
func Adjust(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, targetMB int64) error {
	return AdjustRanked(cl, ja, i, targetMB, MostFreeRanker)
}

// AdjustRanked is Adjust with a custom lender order for growth (used by
// the topology-aware configuration).
func AdjustRanked(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, targetMB int64, ranker LenderRanker) error {
	if targetMB < 0 {
		return cluster.ErrNegativeAmount
	}
	if ranker == nil {
		ranker = MostFreeRanker
	}
	na := &ja.PerNode[i]
	cur := na.TotalMB()
	switch {
	case targetMB < cur:
		return shrinkTo(cl, ja, i, cur-targetMB)
	case targetMB > cur:
		return growBy(cl, ja, i, targetMB-cur, ranker)
	}
	return nil
}

func shrinkTo(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, excess int64) error {
	// Remote first: remote accesses are the expensive ones, so freeing
	// them both returns pool memory and speeds the job up.
	returned, err := ja.ShrinkRemote(cl, i, excess)
	if err != nil {
		return err
	}
	if rest := excess - returned; rest > 0 {
		return ja.ShrinkLocal(cl, i, rest)
	}
	return nil
}

func growBy(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, need int64, ranker LenderRanker) error {
	na := &ja.PerNode[i]
	// Local first.
	if free := cl.Node(na.Node).FreeMB(); free > 0 {
		take := minInt64(need, free)
		if err := ja.GrowLocal(cl, i, take); err != nil {
			return err
		}
		need -= take
	}
	if need == 0 {
		return nil
	}
	// Borrow the rest in ranker order, excluding the job's own compute
	// nodes (their free memory belongs to their local side).
	own := make(map[cluster.NodeID]bool, len(ja.PerNode))
	for j := range ja.PerNode {
		own[ja.PerNode[j].Node] = true
	}
	for _, lender := range ranker(cl, na.Node, own) {
		take := minInt64(need, cl.Node(lender).FreeMB())
		if take == 0 {
			continue
		}
		if err := ja.GrowRemote(cl, i, lender, take); err != nil {
			return err
		}
		need -= take
		if need == 0 {
			return nil
		}
	}
	return ErrOutOfMemory
}
