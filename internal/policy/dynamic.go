package policy

import (
	"errors"

	"dismem/internal/cluster"
	"dismem/internal/telemetry"
)

// ErrOutOfMemory is returned by Adjust when a job's usage grows and the
// system-wide pool cannot satisfy it. The caller applies the configured
// out-of-memory handling (Fail/Restart or Checkpoint/Restart).
var ErrOutOfMemory = errors.New("policy: out of disaggregated memory")

// Adjuster is the Decider + Actuator of the dynamic policy. It carries the
// scratch buffers the grow path needs, so one Adjuster per simulator makes
// every adjustment tick allocation-free. It is not safe for concurrent use.
type Adjuster struct {
	ranker LenderRanker // nil = most-free via the cluster index

	// Tel, when non-nil, receives a LeaseGrant event for every remote
	// borrow the grow path performs. The Actuator is the only place that
	// knows which lender satisfied which deficit, so the emission lives
	// here rather than in the simulator.
	Tel *telemetry.Recorder

	own   []cluster.NodeID // the adjusted job's compute nodes
	takes []cluster.Lease  // planned borrows for one grow
	exc   map[cluster.NodeID]bool
}

// NewAdjuster returns an Adjuster with the given lender order for growth;
// nil selects the default most-free order, served from the cluster's
// free-memory index without materialising a ranking.
func NewAdjuster(ranker LenderRanker) *Adjuster { return &Adjuster{ranker: ranker} }

// Adjust resizes compute node i of the job's allocation to targetMB.
//
// Shrinking deallocates remote memory before local memory; growing
// allocates local memory first and borrows remotely only for the remainder,
// maximising the local-to-remote ratio as described in §2.2.
//
// On ErrOutOfMemory the allocation retains whatever it held plus any
// partial growth — the caller is expected to kill and resubmit the job,
// which releases everything.
//
//dmp:hotpath
func (a *Adjuster) Adjust(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, targetMB int64) error {
	if targetMB < 0 {
		return cluster.ErrNegativeAmount
	}
	na := &ja.PerNode[i]
	cur := na.TotalMB()
	switch {
	case targetMB < cur:
		return shrinkTo(cl, ja, i, cur-targetMB)
	case targetMB > cur:
		return a.growBy(cl, ja, i, targetMB-cur)
	}
	return nil
}

// Adjust is the one-shot form of Adjuster.Adjust with the default lender
// order, kept for tests and callers outside the simulation loop.
func Adjust(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, targetMB int64) error {
	return NewAdjuster(nil).Adjust(cl, ja, i, targetMB)
}

// AdjustRanked is Adjust with a custom lender order for growth (used by
// the topology-aware configuration); nil means the default order.
func AdjustRanked(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, targetMB int64, ranker LenderRanker) error {
	return NewAdjuster(ranker).Adjust(cl, ja, i, targetMB)
}

// AdjustDomains is Adjust with growth confined to the given ledger shards
// (the job's frozen pressure-domain set, sorted ascending): the grow path
// borrows only from lenders in doms, preferring the compute node's own
// shard first, and reports ErrOutOfMemory when those domains are exhausted
// even if other domains still hold free memory. Strict confinement is what
// makes window members with disjoint domain sets commute — a member can
// neither read nor take memory outside its set. Shrinking releases existing
// leases, which by construction already lie inside doms.
//
//dmp:hotpath
func (a *Adjuster) AdjustDomains(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, targetMB int64, doms []int32) error {
	if targetMB < 0 {
		return cluster.ErrNegativeAmount
	}
	na := &ja.PerNode[i]
	cur := na.TotalMB()
	switch {
	case targetMB < cur:
		return shrinkTo(cl, ja, i, cur-targetMB)
	case targetMB > cur:
		return a.growByDomains(cl, ja, i, targetMB-cur, doms)
	}
	return nil
}

// growByDomains is growBy restricted to the doms shards: local memory
// first, then the borrower's home shard's lenders, then the remaining
// domains in ascending order. With a single domain covering the whole
// cluster it degenerates bit-exactly to growBy — the per-shard walk IS the
// global lender walk. The per-shard walks use no shared cluster scratch, so
// concurrent adjusters over disjoint domain sets are safe.
//
//dmp:hotpath
func (a *Adjuster) growByDomains(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, need int64, doms []int32) error {
	na := &ja.PerNode[i]
	// Local first.
	if free := cl.Node(na.Node).FreeMB(); free > 0 {
		take := minInt64(need, free)
		if err := ja.GrowLocal(cl, i, take); err != nil {
			return err
		}
		need -= take
	}
	if need == 0 {
		return nil
	}
	own := a.own[:0]
	for k := range ja.PerNode {
		own = append(own, ja.PerNode[k].Node)
	}
	a.own = own
	// Plan from the walks, then apply: the ledger must not change mid-walk.
	home := cl.ShardOf(na.Node)
	takes := a.takes[:0]
	rem := need
	scan := func(id cluster.NodeID, free int64) bool { //dmplint:ignore hotpath-alloc one closure per grow call so the same walk body serves the home shard and each remaining domain
		if containsNode(own, id) {
			return true
		}
		take := minInt64(rem, free)
		takes = append(takes, cluster.Lease{Lender: id, MB: take})
		rem -= take
		return rem > 0
	}
	cl.AscendShardLenders(home, scan)
	for _, d := range doms {
		if rem <= 0 {
			break
		}
		if int(d) == home {
			continue
		}
		cl.AscendShardLenders(int(d), scan)
	}
	a.takes = takes
	for _, t := range takes {
		if err := ja.GrowRemote(cl, i, t.Lender, t.MB); err != nil {
			return err
		}
		a.Tel.LeaseGrant(ja.Job, int(na.Node), int(t.Lender), t.MB)
	}
	if rem > 0 {
		// Partial growth is retained; the caller kills and resubmits, which
		// releases everything and re-places with a fresh domain set.
		return ErrOutOfMemory
	}
	return nil
}

//
//dmp:hotpath
func shrinkTo(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, excess int64) error {
	// Remote first: remote accesses are the expensive ones, so freeing
	// them both returns pool memory and speeds the job up.
	returned, err := ja.ShrinkRemote(cl, i, excess)
	if err != nil {
		return err
	}
	if rest := excess - returned; rest > 0 {
		return ja.ShrinkLocal(cl, i, rest)
	}
	return nil
}

//
//dmp:hotpath
func (a *Adjuster) growBy(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, need int64) error {
	na := &ja.PerNode[i]
	// Local first.
	if free := cl.Node(na.Node).FreeMB(); free > 0 {
		take := minInt64(need, free)
		if err := ja.GrowLocal(cl, i, take); err != nil {
			return err
		}
		need -= take
	}
	if need == 0 {
		return nil
	}
	// Borrow the rest in lender order, excluding the job's own compute
	// nodes (their free memory belongs to their local side).
	if a.ranker != nil {
		return a.growRanked(cl, ja, i, need)
	}
	own := a.own[:0]
	for k := range ja.PerNode {
		own = append(own, ja.PerNode[k].Node)
	}
	a.own = own
	// Plan from the index walk, then apply: the ledger must not change
	// mid-walk, and the walk stops as soon as the deficit is covered, so
	// the common first-lender-suffices case touches O(log N) nodes.
	takes := a.takes[:0]
	rem := need
	cl.AscendLenders(func(id cluster.NodeID, free int64) bool {
		if containsNode(own, id) {
			return true
		}
		take := minInt64(rem, free)
		takes = append(takes, cluster.Lease{Lender: id, MB: take})
		rem -= take
		return rem > 0
	})
	a.takes = takes
	for _, t := range takes {
		if err := ja.GrowRemote(cl, i, t.Lender, t.MB); err != nil {
			return err
		}
		a.Tel.LeaseGrant(ja.Job, int(na.Node), int(t.Lender), t.MB)
	}
	if rem > 0 {
		// Partial growth is retained, exactly as the pre-index grow loop
		// left it when the pool ran dry mid-iteration.
		return ErrOutOfMemory
	}
	return nil
}

// growRanked is the custom-ranker grow path, identical to the pre-index
// implementation apart from the reused exclusion map.
//
//dmp:hotpath
func (a *Adjuster) growRanked(cl *cluster.Cluster, ja *cluster.JobAllocation, i int, need int64) error {
	na := &ja.PerNode[i]
	if a.exc == nil {
		a.exc = make(map[cluster.NodeID]bool, len(ja.PerNode))
	}
	for id := range a.exc {
		delete(a.exc, id)
	}
	for k := range ja.PerNode {
		a.exc[ja.PerNode[k].Node] = true
	}
	for _, lender := range a.ranker(cl, na.Node, a.exc) { //dmplint:ignore hotpath-reach ranker is the policy's pluggable lender-ordering strategy; both in-tree rankers reuse the arena's scratch slice
		take := minInt64(need, cl.Node(lender).FreeMB())
		if take == 0 {
			continue
		}
		if err := ja.GrowRemote(cl, i, lender, take); err != nil {
			return err
		}
		a.Tel.LeaseGrant(ja.Job, int(na.Node), int(lender), take)
		need -= take
		if need == 0 {
			return nil
		}
	}
	return ErrOutOfMemory
}
