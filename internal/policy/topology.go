package policy

import (
	"sort"

	"dismem/internal/cluster"
	"dismem/internal/topology"
)

// NearestFirstRanker returns a lender order that minimises remote-access
// distance on the given torus: candidates are sorted by hop count from the
// borrowing compute node, with ties broken by free memory descending and
// then node ID. Cluster node IDs map directly onto torus endpoints.
func NearestFirstRanker(t topology.Torus) LenderRanker {
	return func(cl *cluster.Cluster, borrower cluster.NodeID, exclude map[cluster.NodeID]bool) []cluster.NodeID {
		var ids []cluster.NodeID
		for _, n := range cl.Nodes() {
			if exclude[n.ID] || n.FreeMB() <= 0 {
				continue
			}
			ids = append(ids, n.ID)
		}
		sort.Slice(ids, func(a, b int) bool {
			ha := t.Hops(int(borrower), int(ids[a]))
			hb := t.Hops(int(borrower), int(ids[b]))
			if ha != hb {
				return ha < hb
			}
			fa, fb := cl.Node(ids[a]).FreeMB(), cl.Node(ids[b]).FreeMB()
			if fa != fb {
				return fa > fb
			}
			return ids[a] < ids[b]
		})
		return ids
	}
}
