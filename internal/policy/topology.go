package policy

import (
	"sort"

	"dismem/internal/cluster"
	"dismem/internal/topology"
)

// NearestFirstRanker returns a lender order that minimises remote-access
// distance on the given torus: candidates are sorted by hop count from the
// borrowing compute node, with ties broken by free memory descending and
// then node ID. Cluster node IDs map directly onto torus endpoints.
//
// The candidate set is streamed from the cluster's free-memory index and
// collected into a buffer owned by the returned closure, so ranking
// allocates nothing after the buffer has grown once; the hop sort itself is
// unavoidable because the order depends on the borrower. The returned
// ranker is therefore not safe for concurrent use, and its result is valid
// only until the next call.
func NearestFirstRanker(t topology.Torus) LenderRanker {
	var buf []cluster.NodeID
	return func(cl *cluster.Cluster, borrower cluster.NodeID, exclude map[cluster.NodeID]bool) []cluster.NodeID {
		ids := buf[:0]
		cl.AscendLenders(func(id cluster.NodeID, _ int64) bool {
			if !exclude[id] {
				ids = append(ids, id)
			}
			return true
		})
		buf = ids
		sort.Slice(ids, func(a, b int) bool {
			ha := t.Hops(int(borrower), int(ids[a]))
			hb := t.Hops(int(borrower), int(ids[b]))
			if ha != hb {
				return ha < hb
			}
			fa, fb := cl.Node(ids[a]).FreeMB(), cl.Node(ids[b]).FreeMB()
			if fa != fb {
				return fa > fb
			}
			return ids[a] < ids[b]
		})
		return ids
	}
}
