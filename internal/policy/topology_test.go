package policy

import (
	"testing"

	"dismem/internal/cluster"
	"dismem/internal/topology"
)

func TestNearestFirstRankerOrdering(t *testing.T) {
	ring, err := topology.New(8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(8, 32, 1000)
	ranker := NearestFirstRanker(ring)
	got := ranker(cl, 0, map[cluster.NodeID]bool{0: true})
	// Ring distances from 0: 1→1, 7→1, 2→2, 6→2, 3→3, 5→3, 4→4.
	want := []cluster.NodeID{1, 7, 2, 6, 3, 5, 4}
	if len(got) != len(want) {
		t.Fatalf("ranked = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranked = %v, want %v", got, want)
		}
	}
}

func TestNearestFirstRankerTieBreaksByFree(t *testing.T) {
	ring, err := topology.New(8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(8, 32, 1000)
	// Nodes 1 and 7 are both 1 hop from node 0; make 7 freer.
	if err := cl.Lend(1, 400); err != nil {
		t.Fatal(err)
	}
	got := NearestFirstRanker(ring)(cl, 0, map[cluster.NodeID]bool{0: true})
	if got[0] != 7 || got[1] != 1 {
		t.Fatalf("ranked = %v, want node 7 (freer) before node 1", got)
	}
}

func TestNearestFirstRankerSkipsFullNodes(t *testing.T) {
	ring, err := topology.New(4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(4, 32, 1000)
	if err := cl.Lend(1, 1000); err != nil { // neighbour has nothing left
		t.Fatal(err)
	}
	got := NearestFirstRanker(ring)(cl, 0, map[cluster.NodeID]bool{0: true})
	for _, id := range got {
		if id == 1 {
			t.Fatalf("full node 1 offered as lender: %v", got)
		}
	}
}

func TestPlaceWithNearestRankerBorrowsLocally(t *testing.T) {
	ring, err := topology.New(6, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pol := NewWithRanker(Static, NearestFirstRanker(ring))
	cl := cluster.New(6, 32, 1000)
	ja, ok := pol.Place(cl, testJob(1, 1, 2500))
	if !ok {
		t.Fatal("placement failed")
	}
	borrower := int(ja.PerNode[0].Node)
	for _, l := range ja.PerNode[0].Leases {
		if h := ring.Hops(borrower, int(l.Lender)); h > 1 {
			t.Fatalf("lease at %d hops despite nearest-first ranking", h)
		}
	}
}

func TestNewWithRankerNilFallsBack(t *testing.T) {
	pol := NewWithRanker(Static, nil)
	cl := cluster.New(3, 32, 1000)
	if _, ok := pol.Place(cl, testJob(1, 1, 1500)); !ok {
		t.Fatal("nil-ranker policy cannot place")
	}
}
