package job

import (
	"errors"
	"testing"
	"testing/quick"

	"dismem/internal/memtrace"
	"dismem/internal/slowdown"
)

func validJob() *Job {
	return &Job{
		ID:          1,
		SubmitTime:  0,
		Nodes:       4,
		RequestMB:   2048,
		LimitSec:    7200,
		BaseRuntime: 3600,
		Usage:       memtrace.Constant(1024),
		Profile:     &slowdown.Profile{Name: "p", Nodes: 1, RuntimeSec: 1, BandwidthGBs: 1},
	}
}

func TestValidateAcceptsGoodJob(t *testing.T) {
	if err := validJob().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Job)
	}{
		{"zero nodes", func(j *Job) { j.Nodes = 0 }},
		{"negative request", func(j *Job) { j.RequestMB = -1 }},
		{"negative submit", func(j *Job) { j.SubmitTime = -5 }},
		{"zero runtime", func(j *Job) { j.BaseRuntime = 0 }},
		{"limit below runtime", func(j *Job) { j.LimitSec = j.BaseRuntime / 2 }},
		{"nil usage", func(j *Job) { j.Usage = nil }},
		{"nil profile", func(j *Job) { j.Profile = nil }},
	}
	for _, tc := range cases {
		j := validJob()
		tc.mutate(j)
		if err := j.Validate(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", tc.name, err)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	j := validJob()
	if got := j.TotalRequestMB(); got != 4*2048 {
		t.Fatalf("total request = %d, want %d", got, 4*2048)
	}
	if got := j.PeakUsageMB(); got != 1024 {
		t.Fatalf("peak = %d, want 1024", got)
	}
	if got := j.NodeHours(); got != 4 {
		t.Fatalf("node-hours = %g, want 4 (4 nodes × 1 h)", got)
	}
}

func TestClassFor(t *testing.T) {
	j := validJob()
	j.RequestMB = 64 * 1024
	if got := j.ClassFor(64 * 1024); got != Normal {
		t.Fatalf("request == capacity: class %v, want Normal", got)
	}
	j.RequestMB = 64*1024 + 1
	if got := j.ClassFor(64 * 1024); got != Large {
		t.Fatalf("request > capacity: class %v, want Large", got)
	}
	if Normal.String() != "normal" || Large.String() != "large" {
		t.Fatal("class names wrong")
	}
}

// Property: TotalRequestMB is exactly Nodes × RequestMB for any inputs.
func TestQuickTotalRequest(t *testing.T) {
	f := func(nodes uint8, req uint16) bool {
		j := validJob()
		j.Nodes = int(nodes)%64 + 1
		j.RequestMB = int64(req)
		return j.TotalRequestMB() == int64(j.Nodes)*j.RequestMB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
