// Package job defines the static description of a job as it enters the
// simulator: the submission-script fields a scheduler sees (submit time,
// node count, memory request, wallclock limit) plus the behind-the-scenes
// ground truth the simulator needs (true runtime, memory-usage trace,
// matched application profile).
package job

import (
	"errors"
	"fmt"

	"dismem/internal/memtrace"
	"dismem/internal/slowdown"
)

// Class partitions jobs by their memory demand relative to a normal node,
// as in the paper: a job is Large if it needs a large-capacity node under
// the baseline policy, Normal if a normal node suffices.
type Class int

const (
	Normal Class = iota
	Large
)

func (c Class) String() string {
	if c == Large {
		return "large"
	}
	return "normal"
}

// Job is one trace entry. Fields above the comment are visible to the
// resource manager; fields below are simulation ground truth only.
type Job struct {
	ID         int
	SubmitTime float64 // seconds from simulation start
	Nodes      int     // number of (exclusive) compute nodes
	RequestMB  int64   // requested memory per node, from the submission script
	LimitSec   float64 // requested wallclock limit
	// DependsOn names a job that must complete before this one becomes
	// schedulable (SWF's "Preceding Job Number"; 0 = no dependency).
	DependsOn int

	BaseRuntime float64           // true runtime at slowdown 1
	Usage       *memtrace.Trace   // per-node memory usage over base-runtime time
	Profile     *slowdown.Profile // matched application profile (simulation only)
}

// Validation errors.
var ErrInvalid = errors.New("job: invalid")

// Validate checks the job is well-formed for simulation.
func (j *Job) Validate() error {
	switch {
	case j.Nodes <= 0:
		return fmt.Errorf("%w: job %d has %d nodes", ErrInvalid, j.ID, j.Nodes)
	case j.RequestMB < 0:
		return fmt.Errorf("%w: job %d has negative request", ErrInvalid, j.ID)
	case j.SubmitTime < 0:
		return fmt.Errorf("%w: job %d has negative submit time", ErrInvalid, j.ID)
	case j.BaseRuntime <= 0:
		return fmt.Errorf("%w: job %d has non-positive runtime", ErrInvalid, j.ID)
	case j.LimitSec < j.BaseRuntime:
		return fmt.Errorf("%w: job %d limit %g below runtime %g", ErrInvalid, j.ID, j.LimitSec, j.BaseRuntime)
	case j.Usage == nil:
		return fmt.Errorf("%w: job %d has no usage trace", ErrInvalid, j.ID)
	case j.Profile == nil:
		return fmt.Errorf("%w: job %d has no profile", ErrInvalid, j.ID)
	case j.DependsOn == j.ID && j.ID != 0:
		return fmt.Errorf("%w: job %d depends on itself", ErrInvalid, j.ID)
	case j.DependsOn < 0:
		return fmt.Errorf("%w: job %d has negative dependency", ErrInvalid, j.ID)
	}
	return nil
}

// TotalRequestMB returns the job's total memory request across its nodes.
func (j *Job) TotalRequestMB() int64 { return int64(j.Nodes) * j.RequestMB }

// PeakUsageMB returns the true per-node peak from the usage trace.
func (j *Job) PeakUsageMB() int64 { return j.Usage.Peak() }

// ClassFor returns the job's class given the capacity of a normal node:
// Large when its per-node request exceeds a normal node's capacity.
func (j *Job) ClassFor(normalMB int64) Class {
	if j.RequestMB > normalMB {
		return Large
	}
	return Normal
}

// NodeHours returns the job's size·runtime product in node-hours, the
// utilisation currency used throughout the paper's methodology.
func (j *Job) NodeHours() float64 {
	return float64(j.Nodes) * j.BaseRuntime / 3600
}
