package swf

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"dismem/internal/job"
	"dismem/internal/memtrace"
)

const sample = `; Version: 2.2
; Computer: test cluster
1 0 -1 3600 64 -1 2048 64 7200 4096 1 10 2 -1 1 -1 -1 -1
2 120 -1 60 32 -1 -1 32 600 1024 0 11 2 -1 1 -1 -1 -1
`

func TestParseSample(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Header) != 2 {
		t.Fatalf("header lines = %d, want 2", len(f.Header))
	}
	if f.Header[0] != "Version: 2.2" {
		t.Fatalf("header[0] = %q", f.Header[0])
	}
	if len(f.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(f.Records))
	}
	r := f.Records[0]
	if r.JobID != 1 || r.RunTime != 3600 || r.AllocProcs != 64 ||
		r.ReqMemKB != 4096 || r.Status != StatusCompleted {
		t.Fatalf("record 0 mis-parsed: %+v", r)
	}
	if f.Records[1].UsedMemKB != -1 {
		t.Fatalf("missing value must parse as -1, got %d", f.Records[1].UsedMemKB)
	}
}

func TestParseRejectsBadLines(t *testing.T) {
	if _, err := Parse(strings.NewReader("1 2 3\n")); !errors.Is(err, ErrFormat) {
		t.Fatalf("short line: err = %v, want ErrFormat", err)
	}
	if _, err := Parse(strings.NewReader(strings.Repeat("x ", 18) + "\n")); !errors.Is(err, ErrFormat) {
		t.Fatalf("non-numeric: err = %v, want ErrFormat", err)
	}
}

func TestParseSkipsBlankLines(t *testing.T) {
	f, err := Parse(strings.NewReader("\n\n; hi\n\n" + strings.TrimPrefix(sample, "; Version: 2.2\n; Computer: test cluster\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != 2 {
		t.Fatalf("records = %d, want 2", len(f.Records))
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, f); err != nil {
		t.Fatal(err)
	}
	f2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, f2) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", f, f2)
	}
}

func TestFromJobs(t *testing.T) {
	j := &job.Job{
		ID: 7, SubmitTime: 100, Nodes: 2, RequestMB: 2048,
		LimitSec: 7200, BaseRuntime: 3600,
		Usage: memtrace.Constant(1024),
	}
	f := FromJobs([]*job.Job{j}, 32, "generated")
	if len(f.Records) != 1 {
		t.Fatalf("records = %d", len(f.Records))
	}
	r := f.Records[0]
	if r.ReqProcs != 64 {
		t.Fatalf("procs = %d, want 64", r.ReqProcs)
	}
	// 2048 MB/node over 32 cores = 64 MB/core = 65536 KB/core.
	if r.ReqMemKB != 65536 {
		t.Fatalf("req mem = %d KB/proc, want 65536", r.ReqMemKB)
	}
	if r.UsedMemKB != 32768 {
		t.Fatalf("used mem = %d KB/proc, want 32768", r.UsedMemKB)
	}
}

func TestToJobs(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := ToJobs(f, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	j := jobs[0]
	if j.Nodes != 2 {
		t.Fatalf("nodes = %d, want 2 (64 procs / 32 cores)", j.Nodes)
	}
	// 4096 KB/proc × 32 procs/node = 128 MB/node.
	if j.RequestMB != 128 {
		t.Fatalf("request = %d MB/node, want 128", j.RequestMB)
	}
	if j.LimitSec != 7200 || j.BaseRuntime != 3600 {
		t.Fatalf("times mis-converted: %+v", j)
	}
	if _, err := ToJobs(f, 0); err == nil {
		t.Fatal("cores=0 accepted")
	}
}

func TestToJobsPartialNodeRoundsUp(t *testing.T) {
	f := &File{Records: []Record{{JobID: 1, ReqProcs: 33, RunTime: 10, ReqTime: 20, ReqMemKB: 1024}}}
	jobs, err := ToJobs(f, 32)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].Nodes != 2 {
		t.Fatalf("nodes = %d, want 2 (33 procs round up)", jobs[0].Nodes)
	}
}

func TestToJobsLimitNeverBelowRuntime(t *testing.T) {
	f := &File{Records: []Record{{JobID: 1, ReqProcs: 32, RunTime: 100, ReqTime: 50}}}
	jobs, err := ToJobs(f, 32)
	if err != nil {
		t.Fatal(err)
	}
	if jobs[0].LimitSec != 100 {
		t.Fatalf("limit = %g, want clamped to runtime 100", jobs[0].LimitSec)
	}
}

// Property: Write∘Parse is the identity on arbitrary integral records.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := &File{Header: []string{"quick"}}
		n := 1 + rng.Intn(20)
		for i := 0; i < n; i++ {
			in.Records = append(in.Records, Record{
				JobID:          i + 1,
				SubmitTime:     float64(rng.Intn(1 << 20)),
				WaitTime:       -1,
				RunTime:        float64(rng.Intn(1 << 18)),
				AllocProcs:     rng.Intn(4096),
				AvgCPUTime:     -1,
				UsedMemKB:      rng.Int63n(1 << 30),
				ReqProcs:       rng.Intn(4096),
				ReqTime:        float64(rng.Intn(1 << 18)),
				ReqMemKB:       rng.Int63n(1 << 30),
				Status:         []int{-1, 0, 1, 5}[rng.Intn(4)],
				UserID:         rng.Intn(100),
				GroupID:        rng.Intn(10),
				ExecutableID:   -1,
				QueueID:        rng.Intn(4),
				PartitionID:    -1,
				PrecedingJobID: -1,
				ThinkTime:      -1,
			})
		}
		var buf bytes.Buffer
		if Write(&buf, in) != nil {
			return false
		}
		out, err := Parse(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDependencyRoundTrip(t *testing.T) {
	j := &job.Job{
		ID: 2, SubmitTime: 10, Nodes: 1, RequestMB: 100,
		LimitSec: 200, BaseRuntime: 100, DependsOn: 1,
		Usage: memtrace.Constant(50),
	}
	f := FromJobs([]*job.Job{j}, 32)
	if f.Records[0].PrecedingJobID != 1 {
		t.Fatalf("preceding = %d, want 1", f.Records[0].PrecedingJobID)
	}
	back, err := ToJobs(f, 32)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].DependsOn != 1 {
		t.Fatalf("depends = %d, want 1", back[0].DependsOn)
	}
	// No dependency encodes as the SWF missing value.
	j.DependsOn = 0
	f = FromJobs([]*job.Job{j}, 32)
	if f.Records[0].PrecedingJobID != -1 {
		t.Fatalf("preceding = %d, want -1", f.Records[0].PrecedingJobID)
	}
}
