// Package swf reads and writes the Standard Workload Format (SWF), the
// job-trace interchange format of the Parallel Workloads Archive and the
// input format of the Slurm simulator.
//
// An SWF file holds one job per line with 18 whitespace-separated numeric
// fields; header lines start with ';'. Unknown or inapplicable values are
// -1. See Chapin et al., "Benchmarks and standards for the evaluation of
// parallel job schedulers" (JSSPP'99).
package swf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Record is one SWF job entry. Field names follow the standard; units are
// seconds, processor counts, and KB per processor.
type Record struct {
	JobID          int
	SubmitTime     float64
	WaitTime       float64
	RunTime        float64
	AllocProcs     int
	AvgCPUTime     float64
	UsedMemKB      int64 // per processor
	ReqProcs       int
	ReqTime        float64
	ReqMemKB       int64 // per processor
	Status         int   // 1 completed, 0 failed, 5 cancelled, -1 unknown
	UserID         int
	GroupID        int
	ExecutableID   int
	QueueID        int
	PartitionID    int
	PrecedingJobID int
	ThinkTime      float64
}

// Status codes defined by the standard.
const (
	StatusFailed    = 0
	StatusCompleted = 1
	StatusCancelled = 5
	StatusUnknown   = -1
)

// ErrFormat reports a malformed SWF line.
var ErrFormat = errors.New("swf: malformed record")

// File is a parsed SWF file: header comments (without the leading ';') and
// records.
type File struct {
	Header  []string
	Records []Record
}

// Parse reads an entire SWF stream.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, ";"):
			f.Header = append(f.Header, strings.TrimSpace(strings.TrimPrefix(line, ";")))
		default:
			rec, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			f.Records = append(f.Records, rec)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return f, nil
}

func parseLine(line string) (Record, error) {
	fields := strings.Fields(line)
	if len(fields) != 18 {
		return Record{}, fmt.Errorf("%w: %d fields, want 18", ErrFormat, len(fields))
	}
	fv := make([]float64, 18)
	for i, s := range fields {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Record{}, fmt.Errorf("%w: field %d %q", ErrFormat, i+1, s)
		}
		fv[i] = v
	}
	return Record{
		JobID:          int(fv[0]),
		SubmitTime:     fv[1],
		WaitTime:       fv[2],
		RunTime:        fv[3],
		AllocProcs:     int(fv[4]),
		AvgCPUTime:     fv[5],
		UsedMemKB:      int64(fv[6]),
		ReqProcs:       int(fv[7]),
		ReqTime:        fv[8],
		ReqMemKB:       int64(fv[9]),
		Status:         int(fv[10]),
		UserID:         int(fv[11]),
		GroupID:        int(fv[12]),
		ExecutableID:   int(fv[13]),
		QueueID:        int(fv[14]),
		PartitionID:    int(fv[15]),
		PrecedingJobID: int(fv[16]),
		ThinkTime:      fv[17],
	}, nil
}

// Write emits the file in standard form: header comments then one record
// per line.
func Write(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	for _, h := range f.Header {
		if _, err := fmt.Fprintf(bw, "; %s\n", h); err != nil {
			return err
		}
	}
	for i := range f.Records {
		if err := writeRecord(bw, &f.Records[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeRecord(w io.Writer, r *Record) error {
	_, err := fmt.Fprintf(w, "%d %s %s %s %d %s %d %d %s %d %d %d %d %d %d %d %d %s\n",
		r.JobID, num(r.SubmitTime), num(r.WaitTime), num(r.RunTime),
		r.AllocProcs, num(r.AvgCPUTime), r.UsedMemKB, r.ReqProcs,
		num(r.ReqTime), r.ReqMemKB, r.Status, r.UserID, r.GroupID,
		r.ExecutableID, r.QueueID, r.PartitionID, r.PrecedingJobID,
		num(r.ThinkTime))
	return err
}

// num renders a float compactly: integers without a fraction.
func num(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}
