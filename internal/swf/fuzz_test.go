package swf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse checks the SWF parser never panics and that anything it
// accepts survives a write/parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(sample)
	f.Add("; header only\n")
	f.Add("")
	f.Add("1 0 -1 10 1 -1 -1 1 20 -1 1 -1 -1 -1 -1 -1 -1 -1\n")
	f.Add("garbage line\n")
	f.Add(strings.Repeat("9 ", 18) + "\n")
	f.Fuzz(func(t *testing.T, input string) {
		parsed, err := Parse(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, parsed); err != nil {
			t.Fatalf("accepted input failed to write: %v", err)
		}
		again, err := Parse(&buf)
		if err != nil {
			t.Fatalf("own output failed to parse: %v", err)
		}
		if len(again.Records) != len(parsed.Records) {
			t.Fatalf("round trip changed record count: %d -> %d",
				len(parsed.Records), len(again.Records))
		}
	})
}
