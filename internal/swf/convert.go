package swf

import (
	"fmt"

	"dismem/internal/job"
)

// FromJobs converts simulator jobs to SWF records. Processors = nodes ×
// coresPerNode; memory fields are KB per processor, so the per-node request
// is divided across the node's cores as the standard requires.
func FromJobs(jobs []*job.Job, coresPerNode int, header ...string) *File {
	f := &File{Header: header}
	for _, j := range jobs {
		procs := j.Nodes * coresPerNode
		perProcKB := j.RequestMB * 1024 / int64(coresPerNode)
		usedKB := j.PeakUsageMB() * 1024 / int64(coresPerNode)
		preceding := -1
		if j.DependsOn != 0 {
			preceding = j.DependsOn
		}
		f.Records = append(f.Records, Record{
			JobID:          j.ID,
			SubmitTime:     j.SubmitTime,
			WaitTime:       -1,
			RunTime:        j.BaseRuntime,
			AllocProcs:     procs,
			AvgCPUTime:     -1,
			UsedMemKB:      usedKB,
			ReqProcs:       procs,
			ReqTime:        j.LimitSec,
			ReqMemKB:       perProcKB,
			Status:         StatusUnknown,
			UserID:         -1,
			GroupID:        -1,
			ExecutableID:   -1,
			QueueID:        -1,
			PartitionID:    -1,
			PrecedingJobID: preceding,
			ThinkTime:      -1,
		})
	}
	return f
}

// ToJobs converts SWF records back into partially filled simulator jobs.
// Usage traces and profiles are not representable in SWF, so the caller
// must attach them afterwards (the trace pipeline does this); Validate will
// fail until then.
func ToJobs(f *File, coresPerNode int) ([]*job.Job, error) {
	if coresPerNode <= 0 {
		return nil, fmt.Errorf("swf: non-positive cores per node %d", coresPerNode)
	}
	jobs := make([]*job.Job, 0, len(f.Records))
	for i := range f.Records {
		r := &f.Records[i]
		nodes := r.ReqProcs / coresPerNode
		if r.ReqProcs%coresPerNode != 0 || nodes == 0 {
			nodes++ // partial node still occupies a whole one (exclusive)
		}
		limit := r.ReqTime
		if limit < r.RunTime {
			limit = r.RunTime
		}
		dependsOn := 0
		if r.PrecedingJobID > 0 {
			dependsOn = r.PrecedingJobID
		}
		jobs = append(jobs, &job.Job{
			ID:          r.JobID,
			SubmitTime:  r.SubmitTime,
			Nodes:       nodes,
			RequestMB:   r.ReqMemKB * int64(coresPerNode) / 1024,
			LimitSec:    limit,
			BaseRuntime: r.RunTime,
			DependsOn:   dependsOn,
		})
	}
	return jobs, nil
}
