// Package sched contains the scheduler-side mechanics that are independent
// of the memory model: the pending-job queue (FIFO with requeue-to-front
// priority for restarted jobs) and the EASY-backfill reservation arithmetic
// over abstract resource vectors.
//
// The simulator (internal/core) translates cluster + policy state into the
// Resources/Demand vectors used here, mirroring how Slurm's backfill plugin
// reasons about aggregate availability rather than concrete placements.
package sched

import "sort"

// Entry is one pending job in the queue.
type Entry struct {
	JobID    int
	Enqueue  float64 // time the job (re)entered the queue
	Priority int     // higher runs first; restarts can bump priority
	seq      int     // insertion order for stable FIFO
}

// Queue is the pending-job queue: ordered by (Priority desc, Enqueue asc,
// insertion order). It matches Slurm's default FIFO with priority override.
type Queue struct {
	items []Entry
	seq   int
	peak  int
}

// Len returns the number of pending entries.
func (q *Queue) Len() int { return len(q.items) }

// PeakLen returns the deepest the queue has ever been — an O(1)
// high-watermark that is available even when telemetry sampling is off.
func (q *Queue) PeakLen() int { return q.peak }

// Push adds a job to the queue.
func (q *Queue) Push(e Entry) {
	e.seq = q.seq
	q.seq++
	q.items = append(q.items, e)
	if len(q.items) > q.peak {
		q.peak = len(q.items)
	}
	q.sort()
}

func (q *Queue) sort() {
	sort.SliceStable(q.items, func(i, j int) bool {
		a, b := q.items[i], q.items[j]
		if a.Priority != b.Priority {
			return a.Priority > b.Priority
		}
		if a.Enqueue != b.Enqueue {
			return a.Enqueue < b.Enqueue
		}
		return a.seq < b.seq
	})
}

// Head returns the first entry without removing it; ok is false when empty.
func (q *Queue) Head() (Entry, bool) {
	if len(q.items) == 0 {
		return Entry{}, false
	}
	return q.items[0], true
}

// Items returns the queue contents in scheduling order, up to limit entries
// (limit <= 0 means all). The paper's configuration caps the examined queue
// and backfill window at 100 jobs.
func (q *Queue) Items(limit int) []Entry {
	n := len(q.items)
	if limit > 0 && limit < n {
		n = limit
	}
	out := make([]Entry, n)
	copy(out, q.items[:n])
	return out
}

// Remove deletes the entry for jobID, reporting whether it was present.
func (q *Queue) Remove(jobID int) bool {
	for i := range q.items {
		if q.items[i].JobID == jobID {
			q.items = append(q.items[:i], q.items[i+1:]...)
			return true
		}
	}
	return false
}

// Contains reports whether jobID is pending.
func (q *Queue) Contains(jobID int) bool {
	for i := range q.items {
		if q.items[i].JobID == jobID {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the queue for simulation forking: same
// entries (including their stable-FIFO insertion order), same seq counter,
// same peak watermark — a forked simulator's queue evolves exactly like the
// original's would.
func (q *Queue) Clone() Queue {
	return Queue{items: append([]Entry(nil), q.items...), seq: q.seq, peak: q.peak}
}
