package sched

import (
	"math"
	"slices"
	"sort"
)

// Profile is a step function of available resources over future time, used
// by conservative backfill: every queued job gets a reservation carved out
// of the profile, so no backfilled job can delay any earlier job.
//
// The profile starts from the current availability, gains resources at
// running jobs' conservative completion times, and loses them over the
// windows reserved for queued jobs.
type Profile struct {
	times []float64   // breakpoints, ascending; times[0] is "now"
	avail []Resources // availability in [times[i], times[i+1])
	rel   []Release   // sort scratch, reused across Reset calls
}

// NewProfile builds a profile from current availability and future
// releases (running jobs' conservative ends).
func NewProfile(now float64, current Resources, releases []Release) *Profile {
	p := &Profile{}
	p.Reset(now, current, releases)
	return p
}

// Reset rebuilds the profile in place from current availability and future
// releases, reusing the breakpoint and sort buffers from previous builds.
// Conservative backfill constructs a profile every scheduling pass; pooling
// one Profile makes that pass allocation-free at steady state. Results are
// identical to NewProfile: the arithmetic is all integer Resources math, so
// buffer reuse cannot perturb anything.
//
//dmp:hotpath
func (p *Profile) Reset(now float64, current Resources, releases []Release) {
	p.times = append(p.times[:0], now)
	p.avail = append(p.avail[:0], current)
	rel := append(p.rel[:0], releases...)
	// slices.SortFunc rather than sort.Slice: no interface boxing, so the
	// rebuild stays allocation-free. Both sorts are unstable; ties in At are
	// combined with commutative integer adds, so tie order is immaterial.
	slices.SortFunc(rel, func(a, b Release) int {
		switch {
		case a.At < b.At:
			return -1
		case a.At > b.At:
			return 1
		}
		return 0
	})
	p.rel = rel
	for _, r := range rel {
		at := r.At
		if at < now {
			at = now // overdue release: counts as available now
		}
		p.splitAt(at)
		i := p.indexFor(at)
		for k := i; k < len(p.avail); k++ {
			p.avail[k] = p.avail[k].Add(r.Res)
		}
	}
}

// indexFor returns the segment index covering time t (t >= times[0]).
//
//dmp:hotpath
func (p *Profile) indexFor(t float64) int {
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return i
	}
	return i - 1
}

// splitAt inserts a breakpoint at t if none exists.
//
//dmp:hotpath
func (p *Profile) splitAt(t float64) {
	i := sort.SearchFloat64s(p.times, t)
	if i < len(p.times) && p.times[i] == t {
		return
	}
	if i == 0 {
		// t before the profile start: clamp (callers pass t >= now).
		return
	}
	p.times = append(p.times, 0)
	copy(p.times[i+1:], p.times[i:])
	p.times[i] = t
	p.avail = append(p.avail, Resources{})
	copy(p.avail[i+1:], p.avail[i:])
	p.avail[i] = p.avail[i-1]
}

// fitsOver reports whether demand d fits continuously over [start,
// start+duration) given the profile.
//
//dmp:hotpath
func (p *Profile) fitsOver(d Demand, start, duration float64) bool {
	end := start + duration
	for i := range p.times {
		segStart := p.times[i]
		segEnd := math.Inf(1)
		if i+1 < len(p.times) {
			segEnd = p.times[i+1]
		}
		if segEnd <= start || segStart >= end {
			continue
		}
		if !d.Fits(p.avail[i]) {
			return false
		}
	}
	return true
}

// EarliestFit returns the earliest time ≥ after at which demand d fits for
// the whole duration. It returns +Inf when the demand never fits (even on
// the final, steady-state segment).
//
//dmp:hotpath
func (p *Profile) EarliestFit(d Demand, after, duration float64) float64 {
	if after < p.times[0] {
		after = p.times[0]
	}
	// Candidate start times: `after` and every later breakpoint.
	if p.fitsOver(d, after, duration) {
		return after
	}
	for i := range p.times {
		t := p.times[i]
		if t <= after {
			continue
		}
		if p.fitsOver(d, t, duration) {
			return t
		}
	}
	return math.Inf(1)
}

// Reserve subtracts demand d from the profile over [start, start+duration).
// Reservations may drive a segment negative only if the caller reserves
// without checking EarliestFit first; conservative backfill never does.
//
//dmp:hotpath
func (p *Profile) Reserve(d Demand, start, duration float64) {
	end := start + duration
	if start < p.times[0] {
		start = p.times[0]
	}
	p.splitAt(start)
	if !math.IsInf(end, 1) {
		p.splitAt(end)
	}
	for i := range p.times {
		segStart := p.times[i]
		segEnd := math.Inf(1)
		if i+1 < len(p.times) {
			segEnd = p.times[i+1]
		}
		if segEnd <= start || segStart >= end {
			continue
		}
		p.avail[i] = subtract(p.avail[i], d)
	}
}

// subtract removes a demand's footprint from an availability vector. The
// node share is taken from large nodes first when the demand requires
// them, otherwise from normal nodes with large nodes as overflow —
// mirroring how placement consumes the cheapest adequate nodes first.
//
//dmp:hotpath
func subtract(r Resources, d Demand) Resources {
	n := d.Nodes
	if d.LargeOnly {
		r.LargeNodes -= n
	} else {
		fromNormal := n
		if fromNormal > r.NormalNodes {
			fromNormal = r.NormalNodes
		}
		r.NormalNodes -= fromNormal
		r.LargeNodes -= n - fromNormal
	}
	if d.UsePool {
		r.FreeMB -= d.PooledMB
	}
	return r
}

// Segments returns the number of internal segments (for tests).
func (p *Profile) Segments() int { return len(p.times) }
