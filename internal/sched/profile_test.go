package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProfileImmediateFit(t *testing.T) {
	p := NewProfile(0, Resources{NormalNodes: 4, FreeMB: 1000}, nil)
	d := Demand{Nodes: 2, UsePool: true, PooledMB: 500}
	if got := p.EarliestFit(d, 0, 100); got != 0 {
		t.Fatalf("fit = %g, want 0", got)
	}
}

func TestProfileWaitsForRelease(t *testing.T) {
	p := NewProfile(0, Resources{NormalNodes: 1}, []Release{
		{At: 50, Res: Resources{NormalNodes: 1}},
		{At: 200, Res: Resources{NormalNodes: 2}},
	})
	if got := p.EarliestFit(Demand{Nodes: 2}, 0, 100); got != 50 {
		t.Fatalf("2-node fit = %g, want 50", got)
	}
	if got := p.EarliestFit(Demand{Nodes: 4}, 0, 100); got != 200 {
		t.Fatalf("4-node fit = %g, want 200", got)
	}
	if got := p.EarliestFit(Demand{Nodes: 9}, 0, 100); !math.IsInf(got, 1) {
		t.Fatalf("9-node fit = %g, want +Inf", got)
	}
}

func TestProfileOverdueReleaseCountsNow(t *testing.T) {
	p := NewProfile(100, Resources{}, []Release{{At: 30, Res: Resources{NormalNodes: 1}}})
	if got := p.EarliestFit(Demand{Nodes: 1}, 100, 10); got != 100 {
		t.Fatalf("fit = %g, want now (100)", got)
	}
}

func TestProfileReserveBlocksWindow(t *testing.T) {
	p := NewProfile(0, Resources{NormalNodes: 2, FreeMB: 1000}, nil)
	d := Demand{Nodes: 2, UsePool: true, PooledMB: 600}
	// Reserve both nodes over [100, 200).
	p.Reserve(d, 100, 100)
	// A one-node job fits before, not during, again after.
	one := Demand{Nodes: 1, UsePool: true, PooledMB: 500}
	if got := p.EarliestFit(one, 0, 100); got != 0 {
		t.Fatalf("pre-window fit = %g, want 0", got)
	}
	if got := p.EarliestFit(one, 100, 50); got != 200 {
		t.Fatalf("in-window fit = %g, want 200", got)
	}
	// A job overlapping the window from before cannot start at 50.
	if got := p.EarliestFit(one, 50, 100); got != 200 {
		t.Fatalf("overlapping fit = %g, want 200", got)
	}
}

func TestProfileSubtractLargeNodes(t *testing.T) {
	p := NewProfile(0, Resources{NormalNodes: 2, LargeNodes: 2}, nil)
	// A large-only demand consumes large nodes.
	p.Reserve(Demand{Nodes: 2, LargeOnly: true}, 0, 100)
	if got := p.EarliestFit(Demand{Nodes: 1, LargeOnly: true}, 0, 10); got != 100 {
		t.Fatalf("large fit = %g, want 100", got)
	}
	// Normal nodes remain usable during the window.
	if got := p.EarliestFit(Demand{Nodes: 2}, 0, 10); got != 0 {
		t.Fatalf("normal fit = %g, want 0", got)
	}
}

func TestProfileSubtractOverflowsToLarge(t *testing.T) {
	p := NewProfile(0, Resources{NormalNodes: 1, LargeNodes: 2}, nil)
	// A 2-node unrestricted demand takes the normal node plus one large.
	p.Reserve(Demand{Nodes: 2}, 0, 100)
	if got := p.EarliestFit(Demand{Nodes: 1, LargeOnly: true}, 0, 10); got != 0 {
		t.Fatalf("one large node must remain: fit = %g", got)
	}
	if got := p.EarliestFit(Demand{Nodes: 2}, 0, 10); got != 100 {
		t.Fatalf("second 2-node fit = %g, want 100", got)
	}
}

func TestProfileConservativeNoDelayInvariant(t *testing.T) {
	// Jobs reserved in queue order: later reservations never move
	// earlier ones (re-probing an earlier demand still fits at its
	// reserved time).
	rng := rand.New(rand.NewSource(9))
	p := NewProfile(0, Resources{NormalNodes: 8, FreeMB: 8000}, []Release{
		{At: 500, Res: Resources{NormalNodes: 4, FreeMB: 4000}},
	})
	type reserved struct {
		d       Demand
		at, dur float64
	}
	var done []reserved
	for i := 0; i < 20; i++ {
		d := Demand{Nodes: 1 + rng.Intn(6), UsePool: true, PooledMB: rng.Int63n(5000)}
		dur := 10 + rng.Float64()*500
		at := p.EarliestFit(d, 0, dur)
		if math.IsInf(at, 1) {
			continue
		}
		p.Reserve(d, at, dur)
		done = append(done, reserved{d, at, dur})
	}
	if len(done) == 0 {
		t.Skip("nothing reservable")
	}
	// All reservations were subtracted; the profile must never have
	// gone negative for them to fit (fitsOver was checked first); spot
	// check the final profile is still consistent for a zero demand.
	if got := p.EarliestFit(Demand{}, 0, 1); got != 0 {
		t.Fatalf("empty demand fit = %g", got)
	}
}

// Property: EarliestFit is monotone in `after` and Reserve never makes an
// unrelated earlier fit later than the reserved window's end.
func TestQuickEarliestFitMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := NewProfile(0, Resources{
			NormalNodes: rng.Intn(8),
			LargeNodes:  rng.Intn(4),
			FreeMB:      rng.Int63n(4000),
		}, []Release{
			{At: rng.Float64() * 100, Res: Resources{NormalNodes: rng.Intn(4), FreeMB: rng.Int63n(2000)}},
			{At: rng.Float64() * 300, Res: Resources{LargeNodes: rng.Intn(3)}},
		})
		d := Demand{Nodes: 1 + rng.Intn(6), UsePool: true, PooledMB: rng.Int63n(3000)}
		dur := 1 + rng.Float64()*200
		a := rng.Float64() * 100
		b := a + rng.Float64()*200
		fa := p.EarliestFit(d, a, dur)
		fb := p.EarliestFit(d, b, dur)
		if fa > fb {
			return false
		}
		return fa >= a || math.IsInf(fa, 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
