package sched

import (
	"math"
	"sort"
)

// Resources is an aggregate availability vector. Compute nodes are split by
// capacity class because the baseline policy can only place large-memory
// jobs on large nodes; FreeMB is the pool-wide free memory, which only the
// disaggregated policies consume.
type Resources struct {
	NormalNodes int
	LargeNodes  int
	FreeMB      int64
}

// Add returns r + s componentwise.
func (r Resources) Add(s Resources) Resources {
	return Resources{
		NormalNodes: r.NormalNodes + s.NormalNodes,
		LargeNodes:  r.LargeNodes + s.LargeNodes,
		FreeMB:      r.FreeMB + s.FreeMB,
	}
}

// Demand is the aggregate requirement of one job under a given policy.
type Demand struct {
	Nodes     int   // compute nodes required
	LargeOnly bool  // baseline: job only fits on large-capacity nodes
	PooledMB  int64 // disaggregated: total memory to draw from the pool
	UsePool   bool  // whether PooledMB applies (false for baseline)
}

// Fits reports whether the demand can be satisfied from r.
func (d Demand) Fits(r Resources) bool {
	if d.LargeOnly {
		if r.LargeNodes < d.Nodes {
			return false
		}
	} else if r.NormalNodes+r.LargeNodes < d.Nodes {
		return false
	}
	if d.UsePool && r.FreeMB < d.PooledMB {
		return false
	}
	return true
}

// Release is a future resource release: at time At, Res becomes available.
type Release struct {
	At  float64
	Res Resources
}

// ShadowTime returns the earliest time the demand fits, assuming the current
// availability now plus the given future releases (typically the running
// jobs' conservative completion times, i.e. start + wallclock limit), and no
// new work starting. It returns +Inf if the demand never fits even after all
// releases — the scenario is infeasible.
//
// This is the EASY-backfill reservation: the queue head is guaranteed to
// start no later than the shadow time, and backfilled jobs must not push it
// past that point.
func ShadowTime(nowTime float64, now Resources, releases []Release, d Demand) float64 {
	if d.Fits(now) {
		return nowTime
	}
	rel := make([]Release, len(releases))
	copy(rel, releases)
	sort.Slice(rel, func(i, j int) bool { return rel[i].At < rel[j].At })
	avail := now
	for _, r := range rel {
		avail = avail.Add(r.Res)
		if d.Fits(avail) {
			if r.At < nowTime {
				return nowTime
			}
			return r.At
		}
	}
	return math.Inf(1)
}

// CanBackfill reports whether a candidate job may start now without delaying
// the reserved queue head: its conservative completion (now + its wallclock
// limit) must not run past the shadow time.
//
// This is the conservative variant of EASY — it omits the "extra nodes"
// exception, under-backfilling slightly but never delaying the head.
func CanBackfill(now, candidateLimit, shadow float64) bool {
	if math.IsInf(shadow, 1) {
		// Head can never start; nothing a finite backfill does changes
		// that, so short jobs may flow freely.
		return true
	}
	return now+candidateLimit <= shadow
}
