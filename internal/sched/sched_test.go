package sched

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	var q Queue
	q.Push(Entry{JobID: 1, Enqueue: 10})
	q.Push(Entry{JobID: 2, Enqueue: 5})
	q.Push(Entry{JobID: 3, Enqueue: 20})
	got := q.Items(0)
	want := []int{2, 1, 3}
	for i, e := range got {
		if e.JobID != want[i] {
			t.Fatalf("order = %v, want %v", ids(got), want)
		}
	}
}

func TestQueuePriorityBeatsEnqueue(t *testing.T) {
	var q Queue
	q.Push(Entry{JobID: 1, Enqueue: 0, Priority: 0})
	q.Push(Entry{JobID: 2, Enqueue: 100, Priority: 5})
	h, ok := q.Head()
	if !ok || h.JobID != 2 {
		t.Fatalf("head = %+v, want prioritised job 2", h)
	}
}

func TestQueueStableOnTies(t *testing.T) {
	var q Queue
	for i := 1; i <= 5; i++ {
		q.Push(Entry{JobID: i, Enqueue: 7})
	}
	got := ids(q.Items(0))
	for i, id := range got {
		if id != i+1 {
			t.Fatalf("tie order = %v, want insertion order", got)
		}
	}
}

func TestQueueItemsLimit(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Push(Entry{JobID: i, Enqueue: float64(i)})
	}
	if got := len(q.Items(3)); got != 3 {
		t.Fatalf("limited items = %d, want 3", got)
	}
	if got := len(q.Items(0)); got != 10 {
		t.Fatalf("unlimited items = %d, want 10", got)
	}
	if got := len(q.Items(100)); got != 10 {
		t.Fatalf("over-limit items = %d, want 10", got)
	}
}

func TestQueueRemoveContains(t *testing.T) {
	var q Queue
	q.Push(Entry{JobID: 1})
	q.Push(Entry{JobID: 2})
	if !q.Contains(1) {
		t.Fatal("Contains(1) = false")
	}
	if !q.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if q.Contains(1) {
		t.Fatal("job 1 still present after Remove")
	}
	if q.Remove(1) {
		t.Fatal("second Remove(1) = true")
	}
	if q.Len() != 1 {
		t.Fatalf("len = %d, want 1", q.Len())
	}
}

func ids(es []Entry) []int {
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = e.JobID
	}
	return out
}

func TestDemandFits(t *testing.T) {
	r := Resources{NormalNodes: 4, LargeNodes: 2, FreeMB: 1000}
	cases := []struct {
		d    Demand
		want bool
	}{
		{Demand{Nodes: 6}, true},
		{Demand{Nodes: 7}, false},
		{Demand{Nodes: 2, LargeOnly: true}, true},
		{Demand{Nodes: 3, LargeOnly: true}, false},
		{Demand{Nodes: 1, UsePool: true, PooledMB: 1000}, true},
		{Demand{Nodes: 1, UsePool: true, PooledMB: 1001}, false},
		{Demand{Nodes: 1, PooledMB: 9999}, true}, // pool ignored when UsePool=false
	}
	for i, tc := range cases {
		if got := tc.d.Fits(r); got != tc.want {
			t.Errorf("case %d: Fits = %v, want %v", i, got, tc.want)
		}
	}
}

func TestShadowTimeImmediate(t *testing.T) {
	now := Resources{NormalNodes: 10, FreeMB: 1000}
	got := ShadowTime(42, now, nil, Demand{Nodes: 5})
	if got != 42 {
		t.Fatalf("shadow = %g, want now (42)", got)
	}
}

func TestShadowTimeAccumulatesReleases(t *testing.T) {
	now := Resources{NormalNodes: 1, FreeMB: 100}
	releases := []Release{
		{At: 300, Res: Resources{NormalNodes: 2, FreeMB: 200}},
		{At: 100, Res: Resources{NormalNodes: 1, FreeMB: 100}},
		{At: 200, Res: Resources{NormalNodes: 1, FreeMB: 100}},
	}
	// Needs 4 nodes and 400 MB: satisfied after the t=300 release
	// (1+1+1+2 nodes, 100+100+100+200 MB).
	d := Demand{Nodes: 4, UsePool: true, PooledMB: 400}
	if got := ShadowTime(0, now, releases, d); got != 300 {
		t.Fatalf("shadow = %g, want 300", got)
	}
	// Needs 2 nodes only: the t=100 release suffices.
	if got := ShadowTime(0, now, releases, Demand{Nodes: 2}); got != 100 {
		t.Fatalf("shadow = %g, want 100", got)
	}
}

func TestShadowTimeInfeasible(t *testing.T) {
	now := Resources{NormalNodes: 1}
	rel := []Release{{At: 10, Res: Resources{NormalNodes: 1}}}
	got := ShadowTime(0, now, rel, Demand{Nodes: 5})
	if !math.IsInf(got, 1) {
		t.Fatalf("shadow = %g, want +Inf", got)
	}
}

func TestShadowTimePastReleaseClampsToNow(t *testing.T) {
	// A release recorded in the past (job overran its limit) must not
	// produce a shadow time before now.
	now := Resources{}
	rel := []Release{{At: 5, Res: Resources{NormalNodes: 1}}}
	if got := ShadowTime(50, now, rel, Demand{Nodes: 1}); got != 50 {
		t.Fatalf("shadow = %g, want clamped to now 50", got)
	}
}

func TestCanBackfill(t *testing.T) {
	if !CanBackfill(100, 50, 150) {
		t.Fatal("job ending exactly at shadow must backfill")
	}
	if CanBackfill(100, 51, 150) {
		t.Fatal("job ending after shadow must not backfill")
	}
	if !CanBackfill(100, 1e9, math.Inf(1)) {
		t.Fatal("infinite shadow must allow backfill")
	}
}

// Property: ShadowTime is monotone in demand — asking for more resources
// never yields an earlier shadow time.
func TestQuickShadowMonotoneInDemand(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		now := Resources{
			NormalNodes: rng.Intn(10),
			LargeNodes:  rng.Intn(5),
			FreeMB:      rng.Int63n(1000),
		}
		var rel []Release
		for i := 0; i < rng.Intn(8); i++ {
			rel = append(rel, Release{
				At: rng.Float64() * 1000,
				Res: Resources{
					NormalNodes: rng.Intn(4),
					LargeNodes:  rng.Intn(2),
					FreeMB:      rng.Int63n(500),
				},
			})
		}
		small := Demand{Nodes: 1 + rng.Intn(5), UsePool: true, PooledMB: rng.Int63n(800)}
		big := Demand{Nodes: small.Nodes + rng.Intn(5), UsePool: true, PooledMB: small.PooledMB + rng.Int63n(500)}
		ts := ShadowTime(0, now, rel, small)
		tb := ShadowTime(0, now, rel, big)
		return ts <= tb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the demand always fits at the returned (finite) shadow time
// given all releases up to that time.
func TestQuickShadowSufficient(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		now := Resources{NormalNodes: rng.Intn(3), FreeMB: rng.Int63n(100)}
		var rel []Release
		for i := 0; i < 1+rng.Intn(10); i++ {
			rel = append(rel, Release{
				At:  rng.Float64() * 100,
				Res: Resources{NormalNodes: rng.Intn(3), FreeMB: rng.Int63n(200)},
			})
		}
		d := Demand{Nodes: rng.Intn(8), UsePool: true, PooledMB: rng.Int63n(600)}
		ts := ShadowTime(0, now, rel, d)
		if math.IsInf(ts, 1) {
			// Must genuinely not fit even with everything released.
			avail := now
			for _, r := range rel {
				avail = avail.Add(r.Res)
			}
			return !d.Fits(avail)
		}
		avail := now
		for _, r := range rel {
			if r.At <= ts {
				avail = avail.Add(r.Res)
			}
		}
		return d.Fits(avail)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQueuePeakLen(t *testing.T) {
	var q Queue
	if q.PeakLen() != 0 {
		t.Fatalf("empty queue peak = %d", q.PeakLen())
	}
	q.Push(Entry{JobID: 1})
	q.Push(Entry{JobID: 2})
	q.Push(Entry{JobID: 3})
	q.Remove(2)
	q.Remove(1)
	// The high-watermark survives drains and is not raised by a push that
	// stays below it.
	q.Push(Entry{JobID: 4})
	if q.Len() != 2 || q.PeakLen() != 3 {
		t.Fatalf("len = %d peak = %d, want 2 and 3", q.Len(), q.PeakLen())
	}
	q.Push(Entry{JobID: 5})
	q.Push(Entry{JobID: 6})
	if q.PeakLen() != 4 {
		t.Fatalf("peak = %d after growing past the old mark, want 4", q.PeakLen())
	}
}
