package cluster

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHomogeneous(t *testing.T) {
	c := New(4, 32, 65536)
	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4", c.Len())
	}
	if got := c.TotalCapacityMB(); got != 4*65536 {
		t.Fatalf("capacity = %d, want %d", got, 4*65536)
	}
	if got := c.TotalFreeMB(); got != 4*65536 {
		t.Fatalf("free = %d, want all free", got)
	}
	for _, n := range c.Nodes() {
		if n.Cores != 32 || n.RunningJob != NoJob {
			t.Fatalf("node %d mis-initialised: %+v", n.ID, n)
		}
	}
}

func TestNewMixedLargeFraction(t *testing.T) {
	cases := []struct {
		frac      float64
		wantLarge int
	}{
		{0, 0}, {0.15, 15}, {0.25, 25}, {0.5, 50}, {0.75, 75}, {1, 100},
	}
	for _, tc := range cases {
		c := NewMixed(Config{Nodes: 100, Cores: 32, NormalMB: 65536, LargeFrac: tc.frac})
		large := 0
		for _, n := range c.Nodes() {
			switch n.CapacityMB {
			case 131072:
				large++
			case 65536:
			default:
				t.Fatalf("frac %v: unexpected capacity %d", tc.frac, n.CapacityMB)
			}
		}
		if large != tc.wantLarge {
			t.Fatalf("frac %v: large nodes = %d, want %d", tc.frac, large, tc.wantLarge)
		}
	}
}

func TestStartEndJob(t *testing.T) {
	c := New(2, 32, 1000)
	if err := c.StartJob(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := c.StartJob(0, 8); !errors.Is(err, ErrNodeBusy) {
		t.Fatalf("double start: err = %v, want ErrNodeBusy", err)
	}
	if c.BusyNodes() != 1 {
		t.Fatalf("busy = %d, want 1", c.BusyNodes())
	}
	if err := c.EndJob(0); err != nil {
		t.Fatal(err)
	}
	if err := c.EndJob(0); !errors.Is(err, ErrNodeIdle) {
		t.Fatalf("double end: err = %v, want ErrNodeIdle", err)
	}
}

func TestLocalAllocationBounds(t *testing.T) {
	c := New(1, 32, 1000)
	if err := c.AllocLocal(0, 600); err != nil {
		t.Fatal(err)
	}
	if err := c.AllocLocal(0, 500); !errors.Is(err, ErrInsufficientMemory) {
		t.Fatalf("overalloc: err = %v, want ErrInsufficientMemory", err)
	}
	if err := c.AllocLocal(0, -1); !errors.Is(err, ErrNegativeAmount) {
		t.Fatalf("negative alloc: err = %v, want ErrNegativeAmount", err)
	}
	if err := c.ReleaseLocal(0, 700); !errors.Is(err, ErrOverRelease) {
		t.Fatalf("over-release: err = %v, want ErrOverRelease", err)
	}
	if err := c.ReleaseLocal(0, 600); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(0).FreeMB(); got != 1000 {
		t.Fatalf("free = %d after full release, want 1000", got)
	}
}

func TestLendingAndHalfCapacityRule(t *testing.T) {
	c := New(2, 32, 1000)
	// Lend exactly half: node still compute-available.
	if err := c.Lend(0, 500); err != nil {
		t.Fatal(err)
	}
	if !c.Node(0).IsComputeAvailable() {
		t.Fatal("node lending exactly half must remain compute-available")
	}
	if c.Node(0).IsMemoryNode() {
		t.Fatal("node lending exactly half is not a memory node")
	}
	// One more MB tips it into memory-node state.
	if err := c.Lend(0, 1); err != nil {
		t.Fatal(err)
	}
	if c.Node(0).IsComputeAvailable() {
		t.Fatal("node lending more than half must not be compute-available")
	}
	if !c.Node(0).IsMemoryNode() {
		t.Fatal("node lending more than half is a memory node")
	}
	// Returning the lend restores compute availability.
	if err := c.ReturnLend(0, 1); err != nil {
		t.Fatal(err)
	}
	if !c.Node(0).IsComputeAvailable() {
		t.Fatal("node must regain compute availability after lend returned")
	}
	if err := c.ReturnLend(0, 501); !errors.Is(err, ErrOverRelease) {
		t.Fatalf("over-return: err = %v, want ErrOverRelease", err)
	}
}

func TestLendLimitedByFreeMemory(t *testing.T) {
	c := New(1, 32, 1000)
	if err := c.AllocLocal(0, 800); err != nil {
		t.Fatal(err)
	}
	// A busy node may lend whatever is free, even past half capacity
	// of what remains.
	if err := c.Lend(0, 300); !errors.Is(err, ErrInsufficientMemory) {
		t.Fatalf("lend beyond free: err = %v, want ErrInsufficientMemory", err)
	}
	if err := c.Lend(0, 200); err != nil {
		t.Fatal(err)
	}
	if got := c.Node(0).FreeMB(); got != 0 {
		t.Fatalf("free = %d, want 0", got)
	}
}

func TestIdleComputeNodesExcludesBusyAndMemoryNodes(t *testing.T) {
	c := New(3, 32, 1000)
	if err := c.StartJob(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Lend(1, 600); err != nil {
		t.Fatal(err)
	}
	ids := c.IdleComputeNodes()
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("idle compute nodes = %v, want [2]", ids)
	}
}

func TestLendersByFreeDesc(t *testing.T) {
	c := New(4, 32, 1000)
	mustAllocLocal(t, c, 0, 900) // free 100
	mustAllocLocal(t, c, 1, 100) // free 900
	mustAllocLocal(t, c, 2, 500) // free 500
	mustAllocLocal(t, c, 3, 1000)
	got := c.LendersByFreeDesc(map[NodeID]bool{})
	want := []NodeID{1, 2, 0}
	if len(got) != len(want) {
		t.Fatalf("lenders = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lenders = %v, want %v", got, want)
		}
	}
	// Exclusion removes the job's own compute nodes from candidates.
	got = c.LendersByFreeDesc(map[NodeID]bool{1: true})
	if len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("lenders with exclusion = %v, want [2 0]", got)
	}
}

func TestLendersTieBreakByID(t *testing.T) {
	c := New(3, 32, 1000)
	got := c.LendersByFreeDesc(nil)
	if got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("equal-free lenders = %v, want ascending IDs", got)
	}
}

func mustAllocLocal(t *testing.T, c *Cluster, id NodeID, mb int64) {
	t.Helper()
	if err := c.StartJob(id, int(id)+100); err != nil {
		t.Fatal(err)
	}
	if err := c.AllocLocal(id, mb); err != nil {
		t.Fatal(err)
	}
}

func TestJobAllocationAccounting(t *testing.T) {
	c := New(3, 32, 1000)
	if err := c.StartJob(0, 1); err != nil {
		t.Fatal(err)
	}
	ja := &JobAllocation{Job: 1, PerNode: []NodeAllocation{{Node: 0}}}
	if err := ja.GrowLocal(c, 0, 700); err != nil {
		t.Fatal(err)
	}
	if err := ja.GrowRemote(c, 0, 1, 400); err != nil {
		t.Fatal(err)
	}
	if err := ja.GrowRemote(c, 0, 2, 100); err != nil {
		t.Fatal(err)
	}
	if got := ja.TotalMB(); got != 1200 {
		t.Fatalf("total = %d, want 1200", got)
	}
	if got := ja.RemoteMB(); got != 500 {
		t.Fatalf("remote = %d, want 500", got)
	}
	if got := ja.PerNode[0].LocalFraction(); got != 700.0/1200.0 {
		t.Fatalf("local fraction = %g, want %g", got, 700.0/1200.0)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := ja.Release(c); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalFreeMB(); got != 3000 {
		t.Fatalf("free after release = %d, want 3000", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGrowRemoteMergesSameLender(t *testing.T) {
	c := New(2, 32, 1000)
	if err := c.StartJob(0, 1); err != nil {
		t.Fatal(err)
	}
	ja := &JobAllocation{Job: 1, PerNode: []NodeAllocation{{Node: 0}}}
	if err := ja.GrowRemote(c, 0, 1, 100); err != nil {
		t.Fatal(err)
	}
	if err := ja.GrowRemote(c, 0, 1, 200); err != nil {
		t.Fatal(err)
	}
	if len(ja.PerNode[0].Leases) != 1 {
		t.Fatalf("leases = %v, want single merged lease", ja.PerNode[0].Leases)
	}
	if ja.PerNode[0].Leases[0].MB != 300 {
		t.Fatalf("merged lease = %d MB, want 300", ja.PerNode[0].Leases[0].MB)
	}
}

func TestShrinkRemoteLIFO(t *testing.T) {
	c := New(3, 32, 1000)
	if err := c.StartJob(0, 1); err != nil {
		t.Fatal(err)
	}
	ja := &JobAllocation{Job: 1, PerNode: []NodeAllocation{{Node: 0}}}
	if err := ja.GrowRemote(c, 0, 1, 300); err != nil {
		t.Fatal(err)
	}
	if err := ja.GrowRemote(c, 0, 2, 200); err != nil {
		t.Fatal(err)
	}
	ret, err := ja.ShrinkRemote(c, 0, 350)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 350 {
		t.Fatalf("returned %d, want 350", ret)
	}
	// Lender 2's 200 MB goes first (LIFO), then 150 from lender 1.
	if got := c.Node(2).LentMB; got != 0 {
		t.Fatalf("node 2 lent = %d, want 0", got)
	}
	if got := c.Node(1).LentMB; got != 150 {
		t.Fatalf("node 1 lent = %d, want 150", got)
	}
	// Asking for more than held returns only what exists.
	ret, err = ja.ShrinkRemote(c, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if ret != 150 {
		t.Fatalf("returned %d, want remaining 150", ret)
	}
}

func TestShrinkLocalOverRelease(t *testing.T) {
	c := New(1, 32, 1000)
	if err := c.StartJob(0, 1); err != nil {
		t.Fatal(err)
	}
	ja := &JobAllocation{Job: 1, PerNode: []NodeAllocation{{Node: 0}}}
	if err := ja.GrowLocal(c, 0, 100); err != nil {
		t.Fatal(err)
	}
	if err := ja.ShrinkLocal(c, 0, 200); !errors.Is(err, ErrOverRelease) {
		t.Fatalf("err = %v, want ErrOverRelease", err)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	c := New(1, 32, 1000)
	c.nodes[0].LocalMB = 600
	c.nodes[0].LentMB = 600
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("overcommit not detected")
	}
	c = New(1, 32, 1000)
	c.nodes[0].LocalMB = 100 // idle node with local allocation
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("idle-with-local not detected")
	}
	c = New(1, 32, 1000)
	c.nodes[0].LentMB = -5
	if err := c.CheckInvariants(); err == nil {
		t.Fatal("negative ledger not detected")
	}
}

// Property: a random sequence of valid grow/shrink/release operations never
// violates ledger invariants, and memory is conserved (free + allocated ==
// capacity at every step).
func TestQuickLedgerConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(8, 32, 4096)
		var allocs []*JobAllocation
		for op := 0; op < 200; op++ {
			switch rng.Intn(4) {
			case 0: // place a 1-node job with local + remote memory
				ids := c.IdleComputeNodes()
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				if c.StartJob(id, op) != nil {
					return false
				}
				ja := &JobAllocation{Job: op, PerNode: []NodeAllocation{{Node: id}}}
				local := rng.Int63n(c.Node(id).FreeMB() + 1)
				if ja.GrowLocal(c, 0, local) != nil {
					return false
				}
				lenders := c.LendersByFreeDesc(map[NodeID]bool{id: true})
				if len(lenders) > 0 {
					l := lenders[rng.Intn(len(lenders))]
					mb := rng.Int63n(c.Node(l).FreeMB() + 1)
					if ja.GrowRemote(c, 0, l, mb) != nil {
						return false
					}
				}
				allocs = append(allocs, ja)
			case 1: // shrink a random allocation
				if len(allocs) == 0 {
					continue
				}
				ja := allocs[rng.Intn(len(allocs))]
				if _, err := ja.ShrinkRemote(c, 0, rng.Int63n(4096)); err != nil {
					return false
				}
				if ja.PerNode[0].LocalMB > 0 {
					if ja.ShrinkLocal(c, 0, rng.Int63n(ja.PerNode[0].LocalMB+1)) != nil {
						return false
					}
				}
			case 2: // grow a random allocation within what is free
				if len(allocs) == 0 {
					continue
				}
				ja := allocs[rng.Intn(len(allocs))]
				id := ja.PerNode[0].Node
				if free := c.Node(id).FreeMB(); free > 0 {
					if ja.GrowLocal(c, 0, rng.Int63n(free+1)) != nil {
						return false
					}
				}
			case 3: // release a random allocation entirely
				if len(allocs) == 0 {
					continue
				}
				i := rng.Intn(len(allocs))
				if allocs[i].Release(c) != nil {
					return false
				}
				allocs = append(allocs[:i], allocs[i+1:]...)
			}
			if c.CheckInvariants() != nil {
				return false
			}
			if c.TotalFreeMB()+c.TotalAllocatedMB() != c.TotalCapacityMB() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: job allocation bookkeeping mirrors the cluster ledger exactly —
// the sum of all allocations equals TotalAllocatedMB.
func TestQuickAllocationMirrorsLedger(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(6, 32, 2048)
		var allocs []*JobAllocation
		for op := 0; op < 100; op++ {
			ids := c.IdleComputeNodes()
			if len(ids) > 0 && rng.Intn(2) == 0 {
				id := ids[0]
				if c.StartJob(id, op) != nil {
					return false
				}
				ja := &JobAllocation{Job: op, PerNode: []NodeAllocation{{Node: id}}}
				if ja.GrowLocal(c, 0, rng.Int63n(c.Node(id).FreeMB()+1)) != nil {
					return false
				}
				allocs = append(allocs, ja)
			} else if len(allocs) > 0 {
				i := rng.Intn(len(allocs))
				if allocs[i].Release(c) != nil {
					return false
				}
				allocs = append(allocs[:i], allocs[i+1:]...)
			}
			var sum int64
			for _, ja := range allocs {
				sum += ja.TotalMB()
			}
			if sum != c.TotalAllocatedMB() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLendersByFreeDesc(b *testing.B) {
	c := New(1024, 32, 65536)
	for i := 0; i < 512; i++ {
		if err := c.Lend(NodeID(i), int64(i%32)*1024); err != nil {
			b.Fatal(err)
		}
	}
	exclude := map[NodeID]bool{1: true, 5: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.LendersByFreeDesc(exclude)
	}
}

func BenchmarkLedgerOps(b *testing.B) {
	c := New(64, 32, 65536)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := NodeID(i % 64)
		if err := c.Lend(id, 1024); err != nil {
			b.Fatal(err)
		}
		if err := c.ReturnLend(id, 1024); err != nil {
			b.Fatal(err)
		}
	}
}

func TestTotalLentMBTracksLedger(t *testing.T) {
	c := New(4, 32, 1000)
	if c.TotalLentMB() != 0 {
		t.Fatalf("fresh cluster lent %d MB", c.TotalLentMB())
	}
	if err := c.Lend(0, 300); err != nil {
		t.Fatal(err)
	}
	if err := c.Lend(1, 500); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalLentMB(); got != 800 {
		t.Fatalf("lent total = %d, want 800", got)
	}
	if err := c.ReturnLend(0, 200); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalLentMB(); got != 600 {
		t.Fatalf("lent total = %d, want 600", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := c.ReturnLend(0, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.ReturnLend(1, 500); err != nil {
		t.Fatal(err)
	}
	if got := c.TotalLentMB(); got != 0 {
		t.Fatalf("lent total = %d after full return, want 0", got)
	}
}
