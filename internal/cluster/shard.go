package cluster

// This file implements the sharded ledger indexes: the node ID space is
// partitioned into contiguous shards, each with its own free-memory treap,
// idle-compute bitset, and O(1) aggregate summary (free, lent, lender count,
// idle count). Mutations touch exactly one shard's treap — O(log(N/S))
// instead of O(log N) — and the placement/borrow scans consult the per-shard
// summaries first (the two-level lender index), descending into a shard's
// treap only when its summary says it can contribute.
//
// Determinism is non-negotiable: the global lender order must stay
// bit-identical to the single-treap order — (free desc, node ID asc) — for
// every shard count. Global walks therefore run an S-way merge over the
// per-shard in-order iterators using the exact same comparator; with one
// shard the merge degenerates to the plain treap walk, so shard count 1 IS
// the serial ledger. The shard-boundary differential tests assert identical
// orderings across shard counts for arbitrary operation sequences.

// shardIx is one shard's indexes and running aggregates.
type shardIx struct {
	base int // first node ID owned by this shard
	n    int // number of nodes owned

	free freeIndex
	idle idleSet

	freeMB  int64 // sum of FreeMB over the shard's nodes
	lentMB  int64 // sum of LentMB over the shard's nodes
	lenders int   // nodes with FreeMB > 0

	// Capacity-class split of the shard's idle set (normal vs large, see
	// Cluster.largeMB). Kept per shard — like every other running
	// aggregate — so that ledger mutations confined to disjoint shards
	// touch disjoint memory and can proceed concurrently; the cluster-wide
	// getters sum over shards (integer-exact, O(S)).
	idleNormal int
	idleLarge  int
}

// refile moves the node at local index to its new free-memory key, keeping
// the shard's lender count in sync.
//
//dmp:hotpath
func (sh *shardIx) refile(local int32, newFree int64) {
	old := sh.free.key[local]
	if (old > 0) != (newFree > 0) {
		if newFree > 0 {
			sh.lenders++
		} else {
			sh.lenders--
		}
	}
	sh.free.update(local, newFree)
}

// ShardSummary is the O(1) top level of the two-level lender index: enough
// aggregate state to decide whether a shard can contribute lenders or idle
// compute nodes without touching its treap or bitset.
type ShardSummary struct {
	Base    NodeID // first node ID in the shard
	Nodes   int    // nodes owned by the shard
	Idle    int    // compute-available nodes
	Lenders int    // nodes with free memory to lend
	FreeMB  int64  // total unallocated memory
	LentMB  int64  // total memory lent to remote jobs
}

// ShardCount returns the number of ledger shards (≥ 1).
func (c *Cluster) ShardCount() int { return len(c.shards) }

// ShardOf returns the index of the shard owning node id.
//
//dmp:hotpath
func (c *Cluster) ShardOf(id NodeID) int { return int(id) / c.shardSize }

// Shard returns shard i's aggregate summary in O(1).
func (c *Cluster) Shard(i int) ShardSummary {
	sh := &c.shards[i]
	return ShardSummary{
		Base:    NodeID(sh.base),
		Nodes:   sh.n,
		Idle:    sh.idle.count,
		Lenders: sh.lenders,
		FreeMB:  sh.freeMB,
		LentMB:  sh.lentMB,
	}
}

// AscendShardLenders walks shard i's nodes with free memory in
// (free desc, ID asc) order — the second level of the two-level lender
// index. The ledger must not be mutated during the walk.
func (c *Cluster) AscendShardLenders(i int, yield func(id NodeID, free int64) bool) {
	sh := &c.shards[i]
	base := NodeID(sh.base)
	sh.free.ascend(func(local int32, free int64) bool {
		if free <= 0 {
			return false
		}
		return yield(base+NodeID(local), free) //dmplint:ignore hotpath-reach yield is the caller's iterator body; every in-tree caller passes a prebuilt non-allocating visitor
	})
}

// ------------------------------------------------------------ merge walk

// ascendAll walks every shard's treap in a single globally ordered pass:
// an S-way merge on (free desc, ID asc), the exact single-treap order.
// includeEmpty selects whether nodes with no free memory are visited
// (AscendFree) or pruned — per shard, the moment its head drops to zero,
// and whole shards up front when their summary says lenders == 0
// (AscendLenders / LendersByFreeDesc).
//
//dmp:hotpath
func (c *Cluster) ascendAll(includeEmpty bool, yield func(id NodeID, free int64) bool) {
	if len(c.shards) == 1 {
		sh := &c.shards[0]
		sh.free.ascend(func(local int32, free int64) bool {
			if !includeEmpty && free <= 0 {
				return false
			}
			return yield(NodeID(local), free) //dmplint:ignore hotpath-reach yield is the caller's iterator body; every in-tree caller passes a prebuilt non-allocating visitor
		})
		return
	}

	its := c.mergeIts
	heapIdx := c.mergeHeap[:0]
	for i := range c.shards {
		sh := &c.shards[i]
		if !includeEmpty && sh.lenders == 0 {
			continue // two-level skip: summary proves no contribution
		}
		its[i].init(&sh.free)
		head, ok := its[i].next()
		if !ok {
			continue
		}
		if !includeEmpty && sh.free.key[head] <= 0 {
			continue
		}
		its[i].head = head
		heapIdx = append(heapIdx, int32(i))
		c.siftUp(heapIdx, len(heapIdx)-1)
	}

	for len(heapIdx) > 0 {
		i := heapIdx[0]
		sh := &c.shards[i]
		id := NodeID(sh.base) + NodeID(its[i].head)
		free := sh.free.key[its[i].head]
		if !yield(id, free) { //dmplint:ignore hotpath-reach yield is the caller's iterator body; every in-tree caller passes a prebuilt non-allocating visitor
			break
		}
		// Advance shard i's iterator; prune it once it runs dry or (in
		// lender mode) its next head has nothing to lend — per-shard order
		// is free-descending, so everything after is empty too.
		head, ok := its[i].next()
		if ok && (includeEmpty || sh.free.key[head] > 0) {
			its[i].head = head
			c.siftDown(heapIdx, 0)
		} else {
			last := len(heapIdx) - 1
			heapIdx[0] = heapIdx[last]
			heapIdx = heapIdx[:last]
			if last > 0 {
				c.siftDown(heapIdx, 0)
			}
		}
	}
	c.mergeHeap = heapIdx[:0]
}

// mergeBefore reports whether shard a's head orders before shard b's head
// under the global (free desc, ID asc) comparator.
//
//dmp:hotpath
func (c *Cluster) mergeBefore(a, b int32) bool {
	sa, sb := &c.shards[a], &c.shards[b]
	fa := sa.free.key[c.mergeIts[a].head]
	fb := sb.free.key[c.mergeIts[b].head]
	if fa != fb {
		return fa > fb
	}
	return sa.base+int(c.mergeIts[a].head) < sb.base+int(c.mergeIts[b].head)
}

//dmp:hotpath
func (c *Cluster) siftUp(h []int32, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !c.mergeBefore(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

//dmp:hotpath
func (c *Cluster) siftDown(h []int32, i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && c.mergeBefore(h[l], h[best]) {
			best = l
		}
		if r < n && c.mergeBefore(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
