package cluster

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// applyOps drives a deterministic stream of raw ledger operations. The
// choices depend only on the rng and the cluster's observable state, so two
// clusters in identical states given equal-seeded rngs evolve identically.
func applyOps(t *testing.T, c *Cluster, rng *rand.Rand, nOps int) {
	t.Helper()
	for op := 0; op < nOps; op++ {
		id := NodeID(rng.Intn(c.Len()))
		n := c.Node(id)
		switch rng.Intn(6) {
		case 0:
			if n.RunningJob == NoJob && n.IsComputeAvailable() {
				if err := c.StartJob(id, op); err != nil {
					t.Fatalf("StartJob(%d): %v", id, err)
				}
			}
		case 1:
			if n.RunningJob != NoJob && n.LocalMB == 0 {
				if err := c.EndJob(id); err != nil {
					t.Fatalf("EndJob(%d): %v", id, err)
				}
			}
		case 2:
			if n.RunningJob != NoJob && n.FreeMB() > 0 {
				if err := c.AllocLocal(id, rng.Int63n(n.FreeMB())+1); err != nil {
					t.Fatalf("AllocLocal(%d): %v", id, err)
				}
			}
		case 3:
			if n.LocalMB > 0 {
				if err := c.ReleaseLocal(id, rng.Int63n(n.LocalMB)+1); err != nil {
					t.Fatalf("ReleaseLocal(%d): %v", id, err)
				}
			}
		case 4:
			if n.FreeMB() > 0 {
				if err := c.Lend(id, rng.Int63n(n.FreeMB())+1); err != nil {
					t.Fatalf("Lend(%d): %v", id, err)
				}
			}
		case 5:
			if n.LentMB > 0 {
				if err := c.ReturnLend(id, rng.Int63n(n.LentMB)+1); err != nil {
					t.Fatalf("ReturnLend(%d): %v", id, err)
				}
			}
		}
	}
}

// fingerprint captures every observable of the ledger: per-node fields, the
// aggregate getters, shard summaries, and the two globally ordered walks.
func fingerprint(c *Cluster) string {
	s := fmt.Sprintf("free=%d lent=%d alloc=%d busy=%d idle=%d",
		c.TotalFreeMB(), c.TotalLentMB(), c.TotalAllocatedMB(), c.BusyNodes(), c.IdleComputeCount())
	nrm, lrg := c.IdleComputeSplit()
	s += fmt.Sprintf(" split=%d/%d", nrm, lrg)
	for i := range c.Nodes() {
		n := c.Node(NodeID(i))
		s += fmt.Sprintf(";%d:%d,%d,%d", n.ID, n.LocalMB, n.LentMB, n.RunningJob)
	}
	for i := 0; i < c.ShardCount(); i++ {
		s += fmt.Sprintf("|%+v", c.Shard(i))
	}
	s += "|idle"
	for _, id := range c.IdleComputeNodes() {
		s += fmt.Sprintf(",%d", id)
	}
	s += "|lend"
	c.AscendLenders(func(id NodeID, free int64) bool {
		s += fmt.Sprintf(",%d:%d", id, free)
		return true
	})
	s += "|all"
	c.AscendFree(func(id NodeID, free int64) bool {
		s += fmt.Sprintf(",%d:%d", id, free)
		return true
	})
	return s
}

// A fork and its base must evolve exactly like two independently built
// clusters replaying the same operation streams, for every shard layout.
func TestForkDifferential(t *testing.T) {
	for _, shards := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			for seed := int64(0); seed < 10; seed++ {
				build := func() *Cluster {
					c := NewMixed(Config{Nodes: 24, Cores: 32, NormalMB: 4096, LargeFrac: 0.25, Shards: shards})
					applyOps(t, c, rand.New(rand.NewSource(seed)), 150)
					return c
				}
				base, refBase, refFork := build(), build(), build()
				fork := base.Fork()

				// Divergent suffixes on base and fork; the references replay
				// the same streams on plain unforked clusters.
				applyOps(t, base, rand.New(rand.NewSource(seed+1000)), 150)
				applyOps(t, refBase, rand.New(rand.NewSource(seed+1000)), 150)
				applyOps(t, fork, rand.New(rand.NewSource(seed+2000)), 150)
				applyOps(t, refFork, rand.New(rand.NewSource(seed+2000)), 150)

				if got, want := fingerprint(base), fingerprint(refBase); got != want {
					t.Fatalf("seed %d: base diverged from replay\n got %s\nwant %s", seed, got, want)
				}
				if got, want := fingerprint(fork), fingerprint(refFork); got != want {
					t.Fatalf("seed %d: fork diverged from replay\n got %s\nwant %s", seed, got, want)
				}
				for name, c := range map[string]*Cluster{"base": base, "fork": fork} {
					if err := c.CheckInvariants(); err != nil {
						t.Fatalf("seed %d: %s: %v", seed, name, err)
					}
				}
			}
		})
	}
}

// Reading through a fork must not materialise anything: the whole point of
// the snapshot is that an untouched branch costs O(S) and nothing more.
func TestForkNoWriteNoCopies(t *testing.T) {
	c := NewSharded(64, 32, 4096, 8)
	applyOps(t, c, rand.New(rand.NewSource(7)), 200)
	f := c.Fork()
	_ = fingerprint(f)
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if nodes, thaws := f.CowStats(); nodes != 0 || thaws != 0 {
		t.Fatalf("read-only fork copied: nodeCopies=%d shardThaws=%d", nodes, thaws)
	}
	// After scratch has warmed once, reads through the fork are
	// allocation-free, same as an unforked ledger.
	_ = fingerprint(f)
	allocs := testing.AllocsPerRun(10, func() {
		f.AscendLenders(func(NodeID, int64) bool { return true })
		f.AscendFree(func(NodeID, int64) bool { return true })
		_ = f.TotalFreeMB()
		_ = f.IdleComputeCount()
	})
	if allocs != 0 {
		t.Fatalf("read path allocates %v/op after warmup", allocs)
	}
}

// A single write to a fork thaws exactly the touched shard (plus the one
// node-slice copy) and leaves the base bit-identical.
func TestForkFirstTouchGranularity(t *testing.T) {
	c := NewSharded(64, 32, 4096, 8)
	applyOps(t, c, rand.New(rand.NewSource(11)), 200)
	before := fingerprint(c)
	f := c.Fork()
	// Pick a node with lendable memory deterministically.
	var target = NodeID(-1)
	f.AscendLenders(func(id NodeID, free int64) bool { target = id; return false })
	if target < 0 {
		t.Fatal("no lender available")
	}
	if err := f.Lend(target, 1); err != nil {
		t.Fatal(err)
	}
	if nodes, thaws := f.CowStats(); nodes != 1 || thaws != 1 {
		t.Fatalf("first touch: nodeCopies=%d shardThaws=%d, want 1/1", nodes, thaws)
	}
	if err := f.ReturnLend(target, 1); err != nil {
		t.Fatal(err)
	}
	if nodes, thaws := f.CowStats(); nodes != 1 || thaws != 1 {
		t.Fatalf("second touch re-copied: nodeCopies=%d shardThaws=%d", nodes, thaws)
	}
	if got := fingerprint(c); got != before {
		t.Fatalf("base mutated by fork writes\n got %s\nwant %s", got, before)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Forks of forks and sibling forks may all mutate concurrently: every writer
// copies before its first write, frozen arrays are only read. Run under
// -race this is the aliasing proof.
func TestForkConcurrentBranches(t *testing.T) {
	c := NewSharded(48, 32, 4096, 6)
	applyOps(t, c, rand.New(rand.NewSource(3)), 200)

	branches := make([]*Cluster, 8)
	for i := range branches {
		branches[i] = c.Fork()
	}
	grand := branches[0].Fork() // fork of a fork

	var wg sync.WaitGroup
	run := func(cl *Cluster, seed int64) {
		defer wg.Done()
		// t.Fatalf must not be called off the test goroutine; applyOps only
		// performs state-guarded ops, so errors here indicate aliasing —
		// surfaced via CheckInvariants below and the race detector.
		rng := rand.New(rand.NewSource(seed))
		for op := 0; op < 300; op++ {
			id := NodeID(rng.Intn(cl.Len()))
			n := cl.Node(id)
			switch rng.Intn(4) {
			case 0:
				if n.FreeMB() > 0 {
					_ = cl.Lend(id, rng.Int63n(n.FreeMB())+1)
				}
			case 1:
				if n.LentMB > 0 {
					_ = cl.ReturnLend(id, rng.Int63n(n.LentMB)+1)
				}
			case 2:
				if n.RunningJob == NoJob && n.IsComputeAvailable() {
					_ = cl.StartJob(id, op)
				}
			case 3:
				cl.AscendLenders(func(NodeID, int64) bool { return true })
			}
		}
	}
	all := append(append([]*Cluster{}, branches...), grand, c)
	for i, cl := range all {
		wg.Add(1)
		go run(cl, int64(100+i))
	}
	wg.Wait()
	for i, cl := range all {
		if err := cl.CheckInvariants(); err != nil {
			t.Fatalf("branch %d: %v", i, err)
		}
	}
}
