package cluster

import (
	"math/rand"
	"reflect"
	"testing"
)

// shardCountsFor returns the shard counts exercised against the serial
// (single-shard) ledger: even splits, uneven tails, one node per shard.
func shardCountsFor(nodes int) []int {
	return []int{1, 2, 3, 5, nodes}
}

// TestShardedLedgerDifferential drives identical random operation sequences
// through clusters built with different shard counts and asserts every
// derived ordering and aggregate stays byte-identical to the single-shard
// (serial) ledger after every mutation. This is the shard-boundary oracle:
// the S-way merge must reproduce the single-treap (free desc, ID asc) order
// exactly, the two-level skip must never hide a lender, and shard count 1
// must be exactly the serial ledger (it runs the same code path).
func TestShardedLedgerDifferential(t *testing.T) {
	const nodes = 23 // odd: exercises an uneven tail shard
	rng := rand.New(rand.NewSource(42))
	var cs []*Cluster
	for _, s := range shardCountsFor(nodes) {
		cs = append(cs, NewSharded(nodes, 8, 2048, s))
	}
	exclude := map[NodeID]bool{3: true, 11: true}
	for step := 0; step < 4000; step++ {
		// Mutate every cluster identically (ops may fail; failures must
		// leave all ledgers untouched and identical).
		n := cs[0].Len()
		id := NodeID(rng.Intn(n))
		mb := int64(rng.Intn(600))
		op := rng.Intn(6)
		// Respect the ledger contract (the simulator never allocates local
		// memory on an idle node nor ends a job before releasing it): remap
		// ops that would violate it rather than skip the step.
		peek := cs[0].Node(id)
		if op == 2 && peek.RunningJob == NoJob {
			op = 0 // start a job instead, then later steps can alloc
		}
		if op == 1 && peek.LocalMB > 0 {
			op = 3 // release local memory before ending the job
		}
		var wantErr bool
		for i, c := range cs {
			var err error
			switch op {
			case 0:
				err = c.StartJob(id, 7)
			case 1:
				err = c.EndJob(id)
			case 2:
				err = c.AllocLocal(id, mb)
			case 3:
				err = c.ReleaseLocal(id, mb)
			case 4:
				err = c.Lend(id, mb)
			default:
				err = c.ReturnLend(id, mb)
			}
			if i == 0 {
				wantErr = err != nil
			} else if (err != nil) != wantErr {
				t.Fatalf("step %d op %d: shard count %d error %v, serial error %t",
					step, op, c.ShardCount(), err, wantErr)
			}
		}
		if step%37 != 0 { // full comparison is O(N log N); sample it
			continue
		}
		ref := cs[0]
		wantLenders := append([]NodeID(nil), ref.LendersByFreeDesc(exclude)...)
		wantRef := ref.lendersByFreeDescRef(exclude)
		if !reflect.DeepEqual(wantLenders, wantRef) {
			t.Fatalf("step %d: single-shard walk diverged from rescan reference", step)
		}
		wantIdle := append([]NodeID(nil), ref.IdleComputeNodes()...)
		var wantFree []NodeID
		ref.AscendFree(func(id NodeID, _ int64) bool {
			wantFree = append(wantFree, id)
			return true
		})
		for _, c := range cs[1:] {
			if err := c.CheckInvariants(); err != nil {
				t.Fatalf("step %d shards=%d: %v", step, c.ShardCount(), err)
			}
			got := c.LendersByFreeDesc(exclude)
			if !reflect.DeepEqual(append([]NodeID(nil), got...), wantLenders) {
				t.Fatalf("step %d shards=%d: lender order diverged\n got %v\nwant %v",
					step, c.ShardCount(), got, wantLenders)
			}
			if got := c.IdleComputeNodes(); !reflect.DeepEqual(append([]NodeID(nil), got...), wantIdle) {
				t.Fatalf("step %d shards=%d: idle set diverged", step, c.ShardCount())
			}
			var gotFree []NodeID
			c.AscendFree(func(id NodeID, _ int64) bool {
				gotFree = append(gotFree, id)
				return true
			})
			if !reflect.DeepEqual(gotFree, wantFree) {
				t.Fatalf("step %d shards=%d: AscendFree order diverged", step, c.ShardCount())
			}
			if c.TotalFreeMB() != ref.TotalFreeMB() || c.TotalLentMB() != ref.TotalLentMB() ||
				c.IdleComputeCount() != ref.IdleComputeCount() {
				t.Fatalf("step %d shards=%d: aggregates diverged", step, c.ShardCount())
			}
		}
		if err := ref.CheckInvariants(); err != nil {
			t.Fatalf("step %d serial: %v", step, err)
		}
	}
}

// TestShardSummaries asserts the per-shard summaries tile the cluster and
// sum to the global aggregates, and that AscendShardLenders visits exactly
// the shard's lenders in (free desc, ID asc) order.
func TestShardSummaries(t *testing.T) {
	c := NewSharded(10, 4, 1000, 4) // shardSize 3: shards of 3,3,3,1
	if got := c.ShardCount(); got != 4 {
		t.Fatalf("ShardCount = %d, want 4", got)
	}
	if err := c.Lend(0, 1000); err != nil { // shard 0 node exhausted
		t.Fatal(err)
	}
	if err := c.AllocLocalForTest(4, 400); err != nil {
		t.Fatal(err)
	}
	var nodes, idle, lenders int
	var freeMB, lentMB int64
	base := NodeID(0)
	for i := 0; i < c.ShardCount(); i++ {
		s := c.Shard(i)
		if s.Base != base {
			t.Fatalf("shard %d base %d, want %d", i, s.Base, base)
		}
		base += NodeID(s.Nodes)
		nodes += s.Nodes
		idle += s.Idle
		lenders += s.Lenders
		freeMB += s.FreeMB
		lentMB += s.LentMB

		var walk []NodeID
		prevFree := int64(-1)
		c.AscendShardLenders(i, func(id NodeID, free int64) bool {
			if free <= 0 {
				t.Fatalf("shard %d: lender walk yielded empty node %d", i, id)
			}
			if prevFree >= 0 && free > prevFree {
				t.Fatalf("shard %d: lender walk not free-descending", i)
			}
			prevFree = free
			walk = append(walk, id)
			return true
		})
		if len(walk) != s.Lenders {
			t.Fatalf("shard %d: walk visited %d lenders, summary says %d", i, len(walk), s.Lenders)
		}
	}
	if nodes != c.Len() || idle != c.IdleComputeCount() ||
		freeMB != c.TotalFreeMB() || lentMB != c.TotalLentMB() {
		t.Fatalf("shard summaries do not tile the cluster aggregates")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// AllocLocalForTest allocates local memory on an idle node by starting and
// keeping a synthetic job — a convenience for summary tests only.
func (c *Cluster) AllocLocalForTest(id NodeID, mb int64) error {
	if err := c.StartJob(id, 99); err != nil {
		return err
	}
	return c.AllocLocal(id, mb)
}

// TestShardedWalkAllocationFree asserts the merge walk allocates nothing at
// steady state: the per-shard iterators and the merge heap are persistent
// scratch.
func TestShardedWalkAllocationFree(t *testing.T) {
	c := NewSharded(256, 8, 2048, 8)
	for i := 0; i < 64; i++ {
		if err := c.Lend(NodeID(i*3), int64(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	sink := 0
	walk := func() {
		c.AscendLenders(func(id NodeID, free int64) bool {
			sink++
			return true
		})
	}
	walk() // grow iterator stacks once
	if got := testing.AllocsPerRun(20, walk); got != 0 {
		t.Fatalf("sharded AscendLenders allocates %.1f per walk, want 0", got)
	}
}

// BenchmarkShardedAscend measures a bounded lender scan (top 8 lenders
// after one refile) across shard counts on a mostly-exhausted cluster —
// the regime the two-level index targets: most shards have nothing to
// lend and are skipped from their summaries alone.
func BenchmarkShardedAscend(b *testing.B) {
	for _, shards := range []int{1, 16, 64} {
		b.Run(map[int]string{1: "shards=1", 16: "shards=16", 64: "shards=64"}[shards], func(b *testing.B) {
			const nodes = 16384
			c := NewSharded(nodes, 8, 2048, shards)
			// Exhaust everything except the first 16 nodes: the surviving
			// lender set is concentrated in the first shard, so with many
			// shards the walk consults one treap and S−1 summaries.
			for i := 16; i < nodes; i++ {
				if err := c.Lend(NodeID(i), 2048); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := NodeID(i % nodes)
				n := c.Node(id)
				if n.FreeMB() > 0 {
					if err := c.Lend(id, n.FreeMB()); err != nil {
						b.Fatal(err)
					}
					if err := c.ReturnLend(id, n.LentMB); err != nil {
						b.Fatal(err)
					}
				}
				got := 0
				c.AscendLenders(func(NodeID, int64) bool {
					got++
					return got < 8
				})
			}
		})
	}
}
