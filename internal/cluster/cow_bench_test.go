package cluster

import "testing"

// benchForkCluster builds the paper-scale ledger the fork benchmarks run
// against: 1490 nodes, 16 shards, every node busy with a live allocation and
// every fourth node lending — a loaded mid-run state, not an empty one, so
// the snapshot cost includes realistic treap and bitset population.
func benchForkCluster(b *testing.B) *Cluster {
	b.Helper()
	c := NewSharded(1490, 32, 65536, 16)
	for i := 0; i < c.Len(); i++ {
		id := NodeID(i)
		if err := c.StartJob(id, i); err != nil {
			b.Fatal(err)
		}
		if err := c.AllocLocal(id, int64(8+i%32)*1024); err != nil {
			b.Fatal(err)
		}
		if i%4 == 0 {
			if err := c.Lend(id, 4096); err != nil {
				b.Fatal(err)
			}
		}
	}
	return c
}

// BenchmarkFork measures the copy-on-write snapshot machinery at paper scale:
// the O(S) fork itself, the zero-allocation read path on a freshly shared
// ledger, and the one-time cost a branch pays on its first write (node-slice
// materialisation plus one shard thaw).
func BenchmarkFork(b *testing.B) {
	// snapshot: Cluster.Fork on the loaded ledger. O(shards), no node or
	// index data copied — this is the cost a what-if branch pays up front.
	b.Run("snapshot", func(b *testing.B) {
		c := benchForkCluster(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if f := c.Fork(); f == nil {
				b.Fatal("nil fork")
			}
		}
	})

	// no-write-read: aggregate and per-node reads on a forked ledger must
	// not materialise anything — the frozen arrays serve reads directly.
	// The AllocsPerRun guard turns an accidental copy on the read path into
	// a benchmark failure, not just a silently slower number.
	b.Run("no-write-read", func(b *testing.B) {
		c := benchForkCluster(b)
		f := c.Fork()
		read := func() {
			if f.TotalFreeMB() < 0 || f.IdleComputeCount() < 0 {
				b.Fatal("impossible ledger state")
			}
			if n := f.Node(NodeID(b.N % f.Len())); n.CapacityMB == 0 {
				b.Fatal("unpopulated node")
			}
		}
		if allocs := testing.AllocsPerRun(100, read); allocs != 0 {
			b.Fatalf("no-write read path allocated (%v allocs/op); the CoW fast path must stay free", allocs)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			read()
		}
	})

	// first-write: fork plus a single mutation — the branch's worst-case
	// first touch, which materialises the whole node slice and thaws the
	// written shard. Later writes to the same shard are ordinary.
	b.Run("first-write", func(b *testing.B) {
		c := benchForkCluster(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			f := c.Fork()
			if err := f.ReleaseLocal(0, 1); err != nil {
				b.Fatal(err)
			}
			nodes, thaws := f.CowStats()
			if nodes != 1 || thaws != 1 {
				b.Fatalf("first write: CowStats = (%d, %d), want (1, 1)", nodes, thaws)
			}
		}
	})
}
