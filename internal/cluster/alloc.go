package cluster

import "fmt"

// Lease records memory borrowed from a remote lender node on behalf of one
// compute node of a job.
type Lease struct {
	Lender NodeID
	MB     int64
}

// NodeAllocation is the memory a job holds for one of its compute nodes:
// some local DRAM plus zero or more remote leases.
type NodeAllocation struct {
	Node    NodeID
	LocalMB int64
	Leases  []Lease
}

// RemoteMB returns the total remote memory held via leases.
func (a *NodeAllocation) RemoteMB() int64 {
	var t int64
	for _, l := range a.Leases {
		t += l.MB
	}
	return t
}

// TotalMB returns local plus remote memory.
func (a *NodeAllocation) TotalMB() int64 { return a.LocalMB + a.RemoteMB() }

// LocalFraction returns the local share of the allocation in [0,1]. An empty
// allocation counts as fully local (no remote traffic).
func (a *NodeAllocation) LocalFraction() float64 {
	t := a.TotalMB()
	if t == 0 {
		return 1
	}
	return float64(a.LocalMB) / float64(t)
}

// JobAllocation is the complete memory placement of a running job.
type JobAllocation struct {
	Job     int
	PerNode []NodeAllocation
}

// TotalMB returns the job's total allocated memory across all its nodes.
func (ja *JobAllocation) TotalMB() int64 {
	var t int64
	for i := range ja.PerNode {
		t += ja.PerNode[i].TotalMB()
	}
	return t
}

// RemoteMB returns the job's total remote memory.
func (ja *JobAllocation) RemoteMB() int64 {
	var t int64
	for i := range ja.PerNode {
		t += ja.PerNode[i].RemoteMB()
	}
	return t
}

// NodeIDs returns the compute nodes of the job in allocation order.
func (ja *JobAllocation) NodeIDs() []NodeID {
	ids := make([]NodeID, len(ja.PerNode))
	for i := range ja.PerNode {
		ids[i] = ja.PerNode[i].Node
	}
	return ids
}

// Release returns every byte of the allocation to the cluster: local memory,
// leases, and the compute nodes themselves. It must be called exactly once
// per placed allocation (job finish, kill, or OOM restart).
func (ja *JobAllocation) Release(c *Cluster) error {
	for i := range ja.PerNode {
		na := &ja.PerNode[i]
		if err := c.ReleaseLocal(na.Node, na.LocalMB); err != nil {
			return fmt.Errorf("release job %d: %w", ja.Job, err)
		}
		for _, l := range na.Leases {
			if err := c.ReturnLend(l.Lender, l.MB); err != nil {
				return fmt.Errorf("release job %d: %w", ja.Job, err)
			}
		}
		if err := c.EndJob(na.Node); err != nil {
			return fmt.Errorf("release job %d: %w", ja.Job, err)
		}
		na.LocalMB = 0
		// Truncate rather than nil out: a re-placed allocation reuses the
		// lease capacity instead of re-growing it from scratch, so repeated
		// adjust/restart cycles stop churning slice allocations.
		na.Leases = na.Leases[:0]
	}
	return nil
}

// GrowLocal adds mb of local memory on the allocation's node i, updating
// both the cluster ledger and the allocation record.
func (ja *JobAllocation) GrowLocal(c *Cluster, i int, mb int64) error {
	if err := c.AllocLocal(ja.PerNode[i].Node, mb); err != nil {
		return err
	}
	ja.PerNode[i].LocalMB += mb
	return nil
}

// ShrinkLocal releases mb of local memory on the allocation's node i.
func (ja *JobAllocation) ShrinkLocal(c *Cluster, i int, mb int64) error {
	if ja.PerNode[i].LocalMB < mb {
		return ErrOverRelease
	}
	if err := c.ReleaseLocal(ja.PerNode[i].Node, mb); err != nil {
		return err
	}
	ja.PerNode[i].LocalMB -= mb
	return nil
}

// GrowRemote borrows mb from lender for the allocation's node i. Adjacent
// leases from the same lender are merged.
func (ja *JobAllocation) GrowRemote(c *Cluster, i int, lender NodeID, mb int64) error {
	if err := c.Lend(lender, mb); err != nil {
		return err
	}
	na := &ja.PerNode[i]
	for j := range na.Leases {
		if na.Leases[j].Lender == lender {
			na.Leases[j].MB += mb
			return nil
		}
	}
	na.Leases = append(na.Leases, Lease{Lender: lender, MB: mb})
	return nil
}

// ShrinkRemote returns up to mb of remote memory from the allocation's node
// i, releasing the most recently acquired leases first. It returns the
// amount actually returned (≤ mb, limited by what is held remotely).
func (ja *JobAllocation) ShrinkRemote(c *Cluster, i int, mb int64) (int64, error) {
	na := &ja.PerNode[i]
	var returned int64
	for mb > 0 && len(na.Leases) > 0 {
		last := &na.Leases[len(na.Leases)-1]
		take := min64(mb, last.MB)
		if err := c.ReturnLend(last.Lender, take); err != nil {
			return returned, err
		}
		last.MB -= take
		mb -= take
		returned += take
		if last.MB == 0 {
			na.Leases = na.Leases[:len(na.Leases)-1]
		}
	}
	return returned, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Clone returns a deep copy of the allocation for simulation forking: the
// fork's resize and release operations must not touch the original's
// per-node records or lease slices.
func (ja *JobAllocation) Clone() *JobAllocation {
	c := &JobAllocation{Job: ja.Job, PerNode: append([]NodeAllocation(nil), ja.PerNode...)}
	for i := range c.PerNode {
		c.PerNode[i].Leases = append([]Lease(nil), c.PerNode[i].Leases...)
	}
	return c
}
