package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// equalIDs reports whether two NodeID slices are byte-identical (same
// length, same IDs in the same order; nil and empty are equal).
func equalIDs(a, b []NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialIndexes drives a random but always-valid sequence of
// ledger operations (alloc/release/lend/return/start/end) and after every
// single op asserts that
//
//   - the index-backed LendersByFreeDesc returns byte-identical orderings
//     to the retained reference implementation, for empty and non-trivial
//     exclude sets,
//   - the bitset-backed IdleComputeNodes matches the reference rescan,
//   - the O(1) aggregates match their O(N) definitions, and
//   - CheckInvariants (which now cross-checks every index against the
//     ledger) still passes.
//
// This is the proof that the incremental indexes cannot change scheduling
// decisions: every consumer reads exactly the orderings the rescans
// produced.
func TestDifferentialIndexes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Mixed capacities so large/normal tie-breaks and the half-capacity
		// memory-node rule are both exercised.
		c := NewMixed(Config{Nodes: 24, Cores: 32, NormalMB: 4096, LargeFrac: 0.25})
		running := map[NodeID]bool{}
		for op := 0; op < 300; op++ {
			id := NodeID(rng.Intn(c.Len()))
			n := c.Node(id)
			switch rng.Intn(6) {
			case 0: // start a job on a compute-available node
				ids := c.IdleComputeNodes()
				if len(ids) == 0 {
					continue
				}
				id := ids[rng.Intn(len(ids))]
				if err := c.StartJob(id, op); err != nil {
					t.Logf("start: %v", err)
					return false
				}
				running[id] = true
			case 1: // end a running job (after dropping its local memory)
				if !running[id] {
					continue
				}
				if err := c.ReleaseLocal(id, n.LocalMB); err != nil {
					t.Logf("release-all: %v", err)
					return false
				}
				if err := c.EndJob(id); err != nil {
					t.Logf("end: %v", err)
					return false
				}
				delete(running, id)
			case 2: // alloc local on a running node
				if !running[id] || n.FreeMB() == 0 {
					continue
				}
				if err := c.AllocLocal(id, rng.Int63n(n.FreeMB())+1); err != nil {
					t.Logf("alloc: %v", err)
					return false
				}
			case 3: // release part of a local allocation
				if n.LocalMB == 0 {
					continue
				}
				if err := c.ReleaseLocal(id, rng.Int63n(n.LocalMB)+1); err != nil {
					t.Logf("release: %v", err)
					return false
				}
			case 4: // lend (any node with free memory may lend)
				if n.FreeMB() == 0 {
					continue
				}
				if err := c.Lend(id, rng.Int63n(n.FreeMB())+1); err != nil {
					t.Logf("lend: %v", err)
					return false
				}
			case 5: // return part of a lend
				if n.LentMB == 0 {
					continue
				}
				if err := c.ReturnLend(id, rng.Int63n(n.LentMB)+1); err != nil {
					t.Logf("return: %v", err)
					return false
				}
			}

			if err := c.CheckInvariants(); err != nil {
				t.Logf("op %d: invariants: %v", op, err)
				return false
			}
			exclude := map[NodeID]bool{}
			for k := 0; k < rng.Intn(4); k++ {
				exclude[NodeID(rng.Intn(c.Len()))] = true
			}
			// Copy before the second call: both share the scratch buffer.
			got := append([]NodeID(nil), c.LendersByFreeDesc(exclude)...)
			if want := c.lendersByFreeDescRef(exclude); !equalIDs(got, want) {
				t.Logf("op %d: lenders diverged\n got %v\nwant %v", op, got, want)
				return false
			}
			gotNone := append([]NodeID(nil), c.LendersByFreeDesc(nil)...)
			if want := c.lendersByFreeDescRef(nil); !equalIDs(gotNone, want) {
				t.Logf("op %d: lenders (no exclude) diverged", op)
				return false
			}
			gotIdle := append([]NodeID(nil), c.IdleComputeNodes()...)
			if want := c.idleComputeNodesRef(); !equalIDs(gotIdle, want) {
				t.Logf("op %d: idle set diverged\n got %v\nwant %v", op, gotIdle, want)
				return false
			}
			if c.IdleComputeCount() != len(gotIdle) {
				t.Logf("op %d: idle count %d != len %d", op, c.IdleComputeCount(), len(gotIdle))
				return false
			}
			gotN, gotL := c.IdleComputeSplit()
			if wantN, wantL := c.idleComputeSplitRef(); gotN != wantN || gotL != wantL {
				t.Logf("op %d: idle split (%d,%d) != ref (%d,%d)", op, gotN, gotL, wantN, wantL)
				return false
			}
			if gotN+gotL != len(gotIdle) {
				t.Logf("op %d: idle split sum %d != idle count %d", op, gotN+gotL, len(gotIdle))
				return false
			}
			var freeSum, allocSum int64
			busy := 0
			for _, node := range c.Nodes() {
				freeSum += node.FreeMB()
				allocSum += node.LocalMB + node.LentMB
				if node.RunningJob != NoJob {
					busy++
				}
			}
			if c.TotalFreeMB() != freeSum || c.TotalAllocatedMB() != allocSum || c.BusyNodes() != busy {
				t.Logf("op %d: aggregates diverged", op)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestAscendMatchesLenders checks the streaming walk yields the same
// sequence as the materialised slice, and that early termination works.
func TestAscendMatchesLenders(t *testing.T) {
	c := New(16, 32, 1000)
	for i := 0; i < 16; i++ {
		if err := c.Lend(NodeID(i), int64((i*271)%1000)); err != nil {
			t.Fatal(err)
		}
	}
	want := append([]NodeID(nil), c.LendersByFreeDesc(nil)...)
	var got []NodeID
	c.AscendLenders(func(id NodeID, free int64) bool {
		if free != c.Node(id).FreeMB() {
			t.Fatalf("node %d: yielded free %d, ledger %d", id, free, c.Node(id).FreeMB())
		}
		got = append(got, id)
		return true
	})
	if !equalIDs(got, want) {
		t.Fatalf("AscendLenders = %v, want %v", got, want)
	}

	var first3 []NodeID
	c.AscendLenders(func(id NodeID, _ int64) bool {
		first3 = append(first3, id)
		return len(first3) < 3
	})
	if !equalIDs(first3, want[:3]) {
		t.Fatalf("early-stop walk = %v, want %v", first3, want[:3])
	}

	// AscendFree includes empty nodes and visits every node exactly once.
	if err := c.ReturnLend(3, c.Node(3).LentMB); err != nil {
		t.Fatal(err)
	}
	if err := c.Lend(3, 1000); err != nil { // node 3 now has zero free
		t.Fatal(err)
	}
	seen := map[NodeID]bool{}
	prev := NodeID(-1)
	prevFree := int64(-1)
	c.AscendFree(func(id NodeID, free int64) bool {
		if seen[id] {
			t.Fatalf("node %d visited twice", id)
		}
		seen[id] = true
		if prevFree >= 0 && (free > prevFree || (free == prevFree && id < prev)) {
			t.Fatalf("order violation at node %d", id)
		}
		prev, prevFree = id, free
		return true
	})
	if len(seen) != c.Len() {
		t.Fatalf("AscendFree visited %d of %d nodes", len(seen), c.Len())
	}
}

// TestCapacityOrderIsStable checks the static capacity index against a
// direct computation on a mixed cluster.
func TestCapacityOrderIsStable(t *testing.T) {
	c := NewMixed(Config{Nodes: 10, Cores: 32, NormalMB: 1000, LargeFrac: 0.3})
	order := c.CapacityOrder()
	if len(order) != 10 {
		t.Fatalf("len = %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		ca, cb := c.Node(order[i-1]).CapacityMB, c.Node(order[i]).CapacityMB
		if ca > cb || (ca == cb && order[i-1] >= order[i]) {
			t.Fatalf("order violation at %d: %v", i, order)
		}
	}
}

// TestLeaseCapacityBounded is the allocation-churn regression test: over
// many grow/shrink/release cycles the lease slice of a node allocation must
// not keep growing — its capacity stays bounded by the maximum number of
// simultaneous lenders ever needed.
func TestLeaseCapacityBounded(t *testing.T) {
	c := New(9, 32, 1000)
	if err := c.StartJob(0, 1); err != nil {
		t.Fatal(err)
	}
	ja := &JobAllocation{Job: 1, PerNode: []NodeAllocation{{Node: 0}}}
	maxCap := 0
	for cycle := 0; cycle < 50; cycle++ {
		// Borrow a little from each of the 8 other nodes...
		for l := NodeID(1); l < 9; l++ {
			if err := ja.GrowRemote(c, 0, l, 10); err != nil {
				t.Fatal(err)
			}
		}
		// ...then return everything, truncating the lease slice.
		if _, err := ja.ShrinkRemote(c, 0, 8*10); err != nil {
			t.Fatal(err)
		}
		if got := cap(ja.PerNode[0].Leases); got > maxCap {
			if cycle > 0 {
				t.Fatalf("cycle %d: lease capacity grew from %d to %d", cycle, maxCap, got)
			}
			maxCap = got
		}
	}
	// Full release keeps the capacity for the next placement of this record.
	for l := NodeID(1); l < 9; l++ {
		if err := ja.GrowRemote(c, 0, l, 10); err != nil {
			t.Fatal(err)
		}
	}
	if err := ja.Release(c); err != nil {
		t.Fatal(err)
	}
	if got := cap(ja.PerNode[0].Leases); got != maxCap {
		t.Fatalf("Release dropped lease capacity: %d, want %d", got, maxCap)
	}
}

// BenchmarkLenderRank measures one ledger mutation plus a full lender
// ranking at paper scale (1490 nodes) — the unit of work the dynamic
// policy's grow path performs per adjustment tick.
func BenchmarkLenderRank(b *testing.B) {
	c := New(1490, 32, 65536)
	for i := 0; i < c.Len(); i++ {
		if err := c.Lend(NodeID(i), int64(i%64)*512); err != nil {
			b.Fatal(err)
		}
	}
	exclude := map[NodeID]bool{7: true, 300: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := NodeID(i % c.Len())
		if err := c.Lend(id, 256); err != nil {
			b.Fatal(err)
		}
		if got := c.LendersByFreeDesc(exclude); len(got) == 0 {
			b.Fatal("no lenders")
		}
		if err := c.ReturnLend(id, 256); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLenderRankFirstFit measures the streaming variant: mutate, then
// walk only until a 1 GB deficit is covered — the common case where the
// most-free lender suffices.
func BenchmarkLenderRankFirstFit(b *testing.B) {
	c := New(1490, 32, 65536)
	for i := 0; i < c.Len(); i++ {
		if err := c.Lend(NodeID(i), int64(i%64)*512); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := NodeID(i % c.Len())
		if err := c.Lend(id, 256); err != nil {
			b.Fatal(err)
		}
		need := int64(1024)
		c.AscendLenders(func(_ NodeID, free int64) bool {
			if free > need {
				free = need
			}
			need -= free
			return need > 0
		})
		if need != 0 {
			b.Fatal("deficit not covered")
		}
		if err := c.ReturnLend(id, 256); err != nil {
			b.Fatal(err)
		}
	}
}
