package cluster

import "math/bits"

// This file implements the incrementally maintained indexes that replace the
// full-cluster rescans on the simulator's hot paths:
//
//   - freeIndex: a treap over all nodes keyed by (free memory descending,
//     node ID ascending) — exactly the order LendersByFreeDesc and the
//     static-placement candidate sort used to produce with a fresh sort per
//     call. Every ledger operation that changes a node's free memory
//     repositions that one node in O(log N) expected time, so ranking
//     lenders becomes an in-order walk instead of an O(N log N) rebuild.
//   - idleSet: a bitset of compute-available nodes maintained by
//     StartJob/EndJob and by the lending operations (lending more than half
//     a node's capacity flips it to a memory node), making the
//     idle-compute-count check O(1) and enumeration O(N/64).
//
// Determinism matters more than speed here: the treap's heap priorities are
// a fixed hash of the node ID, so the tree shape — and therefore every
// traversal — depends only on the ledger state, never on insertion history
// or randomness. The reference implementations the indexes replaced are
// retained in cluster.go (lendersByFreeDescRef, idleComputeNodesRef) and the
// differential tests assert byte-identical orderings against them.

const nilIdx = int32(-1)

// splitmix64 is the fixed per-node priority hash (Steele et al., the
// SplitMix64 finaliser). Any fixed bijective mixer works; this one has no
// short cycles and is cheap.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// freeIndex is a treap over one shard's dense local index space
// [0, len(key)). All nodes are always present; a node's key is the
// free-memory value it was last filed under. Storage is flat arrays indexed
// by the shard-local node index, so the index allocates nothing after
// construction. The owning shard translates local indices to global node
// IDs by adding its base; within a shard local order and global ID order
// coincide, so the comparator below still realises (free desc, ID asc).
type freeIndex struct {
	key   []int64 // free MB the node is currently filed under
	prio  []uint64
	left  []int32
	right []int32
	root  int32
	stack []int32 // iterative-traversal scratch, reused across walks
}

// init builds the treap. base is the owning shard's first global node ID:
// priorities hash the global ID, so the tree shape for a node set depends
// only on which nodes it holds, never on the shard layout history.
//
//dmp:cowsafe
func (ix *freeIndex) init(frees []int64, base int) {
	n := len(frees)
	ix.key = make([]int64, n)
	ix.prio = make([]uint64, n)
	ix.left = make([]int32, n)
	ix.right = make([]int32, n)
	ix.root = nilIdx
	for i := 0; i < n; i++ {
		ix.prio[i] = splitmix64(uint64(base+i) + 1)
		ix.key[i] = frees[i]
	}
	for i := 0; i < n; i++ {
		ix.root = ix.insertAt(ix.root, int32(i))
	}
}

// before reports whether node a orders before node b: larger free memory
// first, ties by ascending ID — the exact comparator of the retired sort.
func (ix *freeIndex) before(a, b int32) bool {
	if ix.key[a] != ix.key[b] {
		return ix.key[a] > ix.key[b]
	}
	return a < b
}

// insertAt, removeAt, and merge are the treap's structural mutators. They
// write the key/left/right arrays, which a cluster fork shares copy-on-write
// until thawed; every call chain starts at a Cluster method that privatised
// the shard first (own → materialize → thaw), so writing here is safe.
//
//dmp:cowsafe
func (ix *freeIndex) insertAt(root, n int32) int32 {
	if root == nilIdx {
		ix.left[n], ix.right[n] = nilIdx, nilIdx
		return n
	}
	if ix.before(n, root) {
		l := ix.insertAt(ix.left[root], n)
		ix.left[root] = l
		if ix.prio[l] > ix.prio[root] { // rotate right
			ix.left[root] = ix.right[l]
			ix.right[l] = root
			return l
		}
		return root
	}
	r := ix.insertAt(ix.right[root], n)
	ix.right[root] = r
	if ix.prio[r] > ix.prio[root] { // rotate left
		ix.right[root] = ix.left[r]
		ix.left[r] = root
		return r
	}
	return root
}

//dmp:cowsafe
func (ix *freeIndex) removeAt(root, n int32) int32 {
	if root == nilIdx {
		panic("cluster: freeIndex: removing a node that is not filed")
	}
	if root == n {
		return ix.merge(ix.left[n], ix.right[n])
	}
	if ix.before(n, root) {
		ix.left[root] = ix.removeAt(ix.left[root], n)
	} else {
		ix.right[root] = ix.removeAt(ix.right[root], n)
	}
	return root
}

//dmp:cowsafe
func (ix *freeIndex) merge(l, r int32) int32 {
	if l == nilIdx {
		return r
	}
	if r == nilIdx {
		return l
	}
	if ix.prio[l] > ix.prio[r] {
		ix.right[l] = ix.merge(ix.right[l], r)
		return l
	}
	ix.left[r] = ix.merge(l, ix.left[r])
	return r
}

// update refiles local node n under its new free-memory key: O(log N/S)
// expected in the shard size. Callers hold shard ownership (see insertAt).
//
//dmp:cowsafe
func (ix *freeIndex) update(n int32, newFree int64) {
	if ix.key[n] == newFree {
		return
	}
	ix.root = ix.removeAt(ix.root, n)
	ix.key[n] = newFree
	ix.root = ix.insertAt(ix.root, n)
}

// ascend walks all nodes in (free desc, local index asc) order, stopping
// early when yield returns false. The walk is allocation-free after the
// stack scratch has grown once. The ledger must not be mutated during the
// walk.
func (ix *freeIndex) ascend(yield func(local int32, free int64) bool) {
	st := ix.stack[:0]
	cur := ix.root
	for cur != nilIdx || len(st) > 0 {
		for cur != nilIdx {
			st = append(st, cur)
			cur = ix.left[cur]
		}
		cur = st[len(st)-1]
		st = st[:len(st)-1]
		if !yield(cur, ix.key[cur]) { //dmplint:ignore hotpath-reach yield is the caller's iterator body; every in-tree caller passes a prebuilt non-allocating visitor
			break
		}
		cur = ix.right[cur]
	}
	ix.stack = st[:0]
}

// freeIter is a pull-based in-order iterator over one shard's treap, the
// building block of the cross-shard merge walk. Unlike ascend it yields one
// node per next call, so an S-way merge can interleave shards while
// preserving the global (free desc, ID asc) order. The stack scratch
// persists across walks; the ledger must not be mutated mid-iteration.
type freeIter struct {
	ix    *freeIndex
	stack []int32
	head  int32 // most recently yielded node (maintained by the merge)
}

// init points the iterator at the treap's in-order start.
//
//dmp:hotpath
func (it *freeIter) init(ix *freeIndex) {
	it.ix = ix
	st := it.stack[:0]
	for cur := ix.root; cur != nilIdx; cur = ix.left[cur] {
		st = append(st, cur)
	}
	it.stack = st
}

// next yields the next local node index in (free desc, index asc) order.
//
//dmp:hotpath
func (it *freeIter) next() (int32, bool) {
	st := it.stack
	if len(st) == 0 {
		return 0, false
	}
	n := st[len(st)-1]
	st = st[:len(st)-1]
	for cur := it.ix.right[n]; cur != nilIdx; cur = it.ix.left[cur] {
		st = append(st, cur)
	}
	it.stack = st
	return n, true
}

// idleSet tracks compute-available nodes as a bitset with a running count.
type idleSet struct {
	bits  []uint64
	count int
}

func (s *idleSet) init(n int) {
	s.bits = make([]uint64, (n+63)/64)
	s.count = 0
}

// setTo files node i's availability bit and returns the membership delta
// (+1 joined, −1 left, 0 unchanged) so callers can maintain derived counts —
// the per-capacity-class split feeding the O(1) resource summary — without a
// second bit probe. The bits array is CoW-shared after a fork; callers reach
// here only through Cluster methods that privatised the shard first.
//
//dmp:cowsafe
func (s *idleSet) setTo(i int, avail bool) int {
	w, mask := i>>6, uint64(1)<<uint(i&63)
	has := s.bits[w]&mask != 0
	if avail == has {
		return 0
	}
	if avail {
		s.bits[w] |= mask
		s.count++
		return 1
	}
	s.bits[w] &^= mask
	s.count--
	return -1
}

// appendIDs appends the set members to dst in ascending ID order, offset by
// the owning shard's base.
func (s *idleSet) appendIDs(dst []NodeID, base int) []NodeID {
	for w, word := range s.bits {
		wbase := base + w<<6
		for word != 0 {
			dst = append(dst, NodeID(wbase+bits.TrailingZeros64(word)))
			word &= word - 1
		}
	}
	return dst
}
