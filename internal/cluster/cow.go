package cluster

// This file implements copy-on-write forking of the cluster ledger, the
// foundation of simulation snapshots and what-if branching.
//
// A fork is O(S) in the shard count: both sides of the fork keep the exact
// same index arrays (treap key/left/right, idle bitset, node ledger slice)
// and merely mark them shared. The first mutation on either side copies the
// touched structure — the whole node slice once, and each shard's mutable
// index arrays on first touch — so a branch that diverges late pays only for
// the shards it actually dirties. Treap priorities are a pure function of
// the global node ID and never change after construction, so they are shared
// by every fork forever.
//
// Safety model: frozen (shared) arrays are only ever read. Every writer —
// base or fork, any number of generations deep — copies a structure before
// its first write to it, so concurrent branches never race as long as the
// fork itself happens before the branches start running. Per-walk scratch
// (treap stacks, merge iterators, result buffers) is never shared: the fork
// starts with fresh scratch and regrows it on first use.
//
// The mutation discipline is enforced statically: every ledger write path
// must go through own() (see the dmplint cowalias analyzer), which is the
// single place the shared→private transition happens.

// cowState is the per-Cluster fork bookkeeping. It lives in its own struct
// so Fork can reset the fork-local counters with one assignment.
type cowState struct {
	// active is true while any structure is still shared with another
	// fork; it is the only field the mutation fast path reads.
	active bool

	nodesShared bool   // node ledger slice shared with another fork
	shardShared []bool // per shard: index arrays shared with another fork
	sharedLeft  int    // shards still shared (incl. the node slice? no: shards only)

	// Copy counters, reported via CowStats and surfaced as branch
	// telemetry: how much of the snapshot this fork actually paid for.
	nodeCopies int64 // node-slice copies performed (0 or 1)
	shardThaws int64 // shards whose index arrays were privatised
}

// Fork returns an independent copy-on-write branch of the cluster in O(S):
// no node or index data is copied. Both the receiver and the returned branch
// keep reading the now-frozen arrays; whichever side mutates a structure
// first pays a one-time copy of that structure (the node slice, or one
// shard's treap/bitset arrays). Any number of forks may be taken, including
// forks of forks; all of them may run concurrently afterwards.
func (c *Cluster) Fork() *Cluster {
	f := &Cluster{}
	*f = *c
	// Each side owns its shard headers and aggregates (freeMB, lentMB,
	// lender/idle counts are plain struct fields), but the array backing of
	// the treaps and bitsets stays shared until thawed.
	f.shards = append([]shardIx(nil), c.shards...)
	// Scratch is never shared across forks: the branch regrows its own.
	for i := range f.shards {
		f.shards[i].free.stack = nil
	}
	f.mergeIts = make([]freeIter, len(f.shards))
	f.mergeHeap = nil
	f.lendersBuf = nil
	f.idleBuf = nil
	// Mark everything shared on both sides; the first writer copies.
	c.markShared()
	f.cow = cowState{
		active:      true,
		nodesShared: true,
		shardShared: make([]bool, len(f.shards)),
		sharedLeft:  len(f.shards),
	}
	for i := range f.cow.shardShared {
		f.cow.shardShared[i] = true
	}
	return f
}

// Snapshot is Fork under the name the branching literature uses: an O(S)
// frozen copy of the ledger. The receiver stays usable (its next write
// privatises the touched structure, exactly like the returned branch).
func (c *Cluster) Snapshot() *Cluster { return c.Fork() }

// markShared flags every mutable index structure on the receiver as shared.
// Earlier thaw progress is discarded: after a new fork every structure is
// frozen again, because the new branch now reads the receiver's arrays.
func (c *Cluster) markShared() {
	c.cow.active = true
	c.cow.nodesShared = true
	if c.cow.shardShared == nil {
		c.cow.shardShared = make([]bool, len(c.shards))
	}
	for i := range c.cow.shardShared {
		c.cow.shardShared[i] = true
	}
	c.cow.sharedLeft = len(c.shards)
}

// CowStats reports how many copy-on-write materialisations this cluster has
// performed since it was created or last forked: whole-node-slice copies
// (at most one per fork generation) and per-shard index thaws. The branch
// telemetry reports these so a what-if run can show how little of the
// snapshot it touched.
func (c *Cluster) CowStats() (nodeCopies, shardThaws int64) {
	return c.cow.nodeCopies, c.cow.shardThaws
}

// own returns node id's ledger row for writing, materialising any structure
// still shared with another fork first. This is the only shared→private
// transition point; every mutating ledger operation goes through it (the
// dmplint cowalias analyzer enforces this). On an unforked cluster it is one
// predictable branch.
//
//dmp:hotpath
func (c *Cluster) own(id NodeID) *Node {
	if c.cow.active {
		c.materialize(int(id) / c.shardSize)
	}
	return &c.nodes[id]
}

// materialize privatises the node slice (once per fork generation) and shard
// s's index arrays (once per shard per generation). Kept out of own so the
// no-fork fast path stays a branch over a single bool.
func (c *Cluster) materialize(s int) {
	if c.cow.nodesShared {
		c.nodes = append([]Node(nil), c.nodes...)
		c.cow.nodesShared = false
		c.cow.nodeCopies++
	}
	if c.cow.shardShared[s] {
		c.thaw(s)
	}
	if c.cow.sharedLeft == 0 && !c.cow.nodesShared {
		c.cow.active = false
	}
}

// thaw copies shard s's mutable index arrays — treap key and child links,
// idle bitset — so this fork can write them. Priorities are immutable and
// stay shared; traversal scratch was already private.
func (c *Cluster) thaw(s int) {
	sh := &c.shards[s]
	sh.free.key = append([]int64(nil), sh.free.key...)
	sh.free.left = append([]int32(nil), sh.free.left...)
	sh.free.right = append([]int32(nil), sh.free.right...)
	sh.idle.bits = append([]uint64(nil), sh.idle.bits...)
	c.cow.shardShared[s] = false
	c.cow.sharedLeft--
	c.cow.shardThaws++
}
