// Package cluster models an HPC cluster whose node memory can be
// disaggregated: any node may lend part of its DRAM to jobs running on other
// nodes, forming a system-wide memory pool.
//
// The model follows Zacarias et al. (ICPADS'21 / SC-W'23):
//
//   - Node allocation is exclusive: a node runs at most one job, which owns
//     all of the node's cores.
//   - A node may lend free memory to remote jobs. While the total it has
//     lent is at most half of its capacity it may still start new jobs;
//     beyond that it temporarily becomes a memory node that can lend but not
//     compute.
//   - All quantities are tracked in MB.
package cluster

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node within a Cluster (dense, 0-based).
type NodeID int

// NoJob marks a node as idle.
const NoJob = -1

// Node is the per-node ledger. All fields are maintained by Cluster methods;
// callers must treat them as read-only.
type Node struct {
	ID         NodeID
	Cores      int
	CapacityMB int64 // physical DRAM on the node

	LocalMB    int64 // memory allocated to the job running on this node
	LentMB     int64 // memory lent to jobs running on other nodes
	RunningJob int   // job occupying this node's cores, or NoJob
}

// FreeMB returns the node's unallocated physical memory.
func (n *Node) FreeMB() int64 { return n.CapacityMB - n.LocalMB - n.LentMB }

// IsComputeAvailable reports whether the node can start a new job: it must
// be idle and must not have lent more than half its capacity.
func (n *Node) IsComputeAvailable() bool {
	return n.RunningJob == NoJob && n.LentMB <= n.CapacityMB/2
}

// IsMemoryNode reports whether the node has lent more than half its capacity
// and is therefore temporarily compute-unavailable.
func (n *Node) IsMemoryNode() bool { return n.LentMB > n.CapacityMB/2 }

// Errors returned by ledger operations.
var (
	ErrInsufficientMemory = errors.New("cluster: insufficient free memory")
	ErrNodeBusy           = errors.New("cluster: node already running a job")
	ErrNodeIdle           = errors.New("cluster: node is not running a job")
	ErrNegativeAmount     = errors.New("cluster: negative memory amount")
	ErrOverRelease        = errors.New("cluster: releasing more than allocated")
)

// Cluster owns the node ledgers and enforces the accounting invariants.
type Cluster struct {
	nodes []Node
}

// Config describes a cluster to build: Normal-capacity and Large-capacity
// (double) nodes, as in the paper's Table 4.
type Config struct {
	Nodes     int   // total node count
	Cores     int   // cores per node
	NormalMB  int64 // capacity of a normal node
	LargeFrac float64
}

// New builds a cluster of n homogeneous nodes.
func New(n, cores int, capacityMB int64) *Cluster {
	c := &Cluster{nodes: make([]Node, n)}
	for i := range c.nodes {
		c.nodes[i] = Node{ID: NodeID(i), Cores: cores, CapacityMB: capacityMB, RunningJob: NoJob}
	}
	return c
}

// NewMixed builds a cluster per Config: the first round(LargeFrac·Nodes)
// nodes are large (2× NormalMB), the rest normal. The paper sweeps LargeFrac
// over {0, 0.15, 0.25, 0.50, 0.75, 1.0}.
func NewMixed(cfg Config) *Cluster {
	c := &Cluster{nodes: make([]Node, cfg.Nodes)}
	nLarge := int(float64(cfg.Nodes)*cfg.LargeFrac + 0.5)
	for i := range c.nodes {
		cap := cfg.NormalMB
		if i < nLarge {
			cap = 2 * cfg.NormalMB
		}
		c.nodes[i] = Node{ID: NodeID(i), Cores: cfg.Cores, CapacityMB: cap, RunningJob: NoJob}
	}
	return c
}

// Len returns the number of nodes.
func (c *Cluster) Len() int { return len(c.nodes) }

// Node returns the ledger for id. The returned pointer stays valid for the
// cluster's lifetime but must be treated as read-only.
func (c *Cluster) Node(id NodeID) *Node { return &c.nodes[id] }

// Nodes returns the node slice for iteration (read-only).
func (c *Cluster) Nodes() []Node { return c.nodes }

// TotalCapacityMB returns the sum of node capacities.
func (c *Cluster) TotalCapacityMB() int64 {
	var t int64
	for i := range c.nodes {
		t += c.nodes[i].CapacityMB
	}
	return t
}

// TotalFreeMB returns the total unallocated memory across all nodes.
func (c *Cluster) TotalFreeMB() int64 {
	var t int64
	for i := range c.nodes {
		t += c.nodes[i].FreeMB()
	}
	return t
}

// TotalAllocatedMB returns the total memory currently allocated (local on
// compute nodes plus lent to remote jobs).
func (c *Cluster) TotalAllocatedMB() int64 {
	var t int64
	for i := range c.nodes {
		t += c.nodes[i].LocalMB + c.nodes[i].LentMB
	}
	return t
}

// IdleComputeNodes returns the IDs of nodes able to start a new job,
// in ascending ID order.
func (c *Cluster) IdleComputeNodes() []NodeID {
	var ids []NodeID
	for i := range c.nodes {
		if c.nodes[i].IsComputeAvailable() {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}

// BusyNodes returns the number of nodes currently running a job.
func (c *Cluster) BusyNodes() int {
	n := 0
	for i := range c.nodes {
		if c.nodes[i].RunningJob != NoJob {
			n++
		}
	}
	return n
}

// StartJob marks node id as running job. It fails if the node is busy.
func (c *Cluster) StartJob(id NodeID, job int) error {
	n := &c.nodes[id]
	if n.RunningJob != NoJob {
		return fmt.Errorf("%w: node %d runs job %d", ErrNodeBusy, id, n.RunningJob)
	}
	n.RunningJob = job
	return nil
}

// EndJob marks node id idle. It fails if the node was not running a job.
func (c *Cluster) EndJob(id NodeID) error {
	n := &c.nodes[id]
	if n.RunningJob == NoJob {
		return fmt.Errorf("%w: node %d", ErrNodeIdle, id)
	}
	n.RunningJob = NoJob
	return nil
}

// AllocLocal reserves mb of node id's own DRAM for the job running on it.
func (c *Cluster) AllocLocal(id NodeID, mb int64) error {
	if mb < 0 {
		return ErrNegativeAmount
	}
	n := &c.nodes[id]
	if n.FreeMB() < mb {
		return fmt.Errorf("%w: node %d free %d MB, need %d MB", ErrInsufficientMemory, id, n.FreeMB(), mb)
	}
	n.LocalMB += mb
	return nil
}

// ReleaseLocal returns mb of local memory on node id to the free pool.
func (c *Cluster) ReleaseLocal(id NodeID, mb int64) error {
	if mb < 0 {
		return ErrNegativeAmount
	}
	n := &c.nodes[id]
	if n.LocalMB < mb {
		return fmt.Errorf("%w: node %d local %d MB, release %d MB", ErrOverRelease, id, n.LocalMB, mb)
	}
	n.LocalMB -= mb
	return nil
}

// Lend reserves mb of node id's DRAM for a job running elsewhere. Lending is
// allowed regardless of the half-capacity rule — that rule only gates
// starting new jobs on the lender.
func (c *Cluster) Lend(id NodeID, mb int64) error {
	if mb < 0 {
		return ErrNegativeAmount
	}
	n := &c.nodes[id]
	if n.FreeMB() < mb {
		return fmt.Errorf("%w: node %d free %d MB, lend %d MB", ErrInsufficientMemory, id, n.FreeMB(), mb)
	}
	n.LentMB += mb
	return nil
}

// ReturnLend gives back mb of memory previously lent by node id.
func (c *Cluster) ReturnLend(id NodeID, mb int64) error {
	if mb < 0 {
		return ErrNegativeAmount
	}
	n := &c.nodes[id]
	if n.LentMB < mb {
		return fmt.Errorf("%w: node %d lent %d MB, return %d MB", ErrOverRelease, id, n.LentMB, mb)
	}
	n.LentMB -= mb
	return nil
}

// LendersByFreeDesc returns the IDs of all nodes with free memory, sorted by
// free memory descending (ties by ascending ID), excluding the nodes in
// exclude. The static policy borrows from the most-free nodes first to
// minimise the number of lenders per job.
func (c *Cluster) LendersByFreeDesc(exclude map[NodeID]bool) []NodeID {
	var ids []NodeID
	for i := range c.nodes {
		id := NodeID(i)
		if exclude[id] {
			continue
		}
		if c.nodes[i].FreeMB() > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		fa, fb := c.nodes[ids[a]].FreeMB(), c.nodes[ids[b]].FreeMB()
		if fa != fb {
			return fa > fb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// CheckInvariants verifies the ledger is consistent; it returns the first
// violation found, or nil. Tests and the simulator's debug mode call this.
func (c *Cluster) CheckInvariants() error {
	for i := range c.nodes {
		n := &c.nodes[i]
		if n.LocalMB < 0 || n.LentMB < 0 {
			return fmt.Errorf("node %d: negative ledger (local=%d lent=%d)", i, n.LocalMB, n.LentMB)
		}
		if n.LocalMB+n.LentMB > n.CapacityMB {
			return fmt.Errorf("node %d: overcommitted (local=%d lent=%d cap=%d)",
				i, n.LocalMB, n.LentMB, n.CapacityMB)
		}
		if n.RunningJob == NoJob && n.LocalMB != 0 {
			return fmt.Errorf("node %d: idle but has %d MB local allocation", i, n.LocalMB)
		}
	}
	return nil
}
