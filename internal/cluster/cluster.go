// Package cluster models an HPC cluster whose node memory can be
// disaggregated: any node may lend part of its DRAM to jobs running on other
// nodes, forming a system-wide memory pool.
//
// The model follows Zacarias et al. (ICPADS'21 / SC-W'23):
//
//   - Node allocation is exclusive: a node runs at most one job, which owns
//     all of the node's cores.
//   - A node may lend free memory to remote jobs. While the total it has
//     lent is at most half of its capacity it may still start new jobs;
//     beyond that it temporarily becomes a memory node that can lend but not
//     compute.
//   - All quantities are tracked in MB.
package cluster

import (
	"errors"
	"fmt"
	"sort"
)

// NodeID identifies a node within a Cluster (dense, 0-based).
type NodeID int

// NoJob marks a node as idle.
const NoJob = -1

// Node is the per-node ledger. All fields are maintained by Cluster methods;
// callers must treat them as read-only.
type Node struct {
	ID         NodeID
	Cores      int
	CapacityMB int64 // physical DRAM on the node

	LocalMB    int64 // memory allocated to the job running on this node
	LentMB     int64 // memory lent to jobs running on other nodes
	RunningJob int   // job occupying this node's cores, or NoJob
}

// FreeMB returns the node's unallocated physical memory.
func (n *Node) FreeMB() int64 { return n.CapacityMB - n.LocalMB - n.LentMB }

// IsComputeAvailable reports whether the node can start a new job: it must
// be idle and must not have lent more than half its capacity.
func (n *Node) IsComputeAvailable() bool {
	return n.RunningJob == NoJob && n.LentMB <= n.CapacityMB/2
}

// IsMemoryNode reports whether the node has lent more than half its capacity
// and is therefore temporarily compute-unavailable.
func (n *Node) IsMemoryNode() bool { return n.LentMB > n.CapacityMB/2 }

// Errors returned by ledger operations.
var (
	ErrInsufficientMemory = errors.New("cluster: insufficient free memory")
	ErrNodeBusy           = errors.New("cluster: node already running a job")
	ErrNodeIdle           = errors.New("cluster: node is not running a job")
	ErrNegativeAmount     = errors.New("cluster: negative memory amount")
	ErrOverRelease        = errors.New("cluster: releasing more than allocated")
)

// Cluster owns the node ledgers and enforces the accounting invariants.
//
// Alongside the flat ledger it maintains incremental indexes (see index.go):
// an ordered free-memory treap, a compute-available bitset, a static
// capacity ordering, and O(1) running aggregates. Every mutating method
// keeps them in sync, so the placement and dynamic-adjustment hot paths read
// them instead of rescanning the node slice.
type Cluster struct {
	nodes []Node

	// The node ID space is partitioned into contiguous shards (see
	// shard.go), each with its own free-memory treap, idle bitset, and
	// aggregate summary. shardSize is the owned range of every shard but
	// the last. With one shard (the default) the layout and every walk are
	// exactly the pre-sharding single-treap ledger.
	shards    []shardIx
	shardSize int
	mergeIts  []freeIter // per-shard merge iterators, persistent scratch
	mergeHeap []int32    // merge-heap scratch (shard indices)

	capOrder []NodeID // node IDs sorted by (CapacityMB asc, ID asc); immutable

	// All mutable running aggregates (free, lent, idle counts, idle
	// capacity-class split) live on the shards; the cluster-level getters
	// sum over them in O(S). Only capTotal (immutable), busy (never
	// touched by memory-only operations) and largeMB (immutable) stay
	// global — this is what lets disjoint-shard memory adjustments run
	// concurrently without sharing a single counter.
	capTotal int64
	busy     int

	// largeMB is the capacity-class threshold: a node with
	// CapacityMB > largeMB is "large" in the idle-split summary.
	largeMB int64

	lendersBuf []NodeID // scratch returned by LendersByFreeDesc
	idleBuf    []NodeID // scratch returned by IdleComputeNodes

	// cow tracks which structures are frozen because another fork still
	// reads them (see cow.go). Zero value = nothing shared.
	cow cowState
}

// initIndexes builds the incremental indexes from the freshly constructed
// node slice, partitioned into nShards contiguous shards. Nodes start idle
// and empty, so free == capacity everywhere.
func (c *Cluster) initIndexes(nShards int) {
	n := len(c.nodes)
	if nShards < 1 {
		nShards = 1
	}
	if nShards > n {
		nShards = n
	}
	c.shardSize = (n + nShards - 1) / nShards
	nShards = (n + c.shardSize - 1) / c.shardSize // drop empty tail shards
	c.shards = make([]shardIx, nShards)
	c.mergeIts = make([]freeIter, nShards)
	c.capOrder = make([]NodeID, n)
	for i := range c.nodes {
		c.capTotal += c.nodes[i].CapacityMB
		c.capOrder[i] = NodeID(i)
	}
	for s := range c.shards {
		sh := &c.shards[s]
		sh.base = s * c.shardSize
		sh.n = minInt(c.shardSize, n-sh.base)
		frees := make([]int64, sh.n)
		for i := 0; i < sh.n; i++ {
			node := &c.nodes[sh.base+i]
			frees[i] = node.FreeMB()
			sh.freeMB += frees[i]
			sh.lentMB += node.LentMB
			if frees[i] > 0 {
				sh.lenders++
			}
		}
		sh.free.init(frees, sh.base)
		sh.idle.init(sh.n)
		for i := 0; i < sh.n; i++ {
			if d := sh.idle.setTo(i, c.nodes[sh.base+i].IsComputeAvailable()); d != 0 {
				c.bumpIdleSplit(sh, sh.base+i, d)
			}
		}
	}
	sort.Slice(c.capOrder, func(a, b int) bool {
		ca, cb := c.nodes[c.capOrder[a]].CapacityMB, c.nodes[c.capOrder[b]].CapacityMB
		if ca != cb {
			return ca < cb
		}
		return c.capOrder[a] < c.capOrder[b]
	})
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// reindexMem refiles node n in its shard's free-memory index and folds the
// delta into the shard and cluster aggregates. delta is the change in
// allocated memory (positive = memory taken).
//
//dmp:hotpath
func (c *Cluster) reindexMem(n *Node, delta int64) {
	sh := &c.shards[int(n.ID)/c.shardSize]
	sh.freeMB -= delta
	sh.refile(int32(int(n.ID)-sh.base), n.FreeMB())
}

// reindexIdle refreshes node n's compute-availability bit and the
// capacity-class split counts.
//
//dmp:hotpath
func (c *Cluster) reindexIdle(n *Node) {
	sh := &c.shards[int(n.ID)/c.shardSize]
	if d := sh.idle.setTo(int(n.ID)-sh.base, n.IsComputeAvailable()); d != 0 {
		c.bumpIdleSplit(sh, int(n.ID), d)
	}
}

// bumpIdleSplit folds an idle-set membership delta into the shard's
// per-class counts.
func (c *Cluster) bumpIdleSplit(sh *shardIx, i, delta int) {
	if c.nodes[i].CapacityMB > c.largeMB {
		sh.idleLarge += delta
	} else {
		sh.idleNormal += delta
	}
}

// Config describes a cluster to build: Normal-capacity and Large-capacity
// (double) nodes, as in the paper's Table 4.
type Config struct {
	Nodes     int   // total node count
	Cores     int   // cores per node
	NormalMB  int64 // capacity of a normal node
	LargeFrac float64
	// Shards partitions the ledger indexes into this many contiguous
	// shards (see shard.go). 0 or 1 keeps the single-shard layout, which
	// is bit-identical to the pre-sharding ledger; values above Nodes are
	// clamped. Results are identical for every shard count — only the
	// index update and scan costs change.
	Shards int
}

// New builds a single-shard cluster of n homogeneous nodes. All nodes count
// as "normal" in the idle-split summary: the large class is defined as
// capacity above the normal size, and a homogeneous cluster has none.
func New(n, cores int, capacityMB int64) *Cluster {
	return NewSharded(n, cores, capacityMB, 1)
}

// NewSharded is New with an explicit ledger shard count. The node array it
// fills is freshly allocated and unshared: no fork can exist before the
// constructor returns.
//
//dmp:cowsafe
func NewSharded(n, cores int, capacityMB int64, shards int) *Cluster {
	c := &Cluster{nodes: make([]Node, n), largeMB: capacityMB}
	for i := range c.nodes {
		c.nodes[i] = Node{ID: NodeID(i), Cores: cores, CapacityMB: capacityMB, RunningJob: NoJob}
	}
	c.initIndexes(shards)
	return c
}

// NewMixed builds a cluster per Config: the first round(LargeFrac·Nodes)
// nodes are large (2× NormalMB), the rest normal. The paper sweeps LargeFrac
// over {0, 0.15, 0.25, 0.50, 0.75, 1.0}. Like NewSharded, it writes a node
// array no fork can share yet.
//
//dmp:cowsafe
func NewMixed(cfg Config) *Cluster {
	c := &Cluster{nodes: make([]Node, cfg.Nodes), largeMB: cfg.NormalMB}
	nLarge := int(float64(cfg.Nodes)*cfg.LargeFrac + 0.5)
	for i := range c.nodes {
		cap := cfg.NormalMB
		if i < nLarge {
			cap = 2 * cfg.NormalMB
		}
		c.nodes[i] = Node{ID: NodeID(i), Cores: cfg.Cores, CapacityMB: cap, RunningJob: NoJob}
	}
	c.initIndexes(cfg.Shards)
	return c
}

// Len returns the number of nodes.
func (c *Cluster) Len() int { return len(c.nodes) }

// Node returns the ledger for id. The returned pointer must be treated as
// read-only and must not be retained across mutating operations: on a forked
// cluster (see cow.go) the first mutation replaces the node slice, leaving
// old pointers reading the frozen pre-fork state.
func (c *Cluster) Node(id NodeID) *Node { return &c.nodes[id] }

// Nodes returns the node slice for iteration (read-only; same retention
// caveat as Node).
func (c *Cluster) Nodes() []Node { return c.nodes }

// TotalCapacityMB returns the sum of node capacities (O(1), cached at
// construction — capacities never change).
func (c *Cluster) TotalCapacityMB() int64 { return c.capTotal }

// TotalFreeMB returns the total unallocated memory across all nodes: the
// integer-exact sum of the per-shard aggregates, O(S) with S ≤ 64 — no
// ledger rescan.
func (c *Cluster) TotalFreeMB() int64 {
	var free int64
	for i := range c.shards {
		free += c.shards[i].freeMB
	}
	return free
}

// TotalAllocatedMB returns the total memory currently allocated (local on
// compute nodes plus lent to remote jobs): per node,
// local + lent == capacity − free, so the total is the capacity total minus
// the free total.
func (c *Cluster) TotalAllocatedMB() int64 { return c.capTotal - c.TotalFreeMB() }

// TotalLentMB returns the total memory currently lent to remote jobs across
// all nodes (O(S) over the per-shard aggregates maintained by
// Lend/ReturnLend). The telemetry sampler reads it every tick, so it must
// not rescan the ledger.
func (c *Cluster) TotalLentMB() int64 {
	var lent int64
	for i := range c.shards {
		lent += c.shards[i].lentMB
	}
	return lent
}

// IdleComputeNodes returns the IDs of nodes able to start a new job, in
// ascending ID order. The returned slice is a scratch buffer owned by the
// cluster: it is valid until the next IdleComputeNodes call and must not be
// retained or mutated.
func (c *Cluster) IdleComputeNodes() []NodeID {
	// Shards own contiguous ascending ID ranges, so concatenating the
	// per-shard bitset walks in shard order yields ascending IDs — the
	// exact single-bitset enumeration.
	buf := c.idleBuf[:0]
	for i := range c.shards {
		buf = c.shards[i].idle.appendIDs(buf, c.shards[i].base)
	}
	c.idleBuf = buf
	return c.idleBuf
}

// idleComputeNodesRef is the retained pre-index reference implementation:
// a full rescan of the node slice. The differential tests assert the bitset
// stays byte-identical to it after every ledger operation.
func (c *Cluster) idleComputeNodesRef() []NodeID {
	var ids []NodeID
	for i := range c.nodes {
		if c.nodes[i].IsComputeAvailable() {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}

// IdleComputeCount returns the number of compute-available nodes (O(S) sum
// of the per-shard bitset counts).
func (c *Cluster) IdleComputeCount() int {
	idle := 0
	for i := range c.shards {
		idle += c.shards[i].idle.count
	}
	return idle
}

// IdleComputeSplit returns the compute-available node counts by capacity
// class (normal vs large, the paper's double-capacity nodes), summed over
// the per-shard splits. The backfill reservation arithmetic reads it every
// scheduling pass.
func (c *Cluster) IdleComputeSplit() (normal, large int) {
	for i := range c.shards {
		normal += c.shards[i].idleNormal
		large += c.shards[i].idleLarge
	}
	return normal, large
}

// idleComputeSplitRef is the retained full-rescan reference for
// IdleComputeSplit; the differential tests compare against it after every
// ledger operation.
func (c *Cluster) idleComputeSplitRef() (normal, large int) {
	for i := range c.nodes {
		if !c.nodes[i].IsComputeAvailable() {
			continue
		}
		if c.nodes[i].CapacityMB > c.largeMB {
			large++
		} else {
			normal++
		}
	}
	return normal, large
}

// BusyNodes returns the number of nodes currently running a job (O(1)).
func (c *Cluster) BusyNodes() int { return c.busy }

// CapacityOrder returns all node IDs sorted by (capacity asc, ID asc). The
// slice is immutable and shared; callers must not modify it. The baseline
// policy walks it to prefer the smallest adequate node without re-sorting.
func (c *Cluster) CapacityOrder() []NodeID { return c.capOrder }

// StartJob marks node id as running job. It fails if the node is busy.
func (c *Cluster) StartJob(id NodeID, job int) error {
	if n := &c.nodes[id]; n.RunningJob != NoJob {
		return fmt.Errorf("%w: node %d runs job %d", ErrNodeBusy, id, n.RunningJob)
	}
	n := c.own(id)
	n.RunningJob = job
	c.busy++
	c.reindexIdle(n)
	return nil
}

// EndJob marks node id idle. It fails if the node was not running a job.
func (c *Cluster) EndJob(id NodeID) error {
	if n := &c.nodes[id]; n.RunningJob == NoJob {
		return fmt.Errorf("%w: node %d", ErrNodeIdle, id)
	}
	n := c.own(id)
	n.RunningJob = NoJob
	c.busy--
	c.reindexIdle(n)
	return nil
}

// AllocLocal reserves mb of node id's own DRAM for the job running on it.
//
//dmp:hotpath
func (c *Cluster) AllocLocal(id NodeID, mb int64) error {
	if mb < 0 {
		return ErrNegativeAmount
	}
	if n := &c.nodes[id]; n.FreeMB() < mb {
		return fmt.Errorf("%w: node %d free %d MB, need %d MB", ErrInsufficientMemory, id, n.FreeMB(), mb) //dmplint:ignore hotpath-alloc error formatting runs only on the rejected-request path, never on a successful mutation
	}
	n := c.own(id)
	n.LocalMB += mb
	c.reindexMem(n, mb)
	return nil
}

// ReleaseLocal returns mb of local memory on node id to the free pool.
//
//dmp:hotpath
func (c *Cluster) ReleaseLocal(id NodeID, mb int64) error {
	if mb < 0 {
		return ErrNegativeAmount
	}
	if n := &c.nodes[id]; n.LocalMB < mb {
		return fmt.Errorf("%w: node %d local %d MB, release %d MB", ErrOverRelease, id, n.LocalMB, mb) //dmplint:ignore hotpath-alloc error formatting runs only on the rejected-request path, never on a successful mutation
	}
	n := c.own(id)
	n.LocalMB -= mb
	c.reindexMem(n, -mb)
	return nil
}

// Lend reserves mb of node id's DRAM for a job running elsewhere. Lending is
// allowed regardless of the half-capacity rule — that rule only gates
// starting new jobs on the lender.
//
//dmp:hotpath
func (c *Cluster) Lend(id NodeID, mb int64) error {
	if mb < 0 {
		return ErrNegativeAmount
	}
	if n := &c.nodes[id]; n.FreeMB() < mb {
		return fmt.Errorf("%w: node %d free %d MB, lend %d MB", ErrInsufficientMemory, id, n.FreeMB(), mb) //dmplint:ignore hotpath-alloc error formatting runs only on the rejected-request path, never on a successful mutation
	}
	n := c.own(id)
	n.LentMB += mb
	c.shards[int(n.ID)/c.shardSize].lentMB += mb
	c.reindexMem(n, mb)
	c.reindexIdle(n) // lending past half capacity flips compute availability
	return nil
}

// ReturnLend gives back mb of memory previously lent by node id.
//
//dmp:hotpath
func (c *Cluster) ReturnLend(id NodeID, mb int64) error {
	if mb < 0 {
		return ErrNegativeAmount
	}
	if n := &c.nodes[id]; n.LentMB < mb {
		return fmt.Errorf("%w: node %d lent %d MB, return %d MB", ErrOverRelease, id, n.LentMB, mb) //dmplint:ignore hotpath-alloc error formatting runs only on the rejected-request path, never on a successful mutation
	}
	n := c.own(id)
	n.LentMB -= mb
	c.shards[int(n.ID)/c.shardSize].lentMB -= mb
	c.reindexMem(n, -mb)
	c.reindexIdle(n)
	return nil
}

// LendersByFreeDesc returns the IDs of all nodes with free memory, sorted by
// free memory descending (ties by ascending ID), excluding the nodes in
// exclude. The static policy borrows from the most-free nodes first to
// minimise the number of lenders per job.
//
// The slice is read from the incremental free-memory index — no rescan, no
// sort, no allocation beyond the first call. It is a scratch buffer owned by
// the cluster: valid until the next LendersByFreeDesc call, and it must not
// be retained, mutated, or read across ledger mutations.
func (c *Cluster) LendersByFreeDesc(exclude map[NodeID]bool) []NodeID {
	ids := c.lendersBuf[:0]
	if len(c.shards) == 1 {
		// Single-shard fast path: local index == NodeID, so the consumer
		// logic runs directly in the treap walk's yield — one dynamic call
		// per node, same as the pre-shard ledger.
		c.shards[0].free.ascend(func(local int32, free int64) bool {
			if free <= 0 {
				return false // descending order: everything after is empty too
			}
			if id := NodeID(local); !exclude[id] {
				ids = append(ids, id)
			}
			return true
		})
	} else {
		c.ascendAll(false, func(id NodeID, free int64) bool {
			if !exclude[id] {
				ids = append(ids, id)
			}
			return true
		})
	}
	c.lendersBuf = ids
	return ids
}

// lendersByFreeDescRef is the retained pre-index reference implementation
// (rescan + sort per call). The differential tests assert the index walk
// returns byte-identical orderings to it for arbitrary op sequences.
func (c *Cluster) lendersByFreeDescRef(exclude map[NodeID]bool) []NodeID {
	var ids []NodeID
	for i := range c.nodes {
		id := NodeID(i)
		if exclude[id] {
			continue
		}
		if c.nodes[i].FreeMB() > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(a, b int) bool {
		fa, fb := c.nodes[ids[a]].FreeMB(), c.nodes[ids[b]].FreeMB()
		if fa != fb {
			return fa > fb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// AscendLenders walks the nodes with free memory in (free desc, ID asc)
// order without materialising a slice, stopping when yield returns false.
// Consumers that only need lenders until a deficit is covered use this to
// touch O(answer) nodes instead of ranking the whole cluster. With a
// sharded ledger the walk is the two-level lender index: shards whose O(1)
// summary shows no lenders are never entered, the rest merge in global
// order. The ledger must not be mutated during the walk.
func (c *Cluster) AscendLenders(yield func(id NodeID, free int64) bool) {
	if len(c.shards) == 1 {
		c.shards[0].free.ascend(func(local int32, free int64) bool {
			if free <= 0 {
				return false
			}
			return yield(NodeID(local), free) //dmplint:ignore hotpath-reach yield is the caller's iterator body; every in-tree caller passes a prebuilt non-allocating visitor
		})
		return
	}
	c.ascendAll(false, yield)
}

// AscendFree walks all nodes — including those with no free memory — in
// (free desc, ID asc) order, stopping when yield returns false. The
// disaggregated placement uses it to pick compute nodes in the same order
// the retired candidate sort produced. The ledger must not be mutated
// during the walk.
func (c *Cluster) AscendFree(yield func(id NodeID, free int64) bool) {
	if len(c.shards) == 1 {
		c.shards[0].free.ascend(func(local int32, free int64) bool {
			return yield(NodeID(local), free)
		})
		return
	}
	c.ascendAll(true, yield)
}

// CheckInvariants verifies the ledger is consistent and the incremental
// indexes agree with it; it returns the first violation found, or nil.
// Tests and the simulator's debug mode call this.
func (c *Cluster) CheckInvariants() error {
	var freeSum, lentSum int64
	busy := 0
	for i := range c.nodes {
		n := &c.nodes[i]
		if n.LocalMB < 0 || n.LentMB < 0 {
			return fmt.Errorf("node %d: negative ledger (local=%d lent=%d)", i, n.LocalMB, n.LentMB)
		}
		if n.LocalMB+n.LentMB > n.CapacityMB {
			return fmt.Errorf("node %d: overcommitted (local=%d lent=%d cap=%d)",
				i, n.LocalMB, n.LentMB, n.CapacityMB)
		}
		if n.RunningJob == NoJob && n.LocalMB != 0 {
			return fmt.Errorf("node %d: idle but has %d MB local allocation", i, n.LocalMB)
		}
		freeSum += n.FreeMB()
		lentSum += n.LentMB
		if n.RunningJob != NoJob {
			busy++
		}
	}
	// Index consistency: every derived structure must mirror the ledger.
	if got := c.TotalFreeMB(); freeSum != got {
		return fmt.Errorf("index: free total %d, ledger sum %d", got, freeSum)
	}
	if got := c.TotalLentMB(); lentSum != got {
		return fmt.Errorf("index: lent total %d, ledger sum %d", got, lentSum)
	}
	if busy != c.busy {
		return fmt.Errorf("index: busy count %d, ledger count %d", c.busy, busy)
	}
	idle := 0
	for i := range c.nodes {
		n := &c.nodes[i]
		sh := &c.shards[i/c.shardSize]
		local := i - sh.base
		if got := sh.free.key[local]; got != n.FreeMB() {
			return fmt.Errorf("index: node %d filed under %d MB free, ledger has %d", i, got, n.FreeMB())
		}
		avail := n.IsComputeAvailable()
		if avail {
			idle++
		}
		if got := sh.idle.bits[local>>6]&(1<<uint(local&63)) != 0; got != avail {
			return fmt.Errorf("index: node %d idle bit %t, ledger says %t", i, got, avail)
		}
	}
	if got := c.IdleComputeCount(); idle != got {
		return fmt.Errorf("index: idle count %d, ledger count %d", got, idle)
	}
	// Per-shard summaries must mirror the ledger slice they own.
	for s := range c.shards {
		sh := &c.shards[s]
		var freeMB, lentMB int64
		lenders, shIdle, shNormal, shLarge := 0, 0, 0, 0
		for i := sh.base; i < sh.base+sh.n; i++ {
			n := &c.nodes[i]
			freeMB += n.FreeMB()
			lentMB += n.LentMB
			if n.FreeMB() > 0 {
				lenders++
			}
			if n.IsComputeAvailable() {
				shIdle++
				if n.CapacityMB > c.largeMB {
					shLarge++
				} else {
					shNormal++
				}
			}
		}
		if freeMB != sh.freeMB || lentMB != sh.lentMB || lenders != sh.lenders || shIdle != sh.idle.count {
			return fmt.Errorf("index: shard %d summary (free=%d lent=%d lenders=%d idle=%d), ledger (free=%d lent=%d lenders=%d idle=%d)",
				s, sh.freeMB, sh.lentMB, sh.lenders, sh.idle.count, freeMB, lentMB, lenders, shIdle)
		}
		if shNormal != sh.idleNormal || shLarge != sh.idleLarge {
			return fmt.Errorf("index: shard %d idle split (normal=%d large=%d), ledger (normal=%d large=%d)",
				s, sh.idleNormal, sh.idleLarge, shNormal, shLarge)
		}
	}
	gotN, gotL := c.IdleComputeSplit()
	if refN, refL := c.idleComputeSplitRef(); refN != gotN || refL != gotL {
		return fmt.Errorf("index: idle split (normal=%d large=%d), ledger (normal=%d large=%d)",
			gotN, gotL, refN, refL)
	}
	return nil
}
