package topology

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidates(t *testing.T) {
	if _, err := New(0, 1, 1); !errors.Is(err, ErrBadDims) {
		t.Fatalf("err = %v, want ErrBadDims", err)
	}
	tor, err := New(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tor.Size() != 64 {
		t.Fatalf("size = %d", tor.Size())
	}
}

func TestDesignCapacityAndShape(t *testing.T) {
	for _, nodes := range []int{1, 2, 7, 64, 100, 1024, 1490} {
		tor := Design(nodes)
		if tor.Size() < nodes {
			t.Fatalf("Design(%d) = %v: too small", nodes, tor)
		}
		// Near-cubic: largest dimension at most twice the smallest
		// (except trivial sizes).
		if nodes > 8 && tor.Z > 2*tor.X {
			t.Fatalf("Design(%d) = %v: not near-cubic", nodes, tor)
		}
		// No more than ~30 % overprovisioning of endpoints.
		if tor.Size() > nodes*13/10+8 {
			t.Fatalf("Design(%d) = %v: wasteful (%d endpoints)", nodes, tor, tor.Size())
		}
	}
}

func TestCoordIDRoundTrip(t *testing.T) {
	tor := Torus{X: 3, Y: 4, Z: 5}
	for id := 0; id < tor.Size(); id++ {
		x, y, z := tor.Coord(id)
		if got := tor.ID(x, y, z); got != id {
			t.Fatalf("round trip %d -> (%d,%d,%d) -> %d", id, x, y, z, got)
		}
	}
	// Wraparound addressing.
	if tor.ID(-1, 0, 0) != tor.ID(2, 0, 0) {
		t.Fatal("negative wraparound broken")
	}
	if tor.ID(3, 4, 5) != tor.ID(0, 0, 0) {
		t.Fatal("positive wraparound broken")
	}
}

func TestHops(t *testing.T) {
	tor := Torus{X: 4, Y: 4, Z: 4}
	a := tor.ID(0, 0, 0)
	cases := []struct {
		x, y, z int
		want    int
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{3, 0, 0, 1}, // wraparound: 3 is 1 hop the other way
		{2, 0, 0, 2},
		{2, 2, 2, 6}, // opposite corner = diameter
		{1, 1, 1, 3},
	}
	for _, tc := range cases {
		b := tor.ID(tc.x, tc.y, tc.z)
		if got := tor.Hops(a, b); got != tc.want {
			t.Errorf("Hops(origin, (%d,%d,%d)) = %d, want %d", tc.x, tc.y, tc.z, got, tc.want)
		}
	}
	if tor.Diameter() != 6 {
		t.Fatalf("diameter = %d, want 6", tor.Diameter())
	}
}

func TestHopsSymmetricAndTriangle(t *testing.T) {
	tor := Design(100)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		a, b, c := rng.Intn(tor.Size()), rng.Intn(tor.Size()), rng.Intn(tor.Size())
		if tor.Hops(a, b) != tor.Hops(b, a) {
			t.Fatal("hops not symmetric")
		}
		if tor.Hops(a, c) > tor.Hops(a, b)+tor.Hops(b, c) {
			t.Fatal("triangle inequality violated")
		}
		if tor.Hops(a, b) > tor.Diameter() {
			t.Fatal("distance beyond diameter")
		}
	}
}

func TestAvgHops(t *testing.T) {
	// Exact check by enumeration on a small torus.
	tor := Torus{X: 3, Y: 3, Z: 2}
	var sum, pairs float64
	for a := 0; a < tor.Size(); a++ {
		for b := 0; b < tor.Size(); b++ {
			if a == b {
				continue
			}
			sum += float64(tor.Hops(a, b))
			pairs++
		}
	}
	want := sum / pairs
	if got := tor.AvgHops(); got != want {
		t.Fatalf("AvgHops = %g, want enumerated %g", got, want)
	}
	if (Torus{X: 1, Y: 1, Z: 1}).AvgHops() != 0 {
		t.Fatal("single-node torus must have zero mean distance")
	}
}

func TestRankByHops(t *testing.T) {
	tor := Torus{X: 8, Y: 1, Z: 1}
	from := 0
	ranked := tor.RankByHops(from, []int{4, 1, 7, 2})
	// Distances: 4→4, 1→1, 7→1 (wrap), 2→2. Ties by ID: 1 before 7.
	want := []int{1, 7, 2, 4}
	for i := range want {
		if ranked[i] != want[i] {
			t.Fatalf("ranked = %v, want %v", ranked, want)
		}
	}
	// Input must not be mutated.
	orig := []int{4, 1, 7, 2}
	tor.RankByHops(from, orig)
	if orig[0] != 4 {
		t.Fatal("RankByHops mutated its input")
	}
}

func TestBisectionLinks(t *testing.T) {
	if got := (Torus{X: 4, Y: 4, Z: 4}).BisectionLinks(); got != 32 {
		t.Fatalf("4x4x4 bisection = %d, want 32", got)
	}
	if got := (Torus{X: 1, Y: 1, Z: 1}).BisectionLinks(); got != 0 {
		t.Fatalf("trivial torus bisection = %d, want 0", got)
	}
	// The cut goes through the largest dimension.
	if got := (Torus{X: 2, Y: 2, Z: 8}).BisectionLinks(); got != 8 {
		t.Fatalf("2x2x8 bisection = %d, want 2·(2·2)=8", got)
	}
}

// Property: Design is monotone in capacity and hop distances stay within
// the diameter for random node pairs.
func TestQuickDesignAndHops(t *testing.T) {
	f := func(rawNodes uint16, rawA, rawB uint16) bool {
		nodes := int(rawNodes)%2000 + 1
		tor := Design(nodes)
		if tor.Size() < nodes {
			return false
		}
		a := int(rawA) % tor.Size()
		b := int(rawB) % tor.Size()
		h := tor.Hops(a, b)
		if h < 0 || h > tor.Diameter() {
			return false
		}
		return (h == 0) == (a == b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
