// Package topology models the system interconnect as a 3D torus, the
// fabric the paper assumes for remote-memory traffic ("the interconnect is
// a torus, sized as recommended by prior work" — Solnushkin's automated
// torus design). It provides automated near-cubic sizing, wraparound hop
// distances, and distance-ranked lender selection for the topology-aware
// allocation ablation.
package topology

import (
	"errors"
	"fmt"
	"sort"
)

// Torus is a 3D torus with dimensions X×Y×Z. Node IDs are dense in
// [0, X·Y·Z), laid out x-major.
type Torus struct {
	X, Y, Z int
}

// ErrBadDims reports non-positive dimensions.
var ErrBadDims = errors.New("topology: dimensions must be positive")

// New validates explicit dimensions.
func New(x, y, z int) (Torus, error) {
	if x <= 0 || y <= 0 || z <= 0 {
		return Torus{}, fmt.Errorf("%w: %d×%d×%d", ErrBadDims, x, y, z)
	}
	return Torus{X: x, Y: y, Z: z}, nil
}

// Design returns a near-cubic torus with capacity for at least nodes
// endpoints, following the SADDLE approach of minimising the diameter for
// the target size: dimensions are the most balanced factorisation of the
// smallest size ≥ nodes that admits one within a 2:1 aspect ratio.
func Design(nodes int) Torus {
	if nodes < 1 {
		nodes = 1
	}
	for size := nodes; ; size++ {
		if t, ok := balancedDims(size); ok {
			return t
		}
	}
}

// balancedDims finds the factorisation x≤y≤z of size minimising z-x,
// accepting it when z ≤ 2x (near-cubic) or when size is small.
func balancedDims(size int) (Torus, bool) {
	best := Torus{}
	found := false
	for x := 1; x*x*x <= size; x++ {
		if size%x != 0 {
			continue
		}
		rest := size / x
		for y := x; y*y <= rest; y++ {
			if rest%y != 0 {
				continue
			}
			z := rest / y
			t := Torus{X: x, Y: y, Z: z}
			if !found || (t.Z-t.X) < (best.Z-best.X) {
				best = t
				found = true
			}
		}
	}
	if !found {
		return Torus{}, false
	}
	if size <= 8 || best.Z <= 2*best.X {
		return best, true
	}
	return Torus{}, false
}

// Size returns the number of endpoints.
func (t Torus) Size() int { return t.X * t.Y * t.Z }

// Coord returns the (x, y, z) coordinate of node id.
func (t Torus) Coord(id int) (x, y, z int) {
	x = id % t.X
	y = (id / t.X) % t.Y
	z = id / (t.X * t.Y)
	return x, y, z
}

// ID returns the node id at (x, y, z), applying wraparound.
func (t Torus) ID(x, y, z int) int {
	x = mod(x, t.X)
	y = mod(y, t.Y)
	z = mod(z, t.Z)
	return x + y*t.X + z*t.X*t.Y
}

func mod(a, n int) int {
	a %= n
	if a < 0 {
		a += n
	}
	return a
}

// Hops returns the minimal routing distance between two nodes: the sum of
// per-dimension wraparound distances.
func (t Torus) Hops(a, b int) int {
	ax, ay, az := t.Coord(a)
	bx, by, bz := t.Coord(b)
	return ringDist(ax, bx, t.X) + ringDist(ay, by, t.Y) + ringDist(az, bz, t.Z)
}

func ringDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if w := n - d; w < d {
		return w
	}
	return d
}

// Diameter returns the maximum hop distance between any two nodes.
func (t Torus) Diameter() int { return t.X/2 + t.Y/2 + t.Z/2 }

// AvgHops returns the exact mean hop distance between two distinct
// uniformly random nodes.
func (t Torus) AvgHops() float64 {
	n := t.Size()
	if n <= 1 {
		return 0
	}
	// Per-dimension mean ring distance over ordered pairs (including
	// self), then combined linearly and corrected for distinct pairs.
	mean := ringMean(t.X) + ringMean(t.Y) + ringMean(t.Z)
	// mean includes self-pairs (distance 0): scale to distinct pairs.
	return mean * float64(n) / float64(n-1)
}

// ringMean is the mean wraparound distance on a ring of n nodes over all
// ordered pairs including self-pairs.
func ringMean(n int) float64 {
	if n <= 1 {
		return 0
	}
	var sum int
	for d := 0; d < n; d++ {
		sum += ringDist(0, d, n)
	}
	return float64(sum) / float64(n)
}

// RankByHops orders candidates by hop distance from node from (ties by
// candidate ID). The topology-aware lender policy borrows from the nearest
// lenders first to minimise remote-access latency.
func (t Torus) RankByHops(from int, candidates []int) []int {
	out := make([]int, len(candidates))
	copy(out, candidates)
	sort.Slice(out, func(i, j int) bool {
		hi, hj := t.Hops(from, out[i]), t.Hops(from, out[j])
		if hi != hj {
			return hi < hj
		}
		return out[i] < out[j]
	})
	return out
}

// BisectionLinks returns the number of links crossing the worst-case
// bisection, a standard torus capacity figure (2 links per node pair on
// the cut plane of the largest dimension).
func (t Torus) BisectionLinks() int {
	// Cutting the largest dimension in half severs 2 × (area of the
	// cut plane) links because of the wraparound.
	maxDim := t.X
	area := t.Y * t.Z
	if t.Y > maxDim {
		maxDim = t.Y
		area = t.X * t.Z
	}
	if t.Z > maxDim {
		maxDim = t.Z
		area = t.X * t.Y
	}
	if maxDim == 1 {
		return 0
	}
	return 2 * area
}

func (t Torus) String() string {
	return fmt.Sprintf("%d×%d×%d torus (%d nodes, diameter %d)", t.X, t.Y, t.Z, t.Size(), t.Diameter())
}
