package topology_test

import (
	"fmt"

	"dismem/internal/topology"
)

// Design picks near-cubic dimensions for the requested endpoint count; the
// paper's 1024-node synthetic system fits an 8×8×16 torus... or better.
func ExampleDesign() {
	t := topology.Design(1024)
	fmt.Println(t)
	fmt.Println("hops 0->511:", t.Hops(0, 511))
	// Output:
	// 8×8×16 torus (1024 nodes, diameter 16)
	// hops 0->511: 9
}

// RankByHops orders lenders by wraparound distance: on an 8-ring, node 7
// is one hop from node 0.
func ExampleTorus_RankByHops() {
	ring, _ := topology.New(8, 1, 1)
	fmt.Println(ring.RankByHops(0, []int{4, 2, 7}))
	// Output: [7 2 4]
}
