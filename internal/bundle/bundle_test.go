package bundle

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/slowdown"
	"dismem/internal/tracegen"
)

func sampleJobs(t *testing.T) []*job.Job {
	t.Helper()
	out, err := tracegen.Run(tracegen.Params{
		SystemNodes: 32, Load: 0.6, Days: 0.25,
		LargeFrac: 0.5, Overestimation: 0.6,
		GoogleCollections: 600, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Jobs) == 0 {
		t.Fatal("no jobs generated")
	}
	return out.Jobs
}

func TestRoundTrip(t *testing.T) {
	jobs := sampleJobs(t)
	var buf bytes.Buffer
	if err := Write(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(jobs) {
		t.Fatalf("jobs = %d, want %d", len(back), len(jobs))
	}
	for i := range jobs {
		a, b := jobs[i], back[i]
		if a.ID != b.ID || a.SubmitTime != b.SubmitTime || a.Nodes != b.Nodes ||
			a.RequestMB != b.RequestMB || a.LimitSec != b.LimitSec || a.BaseRuntime != b.BaseRuntime {
			t.Fatalf("job %d scalar mismatch:\n%+v\n%+v", i, a, b)
		}
		if a.Profile.Name != b.Profile.Name || a.Profile.BandwidthGBs != b.Profile.BandwidthGBs {
			t.Fatalf("job %d profile mismatch", i)
		}
		ap, bp := a.Usage.Points(), b.Usage.Points()
		if len(ap) != len(bp) {
			t.Fatalf("job %d usage length mismatch", i)
		}
		for k := range ap {
			if ap[k] != bp[k] {
				t.Fatalf("job %d usage point %d mismatch", i, k)
			}
		}
	}
}

func TestProfilesShared(t *testing.T) {
	jobs := sampleJobs(t)
	var buf bytes.Buffer
	if err := Write(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Jobs matched to the same profile must share one instance after
	// decoding, as before it.
	byName := map[string]*slowdown.Profile{}
	for _, j := range back {
		if prev, ok := byName[j.Profile.Name]; ok && prev != j.Profile {
			t.Fatalf("profile %q not shared", j.Profile.Name)
		}
		byName[j.Profile.Name] = j.Profile
	}
}

func TestWriteRejectsConflictingProfiles(t *testing.T) {
	mk := func(p *slowdown.Profile) *job.Job {
		return &job.Job{
			ID: 1, Nodes: 1, RequestMB: 10, LimitSec: 10, BaseRuntime: 5,
			Usage: memtrace.Constant(5), Profile: p,
		}
	}
	p1 := &slowdown.Profile{Name: "x", Nodes: 1, RuntimeSec: 1, BandwidthGBs: 1, Sens: slowdown.CurveCompute}
	p2 := &slowdown.Profile{Name: "x", Nodes: 2, RuntimeSec: 2, BandwidthGBs: 2, Sens: slowdown.CurveStream}
	a, b := mk(p1), mk(p2)
	b.ID = 2
	var buf bytes.Buffer
	if err := Write(&buf, []*job.Job{a, b}); err == nil {
		t.Fatal("conflicting profiles accepted")
	}
}

func TestReadRejections(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want error
	}{
		{"empty", "", ErrFormat},
		{"not a bundle", `{"bundle":"other","version":1}` + "\n", ErrFormat},
		{"future version", `{"bundle":"dismem","version":99}` + "\n", ErrVersion},
		{"bad job json", `{"bundle":"dismem","version":1}` + "\nnot-json\n", ErrFormat},
		{"unknown profile", `{"bundle":"dismem","version":1}` + "\n" +
			`{"id":1,"nodes":1,"request_mb":1,"limit_s":2,"runtime_s":1,"profile":"ghost","usage":"TQEAAAAAAAAAAAAB"}` + "\n", ErrFormat},
	}
	for _, tc := range cases {
		_, err := Read(strings.NewReader(tc.in))
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestHeaderJobCountChecked(t *testing.T) {
	jobs := sampleJobs(t)
	if len(jobs) > 3 {
		jobs = jobs[:3]
	}
	if len(jobs) < 2 {
		t.Skip("need at least 2 jobs to truncate")
	}
	var buf bytes.Buffer
	if err := Write(&buf, jobs); err != nil {
		t.Fatal(err)
	}
	// Drop the last job line: count mismatch must be detected.
	content := buf.String()
	lines := strings.Split(strings.TrimSpace(content), "\n")
	truncated := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	if _, err := Read(strings.NewReader(truncated)); !errors.Is(err, ErrFormat) {
		t.Fatalf("err = %v, want ErrFormat", err)
	}
}

func TestDependencySurvivesBundle(t *testing.T) {
	p := &slowdown.Profile{Name: "p", Nodes: 1, RuntimeSec: 10, BandwidthGBs: 1,
		Sens: slowdown.Curve{{Pressure: 0, Penalty: 0}}}
	mk := func(id, dep int) *job.Job {
		return &job.Job{ID: id, Nodes: 1, RequestMB: 10, LimitSec: 10,
			BaseRuntime: 5, DependsOn: dep, Usage: memtrace.Constant(5), Profile: p}
	}
	var buf bytes.Buffer
	if err := Write(&buf, []*job.Job{mk(1, 0), mk(2, 1)}); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].DependsOn != 0 || back[1].DependsOn != 1 {
		t.Fatalf("dependencies lost: %d %d", back[0].DependsOn, back[1].DependsOn)
	}
}
