package bundle

import (
	"bytes"
	"strings"
	"testing"

	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/slowdown"
)

// FuzzRead checks the bundle reader never panics and that any stream it
// accepts produces validated jobs that re-encode and re-decode.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	p := &slowdown.Profile{Name: "p", Nodes: 1, RuntimeSec: 10, BandwidthGBs: 1,
		Sens: slowdown.Curve{{Pressure: 0, Penalty: 0.1}}}
	j := &job.Job{ID: 1, Nodes: 1, RequestMB: 10, LimitSec: 10, BaseRuntime: 5,
		Usage: memtrace.Constant(5), Profile: p}
	if err := Write(&buf, []*job.Job{j}); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("")
	f.Add(`{"bundle":"dismem","version":1}` + "\n")
	f.Add(`{"bundle":"dismem","version":1,"jobs":1}` + "\nnot json\n")
	f.Add("{}\n")
	f.Fuzz(func(t *testing.T, input string) {
		jobs, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		for _, j := range jobs {
			if err := j.Validate(); err != nil {
				t.Fatalf("accepted invalid job: %v", err)
			}
		}
		var out bytes.Buffer
		if err := Write(&out, jobs); err != nil {
			t.Fatalf("accepted jobs failed to re-encode: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if len(again) != len(jobs) {
			t.Fatalf("round trip changed job count: %d -> %d", len(jobs), len(again))
		}
	})
}
