// Package bundle persists complete simulator inputs — jobs with their
// memory-usage traces and matched application profiles — as a single
// JSON-Lines stream. This is the reproduction's equivalent of the paper's
// "simulator input files" (Fig. 3, Steps 8–9): SWF carries the scheduler
// fields but cannot hold time series, so the bundle is the lossless format
// connecting trace generation (dmptrace) to simulation (dmpsim).
//
// Layout: the first line is a header object carrying the format version
// and the deduplicated profile pool; every following line is one job whose
// usage trace is embedded as base64 of the memtrace binary encoding.
package bundle

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/slowdown"
)

// Version is the current bundle format version.
const Version = 1

// Errors returned by Read.
var (
	ErrFormat  = errors.New("bundle: malformed input")
	ErrVersion = errors.New("bundle: unsupported version")
)

type headerJSON struct {
	Bundle   string        `json:"bundle"`
	Version  int           `json:"version"`
	Jobs     int           `json:"jobs"`
	Profiles []profileJSON `json:"profiles"`
}

type profileJSON struct {
	Name      string       `json:"name"`
	Nodes     int          `json:"nodes"`
	Runtime   float64      `json:"runtime_s"`
	Bandwidth float64      `json:"bandwidth_gbs"`
	ReadFrac  float64      `json:"read_frac"`
	Sens      [][2]float64 `json:"sensitivity"`
}

type jobJSON struct {
	ID        int     `json:"id"`
	Submit    float64 `json:"submit_s"`
	Nodes     int     `json:"nodes"`
	RequestMB int64   `json:"request_mb"`
	Limit     float64 `json:"limit_s"`
	Runtime   float64 `json:"runtime_s"`
	DependsOn int     `json:"depends_on,omitempty"`
	Profile   string  `json:"profile"`
	Usage     []byte  `json:"usage"` // memtrace binary encoding (base64 in JSON)
}

// Write streams the jobs as a bundle. Profiles are deduplicated by name;
// two distinct profiles sharing a name is an error.
func Write(w io.Writer, jobs []*job.Job) error {
	profiles := map[string]*slowdown.Profile{}
	var order []string
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if prev, ok := profiles[j.Profile.Name]; ok {
			if prev != j.Profile {
				return fmt.Errorf("bundle: two profiles named %q", j.Profile.Name)
			}
			continue
		}
		profiles[j.Profile.Name] = j.Profile
		order = append(order, j.Profile.Name)
	}

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := headerJSON{Bundle: "dismem", Version: Version, Jobs: len(jobs)}
	for _, name := range order {
		p := profiles[name]
		pj := profileJSON{
			Name: p.Name, Nodes: p.Nodes, Runtime: p.RuntimeSec,
			Bandwidth: p.BandwidthGBs, ReadFrac: p.ReadFrac,
		}
		for _, k := range p.Sens {
			pj.Sens = append(pj.Sens, [2]float64{k.Pressure, k.Penalty})
		}
		hdr.Profiles = append(hdr.Profiles, pj)
	}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, j := range jobs {
		usage, err := j.Usage.MarshalBinary()
		if err != nil {
			return err
		}
		jj := jobJSON{
			ID: j.ID, Submit: j.SubmitTime, Nodes: j.Nodes,
			RequestMB: j.RequestMB, Limit: j.LimitSec, Runtime: j.BaseRuntime,
			DependsOn: j.DependsOn, Profile: j.Profile.Name, Usage: usage,
		}
		if err := enc.Encode(jj); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a bundle stream back into validated jobs.
func Read(r io.Reader) ([]*job.Job, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr headerJSON
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrFormat, err)
	}
	if hdr.Bundle != "dismem" {
		return nil, fmt.Errorf("%w: not a dismem bundle", ErrFormat)
	}
	if hdr.Version != Version {
		return nil, fmt.Errorf("%w: version %d", ErrVersion, hdr.Version)
	}
	profiles := map[string]*slowdown.Profile{}
	for _, pj := range hdr.Profiles {
		p := &slowdown.Profile{
			Name: pj.Name, Nodes: pj.Nodes, RuntimeSec: pj.Runtime,
			BandwidthGBs: pj.Bandwidth, ReadFrac: pj.ReadFrac,
		}
		for _, k := range pj.Sens {
			p.Sens = append(p.Sens, slowdown.CurvePoint{Pressure: k[0], Penalty: k[1]})
		}
		if err := p.Sens.Validate(); err != nil {
			return nil, fmt.Errorf("%w: profile %q: %v", ErrFormat, pj.Name, err)
		}
		if _, dup := profiles[p.Name]; dup {
			return nil, fmt.Errorf("%w: duplicate profile %q", ErrFormat, p.Name)
		}
		profiles[p.Name] = p
	}

	jobs := make([]*job.Job, 0, hdr.Jobs)
	for {
		var jj jobJSON
		if err := dec.Decode(&jj); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("%w: job record: %v", ErrFormat, err)
		}
		p, ok := profiles[jj.Profile]
		if !ok {
			return nil, fmt.Errorf("%w: job %d references unknown profile %q", ErrFormat, jj.ID, jj.Profile)
		}
		var usage memtrace.Trace
		if err := usage.UnmarshalBinary(jj.Usage); err != nil {
			return nil, fmt.Errorf("%w: job %d usage: %v", ErrFormat, jj.ID, err)
		}
		j := &job.Job{
			ID: jj.ID, SubmitTime: jj.Submit, Nodes: jj.Nodes,
			RequestMB: jj.RequestMB, LimitSec: jj.Limit, BaseRuntime: jj.Runtime,
			DependsOn: jj.DependsOn, Usage: &usage, Profile: p,
		}
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		jobs = append(jobs, j)
	}
	if hdr.Jobs != 0 && len(jobs) != hdr.Jobs {
		return nil, fmt.Errorf("%w: header says %d jobs, stream has %d", ErrFormat, hdr.Jobs, len(jobs))
	}
	return jobs, nil
}
