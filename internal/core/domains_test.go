package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"dismem/internal/cluster"
	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
	"dismem/internal/slowdown"
	"dismem/internal/telemetry"
)

// runLogged executes cfg with a JSONL recorder attached and returns the
// Result plus the byte-exact telemetry log.
func runLogged(t *testing.T, cfg Config, jobs []*job.Job) (*Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	cfg.Telemetry = telemetry.New(telemetry.Options{
		Sink:           telemetry.NewJSONL(&buf),
		SampleInterval: 90,
	})
	s, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Telemetry.Close(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestSingleDomainMatchesGlobal is the partition property test: one pressure
// domain covering the whole cluster IS the global model. The single flat
// traffic sum visits jobs and nodes in the same order, PressureBW over the
// whole fabric bandwidth is Model.Pressure, the per-domain max fraction
// degenerates to the global max, and the domain-first borrow walk is the
// global lender walk — so results and telemetry must be byte-identical, not
// merely statistically close, across the randomized differential scenarios.
func TestSingleDomainMatchesGlobal(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg, mkJobs := differentialScenario(seed)
			gRes, gLog := runLogged(t, cfg, mkJobs())

			dc := cfg
			dc.Pressure = PressureDomains
			dc.Domains = 1
			dRes, dLog := runLogged(t, dc, mkJobs())

			if !reflect.DeepEqual(gRes, dRes) {
				t.Fatalf("results diverged\nglobal:        %+v\nsingle-domain: %+v", gRes, dRes)
			}
			if !bytes.Equal(gLog, dLog) {
				t.Fatalf("telemetry logs diverged (%d vs %d bytes)", len(gLog), len(dLog))
			}
			if gRes.Completed+gRes.TimedOut+gRes.Abandoned == 0 && !gRes.Infeasible {
				t.Fatal("scenario exercised nothing")
			}
		})
	}
}

// TestDifferentialDomainsWindowedVsSerial runs randomized multi-domain
// scenarios through the serial event loop and the windowed executor and
// asserts they agree. With telemetry attached the windowed executor
// dispatches serially (the recorder orders the byte stream), so the logs
// must be byte-identical; without telemetry the executor fires
// proven-independent update windows concurrently on the worker team, and
// the Results must still be deeply equal — the end-to-end proof that
// parallel compute halves plus pop-order commits replay serial execution.
// The suite as a whole must exercise at least one concurrent dispatch.
func TestDifferentialDomainsWindowedVsSerial(t *testing.T) {
	independent := 0
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg, mkJobs := differentialScenario(seed)
			cfg.Pressure = PressureDomains
			cfg.Domains = 2 + int(seed)%3
			cfg.UpdateJitter = 0 // same-tick updates: multi-event windows

			serRes, serLog := runLogged(t, cfg, mkJobs())

			wc := cfg
			wc.Parallel = true
			wc.Workers = 4
			winRes, winLog := runLogged(t, wc, mkJobs())
			if !reflect.DeepEqual(serRes, winRes) {
				t.Fatalf("telemetry runs diverged\nserial:   %+v\nwindowed: %+v", serRes, winRes)
			}
			if !bytes.Equal(serLog, winLog) {
				t.Fatalf("telemetry logs diverged (%d vs %d bytes)", len(serLog), len(winLog))
			}

			// Telemetry off: the windowed run may now dispatch independent
			// windows concurrently.
			quiet := cfg
			quiet.Telemetry = nil
			s, err := New(quiet, mkJobs())
			if err != nil {
				t.Fatal(err)
			}
			qSer, err := s.Run()
			if err != nil {
				t.Fatal(err)
			}

			qw := quiet
			qw.Parallel = true
			qw.Workers = 4
			var ws WindowStats
			qw.WindowStatsOut = &ws
			sw, err := New(qw, mkJobs())
			if err != nil {
				t.Fatal(err)
			}
			qWin, err := sw.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(qSer, qWin) {
				t.Fatalf("quiet runs diverged\nserial:   %+v\nwindowed: %+v", qSer, qWin)
			}
			independent += ws.Independent
		})
	}
	if independent == 0 {
		t.Fatal("no window was ever dispatched concurrently: the suite exercised nothing")
	}
}

// TestDomainsModeRelievesContention is the model-level sanity check the
// partition exists for: a bandwidth hog in one rack must not slow a job in
// another. Under uniform load per-domain rho equals global rho (traffic and
// bandwidth both scale with the node count), so the scenario is skewed: a
// hog with huge per-node bandwidth and a flat sensitivity curve (it emits
// traffic but feels no slowdown) fills one domain, and a
// contention-sensitive victim with modest remote traffic fills another. The
// global single rho charges the victim for the hog's traffic; the victim's
// domain rho sees only its own.
func TestDomainsModeRelievesContention(t *testing.T) {
	hogProf := &slowdown.Profile{
		Name: "hog", Nodes: 1, RuntimeSec: 100, BandwidthGBs: 50,
		Sens: slowdown.Curve{{Pressure: 0, Penalty: 0}},
	}
	mk := func() []*job.Job {
		hog := mkJob(1, 0, 3, 2048, 4000, memtrace.Constant(2048))
		hog.Profile = hogProf
		victim := mkJob(2, 0, 3, 1280, 4000, memtrace.Constant(1280))
		victim.Profile = streamProfile()
		return []*job.Job{hog, victim}
	}
	// 12 nodes, 4 domains of 3: the hog occupies one whole domain, the
	// victim the next, and the remaining idle nodes lend the remote halves.
	cfg := baseConfig(12, 1024, policy.Static)

	victimStretch := func(res *Result) float64 {
		for _, r := range res.Records {
			if r.Job.ID == 2 {
				return (r.Finish - r.LastStart) / r.Job.BaseRuntime
			}
		}
		t.Fatal("victim record missing")
		return 0
	}

	global := runSim(t, cfg, mk())

	dc := cfg
	dc.Pressure = PressureDomains
	dc.Domains = 4
	doms := runSim(t, dc, mk())

	gs, ds := victimStretch(global), victimStretch(doms)
	if gs <= 1 {
		t.Fatalf("global victim shows no contention (stretch %.3f): test exercises nothing", gs)
	}
	if ds >= gs {
		t.Fatalf("domain partition did not shield the victim: global stretch %.3f, domains stretch %.3f", gs, ds)
	}
}

// TestDomainsConfigValidation pins the Normalize contract for the new knobs.
func TestDomainsConfigValidation(t *testing.T) {
	cfg := baseConfig(8, 1024, policy.Dynamic)
	cfg.Domains = 4 // without Pressure: domains
	if err := cfg.Normalize(); err == nil {
		t.Fatal("Domains without Pressure: domains passed Normalize")
	}

	cfg = baseConfig(8, 1024, policy.Dynamic)
	cfg.Pressure = PressureDomains
	cfg.Domains = 64 // more domains than nodes: clamped
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Domains != 8 || cfg.Cluster.Shards != 8 {
		t.Fatalf("want Domains and Shards clamped to 8, got Domains=%d Shards=%d", cfg.Domains, cfg.Cluster.Shards)
	}

	cfg = baseConfig(8, 1024, policy.Dynamic)
	cfg.Pressure = PressureDomains
	cfg.Cluster.Shards = 4
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Domains != 4 {
		t.Fatalf("want Domains derived from Shards=4, got %d", cfg.Domains)
	}
}

// midRunSimulatorDomains is midRunSimulator in pressure-domains mode.
func midRunSimulatorDomains(tb testing.TB, nJobs, nodes, doms int) *Simulator {
	tb.Helper()
	cfg := baseConfig(nodes, 4096, policy.Dynamic)
	cfg.CheckInvariants = false
	cfg.Backfill = EASYBackfill
	cfg.UpdateInterval = 100
	cfg.Pressure = PressureDomains
	cfg.Domains = doms
	cfg.Horizon = 1000
	jobs := make([]*job.Job, 0, nJobs)
	for i := 1; i <= nJobs; i++ {
		req := int64(1024 + (i%7)*256)
		usage := memtrace.MustNew([]memtrace.Point{
			{T: 0, MB: req / 2}, {T: 10000, MB: req + 512},
		})
		j := mkJob(i, float64(i%40), 1+i%3, req, 20000, usage)
		if i%2 == 0 {
			j.Profile = streamProfile()
		}
		jobs = append(jobs, j)
	}
	s, err := New(cfg, jobs)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		tb.Fatal(err)
	}
	if len(s.running) == 0 {
		tb.Fatal("no jobs running at the horizon")
	}
	return s
}

// TestRefreshDomainsAllocationFree asserts the per-event domain refresh
// allocates nothing at steady state, like the global incremental path.
func TestRefreshDomainsAllocationFree(t *testing.T) {
	s := midRunSimulatorDomains(t, 32, 48, 8)
	rj := s.runList[0]
	s.refreshAfter(rj) // warm scratch
	full := func() {
		s.invalidate(rj) // defeat the elision: rebuild the touched domains
		s.refreshAfter(rj)
	}
	if got := testing.AllocsPerRun(50, full); got != 0 {
		t.Fatalf("refreshDomains allocates %.1f per call at steady state, want 0", got)
	}
}

// BenchmarkRefreshDomains is BenchmarkRefresh's domains-mode counterpart:
// one event's contention refresh at a high concurrent-running count. The
// domains rows touch one job's home domains (O(Δ)); the global-incremental
// row from BenchmarkRefresh re-sums every running job and is the reference.
func BenchmarkRefreshDomains(b *testing.B) {
	for _, doms := range []int{4, 16} {
		b.Run(fmt.Sprintf("domains=%d", doms), func(b *testing.B) {
			s := midRunSimulatorDomains(b, 96, 128, doms)
			rj := s.runList[0]
			s.refreshAfter(rj)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.invalidate(rj)
				s.refreshAfter(rj)
			}
		})
	}
}

// domainsBenchJobs handcrafts a mid-size workload for the windowed-dispatch
// benchmark: many narrow jobs with identical update periods (no jitter) so
// update events pile into multi-member windows, spread across the cluster so
// frozen domain sets are usually disjoint. Derived from the job index — no
// RNG — so the workload is reproducible.
func domainsBenchJobs(n int) []*job.Job {
	prof := &slowdown.Profile{
		Name: "bench-stream", Nodes: 1, RuntimeSec: 3000, BandwidthGBs: 8,
		Sens: slowdown.CurveStream,
	}
	jobs := make([]*job.Job, 0, n)
	for i := 0; i < n; i++ {
		runtime := 2000 + float64(i%200)*10
		usage := memtrace.MustNew([]memtrace.Point{
			{T: 0, MB: 2 * 1024},
			{T: runtime * 0.7, MB: 5 * 1024},
			{T: runtime, MB: 6 * 1024},
		})
		jobs = append(jobs, &job.Job{
			ID:          i + 1,
			SubmitTime:  float64(i % 60),
			Nodes:       4,
			RequestMB:   7 * 1024,
			LimitSec:    runtime * 4,
			BaseRuntime: runtime,
			Usage:       usage,
			Profile:     prof,
		})
	}
	return jobs
}

// BenchmarkWindowedDispatch runs one mid-size domains-mode scenario through
// the serial loop and the windowed executor. The windowed row's win over
// serial is the cross-event parallelism the partitioned model unlocks; the
// run fails if no window was actually dispatched concurrently, so the
// benchmark cannot silently measure the serial path twice.
func BenchmarkWindowedDispatch(b *testing.B) {
	mkCfg := func() Config {
		return Config{
			Cluster:        cluster.Config{Nodes: 2048, Cores: 32, NormalMB: 8 * 1024},
			Policy:         policy.Dynamic,
			UpdateInterval: 200,
			Pressure:       PressureDomains,
			Domains:        32,
			Seed:           1,
		}
	}
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := mkCfg()
			s, err := New(cfg, domainsBenchJobs(400))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("windowed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cfg := mkCfg()
			cfg.Parallel = true
			var ws WindowStats
			cfg.WindowStatsOut = &ws
			s, err := New(cfg, domainsBenchJobs(400))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.Run(); err != nil {
				b.Fatal(err)
			}
			if ws.Independent == 0 {
				b.Fatalf("no independent windows: stats %+v", ws)
			}
		}
	})
}
