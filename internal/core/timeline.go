package core

import (
	"encoding/csv"
	"io"
	"strconv"

	"dismem/internal/job"
)

// TimelineSample is one snapshot of system state, taken after a lifecycle
// event.
type TimelineSample struct {
	T         float64
	AllocMB   int64 // memory held by running jobs
	BusyNodes int
	Queued    int // pending jobs
	Running   int
}

// Timeline is an Observer that reconstructs the system's occupancy over
// time from lifecycle events: allocated memory, busy nodes, queue depth.
// Append-only; read Samples after the run.
type Timeline struct {
	Samples []TimelineSample

	alloc   int64
	busy    int
	queued  int
	running map[int]jobFootprint
}

type jobFootprint struct {
	allocMB int64
	nodes   int
}

// NewTimeline returns an empty recorder.
func NewTimeline() *Timeline {
	return &Timeline{running: make(map[int]jobFootprint)}
}

func (tl *Timeline) snap(t float64) {
	tl.Samples = append(tl.Samples, TimelineSample{
		T:         t,
		AllocMB:   tl.alloc,
		BusyNodes: tl.busy,
		Queued:    tl.queued,
		Running:   len(tl.running),
	})
}

// JobSubmitted implements Observer.
func (tl *Timeline) JobSubmitted(t float64, _ *job.Job, _ bool) {
	tl.queued++
	tl.snap(t)
}

// JobStarted implements Observer.
func (tl *Timeline) JobStarted(t float64, j *job.Job, localMB, remoteMB int64) {
	tl.queued--
	total := localMB + remoteMB
	tl.running[j.ID] = jobFootprint{allocMB: total, nodes: j.Nodes}
	tl.alloc += total
	tl.busy += j.Nodes
	tl.snap(t)
}

// JobFinished implements Observer. Abandonment follows an OOM kill that
// already released the footprint, so the removal is guarded.
func (tl *Timeline) JobFinished(t float64, j *job.Job, _ Outcome) {
	tl.remove(j.ID)
	tl.snap(t)
}

// JobKilledOOM implements Observer.
func (tl *Timeline) JobKilledOOM(t float64, j *job.Job, _ int) {
	tl.remove(j.ID)
	tl.snap(t)
}

func (tl *Timeline) remove(id int) {
	fp, ok := tl.running[id]
	if !ok {
		return
	}
	tl.alloc -= fp.allocMB
	tl.busy -= fp.nodes
	delete(tl.running, id)
}

// AllocationChanged implements Observer.
func (tl *Timeline) AllocationChanged(t float64, j *job.Job, before, after int64) {
	fp, ok := tl.running[j.ID]
	if !ok {
		return
	}
	fp.allocMB += after - before
	tl.running[j.ID] = fp
	tl.alloc += after - before
	tl.snap(t)
}

// PeakAllocMB returns the highest allocated-memory sample.
func (tl *Timeline) PeakAllocMB() int64 {
	var m int64
	for _, s := range tl.Samples {
		if s.AllocMB > m {
			m = s.AllocMB
		}
	}
	return m
}

// PeakQueued returns the deepest queue observed.
func (tl *Timeline) PeakQueued() int {
	m := 0
	for _, s := range tl.Samples {
		if s.Queued > m {
			m = s.Queued
		}
	}
	return m
}

// Downsample returns at most n samples evenly spread over the recording
// (always including the last); n <= 0 or n ≥ len returns all samples.
func (tl *Timeline) Downsample(n int) []TimelineSample {
	total := len(tl.Samples)
	if n <= 0 || n >= total {
		return tl.Samples
	}
	out := make([]TimelineSample, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, tl.Samples[(i+1)*total/n-1])
	}
	return out
}

// WriteCSV emits t,alloc_mb,busy_nodes,queued,running rows.
func (tl *Timeline) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t", "alloc_mb", "busy_nodes", "queued", "running"}); err != nil {
		return err
	}
	for _, s := range tl.Samples {
		rec := []string{
			strconv.FormatFloat(s.T, 'f', 1, 64),
			strconv.FormatInt(s.AllocMB, 10),
			strconv.Itoa(s.BusyNodes),
			strconv.Itoa(s.Queued),
			strconv.Itoa(s.Running),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

var _ Observer = (*Timeline)(nil)
