package core

import (
	"bytes"
	"strings"
	"testing"

	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
)

func TestTimelineTracksOccupancy(t *testing.T) {
	tl := NewTimeline()
	cfg := baseConfig(3, 1000, policy.Dynamic)
	cfg.Observer = tl
	jobs := []*job.Job{
		mkJob(1, 0, 2, 800, 2000, memtrace.Constant(200)),
		mkJob(2, 100, 1, 500, 500, memtrace.Constant(400)),
	}
	res := runSim(t, cfg, jobs)
	if res.Completed != 2 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if len(tl.Samples) == 0 {
		t.Fatal("no samples recorded")
	}
	// The final sample must show an empty system.
	last := tl.Samples[len(tl.Samples)-1]
	if last.AllocMB != 0 || last.BusyNodes != 0 || last.Queued != 0 || last.Running != 0 {
		t.Fatalf("final sample not empty: %+v", last)
	}
	// Peak allocation covers both jobs (2×800 + 1×500) before job 1's
	// first usage update shrinks it.
	if got := tl.PeakAllocMB(); got < 2100 {
		t.Fatalf("peak alloc = %d, want ≥ 2100", got)
	}
	// Samples are time-ordered.
	for i := 1; i < len(tl.Samples); i++ {
		if tl.Samples[i].T < tl.Samples[i-1].T {
			t.Fatal("samples not time-ordered")
		}
	}
}

func TestTimelineQueueDepth(t *testing.T) {
	tl := NewTimeline()
	cfg := baseConfig(1, 1000, policy.Static)
	cfg.Observer = tl
	var jobs []*job.Job
	for i := 1; i <= 5; i++ {
		jobs = append(jobs, mkJob(i, 0, 1, 500, 100, memtrace.Constant(500)))
	}
	runSim(t, cfg, jobs)
	// All five submitted at t=0; one starts immediately, four queue.
	if got := tl.PeakQueued(); got != 4 && got != 5 {
		t.Fatalf("peak queue = %d, want 4 or 5", got)
	}
}

func TestTimelineOOMAccounting(t *testing.T) {
	tl := NewTimeline()
	usage := memtrace.MustNew([]memtrace.Point{{T: 0, MB: 100}, {T: 400, MB: 5000}})
	j := mkJob(1, 0, 1, 200, 2000, usage)
	cfg := baseConfig(2, 1000, policy.Dynamic)
	cfg.MaxRestarts = 2
	cfg.Observer = tl
	runSim(t, cfg, []*job.Job{j})
	last := tl.Samples[len(tl.Samples)-1]
	if last.AllocMB != 0 || last.Running != 0 || last.Queued != 0 {
		t.Fatalf("OOM path leaked occupancy: %+v", last)
	}
}

func TestTimelineDownsample(t *testing.T) {
	tl := NewTimeline()
	for i := 0; i < 100; i++ {
		tl.Samples = append(tl.Samples, TimelineSample{T: float64(i)})
	}
	ds := tl.Downsample(10)
	if len(ds) != 10 {
		t.Fatalf("len = %d", len(ds))
	}
	if ds[9].T != 99 {
		t.Fatalf("last sample T = %g, want 99", ds[9].T)
	}
	if got := tl.Downsample(0); len(got) != 100 {
		t.Fatalf("Downsample(0) = %d samples", len(got))
	}
	if got := tl.Downsample(1000); len(got) != 100 {
		t.Fatalf("Downsample(1000) = %d samples", len(got))
	}
}

func TestTimelineCSV(t *testing.T) {
	tl := NewTimeline()
	cfg := baseConfig(2, 1000, policy.Static)
	cfg.Observer = tl
	runSim(t, cfg, []*job.Job{mkJob(1, 0, 1, 500, 100, memtrace.Constant(500))})
	var buf bytes.Buffer
	if err := tl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "t,alloc_mb,busy_nodes,queued,running" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines)-1 != len(tl.Samples) {
		t.Fatalf("csv rows = %d, samples = %d", len(lines)-1, len(tl.Samples))
	}
}

func TestWriteJobsCSV(t *testing.T) {
	cfg := baseConfig(2, 1000, policy.Dynamic)
	jobs := []*job.Job{
		mkJob(1, 0, 1, 500, 100, memtrace.Constant(400)),
		mkJob(2, 10, 1, 500, 200, memtrace.Constant(400)),
	}
	res := runSim(t, cfg, jobs)
	var buf bytes.Buffer
	if err := res.WriteJobsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 rows", len(lines))
	}
	if !strings.HasPrefix(lines[0], "id,nodes,request_mb") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "completed") {
		t.Fatalf("row = %q, want completed outcome", lines[1])
	}
}
