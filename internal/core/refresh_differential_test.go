package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
	"dismem/internal/sched"
	"dismem/internal/telemetry"
	"dismem/internal/topology"
)

// differentialScenario builds one randomized configuration and a job
// generator that produces identical traces on every call, so the same
// scenario can be run through both refresh implementations.
func differentialScenario(seed int64) (Config, func() []*job.Job) {
	rng := rand.New(rand.NewSource(seed*7919 + 17))
	nodes := 4 + rng.Intn(9)
	capMB := int64(800 + rng.Intn(5)*400)
	pols := []policy.Kind{policy.Baseline, policy.Static, policy.Dynamic}

	cfg := baseConfig(nodes, capMB, pols[int(seed)%len(pols)])
	cfg.Cluster.LargeFrac = []float64{0, 0.25, 0.5}[rng.Intn(3)]
	cfg.Backfill = []BackfillMode{EASYBackfill, ConservativeBackfill, NoBackfill}[rng.Intn(3)]
	cfg.EnforceTimeLimit = rng.Intn(2) == 0
	cfg.OOM = OOMMode(rng.Intn(2))
	cfg.MaxRestarts = 1 + rng.Intn(3)
	cfg.UpdateInterval = 40 + float64(rng.Intn(100))
	cfg.UpdateJitter = 0.2
	cfg.Seed = seed
	if rng.Intn(3) == 0 {
		// Exercise the hop-weighted remote fractions: with a topology and a
		// hop penalty, the cached max fraction path sees values above 1.
		topo := topology.Design(nodes)
		cfg.Topology = &topo
		cfg.HopPenalty = 0.5
	}

	jobSeed := seed*104729 + 5
	mkJobs := func() []*job.Job {
		jr := rand.New(rand.NewSource(jobSeed))
		n := 6 + jr.Intn(10)
		jobs := make([]*job.Job, 0, n)
		for i := 1; i <= n; i++ {
			req := int64(150 + jr.Intn(int(capMB)))
			runtime := 100 + float64(jr.Intn(900))
			var usage *memtrace.Trace
			switch jr.Intn(4) {
			case 0:
				usage = memtrace.Constant(req)
			case 1: // shrinks: the dynamic policy returns memory mid-run
				usage = memtrace.MustNew([]memtrace.Point{
					{T: 0, MB: req}, {T: runtime / 2, MB: req/2 + 1},
				})
			case 2: // grows past the request: borrows remotely
				usage = memtrace.MustNew([]memtrace.Point{
					{T: 0, MB: req / 2}, {T: runtime, MB: req + capMB/2},
				})
			default: // grows past the whole pool: OOM kills and restarts
				usage = memtrace.MustNew([]memtrace.Point{
					{T: 0, MB: req / 2}, {T: runtime, MB: 4 * capMB * int64(nodes)},
				})
			}
			j := mkJob(i, float64(jr.Intn(600)), 1+jr.Intn(3), req, runtime, usage)
			if jr.Intn(2) == 0 {
				j.Profile = streamProfile()
			}
			if jr.Intn(3) == 0 {
				j.LimitSec = runtime * 1.2 // tight limit: time-outs under slowdown
			}
			jobs = append(jobs, j)
		}
		return jobs
	}
	return cfg, mkJobs
}

// TestDifferentialRefreshIncrementalVsRescan runs randomized scenarios —
// all three policies, all backfill modes, OOM restart/abandon paths, with
// and without topology weighting — through the incremental refresh and the
// retained full-rescan reference, asserting the Results are deeply equal and
// the telemetry JSONL logs are byte-identical. This is the end-to-end proof
// that the cached contention state, the O(1) resource summary and the reused
// scratch cannot change a single emitted byte.
func TestDifferentialRefreshIncrementalVsRescan(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg, mkJobs := differentialScenario(seed)
			run := func(ref bool) (*Result, []byte) {
				var buf bytes.Buffer
				c := cfg
				c.Telemetry = telemetry.New(telemetry.Options{
					Sink:           telemetry.NewJSONL(&buf),
					SampleInterval: 90,
				})
				s, err := New(c, mkJobs())
				if err != nil {
					t.Fatal(err)
				}
				s.refRescan = ref
				res, err := s.Run()
				if err != nil {
					t.Fatal(err)
				}
				if err := c.Telemetry.Close(); err != nil {
					t.Fatal(err)
				}
				return res, buf.Bytes()
			}
			incRes, incLog := run(false)
			refRes, refLog := run(true)
			if !reflect.DeepEqual(incRes, refRes) {
				t.Fatalf("results diverged\nincremental: %+v\nrescan:      %+v", incRes, refRes)
			}
			if !bytes.Equal(incLog, refLog) {
				t.Fatalf("telemetry logs diverged (%d vs %d bytes)", len(incLog), len(refLog))
			}
			if incRes.Completed+incRes.TimedOut+incRes.Abandoned == 0 && !incRes.Infeasible {
				t.Fatal("scenario exercised nothing")
			}
		})
	}
}

// midRunSimulator builds a simulator and stops its clock mid-run with many
// jobs still running, for white-box refresh and backfill measurements.
func midRunSimulator(tb testing.TB, nJobs, nodes int, bf BackfillMode) *Simulator {
	tb.Helper()
	cfg := baseConfig(nodes, 4096, policy.Dynamic)
	cfg.CheckInvariants = false
	cfg.Backfill = bf
	cfg.UpdateInterval = 100
	cfg.Horizon = 1000 // freeze mid-flight: jobs below run for 20000 s
	jobs := make([]*job.Job, 0, nJobs)
	for i := 1; i <= nJobs; i++ {
		req := int64(1024 + (i%7)*256)
		usage := memtrace.MustNew([]memtrace.Point{
			{T: 0, MB: req / 2}, {T: 10000, MB: req + 512},
		})
		j := mkJob(i, float64(i%40), 1+i%3, req, 20000, usage)
		if i%2 == 0 {
			j.Profile = streamProfile()
		}
		jobs = append(jobs, j)
	}
	s, err := New(cfg, jobs)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		tb.Fatal(err)
	}
	if len(s.running) == 0 {
		tb.Fatal("no jobs running at the horizon")
	}
	return s
}

// TestRefreshAndBackfillPassAllocationFree asserts the per-event hot paths
// allocate nothing at steady state: the incremental refresh works entirely
// out of cached and scratch storage, and one conservative-backfill profile
// build reuses the pooled buffers.
func TestRefreshAndBackfillPassAllocationFree(t *testing.T) {
	s := midRunSimulator(t, 32, 48, ConservativeBackfill)
	s.refreshAll() // warm caches and scratch
	full := func() {
		s.trafficValid = false // defeat the elision: measure the full recompute
		s.refreshAll()
	}
	if got := testing.AllocsPerRun(50, full); got != 0 {
		t.Fatalf("refreshAll allocates %.1f per call at steady state, want 0", got)
	}
	if got := testing.AllocsPerRun(50, func() { s.refreshAll() }); got != 0 {
		t.Fatalf("elided refreshAll allocates %.1f per call, want 0", got)
	}
	if s.prof == nil {
		s.prof = &sched.Profile{}
	}
	rebuild := func() {
		s.prof.Reset(s.eng.Now(), s.currentResources(), s.releases())
	}
	rebuild() // size the pooled buffers
	if got := testing.AllocsPerRun(50, rebuild); got != 0 {
		t.Fatalf("backfill profile rebuild allocates %.1f per pass, want 0", got)
	}
}

// BenchmarkRefresh isolates one contention refresh — the unit of work every
// start/finish/adjust/OOM event pays — at a high concurrent-running count,
// comparing the incremental path against the retained full rescan.
func BenchmarkRefresh(b *testing.B) {
	for _, mode := range []struct {
		name  string
		ref   bool
		elide bool
	}{{"incremental", false, false}, {"rescan", true, false}, {"elided", false, true}} {
		b.Run(mode.name, func(b *testing.B) {
			s := midRunSimulator(b, 96, 128, EASYBackfill)
			s.refRescan = mode.ref
			s.refreshAll()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !mode.elide {
					s.trafficValid = false
				}
				s.refreshAll()
			}
		})
	}
}
