package core_test

import (
	"fmt"

	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
	"dismem/internal/slowdown"
)

// A minimal end-to-end simulation: one job that requests 1500 MB/node but
// only ever uses 300 MB runs under the dynamic policy; its overallocation
// is reclaimed at the first usage update.
func ExampleSimulator() {
	profile := &slowdown.Profile{
		Name: "example", Nodes: 1, RuntimeSec: 3600, BandwidthGBs: 1,
		Sens: slowdown.Curve{{Pressure: 0, Penalty: 0}},
	}
	j := &job.Job{
		ID:          1,
		Nodes:       1,
		RequestMB:   1500,
		LimitSec:    7200,
		BaseRuntime: 3600,
		Usage:       memtrace.Constant(300),
		Profile:     profile,
	}
	var tally core.Tally
	sim, err := core.New(core.Config{
		Cluster:  cluster.Config{Nodes: 2, Cores: 32, NormalMB: 1024},
		Policy:   policy.Dynamic,
		Observer: &tally,
	}, []*job.Job{j})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := sim.Run()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("completed=%d response=%.0fs reclaimed=%dMB\n",
		res.Completed, res.Records[0].ResponseTime(), tally.ReclaimedMB)
	// Output: completed=1 response=3600s reclaimed=1200MB
}
