package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
	"dismem/internal/telemetry"
)

// telemetryWorkload is a small mixed scenario that exercises every emission
// path: queueing, backfill, dynamic growth and shrink, OOM restart, and
// teardown.
func telemetryWorkload() []*job.Job {
	ramp := memtrace.MustNew([]memtrace.Point{{T: 0, MB: 200}, {T: 200, MB: 900}, {T: 400, MB: 1400}})
	return []*job.Job{
		mkJob(1, 0, 2, 900, 800, memtrace.Constant(850)),
		mkJob(2, 5, 1, 900, 600, ramp), // grows past its node: borrows remotely
		mkJob(3, 10, 3, 800, 400, memtrace.Constant(700)),
		mkJob(4, 15, 1, 300, 50, memtrace.Constant(250)), // short: backfill candidate
		mkJob(5, 20, 1, 500, 300, memtrace.Constant(450)),
	}
}

func telemetryConfig(pol policy.Kind) Config {
	cfg := baseConfig(4, 1000, pol)
	cfg.EnforceTimeLimit = true
	return cfg
}

// TestTelemetryDoesNotPerturbResults locks the core guarantee: attaching a
// recorder (with sampling on) must leave the simulation Result bit-identical
// to a telemetry-off run.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	for _, pol := range []policy.Kind{policy.Baseline, policy.Static, policy.Dynamic} {
		off := runSim(t, telemetryConfig(pol), telemetryWorkload())

		cfg := telemetryConfig(pol)
		cfg.Telemetry = telemetry.New(telemetry.Options{SampleInterval: 30})
		on := runSim(t, cfg, telemetryWorkload())

		if !reflect.DeepEqual(off, on) {
			t.Fatalf("%v: telemetry changed the result:\noff: %+v\non:  %+v", pol, off, on)
		}
	}
}

// TestTelemetryEventStreamConsistency cross-checks the event stream against
// the Result and the ledger laws: submit/end pairing, grant/revoke balance,
// and sample sanity.
func TestTelemetryEventStreamConsistency(t *testing.T) {
	mem := &telemetry.MemorySink{}
	cfg := telemetryConfig(policy.Dynamic)
	cfg.Telemetry = telemetry.New(telemetry.Options{Sink: mem, SampleInterval: 30})
	res := runSim(t, cfg, telemetryWorkload())

	rec := cfg.Telemetry
	if got := rec.Count(telemetry.KindJobEnd); got < uint64(res.Completed) {
		t.Fatalf("job_end events %d < completed jobs %d", got, res.Completed)
	}
	starts := rec.Count(telemetry.KindJobStart)
	if starts == 0 {
		t.Fatal("no job_start events")
	}

	var completedEnds, oomEnds int
	var grantMB, revokeMB, shrunkMB int64
	for _, e := range mem.Events {
		switch e.Kind {
		case telemetry.KindJobEnd:
			if e.Detail == "completed" {
				completedEnds++
			}
		case telemetry.KindJobAttemptEnd:
			if e.Detail == "oom-killed" {
				oomEnds++
			}
		case telemetry.KindLeaseGrant:
			grantMB += e.MB
		case telemetry.KindLeaseRevoke:
			revokeMB += e.MB
		case telemetry.KindLeaseAdjust:
			// Aux is the remote share of the resize; a negative share is
			// remote memory returned by the shrink path. (Positive shares
			// duplicate the per-lender grant events, which carry the flow.)
			if e.Aux < 0 {
				shrunkMB += -e.Aux
			}
		}
	}
	if completedEnds != res.Completed {
		t.Fatalf("completed job_end events %d, Result.Completed %d", completedEnds, res.Completed)
	}
	if oomEnds != res.OOMKills {
		t.Fatalf("oom job_attempt_end events %d, Result.OOMKills %d", oomEnds, res.OOMKills)
	}
	// Everything borrowed is eventually returned: every granted megabyte
	// comes back either through a shrink or a teardown revoke.
	if grantMB != revokeMB+shrunkMB {
		t.Fatalf("lease flow unbalanced: granted %d != revoked %d + shrunk %d",
			grantMB, revokeMB, shrunkMB)
	}

	s := rec.Series()
	if s.Len() == 0 {
		t.Fatal("sampler recorded nothing")
	}
	for i := 0; i < s.Len(); i++ {
		sm := s.At(i)
		if sm.FreeMB < 0 || sm.LentMB < 0 || sm.Queue < 0 || sm.Busy < 0 || sm.Running < 0 {
			t.Fatalf("negative sample at t=%g: %+v", sm.T, sm)
		}
		if i > 0 && sm.T <= s.At(i-1).T {
			t.Fatalf("samples out of order at %d: %g after %g", i, sm.T, s.At(i-1).T)
		}
	}
	// Events and samples carry monotonically non-decreasing timestamps.
	for i := 1; i < len(mem.Events); i++ {
		if mem.Events[i].T < mem.Events[i-1].T {
			t.Fatalf("event timestamps regress at %d: %+v after %+v",
				i, mem.Events[i], mem.Events[i-1])
		}
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTelemetryOneFinalEndPerJob is the regression test for the OOM-abandon
// double-emit: a job killed by OOM and then abandoned used to produce two
// job_end events (the kill and the abandonment), so aggregating terminal
// events over-counted. With the attempt/final split, every job that reaches
// a terminal outcome emits exactly one job_end, and each OOM kill emits one
// job_attempt_end.
func TestTelemetryOneFinalEndPerJob(t *testing.T) {
	mem := &telemetry.MemorySink{}
	cfg := telemetryConfig(policy.Dynamic)
	cfg.MaxRestarts = 2 // the second OOM kill abandons: the old double-emit case
	cfg.Telemetry = telemetry.New(telemetry.Options{Sink: mem})
	// Job 6 grows past the whole pool, so every attempt OOMs until the
	// restart cap abandons it; the rest of the workload completes normally.
	jobs := telemetryWorkload()
	hog := memtrace.MustNew([]memtrace.Point{{T: 0, MB: 100}, {T: 300, MB: 9000}})
	jobs = append(jobs, mkJob(6, 25, 1, 200, 1000, hog))
	res := runSim(t, cfg, jobs)
	if res.OOMKills == 0 || res.Abandoned == 0 {
		t.Fatalf("workload did not exercise the OOM-abandon path: %+v", res)
	}

	ends := map[int]int{}
	attemptEnds := 0
	for _, e := range mem.Events {
		switch e.Kind {
		case telemetry.KindJobEnd:
			if e.Detail == "oom-killed" {
				t.Fatalf("OOM kill emitted as a final job_end: %+v", e)
			}
			ends[e.Job]++
		case telemetry.KindJobAttemptEnd:
			attemptEnds++
		}
	}
	for id, n := range ends {
		if n != 1 {
			t.Fatalf("job %d emitted %d job_end events, want exactly 1", id, n)
		}
	}
	terminal := res.Completed + res.TimedOut + res.Abandoned
	if len(ends) != terminal {
		t.Fatalf("%d jobs emitted job_end, Result has %d terminal outcomes", len(ends), terminal)
	}
	if attemptEnds != res.OOMKills {
		t.Fatalf("job_attempt_end events %d, Result.OOMKills %d", attemptEnds, res.OOMKills)
	}
}

// TestTelemetrySamplerDoesNotExtendRun asserts the trailing sampler tick
// neither keeps the run alive nor moves the makespan.
func TestTelemetrySamplerDoesNotExtendRun(t *testing.T) {
	cfg := baseConfig(2, 1000, policy.Static)
	cfg.Telemetry = telemetry.New(telemetry.Options{SampleInterval: 7})
	j := mkJob(1, 10, 1, 500, 1000, memtrace.Constant(400))
	res := runSim(t, cfg, []*job.Job{j})
	if math.Abs(res.Makespan-1010) > 1e-6 {
		t.Fatalf("makespan = %g, want 1010 (sampler must not extend it)", res.Makespan)
	}
	s := cfg.Telemetry.Series()
	if s.Len() == 0 {
		t.Fatal("no samples")
	}
	if last := s.T[s.Len()-1]; last > 1010+7 {
		t.Fatalf("sampler ran to %g, long past the last event at 1010", last)
	}
}

// TestTelemetryByteIdenticalLogs is the determinism guarantee at the core
// level: two runs with the same seed and parameters must produce
// byte-identical JSONL event logs.
func TestTelemetryByteIdenticalLogs(t *testing.T) {
	runLog := func() []byte {
		var buf bytes.Buffer
		cfg := telemetryConfig(policy.Dynamic)
		cfg.Telemetry = telemetry.New(telemetry.Options{
			Sink:           telemetry.NewJSONL(&buf),
			SampleInterval: 30,
		})
		runSim(t, cfg, telemetryWorkload())
		if err := cfg.Telemetry.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := runLog(), runLog()
	if len(a) == 0 {
		t.Fatal("empty event log")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed and parameters produced different event logs")
	}
	// And the log round-trips through the reader.
	log, err := telemetry.ReadLog(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) == 0 || log.Series.Len() == 0 {
		t.Fatalf("decoded log empty: %d events, %d samples", len(log.Events), log.Series.Len())
	}
}

// TestTelemetryBackfillEvents checks holes and placements reach the stream.
func TestTelemetryBackfillEvents(t *testing.T) {
	mk := func(id int, submit float64, nodes int, runtime, limit float64) *job.Job {
		j := mkJob(id, submit, nodes, 100, runtime, memtrace.Constant(100))
		j.LimitSec = limit
		return j
	}
	jobs := []*job.Job{
		mk(1, 0, 1, 900, 1000),
		mk(2, 10, 2, 100, 200), // head: blocked until job 1 ends
		mk(3, 20, 1, 40, 50),   // short: must backfill
	}
	cfg := baseConfig(2, 1000, policy.Static)
	cfg.EnforceTimeLimit = true
	mem := &telemetry.MemorySink{}
	cfg.Telemetry = telemetry.New(telemetry.Options{Sink: mem})
	runSim(t, cfg, jobs)
	if cfg.Telemetry.Count(telemetry.KindBackfillHole) == 0 {
		t.Fatal("no backfill_hole events for a blocked head")
	}
	placed := false
	for _, e := range mem.Events {
		if e.Kind == telemetry.KindBackfillPlace && e.Job == 3 {
			placed = true
		}
	}
	if !placed {
		t.Fatal("job 3 backfilled without a backfill_place event")
	}
}

// TestTelemetryWatermarksFire drives the pool low and expects crossings.
func TestTelemetryWatermarksFire(t *testing.T) {
	mem := &telemetry.MemorySink{}
	cfg := baseConfig(2, 1000, policy.Static)
	cfg.Telemetry = telemetry.New(telemetry.Options{Sink: mem})
	jobs := []*job.Job{
		mkJob(1, 0, 1, 950, 200, memtrace.Constant(900)),
		mkJob(2, 0, 1, 950, 200, memtrace.Constant(900)),
	}
	runSim(t, cfg, jobs)
	if cfg.Telemetry.Count(telemetry.KindPoolWatermark) == 0 {
		t.Fatal("pool dropped to 5% free without a watermark event")
	}
}
