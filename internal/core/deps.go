package core

import (
	"fmt"

	"dismem/internal/job"
)

// Job dependencies (SWF "Preceding Job Number", Slurm's
// --dependency=afterok): a dependent job is held in the queue until its
// predecessor completes. If the predecessor ends any other way (timeout,
// abandonment) the dependent can never run and is abandoned, as Slurm
// cancels afterok dependents of failed jobs.

// checkDependencies validates that every dependency exists and that the
// dependency graph is acyclic.
func checkDependencies(jobs []*job.Job, byID map[int]*job.Job) error {
	for _, j := range jobs {
		if j.DependsOn == 0 {
			continue
		}
		if _, ok := byID[j.DependsOn]; !ok {
			return fmt.Errorf("core: job %d depends on unknown job %d", j.ID, j.DependsOn)
		}
	}
	// Cycle check: follow each chain with a visited set.
	state := make(map[int]int, len(jobs)) // 0 unseen, 1 in progress, 2 done
	var follow func(id int) error
	follow = func(id int) error {
		switch state[id] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("core: dependency cycle through job %d", id)
		}
		state[id] = 1
		if dep := byID[id].DependsOn; dep != 0 {
			if err := follow(dep); err != nil {
				return err
			}
		}
		state[id] = 2
		return nil
	}
	for _, j := range jobs {
		if err := follow(j.ID); err != nil {
			return err
		}
	}
	return nil
}

// depState classifies a job's dependency.
type depState int

const (
	depSatisfied depState = iota // no dependency, or predecessor completed
	depPending                   // predecessor not finished yet
	depFailed                    // predecessor ended without completing
)

// dependencyState reports whether the job may be scheduled.
func (s *Simulator) dependencyState(j *job.Job) depState {
	if j.DependsOn == 0 {
		return depSatisfied
	}
	rec, ok := s.records[j.DependsOn]
	if !ok {
		return depFailed // unreachable after checkDependencies
	}
	switch rec.Outcome {
	case Completed:
		return depSatisfied
	case TimedOut, Abandoned:
		return depFailed
	}
	return depPending
}

// cancelDependents abandons every *queued* job whose dependency chain is
// now unsatisfiable because job `failed` terminated without completing.
// Cancellation cascades: an abandoned dependent fails its own queued
// dependents. Jobs not yet submitted are rejected at submission time
// instead (onSubmit checks dependencyState).
func (s *Simulator) cancelDependents(failed int) {
	for _, j := range s.jobs {
		if j.DependsOn != failed {
			continue
		}
		if !s.queue.Contains(j.ID) {
			continue // running, finished, or not yet submitted
		}
		rec := s.records[j.ID]
		s.queue.Remove(j.ID)
		rec.Outcome = Abandoned
		rec.Finish = s.eng.Now()
		s.res.Abandoned++
		if s.cfg.Observer != nil {
			s.cfg.Observer.JobFinished(s.eng.Now(), j, Abandoned)
		}
		s.tel.JobEnd(j.ID, Abandoned.String(), rec.Restarts)
		s.cancelDependents(j.ID)
	}
}
