package core

import (
	"encoding/csv"
	"io"
	"strconv"

	"dismem/internal/job"
)

// Outcome is the final disposition of one job.
type Outcome int

const (
	// Pending means the simulation ended (horizon) before the job ran to
	// completion.
	Pending Outcome = iota
	// Completed means the job finished its work.
	Completed
	// TimedOut means the job was killed at its wallclock limit.
	TimedOut
	// Abandoned means the job hit the OOM restart cap and was given up.
	Abandoned
)

func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case TimedOut:
		return "timed-out"
	case Abandoned:
		return "abandoned"
	}
	return "pending"
}

// AttemptEnd describes how one execution attempt terminated.
type AttemptEnd int

const (
	// AttemptRunning marks an attempt still executing when the horizon
	// cut the simulation off.
	AttemptRunning AttemptEnd = iota
	// AttemptCompleted finished the job.
	AttemptCompleted
	// AttemptOOMKilled was terminated by the dynamic policy's
	// out-of-memory handling.
	AttemptOOMKilled
	// AttemptTimedOut hit the wallclock limit.
	AttemptTimedOut
	// AttemptPreempted was descheduled by a what-if branch's
	// deschedule-and-repack overlay (DescheduleRepack); the job re-enters
	// the queue with its progress checkpointed.
	AttemptPreempted
)

func (a AttemptEnd) String() string {
	switch a {
	case AttemptCompleted:
		return "completed"
	case AttemptOOMKilled:
		return "oom-killed"
	case AttemptTimedOut:
		return "timed-out"
	case AttemptPreempted:
		return "preempted"
	}
	return "running"
}

// Attempt is one execution attempt of a job.
type Attempt struct {
	Start float64
	End   float64 // -1 while running
	How   AttemptEnd
}

// JobRecord is the per-job outcome of a simulation.
type JobRecord struct {
	Job        *job.Job
	Outcome    Outcome
	Submit     float64 // submission time
	FirstStart float64 // first dispatch (-1 if never started)
	LastStart  float64 // start of the final attempt (-1 if never started)
	Finish     float64 // completion/abandonment time (-1 if pending)
	Restarts   int     // OOM-induced restarts
	Attempts   []Attempt
}

// WastedWork returns the wallclock consumed by attempts that did not
// complete the job — the cost of OOM restarts and timeouts.
func (r *JobRecord) WastedWork() float64 {
	var w float64
	for _, a := range r.Attempts {
		if a.End >= 0 && a.How != AttemptCompleted {
			w += a.End - a.Start
		}
	}
	return w
}

// WaitTime returns the queue wait before the first dispatch, or -1 if the
// job never started.
func (r *JobRecord) WaitTime() float64 {
	if r.FirstStart < 0 {
		return -1
	}
	return r.FirstStart - r.Submit
}

// ResponseTime returns submission-to-completion time (the paper's response
// time), or -1 if the job did not complete.
func (r *JobRecord) ResponseTime() float64 {
	if r.Finish < 0 || r.Outcome != Completed {
		return -1
	}
	return r.Finish - r.Submit
}

// Stretch returns the final attempt's wallclock over the job's base
// runtime: 1.0 means the job ran contention-free; larger values quantify
// the remote-memory slowdown it experienced. Returns -1 if the job did not
// complete.
func (r *JobRecord) Stretch() float64 {
	if r.Finish < 0 || r.Outcome != Completed || r.LastStart < 0 || r.Job.BaseRuntime <= 0 {
		return -1
	}
	return (r.Finish - r.LastStart) / r.Job.BaseRuntime
}

// Result is the outcome of one simulated scenario.
type Result struct {
	Policy string
	// Infeasible is set when some job can never run under the policy on
	// this system (the paper's "missing bars"); the simulation is then
	// not executed and the remaining fields are zero.
	Infeasible    bool
	InfeasibleJob int // ID of the first offending job

	Records  []JobRecord
	Makespan float64 // time the last event fired

	Completed int
	TimedOut  int
	Abandoned int
	OOMKills  int // total OOM kill events (≥ restarts of abandoned jobs)
	PeakQueue int // deepest the pending queue ever was

	// Time-weighted utilisation integrals (MB·s and node·s) over the
	// makespan, for the utilisation and cost analyses.
	AllocMBSeconds  float64 // memory held by jobs
	UsedMBSeconds   float64 // memory actually touched per the usage traces
	BusyNodeSeconds float64 // nodes running a job

	TotalCapacityMB int64
	Nodes           int
}

// Throughput returns completed jobs per second of makespan.
func (r *Result) Throughput() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Makespan
}

// ResponseTimes returns the response times of all completed jobs.
func (r *Result) ResponseTimes() []float64 {
	var out []float64
	for i := range r.Records {
		if rt := r.Records[i].ResponseTime(); rt >= 0 {
			out = append(out, rt)
		}
	}
	return out
}

// MeanStretch returns the average slowdown experienced by completed jobs
// (1.0 = contention-free), or 0 when nothing completed.
func (r *Result) MeanStretch() float64 {
	var sum float64
	n := 0
	for i := range r.Records {
		if s := r.Records[i].Stretch(); s >= 0 {
			sum += s
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MemoryUtilisation returns used-over-capacity across the makespan, in
// [0,1].
func (r *Result) MemoryUtilisation() float64 {
	if r.Makespan <= 0 || r.TotalCapacityMB == 0 {
		return 0
	}
	return r.UsedMBSeconds / (float64(r.TotalCapacityMB) * r.Makespan)
}

// AllocationUtilisation returns allocated-over-capacity across the makespan.
func (r *Result) AllocationUtilisation() float64 {
	if r.Makespan <= 0 || r.TotalCapacityMB == 0 {
		return 0
	}
	return r.AllocMBSeconds / (float64(r.TotalCapacityMB) * r.Makespan)
}

// NodeUtilisation returns busy-node time over total node time.
func (r *Result) NodeUtilisation() float64 {
	if r.Makespan <= 0 || r.Nodes == 0 {
		return 0
	}
	return r.BusyNodeSeconds / (float64(r.Nodes) * r.Makespan)
}

// WriteJobsCSV emits one row per job with its schedule and outcome, for
// downstream analysis: id, nodes, request_mb, submit_s, first_start_s,
// finish_s, wait_s, response_s, stretch, restarts, wasted_s, outcome.
func (r *Result) WriteJobsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "nodes", "request_mb", "submit_s", "first_start_s",
		"finish_s", "wait_s", "response_s", "stretch", "restarts", "wasted_s", "outcome"}
	if err := cw.Write(header); err != nil {
		return err
	}
	num := func(v float64) string {
		if v < 0 {
			return ""
		}
		return strconv.FormatFloat(v, 'f', 1, 64)
	}
	for i := range r.Records {
		rec := &r.Records[i]
		row := []string{
			strconv.Itoa(rec.Job.ID),
			strconv.Itoa(rec.Job.Nodes),
			strconv.FormatInt(rec.Job.RequestMB, 10),
			num(rec.Submit),
			num(rec.FirstStart),
			num(rec.Finish),
			num(rec.WaitTime()),
			num(rec.ResponseTime()),
			num(rec.Stretch()),
			strconv.Itoa(rec.Restarts),
			num(rec.WastedWork()),
			rec.Outcome.String(),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
