// Package core is the paper's primary contribution: a discrete-event
// simulator of a Slurm-managed HPC cluster with disaggregated memory and
// dynamic memory provisioning.
//
// The Simulator wires together the event engine (internal/sim), the cluster
// memory ledger (internal/cluster), the allocation policies
// (internal/policy), the FIFO + EASY-backfill scheduler (internal/sched) and
// the remote-memory contention model (internal/slowdown). The dynamic
// policy's Monitor → Decider → Actuator → Executor loop (paper §2.2–2.3) is
// realised as per-job memory-update events: the Monitor is replayed from the
// job's offline usage trace, the Decider compares the upcoming window's
// maximum usage with the current allocation, the Actuator resizes the
// allocation (remote-first shrink, local-first growth), and the Executor
// applies the new limits to the simulated node and refreshes the contention
// model.
package core

import (
	"errors"
	"fmt"

	"dismem/internal/cluster"
	"dismem/internal/policy"
	"dismem/internal/telemetry"
	"dismem/internal/topology"
)

// LenderPolicy selects how lenders are ordered when borrowing remote
// memory.
type LenderPolicy int

const (
	// MostFree borrows from the nodes with the most free memory first
	// (the paper's policy).
	MostFree LenderPolicy = iota
	// NearestFirst borrows from the topologically nearest nodes first;
	// requires Config.Topology.
	NearestFirst
)

func (l LenderPolicy) String() string {
	if l == NearestFirst {
		return "nearest-first"
	}
	return "most-free"
}

// OOMMode selects how a job that outgrows the available pool is handled.
type OOMMode int

const (
	// FailRestart terminates the job and resubmits it from scratch.
	// This is the paper's default: system-level OOM is rare (<1 % of
	// jobs even in the most extreme scenario), so the simpler scheme
	// wins.
	FailRestart OOMMode = iota
	// CheckpointRestart resubmits the job with its progress retained up
	// to the kill point, modelling an application-assisted C/R library.
	CheckpointRestart
)

func (m OOMMode) String() string {
	if m == CheckpointRestart {
		return "checkpoint/restart"
	}
	return "fail/restart"
}

// BackfillMode selects the scheduler's backfill algorithm.
type BackfillMode int

const (
	// EASYBackfill reserves only for the queue head; later jobs may jump
	// it if they finish before its shadow time (the paper's setting).
	EASYBackfill BackfillMode = iota
	// ConservativeBackfill gives every examined queued job a reservation,
	// so no backfilled job can delay any earlier job — stronger fairness,
	// less packing.
	ConservativeBackfill
	// NoBackfill runs strict FIFO.
	NoBackfill
)

func (b BackfillMode) String() string {
	switch b {
	case ConservativeBackfill:
		return "conservative"
	case NoBackfill:
		return "none"
	}
	return "easy"
}

// PressureMode selects how remote-memory contention pressure is scoped.
type PressureMode int

const (
	// PressureGlobal is the paper's model: one shared traffic level over
	// the whole fabric, so every allocation change moves the slowdown of
	// every running job.
	PressureGlobal PressureMode = iota
	// PressureDomains partitions the nodes into pressure domains (one per
	// ledger shard, sized from the torus Z-planes when a topology is
	// set). Each domain carries its own traffic sum and ρ; refresh is
	// O(Δ) within the touched domains only, and window members whose
	// jobs touch disjoint domain sets dispatch concurrently.
	PressureDomains
)

func (m PressureMode) String() string {
	if m == PressureDomains {
		return "domains"
	}
	return "global"
}

// Config parameterises one simulation scenario. Defaults (applied by
// Normalize) follow the paper's Table 4.
type Config struct {
	Cluster cluster.Config
	Policy  policy.Kind

	SchedInterval float64 // main scheduling + backfill period (default 30 s)
	QueueDepth    int     // queue/backfill window examined per cycle (default 100)

	UpdateInterval float64 // mean memory-usage update period (default 300 s)
	UpdateJitter   float64 // relative jitter on the per-job update period (default 0.2)

	OOM              OOMMode
	MaxRestarts      int // OOM restarts before the job is abandoned (default 50)
	PriorityBoost    int // restarts before the job's priority is raised (default 3)
	EnforceTimeLimit bool
	// CheckpointInterval applies to CheckpointRestart: progress is
	// retained only at checkpoint boundaries, so a killed job loses the
	// work since its last checkpoint. Zero models ideal continuous
	// checkpointing.
	CheckpointInterval float64
	// DisableBackfill turns off the backfill pass, leaving strict
	// FIFO — the scheduler ablation. Equivalent to Backfill: NoBackfill.
	DisableBackfill bool
	// Backfill selects the backfill algorithm (default EASYBackfill).
	Backfill BackfillMode
	// Observer, when non-nil, receives lifecycle events.
	Observer Observer
	// Telemetry, when non-nil, receives the typed event stream and (when its
	// sampling interval is set) periodic pool samples. A nil recorder is the
	// disabled fast path: every emission is a single pointer compare.
	// Telemetry never perturbs the simulation — results are identical with
	// it on or off. The caller owns the recorder and closes it after Run.
	Telemetry *telemetry.Recorder

	PerNodeRemoteBW float64 // remote-memory fabric bandwidth per node, GB/s (default 10)

	// Topology, when non-nil, enables the torus interconnect model.
	// Cluster node IDs map onto torus endpoints; the torus must have at
	// least as many endpoints as the cluster has nodes.
	Topology *topology.Torus
	// LenderPolicy selects the borrowing order: MostFree (the paper's
	// policy, default) or NearestFirst (topology-aware ablation;
	// requires Topology).
	LenderPolicy LenderPolicy
	// HopPenalty adds to the contention penalty for remote memory more
	// than one hop away: a lease at h hops is weighted
	// 1 + HopPenalty·(h−1). Zero (default) makes distance free, as in
	// the paper's model. Requires Topology when non-zero.
	HopPenalty float64

	Seed            int64
	Horizon         float64 // stop the clock after this time; 0 = run to completion
	MaxEvents       uint64  // runaway backstop: abort after this many events (0 = unlimited)
	CheckInvariants bool    // verify the ledger after every event (slow; tests only)

	// Parallel selects the windowed event executor: events are popped in
	// same-timestamp batches and the contention refresh runs its
	// data-parallel phases on a worker team. Results are bit-identical to
	// the serial executor — the differential tests assert it — with one
	// documented difference: the MaxEvents budget is enforced at window
	// boundaries, so a run may fire the remainder of the current window
	// past the budget before aborting. Off by default.
	Parallel bool
	// Workers sizes the parallel worker team (including the event-loop
	// goroutine). Zero means GOMAXPROCS; 1 keeps the windowed executor but
	// runs every phase inline. Ignored unless Parallel is set.
	Workers int

	// Pressure selects the contention scope: PressureGlobal (the paper's
	// model, default, bit-identical to previous releases) or
	// PressureDomains (per-rack pressure partitions). Each mode is
	// individually deterministic; they produce different — both valid —
	// trajectories.
	Pressure PressureMode
	// Domains sets the pressure-domain count for PressureDomains. Zero
	// resolves to the torus Z extent when a topology is set, else to the
	// ledger shard count when sharded, else 16; always clamped to the
	// node count. Domains are identified with ledger shards, so Normalize
	// forces Cluster.Shards to the resolved count in domains mode.
	Domains int
	// WindowStatsOut, when non-nil, receives a copy of the windowed
	// executor's WindowStats after Run. Lets callers that only see the
	// Config (preset runners, CLIs) observe window-parallelism efficacy.
	WindowStatsOut *WindowStats

	// Interrupt, when non-nil, is polled between events (every
	// interruptStride firings on the serial executor; every window on the
	// windowed one). A non-nil return aborts the run, and Run surfaces the
	// returned error wrapped — the service daemon threads a request
	// context's cancellation through it so a disconnecting client frees
	// the simulation's slot mid-run. An Interrupt that returns nil
	// throughout never perturbs the simulation: results stay a pure
	// function of (Config, jobs, Seed).
	Interrupt func() error
}

// Normalize fills unset fields with the paper's defaults and validates the
// configuration.
func (c *Config) Normalize() error {
	if c.Cluster.Nodes <= 0 {
		return errors.New("core: cluster has no nodes")
	}
	if c.Cluster.Cores <= 0 {
		c.Cluster.Cores = 32
	}
	if c.Cluster.NormalMB <= 0 {
		return errors.New("core: node capacity not set")
	}
	if c.Cluster.LargeFrac < 0 || c.Cluster.LargeFrac > 1 {
		return fmt.Errorf("core: large-node fraction %g out of [0,1]", c.Cluster.LargeFrac)
	}
	if c.SchedInterval <= 0 {
		c.SchedInterval = 30
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 100
	}
	if c.UpdateInterval <= 0 {
		c.UpdateInterval = 300
	}
	if c.UpdateJitter < 0 || c.UpdateJitter >= 1 {
		c.UpdateJitter = 0.2
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 50
	}
	if c.PriorityBoost <= 0 {
		c.PriorityBoost = 3
	}
	if c.PerNodeRemoteBW <= 0 {
		c.PerNodeRemoteBW = 10
	}
	if c.Horizon < 0 {
		return errors.New("core: negative horizon")
	}
	if c.CheckpointInterval < 0 {
		return errors.New("core: negative checkpoint interval")
	}
	if c.DisableBackfill {
		c.Backfill = NoBackfill
	}
	if c.LenderPolicy == NearestFirst && c.Topology == nil {
		return errors.New("core: nearest-first lending requires a topology")
	}
	if c.HopPenalty != 0 {
		if c.HopPenalty < 0 {
			return errors.New("core: negative hop penalty")
		}
		if c.Topology == nil {
			return errors.New("core: hop penalty requires a topology")
		}
	}
	if c.Topology != nil && c.Topology.Size() < c.Cluster.Nodes {
		return fmt.Errorf("core: topology has %d endpoints for %d nodes",
			c.Topology.Size(), c.Cluster.Nodes)
	}
	if c.Cluster.Shards < 0 {
		return errors.New("core: negative shard count")
	}
	if c.Domains < 0 {
		return errors.New("core: negative domain count")
	}
	switch c.Pressure {
	case PressureGlobal:
		if c.Domains != 0 {
			return errors.New("core: Domains set without Pressure: domains")
		}
	case PressureDomains:
		if c.LenderPolicy == NearestFirst {
			return errors.New("core: nearest-first lending is incompatible with pressure domains")
		}
		if c.Domains == 0 {
			switch {
			case c.Topology != nil:
				c.Domains = c.Topology.Z
			case c.Cluster.Shards > 1:
				c.Domains = c.Cluster.Shards
			default:
				c.Domains = 16
			}
		}
		if c.Domains > c.Cluster.Nodes {
			c.Domains = c.Cluster.Nodes
		}
		// Domains are identified with ledger shards: one shard per domain
		// keeps every per-domain resource summary O(1) and makes
		// disjoint-domain window members touch disjoint shard state.
		c.Cluster.Shards = c.Domains
	default:
		return fmt.Errorf("core: unknown pressure mode %d", int(c.Pressure))
	}
	if c.Workers < 0 {
		return errors.New("core: negative worker count")
	}
	return nil
}
