package core

import (
	"fmt"
	"io"

	"dismem/internal/job"
)

// Observer receives simulator lifecycle events. All callbacks run
// synchronously inside the event loop — implementations must not call back
// into the simulator. Any method may be a no-op.
type Observer interface {
	// JobSubmitted fires when a job enters the pending queue (first
	// submission and OOM resubmissions).
	JobSubmitted(t float64, j *job.Job, resubmit bool)
	// JobStarted fires at dispatch with the placed memory totals.
	JobStarted(t float64, j *job.Job, localMB, remoteMB int64)
	// JobFinished fires at any terminal event of an attempt: completion,
	// time limit, or abandonment.
	JobFinished(t float64, j *job.Job, outcome Outcome)
	// JobKilledOOM fires when the dynamic policy kills a job whose usage
	// outgrew the pool.
	JobKilledOOM(t float64, j *job.Job, restarts int)
	// AllocationChanged fires when a memory update resizes a running
	// job's allocation.
	AllocationChanged(t float64, j *job.Job, beforeMB, afterMB int64)
}

// NopObserver implements Observer with no-ops; embed it to implement only
// some callbacks.
type NopObserver struct{}

func (NopObserver) JobSubmitted(float64, *job.Job, bool)              {}
func (NopObserver) JobStarted(float64, *job.Job, int64, int64)        {}
func (NopObserver) JobFinished(float64, *job.Job, Outcome)            {}
func (NopObserver) JobKilledOOM(float64, *job.Job, int)               {}
func (NopObserver) AllocationChanged(float64, *job.Job, int64, int64) {}

// EventLogger is an Observer that writes one line per event, suitable for
// debugging and replay analysis.
type EventLogger struct {
	W io.Writer
}

func (l *EventLogger) JobSubmitted(t float64, j *job.Job, resubmit bool) {
	verb := "submit"
	if resubmit {
		verb = "resubmit"
	}
	fmt.Fprintf(l.W, "%12.1f %-9s job=%d nodes=%d req=%dMB\n", t, verb, j.ID, j.Nodes, j.RequestMB)
}

func (l *EventLogger) JobStarted(t float64, j *job.Job, localMB, remoteMB int64) {
	fmt.Fprintf(l.W, "%12.1f %-9s job=%d local=%dMB remote=%dMB\n", t, "start", j.ID, localMB, remoteMB)
}

func (l *EventLogger) JobFinished(t float64, j *job.Job, outcome Outcome) {
	fmt.Fprintf(l.W, "%12.1f %-9s job=%d outcome=%s\n", t, "finish", j.ID, outcome)
}

func (l *EventLogger) JobKilledOOM(t float64, j *job.Job, restarts int) {
	fmt.Fprintf(l.W, "%12.1f %-9s job=%d restarts=%d\n", t, "oom-kill", j.ID, restarts)
}

func (l *EventLogger) AllocationChanged(t float64, j *job.Job, before, after int64) {
	fmt.Fprintf(l.W, "%12.1f %-9s job=%d %dMB -> %dMB\n", t, "resize", j.ID, before, after)
}

// Tally is an Observer counting events, handy in tests and summaries.
type Tally struct {
	Submitted, Resubmitted, Started, Finished, OOMKills, Resizes int
	ReclaimedMB                                                  int64 // total shrinkage applied by resizes
	GrownMB                                                      int64 // total growth applied by resizes
}

func (c *Tally) JobSubmitted(_ float64, _ *job.Job, resubmit bool) {
	if resubmit {
		c.Resubmitted++
	} else {
		c.Submitted++
	}
}
func (c *Tally) JobStarted(float64, *job.Job, int64, int64) { c.Started++ }
func (c *Tally) JobFinished(float64, *job.Job, Outcome)     { c.Finished++ }
func (c *Tally) JobKilledOOM(float64, *job.Job, int)        { c.OOMKills++ }
func (c *Tally) AllocationChanged(_ float64, _ *job.Job, before, after int64) {
	c.Resizes++
	if after < before {
		c.ReclaimedMB += before - after
	} else {
		c.GrownMB += after - before
	}
}

var (
	_ Observer = NopObserver{}
	_ Observer = (*EventLogger)(nil)
	_ Observer = (*Tally)(nil)
)
