package core

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dismem/internal/cluster"
	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
	"dismem/internal/slowdown"
)

// flatProfile is insensitive to contention, so jobs run at slowdown 1
// regardless of placement — ideal for deterministic timing assertions.
func flatProfile() *slowdown.Profile {
	return &slowdown.Profile{
		Name: "flat", Nodes: 1, RuntimeSec: 100, BandwidthGBs: 1,
		Sens: slowdown.Curve{{Pressure: 0, Penalty: 0}},
	}
}

func streamProfile() *slowdown.Profile {
	return &slowdown.Profile{
		Name: "stream", Nodes: 1, RuntimeSec: 100, BandwidthGBs: 10,
		Sens: slowdown.CurveStream,
	}
}

func mkJob(id int, submit float64, nodes int, reqMB int64, runtime float64, usage *memtrace.Trace) *job.Job {
	return &job.Job{
		ID: id, SubmitTime: submit, Nodes: nodes, RequestMB: reqMB,
		LimitSec: runtime * 10, BaseRuntime: runtime,
		Usage: usage, Profile: flatProfile(),
	}
}

func baseConfig(nodes int, capMB int64, pol policy.Kind) Config {
	return Config{
		Cluster:         cluster.Config{Nodes: nodes, Cores: 32, NormalMB: capMB},
		Policy:          pol,
		UpdateJitter:    1e-12, // effectively none, but explicit
		CheckInvariants: true,
	}
}

func runSim(t *testing.T, cfg Config, jobs []*job.Job) *Result {
	t.Helper()
	s, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSingleJobCompletes(t *testing.T) {
	for _, pol := range []policy.Kind{policy.Baseline, policy.Static, policy.Dynamic} {
		cfg := baseConfig(2, 1000, pol)
		j := mkJob(1, 10, 1, 500, 1000, memtrace.Constant(400))
		res := runSim(t, cfg, []*job.Job{j})
		if res.Completed != 1 {
			t.Fatalf("%v: completed = %d, want 1", pol, res.Completed)
		}
		r := res.Records[0]
		if r.Outcome != Completed {
			t.Fatalf("%v: outcome = %v", pol, r.Outcome)
		}
		// Submission triggers an immediate scheduling pass.
		if r.FirstStart != 10 {
			t.Fatalf("%v: start = %g, want 10", pol, r.FirstStart)
		}
		if math.Abs(r.Finish-1010) > 1e-6 {
			t.Fatalf("%v: finish = %g, want 1010", pol, r.Finish)
		}
		if rt := r.ResponseTime(); math.Abs(rt-1000) > 1e-6 {
			t.Fatalf("%v: response = %g, want 1000", pol, rt)
		}
	}
}

func TestFIFOQueueing(t *testing.T) {
	cfg := baseConfig(1, 1000, policy.Static)
	jobs := []*job.Job{
		mkJob(1, 0, 1, 800, 100, memtrace.Constant(800)),
		mkJob(2, 1, 1, 800, 100, memtrace.Constant(800)),
	}
	res := runSim(t, cfg, jobs)
	if res.Completed != 2 {
		t.Fatalf("completed = %d, want 2", res.Completed)
	}
	r2 := res.Records[1]
	if r2.FirstStart < 100 {
		t.Fatalf("job 2 started at %g, before job 1 finished at 100", r2.FirstStart)
	}
	// It should start promptly after the completion-triggered pass.
	if r2.FirstStart > 130 {
		t.Fatalf("job 2 started at %g, want within a tick of 100", r2.FirstStart)
	}
}

func TestBackfillShortJobJumpsLongHead(t *testing.T) {
	// 2-node cluster. Job A holds one node for 1000 s. Head job B needs
	// both nodes. Short job C (limit 50) can backfill onto the free
	// node; long job D (limit 5000) cannot.
	mk := func(id int, submit float64, nodes int, runtime, limit float64) *job.Job {
		j := mkJob(id, submit, nodes, 100, runtime, memtrace.Constant(100))
		j.LimitSec = limit
		return j
	}
	jobs := []*job.Job{
		mk(1, 0, 1, 900, 1000),
		mk(2, 10, 2, 100, 200),  // head: blocked until job 1 ends
		mk(3, 20, 1, 40, 50),    // short: must backfill
		mk(4, 20, 1, 900, 5000), // long: must wait for the head
	}
	cfg := baseConfig(2, 1000, policy.Static)
	res := runSim(t, cfg, jobs)
	if res.Completed != 4 {
		t.Fatalf("completed = %d, want 4", res.Completed)
	}
	starts := map[int]float64{}
	for _, r := range res.Records {
		starts[r.Job.ID] = r.FirstStart
	}
	if starts[3] >= starts[2] {
		t.Fatalf("short job started at %g, head at %g: no backfill", starts[3], starts[2])
	}
	if starts[4] < starts[2] {
		t.Fatalf("long job started at %g before head at %g: backfill delayed the head", starts[4], starts[2])
	}
}

func TestBaselineInfeasibleLargeRequest(t *testing.T) {
	j := mkJob(1, 0, 1, 1500, 100, memtrace.Constant(1500))
	resB := runSim(t, baseConfig(4, 1000, policy.Baseline), []*job.Job{j})
	if !resB.Infeasible || resB.InfeasibleJob != 1 {
		t.Fatalf("baseline: infeasible = %v (job %d), want true (job 1)", resB.Infeasible, resB.InfeasibleJob)
	}
	resS := runSim(t, baseConfig(4, 1000, policy.Static), []*job.Job{j})
	if resS.Infeasible {
		t.Fatal("static: 1500MB on a 4000MB pool must be feasible")
	}
	if resS.Completed != 1 {
		t.Fatalf("static: completed = %d, want 1", resS.Completed)
	}
}

func TestDynamicReclaimsOverallocation(t *testing.T) {
	// Three nodes of 1000 MB. Job 1 runs on two nodes requesting
	// 1500 MB/node, borrowing 500+500 from node 2, which becomes a
	// memory node. It only uses 100 MB/node. Job 2 (1×800) must wait
	// under Static (no compute-available node) but starts right after
	// the first usage update frees node 2 under Dynamic.
	jobs := func() []*job.Job {
		return []*job.Job{
			mkJob(1, 0, 2, 1500, 5000, memtrace.Constant(100)),
			mkJob(2, 10, 1, 800, 100, memtrace.Constant(700)),
		}
	}
	// Static: job 2 waits the whole 5000 s.
	resS := runSim(t, baseConfig(3, 1000, policy.Static), jobs())
	s2 := resS.Records[1]
	if s2.FirstStart < 5000 {
		t.Fatalf("static: job 2 started at %g, want after job 1 at 5000", s2.FirstStart)
	}
	// Dynamic: job 1's allocation shrinks to ~100/node at the first
	// update (~300 s), freeing room.
	resD := runSim(t, baseConfig(3, 1000, policy.Dynamic), jobs())
	d2 := resD.Records[1]
	if d2.FirstStart > 400 {
		t.Fatalf("dynamic: job 2 started at %g, want shortly after the first update (~300)", d2.FirstStart)
	}
	if resD.Completed != 2 || resD.OOMKills != 0 {
		t.Fatalf("dynamic: completed=%d oom=%d", resD.Completed, resD.OOMKills)
	}
}

func TestDynamicGrowsWithUsage(t *testing.T) {
	// Usage ramps from 100 to 900; the allocation must follow it up
	// without OOM on an otherwise idle system.
	usage := memtrace.MustNew([]memtrace.Point{
		{T: 0, MB: 100}, {T: 1000, MB: 500}, {T: 2000, MB: 900},
	})
	j := mkJob(1, 0, 1, 900, 3000, usage)
	res := runSim(t, baseConfig(2, 1000, policy.Dynamic), []*job.Job{j})
	if res.Completed != 1 || res.OOMKills != 0 {
		t.Fatalf("completed=%d oom=%d, want 1/0", res.Completed, res.OOMKills)
	}
}

func TestOOMFailRestartThenAbandon(t *testing.T) {
	// The job's usage grows beyond the entire pool, so every attempt
	// OOMs; after MaxRestarts it is abandoned.
	usage := memtrace.MustNew([]memtrace.Point{{T: 0, MB: 100}, {T: 400, MB: 5000}})
	j := mkJob(1, 0, 1, 200, 2000, usage)
	cfg := baseConfig(2, 1000, policy.Dynamic)
	cfg.MaxRestarts = 3
	res := runSim(t, cfg, []*job.Job{j})
	if res.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", res.Abandoned)
	}
	if res.OOMKills != 3 {
		t.Fatalf("oom kills = %d, want 3", res.OOMKills)
	}
	if res.Records[0].Outcome != Abandoned {
		t.Fatalf("outcome = %v, want Abandoned", res.Records[0].Outcome)
	}
}

func TestOOMCheckpointRestartRetainsProgress(t *testing.T) {
	// Job B grows to 1200 MB at progress 300, which OOMs while job A
	// (900 MB) occupies the pool. A finishes at t=500; B's retry then
	// succeeds. Under C/R the retry resumes from progress ~300, so B
	// finishes earlier than under F/R.
	mkJobs := func() []*job.Job {
		a := mkJob(1, 0, 1, 900, 500, memtrace.Constant(900))
		bUsage := memtrace.MustNew([]memtrace.Point{{T: 0, MB: 100}, {T: 300, MB: 1200}})
		b := mkJob(2, 0, 1, 100, 1000, bUsage)
		return []*job.Job{a, b}
	}
	run := func(mode OOMMode) *Result {
		cfg := baseConfig(2, 1000, policy.Dynamic)
		cfg.OOM = mode
		cfg.UpdateInterval = 100
		return runSim(t, cfg, mkJobs())
	}
	fr := run(FailRestart)
	cr := run(CheckpointRestart)
	if fr.Completed != 2 || cr.Completed != 2 {
		t.Fatalf("completed: fr=%d cr=%d, want 2/2", fr.Completed, cr.Completed)
	}
	if fr.OOMKills == 0 || cr.OOMKills == 0 {
		t.Fatalf("oom kills: fr=%d cr=%d, want >0", fr.OOMKills, cr.OOMKills)
	}
	frB := fr.Records[1].Finish
	crB := cr.Records[1].Finish
	if crB >= frB {
		t.Fatalf("C/R finish %g not earlier than F/R finish %g", crB, frB)
	}
}

func TestContentionSlowsRemoteJobs(t *testing.T) {
	// A fully local job runs at base runtime; a job with remote memory
	// under a saturated fabric takes longer.
	local := mkJob(1, 0, 1, 500, 1000, memtrace.Constant(500))
	res := runSim(t, baseConfig(2, 1000, policy.Static), []*job.Job{local})
	if got := res.Records[0].Finish; math.Abs(got-1000) > 1e-6 {
		t.Fatalf("local job finish = %g, want 1000", got)
	}

	remote := mkJob(2, 0, 1, 1500, 1000, memtrace.Constant(1500))
	remote.Profile = streamProfile()
	remote.LimitSec = 1e9
	cfg := baseConfig(2, 1000, policy.Static)
	cfg.PerNodeRemoteBW = 1 // tiny fabric: heavy contention
	res2 := runSim(t, cfg, []*job.Job{remote})
	if res2.Completed != 1 {
		t.Fatalf("remote job did not complete: %+v", res2.Records[0])
	}
	if got := res2.Records[0].Finish; got <= 1000 {
		t.Fatalf("remote job finish = %g, want > 1000 (slowdown)", got)
	}
}

func TestTimeLimitEnforced(t *testing.T) {
	remote := mkJob(1, 0, 1, 1500, 1000, memtrace.Constant(1500))
	remote.Profile = streamProfile()
	remote.LimitSec = 1000 // no headroom: any slowdown kills it
	cfg := baseConfig(2, 1000, policy.Static)
	cfg.PerNodeRemoteBW = 1
	cfg.EnforceTimeLimit = true
	res := runSim(t, cfg, []*job.Job{remote})
	if res.TimedOut != 1 {
		t.Fatalf("timed out = %d, want 1", res.TimedOut)
	}
	r := res.Records[0]
	if r.Outcome != TimedOut || math.Abs(r.Finish-1000) > 1e-6 {
		t.Fatalf("record = %+v, want TimedOut at 1000", r)
	}
}

func TestHorizonLeavesPending(t *testing.T) {
	cfg := baseConfig(1, 1000, policy.Static)
	cfg.Horizon = 50
	j := mkJob(1, 0, 1, 100, 1000, memtrace.Constant(100))
	res := runSim(t, cfg, []*job.Job{j})
	if res.Completed != 0 {
		t.Fatalf("completed = %d, want 0", res.Completed)
	}
	if res.Records[0].Outcome != Pending {
		t.Fatalf("outcome = %v, want Pending", res.Records[0].Outcome)
	}
	if res.Records[0].ResponseTime() != -1 {
		t.Fatal("pending job must have no response time")
	}
}

func TestUtilisationAccounting(t *testing.T) {
	cfg := baseConfig(2, 1000, policy.Static)
	j := mkJob(1, 0, 2, 600, 1000, memtrace.Constant(500))
	res := runSim(t, cfg, []*job.Job{j})
	// Allocation: 2 nodes × 600 MB × 1000 s.
	wantAlloc := 2.0 * 600 * 1000
	if math.Abs(res.AllocMBSeconds-wantAlloc) > 1 {
		t.Fatalf("alloc MB·s = %g, want %g", res.AllocMBSeconds, wantAlloc)
	}
	// Usage: 2 nodes × 500 MB × 1000 s.
	wantUsed := 2.0 * 500 * 1000
	if math.Abs(res.UsedMBSeconds-wantUsed) > 1 {
		t.Fatalf("used MB·s = %g, want %g", res.UsedMBSeconds, wantUsed)
	}
	if math.Abs(res.BusyNodeSeconds-2000) > 1e-6 {
		t.Fatalf("busy node·s = %g, want 2000", res.BusyNodeSeconds)
	}
	if u := res.MemoryUtilisation(); math.Abs(u-0.5) > 1e-3 {
		t.Fatalf("memory utilisation = %g, want 0.5", u)
	}
	if u := res.NodeUtilisation(); math.Abs(u-1.0) > 1e-3 {
		t.Fatalf("node utilisation = %g, want 1.0", u)
	}
}

func TestDuplicateJobIDRejected(t *testing.T) {
	jobs := []*job.Job{
		mkJob(1, 0, 1, 100, 100, memtrace.Constant(100)),
		mkJob(1, 5, 1, 100, 100, memtrace.Constant(100)),
	}
	if _, err := New(baseConfig(2, 1000, policy.Static), jobs); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	if _, err := New(Config{}, nil); err == nil {
		t.Fatal("empty config accepted")
	}
	cfg := Config{Cluster: cluster.Config{Nodes: 2}}
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("config without node capacity accepted")
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	gen := func() []*job.Job {
		rng := rand.New(rand.NewSource(7))
		var jobs []*job.Job
		for i := 1; i <= 40; i++ {
			use := 50 + rng.Int63n(900)
			jobs = append(jobs, mkJob(i, float64(rng.Intn(5000)), 1+rng.Intn(3),
				use+rng.Int63n(200), 100+float64(rng.Intn(2000)), memtrace.Constant(use)))
		}
		return jobs
	}
	cfg := baseConfig(8, 1000, policy.Dynamic)
	cfg.Seed = 42
	a := runSim(t, cfg, gen())
	b := runSim(t, cfg, gen())
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("same seed produced different results")
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("makespans differ: %g vs %g", a.Makespan, b.Makespan)
	}
}

// Property: for random feasible workloads, every job reaches a terminal
// state, counters are consistent, and ledger invariants hold throughout
// (CheckInvariants panics inside the run otherwise).
func TestQuickWorkloadConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		polKind := []policy.Kind{policy.Baseline, policy.Static, policy.Dynamic}[rng.Intn(3)]
		cfg := baseConfig(6, 1024, polKind)
		cfg.Seed = seed
		cfg.UpdateInterval = 60
		var jobs []*job.Job
		n := 5 + rng.Intn(25)
		for i := 1; i <= n; i++ {
			nodes := 1 + rng.Intn(3)
			peak := 64 + rng.Int63n(960) // ≤1024 so baseline stays feasible
			var pts []memtrace.Point
			tm := 0.0
			for k := 0; k < 1+rng.Intn(4); k++ {
				pts = append(pts, memtrace.Point{T: tm, MB: 32 + rng.Int63n(peak-31)})
				tm += 50 + rng.Float64()*500
			}
			usage := memtrace.MustNew(pts)
			j := mkJob(i, rng.Float64()*3000, nodes, peak, 100+rng.Float64()*1500, usage)
			jobs = append(jobs, j)
		}
		s, err := New(cfg, jobs)
		if err != nil {
			return false
		}
		res, err := s.Run()
		if err != nil {
			return false
		}
		if res.Infeasible {
			return false // peak ≤ capacity keeps everything feasible
		}
		terminal := res.Completed + res.TimedOut + res.Abandoned
		pending := 0
		for _, r := range res.Records {
			if r.Outcome == Pending {
				pending++
			}
		}
		return terminal+pending == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// errInterruptTest is the sentinel a test Interrupt returns; Run must
// surface it wrapped so callers can errors.Is it back out (the daemon
// matches context.Canceled this way).
var errInterruptTest = errors.New("client went away")

func interruptScenario() (Config, []*job.Job) {
	cfg := baseConfig(4, 1000, policy.Dynamic)
	cfg.CheckInvariants = false
	var jobs []*job.Job
	for i := 0; i < 40; i++ {
		jobs = append(jobs, mkJob(i+1, float64(i)*7, 1, 200, 500, memtrace.Constant(150)))
	}
	return cfg, jobs
}

// An Interrupt that fails immediately aborts the run before any event and
// surfaces the cause wrapped.
func TestInterruptAbortsRun(t *testing.T) {
	cfg, jobs := interruptScenario()
	cfg.Interrupt = func() error { return errInterruptTest }
	s, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err == nil || res != nil {
		t.Fatalf("Run = (%v, %v), want interrupt error", res, err)
	}
	if !errors.Is(err, errInterruptTest) {
		t.Fatalf("err = %v, does not wrap the interrupt cause", err)
	}
}

// The windowed executor polls Interrupt at window boundaries: a cause that
// arrives mid-run aborts between windows, never tearing one.
func TestInterruptWindowedExecutor(t *testing.T) {
	cfg, jobs := interruptScenario()
	cfg.Parallel = true
	cfg.Workers = 1
	polls := 0
	cfg.Interrupt = func() error {
		polls++
		if polls > 3 {
			return errInterruptTest
		}
		return nil
	}
	s, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); !errors.Is(err, errInterruptTest) {
		t.Fatalf("err = %v, want wrapped interrupt cause", err)
	}
	if polls != 4 {
		t.Fatalf("interrupt polled %d times, want 4 (aborts on first failure)", polls)
	}
}

// An Interrupt that never fires must not perturb the simulation: the Result
// is deeply equal to the run without one, polls included.
func TestInterruptNilIsPure(t *testing.T) {
	cfg, jobs := interruptScenario()
	base := runSim(t, cfg, jobs)
	cfg2, jobs2 := interruptScenario()
	cfg2.Interrupt = func() error { return nil }
	withPoll := runSim(t, cfg2, jobs2)
	if !reflect.DeepEqual(base, withPoll) {
		t.Fatal("a nil-returning Interrupt changed the Result")
	}
}
