package core

import (
	"testing"

	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
)

func depJob(id, dependsOn int, submit, runtime float64) *job.Job {
	j := mkJob(id, submit, 1, 300, runtime, memtrace.Constant(300))
	j.DependsOn = dependsOn
	return j
}

func TestDependencyChainRunsInOrder(t *testing.T) {
	// Three-job chain on a 4-node cluster: despite free nodes, each job
	// waits for its predecessor.
	jobs := []*job.Job{
		depJob(1, 0, 0, 100),
		depJob(2, 1, 0, 100),
		depJob(3, 2, 0, 100),
	}
	res := runSim(t, baseConfig(4, 1000, policy.Static), jobs)
	if res.Completed != 3 {
		t.Fatalf("completed = %d, want 3", res.Completed)
	}
	byID := map[int]JobRecord{}
	for _, r := range res.Records {
		byID[r.Job.ID] = r
	}
	if byID[2].FirstStart < byID[1].Finish {
		t.Fatalf("job 2 started at %g before job 1 finished at %g", byID[2].FirstStart, byID[1].Finish)
	}
	if byID[3].FirstStart < byID[2].Finish {
		t.Fatalf("job 3 started at %g before job 2 finished at %g", byID[3].FirstStart, byID[2].Finish)
	}
}

func TestHeldJobDoesNotBlockQueue(t *testing.T) {
	// Job 2 depends on the long job 1; job 3 is independent and must
	// start immediately on the free node rather than queue behind the
	// held job 2.
	jobs := []*job.Job{
		depJob(1, 0, 0, 1000),
		depJob(2, 1, 10, 100),
		depJob(3, 0, 20, 100),
	}
	res := runSim(t, baseConfig(2, 1000, policy.Static), jobs)
	byID := map[int]JobRecord{}
	for _, r := range res.Records {
		byID[r.Job.ID] = r
	}
	if byID[3].FirstStart > 100 {
		t.Fatalf("independent job 3 started at %g, held back by the dependent job", byID[3].FirstStart)
	}
	if byID[2].FirstStart < byID[1].Finish {
		t.Fatal("dependent started before its predecessor finished")
	}
}

func TestDependencyOnFailedJobAbandons(t *testing.T) {
	// Job 1 times out; its dependents (a chain) must be abandoned.
	j1 := mkJob(1, 0, 1, 1500, 1000, memtrace.Constant(1500))
	j1.Profile = streamProfile()
	j1.LimitSec = 1000 // will be killed at the limit under contention
	j2 := depJob(2, 1, 10, 100)
	j3 := depJob(3, 2, 10, 100)
	cfg := baseConfig(2, 1000, policy.Static)
	cfg.PerNodeRemoteBW = 1
	cfg.EnforceTimeLimit = true
	res := runSim(t, cfg, []*job.Job{j1, j2, j3})
	if res.TimedOut != 1 {
		t.Fatalf("timed out = %d, want 1", res.TimedOut)
	}
	if res.Abandoned != 2 {
		t.Fatalf("abandoned = %d, want the dependency chain (2)", res.Abandoned)
	}
	for _, r := range res.Records[1:] {
		if r.Outcome != Abandoned || r.FirstStart != -1 {
			t.Fatalf("dependent %d: %+v, want abandoned without starting", r.Job.ID, r)
		}
	}
}

func TestDependencySubmittedAfterFailure(t *testing.T) {
	// The dependent is submitted after its predecessor already failed.
	j1 := mkJob(1, 0, 1, 1500, 1000, memtrace.Constant(1500))
	j1.Profile = streamProfile()
	j1.LimitSec = 1000
	j2 := depJob(2, 1, 5000, 100) // submitted long after the timeout
	cfg := baseConfig(2, 1000, policy.Static)
	cfg.PerNodeRemoteBW = 1
	cfg.EnforceTimeLimit = true
	res := runSim(t, cfg, []*job.Job{j1, j2})
	if res.Abandoned != 1 {
		t.Fatalf("abandoned = %d, want 1", res.Abandoned)
	}
	if res.Records[1].Finish != 5000 {
		t.Fatalf("dependent abandoned at %g, want at submission (5000)", res.Records[1].Finish)
	}
}

func TestDependencyValidation(t *testing.T) {
	// Unknown dependency.
	jobs := []*job.Job{depJob(1, 99, 0, 100)}
	if _, err := New(baseConfig(2, 1000, policy.Static), jobs); err == nil {
		t.Fatal("unknown dependency accepted")
	}
	// Cycle 1 -> 2 -> 1.
	jobs = []*job.Job{depJob(1, 2, 0, 100), depJob(2, 1, 0, 100)}
	if _, err := New(baseConfig(2, 1000, policy.Static), jobs); err == nil {
		t.Fatal("dependency cycle accepted")
	}
	// Self-dependency rejected by job validation.
	j := depJob(5, 5, 0, 100)
	if err := j.Validate(); err == nil {
		t.Fatal("self-dependency accepted")
	}
}

func TestDependencyWithBackfillModes(t *testing.T) {
	for _, mode := range []BackfillMode{EASYBackfill, ConservativeBackfill, NoBackfill} {
		jobs := []*job.Job{
			depJob(1, 0, 0, 200),
			depJob(2, 1, 0, 100),
			depJob(3, 0, 0, 50),
		}
		cfg := baseConfig(2, 1000, policy.Static)
		cfg.Backfill = mode
		res := runSim(t, cfg, jobs)
		if res.Completed != 3 {
			t.Fatalf("%v: completed = %d, want 3", mode, res.Completed)
		}
		byID := map[int]JobRecord{}
		for _, r := range res.Records {
			byID[r.Job.ID] = r
		}
		if byID[2].FirstStart < byID[1].Finish {
			t.Fatalf("%v: dependency violated", mode)
		}
	}
}
