package core

import (
	"dismem/internal/policy"
	"dismem/internal/sched"
)

// This file holds the what-if overlay hooks a branched simulator applies
// between Fork and Finish. Each hook changes only how the future is
// simulated — past records, the ledger, and the event queue are untouched —
// so an overlay applied to a fork never perturbs the base, and a branch
// with no overlays remains byte-identical to the base's own future.
//
// Hooks must be applied between events: after Start (typically right after
// Fork) and before Finish, never from inside a running event handler.

// SetPolicy swaps the placement policy for the remainder of the run. Jobs
// already running keep their allocations and update cadence; jobs placed
// from now on use the new policy. The Result reports the policy active at
// the end, branch overlays included.
func (s *Simulator) SetPolicy(k policy.Kind) {
	s.cfg.Policy = k
	pol := policy.NewWithRanker(k, s.ranker)
	if s.cfg.Pressure == PressureDomains {
		pol = policy.NewDomainFirst(k)
	}
	s.pol = pol
	if s.res != nil {
		s.res.Policy = k.String()
	}
}

// SetBackfill swaps the backfill algorithm for all future scheduling passes.
func (s *Simulator) SetBackfill(m BackfillMode) {
	s.cfg.Backfill = m
	s.cfg.DisableBackfill = m == NoBackfill
}

// SetUpdateInterval changes the mean memory-update period for jobs
// dispatched from now on; running jobs keep the jittered period they drew at
// dispatch. Non-positive values are ignored.
func (s *Simulator) SetUpdateInterval(v float64) {
	if v > 0 {
		s.cfg.UpdateInterval = v
	}
}

// DescheduleRepack preempts every running job at the current instant and
// hands the emptied cluster back to the scheduler: progress is banked and
// checkpointed in full (a planned migration, unlike an OOM kill, loses no
// work), allocations and leases are released, and the jobs re-enter the
// queue at their current priority for the next immediate scheduling pass to
// repack. This is the descheduling study's core move — "repack this exact
// mid-run state from a clean slate" — and is deterministic: jobs are
// descheduled in ascending job-ID order and requeued in that same order.
func (s *Simulator) DescheduleRepack() {
	if len(s.running) == 0 {
		return
	}
	s.accrue() // integrate utilisation up to now before the ledger moves
	now := s.eng.Now()
	victims := append([]*runningJob(nil), s.runList...) // teardown edits runList
	for _, rj := range victims {
		s.bank(rj)
		s.teardown(rj)
		s.closeAttempt(rj.rec, AttemptPreempted)
		id := rj.j.ID
		s.tel.JobAttemptEnd(id, AttemptPreempted.String(), rj.rec.Restarts)
		// Full progress is retained regardless of the OOM mode: the branch
		// models a coordinated checkpoint-then-migrate, not a crash.
		if rj.progress > 0 {
			s.banked[id] = rj.progress
		}
		s.queue.Push(sched.Entry{JobID: id, Enqueue: now, Priority: s.prio[id]})
		if s.cfg.Observer != nil {
			s.cfg.Observer.JobSubmitted(now, rj.j, true)
		}
		s.tel.JobSubmit(id, true)
	}
	// The running set is empty: every contention cache is trivially stale.
	s.trafficValid = false
	for d := 0; d < s.nDom; d++ {
		s.domValid[d] = false
	}
	s.ensureTick(true)
}
