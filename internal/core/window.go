package core

import (
	"fmt"
	"runtime"

	"dismem/internal/policy"
	"dismem/internal/sim"
	"dismem/internal/slowdown"
	"dismem/internal/sweep"
)

// defaultParMin is the running-set size below which refreshAll stays serial
// even with a worker team: dispatching two channel ops per worker costs
// more than banking a handful of jobs. Tests lower s.parMin to force the
// parallel phases onto small scenarios.
const defaultParMin = 32

// This file is the simulator's window executor: the event loop used when
// Config.Parallel selects the windowed runtime. Each iteration pops every
// event due at the earliest timestamp (sim.Engine.NextWindow), classifies
// the batch from its tags, and dispatches the members.
//
// Under the global contention model dispatch is ALWAYS in pop (serial)
// order. The independence analysis runs — and its verdict is recorded in
// WindowStats — but the shared pressure rho couples every
// allocation-changing event to every running job: each such handler ends in
// refreshAll, which recomputes rho from the whole running set and
// reschedules every finish event, so reordering members would change float
// accumulation order and the telemetry byte stream. The multi-core win
// there lives one level down, in refreshAll's data-parallel phases
// (refreshParallel).
//
// Pressure domains (Config.Pressure: domains) change the coupling: an
// event's refresh touches only the domains its job calls home, so two
// memory updates whose jobs' frozen domain sets are disjoint provably
// commute — they read and write disjoint ledger shards, disjoint contention
// state, and disjoint job sets. windowIndependentDomains detects exactly
// that, and dispatchParallel then runs the members' compute halves
// (banking + allocation resize) concurrently on the worker team and
// replays their commit halves (shared accumulators, engine mutation,
// refresh) serially in pop order. Commit order is fixed, per-domain float
// accumulation order is fixed, so domains-mode runs are deterministic for a
// given configuration — just not byte-comparable to global mode, which is a
// different contention model.
//
// The event budget is enforced at window boundaries: a budget that expires
// mid-window takes effect once the window drains (documented in Config).

// WindowStats counts what the window executor saw: how often windows held
// more than one event and how often the independence analysis could have
// cleared one. It exists to keep the design honest — the numbers back the
// serial-dispatch decision above — and is not part of Result, so serial and
// windowed runs stay DeepEqual-comparable.
type WindowStats struct {
	Windows     int // windows popped
	Events      int // members actually fired
	Multi       int // windows with more than one member
	Independent int // multi-member windows proven reorderable
}

// WindowStats returns the executor's counters; zero when the serial loop ran.
func (s *Simulator) WindowStats() WindowStats { return s.winStats }

// setupParallel builds the worker team and the prebuilt refresh-phase
// closures (Team.Run retains its fn, so a per-call closure literal would
// allocate on every refresh — these capture only the simulator and read the
// per-refresh state from its fields).
func (s *Simulator) setupParallel() {
	if s.parMin == 0 {
		s.parMin = defaultParMin
	}
	w := s.cfg.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 {
		return // windowed executor with every phase inline
	}
	s.team = sweep.NewTeam(w)
	s.parFracs = make([][]float64, s.team.Size())
	s.phaseBank = func(worker, start, end int) {
		for i := start; i < end; i++ {
			rj := s.runList[i]
			s.bankBuf[i] = s.bankDelta(rj)
			if rj.dirty {
				s.parFracs[worker] = s.recontendInto(rj, s.parFracs[worker])
			}
		}
	}
	s.phaseSlow = func(worker, start, end int) {
		rho := s.parRho
		for i := start; i < end; i++ {
			rj := s.runList[i]
			rj.slow = slowdown.JobSlowdownFromMax(rj.j.Profile, rj.maxFrac, rho)
		}
	}
	if s.nDom > 0 {
		s.adjPar = make([]*policy.Adjuster, s.team.Size())
		for i := range s.adjPar {
			s.adjPar[i] = policy.NewAdjuster(s.ranker)
		}
		s.phaseUpdate = func(worker, start, end int) {
			for i := start; i < end; i++ {
				s.dispOuts[i] = s.updateCompute(s.dispRJs[i], s.adjPar[worker])
			}
		}
	}
}

// canDispatchParallel gates the concurrent dispatch of an independent
// window: domains mode (the independence proof relies on domain-confined
// refreshes), a worker team, and no telemetry — the recorder's event stream
// orders emissions, and the compute half emits LeaseAdjust/LeaseGrant.
func (s *Simulator) canDispatchParallel() bool {
	return s.nDom > 0 && s.team != nil && s.tel == nil
}

// dispatchParallel fires one proven-independent window concurrently: take
// every member from the engine first (no member may cancel another — the
// independence proof covers only tagUpdate members, whose handlers cancel
// nothing), run the compute halves on the worker team, then replay the
// commit halves serially in pop order, which fixes seq assignment and float
// accumulation exactly as one chosen serial order would.
func (s *Simulator) dispatchParallel(buf []sim.Fired) {
	s.dispRJs = s.dispRJs[:0]
	for _, f := range buf {
		if s.eng.TakeWindowed(f) {
			s.winStats.Events++
			s.dispRJs = append(s.dispRJs, s.running[int(uint32(f.Tag()))])
		}
	}
	n := len(s.dispRJs)
	if n == 0 {
		return
	}
	s.accrue()
	if cap(s.dispOuts) < n {
		s.dispOuts = make([]updateOutcome, 0, 2*n)
	}
	s.dispOuts = s.dispOuts[:n]
	s.team.Run(n, s.phaseUpdate)
	for i, rj := range s.dispRJs {
		s.updateCommit(rj, s.dispOuts[i])
	}
}

// runWindows drives the engine to completion through event windows,
// reporting whether the event budget was exhausted. Config.Interrupt, when
// set, is polled at every window boundary — windows are the executor's
// atomic unit, so cancellation never tears a half-dispatched window.
func (s *Simulator) runWindows() (bool, error) {
	for {
		if s.cfg.MaxEvents > 0 && s.eng.Fired() >= s.cfg.MaxEvents {
			return true, nil
		}
		if s.cfg.Interrupt != nil {
			if err := s.cfg.Interrupt(); err != nil {
				return false, fmt.Errorf("core: run interrupted at t=%.0f: %w", s.eng.Now(), err)
			}
		}
		s.winBuf = s.eng.NextWindow(s.winBuf)
		if len(s.winBuf) == 0 {
			return false, nil
		}
		s.winStats.Windows++
		if len(s.winBuf) > 1 {
			s.winStats.Multi++
			if s.windowIndependent(s.winBuf) {
				s.winStats.Independent++
				if s.canDispatchParallel() {
					s.dispatchParallel(s.winBuf)
					continue
				}
			}
		}
		for _, f := range s.winBuf {
			if s.eng.FireWindowed(f) {
				s.winStats.Events++
			}
		}
	}
}

// windowIndependent reports whether the window's members provably commute:
// every member carries a tag, the tagged jobs are pairwise distinct, and at
// most one member mutates shared state. All five tagged kinds are mutators
// — submits push the queue and arm the scheduler tick, and finish/limit/
// update handlers end in the global contention refresh — and untagged
// events (the telemetry sampler) order the output byte stream, so the
// criterion passes only for degenerate batches. That emptiness is the
// point: it is the measured justification for serial dispatch, not a
// placeholder (see the file comment and DESIGN.md).
func (s *Simulator) windowIndependent(buf []sim.Fired) bool {
	if s.nDom > 0 {
		return s.windowIndependentDomains(buf)
	}
	mutators := 0
	for i, f := range buf {
		tag := f.Tag()
		if tag == 0 || tagKind(tag) == tagSample {
			// Unclassified: assume the worst. Sampler ticks carry tagSample
			// only so Fork can rebind them; for windowing they keep the exact
			// verdict they had when untagged — they order the telemetry byte
			// stream, so treating them as independent would reorder output.
			return false
		}
		switch tagKind(tag) {
		case tagSubmit, tagTick, tagFinish, tagLimit, tagUpdate:
			mutators++
		}
		id := int(uint32(tag))
		for _, g := range buf[:i] {
			if g.Tag() != 0 && int(uint32(g.Tag())) == id {
				return false // same job twice: ordered by definition
			}
		}
	}
	return mutators <= 1
}

// windowIndependentDomains is the domains-mode independence criterion: every
// member is a memory update of a running job, and the members' frozen domain
// sets are pairwise disjoint. Memory updates read and write only their job,
// its allocation's shards (growth is confined to the domain set), and its
// home domains' contention state, so disjoint domain sets mean disjoint
// footprints. Other event kinds touch cross-domain state — submits arm the
// scheduler, finish/limit handlers release nodes the scheduler may refill —
// and conservatively fail the test. Overlap detection stamps each member's
// domains with a window generation in domStamp, O(total domain-set size).
func (s *Simulator) windowIndependentDomains(buf []sim.Fired) bool {
	s.winGen++
	for _, f := range buf {
		tag := f.Tag()
		if tag == 0 || tagKind(tag) != tagUpdate {
			return false
		}
		rj, ok := s.running[int(uint32(tag))]
		if !ok {
			return false
		}
		for _, d := range rj.domSet {
			if s.domStamp[d] == s.winGen {
				return false // shared domain: members couple
			}
			s.domStamp[d] = s.winGen
		}
	}
	return true
}
