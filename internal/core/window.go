package core

import (
	"runtime"

	"dismem/internal/sim"
	"dismem/internal/slowdown"
	"dismem/internal/sweep"
)

// defaultParMin is the running-set size below which refreshAll stays serial
// even with a worker team: dispatching two channel ops per worker costs
// more than banking a handful of jobs. Tests lower s.parMin to force the
// parallel phases onto small scenarios.
const defaultParMin = 32

// This file is the simulator's window executor: the event loop used when
// Config.Parallel selects the windowed runtime. Each iteration pops every
// event due at the earliest timestamp (sim.Engine.NextWindow), classifies
// the batch from its tags, and dispatches the members.
//
// Dispatch is ALWAYS in pop (serial) order. The independence analysis runs
// — and its verdict is recorded in WindowStats — but under the paper's
// shared-pressure contention model it almost never clears a multi-event
// window: every allocation-changing event (submit via the tick it arms,
// finish, time limit, memory update) ends in refreshAll, which recomputes
// the global pressure rho from every running job and reschedules every
// finish event. Two such events therefore couple no matter which jobs they
// belong to, and reordering them would change float accumulation order and
// the telemetry byte stream. Firing in pop order reproduces serial
// execution exactly — same seq assignment, same clock, same bytes — so the
// windowed runtime is bit-identical by construction, and the differential
// suite asserts it. The multi-core win lives one level down: refreshAll's
// data-parallel phases (refreshParallel) run on the worker team inside each
// event, where the work actually is at 100k-node scale.
//
// The event budget is enforced at window boundaries: a budget that expires
// mid-window takes effect once the window drains (documented in Config).

// WindowStats counts what the window executor saw: how often windows held
// more than one event and how often the independence analysis could have
// cleared one. It exists to keep the design honest — the numbers back the
// serial-dispatch decision above — and is not part of Result, so serial and
// windowed runs stay DeepEqual-comparable.
type WindowStats struct {
	Windows     int // windows popped
	Events      int // members actually fired
	Multi       int // windows with more than one member
	Independent int // multi-member windows proven reorderable
}

// WindowStats returns the executor's counters; zero when the serial loop ran.
func (s *Simulator) WindowStats() WindowStats { return s.winStats }

// setupParallel builds the worker team and the prebuilt refresh-phase
// closures (Team.Run retains its fn, so a per-call closure literal would
// allocate on every refresh — these capture only the simulator and read the
// per-refresh state from its fields).
func (s *Simulator) setupParallel() {
	if s.parMin == 0 {
		s.parMin = defaultParMin
	}
	w := s.cfg.Workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w <= 1 {
		return // windowed executor with every phase inline
	}
	s.team = sweep.NewTeam(w)
	s.parFracs = make([][]float64, s.team.Size())
	s.phaseBank = func(worker, start, end int) {
		for i := start; i < end; i++ {
			rj := s.runList[i]
			s.bankBuf[i] = s.bankDelta(rj)
			if rj.dirty {
				s.parFracs[worker] = s.recontendInto(rj, s.parFracs[worker])
			}
		}
	}
	s.phaseSlow = func(worker, start, end int) {
		rho := s.parRho
		for i := start; i < end; i++ {
			rj := s.runList[i]
			rj.slow = slowdown.JobSlowdownFromMax(rj.j.Profile, rj.maxFrac, rho)
		}
	}
}

// runWindows drives the engine to completion through event windows,
// reporting whether the event budget was exhausted.
func (s *Simulator) runWindows() bool {
	for {
		if s.cfg.MaxEvents > 0 && s.eng.Fired() >= s.cfg.MaxEvents {
			return true
		}
		s.winBuf = s.eng.NextWindow(s.winBuf)
		if len(s.winBuf) == 0 {
			return false
		}
		s.winStats.Windows++
		if len(s.winBuf) > 1 {
			s.winStats.Multi++
			if s.windowIndependent(s.winBuf) {
				s.winStats.Independent++
			}
		}
		for _, f := range s.winBuf {
			if s.eng.FireWindowed(f) {
				s.winStats.Events++
			}
		}
	}
}

// windowIndependent reports whether the window's members provably commute:
// every member carries a tag, the tagged jobs are pairwise distinct, and at
// most one member mutates shared state. All five tagged kinds are mutators
// — submits push the queue and arm the scheduler tick, and finish/limit/
// update handlers end in the global contention refresh — and untagged
// events (the telemetry sampler) order the output byte stream, so the
// criterion passes only for degenerate batches. That emptiness is the
// point: it is the measured justification for serial dispatch, not a
// placeholder (see the file comment and DESIGN.md).
func (s *Simulator) windowIndependent(buf []sim.Fired) bool {
	mutators := 0
	for i, f := range buf {
		tag := f.Tag()
		if tag == 0 {
			return false // unclassified: assume the worst
		}
		switch tagKind(tag) {
		case tagSubmit, tagTick, tagFinish, tagLimit, tagUpdate:
			mutators++
		}
		id := int(uint32(tag))
		for _, g := range buf[:i] {
			if g.Tag() != 0 && int(uint32(g.Tag())) == id {
				return false // same job twice: ordered by definition
			}
		}
	}
	return mutators <= 1
}
