package core

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
	"dismem/internal/telemetry"
)

// runVariant executes one differential scenario under the given executor
// configuration and returns its Result plus the telemetry byte stream.
func runVariant(t *testing.T, cfg Config, jobs []*job.Job,
	shards int, parallel bool, workers, parMin int) (*Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	c := cfg
	c.Cluster.Shards = shards
	c.Parallel = parallel
	c.Workers = workers
	c.Telemetry = telemetry.New(telemetry.Options{
		Sink:           telemetry.NewJSONL(&buf),
		SampleInterval: 90,
	})
	s, err := New(c, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if parMin > 0 {
		s.parMin = parMin
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Telemetry.Close(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestDifferentialWindowedParallelVsSerial is the end-to-end oracle for this
// PR: the same 30 randomized scenarios as the incremental-vs-rescan suite —
// all policies, all backfill modes, OOM restart/abandon, topology weighting
// — each run serially and then under every combination of sharded ledger,
// windowed executor, and parallel refresh phases (parMin forced to 1 so the
// worker team handles even tiny running sets). Results must be deeply equal
// and the telemetry JSONL byte-identical in every cell.
func TestDifferentialWindowedParallelVsSerial(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg, mkJobs := differentialScenario(seed)
			wantRes, wantLog := runVariant(t, cfg, mkJobs(), 0, false, 0, 0)
			variants := []struct {
				name     string
				shards   int
				parallel bool
				workers  int
				parMin   int
			}{
				{"sharded", 3, false, 0, 0},
				{"sharded-max", 1 << 20, false, 0, 0}, // clamps to one node per shard
				{"windowed", 0, true, 1, 0},           // window executor, inline phases
				{"windowed-parallel", 2, true, 3, 1},  // team of 3, fan out immediately
			}
			for _, v := range variants {
				res, log := runVariant(t, cfg, mkJobs(), v.shards, v.parallel, v.workers, v.parMin)
				if !reflect.DeepEqual(res, wantRes) {
					t.Fatalf("%s: results diverged\nserial: %+v\n%s: %+v", v.name, wantRes, v.name, res)
				}
				if !bytes.Equal(log, wantLog) {
					t.Fatalf("%s: telemetry logs diverged (%d vs %d bytes)", v.name, len(log), len(wantLog))
				}
			}
		})
	}
}

// TestWindowedSameTimeFinishOrder pins the satellite-4 determinism finding:
// refinish assigns finish-event seqs in runID order, and when two jobs
// complete at exactly the same timestamp those seqs are the only thing
// ordering their handlers. The scenario forces a same-time double finish;
// the windowed run must pop both into one window (observable in
// WindowStats) and fire them in the serial order, yielding identical
// results and bytes.
func TestWindowedSameTimeFinishOrder(t *testing.T) {
	cfg := baseConfig(8, 2048, policy.Static)
	cfg.Seed = 3
	mk := func() []*job.Job {
		var jobs []*job.Job
		for i := 1; i <= 4; i++ {
			// Identical submit/runtime: finishes collide at one timestamp.
			jobs = append(jobs, mkJob(i, 0, 1, 512, 500, memtrace.Constant(512)))
		}
		return jobs
	}
	wantRes, wantLog := runVariant(t, cfg, mk(), 0, false, 0, 0)

	var buf bytes.Buffer
	c := cfg
	c.Parallel = true
	c.Workers = 2
	c.Telemetry = telemetry.New(telemetry.Options{Sink: telemetry.NewJSONL(&buf), SampleInterval: 90})
	s, err := New(c, mk())
	if err != nil {
		t.Fatal(err)
	}
	s.parMin = 1
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Telemetry.Close(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, wantRes) {
		t.Fatalf("results diverged\nserial:   %+v\nwindowed: %+v", wantRes, res)
	}
	if !bytes.Equal(buf.Bytes(), wantLog) {
		t.Fatalf("telemetry diverged (%d vs %d bytes)", buf.Len(), len(wantLog))
	}
	st := s.WindowStats()
	if st.Multi == 0 {
		t.Fatalf("scenario never produced a multi-event window: %+v", st)
	}
}

// TestShardSpanningJob covers the remaining shard-boundary case at the
// simulator level: a job whose allocation spans every shard (Nodes equal to
// the cluster size) with usage growth that borrows remote memory across
// shard boundaries, compared against the single-shard ledger.
func TestShardSpanningJob(t *testing.T) {
	cfg := baseConfig(6, 1024, policy.Dynamic)
	cfg.Seed = 11
	cfg.UpdateInterval = 50
	mk := func() []*job.Job {
		grow := memtrace.MustNew([]memtrace.Point{
			{T: 0, MB: 256}, {T: 2000, MB: 1500},
		})
		return []*job.Job{
			mkJob(1, 0, 6, 512, 2000, grow), // spans all 6 nodes → all shards
			mkJob(2, 100, 2, 700, 1200, memtrace.Constant(700)),
		}
	}
	wantRes, wantLog := runVariant(t, cfg, mk(), 1, false, 0, 0)
	for _, shards := range []int{2, 3, 6} {
		res, log := runVariant(t, cfg, mk(), shards, false, 0, 0)
		if !reflect.DeepEqual(res, wantRes) {
			t.Fatalf("shards=%d: results diverged", shards)
		}
		if !bytes.Equal(log, wantLog) {
			t.Fatalf("shards=%d: telemetry diverged", shards)
		}
	}
}

// TestParallelRefreshPhasesAllocationFree asserts the windowed executor's
// steady-state event dispatch — window pop, parallel bank fan-out, ordered
// reduction, refinish — performs zero allocations once scratch has grown.
func TestParallelRefreshPhasesAllocationFree(t *testing.T) {
	s := midRunSimulator(t, 32, 48, EASYBackfill)
	s.parMin = 1
	s.cfg.Parallel = true
	s.cfg.Workers = 2
	s.setupParallel()
	defer s.team.Close()
	s.refreshAll() // size bankBuf and per-worker scratch
	full := func() {
		s.trafficValid = false
		s.refreshAll()
	}
	if got := testing.AllocsPerRun(50, full); got != 0 {
		t.Fatalf("parallel refreshAll allocates %.1f per call, want 0", got)
	}
}
