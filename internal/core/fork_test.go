package core

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"dismem/internal/job"
	"dismem/internal/telemetry"
)

// forkScenario overlays the shared differential scenario with the fork
// suite's extra axes: ledger shard count and pressure mode both cycle with
// the seed, so 30 seeds cover every policy × pressure × sharding cell.
func forkScenario(seed int64) (Config, func() []*job.Job) {
	cfg, mkJobs := differentialScenario(seed)
	cfg.Cluster.Shards = []int{0, 3, 8}[int(seed)%3]
	if seed%2 == 1 {
		// Domains mode: Normalize forces Cluster.Shards to the domain count.
		cfg.Pressure = PressureDomains
		cfg.Domains = []int{2, 4}[int(seed/2)%2]
	}
	return cfg, mkJobs
}

// freshRun executes the scenario start-to-finish on a new simulator and
// returns its Result and full telemetry byte stream — the oracle every
// forked branch is compared against.
func freshRun(t *testing.T, cfg Config, jobs []*job.Job) (*Result, []byte) {
	t.Helper()
	var buf bytes.Buffer
	c := cfg
	c.Telemetry = telemetry.New(telemetry.Options{
		Sink:           telemetry.NewJSONL(&buf),
		SampleInterval: 90,
	})
	s, err := New(c, jobs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Telemetry.Close(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestDifferentialForkNoop is the tentpole's end-to-end oracle: pause a run
// mid-flight, Fork it with no configuration change, finish only the branch,
// and require the branch's Result deeply equal to a fresh start-to-finish
// run and the telemetry byte stream — the base's prefix up to the fork point
// concatenated with the branch's suffix — byte-identical to the fresh run's.
// The 30 seeds sweep all three policies, both pressure modes, and unsharded/
// sharded ledgers; three fork fractions probe early, mid, and late forks.
func TestDifferentialForkNoop(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg, mkJobs := forkScenario(seed)
			wantRes, wantLog := freshRun(t, cfg, mkJobs())
			frac := []float64{0.25, 0.5, 0.9}[int(seed)%3]

			var prefix bytes.Buffer
			c := cfg
			c.Telemetry = telemetry.New(telemetry.Options{
				Sink:           telemetry.NewJSONL(&prefix),
				SampleInterval: 90,
			})
			base, err := New(c, mkJobs())
			if err != nil {
				t.Fatal(err)
			}
			base.Start()
			if err := base.StepUntil(frac * wantRes.Makespan); err != nil {
				t.Fatal(err)
			}

			var suffix bytes.Buffer
			branch, err := base.Fork(c.Telemetry.Fork(telemetry.NewJSONL(&suffix)))
			if err != nil {
				t.Fatal(err)
			}
			// The base is abandoned; closing its recorder flushes the prefix.
			if err := c.Telemetry.Close(); err != nil {
				t.Fatal(err)
			}
			res, err := branch.Finish()
			if err != nil {
				t.Fatal(err)
			}
			if err := branch.tel.Close(); err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(res, wantRes) {
				t.Fatalf("branch result diverged from fresh run\nfresh:  %+v\nbranch: %+v", wantRes, res)
			}
			got := append(append([]byte(nil), prefix.Bytes()...), suffix.Bytes()...)
			if !bytes.Equal(got, wantLog) {
				t.Fatalf("telemetry diverged (%d vs %d bytes)", len(got), len(wantLog))
			}
			if st := branch.BranchStats(); st.SharedEvents == 0 && wantRes.Makespan > 0 && frac > 0 {
				t.Fatalf("branch claims no shared prefix: %+v", st)
			}
		})
	}
}

// TestForkConcurrentBranchesIdentical forks one paused base several times
// and finishes the base and every branch concurrently. Under -race this is
// the aliasing proof for the whole simulator (ledger CoW, cloned engine,
// cloned running set); determinism-wise every no-op branch must produce the
// fresh run's Result and all branch telemetry suffixes must be identical.
func TestForkConcurrentBranchesIdentical(t *testing.T) {
	for _, seed := range []int64{2, 7, 13} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg, mkJobs := forkScenario(seed)
			wantRes, _ := freshRun(t, cfg, mkJobs())

			c := cfg
			base, err := New(c, mkJobs())
			if err != nil {
				t.Fatal(err)
			}
			base.Start()
			if err := base.StepUntil(0.5 * wantRes.Makespan); err != nil {
				t.Fatal(err)
			}

			const nBranches = 4
			branches := make([]*Simulator, nBranches)
			sinks := make([]*bytes.Buffer, nBranches)
			tels := make([]*telemetry.Recorder, nBranches)
			for i := range branches {
				sinks[i] = &bytes.Buffer{}
				tels[i] = telemetry.New(telemetry.Options{
					Sink:           telemetry.NewJSONL(sinks[i]),
					SampleInterval: 90,
				})
				branches[i], err = base.Fork(tels[i])
				if err != nil {
					t.Fatal(err)
				}
			}

			results := make([]*Result, nBranches+1)
			errs := make([]error, nBranches+1)
			var wg sync.WaitGroup
			wg.Add(nBranches + 1)
			go func() {
				defer wg.Done()
				results[nBranches], errs[nBranches] = base.Finish()
			}()
			for i := range branches {
				i := i
				go func() {
					defer wg.Done()
					results[i], errs[i] = branches[i].Finish()
				}()
			}
			wg.Wait()

			for i, err := range errs {
				if err != nil {
					t.Fatalf("run %d: %v", i, err)
				}
			}
			for i, res := range results {
				if !reflect.DeepEqual(res, wantRes) {
					t.Fatalf("run %d diverged from fresh run\nfresh: %+v\n  got: %+v", i, wantRes, res)
				}
			}
			for i := range tels {
				if err := tels[i].Close(); err != nil {
					t.Fatal(err)
				}
			}
			for i := 1; i < nBranches; i++ {
				if !bytes.Equal(sinks[i].Bytes(), sinks[0].Bytes()) {
					t.Fatalf("branch %d telemetry suffix differs from branch 0 (%d vs %d bytes)",
						i, sinks[i].Len(), sinks[0].Len())
				}
			}
		})
	}
}

// TestForkLifecycleErrors pins the contract: forking is legal only between
// Start and Finish.
func TestForkLifecycleErrors(t *testing.T) {
	cfg, mkJobs := differentialScenario(1)
	s, err := New(cfg, mkJobs())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fork(nil); err == nil {
		t.Fatal("Fork before Start succeeded")
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Fork(nil); err == nil {
		t.Fatal("Fork after Finish succeeded")
	}
}

// mustFork is the test shorthand: Start+StepUntil+Fork with telemetry off.
func mustFork(t testing.TB, cfg Config, jobs []*job.Job, until float64) (*Simulator, *Simulator) {
	t.Helper()
	s, err := New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	if err := s.StepUntil(until); err != nil {
		t.Fatal(err)
	}
	f, err := s.Fork(nil)
	if err != nil {
		t.Fatal(err)
	}
	return s, f
}

// TestForkBranchDivergence checks the point of the whole exercise: a branch
// that actually diverges (here: the base keeps running while the branch is
// re-ranked by a different seed path — we mutate nothing shared) leaves the
// base's outcome untouched.
func TestForkBranchDivergence(t *testing.T) {
	cfg, mkJobs := differentialScenario(4)
	wantRes, _ := freshRun(t, cfg, mkJobs())
	base, branch := mustFork(t, cfg, mkJobs(), 0.5*wantRes.Makespan)

	// Branch runs first and to completion; then the base. If the branch
	// leaked writes into the base, the base's result would diverge.
	bres, err := branch.Finish()
	if err != nil {
		t.Fatal(err)
	}
	res, err := base.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, wantRes) {
		t.Fatalf("base perturbed by branch run\nfresh: %+v\n  got: %+v", wantRes, res)
	}
	if !reflect.DeepEqual(bres, wantRes) {
		t.Fatalf("no-op branch diverged\nfresh: %+v\n  got: %+v", wantRes, bres)
	}
}
