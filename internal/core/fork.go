package core

import (
	"fmt"
	"math/rand"

	"dismem/internal/policy"
	"dismem/internal/sim"
	"dismem/internal/telemetry"
)

// This file implements copy-on-write simulator forking: Fork snapshots a
// started, paused run into an independent Simulator that can be driven to a
// different future concurrently with the base. The expensive state is not
// copied — the cluster ledger forks in O(shards) via its CoW layer, the
// immutable inputs (jobs, slowdown model, domain capacities) are shared —
// and everything event-bearing (engine heap, running set, records, queue,
// caches) is deep-copied in O(live state), which is O(Δ) relative to the
// work already simulated. A fork that re-runs the base's own configuration
// is byte-identical to a fresh run: same Results, same telemetry stream.

// BranchStats describes what a forked simulator inherited for free: the
// number of events the shared prefix had already fired (work a branch does
// not repeat) and the cluster CoW traffic the branch has caused so far.
type BranchStats struct {
	SharedEvents uint64 // events fired before the fork point
	NodeCopies   int64  // CoW node-slice materialisations in this branch
	ShardThaws   int64  // CoW shard index thaws in this branch
}

// BranchStats reports the fork provenance of this simulator. For a
// simulator built by New, SharedEvents is zero.
func (s *Simulator) BranchStats() BranchStats {
	nodes, thaws := s.cl.CowStats()
	return BranchStats{SharedEvents: s.forkEvents, NodeCopies: nodes, ShardThaws: thaws}
}

// Telemetry returns the simulator's recorder (nil when telemetry is off),
// so a branching layer can fork the base's stream for each branch and
// report fork economics on it.
func (s *Simulator) Telemetry() *telemetry.Recorder { return s.tel }

// Fork returns an independent copy of a started, un-finished simulator,
// paused at the same event-queue state. The fork and the base may then run
// concurrently: the cluster ledger is shared copy-on-write (each side
// materialises only the shards it writes), the immutable inputs are shared
// outright, and all mutable per-run state is private to each side.
//
// tel becomes the fork's telemetry recorder (nil disables telemetry in the
// branch). For a byte-identical no-op branch, pass a recorder forked from
// the base's via telemetry.Recorder.Fork with the same sink semantics; a
// recorder with a different sampling interval changes the branch's sampler
// cadence (never its Result). The fork drops the base's Observer,
// WindowStatsOut, and Interrupt hooks — they are owned by the base's
// caller, and invoking them from several branches would interleave.
//
// Fork must be called between events — after Start, typically after a
// StepUntil, and before Finish. It is not safe to fork while the base is
// running; pause first.
//
// Fork reads every per-domain contention cache wholesale to clone it; a
// whole-set copy cannot leak one domain's pressure into another, which is
// the property the domainmerge directive certifies.
//
//dmp:domainmerge
func (s *Simulator) Fork(tel *telemetry.Recorder) (*Simulator, error) {
	if !s.started {
		return nil, fmt.Errorf("core: Fork before Start")
	}
	if s.finished {
		return nil, fmt.Errorf("core: Fork after Finish")
	}

	f := &Simulator{}
	*f = *s // scalars; every reference-typed field is re-pointed below

	// Hooks stay with the base's caller (see doc comment); telemetry is the
	// branch's own recorder.
	f.cfg.Observer = nil
	f.cfg.WindowStatsOut = nil
	f.cfg.Interrupt = nil
	f.cfg.Telemetry = tel
	f.tel = tel
	f.forkEvents = s.eng.Fired()

	// Shared immutable state: jobs, byID, model, domBW, domCapMB — the
	// struct copy above already aliases them, which is correct because no
	// code path writes them after New.

	// The ledger forks copy-on-write in O(shards).
	f.cl = s.cl.Fork()

	// Policy, ranker, and adjuster hold only scratch buffers (no decision
	// state), so fresh instances behave identically and must not be shared
	// across concurrently running branches. Mirrors New.
	f.ranker = nil
	if f.cfg.LenderPolicy == NearestFirst {
		f.ranker = policy.NearestFirstRanker(*f.cfg.Topology)
	}
	f.pol = policy.NewWithRanker(f.cfg.Policy, f.ranker)
	if f.cfg.Pressure == PressureDomains {
		f.pol = policy.NewDomainFirst(f.cfg.Policy)
	}
	f.adj = policy.NewAdjuster(f.ranker)
	f.adj.Tel = tel

	// Replay the RNG to the base's draw position so the branch's future
	// jitter sequence continues exactly where a fresh run's would.
	f.rng = rand.New(rand.NewSource(f.cfg.Seed))
	for i := 0; i < s.rngDraws; i++ {
		f.rng.Float64()
	}

	// Records: cloned per job so a branch's outcomes never write into the
	// base's. The Job pointer stays shared (immutable).
	f.records = make(map[int]*JobRecord, len(s.records))
	for id, rec := range s.records {
		nr := &JobRecord{}
		*nr = *rec
		if rec.Attempts != nil { // preserve nil-ness: Results are DeepEqual-compared
			nr.Attempts = make([]Attempt, len(rec.Attempts))
			copy(nr.Attempts, rec.Attempts)
		}
		f.records[id] = nr
	}

	// Running jobs: full clones, with handles re-attached after the engine
	// clone below.
	f.running = make(map[int]*runningJob, len(s.running))
	for id, rj := range s.running {
		f.running[id] = cloneRunning(rj, f.records[id])
	}
	f.runIDs = append([]int(nil), s.runIDs...)
	f.runList = make([]*runningJob, len(s.runList))
	for i, rj := range s.runList {
		f.runList[i] = f.running[rj.j.ID]
	}

	f.banked = make(map[int]float64, len(s.banked))
	for id, v := range s.banked {
		f.banked[id] = v
	}
	f.prio = make(map[int]int, len(s.prio))
	for id, v := range s.prio {
		f.prio[id] = v
	}
	f.queue = s.queue.Clone()

	if f.res != nil {
		nres := &Result{}
		*nres = *s.res
		nres.Records = append([]JobRecord(nil), s.res.Records...)
		f.res = nres
	}

	// Domain state: caches copy, per-domain job lists rebuild with the
	// cloned runningJobs in the same order.
	if s.nDom > 0 {
		f.domTraffic = append([]float64(nil), s.domTraffic...)
		f.domRho = append([]float64(nil), s.domRho...)
		f.domValid = append([]bool(nil), s.domValid...)
		f.domStamp = append([]uint64(nil), s.domStamp...)
		f.domJobs = make([][]*runningJob, len(s.domJobs))
		for d, list := range s.domJobs {
			if len(list) == 0 {
				continue
			}
			nl := make([]*runningJob, len(list))
			for i, rj := range list {
				nl[i] = f.running[rj.j.ID]
			}
			f.domJobs[d] = nl
		}
	}

	// Executor and scratch state is never shared: the fork rebuilds what it
	// needs lazily, exactly as a fresh simulator would.
	f.team = nil
	f.phaseBank, f.phaseSlow, f.phaseUpdate = nil, nil, nil
	f.parFracs, f.bankBuf, f.winBuf = nil, nil, nil
	f.adjPar, f.dispRJs, f.dispOuts = nil, nil, nil
	f.idsBuf, f.fracsBuf, f.relBuf = nil, nil, nil
	f.prof = nil

	// Engine: exact heap copy with every pending action rebound to the
	// fork. The handle map re-attaches the running jobs' retained handles.
	eng, handles := s.eng.Clone(func(tag uint64) sim.Action {
		switch tagKind(tag) {
		case tagSubmit:
			id := int(uint32(tag))
			return func(*sim.Engine) { f.onSubmit(id) }
		case tagTick:
			return func(*sim.Engine) { f.onTick() }
		case tagFinish:
			id := int(uint32(tag))
			return func(*sim.Engine) { f.onFinish(id) }
		case tagLimit:
			id := int(uint32(tag))
			return func(*sim.Engine) { f.onTimeLimit(id) }
		case tagUpdate:
			id := int(uint32(tag))
			return func(*sim.Engine) { f.onMemoryUpdate(id) }
		case tagSample:
			if iv := tel.SampleInterval(); iv > 0 {
				return sim.Periodic(iv, tag, func(*sim.Engine) { f.sample() })
			}
			// Branch telemetry is off: the inherited tick fires once as a
			// no-op and does not reschedule, exactly as if sampling had
			// never been configured from here on.
			return func(*sim.Engine) {}
		}
		return nil // untagged pending event: impossible by construction, Clone panics
	})
	f.eng = eng
	for id, rj := range f.running {
		rj.finishEv = handles[evTag(tagFinish, id)]
		rj.limitEv = handles[evTag(tagLimit, id)]
		rj.updateEv = handles[evTag(tagUpdate, id)]
	}
	return f, nil
}

// cloneRunning deep-copies one running job's live state. Event handles are
// left zero; Fork re-attaches them from the engine clone's handle map. The
// Job pointer and the usage trace behind the cursor are shared (immutable).
func cloneRunning(rj *runningJob, rec *JobRecord) *runningJob {
	n := &runningJob{}
	*n = *rj
	n.rec = rec
	n.alloc = rj.alloc.Clone()
	n.finishEv, n.limitEv, n.updateEv = sim.Handle{}, sim.Handle{}, sim.Handle{}
	n.nodeTraffic = append([]float64(nil), rj.nodeTraffic...)
	n.nodeDom = append([]int32(nil), rj.nodeDom...)
	n.homeDoms = append([]int32(nil), rj.homeDoms...)
	n.domSet = append([]int32(nil), rj.domSet...)
	n.domFrac = append([]float64(nil), rj.domFrac...)
	return n
}
