package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
	"dismem/internal/topology"
)

func TestObserverTally(t *testing.T) {
	var tally Tally
	cfg := baseConfig(3, 1000, policy.Dynamic)
	cfg.Observer = &tally
	jobs := []*job.Job{
		mkJob(1, 0, 2, 1500, 5000, memtrace.Constant(100)),
		mkJob(2, 10, 1, 800, 100, memtrace.Constant(700)),
	}
	res := runSim(t, cfg, jobs)
	if res.Completed != 2 {
		t.Fatalf("completed = %d", res.Completed)
	}
	if tally.Submitted != 2 || tally.Started != 2 || tally.Finished != 2 {
		t.Fatalf("tally = %+v, want 2 submit/start/finish", tally)
	}
	if tally.Resizes == 0 || tally.ReclaimedMB == 0 {
		t.Fatalf("tally = %+v: dynamic run must have reclaiming resizes", tally)
	}
	if tally.OOMKills != 0 || tally.Resubmitted != 0 {
		t.Fatalf("tally = %+v: unexpected OOM activity", tally)
	}
}

func TestObserverOOMEvents(t *testing.T) {
	var tally Tally
	usage := memtrace.MustNew([]memtrace.Point{{T: 0, MB: 100}, {T: 400, MB: 5000}})
	j := mkJob(1, 0, 1, 200, 2000, usage)
	cfg := baseConfig(2, 1000, policy.Dynamic)
	cfg.MaxRestarts = 2
	cfg.Observer = &tally
	res := runSim(t, cfg, []*job.Job{j})
	if res.Abandoned != 1 {
		t.Fatalf("abandoned = %d", res.Abandoned)
	}
	if tally.OOMKills != 2 {
		t.Fatalf("observer OOM kills = %d, want 2", tally.OOMKills)
	}
	if tally.Resubmitted != 1 { // second kill abandons instead
		t.Fatalf("resubmitted = %d, want 1", tally.Resubmitted)
	}
	if tally.Finished != 1 {
		t.Fatalf("finished = %d, want 1 (the abandonment)", tally.Finished)
	}
}

func TestEventLoggerOutput(t *testing.T) {
	var buf bytes.Buffer
	cfg := baseConfig(2, 1000, policy.Dynamic)
	cfg.Observer = &EventLogger{W: &buf}
	j := mkJob(1, 0, 1, 500, 1000, memtrace.Constant(100))
	runSim(t, cfg, []*job.Job{j})
	out := buf.String()
	for _, want := range []string{"submit", "start", "resize", "finish", "job=1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("event log missing %q:\n%s", want, out)
		}
	}
}

func TestDisableBackfill(t *testing.T) {
	mk := func(id int, submit float64, nodes int, runtime, limit float64) *job.Job {
		j := mkJob(id, submit, nodes, 100, runtime, memtrace.Constant(100))
		j.LimitSec = limit
		return j
	}
	jobs := func() []*job.Job {
		return []*job.Job{
			mk(1, 0, 1, 900, 1000),
			mk(2, 10, 2, 100, 200), // head: needs both nodes
			mk(3, 20, 1, 40, 50),   // backfill candidate
		}
	}
	on := runSim(t, baseConfig(2, 1000, policy.Static), jobs())
	cfgOff := baseConfig(2, 1000, policy.Static)
	cfgOff.DisableBackfill = true
	off := runSim(t, cfgOff, jobs())

	startOf := func(r *Result, id int) float64 {
		for _, rec := range r.Records {
			if rec.Job.ID == id {
				return rec.FirstStart
			}
		}
		return -1
	}
	if startOf(on, 3) >= startOf(on, 2) {
		t.Fatal("with backfill, job 3 must start before the head")
	}
	if startOf(off, 3) < startOf(off, 2) {
		t.Fatal("without backfill, job 3 must wait behind the head (FIFO)")
	}
}

func TestCheckpointIntervalLosesTailProgress(t *testing.T) {
	// Job B OOMs at progress ~300. With a 250 s checkpoint interval the
	// retained progress is 250, so the C/R retry takes longer than with
	// ideal (continuous) checkpointing.
	mkJobs := func() []*job.Job {
		a := mkJob(1, 0, 1, 900, 500, memtrace.Constant(900))
		bUsage := memtrace.MustNew([]memtrace.Point{{T: 0, MB: 100}, {T: 300, MB: 1200}})
		b := mkJob(2, 0, 1, 100, 1000, bUsage)
		return []*job.Job{a, b}
	}
	run := func(ci float64) *Result {
		cfg := baseConfig(2, 1000, policy.Dynamic)
		cfg.OOM = CheckpointRestart
		cfg.CheckpointInterval = ci
		cfg.UpdateInterval = 100
		return runSim(t, cfg, mkJobs())
	}
	ideal := run(0)
	coarse := run(250)
	if ideal.Completed != 2 || coarse.Completed != 2 {
		t.Fatalf("completed: ideal=%d coarse=%d", ideal.Completed, coarse.Completed)
	}
	fi, fc := ideal.Records[1].Finish, coarse.Records[1].Finish
	if fc <= fi {
		t.Fatalf("coarse checkpointing finish %g not later than ideal %g", fc, fi)
	}
	// The lost work is bounded by one checkpoint interval.
	if fc-fi > 250+1 {
		t.Fatalf("lost work %g exceeds one checkpoint interval", fc-fi)
	}
}

func TestTopologyConfigValidation(t *testing.T) {
	cfg := baseConfig(2, 1000, policy.Static)
	cfg.LenderPolicy = NearestFirst
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("nearest-first without topology accepted")
	}
	cfg = baseConfig(2, 1000, policy.Static)
	cfg.HopPenalty = 0.5
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("hop penalty without topology accepted")
	}
	small := topology.Design(1)
	cfg = baseConfig(8, 1000, policy.Static)
	cfg.Topology = &small
	if _, err := New(cfg, nil); err == nil {
		t.Fatal("undersized topology accepted")
	}
}

func TestNearestFirstLenderSelection(t *testing.T) {
	// A 1D ring of 8 nodes. A job on one node borrowing memory must
	// lease from its ring neighbours before distant nodes, even though
	// all lenders are equally free.
	ring, err := topology.New(8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(8, 1000, policy.Static)
	cfg.Topology = &ring
	cfg.LenderPolicy = NearestFirst
	j := mkJob(1, 0, 1, 2800, 100, memtrace.Constant(2800))
	s, err := New(cfg, []*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	// Inspect the placement right after dispatch via a horizon stop.
	s.cfg.Horizon = 1
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Records[0].FirstStart != 0 {
		t.Fatalf("job did not start: %+v", res.Records[0])
	}
	rj, ok := s.running[1]
	if !ok {
		t.Fatal("job not in running set at horizon")
	}
	borrower := int(rj.alloc.PerNode[0].Node)
	for _, l := range rj.alloc.PerNode[0].Leases {
		if h := ring.Hops(borrower, int(l.Lender)); h > 1 {
			t.Fatalf("lease from node %d at %d hops; nearest-first must use ring neighbours", l.Lender, h)
		}
	}
	if rj.alloc.PerNode[0].RemoteMB() != 1800 {
		t.Fatalf("remote = %d, want 1800", rj.alloc.PerNode[0].RemoteMB())
	}
}

func TestHopPenaltySlowsDistantLeases(t *testing.T) {
	// Same workload under most-free vs nearest-first lending with a hop
	// penalty: nearest-first places leases closer, so the job finishes
	// no later. Use a line-heavy ring so distance matters.
	ring, err := topology.New(16, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mkJobs := func() []*job.Job {
		j := mkJob(1, 0, 1, 8000, 1000, memtrace.Constant(8000))
		j.Profile = streamProfile()
		j.LimitSec = 1e9
		return []*job.Job{j}
	}
	run := func(lp LenderPolicy) *Result {
		cfg := baseConfig(16, 1000, policy.Static)
		cfg.Topology = &ring
		cfg.LenderPolicy = lp
		cfg.HopPenalty = 0.5
		cfg.PerNodeRemoteBW = 2
		return runSim(t, cfg, mkJobs())
	}
	mostFree := run(MostFree)
	nearest := run(NearestFirst)
	fm, fn := mostFree.Records[0].Finish, nearest.Records[0].Finish
	if fn > fm+1e-6 {
		t.Fatalf("nearest-first finish %g later than most-free %g", fn, fm)
	}
	// Distance costs something: with the penalty the job must exceed
	// its base runtime under either policy (7000 MB are remote).
	if fm <= 1000 || fn <= 1000 {
		t.Fatalf("remote job unaffected by hop penalty: %g / %g", fm, fn)
	}
}

func TestHopPenaltyZeroMatchesPlainModel(t *testing.T) {
	ring, err := topology.New(8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []*job.Job {
		j := mkJob(1, 0, 1, 3000, 1000, memtrace.Constant(3000))
		j.Profile = streamProfile()
		j.LimitSec = 1e9
		return []*job.Job{j}
	}
	plain := runSim(t, baseConfig(8, 1000, policy.Static), mk())
	cfg := baseConfig(8, 1000, policy.Static)
	cfg.Topology = &ring // topology present, penalty zero
	withTopo := runSim(t, cfg, mk())
	if math.Abs(plain.Records[0].Finish-withTopo.Records[0].Finish) > 1e-9 {
		t.Fatalf("zero hop penalty changed results: %g vs %g",
			plain.Records[0].Finish, withTopo.Records[0].Finish)
	}
}

func TestStretchMetrics(t *testing.T) {
	// A fully local job has stretch exactly 1.
	local := mkJob(1, 0, 1, 500, 1000, memtrace.Constant(500))
	res := runSim(t, baseConfig(2, 1000, policy.Static), []*job.Job{local})
	if s := res.Records[0].Stretch(); math.Abs(s-1) > 1e-9 {
		t.Fatalf("local stretch = %g, want 1", s)
	}
	if m := res.MeanStretch(); math.Abs(m-1) > 1e-9 {
		t.Fatalf("mean stretch = %g, want 1", m)
	}
	// A remote job under contention stretches beyond 1.
	remote := mkJob(2, 0, 1, 1500, 1000, memtrace.Constant(1500))
	remote.Profile = streamProfile()
	remote.LimitSec = 1e9
	cfg := baseConfig(2, 1000, policy.Static)
	cfg.PerNodeRemoteBW = 1
	res2 := runSim(t, cfg, []*job.Job{remote})
	if s := res2.Records[0].Stretch(); s <= 1 {
		t.Fatalf("remote stretch = %g, want > 1", s)
	}
	// Pending jobs report -1 and are excluded from the mean.
	cfg3 := baseConfig(1, 1000, policy.Static)
	cfg3.Horizon = 10
	res3 := runSim(t, cfg3, []*job.Job{mkJob(3, 0, 1, 100, 1000, memtrace.Constant(100))})
	if res3.Records[0].Stretch() != -1 {
		t.Fatal("pending job must have stretch -1")
	}
	if res3.MeanStretch() != 0 {
		t.Fatal("mean stretch over no completions must be 0")
	}
}

func TestAttemptHistory(t *testing.T) {
	// One clean completion: a single completed attempt, no wasted work.
	j := mkJob(1, 0, 1, 500, 1000, memtrace.Constant(100))
	res := runSim(t, baseConfig(2, 1000, policy.Dynamic), []*job.Job{j})
	rec := res.Records[0]
	if len(rec.Attempts) != 1 {
		t.Fatalf("attempts = %d, want 1", len(rec.Attempts))
	}
	a := rec.Attempts[0]
	if a.How != AttemptCompleted || a.End != rec.Finish || a.Start != rec.FirstStart {
		t.Fatalf("attempt = %+v, record = %+v", a, rec)
	}
	if rec.WastedWork() != 0 {
		t.Fatalf("wasted work = %g, want 0", rec.WastedWork())
	}
}

func TestAttemptHistoryOOMRestarts(t *testing.T) {
	usage := memtrace.MustNew([]memtrace.Point{{T: 0, MB: 100}, {T: 400, MB: 5000}})
	j := mkJob(1, 0, 1, 200, 2000, usage)
	cfg := baseConfig(2, 1000, policy.Dynamic)
	cfg.MaxRestarts = 3
	res := runSim(t, cfg, []*job.Job{j})
	rec := res.Records[0]
	if rec.Outcome != Abandoned {
		t.Fatalf("outcome = %v", rec.Outcome)
	}
	if len(rec.Attempts) != 3 {
		t.Fatalf("attempts = %d, want 3 (MaxRestarts)", len(rec.Attempts))
	}
	for i, a := range rec.Attempts {
		if a.How != AttemptOOMKilled {
			t.Fatalf("attempt %d ended %v, want oom-killed", i, a.How)
		}
		if a.End < a.Start {
			t.Fatalf("attempt %d: end before start", i)
		}
	}
	if rec.WastedWork() <= 0 {
		t.Fatal("OOM restarts must report wasted work")
	}
}

func TestAttemptHistoryHorizonLeavesOpen(t *testing.T) {
	cfg := baseConfig(1, 1000, policy.Static)
	cfg.Horizon = 50
	j := mkJob(1, 0, 1, 100, 1000, memtrace.Constant(100))
	res := runSim(t, cfg, []*job.Job{j})
	rec := res.Records[0]
	if len(rec.Attempts) != 1 {
		t.Fatalf("attempts = %d", len(rec.Attempts))
	}
	if rec.Attempts[0].End != -1 || rec.Attempts[0].How != AttemptRunning {
		t.Fatalf("open attempt mis-recorded: %+v", rec.Attempts[0])
	}
	if AttemptRunning.String() != "running" || AttemptOOMKilled.String() != "oom-killed" {
		t.Fatal("attempt-end names broken")
	}
}

func TestConservativeBackfillNeverDelaysEarlierJobs(t *testing.T) {
	// Head job B (2 nodes) blocked behind A. Under EASY a long 1-node
	// job D may run if it ends before B's shadow; under conservative
	// backfill D additionally must not delay *any* earlier queued job.
	mk := func(id int, submit float64, nodes int, runtime, limit float64) *job.Job {
		j := mkJob(id, submit, nodes, 100, runtime, memtrace.Constant(100))
		j.LimitSec = limit
		return j
	}
	jobs := func() []*job.Job {
		return []*job.Job{
			mk(1, 0, 1, 900, 1000),
			mk(2, 10, 2, 100, 200), // head
			mk(3, 20, 1, 40, 50),   // short
		}
	}
	cfg := baseConfig(2, 1000, policy.Static)
	cfg.Backfill = ConservativeBackfill
	res := runSim(t, cfg, jobs())
	if res.Completed != 3 {
		t.Fatalf("completed = %d", res.Completed)
	}
	starts := map[int]float64{}
	for _, r := range res.Records {
		starts[r.Job.ID] = r.FirstStart
	}
	// The short job still backfills (it cannot delay the head's
	// reservation at t≈1000).
	if starts[3] >= starts[2] {
		t.Fatalf("conservative backfill lost the safe backfill: start3=%g start2=%g",
			starts[3], starts[2])
	}
}

func TestConservativeVsEasyThroughputComparable(t *testing.T) {
	// On a generic workload conservative backfill completes everything
	// EASY does (it is more cautious, not broken).
	var jobs []*job.Job
	for i := 1; i <= 30; i++ {
		j := mkJob(i, float64(i)*50, 1+i%3, 400, 300+float64(i%5)*200, memtrace.Constant(300))
		j.LimitSec = j.BaseRuntime * 2
		jobs = append(jobs, j)
	}
	easy := runSim(t, baseConfig(6, 1000, policy.Static), jobs)
	cfgC := baseConfig(6, 1000, policy.Static)
	cfgC.Backfill = ConservativeBackfill
	cons := runSim(t, cfgC, jobs)
	if easy.Completed != 30 || cons.Completed != 30 {
		t.Fatalf("completed: easy=%d cons=%d", easy.Completed, cons.Completed)
	}
	// Conservative cannot finish the whole batch dramatically later.
	if cons.Makespan > easy.Makespan*1.5+600 {
		t.Fatalf("conservative makespan %g far beyond easy %g", cons.Makespan, easy.Makespan)
	}
}

func TestBackfillModeStrings(t *testing.T) {
	if EASYBackfill.String() != "easy" || ConservativeBackfill.String() != "conservative" || NoBackfill.String() != "none" {
		t.Fatal("backfill mode names broken")
	}
	// DisableBackfill maps onto NoBackfill at Normalize time.
	cfg := baseConfig(2, 1000, policy.Static)
	cfg.DisableBackfill = true
	if err := cfg.Normalize(); err != nil {
		t.Fatal(err)
	}
	if cfg.Backfill != NoBackfill {
		t.Fatalf("backfill = %v, want NoBackfill", cfg.Backfill)
	}
}

func TestMaxEventsBackstop(t *testing.T) {
	cfg := baseConfig(2, 1000, policy.Dynamic)
	cfg.MaxEvents = 3 // far too few for a real run
	j := mkJob(1, 0, 1, 500, 10000, memtrace.Constant(100))
	s, err := New(cfg, []*job.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err == nil {
		t.Fatal("exhausted event budget not reported")
	}
}

func TestEnumStrings(t *testing.T) {
	if Pending.String() != "pending" || Completed.String() != "completed" ||
		TimedOut.String() != "timed-out" || Abandoned.String() != "abandoned" {
		t.Fatal("outcome names broken")
	}
	if FailRestart.String() != "fail/restart" || CheckpointRestart.String() != "checkpoint/restart" {
		t.Fatal("OOM mode names broken")
	}
	if MostFree.String() != "most-free" || NearestFirst.String() != "nearest-first" {
		t.Fatal("lender policy names broken")
	}
}
