package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dismem/internal/cluster"
	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
	"dismem/internal/sched"
	"dismem/internal/sim"
	"dismem/internal/slowdown"
	"dismem/internal/telemetry"
)

// Simulator runs one scenario: a job trace against a cluster under one
// allocation policy. Create it with New and call Run once.
type Simulator struct {
	cfg    Config
	jobs   []*job.Job
	byID   map[int]*job.Job
	cl     *cluster.Cluster
	pol    policy.Policy
	ranker policy.LenderRanker
	adj    *policy.Adjuster
	eng    *sim.Engine
	model  *slowdown.Model
	rng    *rand.Rand
	tel    *telemetry.Recorder // nil when telemetry is disabled

	queue   sched.Queue
	running map[int]*runningJob
	records map[int]*JobRecord
	banked  map[int]float64 // retained progress for CheckpointRestart
	prio    map[int]int     // priority boost after repeated OOM failures

	res           *Result
	lastAcc       float64
	curAllocMB    int64
	curBusyNodes  int
	tickScheduled bool

	// runIDs mirrors the keys of running, kept sorted ascending. The refresh
	// and backfill hot paths iterate it instead of collecting and sorting the
	// map keys on every event.
	runIDs []int

	// refRescan routes refreshAll/currentResources/releases through the
	// retained full-rescan reference implementations. The differential tests
	// run every scenario both ways and assert identical Results and
	// byte-identical telemetry.
	refRescan bool

	// Scratch reused across refreshAll calls (the per-event hot path).
	idsBuf   []int
	fracsBuf []float64
	relBuf   []sched.Release
	prof     *sched.Profile // pooled conservative-backfill profile
}

// runningJob is the live state of one dispatched job.
type runningJob struct {
	j        *job.Job
	rec      *JobRecord
	alloc    *cluster.JobAllocation
	start    float64         // dispatch time of this attempt
	lastT    float64         // last progress-banking time
	progress float64         // completed base-seconds of work
	slow     float64         // current slowdown factor (≥1)
	period   float64         // this job's jittered memory-update period
	use      memtrace.Cursor // usage-trace reader at this attempt's progress

	finishEv sim.Handle
	limitEv  sim.Handle
	updateEv sim.Handle

	// Contention cache, valid while dirty is false. A job's per-node remote
	// fractions depend only on its own allocation, which changes only at
	// dispatch and in its own memory-update handler — never when other jobs
	// borrow from or return memory to the same lenders — so the cache is
	// invalidated exactly there and refreshAll does no per-node work for
	// untouched jobs.
	nodeTraffic []float64 // per alloc.PerNode entry: slowdown.NodeTraffic value
	maxFrac     float64   // max distance-weighted remote fraction over nodes
	dirty       bool      // allocation changed since recontend last ran
}

// New validates the configuration and trace and builds a simulator.
func New(cfg Config, jobs []*job.Job) (*Simulator, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	byID := make(map[int]*job.Job, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if _, dup := byID[j.ID]; dup {
			return nil, fmt.Errorf("core: duplicate job ID %d", j.ID)
		}
		byID[j.ID] = j
	}
	if err := checkDependencies(jobs, byID); err != nil {
		return nil, err
	}
	// A nil ranker selects the most-free lender order served directly from
	// the cluster's free-memory index — no ranking is materialised.
	var ranker policy.LenderRanker
	if cfg.LenderPolicy == NearestFirst {
		ranker = policy.NearestFirstRanker(*cfg.Topology)
	}
	s := &Simulator{
		cfg:     cfg,
		jobs:    jobs,
		byID:    byID,
		cl:      cluster.NewMixed(cfg.Cluster),
		pol:     policy.NewWithRanker(cfg.Policy, ranker),
		ranker:  ranker,
		adj:     policy.NewAdjuster(ranker),
		eng:     sim.New(),
		tel:     cfg.Telemetry,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		running: make(map[int]*runningJob),
		records: make(map[int]*JobRecord, len(jobs)),
		banked:  make(map[int]float64),
		prio:    make(map[int]int),
	}
	s.model = slowdown.NewModel(cfg.Cluster.Nodes, cfg.PerNodeRemoteBW)
	s.adj.Tel = cfg.Telemetry
	return s, nil
}

// Run executes the scenario and returns its Result. It must be called at
// most once.
func (s *Simulator) Run() (*Result, error) {
	s.res = &Result{
		Policy:          s.cfg.Policy.String(),
		TotalCapacityMB: s.cl.TotalCapacityMB(),
		Nodes:           s.cl.Len(),
	}

	// Feasibility pre-check: a scenario containing a job that can never
	// run is reported as infeasible (the paper's missing bars) rather
	// than deadlocking the queue.
	for _, j := range s.jobs {
		if !s.pol.CanEverRun(s.cl, j) {
			s.res.Infeasible = true
			s.res.InfeasibleJob = j.ID
			return s.res, nil
		}
	}

	for _, j := range s.jobs {
		s.records[j.ID] = &JobRecord{Job: j, Submit: j.SubmitTime, FirstStart: -1, LastStart: -1, Finish: -1}
		id := j.ID
		s.eng.Schedule(j.SubmitTime, func(*sim.Engine) { s.onSubmit(id) })
	}
	if iv := s.tel.SampleInterval(); iv > 0 {
		// The sampler reads state and emits; it mutates nothing, so results
		// are identical with it on or off. Engine.Every stops rescheduling
		// once the tick is the only queued event, so it cannot keep the run
		// alive on its own.
		s.eng.Every(0, iv, func(*sim.Engine) { s.sample() })
	}
	if s.cfg.Horizon > 0 {
		s.eng.SetHorizon(s.cfg.Horizon)
	}
	if s.cfg.MaxEvents > 0 {
		s.eng.SetMaxEvents(s.cfg.MaxEvents)
	}
	s.eng.Run()
	if s.eng.Exhausted() {
		return nil, fmt.Errorf("core: event budget (%d) exhausted at t=%.0f — runaway simulation",
			s.cfg.MaxEvents, s.eng.Now())
	}
	// The clock may sit on a trailing sampler tick; the makespan is the time
	// of the last *simulation* event, which every handler recorded in
	// lastAcc. The sampler deliberately never accrues, so it can move
	// neither this nor the utilisation integrals — results are identical
	// with telemetry on or off.
	s.res.Makespan = s.lastAcc
	s.res.PeakQueue = s.queue.PeakLen()

	for _, j := range s.jobs {
		s.res.Records = append(s.res.Records, *s.records[j.ID])
	}
	if s.cfg.CheckInvariants {
		if err := s.cl.CheckInvariants(); err != nil {
			return nil, err
		}
	}
	return s.res, nil
}

// accrue integrates the utilisation counters up to the current time. Every
// event handler calls it before mutating state; it also advances the
// telemetry clock, so emitters deeper in the stack (policies, the ledger)
// need not thread the simulated time through their signatures.
func (s *Simulator) accrue() {
	now := s.eng.Now()
	dt := now - s.lastAcc
	if dt > 0 {
		s.res.AllocMBSeconds += dt * float64(s.curAllocMB)
		s.res.BusyNodeSeconds += dt * float64(s.curBusyNodes)
	}
	s.lastAcc = now
	s.tel.SetNow(now)
}

// sample records one fixed-interval telemetry snapshot. It reads O(1)
// aggregates only and mutates no simulation state — a run with sampling on
// produces the same Result as one with telemetry off.
func (s *Simulator) sample() {
	s.tel.Sample(s.eng.Now(), s.cl.TotalFreeMB(), s.cl.TotalLentMB(),
		s.queue.Len(), s.cl.BusyNodes(), len(s.running))
}

// poolCheck feeds the free-pool watermark detector after any change to the
// memory ledger.
func (s *Simulator) poolCheck() {
	if s.tel == nil {
		return
	}
	s.tel.PoolCheck(s.cl.TotalFreeMB(), s.cl.TotalCapacityMB())
}

// ---------------------------------------------------------------- events

func (s *Simulator) onSubmit(id int) {
	s.accrue()
	j := s.byID[id]
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobSubmitted(s.eng.Now(), j, false)
	}
	s.tel.JobSubmit(id, false)
	if s.dependencyState(j) == depFailed {
		// The predecessor already failed: the job can never run.
		rec := s.records[id]
		rec.Outcome = Abandoned
		rec.Finish = s.eng.Now()
		s.res.Abandoned++
		if s.cfg.Observer != nil {
			s.cfg.Observer.JobFinished(s.eng.Now(), j, Abandoned)
		}
		s.tel.JobEnd(id, Abandoned.String(), rec.Restarts)
		s.cancelDependents(id)
		return
	}
	s.queue.Push(sched.Entry{JobID: id, Enqueue: s.eng.Now(), Priority: s.prio[id]})
	s.ensureTick(true)
}

// ensureTick guarantees a scheduling pass is queued. immediate requests a
// pass right now (submission/completion); otherwise the regular interval
// applies.
func (s *Simulator) ensureTick(immediate bool) {
	if s.tickScheduled || s.queue.Len() == 0 {
		return
	}
	s.tickScheduled = true
	delay := s.cfg.SchedInterval
	if immediate {
		delay = 0
	}
	s.eng.After(delay, func(*sim.Engine) { s.onTick() })
}

func (s *Simulator) onTick() {
	s.accrue()
	s.tickScheduled = false
	s.schedulePass()
	s.ensureTick(false)
	if s.cfg.CheckInvariants {
		if err := s.cl.CheckInvariants(); err != nil {
			panic(err)
		}
	}
}

// schedulePass runs one main-scheduler FIFO pass followed by one backfill
// pass, both bounded by the configured queue depth. Jobs with unsatisfied
// dependencies are held: they neither start nor block others.
func (s *Simulator) schedulePass() {
	// Main pass: strict FIFO among eligible jobs — stop at the first
	// eligible job that does not fit.
	for {
		progressed := false
		for _, e := range s.queue.Items(s.cfg.QueueDepth) {
			j := s.byID[e.JobID]
			if s.dependencyState(j) != depSatisfied {
				continue // held
			}
			ja, placed := s.pol.Place(s.cl, j)
			if !placed {
				goto backfill
			}
			s.queue.Remove(e.JobID)
			s.start(j, ja)
			progressed = true
			break // re-read the queue: priorities may interleave
		}
		if !progressed {
			break
		}
	}
backfill:

	switch s.cfg.Backfill {
	case NoBackfill:
		return
	case ConservativeBackfill:
		s.conservativePass()
	default:
		s.easyPass()
	}
}

// easyPass is the EASY backfill: reserve for the first eligible queued job,
// let later short jobs jump it.
func (s *Simulator) easyPass() {
	var head *job.Job
	for _, e := range s.queue.Items(s.cfg.QueueDepth) {
		if j := s.byID[e.JobID]; s.dependencyState(j) == depSatisfied {
			head = j
			break
		}
	}
	if head == nil {
		return
	}
	shadow := s.shadowTimeFor(head)
	s.tel.BackfillHole(head.ID, shadow)
	for _, e := range s.queue.Items(s.cfg.QueueDepth) {
		if e.JobID == head.ID {
			continue
		}
		j := s.byID[e.JobID]
		if s.dependencyState(j) != depSatisfied {
			continue
		}
		if !sched.CanBackfill(s.eng.Now(), j.LimitSec, shadow) {
			continue
		}
		if ja, placed := s.pol.Place(s.cl, j); placed {
			s.queue.Remove(e.JobID)
			s.tel.BackfillPlace(j.ID)
			s.start(j, ja)
		}
	}
}

// conservativePass gives every examined queued job a reservation on the
// future resource profile: a job starts now only if that does not push any
// earlier job's reservation back.
//
//dmp:hotpath
func (s *Simulator) conservativePass() {
	now := s.eng.Now()
	if s.prof == nil {
		s.prof = &sched.Profile{}
	}
	profile := s.prof
	profile.Reset(now, s.currentResources(), s.releases())
	for _, e := range s.queue.Items(s.cfg.QueueDepth) {
		j := s.byID[e.JobID]
		if s.dependencyState(j) != depSatisfied {
			continue // held: no reservation until the dependency resolves
		}
		d := s.demandFor(j)
		fit := profile.EarliestFit(d, now, j.LimitSec)
		if fit == now {
			if ja, placed := s.pol.Place(s.cl, j); placed {
				s.queue.Remove(e.JobID)
				s.tel.BackfillPlace(j.ID)
				s.start(j, ja)
				profile.Reserve(d, now, j.LimitSec)
				continue
			}
			// The aggregate profile admits it but concrete placement
			// fails (fragmentation): fall through to a reservation at
			// the next breakpoint to stay conservative.
			fit = profile.EarliestFit(d, math.Nextafter(now, math.Inf(1)), j.LimitSec)
		}
		s.tel.BackfillHole(j.ID, fit)
		if !math.IsInf(fit, 1) {
			profile.Reserve(d, fit, j.LimitSec)
		}
	}
}

// currentResources summarises present availability for the reservation
// arithmetic. The node-class counts come straight from the cluster's idle
// split (O(1)); the class threshold there is NormalMB, the same comparison
// the retained rescan applies per node.
//
//dmp:hotpath
func (s *Simulator) currentResources() sched.Resources {
	if s.refRescan {
		return s.currentResourcesRescan()
	}
	var r sched.Resources
	r.NormalNodes, r.LargeNodes = s.cl.IdleComputeSplit()
	r.FreeMB = s.cl.TotalFreeMB()
	return r
}

// currentResourcesRescan is the retained full-rescan reference for
// currentResources.
func (s *Simulator) currentResourcesRescan() sched.Resources {
	normalMB := s.cfg.Cluster.NormalMB
	var r sched.Resources
	for _, n := range s.cl.Nodes() {
		if n.IsComputeAvailable() {
			if n.CapacityMB > normalMB {
				r.LargeNodes++
			} else {
				r.NormalNodes++
			}
		}
	}
	r.FreeMB = s.cl.TotalFreeMB()
	return r
}

// releases lists running jobs' conservative completions (start + limit) into
// a scratch slice reused across scheduling passes. Jobs are visited in
// ascending ID order; the consumers (Profile, ShadowTime) sort by release
// time and combine resources with commutative integer arithmetic, so the
// iteration order cannot affect results — the retained reference walks the
// map instead and the differential tests confirm the equivalence.
//
//dmp:hotpath
func (s *Simulator) releases() []sched.Release {
	if s.refRescan {
		return s.releasesRescan()
	}
	out := s.relBuf[:0]
	for _, id := range s.runIDs {
		out = append(out, s.releaseOf(s.running[id]))
	}
	s.relBuf = out
	return out
}

// releasesRescan is the retained reference implementation of releases: a
// fresh allocation per call, visiting jobs in ascending ID order so the
// reference path is as reproducible as the incremental one (the release
// list feeds the backfill planner, where order breaks ties).
func (s *Simulator) releasesRescan() []sched.Release {
	ids := make([]int, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]sched.Release, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.releaseOf(s.running[id]))
	}
	return out
}

// releaseOf summarises one running job's conservative release.
//
//dmp:hotpath
func (s *Simulator) releaseOf(rj *runningJob) sched.Release {
	normalMB := s.cfg.Cluster.NormalMB
	var res sched.Resources
	for i := range rj.alloc.PerNode {
		if s.cl.Node(rj.alloc.PerNode[i].Node).CapacityMB > normalMB {
			res.LargeNodes++
		} else {
			res.NormalNodes++
		}
	}
	res.FreeMB = rj.alloc.TotalMB()
	return sched.Release{At: rj.start + rj.j.LimitSec, Res: res}
}

// demandFor maps a job to the aggregate demand vector under the active
// policy.
func (s *Simulator) demandFor(j *job.Job) sched.Demand {
	d := sched.Demand{Nodes: j.Nodes}
	if s.cfg.Policy == policy.Baseline {
		d.LargeOnly = j.RequestMB > s.cfg.Cluster.NormalMB
	} else {
		d.UsePool = true
		d.PooledMB = j.TotalRequestMB()
	}
	return d
}

// shadowTimeFor computes the EASY reservation time for the queue head:
// the earliest time it fits assuming running jobs release their resources
// at their conservative ends (start + wallclock limit).
func (s *Simulator) shadowTimeFor(j *job.Job) float64 {
	return sched.ShadowTime(s.eng.Now(), s.currentResources(), s.releases(), s.demandFor(j))
}

// start dispatches a placed job.
func (s *Simulator) start(j *job.Job, ja *cluster.JobAllocation) {
	now := s.eng.Now()
	rec := s.records[j.ID]
	if rec.FirstStart < 0 {
		rec.FirstStart = now
	}
	rec.LastStart = now
	rec.Attempts = append(rec.Attempts, Attempt{Start: now, End: -1})

	rj := &runningJob{
		j:        j,
		rec:      rec,
		alloc:    ja,
		start:    now,
		lastT:    now,
		progress: s.banked[j.ID],
		slow:     1,
		period:   s.cfg.UpdateInterval * (1 + s.cfg.UpdateJitter*(2*s.rng.Float64()-1)),
		use:      j.Usage.Cursor(),
		dirty:    true,
	}
	delete(s.banked, j.ID)
	s.running[j.ID] = rj
	i := sort.SearchInts(s.runIDs, j.ID)
	s.runIDs = append(s.runIDs, 0)
	copy(s.runIDs[i+1:], s.runIDs[i:])
	s.runIDs[i] = j.ID
	s.curAllocMB += ja.TotalMB()
	s.curBusyNodes += len(ja.PerNode)

	if s.cfg.EnforceTimeLimit {
		id := j.ID
		rj.limitEv = s.eng.After(j.LimitSec, func(*sim.Engine) { s.onTimeLimit(id) })
	}
	if s.pol.Tracks() {
		id := j.ID
		rj.updateEv = s.eng.After(rj.period, func(*sim.Engine) { s.onMemoryUpdate(id) })
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobStarted(now, j, ja.TotalMB()-ja.RemoteMB(), ja.RemoteMB())
	}
	if s.tel != nil {
		s.tel.JobStart(j.ID, len(ja.PerNode), ja.TotalMB()-ja.RemoteMB(), ja.RemoteMB())
		for i := range ja.PerNode {
			na := &ja.PerNode[i]
			for _, l := range na.Leases {
				s.tel.LeaseGrant(j.ID, int(na.Node), int(l.Lender), l.MB)
			}
		}
		s.poolCheck()
	}
	s.refreshAll()
}

func (s *Simulator) onFinish(id int) {
	s.accrue()
	rj, ok := s.running[id]
	if !ok {
		return
	}
	s.bank(rj)
	s.teardown(rj)
	s.closeAttempt(rj.rec, AttemptCompleted)
	rj.rec.Outcome = Completed
	rj.rec.Finish = s.eng.Now()
	s.res.Completed++
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobFinished(s.eng.Now(), rj.j, Completed)
	}
	s.tel.JobEnd(id, Completed.String(), rj.rec.Restarts)
	s.refreshAll()
	s.ensureTick(true)
}

func (s *Simulator) onTimeLimit(id int) {
	s.accrue()
	rj, ok := s.running[id]
	if !ok {
		return
	}
	s.bank(rj)
	s.teardown(rj)
	s.closeAttempt(rj.rec, AttemptTimedOut)
	rj.rec.Outcome = TimedOut
	rj.rec.Finish = s.eng.Now()
	s.res.TimedOut++
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobFinished(s.eng.Now(), rj.j, TimedOut)
	}
	s.tel.JobEnd(id, TimedOut.String(), rj.rec.Restarts)
	s.cancelDependents(rj.j.ID)
	s.refreshAll()
	s.ensureTick(true)
}

// closeAttempt finalises the record's open attempt.
func (s *Simulator) closeAttempt(rec *JobRecord, how AttemptEnd) {
	if n := len(rec.Attempts); n > 0 && rec.Attempts[n-1].End < 0 {
		rec.Attempts[n-1].End = s.eng.Now()
		rec.Attempts[n-1].How = how
	}
}

// teardown cancels a running job's events, releases its memory and nodes,
// and removes it from the running set.
func (s *Simulator) teardown(rj *runningJob) {
	s.eng.Cancel(rj.finishEv)
	s.eng.Cancel(rj.limitEv)
	s.eng.Cancel(rj.updateEv)
	s.curAllocMB -= rj.alloc.TotalMB()
	s.curBusyNodes -= len(rj.alloc.PerNode)
	if s.tel != nil {
		// Emit before Release truncates the lease records.
		for i := range rj.alloc.PerNode {
			na := &rj.alloc.PerNode[i]
			for _, l := range na.Leases {
				s.tel.LeaseRevoke(rj.j.ID, int(na.Node), int(l.Lender), l.MB)
			}
		}
	}
	if err := rj.alloc.Release(s.cl); err != nil {
		panic(err) // ledger corruption: fail loudly
	}
	delete(s.running, rj.j.ID)
	if i := sort.SearchInts(s.runIDs, rj.j.ID); i < len(s.runIDs) && s.runIDs[i] == rj.j.ID {
		s.runIDs = append(s.runIDs[:i], s.runIDs[i+1:]...)
	}
	s.poolCheck() // rising free re-arms the watermark detector
}

// onMemoryUpdate is the Monitor→Decider→Actuator→Executor cycle for one job
// (paper §2.2): read the usage the job will exhibit until the next update,
// resize the allocation to it, handle OOM, refresh the contention model.
func (s *Simulator) onMemoryUpdate(id int) {
	s.accrue()
	rj, ok := s.running[id]
	if !ok {
		return
	}
	s.bank(rj)

	// Decider: provision for the maximum usage between now and the next
	// update, read from the offline usage trace at the job's progress.
	window := rj.period / rj.slow // wallclock window mapped to progress time
	target := rj.use.MaxIn(rj.progress, rj.progress+window)

	before := rj.alloc.TotalMB()
	oom := false
	for i := range rj.alloc.PerNode {
		na := &rj.alloc.PerNode[i]
		nodeBefore, remoteBefore := na.TotalMB(), na.RemoteMB()
		err := s.adj.Adjust(s.cl, rj.alloc, i, target)
		if s.tel != nil {
			if d := na.TotalMB() - nodeBefore; d != 0 {
				s.tel.LeaseAdjust(id, int(na.Node), d, na.RemoteMB()-remoteBefore)
			}
		}
		if err != nil {
			if err == policy.ErrOutOfMemory {
				oom = true
				break
			}
			panic(err)
		}
	}
	after := rj.alloc.TotalMB()
	s.curAllocMB += after - before
	rj.dirty = true // the Adjust loop may have reshaped this job's placement
	s.poolCheck()

	if oom {
		s.oomKill(rj)
		return
	}
	if s.cfg.Observer != nil && after != before {
		s.cfg.Observer.AllocationChanged(s.eng.Now(), rj.j, before, after)
	}
	rj.updateEv = s.eng.After(rj.period, func(*sim.Engine) { s.onMemoryUpdate(id) })
	s.refreshAll()
}

// oomKill applies the configured OOM handling: terminate the job, release
// everything, and resubmit (F/R from scratch, C/R with banked progress)
// unless the restart cap is reached.
func (s *Simulator) oomKill(rj *runningJob) {
	s.res.OOMKills++
	rj.rec.Restarts++
	progress := rj.progress
	s.teardown(rj)
	s.closeAttempt(rj.rec, AttemptOOMKilled)
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobKilledOOM(s.eng.Now(), rj.j, rj.rec.Restarts)
	}

	id := rj.j.ID
	s.tel.JobAttemptEnd(id, AttemptOOMKilled.String(), rj.rec.Restarts)
	if rj.rec.Restarts >= s.cfg.MaxRestarts {
		rj.rec.Outcome = Abandoned
		rj.rec.Finish = s.eng.Now()
		s.res.Abandoned++
		if s.cfg.Observer != nil {
			s.cfg.Observer.JobFinished(s.eng.Now(), rj.j, Abandoned)
		}
		s.tel.JobEnd(id, Abandoned.String(), rj.rec.Restarts)
		s.cancelDependents(id)
	} else {
		if s.cfg.OOM == CheckpointRestart {
			// Resume from the last checkpoint boundary, not the kill
			// point: a real C/R library snapshots periodically.
			banked := progress
			if ci := s.cfg.CheckpointInterval; ci > 0 {
				banked = math.Floor(progress/ci) * ci
			}
			s.banked[id] = banked
		}
		if rj.rec.Restarts >= s.cfg.PriorityBoost {
			s.prio[id] = rj.rec.Restarts
		}
		s.queue.Push(sched.Entry{JobID: id, Enqueue: s.eng.Now(), Priority: s.prio[id]})
		if s.cfg.Observer != nil {
			s.cfg.Observer.JobSubmitted(s.eng.Now(), rj.j, true)
		}
		s.tel.JobSubmit(id, true)
	}
	s.refreshAll()
	s.ensureTick(true)
}

// ----------------------------------------------------- progress banking

// bank converts wallclock elapsed since the last banking point into job
// progress at the prevailing slowdown, and integrates actual memory use
// into the utilisation counters.
//
//dmp:hotpath
func (s *Simulator) bank(rj *runningJob) {
	now := s.eng.Now()
	dt := now - rj.lastT
	if dt <= 0 {
		return
	}
	p0 := rj.progress
	p1 := p0 + dt/rj.slow
	if p1 > rj.j.BaseRuntime {
		p1 = rj.j.BaseRuntime
	}
	rj.progress = p1
	rj.lastT = now

	var meanUse float64
	if p1 > p0 {
		m, err := rj.use.MeanIn(p0, p1)
		if err != nil {
			panic(err)
		}
		meanUse = m
	} else {
		meanUse = float64(rj.use.At(p0))
	}
	s.res.UsedMBSeconds += meanUse * float64(rj.j.Nodes) * dt
}

// remoteFraction returns the (possibly distance-weighted) remote share of
// one compute node's allocation. Without a topology, or with a zero hop
// penalty, it equals the plain remote fraction; otherwise each lease is
// weighted by 1 + HopPenalty·(hops−1).
func (s *Simulator) remoteFraction(na *cluster.NodeAllocation) float64 {
	total := na.TotalMB()
	if total == 0 {
		return 0
	}
	if s.cfg.Topology == nil || s.cfg.HopPenalty == 0 {
		return 1 - na.LocalFraction()
	}
	var weighted float64
	for _, l := range na.Leases {
		h := s.cfg.Topology.Hops(int(na.Node), int(l.Lender))
		w := 1.0
		if h > 1 {
			w += s.cfg.HopPenalty * float64(h-1)
		}
		weighted += float64(l.MB) * w
	}
	return weighted / float64(total)
}

// recontend rebuilds rj's contention cache from its current allocation: the
// per-node traffic contributions (in PerNode order, so the global flat sum
// visits them exactly as the full rescan did) and the maximum
// distance-weighted remote fraction its slowdown depends on. Each cached
// value is a deterministic function of the allocation alone, so reusing it
// across refreshes is bit-exact.
//
//dmp:hotpath
func (s *Simulator) recontend(rj *runningJob) {
	rj.nodeTraffic = rj.nodeTraffic[:0]
	fracs := s.fracsBuf[:0]
	for i := range rj.alloc.PerNode {
		na := &rj.alloc.PerNode[i]
		rj.nodeTraffic = append(rj.nodeTraffic, slowdown.NodeTraffic(rj.j.Profile, 1-na.LocalFraction()))
		fracs = append(fracs, s.remoteFraction(na))
	}
	s.fracsBuf = fracs
	rj.maxFrac = slowdown.MaxWeightedFrac(fracs)
	rj.dirty = false
}

// refreshAll recomputes the global contention pressure and every running
// job's slowdown, rescheduling completion events accordingly. It must be
// called after any change to memory placements.
//
// The incremental path does per-node work only for jobs whose allocation
// changed since the last refresh (flagged dirty at dispatch and in their own
// memory-update handler): untouched jobs contribute their cached traffic
// values and cached max fraction. Bit-identity with the full rescan —
// asserted by golden digests and the differential tests — follows from three
// facts: the traffic sum is flat over the same (job asc-ID, node) order, so
// the float additions associate identically; the cached inputs are exact
// (see recontend); and JobSlowdownFromMax over the cached max equals
// JobSlowdownWeighted over the full fraction vector bit-for-bit.
//
// Banking stays eager for every job each refresh: progress accrual divides
// by the prevailing slowdown step by step, and collapsing steps would change
// the float rounding and with it the golden digests.
//
//dmp:hotpath
func (s *Simulator) refreshAll() {
	if s.refRescan {
		s.refreshAllRescan()
		return
	}
	now := s.eng.Now()
	for _, id := range s.runIDs {
		s.bank(s.running[id])
	}
	var traffic float64
	for _, id := range s.runIDs {
		rj := s.running[id]
		if rj.dirty {
			s.recontend(rj)
		}
		for _, t := range rj.nodeTraffic {
			traffic += t
		}
	}
	rho := s.model.Pressure(traffic)
	for _, id := range s.runIDs {
		rj := s.running[id]
		rj.slow = slowdown.JobSlowdownFromMax(rj.j.Profile, rj.maxFrac, rho)
		s.refinish(rj, now)
	}
}

// refinish recomputes rj's completion time at the current slowdown and
// reschedules the finish event only if it moved.
//
//dmp:hotpath
func (s *Simulator) refinish(rj *runningJob, now float64) {
	remaining := rj.j.BaseRuntime - rj.progress
	if remaining < 0 {
		remaining = 0
	}
	at := now + remaining*rj.slow
	if math.IsInf(at, 0) || math.IsNaN(at) {
		panic(fmt.Sprintf("core: bad finish time for job %d", rj.j.ID))
	}
	if !rj.finishEv.Pending() {
		id := rj.j.ID
		rj.finishEv = s.eng.Schedule(at, func(*sim.Engine) { s.onFinish(id) }) //dmplint:ignore hotpath-alloc scheduled once per finish-time move, not per refresh step; Reschedule reuses the handle below
	} else if rj.finishEv.At() != at {
		rj.finishEv = s.eng.Reschedule(rj.finishEv, at)
	}
}

// refreshAllRescan is the retained full-rescan reference implementation of
// refreshAll: collect and sort the running set, then re-derive every job's
// per-node fractions, traffic and slowdown from the ledger with no caching.
// The differential tests run whole scenarios through it and assert Results
// and telemetry stay byte-identical to the incremental path.
//
// Jobs are visited in ascending ID order: map iteration order varies
// between runs, and floating-point summation of the traffic is not
// associative, so unordered iteration would make results irreproducible.
func (s *Simulator) refreshAllRescan() {
	now := s.eng.Now()
	ids := s.idsBuf[:0]
	for id := range s.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s.idsBuf = ids
	for _, id := range ids {
		s.bank(s.running[id])
	}
	var traffic float64
	for _, id := range ids {
		rj := s.running[id]
		for i := range rj.alloc.PerNode {
			remoteFrac := 1 - rj.alloc.PerNode[i].LocalFraction()
			traffic += slowdown.NodeTraffic(rj.j.Profile, remoteFrac)
		}
	}
	rho := s.model.Pressure(traffic)
	for _, id := range ids {
		rj := s.running[id]
		fracs := s.fracsBuf[:0]
		for i := range rj.alloc.PerNode {
			fracs = append(fracs, s.remoteFraction(&rj.alloc.PerNode[i]))
		}
		s.fracsBuf = fracs
		rj.slow = slowdown.JobSlowdownWeighted(rj.j.Profile, fracs, rho)
		s.refinish(rj, now)
	}
}
