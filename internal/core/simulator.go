package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dismem/internal/cluster"
	"dismem/internal/job"
	"dismem/internal/memtrace"
	"dismem/internal/policy"
	"dismem/internal/sched"
	"dismem/internal/sim"
	"dismem/internal/slowdown"
	"dismem/internal/sweep"
	"dismem/internal/telemetry"
)

// Simulator runs one scenario: a job trace against a cluster under one
// allocation policy. Create it with New and call Run once.
type Simulator struct {
	cfg    Config
	jobs   []*job.Job
	byID   map[int]*job.Job
	cl     *cluster.Cluster
	pol    policy.Policy
	ranker policy.LenderRanker
	adj    *policy.Adjuster
	eng    *sim.Engine
	model  *slowdown.Model
	rng    *rand.Rand
	tel    *telemetry.Recorder // nil when telemetry is disabled

	queue   sched.Queue
	running map[int]*runningJob
	records map[int]*JobRecord
	banked  map[int]float64 // retained progress for CheckpointRestart
	prio    map[int]int     // priority boost after repeated OOM failures

	res           *Result
	lastAcc       float64
	curAllocMB    int64
	curBusyNodes  int
	tickScheduled bool

	// runIDs mirrors the keys of running, kept sorted ascending; runList
	// holds the corresponding *runningJob at the same index. The refresh and
	// backfill hot paths iterate runList instead of chasing every ID through
	// the map on every event.
	runIDs  []int
	runList []*runningJob

	// cachedTraffic memoises the flat per-node traffic sum between
	// refreshes. It is valid only while the running set and every member's
	// allocation are unchanged (trafficValid), in which case rho — and with
	// it every job's slowdown — is unchanged too and refreshAll elides the
	// whole contention recomputation. Reuse is bit-exact: the cached value
	// is the same flat sum over the same unchanged inputs.
	cachedTraffic float64
	trafficValid  bool

	// refRescan routes refreshAll/currentResources/releases through the
	// retained full-rescan reference implementations. The differential tests
	// run every scenario both ways and assert identical Results and
	// byte-identical telemetry.
	refRescan bool

	// Parallel execution state, nil/unused unless cfg.Parallel selects the
	// windowed executor and the machine has more than one worker. parMin is
	// the running-set size below which fan-out costs more than it saves;
	// tests poke it to force the parallel phases on small scenarios.
	team      *sweep.Team
	parMin    int
	parRho    float64
	phaseBank func(worker, start, end int) // prebuilt: Team fn escapes, so closures are one-time
	phaseSlow func(worker, start, end int)
	parFracs  [][]float64 // per-worker recontend scratch
	bankBuf   []float64   // per-job banking deltas, reduced serially in runID order
	winBuf    []sim.Fired
	winStats  WindowStats

	// Pressure-domain state (Config.Pressure == PressureDomains). nDom is 0
	// in global mode, which disables every domain path. Domains are
	// identified with ledger shards: domain d owns shard d's contiguous
	// node-ID range, so a node's home domain is cl.ShardOf(id) and every
	// per-domain resource summary is the shard's O(1) summary.
	nDom         int
	domBW        []float64       // per-domain aggregate remote bandwidth (GB/s)
	domTraffic   []float64       // per-domain cached traffic sum
	domRho       []float64       // per-domain contention pressure
	domValid     []bool          // per-domain traffic-cache validity
	domJobs      [][]*runningJob // per-domain home-resident jobs, ascending job ID
	domCapMB     []int64         // per-domain memory capacity (immutable)
	refreshEpoch uint64          // refreshDomains per-phase job dedup stamp
	winGen       uint64          // windowIndependentDomains generation
	domStamp     []uint64        // per-domain winGen stamps (independence scratch)

	// Parallel window-dispatch state (domains mode + worker team + no
	// telemetry): per-worker adjusters and the taken members' jobs and
	// compute outcomes for one window.
	adjPar      []*policy.Adjuster
	dispRJs     []*runningJob
	dispOuts    []updateOutcome
	phaseUpdate func(worker, start, end int)

	// Scratch reused across refreshAll calls (the per-event hot path).
	idsBuf   []int
	fracsBuf []float64
	relBuf   []sched.Release
	prof     *sched.Profile // pooled conservative-backfill profile

	// Lifecycle state for the Start/StepUntil/Finish decomposition of Run
	// and for Fork (see fork.go). rngDraws counts Float64 draws taken from
	// rng so a fork can replay the stream to the same position; forkEvents
	// is the engine's fired count at the moment this simulator was forked
	// (zero for a simulator built by New) — the shared-prefix length a
	// branch did not have to re-simulate.
	started    bool
	finished   bool
	rngDraws   int
	forkEvents uint64
}

// runningJob is the live state of one dispatched job.
type runningJob struct {
	j        *job.Job
	rec      *JobRecord
	alloc    *cluster.JobAllocation
	start    float64         // dispatch time of this attempt
	lastT    float64         // last progress-banking time
	progress float64         // completed base-seconds of work
	slow     float64         // current slowdown factor (≥1)
	period   float64         // this job's jittered memory-update period
	use      memtrace.Cursor // usage-trace reader at this attempt's progress

	finishEv sim.Handle
	limitEv  sim.Handle
	updateEv sim.Handle

	// Contention cache, valid while dirty is false. A job's per-node remote
	// fractions depend only on its own allocation, which changes only at
	// dispatch and in its own memory-update handler — never when other jobs
	// borrow from or return memory to the same lenders — so the cache is
	// invalidated exactly there and refreshAll does no per-node work for
	// untouched jobs.
	nodeTraffic []float64 // per alloc.PerNode entry: slowdown.NodeTraffic value
	maxFrac     float64   // max distance-weighted remote fraction over nodes
	dirty       bool      // allocation changed since recontend last ran

	// Pressure-domain footprint (domains mode only), frozen at dispatch by
	// domainize: the home domain of every compute node, the sorted unique
	// home-domain list, and the domain set — home domains plus the shards
	// of every placement lease's lender — that confines all later growth.
	// domFrac caches, per home domain, the maximum weighted remote fraction
	// of the job's nodes resident there; epoch is the refreshDomains dedup
	// stamp for jobs spanning several touched domains.
	nodeDom  []int32
	homeDoms []int32
	domSet   []int32
	domFrac  []float64
	epoch    uint64
}

// New validates the configuration and trace and builds a simulator.
func New(cfg Config, jobs []*job.Job) (*Simulator, error) {
	if err := cfg.Normalize(); err != nil {
		return nil, err
	}
	byID := make(map[int]*job.Job, len(jobs))
	for _, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		if _, dup := byID[j.ID]; dup {
			return nil, fmt.Errorf("core: duplicate job ID %d", j.ID)
		}
		byID[j.ID] = j
	}
	if err := checkDependencies(jobs, byID); err != nil {
		return nil, err
	}
	// A nil ranker selects the most-free lender order served directly from
	// the cluster's free-memory index — no ranking is materialised.
	var ranker policy.LenderRanker
	if cfg.LenderPolicy == NearestFirst {
		ranker = policy.NearestFirstRanker(*cfg.Topology)
	}
	pol := policy.NewWithRanker(cfg.Policy, ranker)
	if cfg.Pressure == PressureDomains {
		pol = policy.NewDomainFirst(cfg.Policy)
	}
	s := &Simulator{
		cfg:     cfg,
		jobs:    jobs,
		byID:    byID,
		cl:      cluster.NewMixed(cfg.Cluster),
		pol:     pol,
		ranker:  ranker,
		adj:     policy.NewAdjuster(ranker),
		eng:     sim.New(),
		tel:     cfg.Telemetry,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		running: make(map[int]*runningJob),
		records: make(map[int]*JobRecord, len(jobs)),
		banked:  make(map[int]float64),
		prio:    make(map[int]int),
	}
	s.model = slowdown.NewModel(cfg.Cluster.Nodes, cfg.PerNodeRemoteBW)
	s.adj.Tel = cfg.Telemetry
	if cfg.Pressure == PressureDomains {
		// One pressure domain per ledger shard (Normalize forced
		// Cluster.Shards == Domains). A domain's bandwidth budget scales
		// with the nodes it contains, mirroring the global model's
		// per-node fabric provisioning.
		s.nDom = s.cl.ShardCount()
		s.domBW = make([]float64, s.nDom)
		s.domTraffic = make([]float64, s.nDom)
		s.domRho = make([]float64, s.nDom)
		s.domValid = make([]bool, s.nDom)
		s.domJobs = make([][]*runningJob, s.nDom)
		s.domCapMB = make([]int64, s.nDom)
		s.domStamp = make([]uint64, s.nDom)
		for i := 0; i < s.nDom; i++ {
			s.domBW[i] = cfg.PerNodeRemoteBW * float64(s.cl.Shard(i).Nodes)
		}
		for _, n := range s.cl.Nodes() {
			s.domCapMB[s.cl.ShardOf(n.ID)] += n.CapacityMB
		}
	}
	return s, nil
}

// Run executes the scenario and returns its Result. It must be called at
// most once, and not combined with an explicit Start.
func (s *Simulator) Run() (*Result, error) {
	s.Start()
	return s.Finish()
}

// Start schedules the scenario without firing any events: the result shell,
// the feasibility pre-check, every job's submit event, the telemetry
// sampler, and the horizon/budget limits. After Start the caller may advance
// the run piecewise with StepUntil, fork it, and complete it with Finish —
// Run is exactly Start followed by Finish, and the decomposition fires the
// same events in the same order, so results are byte-identical however the
// run is driven. Start must be called exactly once.
func (s *Simulator) Start() {
	if s.started {
		panic("core: Simulator.Start called twice")
	}
	s.started = true
	s.res = &Result{
		Policy:          s.cfg.Policy.String(),
		TotalCapacityMB: s.cl.TotalCapacityMB(),
		Nodes:           s.cl.Len(),
	}

	// Feasibility pre-check: a scenario containing a job that can never
	// run is reported as infeasible (the paper's missing bars) rather
	// than deadlocking the queue. Nothing is scheduled; StepUntil and
	// Finish both honour the flag.
	for _, j := range s.jobs {
		if !s.pol.CanEverRun(s.cl, j) {
			s.res.Infeasible = true
			s.res.InfeasibleJob = j.ID
			return
		}
	}

	for _, j := range s.jobs {
		s.records[j.ID] = &JobRecord{Job: j, Submit: j.SubmitTime, FirstStart: -1, LastStart: -1, Finish: -1}
		id := j.ID
		s.eng.ScheduleTag(j.SubmitTime, evTag(tagSubmit, id), func(*sim.Engine) { s.onSubmit(id) })
	}
	if iv := s.tel.SampleInterval(); iv > 0 {
		// The sampler reads state and emits; it mutates nothing, so results
		// are identical with it on or off. The periodic tick stops
		// rescheduling once it is the only queued event, so it cannot keep
		// the run alive on its own. The tick carries tagSample so Fork can
		// rebind it; the window executor still treats it as unclassified.
		s.eng.EveryTag(0, iv, evTag(tagSample, 0), func(*sim.Engine) { s.sample() })
	}
	if s.cfg.Horizon > 0 {
		s.eng.SetHorizon(s.cfg.Horizon)
	}
	if s.cfg.MaxEvents > 0 {
		s.eng.SetMaxEvents(s.cfg.MaxEvents)
	}
}

// StepUntil fires every event due at or before t with the serial executor
// and returns with the clock at the last fired event (≤ t). It is the pause
// point for forking: after StepUntil the engine is between events, which is
// the only state a Fork may be taken in. The windowed executor is not used
// here — serial stepping is proven byte-identical to it — so StepUntil may
// be freely mixed with a Finish that runs windowed.
func (s *Simulator) StepUntil(t float64) error {
	if !s.started {
		panic("core: StepUntil before Start")
	}
	if s.res.Infeasible || s.finished {
		return nil
	}
	s.eng.RunUntil(t)
	if s.eng.Exhausted() {
		return fmt.Errorf("core: event budget (%d) exhausted at t=%.0f — runaway simulation",
			s.cfg.MaxEvents, s.eng.Now())
	}
	return nil
}

// Finish drives the run to completion with the configured executor and
// returns the Result. It must be called exactly once, after Start.
func (s *Simulator) Finish() (*Result, error) {
	if !s.started {
		panic("core: Finish before Start")
	}
	if s.finished {
		panic("core: Finish called twice")
	}
	s.finished = true
	if s.res.Infeasible {
		return s.res, nil
	}
	exhausted := false
	var runErr error
	if s.cfg.Parallel {
		s.setupParallel()
		if s.team != nil {
			defer s.team.Close()
		}
		exhausted, runErr = s.runWindows()
	} else if s.cfg.Interrupt != nil {
		exhausted, runErr = s.runInterruptible()
	} else {
		s.eng.Run()
		exhausted = s.eng.Exhausted()
	}
	if runErr != nil {
		return nil, runErr
	}
	if exhausted {
		return nil, fmt.Errorf("core: event budget (%d) exhausted at t=%.0f — runaway simulation",
			s.cfg.MaxEvents, s.eng.Now())
	}
	// The clock may sit on a trailing sampler tick; the makespan is the time
	// of the last *simulation* event, which every handler recorded in
	// lastAcc. The sampler deliberately never accrues, so it can move
	// neither this nor the utilisation integrals — results are identical
	// with telemetry on or off.
	s.res.Makespan = s.lastAcc
	s.res.PeakQueue = s.queue.PeakLen()

	for _, j := range s.jobs {
		s.res.Records = append(s.res.Records, *s.records[j.ID])
	}
	if s.cfg.CheckInvariants {
		if err := s.cl.CheckInvariants(); err != nil {
			return nil, err
		}
	}
	if s.cfg.WindowStatsOut != nil {
		*s.cfg.WindowStatsOut = s.winStats
	}
	return s.res, nil
}

// interruptStride is how many events the serial executor fires between
// Interrupt polls: frequent enough that a cancelled request aborts within
// microseconds of simulated work, rare enough that the poll never shows up
// in the event hot path.
const interruptStride = 1024

// runInterruptible is the serial event loop with Config.Interrupt polling:
// identical to Engine.Run plus a cancellation check every interruptStride
// events. Used only when Interrupt is set, so the common path keeps the
// engine's tight loop.
func (s *Simulator) runInterruptible() (exhausted bool, err error) {
	for n := uint64(0); ; n++ {
		if s.cfg.MaxEvents > 0 && s.eng.Fired() >= s.cfg.MaxEvents {
			return true, nil
		}
		if n%interruptStride == 0 {
			if ierr := s.cfg.Interrupt(); ierr != nil {
				return false, fmt.Errorf("core: run interrupted at t=%.0f: %w", s.eng.Now(), ierr)
			}
		}
		if !s.eng.Step() {
			return false, nil
		}
	}
}

// randFloat draws from the simulator's deterministic RNG, counting the draw
// so Fork can replay an equal-seeded stream to the same position and a
// branch's jitter sequence continues exactly where the base's would have.
func (s *Simulator) randFloat() float64 {
	s.rngDraws++
	return s.rng.Float64()
}

// accrue integrates the utilisation counters up to the current time. Every
// event handler calls it before mutating state; it also advances the
// telemetry clock, so emitters deeper in the stack (policies, the ledger)
// need not thread the simulated time through their signatures.
func (s *Simulator) accrue() {
	now := s.eng.Now()
	dt := now - s.lastAcc
	if dt > 0 {
		s.res.AllocMBSeconds += dt * float64(s.curAllocMB)
		s.res.BusyNodeSeconds += dt * float64(s.curBusyNodes)
	}
	s.lastAcc = now
	s.tel.SetNow(now)
}

// sample records one fixed-interval telemetry snapshot. It reads O(1)
// aggregates only and mutates no simulation state — a run with sampling on
// produces the same Result as one with telemetry off.
func (s *Simulator) sample() {
	s.tel.Sample(s.eng.Now(), s.cl.TotalFreeMB(), s.cl.TotalLentMB(),
		s.queue.Len(), s.cl.BusyNodes(), len(s.running))
}

// poolCheck feeds the free-pool watermark detector after any change to the
// memory ledger. In domains mode it additionally checks the touched job's
// domain set against each domain's own capacity, so per-rack exhaustion is
// visible even while the system-wide pool looks healthy; rj may be nil when
// no single job scopes the change. With a single domain the per-domain check
// would duplicate the system-wide one event for event, so it is skipped —
// which keeps single-domain runs byte-identical to global mode.
func (s *Simulator) poolCheck(rj *runningJob) {
	if s.tel == nil {
		return
	}
	s.tel.PoolCheck(s.cl.TotalFreeMB(), s.cl.TotalCapacityMB())
	if s.nDom > 1 && rj != nil {
		for _, d := range rj.domSet {
			s.tel.PoolCheckDomain(int(d), s.cl.Shard(int(d)).FreeMB, s.domCapMB[d])
		}
	}
}

// ---------------------------------------------------------------- events

// Event tags classify queue entries for the window executor without calling
// into their actions: a kind in the top bits and the owning job (zero for
// global events) in the low 32. Tag zero is "unclassified" and conservatively
// conflicts with everything; tagSample marks the telemetry sampler's ticks,
// which the window executor deliberately treats exactly like tag zero (see
// windowIndependent) so tagging them — needed so Fork can rebind the tick —
// changes no window verdicts.
const (
	tagSubmit = iota + 1
	tagTick
	tagFinish
	tagLimit
	tagUpdate
	tagSample
)

// evTag packs an event kind and job ID into an engine tag.
func evTag(kind, id int) uint64 { return uint64(kind)<<32 | uint64(uint32(id)) }

func tagKind(tag uint64) int { return int(tag >> 32) }

func (s *Simulator) onSubmit(id int) {
	s.accrue()
	j := s.byID[id]
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobSubmitted(s.eng.Now(), j, false)
	}
	s.tel.JobSubmit(id, false)
	if s.dependencyState(j) == depFailed {
		// The predecessor already failed: the job can never run.
		rec := s.records[id]
		rec.Outcome = Abandoned
		rec.Finish = s.eng.Now()
		s.res.Abandoned++
		if s.cfg.Observer != nil {
			s.cfg.Observer.JobFinished(s.eng.Now(), j, Abandoned)
		}
		s.tel.JobEnd(id, Abandoned.String(), rec.Restarts)
		s.cancelDependents(id)
		return
	}
	s.queue.Push(sched.Entry{JobID: id, Enqueue: s.eng.Now(), Priority: s.prio[id]})
	s.ensureTick(true)
}

// ensureTick guarantees a scheduling pass is queued. immediate requests a
// pass right now (submission/completion); otherwise the regular interval
// applies.
//
//dmp:hotpath
func (s *Simulator) ensureTick(immediate bool) {
	if s.tickScheduled || s.queue.Len() == 0 {
		return
	}
	s.tickScheduled = true
	delay := s.cfg.SchedInterval
	if immediate {
		delay = 0
	}
	s.eng.AfterTag(delay, evTag(tagTick, 0), func(*sim.Engine) { s.onTick() }) //dmplint:ignore hotpath-alloc one scheduling closure per quiescent-to-active transition, amortized over the whole tick it schedules
}

func (s *Simulator) onTick() {
	s.accrue()
	s.tickScheduled = false
	s.schedulePass()
	s.ensureTick(false)
	if s.cfg.CheckInvariants {
		if err := s.cl.CheckInvariants(); err != nil { //dmplint:ignore hotpath-reach invariant sweeps run only when cfg.CheckInvariants is set — a debug mode that trades speed for ledger auditing
			panic(err)
		}
	}
}

// schedulePass runs one main-scheduler FIFO pass followed by one backfill
// pass, both bounded by the configured queue depth. Jobs with unsatisfied
// dependencies are held: they neither start nor block others.
func (s *Simulator) schedulePass() {
	// Main pass: strict FIFO among eligible jobs — stop at the first
	// eligible job that does not fit.
	for {
		progressed := false
		for _, e := range s.queue.Items(s.cfg.QueueDepth) {
			j := s.byID[e.JobID]
			if s.dependencyState(j) != depSatisfied {
				continue // held
			}
			ja, placed := s.pol.Place(s.cl, j)
			if !placed {
				goto backfill
			}
			s.queue.Remove(e.JobID)
			s.start(j, ja) //dmplint:ignore hotpath-reach job start is per-admission, not per-tick; its event-registration closures and telemetry are sanctioned slow-path work
			progressed = true
			break // re-read the queue: priorities may interleave
		}
		if !progressed {
			break
		}
	}
backfill:

	switch s.cfg.Backfill {
	case NoBackfill:
		return
	case ConservativeBackfill:
		s.conservativePass()
	default:
		s.easyPass()
	}
}

// easyPass is the EASY backfill: reserve for the first eligible queued job,
// let later short jobs jump it.
func (s *Simulator) easyPass() {
	var head *job.Job
	for _, e := range s.queue.Items(s.cfg.QueueDepth) {
		if j := s.byID[e.JobID]; s.dependencyState(j) == depSatisfied {
			head = j
			break
		}
	}
	if head == nil {
		return
	}
	shadow := s.shadowTimeFor(head)
	s.tel.BackfillHole(head.ID, shadow)
	for _, e := range s.queue.Items(s.cfg.QueueDepth) {
		if e.JobID == head.ID {
			continue
		}
		j := s.byID[e.JobID]
		if s.dependencyState(j) != depSatisfied {
			continue
		}
		if !sched.CanBackfill(s.eng.Now(), j.LimitSec, shadow) {
			continue
		}
		if ja, placed := s.pol.Place(s.cl, j); placed {
			s.queue.Remove(e.JobID)
			s.tel.BackfillPlace(j.ID)
			s.start(j, ja) //dmplint:ignore hotpath-reach job start is per-admission, not per-tick; its event-registration closures and telemetry are sanctioned slow-path work
		}
	}
}

// conservativePass gives every examined queued job a reservation on the
// future resource profile: a job starts now only if that does not push any
// earlier job's reservation back.
//
//dmp:hotpath
func (s *Simulator) conservativePass() {
	now := s.eng.Now()
	if s.prof == nil {
		s.prof = &sched.Profile{}
	}
	profile := s.prof
	profile.Reset(now, s.currentResources(), s.releases())
	for _, e := range s.queue.Items(s.cfg.QueueDepth) {
		j := s.byID[e.JobID]
		if s.dependencyState(j) != depSatisfied {
			continue // held: no reservation until the dependency resolves
		}
		d := s.demandFor(j)
		fit := profile.EarliestFit(d, now, j.LimitSec)
		if fit == now {
			if ja, placed := s.pol.Place(s.cl, j); placed {
				s.queue.Remove(e.JobID)
				s.tel.BackfillPlace(j.ID)
				s.start(j, ja) //dmplint:ignore hotpath-reach job start is per-admission, not per-tick; its event-registration closures and telemetry are sanctioned slow-path work
				profile.Reserve(d, now, j.LimitSec)
				continue
			}
			// The aggregate profile admits it but concrete placement
			// fails (fragmentation): fall through to a reservation at
			// the next breakpoint to stay conservative.
			fit = profile.EarliestFit(d, math.Nextafter(now, math.Inf(1)), j.LimitSec)
		}
		s.tel.BackfillHole(j.ID, fit)
		if !math.IsInf(fit, 1) {
			profile.Reserve(d, fit, j.LimitSec)
		}
	}
}

// currentResources summarises present availability for the reservation
// arithmetic. The node-class counts come straight from the cluster's idle
// split (O(1)); the class threshold there is NormalMB, the same comparison
// the retained rescan applies per node.
//
//dmp:hotpath
func (s *Simulator) currentResources() sched.Resources {
	if s.refRescan {
		return s.currentResourcesRescan()
	}
	var r sched.Resources
	r.NormalNodes, r.LargeNodes = s.cl.IdleComputeSplit()
	r.FreeMB = s.cl.TotalFreeMB()
	return r
}

// currentResourcesRescan is the retained full-rescan reference for
// currentResources.
func (s *Simulator) currentResourcesRescan() sched.Resources {
	normalMB := s.cfg.Cluster.NormalMB
	var r sched.Resources
	for _, n := range s.cl.Nodes() {
		if n.IsComputeAvailable() {
			if n.CapacityMB > normalMB {
				r.LargeNodes++
			} else {
				r.NormalNodes++
			}
		}
	}
	r.FreeMB = s.cl.TotalFreeMB()
	return r
}

// releases lists running jobs' conservative completions (start + limit) into
// a scratch slice reused across scheduling passes. Jobs are visited in
// ascending ID order; the consumers (Profile, ShadowTime) sort by release
// time and combine resources with commutative integer arithmetic, so the
// iteration order cannot affect results — the retained reference walks the
// map instead and the differential tests confirm the equivalence.
//
//dmp:hotpath
func (s *Simulator) releases() []sched.Release {
	if s.refRescan {
		return s.releasesRescan()
	}
	out := s.relBuf[:0]
	for _, rj := range s.runList {
		out = append(out, s.releaseOf(rj))
	}
	s.relBuf = out
	return out
}

// releasesRescan is the retained reference implementation of releases: a
// fresh allocation per call, visiting jobs in ascending ID order so the
// reference path is as reproducible as the incremental one (the release
// list feeds the backfill planner, where order breaks ties).
func (s *Simulator) releasesRescan() []sched.Release {
	ids := make([]int, 0, len(s.running))
	for id := range s.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]sched.Release, 0, len(ids))
	for _, id := range ids {
		out = append(out, s.releaseOf(s.running[id]))
	}
	return out
}

// releaseOf summarises one running job's conservative release.
//
//dmp:hotpath
func (s *Simulator) releaseOf(rj *runningJob) sched.Release {
	normalMB := s.cfg.Cluster.NormalMB
	var res sched.Resources
	for i := range rj.alloc.PerNode {
		if s.cl.Node(rj.alloc.PerNode[i].Node).CapacityMB > normalMB {
			res.LargeNodes++
		} else {
			res.NormalNodes++
		}
	}
	res.FreeMB = rj.alloc.TotalMB()
	return sched.Release{At: rj.start + rj.j.LimitSec, Res: res}
}

// demandFor maps a job to the aggregate demand vector under the active
// policy.
func (s *Simulator) demandFor(j *job.Job) sched.Demand {
	d := sched.Demand{Nodes: j.Nodes}
	if s.cfg.Policy == policy.Baseline {
		d.LargeOnly = j.RequestMB > s.cfg.Cluster.NormalMB
	} else {
		d.UsePool = true
		d.PooledMB = j.TotalRequestMB()
	}
	return d
}

// shadowTimeFor computes the EASY reservation time for the queue head:
// the earliest time it fits assuming running jobs release their resources
// at their conservative ends (start + wallclock limit).
func (s *Simulator) shadowTimeFor(j *job.Job) float64 {
	return sched.ShadowTime(s.eng.Now(), s.currentResources(), s.releases(), s.demandFor(j))
}

// start dispatches a placed job.
func (s *Simulator) start(j *job.Job, ja *cluster.JobAllocation) {
	now := s.eng.Now()
	rec := s.records[j.ID]
	if rec.FirstStart < 0 {
		rec.FirstStart = now
	}
	rec.LastStart = now
	rec.Attempts = append(rec.Attempts, Attempt{Start: now, End: -1})

	rj := &runningJob{
		j:        j,
		rec:      rec,
		alloc:    ja,
		start:    now,
		lastT:    now,
		progress: s.banked[j.ID],
		slow:     1,
		period:   s.cfg.UpdateInterval * (1 + s.cfg.UpdateJitter*(2*s.randFloat()-1)),
		use:      j.Usage.Cursor(),
		dirty:    true,
	}
	delete(s.banked, j.ID)
	s.running[j.ID] = rj
	i := sort.SearchInts(s.runIDs, j.ID)
	s.runIDs = append(s.runIDs, 0)
	copy(s.runIDs[i+1:], s.runIDs[i:])
	s.runIDs[i] = j.ID
	s.runList = append(s.runList, nil)
	copy(s.runList[i+1:], s.runList[i:])
	s.runList[i] = rj
	s.trafficValid = false // new member: the traffic sum changes
	if s.nDom > 0 {
		s.domainize(rj)
		for _, d := range rj.homeDoms {
			s.domJobs[d] = insertDomJob(s.domJobs[d], rj)
			s.domValid[d] = false
		}
	}
	s.curAllocMB += ja.TotalMB()
	s.curBusyNodes += len(ja.PerNode)

	if s.cfg.EnforceTimeLimit {
		id := j.ID
		rj.limitEv = s.eng.AfterTag(j.LimitSec, evTag(tagLimit, id), func(*sim.Engine) { s.onTimeLimit(id) })
	}
	if s.pol.Tracks() {
		id := j.ID
		rj.updateEv = s.eng.AfterTag(rj.period, evTag(tagUpdate, id), func(*sim.Engine) { s.onMemoryUpdate(id) })
	}
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobStarted(now, j, ja.TotalMB()-ja.RemoteMB(), ja.RemoteMB())
	}
	if s.tel != nil {
		s.tel.JobStart(j.ID, len(ja.PerNode), ja.TotalMB()-ja.RemoteMB(), ja.RemoteMB())
		for i := range ja.PerNode {
			na := &ja.PerNode[i]
			for _, l := range na.Leases {
				s.tel.LeaseGrant(j.ID, int(na.Node), int(l.Lender), l.MB)
			}
		}
		s.poolCheck(rj)
	}
	s.refreshAfter(rj)
}

func (s *Simulator) onFinish(id int) {
	s.accrue()
	rj, ok := s.running[id]
	if !ok {
		return
	}
	s.bank(rj)
	s.teardown(rj)
	s.closeAttempt(rj.rec, AttemptCompleted)
	rj.rec.Outcome = Completed
	rj.rec.Finish = s.eng.Now()
	s.res.Completed++
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobFinished(s.eng.Now(), rj.j, Completed)
	}
	s.tel.JobEnd(id, Completed.String(), rj.rec.Restarts)
	s.refreshAfter(rj)
	s.ensureTick(true)
}

func (s *Simulator) onTimeLimit(id int) {
	s.accrue()
	rj, ok := s.running[id]
	if !ok {
		return
	}
	s.bank(rj)
	s.teardown(rj)
	s.closeAttempt(rj.rec, AttemptTimedOut)
	rj.rec.Outcome = TimedOut
	rj.rec.Finish = s.eng.Now()
	s.res.TimedOut++
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobFinished(s.eng.Now(), rj.j, TimedOut)
	}
	s.tel.JobEnd(id, TimedOut.String(), rj.rec.Restarts)
	s.cancelDependents(rj.j.ID)
	s.refreshAfter(rj)
	s.ensureTick(true)
}

// closeAttempt finalises the record's open attempt.
func (s *Simulator) closeAttempt(rec *JobRecord, how AttemptEnd) {
	if n := len(rec.Attempts); n > 0 && rec.Attempts[n-1].End < 0 {
		rec.Attempts[n-1].End = s.eng.Now()
		rec.Attempts[n-1].How = how
	}
}

// teardown cancels a running job's events, releases its memory and nodes,
// and removes it from the running set.
func (s *Simulator) teardown(rj *runningJob) {
	s.eng.Cancel(rj.finishEv)
	s.eng.Cancel(rj.limitEv)
	s.eng.Cancel(rj.updateEv)
	s.curAllocMB -= rj.alloc.TotalMB()
	s.curBusyNodes -= len(rj.alloc.PerNode)
	if s.tel != nil {
		// Emit before Release truncates the lease records.
		for i := range rj.alloc.PerNode {
			na := &rj.alloc.PerNode[i]
			for _, l := range na.Leases {
				s.tel.LeaseRevoke(rj.j.ID, int(na.Node), int(l.Lender), l.MB)
			}
		}
	}
	if err := rj.alloc.Release(s.cl); err != nil { //dmplint:ignore hotpath-reach teardown runs once per job completion; Release's error wrapping exists only on the ledger-corruption path
		panic(err) // ledger corruption: fail loudly
	}
	delete(s.running, rj.j.ID)
	if i := sort.SearchInts(s.runIDs, rj.j.ID); i < len(s.runIDs) && s.runIDs[i] == rj.j.ID {
		s.runIDs = append(s.runIDs[:i], s.runIDs[i+1:]...)
		copy(s.runList[i:], s.runList[i+1:])
		s.runList[len(s.runList)-1] = nil
		s.runList = s.runList[:len(s.runList)-1]
	}
	s.trafficValid = false // departed member: the traffic sum changes
	if s.nDom > 0 {
		for _, d := range rj.homeDoms {
			s.domJobs[d] = removeDomJob(s.domJobs[d], rj)
			s.domValid[d] = false
		}
	}
	s.poolCheck(rj) // rising free re-arms the watermark detector
}

// updateOutcome carries one memory update's results from the compute half
// (banking + allocation resize, parallelisable across disjoint domain sets)
// to the commit half (shared-accumulator and engine mutation, serial).
type updateOutcome struct {
	usedDelta     float64 // bankDelta contribution, reduced serially
	before, after int64   // allocation totals around the resize
	changed       bool    // any node's (total, remote) pair moved
	oom           bool    // resize hit ErrOutOfMemory
}

// onMemoryUpdate is the Monitor→Decider→Actuator→Executor cycle for one job
// (paper §2.2): read the usage the job will exhibit until the next update,
// resize the allocation to it, handle OOM, refresh the contention model.
// The body is split into updateCompute and updateCommit so the windowed
// executor can run the compute halves of domain-disjoint updates in parallel
// and replay the commit halves serially in pop order.
func (s *Simulator) onMemoryUpdate(id int) {
	s.accrue()
	rj, ok := s.running[id]
	if !ok {
		return
	}
	out := s.updateCompute(rj, s.adj)
	s.updateCommit(rj, out)
}

// updateCompute banks rj's progress and resizes its allocation to the usage
// trace's next-window maximum. It mutates rj and the ledger entries of rj's
// nodes and (in domains mode) lenders inside rj's frozen domain set only —
// never the simulator's shared accumulators — so compute halves of jobs with
// pairwise-disjoint domain sets commute and may run concurrently, each with
// its own Adjuster.
//
//dmp:hotpath
func (s *Simulator) updateCompute(rj *runningJob, adj *policy.Adjuster) updateOutcome {
	var out updateOutcome
	out.usedDelta = s.bankDelta(rj)

	// Decider: provision for the maximum usage between now and the next
	// update, read from the offline usage trace at the job's progress.
	window := rj.period / rj.slow // wallclock window mapped to progress time
	target := rj.use.MaxIn(rj.progress, rj.progress+window)

	out.before = rj.alloc.TotalMB()
	for i := range rj.alloc.PerNode {
		na := &rj.alloc.PerNode[i]
		nodeBefore, remoteBefore := na.TotalMB(), na.RemoteMB()
		var err error
		if s.nDom > 0 {
			err = adj.AdjustDomains(s.cl, rj.alloc, i, target, rj.domSet)
		} else {
			err = adj.Adjust(s.cl, rj.alloc, i, target)
		}
		if na.TotalMB() != nodeBefore || na.RemoteMB() != remoteBefore {
			// One Adjust call either grows or shrinks a node's allocation,
			// so an unchanged (total, remote) pair means untouched leases —
			// the contention cache stays exact.
			out.changed = true
		}
		if s.tel != nil {
			if d := na.TotalMB() - nodeBefore; d != 0 {
				s.tel.LeaseAdjust(rj.j.ID, int(na.Node), d, na.RemoteMB()-remoteBefore)
			}
		}
		if err != nil {
			if err == policy.ErrOutOfMemory {
				out.oom = true
				break
			}
			panic(err)
		}
	}
	out.after = rj.alloc.TotalMB()
	return out
}

// updateCommit applies one update's shared-state effects: the utilisation
// accumulators, cache invalidation, watermark checks, OOM handling, the next
// update event, and the contention refresh. Always serial.
//
//dmp:hotpath
func (s *Simulator) updateCommit(rj *runningJob, out updateOutcome) {
	s.res.UsedMBSeconds += out.usedDelta
	s.curAllocMB += out.after - out.before
	if out.changed {
		rj.dirty = true
		s.invalidate(rj)
	}
	s.poolCheck(rj)

	if out.oom {
		s.oomKill(rj)
		return
	}
	if s.cfg.Observer != nil && out.after != out.before {
		s.cfg.Observer.AllocationChanged(s.eng.Now(), rj.j, out.before, out.after)
	}
	id := rj.j.ID
	rj.updateEv = s.eng.AfterTag(rj.period, evTag(tagUpdate, id), func(*sim.Engine) { s.onMemoryUpdate(id) }) //dmplint:ignore hotpath-alloc one closure per update period, exactly as the pre-split handler allocated
	s.refreshAfter(rj)
}

// oomKill applies the configured OOM handling: terminate the job, release
// everything, and resubmit (F/R from scratch, C/R with banked progress)
// unless the restart cap is reached.
func (s *Simulator) oomKill(rj *runningJob) {
	s.res.OOMKills++
	rj.rec.Restarts++
	progress := rj.progress
	s.teardown(rj)
	s.closeAttempt(rj.rec, AttemptOOMKilled)
	if s.cfg.Observer != nil {
		s.cfg.Observer.JobKilledOOM(s.eng.Now(), rj.j, rj.rec.Restarts)
	}

	id := rj.j.ID
	s.tel.JobAttemptEnd(id, AttemptOOMKilled.String(), rj.rec.Restarts)
	if rj.rec.Restarts >= s.cfg.MaxRestarts {
		rj.rec.Outcome = Abandoned
		rj.rec.Finish = s.eng.Now()
		s.res.Abandoned++
		if s.cfg.Observer != nil {
			s.cfg.Observer.JobFinished(s.eng.Now(), rj.j, Abandoned)
		}
		s.tel.JobEnd(id, Abandoned.String(), rj.rec.Restarts)
		s.cancelDependents(id)
	} else {
		if s.cfg.OOM == CheckpointRestart {
			// Resume from the last checkpoint boundary, not the kill
			// point: a real C/R library snapshots periodically.
			banked := progress
			if ci := s.cfg.CheckpointInterval; ci > 0 {
				banked = math.Floor(progress/ci) * ci
			}
			s.banked[id] = banked
		}
		if rj.rec.Restarts >= s.cfg.PriorityBoost {
			s.prio[id] = rj.rec.Restarts
		}
		s.queue.Push(sched.Entry{JobID: id, Enqueue: s.eng.Now(), Priority: s.prio[id]})
		if s.cfg.Observer != nil {
			s.cfg.Observer.JobSubmitted(s.eng.Now(), rj.j, true)
		}
		s.tel.JobSubmit(id, true)
	}
	s.refreshAfter(rj)
	s.ensureTick(true)
}

// ----------------------------------------------------- progress banking

// bank converts wallclock elapsed since the last banking point into job
// progress at the prevailing slowdown, and integrates actual memory use
// into the utilisation counters.
//
//dmp:hotpath
func (s *Simulator) bank(rj *runningJob) {
	s.res.UsedMBSeconds += s.bankDelta(rj)
}

// bankDelta advances rj's progress and returns its used-memory integral
// contribution without touching the shared accumulator. The parallel
// refresh runs this per job concurrently (it mutates rj only) and then
// reduces the deltas serially in runID order — the exact additions, in the
// exact order, of the serial bank loop.
//
//dmp:hotpath
func (s *Simulator) bankDelta(rj *runningJob) float64 {
	now := s.eng.Now()
	dt := now - rj.lastT
	if dt <= 0 {
		return 0
	}
	p0 := rj.progress
	p1 := p0 + dt/rj.slow
	if p1 > rj.j.BaseRuntime {
		p1 = rj.j.BaseRuntime
	}
	rj.progress = p1
	rj.lastT = now

	var meanUse float64
	if p1 > p0 {
		m, err := rj.use.MeanIn(p0, p1)
		if err != nil {
			panic(err)
		}
		meanUse = m
	} else {
		meanUse = float64(rj.use.At(p0))
	}
	return meanUse * float64(rj.j.Nodes) * dt
}

// remoteFraction returns the (possibly distance-weighted) remote share of
// one compute node's allocation. Without a topology, or with a zero hop
// penalty, it equals the plain remote fraction; otherwise each lease is
// weighted by 1 + HopPenalty·(hops−1).
func (s *Simulator) remoteFraction(na *cluster.NodeAllocation) float64 {
	total := na.TotalMB()
	if total == 0 {
		return 0
	}
	if s.cfg.Topology == nil || s.cfg.HopPenalty == 0 {
		return 1 - na.LocalFraction()
	}
	var weighted float64
	for _, l := range na.Leases {
		h := s.cfg.Topology.Hops(int(na.Node), int(l.Lender))
		w := 1.0
		if h > 1 {
			w += s.cfg.HopPenalty * float64(h-1)
		}
		weighted += float64(l.MB) * w
	}
	return weighted / float64(total)
}

// recontend rebuilds rj's contention cache from its current allocation: the
// per-node traffic contributions (in PerNode order, so the global flat sum
// visits them exactly as the full rescan did) and the maximum
// distance-weighted remote fraction its slowdown depends on. Each cached
// value is a deterministic function of the allocation alone, so reusing it
// across refreshes is bit-exact.
//
//dmp:hotpath
func (s *Simulator) recontend(rj *runningJob) {
	s.fracsBuf = s.recontendInto(rj, s.fracsBuf)
}

// recontendInto is recontend with caller-supplied fraction scratch, so the
// parallel refresh can rebuild several dirty jobs concurrently with one
// scratch slice per worker. It writes rj's fields only.
//
//dmp:hotpath
func (s *Simulator) recontendInto(rj *runningJob, fracs []float64) []float64 {
	rj.nodeTraffic = rj.nodeTraffic[:0]
	fracs = fracs[:0]
	for i := range rj.alloc.PerNode {
		na := &rj.alloc.PerNode[i]
		rj.nodeTraffic = append(rj.nodeTraffic, slowdown.NodeTraffic(rj.j.Profile, 1-na.LocalFraction()))
		fracs = append(fracs, s.remoteFraction(na))
	}
	rj.maxFrac = slowdown.MaxWeightedFrac(fracs)
	rj.dirty = false
	return fracs
}

// ---------------------------------------------------- pressure domains

// domainize freezes rj's pressure-domain footprint at dispatch: each compute
// node's home domain (its ledger shard), the sorted unique home-domain list,
// and the domain set — home domains plus every placement lease's lender
// shard. All later growth is confined to the domain set (AdjustDomains), so
// the footprint never widens mid-attempt; an OOM restart re-places the job
// and freezes a fresh one.
func (s *Simulator) domainize(rj *runningJob) {
	rj.nodeDom = rj.nodeDom[:0]
	rj.homeDoms = rj.homeDoms[:0]
	for i := range rj.alloc.PerNode {
		d := int32(s.cl.ShardOf(rj.alloc.PerNode[i].Node))
		rj.nodeDom = append(rj.nodeDom, d)
		rj.homeDoms = addDom(rj.homeDoms, d)
	}
	rj.domSet = append(rj.domSet[:0], rj.homeDoms...)
	for i := range rj.alloc.PerNode {
		for _, l := range rj.alloc.PerNode[i].Leases {
			rj.domSet = addDom(rj.domSet, int32(s.cl.ShardOf(l.Lender)))
		}
	}
	if cap(rj.domFrac) < len(rj.homeDoms) {
		rj.domFrac = make([]float64, len(rj.homeDoms))
	}
	rj.domFrac = rj.domFrac[:len(rj.homeDoms)]
}

// addDom inserts d into a sorted unique domain list.
func addDom(doms []int32, d int32) []int32 {
	i := sort.Search(len(doms), func(k int) bool { return doms[k] >= d })
	if i < len(doms) && doms[i] == d {
		return doms
	}
	doms = append(doms, 0)
	copy(doms[i+1:], doms[i:])
	doms[i] = d
	return doms
}

// domIndex returns d's position in a sorted unique domain list.
//
//dmp:hotpath
func domIndex(doms []int32, d int32) int {
	return sort.Search(len(doms), func(k int) bool { return doms[k] >= d })
}

// insertDomJob adds rj to a domain's resident list, kept sorted by job ID so
// per-domain traffic sums and refinish calls visit jobs in the same order
// every run.
func insertDomJob(list []*runningJob, rj *runningJob) []*runningJob {
	i := sort.Search(len(list), func(k int) bool { return list[k].j.ID >= rj.j.ID })
	list = append(list, nil)
	copy(list[i+1:], list[i:])
	list[i] = rj
	return list
}

// removeDomJob removes rj from a domain's resident list.
func removeDomJob(list []*runningJob, rj *runningJob) []*runningJob {
	i := sort.Search(len(list), func(k int) bool { return list[k].j.ID >= rj.j.ID })
	if i < len(list) && list[i] == rj {
		copy(list[i:], list[i+1:])
		list[len(list)-1] = nil
		list = list[:len(list)-1]
	}
	return list
}

// invalidate marks the contention caches stale after rj's allocation
// changed: rj's home domains in domains mode, the flat global sum otherwise.
//
//dmp:hotpath
func (s *Simulator) invalidate(rj *runningJob) {
	if s.nDom > 0 {
		for _, d := range rj.homeDoms {
			s.domValid[d] = false
		}
		return
	}
	s.trafficValid = false
}

// refreshAfter refreshes the contention model after an event touching rj:
// the O(Δ) per-domain path in domains mode, the global refresh otherwise.
//
//dmp:hotpath
func (s *Simulator) refreshAfter(rj *runningJob) {
	if s.nDom > 0 {
		s.refreshDomains(rj)
		return
	}
	s.refreshAll()
}

// refreshDomains is the contention refresh scoped to the domains rj calls
// home. Jobs outside the touched domains are untouched by construction:
// their domains' rho values did not move, so their slowdowns — and with them
// their deferred progress banking and pending finish events — stay exact.
// That is what makes an event's refresh cost O(touched domains' residents)
// instead of O(running set).
//
// The dirty-job invariant mirrors the global incremental path: at any
// refreshAfter(rj) the only possibly-dirty job is rj itself, and every site
// that marks rj dirty also invalidates all of rj's home domains, so the
// phase-2 rebuild of invalid touched domains re-derives every stale cache.
//
// Phases (each deduplicating jobs resident in several touched domains with
// an epoch stamp, visiting domains ascending and jobs in ID order):
//
//	1 bank touched residents' progress at their prevailing slowdown;
//	2 rebuild each invalid touched domain's traffic sum and rho, merging
//	  per-node traffic by the node's home domain;
//	3 re-derive touched residents' slowdowns from the per-domain rho;
//	4 refinish touched residents.
//
//dmp:hotpath
//dmp:domainmerge
func (s *Simulator) refreshDomains(rj *runningJob) {
	now := s.eng.Now()
	touched := rj.homeDoms
	s.refreshEpoch++
	for _, d := range touched {
		for _, oj := range s.domJobs[d] {
			if oj.epoch == s.refreshEpoch {
				continue
			}
			oj.epoch = s.refreshEpoch
			s.bank(oj)
		}
	}
	dirtyRho := false
	for _, d := range touched {
		if s.domValid[d] {
			continue
		}
		var traffic float64
		for _, oj := range s.domJobs[d] {
			if oj.dirty {
				s.recontendDomains(oj)
			}
			for i, t := range oj.nodeTraffic {
				if oj.nodeDom[i] == d {
					traffic += t
				}
			}
		}
		s.domTraffic[d] = traffic
		s.domRho[d] = slowdown.PressureBW(traffic, s.domBW[d])
		s.domValid[d] = true
		dirtyRho = true
	}
	if dirtyRho {
		s.refreshEpoch++
		for _, d := range touched {
			for _, oj := range s.domJobs[d] {
				if oj.epoch == s.refreshEpoch {
					continue
				}
				oj.epoch = s.refreshEpoch
				oj.slow = s.domainSlowdown(oj)
			}
		}
	}
	s.refreshEpoch++
	for _, d := range touched {
		for _, oj := range s.domJobs[d] {
			if oj.epoch == s.refreshEpoch {
				continue
			}
			oj.epoch = s.refreshEpoch
			s.refinish(oj, now)
		}
	}
}

// recontendDomains rebuilds rj's contention caches in domains mode: the
// per-node traffic contributions (as recontend does) plus, per home domain,
// the maximum distance-weighted remote fraction of rj's nodes resident
// there. It writes rj's fields only.
//
//dmp:hotpath
func (s *Simulator) recontendDomains(rj *runningJob) {
	rj.nodeTraffic = rj.nodeTraffic[:0]
	for k := range rj.domFrac {
		rj.domFrac[k] = 0
	}
	for i := range rj.alloc.PerNode {
		na := &rj.alloc.PerNode[i]
		rj.nodeTraffic = append(rj.nodeTraffic, slowdown.NodeTraffic(rj.j.Profile, 1-na.LocalFraction()))
		wf := s.remoteFraction(na)
		if k := domIndex(rj.homeDoms, rj.nodeDom[i]); wf > rj.domFrac[k] {
			rj.domFrac[k] = wf
		}
	}
	rj.maxFrac = slowdown.MaxWeightedFrac(rj.domFrac)
	rj.dirty = false
}

// domainSlowdown derives rj's slowdown as the worst over its home domains:
// each domain contributes the single-rho slowdown of rj's nodes resident
// there at that domain's pressure. With one domain this degenerates to the
// global formula bit-for-bit.
//
//dmp:hotpath
//dmp:domainmerge
func (s *Simulator) domainSlowdown(rj *runningJob) float64 {
	slow := 1.0
	for k, d := range rj.homeDoms {
		if v := slowdown.JobSlowdownFromMax(rj.j.Profile, rj.domFrac[k], s.domRho[d]); v > slow {
			slow = v
		}
	}
	return slow
}

// refreshAll recomputes the global contention pressure and every running
// job's slowdown, rescheduling completion events accordingly. It must be
// called after any change to memory placements.
//
// The incremental path does per-node work only for jobs whose allocation
// changed since the last refresh (flagged dirty at dispatch and in their own
// memory-update handler): untouched jobs contribute their cached traffic
// values and cached max fraction. Bit-identity with the full rescan —
// asserted by golden digests and the differential tests — follows from three
// facts: the traffic sum is flat over the same (job asc-ID, node) order, so
// the float additions associate identically; the cached inputs are exact
// (see recontend); and JobSlowdownFromMax over the cached max equals
// JobSlowdownWeighted over the full fraction vector bit-for-bit.
//
// Banking stays eager for every job each refresh: progress accrual divides
// by the prevailing slowdown step by step, and collapsing steps would change
// the float rounding and with it the golden digests.
//
// A refresh with trafficValid still set — nothing started, finished, or
// resized since the last one — skips the contention recomputation entirely:
// the flat traffic sum, rho, and every job's slowdown are pure functions of
// state that has not changed, so reusing them is bit-exact. Only banking
// (time advanced) and refinishing (finish times shift with the clock) run.
//
//dmp:hotpath
func (s *Simulator) refreshAll() {
	if s.refRescan {
		s.refreshAllRescan()
		return
	}
	now := s.eng.Now()
	if s.team != nil && len(s.runList) >= s.parMin {
		s.refreshParallel(now)
		return
	}
	for _, rj := range s.runList {
		s.bank(rj)
	}
	if !s.trafficValid {
		var traffic float64
		for _, rj := range s.runList {
			if rj.dirty {
				s.recontend(rj)
			}
			for _, t := range rj.nodeTraffic {
				traffic += t
			}
		}
		s.cachedTraffic = traffic
		s.trafficValid = true
		rho := s.model.Pressure(traffic)
		for _, rj := range s.runList {
			rj.slow = slowdown.JobSlowdownFromMax(rj.j.Profile, rj.maxFrac, rho)
		}
	}
	for _, rj := range s.runList {
		s.refinish(rj, now)
	}
}

// refreshParallel is refreshAll's data-parallel form, used by the windowed
// executor when a worker team exists and the running set is large enough to
// amortise the dispatch. It is bit-identical to the serial path by phase
// construction:
//
//	A (parallel) banking deltas + dirty-job recontends — each touches one
//	  job's state only, with per-worker fraction scratch;
//	B (serial, runID order) the UsedMBSeconds reduction and the flat
//	  traffic sum — float additions associate exactly as serially;
//	C (parallel) per-job slowdowns — pure functions of (profile, maxFrac,
//	  rho);
//	D (serial, runID order) refinish — engine mutation, where the order of
//	  Schedule calls assigns the seqs that break same-time firing ties.
func (s *Simulator) refreshParallel(now float64) {
	n := len(s.runList)
	if cap(s.bankBuf) < n {
		s.bankBuf = make([]float64, 0, 2*n)
	}
	s.bankBuf = s.bankBuf[:n]
	s.team.Run(n, s.phaseBank)
	for _, d := range s.bankBuf {
		s.res.UsedMBSeconds += d
	}
	if !s.trafficValid {
		var traffic float64
		for _, rj := range s.runList {
			for _, t := range rj.nodeTraffic {
				traffic += t
			}
		}
		s.cachedTraffic = traffic
		s.trafficValid = true
		s.parRho = s.model.Pressure(traffic)
		s.team.Run(n, s.phaseSlow)
	}
	for _, rj := range s.runList {
		s.refinish(rj, now)
	}
}

// refinish recomputes rj's completion time at the current slowdown and
// reschedules the finish event only if it moved.
//
//dmp:hotpath
func (s *Simulator) refinish(rj *runningJob, now float64) {
	remaining := rj.j.BaseRuntime - rj.progress
	if remaining < 0 {
		remaining = 0
	}
	at := now + remaining*rj.slow
	if math.IsInf(at, 0) || math.IsNaN(at) {
		panic(fmt.Sprintf("core: bad finish time for job %d", rj.j.ID))
	}
	if !rj.finishEv.Pending() {
		id := rj.j.ID
		rj.finishEv = s.eng.ScheduleTag(at, evTag(tagFinish, id), func(*sim.Engine) { s.onFinish(id) }) //dmplint:ignore hotpath-alloc scheduled once per finish-time move, not per refresh step; Reschedule reuses the handle below
	} else if rj.finishEv.At() != at {
		rj.finishEv = s.eng.Reschedule(rj.finishEv, at)
	}
}

// refreshAllRescan is the retained full-rescan reference implementation of
// refreshAll: collect and sort the running set, then re-derive every job's
// per-node fractions, traffic and slowdown from the ledger with no caching.
// The differential tests run whole scenarios through it and assert Results
// and telemetry stay byte-identical to the incremental path.
//
// Jobs are visited in ascending ID order: map iteration order varies
// between runs, and floating-point summation of the traffic is not
// associative, so unordered iteration would make results irreproducible.
func (s *Simulator) refreshAllRescan() {
	now := s.eng.Now()
	ids := s.idsBuf[:0]
	for id := range s.running {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	s.idsBuf = ids
	for _, id := range ids {
		s.bank(s.running[id])
	}
	var traffic float64
	for _, id := range ids {
		rj := s.running[id]
		for i := range rj.alloc.PerNode {
			remoteFrac := 1 - rj.alloc.PerNode[i].LocalFraction()
			traffic += slowdown.NodeTraffic(rj.j.Profile, remoteFrac)
		}
	}
	rho := s.model.Pressure(traffic)
	for _, id := range ids {
		rj := s.running[id]
		fracs := s.fracsBuf[:0]
		for i := range rj.alloc.PerNode {
			fracs = append(fracs, s.remoteFraction(&rj.alloc.PerNode[i]))
		}
		s.fracsBuf = fracs
		rj.slow = slowdown.JobSlowdownWeighted(rj.j.Profile, fracs, rho)
		s.refinish(rj, now)
	}
}
