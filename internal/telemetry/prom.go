package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// Histogram is a fixed-bucket cumulative histogram in the Prometheus style:
// Counts[i] is the number of observations ≤ Bounds[i], with one implicit
// +Inf bucket at the end.
type Histogram struct {
	Bounds []int64 // ascending upper bounds
	Counts []uint64
	Inf    uint64
	Sum    int64
	N      uint64
}

// NewHistogram builds a histogram over the given ascending bounds.
func NewHistogram(bounds []int64) *Histogram {
	return &Histogram{Bounds: bounds, Counts: make([]uint64, len(bounds))}
}

// Observe files one value.
func (h *Histogram) Observe(v int64) {
	h.Sum += v
	h.N++
	for i, b := range h.Bounds {
		if v <= b {
			h.Counts[i]++
			return
		}
	}
	h.Inf++
}

// WriteText emits the histogram in Prometheus text exposition format under
// the given metric name. Exported so servers composing their own /metrics
// pages (dmpd's request-latency histograms) reuse the exact formatting the
// run-level PromSink emits.
func (h *Histogram) WriteText(w io.Writer, name string) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum uint64
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum); err != nil {
			return err
		}
	}
	cum += h.Inf
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.N); err != nil {
		return err
	}
	return nil
}

// PromSink accumulates run-level aggregates — event counters, lease-size
// and resize-delta histograms, pool gauges — and renders them in the
// Prometheus text exposition format, so a run's observability summary can
// be scraped, diffed, or dropped into any Prometheus-compatible tooling.
type PromSink struct {
	counts    [KindCount]uint64
	grantMB   *Histogram
	adjustMB  *Histogram // absolute resize deltas
	queue     *Histogram
	lastFree  int64
	lastLent  int64
	minFree   int64
	haveFree  bool
	samples   uint64
	oomEnds   uint64
	completed uint64
}

// NewPromSink returns an empty aggregate sink.
func NewPromSink() *PromSink {
	return &PromSink{
		grantMB:  NewHistogram([]int64{64, 256, 1024, 4096, 16384, 65536, 262144}),
		adjustMB: NewHistogram([]int64{64, 256, 1024, 4096, 16384, 65536, 262144}),
		queue:    NewHistogram([]int64{0, 1, 2, 4, 8, 16, 32, 64, 128}),
	}
}

func (p *PromSink) Event(e *Event) error {
	p.counts[e.Kind]++
	switch e.Kind {
	case KindLeaseGrant:
		p.grantMB.Observe(e.MB)
	case KindLeaseAdjust:
		d := e.MB
		if d < 0 {
			d = -d
		}
		p.adjustMB.Observe(d)
	case KindJobEnd:
		switch e.Detail {
		case "completed":
			p.completed++
		case "oom-killed":
			// Logs written before the attempt/final split carried OOM kills
			// as job_end; keep counting them so old logs still aggregate.
			p.oomEnds++
		}
	case KindJobAttemptEnd:
		if e.Detail == "oom-killed" {
			p.oomEnds++
		}
	}
	return nil
}

func (p *PromSink) Sample(s *Sample) error {
	p.samples++
	p.lastFree = s.FreeMB
	p.lastLent = s.LentMB
	if !p.haveFree || s.FreeMB < p.minFree {
		p.minFree = s.FreeMB
		p.haveFree = true
	}
	p.queue.Observe(int64(s.Queue))
	return nil
}

func (p *PromSink) Close() error { return nil }

// WriteText renders the aggregates in Prometheus text exposition format.
func (p *PromSink) WriteText(w io.Writer) error {
	if _, err := io.WriteString(w, "# HELP dismem_events_total Simulation events emitted, per kind.\n# TYPE dismem_events_total counter\n"); err != nil {
		return err
	}
	for k := Kind(0); k < KindCount; k++ {
		if _, err := fmt.Fprintf(w, "dismem_events_total{kind=%s} %d\n", strconv.Quote(k.String()), p.counts[k]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w,
		"# TYPE dismem_jobs_completed_total counter\ndismem_jobs_completed_total %d\n"+
			"# TYPE dismem_jobs_oom_killed_total counter\ndismem_jobs_oom_killed_total %d\n"+
			"# TYPE dismem_pool_samples_total counter\ndismem_pool_samples_total %d\n",
		p.completed, p.oomEnds, p.samples); err != nil {
		return err
	}
	if p.samples > 0 {
		if _, err := fmt.Fprintf(w,
			"# TYPE dismem_pool_free_mb gauge\ndismem_pool_free_mb %d\n"+
				"# TYPE dismem_pool_lent_mb gauge\ndismem_pool_lent_mb %d\n"+
				"# TYPE dismem_pool_min_free_mb gauge\ndismem_pool_min_free_mb %d\n",
			p.lastFree, p.lastLent, p.minFree); err != nil {
			return err
		}
	}
	if err := p.grantMB.WriteText(w, "dismem_lease_grant_mb"); err != nil {
		return err
	}
	if err := p.adjustMB.WriteText(w, "dismem_lease_adjust_abs_mb"); err != nil {
		return err
	}
	return p.queue.WriteText(w, "dismem_queue_depth")
}

// AggregateFromLog rebuilds a PromSink from a decoded log, so dmpobs can
// export aggregates for a run that only wrote JSONL.
func AggregateFromLog(l *Log) *PromSink {
	p := NewPromSink()
	for i := range l.Events {
		_ = p.Event(&l.Events[i])
	}
	for i := 0; i < l.Series.Len(); i++ {
		s := l.Series.At(i)
		_ = p.Sample(&s)
	}
	return p
}

var _ Sink = (*PromSink)(nil)
