package telemetry

import (
	"bufio"
	"io"
	"strconv"
)

// Sink receives the event stream and the sampler output. Calls arrive in
// emission order from the single-threaded simulation loop; implementations
// need no locking. Errors are captured by the Recorder and surfaced from
// Close, so one failed write does not abort the simulation.
type Sink interface {
	Event(e *Event) error
	Sample(s *Sample) error
	Close() error
}

// ------------------------------------------------------------- MemorySink

// MemorySink retains everything in memory — the sink tests and experiments
// use to inspect a run programmatically.
type MemorySink struct {
	Events  []Event
	Samples []Sample
}

func (m *MemorySink) Event(e *Event) error   { m.Events = append(m.Events, *e); return nil }
func (m *MemorySink) Sample(s *Sample) error { m.Samples = append(m.Samples, *s); return nil }
func (m *MemorySink) Close() error           { return nil }

// --------------------------------------------------------------- MultiSink

// MultiSink fans every record out to each child sink. The first error per
// call is returned; later children still run.
type MultiSink []Sink

func (m MultiSink) Event(e *Event) error {
	var first error
	for _, s := range m {
		if err := s.Event(e); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m MultiSink) Sample(s *Sample) error {
	var first error
	for _, c := range m {
		if err := c.Sample(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m MultiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ------------------------------------------------------------------ JSONL

// JSONL streams one JSON object per line. The encoder is hand-rolled with a
// fixed field order and strconv float formatting, so identical runs produce
// byte-identical logs — the determinism guarantee the golden digest test
// locks. The non-finite reservation times a BackfillHole can carry are
// encoded in the "v" field as a JSON string ("+Inf"), which ParseFloat
// round-trips.
//
// Event lines:
//
//	{"t":1200,"ev":"lease_grant","job":7,"node":3,"lender":12,"mb":2048,"aux":0,"v":"0","detail":""}
//
// Sample lines:
//
//	{"t":300,"ev":"pool_sample","free_mb":1048576,"lent_mb":8192,"queue":4,"busy":28,"running":9}
type JSONL struct {
	w   *bufio.Writer
	c   io.Closer // closed on Close when the destination is a closer
	buf []byte
}

// NewJSONL returns a buffered JSONL sink writing to w. Close flushes and,
// when w is also an io.Closer (a file), closes it.
func NewJSONL(w io.Writer) *JSONL {
	j := &JSONL{w: bufio.NewWriterSize(w, 1<<16)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

func (j *JSONL) Event(e *Event) error {
	b := j.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, e.T, 'g', -1, 64)
	b = append(b, `,"ev":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","job":`...)
	b = strconv.AppendInt(b, int64(e.Job), 10)
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	b = append(b, `,"lender":`...)
	b = strconv.AppendInt(b, int64(e.Lender), 10)
	b = append(b, `,"mb":`...)
	b = strconv.AppendInt(b, e.MB, 10)
	b = append(b, `,"aux":`...)
	b = strconv.AppendInt(b, e.Aux, 10)
	b = append(b, `,"v":"`...)
	b = strconv.AppendFloat(b, e.V, 'g', -1, 64)
	b = append(b, `","detail":`...)
	b = strconv.AppendQuote(b, e.Detail)
	b = append(b, "}\n"...)
	j.buf = b
	_, err := j.w.Write(b)
	return err
}

func (j *JSONL) Sample(s *Sample) error {
	b := j.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, s.T, 'g', -1, 64)
	b = append(b, `,"ev":"pool_sample","free_mb":`...)
	b = strconv.AppendInt(b, s.FreeMB, 10)
	b = append(b, `,"lent_mb":`...)
	b = strconv.AppendInt(b, s.LentMB, 10)
	b = append(b, `,"queue":`...)
	b = strconv.AppendInt(b, int64(s.Queue), 10)
	b = append(b, `,"busy":`...)
	b = strconv.AppendInt(b, int64(s.Busy), 10)
	b = append(b, `,"running":`...)
	b = strconv.AppendInt(b, int64(s.Running), 10)
	b = append(b, "}\n"...)
	j.buf = b
	_, err := j.w.Write(b)
	return err
}

func (j *JSONL) Close() error {
	err := j.w.Flush()
	if j.c != nil {
		if cerr := j.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

var (
	_ Sink = (*MemorySink)(nil)
	_ Sink = (MultiSink)(nil)
	_ Sink = (*JSONL)(nil)
)
