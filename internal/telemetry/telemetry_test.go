package telemetry

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(0); k < KindCount; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := KindByName(name)
		if !ok || back != k {
			t.Fatalf("KindByName(%q) = %v, %v; want %v, true", name, back, ok, k)
		}
	}
	if _, ok := KindByName("nope"); ok {
		t.Fatal("KindByName accepted an unknown name")
	}
	if got := Kind(200).String(); got != "unknown" {
		t.Fatalf("out-of-range kind stringified as %q", got)
	}
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.SetNow(5)
	r.JobSubmit(1, false)
	r.JobStart(1, 2, 100, 50)
	r.JobEnd(1, "completed", 0)
	r.LeaseGrant(1, 2, 3, 64)
	r.LeaseAdjust(1, 2, -32, -16)
	r.LeaseRevoke(1, 2, 3, 64)
	r.BackfillHole(4, 99)
	r.BackfillPlace(4)
	r.PoolCheck(10, 100)
	r.Sample(1, 2, 3, 4, 5, 6)
	if r.Now() != 0 || r.SampleInterval() != 0 || r.TotalEvents() != 0 || r.Count(KindJobEnd) != 0 {
		t.Fatal("nil recorder leaked state")
	}
	if r.Series().Len() != 0 {
		t.Fatal("nil recorder returned samples")
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestNilRecorderEmitAllocates locks the zero-cost-when-disabled guarantee:
// the full emit surface on a nil recorder must not allocate.
func TestNilRecorderEmitAllocates(t *testing.T) {
	var r *Recorder
	allocs := testing.AllocsPerRun(1000, func() {
		r.SetNow(1)
		r.JobSubmit(1, true)
		r.JobStart(1, 2, 100, 50)
		r.JobEnd(1, "completed", 1)
		r.LeaseGrant(1, 2, 3, 64)
		r.LeaseAdjust(1, 2, 32, 16)
		r.LeaseRevoke(1, 2, 3, 64)
		r.BackfillHole(4, 9)
		r.BackfillPlace(4)
		r.PoolCheck(10, 100)
		r.Sample(1, 2, 3, 4, 5, 6)
	})
	if allocs != 0 {
		t.Fatalf("nil-recorder emit path allocated %v times per run; want 0", allocs)
	}
}

func TestRecorderCountsAndClock(t *testing.T) {
	mem := &MemorySink{}
	r := New(Options{Sink: mem})
	r.SetNow(10)
	r.JobSubmit(1, false)
	r.SetNow(20)
	r.JobStart(1, 4, 1024, 256)
	r.LeaseGrant(1, 0, 9, 256)
	r.SetNow(30)
	r.JobEnd(1, "completed", 0)

	if got := r.TotalEvents(); got != 4 {
		t.Fatalf("TotalEvents = %d, want 4", got)
	}
	if r.Count(KindJobSubmit) != 1 || r.Count(KindLeaseGrant) != 1 {
		t.Fatal("per-kind counts wrong")
	}
	if r.Count(KindCount) != 0 {
		t.Fatal("out-of-range Count must be 0")
	}
	if len(mem.Events) != 4 {
		t.Fatalf("sink saw %d events, want 4", len(mem.Events))
	}
	if mem.Events[0].T != 10 || mem.Events[1].T != 20 || mem.Events[3].T != 30 {
		t.Fatalf("event timestamps wrong: %+v", mem.Events)
	}
	if e := mem.Events[1]; e.Node != 4 || e.MB != 1024 || e.Aux != 256 {
		t.Fatalf("JobStart fields wrong: %+v", e)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWatermarks(t *testing.T) {
	mem := &MemorySink{}
	r := New(Options{Sink: mem}) // default {50, 25, 10, 0}

	r.PoolCheck(100, 100) // full: nothing
	if len(mem.Events) != 0 {
		t.Fatalf("no watermark expected at full pool, got %d", len(mem.Events))
	}
	r.PoolCheck(50, 100) // exactly 50%: crosses 50
	if len(mem.Events) != 1 || mem.Events[0].Aux != 50 {
		t.Fatalf("want one 50%% crossing, got %+v", mem.Events)
	}
	r.PoolCheck(9, 100) // plunge: crosses 25 and 10 in order
	if len(mem.Events) != 3 || mem.Events[1].Aux != 25 || mem.Events[2].Aux != 10 {
		t.Fatalf("want 25 then 10, got %+v", mem.Events)
	}
	r.PoolCheck(60, 100) // recover: re-arms silently
	if len(mem.Events) != 3 {
		t.Fatal("recovery must not emit")
	}
	r.PoolCheck(40, 100) // re-cross 50
	if len(mem.Events) != 4 || mem.Events[3].Aux != 50 {
		t.Fatalf("re-armed 50%% crossing missing: %+v", mem.Events)
	}
	r.PoolCheck(0, 100) // bottom: 25, 10, 0
	if len(mem.Events) != 7 || mem.Events[6].Aux != 0 {
		t.Fatalf("want crossings down to 0, got %+v", mem.Events)
	}
	if r.Count(KindPoolWatermark) != 7 {
		t.Fatalf("watermark count = %d, want 7", r.Count(KindPoolWatermark))
	}
}

func TestWatermarksCustomAndDisabled(t *testing.T) {
	mem := &MemorySink{}
	r := New(Options{Sink: mem, Watermarks: []int{30}})
	r.PoolCheck(31, 100)
	r.PoolCheck(30, 100)
	if len(mem.Events) != 1 || mem.Events[0].Aux != 30 {
		t.Fatalf("custom watermark: got %+v", mem.Events)
	}

	mem2 := &MemorySink{}
	r2 := New(Options{Sink: mem2, Watermarks: []int{}})
	r2.PoolCheck(0, 100)
	if len(mem2.Events) != 0 {
		t.Fatal("explicit empty watermark list must disable crossings")
	}
}

func TestSeries(t *testing.T) {
	r := New(Options{})
	r.Sample(0, 100, 0, 3, 2, 1)
	r.Sample(10, 40, 60, 7, 5, 4)
	r.Sample(20, 80, 20, 1, 2, 2)

	s := r.Series()
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if got := s.At(1); got.T != 10 || got.FreeMB != 40 || got.LentMB != 60 || got.Queue != 7 || got.Busy != 5 || got.Running != 4 {
		t.Fatalf("At(1) = %+v", got)
	}
	if s.MinFreeMB() != 40 || s.PeakLentMB() != 60 || s.PeakQueue() != 7 {
		t.Fatalf("aggregates wrong: min=%d peakLent=%d peakQueue=%d",
			s.MinFreeMB(), s.PeakLentMB(), s.PeakQueue())
	}
	empty := &Series{}
	if empty.MinFreeMB() != 0 || empty.PeakLentMB() != 0 || empty.PeakQueue() != 0 {
		t.Fatal("empty-series aggregates must be 0")
	}
}

func emitFixture(r *Recorder) {
	r.SetNow(0)
	r.JobSubmit(1, false)
	r.Sample(0, 1000, 0, 1, 0, 0)
	r.SetNow(5)
	r.JobStart(1, 2, 512, 128)
	r.LeaseGrant(1, 0, 3, 128)
	r.BackfillHole(2, math.Inf(1))
	r.PoolCheck(40, 100)
	r.SetNow(9)
	r.JobEnd(1, "oom-killed", 1)
	r.LeaseRevoke(1, 0, 3, 128)
	r.Sample(10, 1000, 0, 0, 0, 0)
}

func TestJSONLByteDeterminismAndRoundTrip(t *testing.T) {
	var buf1, buf2 bytes.Buffer
	for _, buf := range []*bytes.Buffer{&buf1, &buf2} {
		r := New(Options{Sink: NewJSONL(buf)})
		emitFixture(r)
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Fatal("identical emissions produced different JSONL bytes")
	}

	log, err := ReadLog(bytes.NewReader(buf1.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) != 7 {
		t.Fatalf("decoded %d events, want 7", len(log.Events))
	}
	if log.Series.Len() != 2 {
		t.Fatalf("decoded %d samples, want 2", log.Series.Len())
	}
	// The +Inf reservation must survive the string encoding round trip.
	var hole *Event
	for i := range log.Events {
		if log.Events[i].Kind == KindBackfillHole {
			hole = &log.Events[i]
		}
	}
	if hole == nil || !math.IsInf(hole.V, 1) {
		t.Fatalf("backfill hole V did not round-trip +Inf: %+v", hole)
	}
	counts := log.Counts()
	if counts[KindJobSubmit] != 1 || counts[KindPoolWatermark] != 1 || counts[KindJobEnd] != 1 {
		t.Fatalf("decoded counts wrong: %v", counts)
	}
	if log.Events[5].Detail != "oom-killed" || log.Events[5].Aux != 1 {
		t.Fatalf("JobEnd detail lost: %+v", log.Events[5])
	}
}

func TestReadLogRejectsUnknownEvent(t *testing.T) {
	_, err := ReadLog(strings.NewReader(`{"t":1,"ev":"mystery"}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "unknown event") {
		t.Fatalf("want unknown-event error, got %v", err)
	}
}

type failSink struct{ MemorySink }

func (f *failSink) Event(e *Event) error { return errors.New("disk full") }

func TestSinkErrorSurfacedOnce(t *testing.T) {
	r := New(Options{Sink: &failSink{}})
	r.JobSubmit(1, false)
	r.JobSubmit(2, false)
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "disk full") {
		t.Fatalf("sink error not captured: %v", r.Err())
	}
	if err := r.Close(); err == nil {
		t.Fatal("Close must surface the first sink error")
	}
	if r.TotalEvents() != 2 {
		t.Fatal("counting must continue after a sink error")
	}
}

func TestMultiSinkFanOut(t *testing.T) {
	a, b := &MemorySink{}, &MemorySink{}
	m := MultiSink{a, b}
	r := New(Options{Sink: m})
	r.JobSubmit(1, false)
	r.Sample(0, 1, 2, 3, 4, 5)
	if len(a.Events) != 1 || len(b.Events) != 1 || len(a.Samples) != 1 || len(b.Samples) != 1 {
		t.Fatal("fan-out missed a child")
	}
}

func TestPromSink(t *testing.T) {
	p := NewPromSink()
	r := New(Options{Sink: p})
	emitFixture(r)
	r.LeaseAdjust(1, 0, -2048, -1024)

	var out bytes.Buffer
	if err := p.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		`dismem_events_total{kind="job_submit"} 1`,
		`dismem_events_total{kind="lease_adjust"} 1`,
		`dismem_jobs_oom_killed_total 1`,
		`dismem_pool_samples_total 2`,
		`dismem_pool_free_mb 1000`,
		`dismem_lease_grant_mb_bucket{le="256"} 1`,
		`dismem_lease_grant_mb_sum 128`,
		`dismem_lease_adjust_abs_mb_sum 2048`,
		`dismem_queue_depth_count 2`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	for _, v := range []int64{5, 10, 11, 1000} {
		h.Observe(v)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Inf != 1 {
		t.Fatalf("bucket counts wrong: %+v", h)
	}
	if h.Sum != 1026 || h.N != 4 {
		t.Fatalf("sum/count wrong: %+v", h)
	}
	var out bytes.Buffer
	if err := h.WriteText(&out, "x"); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE x histogram\nx_bucket{le=\"10\"} 2\nx_bucket{le=\"100\"} 3\nx_bucket{le=\"+Inf\"} 4\nx_sum 1026\nx_count 4\n"
	if out.String() != want {
		t.Fatalf("exposition = %q, want %q", out.String(), want)
	}
}

func TestAggregateFromLog(t *testing.T) {
	var buf bytes.Buffer
	r := New(Options{Sink: NewJSONL(&buf)})
	emitFixture(r)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	log, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := AggregateFromLog(log)
	var out bytes.Buffer
	if err := p.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `dismem_pool_samples_total 2`) {
		t.Fatalf("rebuilt aggregates wrong:\n%s", out.String())
	}
}
