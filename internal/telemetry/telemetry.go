package telemetry

import (
	"fmt"
	"sort"
)

// Options configures a Recorder.
type Options struct {
	// Sink receives every event and sample as it is emitted; nil keeps
	// the run in memory only (counters + series + MemorySink-less).
	Sink Sink
	// SampleInterval is the time-series sampling period in simulated
	// seconds; 0 disables the sampler (the event stream still flows).
	SampleInterval float64
	// Watermarks are free-pool thresholds in percent of total capacity; a
	// KindPoolWatermark event fires when the free pool drops to or below
	// each threshold (re-armed when it rises back above). Nil selects the
	// default {50, 25, 10, 0}; an explicit empty slice disables them.
	Watermarks []int
}

// DefaultWatermarks are the free-pool thresholds used when Options leaves
// Watermarks nil.
var DefaultWatermarks = []int{50, 25, 10, 0}

// Recorder is the front end of the telemetry subsystem. The simulator holds
// a *Recorder that is nil when telemetry is disabled; every method is safe
// to call on a nil receiver and returns immediately, so the disabled emit
// path costs one pointer compare and zero allocations.
//
// A Recorder is bound to one simulation run and, like the simulator itself,
// is not safe for concurrent use.
type Recorder struct {
	sink      Sink
	interval  float64
	marks     []int // descending thresholds, pct of capacity
	level     int   // how many marks are currently crossed
	domLevels []int // per-domain crossing levels (pressure-domains mode)

	now    float64
	counts [KindCount]uint64
	series Series
	err    error // first sink error; surfaced by Err/Close
}

// New builds a Recorder from opts.
func New(opts Options) *Recorder {
	marks := opts.Watermarks
	if marks == nil {
		marks = DefaultWatermarks
	}
	sorted := append([]int(nil), marks...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	return &Recorder{
		sink:     opts.Sink,
		interval: opts.SampleInterval,
		marks:    sorted,
	}
}

// SampleInterval returns the configured sampling period (0 when the sampler
// or the whole recorder is disabled).
func (r *Recorder) SampleInterval() float64 {
	if r == nil {
		return 0
	}
	return r.interval
}

// SetNow advances the recorder's clock; the simulator calls it at the top
// of every event handler so emitters deeper in the stack (policies, ledger)
// need not thread the simulated time through their signatures.
//
//dmp:hotpath
func (r *Recorder) SetNow(t float64) {
	if r == nil {
		return
	}
	r.now = t
}

// Now returns the recorder's clock.
//
//dmp:hotpath
func (r *Recorder) Now() float64 {
	if r == nil {
		return 0
	}
	return r.now
}

// emit stamps, counts, and forwards one event.
func (r *Recorder) emit(e Event) {
	e.T = r.now
	r.counts[e.Kind]++
	if r.sink != nil {
		if err := r.sink.Event(&e); err != nil && r.err == nil {
			r.err = err
		}
	}
}

// JobSubmit records a job entering the pending queue.
//
//dmp:hotpath
func (r *Recorder) JobSubmit(job int, resubmit bool) {
	if r == nil {
		return
	}
	var aux int64
	if resubmit {
		aux = 1
	}
	r.emit(Event{Kind: KindJobSubmit, Job: job, Node: -1, Lender: -1, Aux: aux})
}

// JobStart records a dispatch: nodes compute nodes, localMB local memory,
// remoteMB borrowed memory.
//
//dmp:hotpath
func (r *Recorder) JobStart(job, nodes int, localMB, remoteMB int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindJobStart, Job: job, Node: nodes, Lender: -1, MB: localMB, Aux: remoteMB})
}

// JobEnd records a job's final outcome and the restart count accumulated so
// far. Each job emits this at most once; non-final attempt terminations go
// through JobAttemptEnd.
//
//dmp:hotpath
func (r *Recorder) JobEnd(job int, outcome string, restarts int) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindJobEnd, Job: job, Node: -1, Lender: -1, Aux: int64(restarts), Detail: outcome})
}

// JobAttemptEnd records a non-final attempt termination (an OOM kill that
// leads to a restart or abandonment) with the attempt's outcome name and the
// restart count including this kill.
//
//dmp:hotpath
func (r *Recorder) JobAttemptEnd(job int, outcome string, restarts int) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindJobAttemptEnd, Job: job, Node: -1, Lender: -1, Aux: int64(restarts), Detail: outcome})
}

// LeaseGrant records node borrowing mb from lender on behalf of job.
//
//dmp:hotpath
func (r *Recorder) LeaseGrant(job, node, lender int, mb int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindLeaseGrant, Job: job, Node: node, Lender: lender, MB: mb})
}

// LeaseAdjust records a dynamic resize of one compute node's allocation:
// deltaMB total change (negative = shrink), deltaRemoteMB its remote share.
//
//dmp:hotpath
func (r *Recorder) LeaseAdjust(job, node int, deltaMB, deltaRemoteMB int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindLeaseAdjust, Job: job, Node: node, Lender: -1, MB: deltaMB, Aux: deltaRemoteMB})
}

// LeaseRevoke records a lease returned at teardown.
//
//dmp:hotpath
func (r *Recorder) LeaseRevoke(job, node, lender int, mb int64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindLeaseRevoke, Job: job, Node: node, Lender: lender, MB: mb})
}

// BackfillHole records a reservation: job cannot start now and is promised
// the resources at time at (+Inf when it can never start under the current
// releases).
//
//dmp:hotpath
func (r *Recorder) BackfillHole(job int, at float64) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindBackfillHole, Job: job, Node: -1, Lender: -1, V: at})
}

// BackfillPlace records a job started by the backfill pass ahead of the
// queue head.
//
//dmp:hotpath
func (r *Recorder) BackfillPlace(job int) {
	if r == nil {
		return
	}
	r.emit(Event{Kind: KindBackfillPlace, Job: job, Node: -1, Lender: -1})
}

// PoolCheck tests the free pool against the configured watermarks and emits
// a KindPoolWatermark event for each threshold newly crossed on the way
// down. Rising back above a threshold re-arms it silently. The comparison
// is integer-exact (free·100 ≤ capacity·pct) so runs are reproducible.
//
//dmp:hotpath
func (r *Recorder) PoolCheck(freeMB, capacityMB int64) {
	if r == nil || capacityMB <= 0 {
		return
	}
	level := 0
	for _, pct := range r.marks {
		if freeMB*100 <= capacityMB*int64(pct) {
			level++
		} else {
			break
		}
	}
	if level > r.level {
		for i := r.level; i < level; i++ {
			r.emit(Event{
				Kind: KindPoolWatermark, Job: -1, Node: -1, Lender: -1,
				MB: freeMB, Aux: int64(r.marks[i]),
				V: float64(freeMB) / float64(capacityMB),
			})
		}
	}
	r.level = level
}

// PoolCheckDomain is PoolCheck scoped to one pressure domain: the same
// integer-exact watermark predicate against the domain's free memory and
// capacity, with an independent crossing level per domain and the domain
// index in the event's Node field.
//
//dmp:hotpath
func (r *Recorder) PoolCheckDomain(dom int, freeMB, capacityMB int64) {
	if r == nil || capacityMB <= 0 || dom < 0 {
		return
	}
	for len(r.domLevels) <= dom {
		r.domLevels = append(r.domLevels, 0)
	}
	level := 0
	for _, pct := range r.marks {
		if freeMB*100 <= capacityMB*int64(pct) {
			level++
		} else {
			break
		}
	}
	if level > r.domLevels[dom] {
		for i := r.domLevels[dom]; i < level; i++ {
			r.emit(Event{
				Kind: KindPoolWatermark, Job: -1, Node: dom, Lender: -1,
				MB: freeMB, Aux: int64(r.marks[i]),
				V: float64(freeMB) / float64(capacityMB),
			})
		}
	}
	r.domLevels[dom] = level
}

// WindowStats records the windowed executor's run-level counters: windows
// popped, members fired, multi-member windows, and multi-member windows
// proven independent. Emitted once per run, after the event loop drains.
func (r *Recorder) WindowStats(windows, events, multi, independent int) {
	if r == nil {
		return
	}
	r.emit(Event{
		Kind: KindWindowStats, Job: -1, Node: multi, Lender: independent,
		MB: int64(windows), Aux: int64(events),
	})
}

// Branch records a what-if branch forking off this run: name identifies the
// variant, sharedEvents is the prefix event count the branch inherited, and
// nodeCopies/shardThaws are the branch's CoW materialisation counters at the
// time of the report. Emitted on the BASE run's recorder (the branch records
// its own suffix through a forked recorder), so a no-op branch's stream
// stays byte-identical to a fresh run's.
func (r *Recorder) Branch(name string, sharedEvents uint64, nodeCopies, shardThaws int64) {
	if r == nil {
		return
	}
	r.emit(Event{
		Kind: KindBranch, Job: -1, Node: int(shardThaws), Lender: -1,
		MB: nodeCopies, Aux: int64(sharedEvents), Detail: name,
	})
}

// Sample records one fixed-interval snapshot into the columnar series and
// forwards it to the sink.
//
//dmp:hotpath
func (r *Recorder) Sample(t float64, freeMB, lentMB int64, queue, busy, running int) {
	if r == nil {
		return
	}
	sm := Sample{T: t, FreeMB: freeMB, LentMB: lentMB, Queue: queue, Busy: busy, Running: running}
	r.series.append(sm)
	if r.sink != nil {
		if err := r.sink.Sample(&sm); err != nil && r.err == nil {
			r.err = err
		}
	}
}

// Series returns the sampled time series (empty when sampling is off).
func (r *Recorder) Series() *Series {
	if r == nil {
		return &Series{}
	}
	return &r.series
}

// Count returns the number of events of kind k emitted so far.
func (r *Recorder) Count(k Kind) uint64 {
	if r == nil || k >= KindCount {
		return 0
	}
	return r.counts[k]
}

// TotalEvents returns the total number of events emitted.
func (r *Recorder) TotalEvents() uint64 {
	if r == nil {
		return 0
	}
	var t uint64
	for _, c := range r.counts {
		t += c
	}
	return t
}

// Err returns the first sink error encountered, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	return r.err
}

// Close flushes and closes the sink and returns the first error of the
// run (emit-time or close-time). Closing a nil recorder is a no-op.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	if r.sink != nil {
		if err := r.sink.Close(); err != nil && r.err == nil {
			r.err = fmt.Errorf("telemetry: close: %w", err)
		}
	}
	return r.err
}

// Fork returns a recorder that continues this recorder's emission state on a
// new sink: same sampling interval and watermark thresholds, same clock, and
// the same watermark crossing levels (global and per-domain). A branched
// simulation records through a fork, so the branch's suffix stream is
// byte-identical to the suffix a fresh run would have emitted past the fork
// point. Event counts and the sampled series start empty — they describe the
// branch's own emissions. Forking a nil recorder yields nil.
func (r *Recorder) Fork(sink Sink) *Recorder {
	if r == nil {
		return nil
	}
	return &Recorder{
		sink:      sink,
		interval:  r.interval,
		marks:     r.marks, // sorted at construction, immutable after
		level:     r.level,
		domLevels: append([]int(nil), r.domLevels...),
		now:       r.now,
	}
}
