package telemetry

// Series is the columnar time-series store behind the fixed-interval
// sampler: one flat slice per column, appended in lockstep. Columnar layout
// keeps a long run's samples in a handful of contiguous allocations and
// makes per-column scans (peaks, plots) cache-friendly.
type Series struct {
	T       []float64
	FreeMB  []int64
	LentMB  []int64
	Queue   []int32
	Busy    []int32
	Running []int32
}

// Len returns the number of samples recorded.
func (s *Series) Len() int { return len(s.T) }

// append adds one sample to every column.
func (s *Series) append(sm Sample) {
	s.T = append(s.T, sm.T)
	s.FreeMB = append(s.FreeMB, sm.FreeMB)
	s.LentMB = append(s.LentMB, sm.LentMB)
	s.Queue = append(s.Queue, int32(sm.Queue))
	s.Busy = append(s.Busy, int32(sm.Busy))
	s.Running = append(s.Running, int32(sm.Running))
}

// At returns sample i reassembled from the columns.
func (s *Series) At(i int) Sample {
	return Sample{
		T:       s.T[i],
		FreeMB:  s.FreeMB[i],
		LentMB:  s.LentMB[i],
		Queue:   int(s.Queue[i]),
		Busy:    int(s.Busy[i]),
		Running: int(s.Running[i]),
	}
}

// MinFreeMB returns the lowest free-pool sample, or 0 for an empty series.
func (s *Series) MinFreeMB() int64 {
	if len(s.FreeMB) == 0 {
		return 0
	}
	m := s.FreeMB[0]
	for _, v := range s.FreeMB[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// PeakLentMB returns the highest lent-memory sample.
func (s *Series) PeakLentMB() int64 {
	var m int64
	for _, v := range s.LentMB {
		if v > m {
			m = v
		}
	}
	return m
}

// PeakQueue returns the deepest queue sampled.
func (s *Series) PeakQueue() int {
	var m int32
	for _, v := range s.Queue {
		if v > m {
			m = v
		}
	}
	return int(m)
}
