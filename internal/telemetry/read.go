package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Log is a decoded event log: the typed events and the sampled time series,
// each in stream order. cmd/dmpobs builds its summaries and timelines from
// it.
type Log struct {
	Events []Event
	Series Series
}

// record is the union wire shape of one JSONL line.
type record struct {
	T      float64 `json:"t"`
	Ev     string  `json:"ev"`
	Job    int     `json:"job"`
	Node   int     `json:"node"`
	Lender int     `json:"lender"`
	MB     int64   `json:"mb"`
	Aux    int64   `json:"aux"`
	V      string  `json:"v"`
	Detail string  `json:"detail"`

	FreeMB  int64 `json:"free_mb"`
	LentMB  int64 `json:"lent_mb"`
	Queue   int   `json:"queue"`
	Busy    int   `json:"busy"`
	Running int   `json:"running"`
}

// ReadLog decodes a JSONL event log written by the JSONL sink. Unknown
// event names are an error: the log format is versioned by its names, and
// silently dropping records would make summaries lie.
func ReadLog(r io.Reader) (*Log, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	log := &Log{}
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec record
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("telemetry: line %d: %v", line, err)
		}
		if rec.Ev == "pool_sample" {
			log.Series.append(Sample{
				T: rec.T, FreeMB: rec.FreeMB, LentMB: rec.LentMB,
				Queue: rec.Queue, Busy: rec.Busy, Running: rec.Running,
			})
			continue
		}
		kind, ok := KindByName(rec.Ev)
		if !ok {
			return nil, fmt.Errorf("telemetry: line %d: unknown event %q", line, rec.Ev)
		}
		v := 0.0
		if rec.V != "" {
			parsed, err := strconv.ParseFloat(rec.V, 64)
			if err != nil {
				return nil, fmt.Errorf("telemetry: line %d: bad v %q: %v", line, rec.V, err)
			}
			v = parsed
		}
		log.Events = append(log.Events, Event{
			T: rec.T, Kind: kind, Job: rec.Job, Node: rec.Node, Lender: rec.Lender,
			MB: rec.MB, Aux: rec.Aux, V: v, Detail: rec.Detail,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: %v", err)
	}
	return log, nil
}

// Counts tallies the decoded events per kind.
func (l *Log) Counts() [KindCount]uint64 {
	var c [KindCount]uint64
	for i := range l.Events {
		c[l.Events[i].Kind]++
	}
	return c
}
