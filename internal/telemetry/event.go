// Package telemetry is the simulator's observability layer: a typed event
// stream, a fixed-interval time-series sampler, and pluggable sinks.
//
// The package is deliberately dependency-free (stdlib only, no other dismem
// packages) so every layer of the simulator — engine, scheduler, cluster
// ledger, policies — can emit into it without import cycles.
//
// Design constraints, in priority order:
//
//  1. Zero cost when disabled. The simulator holds a *Recorder that is nil
//     when telemetry is off; every emit method has a nil receiver check, so
//     the disabled path is a single pointer compare and zero allocations.
//  2. Determinism. All emission happens inside the single-threaded event
//     loop, and the JSONL encoding is hand-rolled with a fixed field order,
//     so the same seed and parameters produce a byte-identical event log.
//     A golden SHA-256 digest test in internal/core locks this down.
//  3. Compactness. The time series is stored in columnar buffers (one slice
//     per column), not a slice of structs, so a week-long run samples into
//     a few flat arrays.
package telemetry

// Kind enumerates the typed events of the stream.
type Kind uint8

const (
	// KindJobSubmit fires when a job enters the pending queue. Aux is 1
	// for an OOM resubmission, 0 for the first submission.
	KindJobSubmit Kind = iota
	// KindJobStart fires at dispatch. Node carries the node count, MB the
	// local memory, Aux the remote (borrowed) memory.
	KindJobStart
	// KindJobEnd fires once at a job's FINAL outcome. Detail is the outcome
	// ("completed", "timed-out", "abandoned"); Aux is the restart count.
	// Non-final attempt terminations (an OOM kill followed by a restart or
	// by abandonment) are KindJobAttemptEnd, so summing job_end events
	// counts each job exactly once.
	KindJobEnd
	// KindLeaseGrant fires when remote memory is borrowed: Node is the
	// borrowing compute node, Lender the node lending MB megabytes. Emitted
	// at placement and on dynamic growth.
	KindLeaseGrant
	// KindLeaseAdjust fires when a memory update resizes one compute
	// node's allocation: MB is the total delta (negative = shrink), Aux
	// the remote share of the delta.
	KindLeaseAdjust
	// KindLeaseRevoke fires when a lease is returned at job teardown:
	// Node is the borrower, Lender the lender, MB the returned amount.
	KindLeaseRevoke
	// KindBackfillHole fires when the backfill pass reserves a future
	// start for a job that does not fit now: V is the reservation (shadow)
	// time; +Inf means the job can never start under current releases.
	KindBackfillHole
	// KindBackfillPlace fires when the backfill pass starts a job ahead of
	// the queue head.
	KindBackfillPlace
	// KindPoolWatermark fires when the free disaggregated pool crosses
	// below a configured threshold: Aux is the threshold percentage, MB
	// the free pool at the crossing, V the exact free fraction. Node is -1
	// for the system-wide pool; in pressure-domains mode, per-domain
	// crossings carry the domain index in Node.
	KindPoolWatermark
	// KindJobAttemptEnd fires when one attempt of a job terminates without
	// being the job's final outcome — today that is an OOM kill (Detail
	// "oom-killed", Aux the restart count). A job killed and abandoned used
	// to emit job_end twice (kill + abandon), which double-counted terminal
	// events in aggregation; the attempt/final split fixes that. Declared
	// after the original kinds so their numeric values — and with them the
	// golden digests of logs containing no OOM events — are unchanged.
	KindJobAttemptEnd
	// KindWindowStats is emitted once at the end of a windowed-executor run
	// with the window-parallelism counters: MB is the window count, Aux the
	// fired-event count, Node the multi-member window count and Lender the
	// proven-independent window count; Job is -1. Appended after the
	// original kinds so their numeric values — and with them the golden
	// digests of existing logs — are unchanged.
	KindWindowStats

	// KindBranch is emitted on the base run's recorder when a what-if
	// branch forks off it: Aux is the shared-prefix event count the branch
	// inherits without re-simulating, MB the branch's CoW node-slice copy
	// count, Node its CoW shard-thaw count, and Detail the branch's variant
	// name; Job is -1. Appended after the original kinds so their numeric
	// values — and the golden digests of existing logs — are unchanged.
	KindBranch

	// KindCount is the number of event kinds (for counter arrays).
	KindCount
)

// kindNames are the wire names used in the JSONL encoding; the array is
// indexed by Kind and must stay in declaration order.
var kindNames = [KindCount]string{
	"job_submit",
	"job_start",
	"job_end",
	"lease_grant",
	"lease_adjust",
	"lease_revoke",
	"backfill_hole",
	"backfill_place",
	"pool_watermark",
	"job_attempt_end",
	"window_stats",
	"branch",
}

// String returns the event kind's wire name.
func (k Kind) String() string {
	if k < KindCount {
		return kindNames[k]
	}
	return "unknown"
}

// KindByName returns the Kind for a wire name; ok is false for unknown
// names (including "pool_sample", which is a Sample, not an Event).
func KindByName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one typed occurrence in the stream. Fields that do not apply to
// a kind are zero (-1 for the ID fields); the per-kind meaning of MB, Aux
// and V is documented on the Kind constants.
type Event struct {
	T      float64 // simulated time, seconds
	Kind   Kind
	Job    int     // job ID, or -1
	Node   int     // compute node / node count, or -1
	Lender int     // lender node, or -1
	MB     int64   // memory quantity (may be negative for shrinks)
	Aux    int64   // secondary quantity (remote MB, restarts, threshold pct)
	V      float64 // secondary time/fraction value
	Detail string  // short enum-like string (job outcome)
}

// Sample is one fixed-interval snapshot of system-wide state.
type Sample struct {
	T       float64
	FreeMB  int64 // unallocated memory across the pool
	LentMB  int64 // memory lent to remote jobs
	Queue   int   // pending jobs
	Busy    int   // nodes running a job
	Running int   // running jobs
}
