package memtrace

import (
	"reflect"
	"testing"
)

// FuzzUnmarshalBinary checks the trace decoder never panics and that any
// bytes it accepts decode into a valid trace that re-encodes to an
// equivalent value.
func FuzzUnmarshalBinary(f *testing.F) {
	good, _ := MustNew([]Point{{T: 0, MB: 5}, {T: 10, MB: 9}}).MarshalBinary()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0x4d, 0x54})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var tr Trace
		if err := tr.UnmarshalBinary(data); err != nil {
			return
		}
		// Accepted bytes must describe a valid trace...
		if _, err := New(tr.Points()); err != nil {
			t.Fatalf("decoded trace invalid: %v", err)
		}
		// ...that round-trips.
		out, err := tr.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		var back Trace
		if err := back.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(tr.Points(), back.Points()) {
			t.Fatal("round trip changed the trace")
		}
	})
}
