package memtrace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomTrace builds a valid trace with n points, random strictly-increasing
// times (possibly starting after 0, to exercise the before-first-sample
// clamp) and random usage levels.
func randomTrace(rng *rand.Rand, n int) *Trace {
	pts := make([]Point, n)
	t := rng.Float64() * 3 // sometimes > 0
	for i := range pts {
		pts[i] = Point{T: t, MB: rng.Int63n(1 << 20)}
		t += 0.01 + rng.Float64()*5
	}
	return MustNew(pts)
}

// TestCursorDifferential drives a cursor with a mostly-monotone query stream
// (with deliberate regressions, as a checkpoint restart produces) and checks
// every answer is bit-identical to the stateless Trace methods.
func TestCursorDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := randomTrace(rng, 1+rng.Intn(40))
		c := tr.Cursor()
		q := rng.Float64() * 2
		for i := 0; i < 200; i++ {
			switch rng.Intn(4) {
			case 0:
				if got, want := c.At(q), tr.At(q); got != want {
					t.Logf("At(%g) = %d, want %d", q, got, want)
					return false
				}
			case 1:
				t1 := q + rng.Float64()*10
				if rng.Intn(8) == 0 {
					t1 = q - rng.Float64() // swapped interval
				}
				if got, want := c.MaxIn(q, t1), tr.MaxIn(q, t1); got != want {
					t.Logf("MaxIn(%g,%g) = %d, want %d", q, t1, got, want)
					return false
				}
			case 2:
				t1 := q + 0.001 + rng.Float64()*10
				got, gerr := c.MeanIn(q, t1)
				want, werr := tr.MeanIn(q, t1)
				if (gerr != nil) != (werr != nil) {
					return false
				}
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Logf("MeanIn(%g,%g) = %v, want %v", q, t1, got, want)
					return false
				}
			case 3:
				if _, err := c.MeanIn(q, q); err != ErrBadWindow {
					t.Logf("MeanIn empty window: err = %v", err)
					return false
				}
			}
			// Mostly advance; occasionally jump back (restart).
			if rng.Intn(10) == 0 {
				q = rng.Float64() * 5
			} else {
				q += rng.Float64() * 3
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestCursorSequentialIsLinear sanity-checks the cursor against a known
// trace with hand-computed answers, including the before-first-sample clamp.
func TestCursorSequential(t *testing.T) {
	tr := MustNew([]Point{{T: 2, MB: 100}, {T: 4, MB: 300}, {T: 6, MB: 200}})
	c := tr.Cursor()
	if got := c.At(0); got != 100 {
		t.Fatalf("At(0) = %d, want 100 (clamped to first sample)", got)
	}
	if got := c.MaxIn(1, 5); got != 300 {
		t.Fatalf("MaxIn(1,5) = %d, want 300", got)
	}
	m, err := c.MeanIn(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if want := (100.0 + 300.0) / 2; m != want {
		t.Fatalf("MeanIn(3,5) = %g, want %g", m, want)
	}
	if got := c.At(7); got != 200 {
		t.Fatalf("At(7) = %d, want 200", got)
	}
	// Regression: back before the first point again.
	if got := c.At(1); got != 100 {
		t.Fatalf("At(1) after regression = %d, want 100", got)
	}
}

// BenchmarkTraceAtSequential compares a sequential scan through a large
// trace via the stateless binary-search At against the cursor.
func BenchmarkTraceAtSequential(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tr := randomTrace(rng, 4096)
	dur := tr.Duration()
	b.Run("search", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			step := dur / 1000
			for t := 0.0; t < dur; t += step {
				tr.At(t)
			}
		}
	})
	b.Run("cursor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := tr.Cursor()
			step := dur / 1000
			for t := 0.0; t < dur; t += step {
				c.At(t)
			}
		}
	})
}
