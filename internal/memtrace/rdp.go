package memtrace

// Ramer–Douglas–Peucker polyline simplification, used by the paper's trace
// pipeline to shrink per-job memory-usage traces before simulation.
//
// Because the x axis is time (seconds) and the y axis memory (MB), the usual
// perpendicular point-to-segment distance would mix units; we use the
// vertical deviation, the standard choice for time series, and document the
// tolerance in MB.

// RDP returns a simplified copy of the trace in which every removed point
// deviates vertically by at most epsMB from the line joining the retained
// neighbours. The first and last points are always kept. epsMB <= 0 returns
// the trace unchanged.
func (tr *Trace) RDP(epsMB float64) *Trace {
	if epsMB <= 0 || len(tr.pts) <= 2 {
		return tr
	}
	keep := make([]bool, len(tr.pts))
	keep[0], keep[len(tr.pts)-1] = true, true
	rdpMark(tr.pts, 0, len(tr.pts)-1, epsMB, keep)
	out := make([]Point, 0, len(tr.pts))
	for i, k := range keep {
		if k {
			out = append(out, tr.pts[i])
		}
	}
	return &Trace{pts: out}
}

// rdpMark marks the points to keep between indices lo and hi (exclusive
// interior), recursing on the point of maximum vertical deviation. An
// explicit stack avoids deep recursion on very long traces.
func rdpMark(pts []Point, lo, hi int, eps float64, keep []bool) {
	type span struct{ lo, hi int }
	stack := []span{{lo, hi}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo < 2 {
			continue
		}
		a, b := pts[s.lo], pts[s.hi]
		dt := b.T - a.T
		var worst float64
		worstIdx := -1
		for i := s.lo + 1; i < s.hi; i++ {
			// Interpolated value of the chord at pts[i].T.
			y := float64(a.MB) + (float64(b.MB)-float64(a.MB))*(pts[i].T-a.T)/dt
			d := float64(pts[i].MB) - y
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
				worstIdx = i
			}
		}
		if worst > eps && worstIdx >= 0 {
			keep[worstIdx] = true
			stack = append(stack, span{s.lo, worstIdx}, span{worstIdx, s.hi})
		}
	}
}
