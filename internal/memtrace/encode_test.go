package memtrace

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMarshalRoundTrip(t *testing.T) {
	tr := MustNew([]Point{{T: 0, MB: 10}, {T: 1.5, MB: 99999}, {T: 300, MB: 0}})
	data, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Points(), back.Points()) {
		t.Fatalf("round trip mismatch:\n%v\n%v", tr.Points(), back.Points())
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0xff},
		{0x01, 0x02, 0x03},
	}
	for i, data := range cases {
		var tr Trace
		if err := tr.UnmarshalBinary(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("case %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	// Valid prefix with trailing junk.
	good, err := Constant(5).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var tr Trace
	if err := tr.UnmarshalBinary(append(good, 0x00)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing bytes: err = %v, want ErrCorrupt", err)
	}
	// Truncated stream.
	if err := tr.UnmarshalBinary(good[:len(good)-1]); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated: err = %v, want ErrCorrupt", err)
	}
}

// Property: MarshalBinary∘UnmarshalBinary is the identity for arbitrary
// valid traces.
func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		pts := make([]Point, n)
		tm := rng.Float64()
		for i := range pts {
			pts[i] = Point{T: tm, MB: rng.Int63n(1 << 40)}
			tm += 0.001 + rng.Float64()*1000
		}
		tr := MustNew(pts)
		data, err := tr.MarshalBinary()
		if err != nil {
			return false
		}
		var back Trace
		if err := back.UnmarshalBinary(data); err != nil {
			return false
		}
		return reflect.DeepEqual(tr.Points(), back.Points())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
