package memtrace_test

import (
	"fmt"

	"dismem/internal/memtrace"
)

// A usage trace is a step function: the job uses 2 GB until t=600, spikes
// to 30 GB, and drops back. MaxIn answers the Decider's question — "how
// much will this job need between now and the next update?"
func ExampleTrace_MaxIn() {
	tr := memtrace.MustNew([]memtrace.Point{
		{T: 0, MB: 2048},
		{T: 600, MB: 30720},
		{T: 900, MB: 4096},
	})
	fmt.Println(tr.MaxIn(0, 300), tr.MaxIn(300, 700), tr.MaxIn(1000, 2000))
	// Output: 2048 30720 4096
}

// RDP removes points that a straight line already explains: the linear
// ramp collapses to its endpoints while the spike survives.
func ExampleTrace_RDP() {
	tr := memtrace.MustNew([]memtrace.Point{
		{T: 0, MB: 1000},
		{T: 100, MB: 2000}, // on the line 0→200: removable
		{T: 200, MB: 3000},
		{T: 300, MB: 50000}, // spike: kept
		{T: 400, MB: 3000},
	})
	reduced := tr.RDP(100)
	fmt.Println("points:", tr.Len(), "->", reduced.Len(), "peak kept:", reduced.Peak())
	// Output: points: 5 -> 4 peak kept: 50000
}

// Scale stretches the time axis so a 5-minute-window Borg shape covers a
// matched job's full wallclock.
func ExampleTrace_Scale() {
	shape := memtrace.MustNew([]memtrace.Point{{T: 0, MB: 100}, {T: 300, MB: 900}})
	job, _ := shape.Scale(7200)
	fmt.Println(job.Duration(), job.At(7199), job.At(7200))
	// Output: 7200 100 900
}
