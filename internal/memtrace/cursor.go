package memtrace

import "sort"

// Cursor is a stateful reader over a Trace for callers whose query times are
// (mostly) monotonically increasing — the simulator reads each job's usage
// trace at its ever-advancing progress. The cursor remembers the segment of
// the previous query and advances linearly from it, so a full pass over the
// trace costs O(points) total instead of O(queries · log points). A query
// earlier than the current segment (a restart from a checkpoint) falls back
// to binary search, so results never depend on the query order.
//
// All methods return exactly what the corresponding Trace method returns:
// the same segment decomposition and the same floating-point operation
// order, so switching a caller to a cursor cannot change simulation results.
//
// The zero Cursor is not usable; obtain one from Trace.Cursor. A Cursor is
// not safe for concurrent use.
type Cursor struct {
	tr  *Trace
	idx int // last index with pts[idx].T <= t of the previous query, min 0
}

// Cursor returns a cursor positioned at the start of the trace.
func (tr *Trace) Cursor() Cursor { return Cursor{tr: tr} }

// seek moves idx to the index Trace.At would compute for t: the last point
// with T <= t, clamped to 0.
func (c *Cursor) seek(t float64) {
	pts := c.tr.pts
	if c.idx > 0 && pts[c.idx].T > t {
		i := sort.Search(len(pts), func(i int) bool { return pts[i].T > t }) - 1
		if i < 0 {
			i = 0
		}
		c.idx = i
		return
	}
	for c.idx+1 < len(pts) && pts[c.idx+1].T <= t {
		c.idx++
	}
}

// At is Trace.At with the cursor's positioning.
func (c *Cursor) At(t float64) int64 {
	c.seek(t)
	return c.tr.pts[c.idx].MB
}

// MaxIn is Trace.MaxIn with the cursor's positioning. Only t0 moves the
// cursor: the scan toward t1 is a look-ahead, so a later query at a time
// before t1 (but ≥ t0) still advances monotonically.
func (c *Cursor) MaxIn(t0, t1 float64) int64 {
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	c.seek(t0)
	pts := c.tr.pts
	max := pts[c.idx].MB
	for i := c.idx + 1; i < len(pts) && pts[i].T < t1; i++ {
		if pts[i].MB > max {
			max = pts[i].MB
		}
	}
	return max
}

// MeanIn is Trace.MeanIn with the cursor's positioning. It accumulates the
// same per-segment areas in the same order as the Trace method, so the
// result is bit-identical. The cursor is left at the segment containing t1.
func (c *Cursor) MeanIn(t0, t1 float64) (float64, error) {
	if t1 <= t0 {
		return 0, ErrBadWindow
	}
	c.seek(t0)
	pts := c.tr.pts
	j := c.idx
	var area float64
	t := t0
	for t < t1 {
		// Next breakpoint strictly after t. Before the first sample the
		// first point itself is the breakpoint.
		k := j + 1
		if pts[j].T > t {
			k = j
		}
		next := t1
		if k < len(pts) && pts[k].T < t1 {
			next = pts[k].T
		}
		area += float64(pts[j].MB) * (next - t)
		if next < t1 {
			j = k
		}
		t = next
	}
	c.idx = j
	return area / (t1 - t0), nil
}
