package memtrace

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustTrace(t *testing.T, pts []Point) *Trace {
	t.Helper()
	tr, err := New(pts)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: err = %v, want ErrEmpty", err)
	}
	if _, err := New([]Point{{T: 1, MB: 5}, {T: 1, MB: 6}}); !errors.Is(err, ErrUnsorted) {
		t.Fatalf("dup time: err = %v, want ErrUnsorted", err)
	}
	if _, err := New([]Point{{T: 2, MB: 5}, {T: 1, MB: 6}}); !errors.Is(err, ErrUnsorted) {
		t.Fatalf("unsorted: err = %v, want ErrUnsorted", err)
	}
	if _, err := New([]Point{{T: -1, MB: 5}}); !errors.Is(err, ErrNegative) {
		t.Fatalf("negative time: err = %v, want ErrNegative", err)
	}
	if _, err := New([]Point{{T: 0, MB: -5}}); !errors.Is(err, ErrNegative) {
		t.Fatalf("negative MB: err = %v, want ErrNegative", err)
	}
}

func TestAtStepSemantics(t *testing.T) {
	tr := mustTrace(t, []Point{{T: 0, MB: 10}, {T: 100, MB: 50}, {T: 200, MB: 20}})
	cases := []struct {
		t    float64
		want int64
	}{
		{0, 10}, {99.9, 10}, {100, 50}, {150, 50}, {200, 20}, {1e6, 20},
	}
	for _, tc := range cases {
		if got := tr.At(tc.t); got != tc.want {
			t.Errorf("At(%g) = %d, want %d", tc.t, got, tc.want)
		}
	}
}

func TestAtBeforeFirstSample(t *testing.T) {
	tr := mustTrace(t, []Point{{T: 10, MB: 42}})
	if got := tr.At(0); got != 42 {
		t.Fatalf("At(0) = %d, want first value 42", got)
	}
}

func TestMaxIn(t *testing.T) {
	tr := mustTrace(t, []Point{{T: 0, MB: 10}, {T: 100, MB: 80}, {T: 200, MB: 30}, {T: 300, MB: 60}})
	cases := []struct {
		t0, t1 float64
		want   int64
	}{
		{0, 50, 10},    // flat start
		{0, 150, 80},   // crosses the 80 step
		{150, 250, 80}, // starts inside the 80 segment
		{210, 290, 30}, // inside the 30 segment
		{210, 301, 60}, // picks up the 60 step
		{500, 600, 60}, // past the end: final value
		{150, 150, 80}, // empty window: value at t0
	}
	for _, tc := range cases {
		if got := tr.MaxIn(tc.t0, tc.t1); got != tc.want {
			t.Errorf("MaxIn(%g,%g) = %d, want %d", tc.t0, tc.t1, got, tc.want)
		}
	}
	// Reversed bounds are normalised.
	if got := tr.MaxIn(150, 0); got != 80 {
		t.Errorf("MaxIn(150,0) = %d, want 80", got)
	}
}

func TestPeakAndMean(t *testing.T) {
	tr := mustTrace(t, []Point{{T: 0, MB: 10}, {T: 100, MB: 90}, {T: 200, MB: 10}})
	if got := tr.Peak(); got != 90 {
		t.Fatalf("Peak = %d, want 90", got)
	}
	// Over [0,300]: 100s@10 + 100s@90 + 100s@10 = 110/3 avg.
	mean, err := tr.MeanOver(300)
	if err != nil {
		t.Fatal(err)
	}
	want := (100*10.0 + 100*90.0 + 100*10.0) / 300.0
	if math.Abs(mean-want) > 1e-9 {
		t.Fatalf("MeanOver(300) = %g, want %g", mean, want)
	}
	if _, err := tr.MeanOver(0); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("MeanOver(0): err = %v, want ErrBadWindow", err)
	}
}

func TestMeanOverCountsLeadingGap(t *testing.T) {
	tr := mustTrace(t, []Point{{T: 50, MB: 40}})
	mean, err := tr.MeanOver(100)
	if err != nil {
		t.Fatal(err)
	}
	if mean != 40 {
		t.Fatalf("MeanOver = %g, want 40 (gap filled with first value)", mean)
	}
}

func TestScale(t *testing.T) {
	tr := mustTrace(t, []Point{{T: 0, MB: 10}, {T: 50, MB: 20}, {T: 100, MB: 30}})
	scaled, err := tr.Scale(1000)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Duration() != 1000 {
		t.Fatalf("scaled duration = %g, want 1000", scaled.Duration())
	}
	if got := scaled.At(499); got != 10 {
		t.Fatalf("scaled At(499) = %d, want 10", got)
	}
	if got := scaled.At(500); got != 20 {
		t.Fatalf("scaled At(500) = %d, want 20", got)
	}
	// Single-point traces scale trivially.
	one := Constant(77)
	s, err := one.Scale(123)
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0) != 77 || s.Len() != 1 {
		t.Fatalf("constant scale broken: %+v", s.Points())
	}
	if _, err := tr.Scale(0); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("Scale(0): err = %v, want ErrBadWindow", err)
	}
}

func TestResampleWindows(t *testing.T) {
	tr := mustTrace(t, []Point{{T: 0, MB: 10}, {T: 300, MB: 40}, {T: 450, MB: 20}})
	maxs, avgs, err := tr.Resample(300, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(maxs) != 2 || len(avgs) != 2 {
		t.Fatalf("windows = %d/%d, want 2/2", len(maxs), len(avgs))
	}
	if maxs[0] != 10 || maxs[1] != 40 {
		t.Fatalf("maxs = %v, want [10 40]", maxs)
	}
	if avgs[0] != 10 {
		t.Fatalf("avg[0] = %d, want 10", avgs[0])
	}
	// Window 2: 150s@40 + 150s@20 = 30 avg.
	if avgs[1] != 30 {
		t.Fatalf("avg[1] = %d, want 30", avgs[1])
	}
	if _, _, err := tr.Resample(0, 600); !errors.Is(err, ErrBadWindow) {
		t.Fatalf("bad window: err = %v, want ErrBadWindow", err)
	}
}

func TestRDPRemovesCollinear(t *testing.T) {
	// Perfectly linear ramp: everything except endpoints is removable.
	var pts []Point
	for i := 0; i <= 10; i++ {
		pts = append(pts, Point{T: float64(i * 10), MB: int64(i * 100)})
	}
	tr := mustTrace(t, pts)
	red := tr.RDP(1)
	if red.Len() != 2 {
		t.Fatalf("reduced len = %d, want 2 (endpoints only)", red.Len())
	}
}

func TestRDPKeepsSpikes(t *testing.T) {
	tr := mustTrace(t, []Point{
		{T: 0, MB: 100}, {T: 10, MB: 100}, {T: 20, MB: 5000}, {T: 30, MB: 100}, {T: 40, MB: 100},
	})
	red := tr.RDP(50)
	found := false
	for _, p := range red.Points() {
		if p.MB == 5000 {
			found = true
		}
	}
	if !found {
		t.Fatalf("spike dropped by RDP: %+v", red.Points())
	}
}

func TestRDPNoopCases(t *testing.T) {
	tr := mustTrace(t, []Point{{T: 0, MB: 1}, {T: 10, MB: 2}})
	if got := tr.RDP(100); got.Len() != 2 {
		t.Fatalf("2-point trace must be unchanged, got %d points", got.Len())
	}
	if got := tr.RDP(0); got != tr {
		t.Fatal("eps<=0 must return the identical trace")
	}
}

// Property: RDP output is a subsequence of the input, keeps the endpoints,
// and every dropped point is within eps of the reconstruction.
func TestQuickRDPErrorBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(200)
		pts := make([]Point, n)
		tm := 0.0
		for i := range pts {
			tm += 1 + rng.Float64()*100
			pts[i] = Point{T: tm, MB: rng.Int63n(100000)}
		}
		tr := MustNew(pts)
		eps := 1 + rng.Float64()*5000
		red := tr.RDP(eps)
		if red.Len() < 2 || red.Len() > tr.Len() {
			return false
		}
		rp := red.Points()
		if rp[0] != pts[0] || rp[len(rp)-1] != pts[n-1] {
			return false
		}
		// Subsequence check.
		j := 0
		for _, p := range rp {
			for j < n && pts[j] != p {
				j++
			}
			if j == n {
				return false
			}
		}
		// Error bound: each original point within eps of the linear
		// interpolation of the kept points.
		for _, p := range pts {
			k := sort.Search(len(rp), func(i int) bool { return rp[i].T >= p.T })
			if k < len(rp) && rp[k].T == p.T {
				continue // kept point, zero error
			}
			a, b := rp[k-1], rp[k]
			y := float64(a.MB) + (float64(b.MB)-float64(a.MB))*(p.T-a.T)/(b.T-a.T)
			if math.Abs(float64(p.MB)-y) > eps+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: MaxIn over any window never exceeds Peak and is reached by At
// somewhere in the window (or at t0).
func TestQuickMaxInConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		pts := make([]Point, n)
		tm := 0.0
		for i := range pts {
			tm += 1 + rng.Float64()*10
			pts[i] = Point{T: tm, MB: rng.Int63n(1000)}
		}
		tr := MustNew(pts)
		for trial := 0; trial < 20; trial++ {
			t0 := rng.Float64() * tm
			t1 := t0 + rng.Float64()*tm
			m := tr.MaxIn(t0, t1)
			if m > tr.Peak() {
				return false
			}
			if m < tr.At(t0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: scaling preserves the value sequence and the peak.
func TestQuickScalePreservesValues(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		pts := make([]Point, n)
		tm := 0.0
		for i := range pts {
			tm += 1 + rng.Float64()*10
			pts[i] = Point{T: tm, MB: rng.Int63n(1000)}
		}
		tr := MustNew(pts)
		to := 1 + rng.Float64()*1e6
		s, err := tr.Scale(to)
		if err != nil {
			return false
		}
		return s.Peak() == tr.Peak() && math.Abs(s.Duration()-to) < 1e-6*to
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
