// Package memtrace represents a job's per-node memory consumption over time
// and the trace transformations the paper's methodology applies to it:
// Ramer–Douglas–Peucker reduction, fixed-window max/avg resampling (the
// Google-trace 5-minute windows), and time-axis scaling to the job's
// wallclock duration.
//
// A Trace is a piecewise-constant step function: between points i and i+1
// the usage is points[i].MB; after the last point it stays at the last MB
// value. Times are seconds from job start.
package memtrace

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is one sample of the step function.
type Point struct {
	T  float64 // seconds since job start
	MB int64   // memory in use from T until the next point
}

// Trace is an immutable memory-usage time series.
type Trace struct {
	pts []Point
}

// Errors returned by trace constructors.
var (
	ErrEmpty     = errors.New("memtrace: empty trace")
	ErrUnsorted  = errors.New("memtrace: points not strictly increasing in time")
	ErrNegative  = errors.New("memtrace: negative time or memory")
	ErrBadWindow = errors.New("memtrace: non-positive window or duration")
)

// New validates and wraps pts as a Trace. Points must be strictly increasing
// in time with non-negative times and memory values. The slice is not copied;
// the caller must not modify it afterwards.
func New(pts []Point) (*Trace, error) {
	if len(pts) == 0 {
		return nil, ErrEmpty
	}
	for i, p := range pts {
		if p.T < 0 || p.MB < 0 {
			return nil, fmt.Errorf("%w: point %d = %+v", ErrNegative, i, p)
		}
		if i > 0 && pts[i-1].T >= p.T {
			return nil, fmt.Errorf("%w: points %d..%d", ErrUnsorted, i-1, i)
		}
	}
	return &Trace{pts: pts}, nil
}

// MustNew is New for statically known-good literals; it panics on error.
func MustNew(pts []Point) *Trace {
	tr, err := New(pts)
	if err != nil {
		panic(err)
	}
	return tr
}

// Constant returns a trace that uses mb from time 0 onward.
func Constant(mb int64) *Trace { return MustNew([]Point{{T: 0, MB: mb}}) }

// Points returns the underlying samples (read-only).
func (tr *Trace) Points() []Point { return tr.pts }

// Len returns the number of samples.
func (tr *Trace) Len() int { return len(tr.pts) }

// Duration returns the time of the last sample (the trace extends beyond it
// at the final value).
func (tr *Trace) Duration() float64 { return tr.pts[len(tr.pts)-1].T }

// At returns the usage at time t. Before the first sample it returns the
// first value (jobs allocate immediately); after the last, the last value.
func (tr *Trace) At(t float64) int64 {
	// Index of the last point with T <= t.
	i := sort.Search(len(tr.pts), func(i int) bool { return tr.pts[i].T > t }) - 1
	if i < 0 {
		i = 0
	}
	return tr.pts[i].MB
}

// MaxIn returns the maximum usage over the half-open interval [t0, t1).
// The paper's Decider provisions for the maximum usage in the period between
// the current progress and the next update.
func (tr *Trace) MaxIn(t0, t1 float64) int64 {
	if t1 < t0 {
		t0, t1 = t1, t0
	}
	max := tr.At(t0)
	// Points strictly inside the window can raise the maximum.
	i := sort.Search(len(tr.pts), func(i int) bool { return tr.pts[i].T > t0 })
	for ; i < len(tr.pts) && tr.pts[i].T < t1; i++ {
		if tr.pts[i].MB > max {
			max = tr.pts[i].MB
		}
	}
	return max
}

// Peak returns the maximum usage over the whole trace.
func (tr *Trace) Peak() int64 {
	var max int64
	for _, p := range tr.pts {
		if p.MB > max {
			max = p.MB
		}
	}
	return max
}

// MeanOver returns the time-weighted mean usage over [0, duration]. The tail
// after the last point counts at the final value.
func (tr *Trace) MeanOver(duration float64) (float64, error) {
	if duration <= 0 {
		return 0, ErrBadWindow
	}
	var area float64
	for i, p := range tr.pts {
		start := p.T
		if start >= duration {
			break
		}
		end := duration
		if i+1 < len(tr.pts) && tr.pts[i+1].T < end {
			end = tr.pts[i+1].T
		}
		area += float64(p.MB) * (end - start)
	}
	// Usage before the first sample equals the first value.
	if first := tr.pts[0].T; first > 0 {
		end := math.Min(first, duration)
		area += float64(tr.pts[0].MB) * end
	}
	return area / duration, nil
}

// Scale returns a copy whose time axis is stretched so the trace spans
// toDuration. The paper scales Google memory traces to the matched job's
// wallclock. A single-point trace is returned unchanged (it already spans
// any duration).
func (tr *Trace) Scale(toDuration float64) (*Trace, error) {
	if toDuration <= 0 {
		return nil, ErrBadWindow
	}
	if len(tr.pts) == 1 || tr.Duration() == 0 {
		return MustNew([]Point{{T: 0, MB: tr.pts[0].MB}}), nil
	}
	f := toDuration / tr.Duration()
	out := make([]Point, 0, len(tr.pts))
	for _, p := range tr.pts {
		out = append(out, Point{T: p.T * f, MB: p.MB})
	}
	// Floating-point stretching can collapse adjacent points; drop dupes.
	dedup := out[:1]
	for _, p := range out[1:] {
		if p.T > dedup[len(dedup)-1].T {
			dedup = append(dedup, p)
		}
	}
	return New(dedup)
}

// Resample returns per-window (max, avg) summaries over [0, duration] with
// the given window size, mimicking the Google trace's 5-minute records.
func (tr *Trace) Resample(window, duration float64) (maxs, avgs []int64, err error) {
	if window <= 0 || duration <= 0 {
		return nil, nil, ErrBadWindow
	}
	n := int(math.Ceil(duration / window))
	maxs = make([]int64, n)
	avgs = make([]int64, n)
	for w := 0; w < n; w++ {
		t0 := float64(w) * window
		t1 := math.Min(t0+window, duration)
		maxs[w] = tr.MaxIn(t0, t1)
		mean, merr := tr.meanIn(t0, t1)
		if merr != nil {
			return nil, nil, merr
		}
		avgs[w] = int64(mean + 0.5)
	}
	return maxs, avgs, nil
}

// MeanIn returns the time-weighted mean usage over [t0, t1].
func (tr *Trace) MeanIn(t0, t1 float64) (float64, error) { return tr.meanIn(t0, t1) }

func (tr *Trace) meanIn(t0, t1 float64) (float64, error) {
	if t1 <= t0 {
		return 0, ErrBadWindow
	}
	var area float64
	t := t0
	for t < t1 {
		v := tr.At(t)
		// Next breakpoint after t.
		i := sort.Search(len(tr.pts), func(i int) bool { return tr.pts[i].T > t })
		next := t1
		if i < len(tr.pts) && tr.pts[i].T < t1 {
			next = tr.pts[i].T
		}
		area += float64(v) * (next - t)
		t = next
	}
	return area / (t1 - t0), nil
}
