package memtrace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary encoding of traces, used by the trace-bundle format: a varint
// point count followed by per-point (float64 time, varint MB) records.
// Times are stored as raw IEEE-754 bits; MB values use unsigned varints.

const encodeMagic = 0x4d54 // "MT"

// ErrCorrupt reports undecodable trace bytes.
var ErrCorrupt = errors.New("memtrace: corrupt encoding")

// MarshalBinary implements encoding.BinaryMarshaler.
func (tr *Trace) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, 4+len(tr.pts)*10)
	buf = binary.AppendUvarint(buf, encodeMagic)
	buf = binary.AppendUvarint(buf, uint64(len(tr.pts)))
	for _, p := range tr.pts {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.T))
		buf = binary.AppendUvarint(buf, uint64(p.MB))
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler; the decoded trace
// is re-validated.
func (tr *Trace) UnmarshalBinary(data []byte) error {
	magic, n := binary.Uvarint(data)
	if n <= 0 || magic != encodeMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	data = data[n:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return fmt.Errorf("%w: missing count", ErrCorrupt)
	}
	data = data[n:]
	if count == 0 || count > 1<<28 {
		return fmt.Errorf("%w: count %d", ErrCorrupt, count)
	}
	pts := make([]Point, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(data) < 8 {
			return fmt.Errorf("%w: truncated at point %d", ErrCorrupt, i)
		}
		t := math.Float64frombits(binary.LittleEndian.Uint64(data))
		data = data[8:]
		mb, n := binary.Uvarint(data)
		if n <= 0 {
			return fmt.Errorf("%w: bad MB at point %d", ErrCorrupt, i)
		}
		data = data[n:]
		pts = append(pts, Point{T: t, MB: int64(mb)})
	}
	if len(data) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data))
	}
	decoded, err := New(pts)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	*tr = *decoded
	return nil
}
