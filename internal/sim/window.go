package sim

import "container/heap"

// This file implements event windows: batch extraction of every event due at
// the earliest queued timestamp, in the exact (time, insertion-order)
// sequence serial stepping would fire them. A window executor pops a window,
// classifies the members by their tags, and dispatches them — in seq order
// when it cannot prove independence, which reproduces serial execution
// byte-for-byte. Mid-window the un-fired members remain pending: an earlier
// member's handler can cancel or reschedule a later member and FireWindowed
// will skip it, exactly as the serial engine would have.
//
// Handlers may schedule new events at the window's timestamp; those land
// after every current member in seq order and are returned by the next
// NextWindow call at the same timestamp — again matching the serial order.
// The event budget (SetMaxEvents) is therefore enforced at window
// boundaries rather than between members: a budget expiring mid-window
// takes effect once the window drains.

// Fired is one member of an extracted window: a claim ticket for firing a
// popped event. The tag is copied out at pop time so classification stays
// valid even if the member is cancelled by an earlier member's handler.
type Fired struct {
	ev  *Event
	gen uint64
	tag uint64
}

// Tag returns the classification tag the event was scheduled with.
func (f Fired) Tag() uint64 { return f.tag }

// Live reports whether the member is still due to fire — false once it has
// been fired, or cancelled/rescheduled by an earlier member of the window.
func (f Fired) Live() bool {
	return f.ev != nil && f.ev.gen == f.gen && f.ev.index == windowedIdx
}

// NextWindow pops every event due at the earliest queued timestamp (if that
// timestamp is within the horizon) into buf, in the order serial stepping
// would fire them, and advances the clock to it. The members stay pending —
// cancellable and reschedulable — until individually dispatched with
// FireWindowed. An empty result means the queue is drained or the next
// event lies beyond the horizon.
//
//dmp:hotpath
func (e *Engine) NextWindow(buf []Fired) []Fired {
	buf = buf[:0]
	if len(e.queue) == 0 {
		return buf
	}
	at := e.queue[0].at
	if at > e.maxT {
		return buf
	}
	e.now = at
	for len(e.queue) > 0 && e.queue[0].at == at {
		ev := heap.Pop(&e.queue).(*Event)
		ev.index = windowedIdx
		e.windowed++
		buf = append(buf, Fired{ev: ev, gen: ev.gen, tag: ev.tag})
	}
	return buf
}

// FireWindowed dispatches one window member and recycles its storage,
// reporting whether it actually fired (false for members cancelled or
// rescheduled since the pop). Members of one window must be fired in the
// order NextWindow returned them unless the caller has proven them
// independent.
//
//dmp:hotpath
func (e *Engine) FireWindowed(f Fired) bool {
	if !f.Live() {
		return false
	}
	ev := f.ev
	ev.index = -1
	// Decrement before firing: a serial Step pops the event before running
	// its handler, so Pending must exclude the member being dispatched.
	e.windowed--
	e.fired++
	fn := ev.fire
	fn(e) //dmplint:ignore hotpath-reach fire is the scheduled event's handler; the engine cannot know its target statically and handlers own their allocation budget
	e.recycle(ev)
	return true
}

// TakeWindowed claims one window member without running its handler: the
// member is consumed (counted as fired, its storage recycled) and the caller
// becomes responsible for executing its effect. An executor that has proven
// a window's members independent takes them all up front — after which no
// member can cancel another — and then runs their effects on its own
// schedule, e.g. concurrently. Reports false for members already cancelled
// or rescheduled since the pop, exactly like FireWindowed.
//
//dmp:hotpath
func (e *Engine) TakeWindowed(f Fired) bool {
	if !f.Live() {
		return false
	}
	ev := f.ev
	ev.index = -1
	e.windowed--
	e.fired++
	e.recycle(ev)
	return true
}

// DropWindow returns un-fired window members to the queue — the unwind path
// for an executor that popped a window and then decided to stop (budget
// exhausted, halt requested). Members keep their original timestamps and
// seqs, so a subsequent NextWindow or Step sees exactly the schedule the
// pop removed.
func (e *Engine) DropWindow(buf []Fired) {
	for _, f := range buf {
		if !f.Live() {
			continue
		}
		f.ev.index = -1
		e.windowed--
		heap.Push(&e.queue, f.ev)
	}
}
