package sim

import (
	"fmt"
	"math"
)

// This file implements engine forking for copy-on-write simulation
// snapshots. Event actions are closures over the owning simulator, so a
// cloned engine cannot reuse them: the caller supplies a rebind function
// that maps each pending event's tag to a fresh action bound to the forked
// simulator. Everything else — clock, seq counter, heap layout, generation
// stamps, horizon, budget — is copied exactly, so the clone fires the same
// events at the same times in the same order as the original would.

// Periodic returns a self-rescheduling action: each firing runs fn and, if
// other events remain pending, schedules the next tick interval seconds
// later under the same tag. It is the action form of Every — EveryTag
// schedules it, and a forked simulator rebinds a pending tick by scheduling
// a fresh Periodic with the original interval and tag.
func Periodic(interval float64, tag uint64, fn Action) Action {
	var tick Action
	tick = func(e *Engine) {
		fn(e)
		// The firing tick has already been popped, so Pending counts only
		// other work; reschedule only while there is some.
		if e.Pending() > 0 {
			e.ScheduleTag(e.now+interval, tag, tick)
		}
	}
	return tick
}

// EveryTag is Every with a classification tag on the tick events, so a
// window executor can recognise them and a fork can rebind them.
func (e *Engine) EveryTag(start, interval float64, tag uint64, fn Action) {
	if interval <= 0 || math.IsNaN(interval) {
		panic(fmt.Sprintf("sim: EveryTag with interval %g", interval))
	}
	e.ScheduleTag(start, tag, Periodic(interval, tag, fn))
}

// Clone returns a deep copy of the engine with every pending event's action
// rebound through rebind, plus a handle map letting the caller re-attach its
// retained Handles: for every pending event with a nonzero tag, the map
// holds the clone's replacement handle under that tag.
//
// The copy is exact — clock, seq counter, fired count, horizon, event
// budget, and the heap array element-for-element (at, seq, tag, generation,
// position) — so the clone's future pop order, seq assignment, and Pending
// counts are indistinguishable from the original's. The event pool is not
// copied; the clone re-grows its own storage.
//
// rebind must return a non-nil action for every pending tag (zero included,
// if any untagged events are pending), and nonzero tags must be unique among
// pending events — both panic otherwise, because a silently dropped or
// misbound event would corrupt the branch's timeline. Cloning mid-window
// (between NextWindow and the window's last FireWindowed) panics too: window
// members live outside the heap and cannot be rebound.
func (e *Engine) Clone(rebind func(tag uint64) Action) (*Engine, map[uint64]Handle) {
	if e.windowed != 0 {
		panic("sim: Clone mid-window")
	}
	c := &Engine{
		now:       e.now,
		seq:       e.seq,
		fired:     e.fired,
		maxT:      e.maxT,
		maxEvents: e.maxEvents,
		halted:    e.halted,
		exhausted: e.exhausted,
	}
	c.queue = make(eventQueue, len(e.queue))
	handles := make(map[uint64]Handle, len(e.queue))
	for i, ev := range e.queue {
		fn := rebind(ev.tag)
		if fn == nil {
			panic(fmt.Sprintf("sim: Clone: no action for pending event tag %#x", ev.tag))
		}
		nev := &Event{at: ev.at, seq: ev.seq, index: i, gen: ev.gen, tag: ev.tag, fire: fn}
		c.queue[i] = nev
		if ev.tag != 0 {
			if _, dup := handles[ev.tag]; dup {
				panic(fmt.Sprintf("sim: Clone: duplicate pending event tag %#x", ev.tag))
			}
			handles[ev.tag] = Handle{ev: nev, gen: nev.gen}
		}
	}
	return c, handles
}
