package sim

import (
	"fmt"
	"reflect"
	"testing"
)

// A cloned engine must replay exactly the schedule the original would have
// run: same firing order, same times, same periodic-tick cadence, and
// rebound handles must stay operable (reschedulable) in the clone.
func TestCloneReplaysIdentically(t *testing.T) {
	type firing struct {
		T   float64
		Tag uint64
	}
	build := func(log *[]firing) *Engine {
		e := New()
		rec := func(tag uint64) Action {
			return func(e *Engine) { *log = append(*log, firing{e.Now(), tag}) }
		}
		e.ScheduleTag(1, 100, rec(100))
		e.ScheduleTag(5, 101, rec(101))
		e.ScheduleTag(5, 102, rec(102)) // same time: seq order matters
		e.ScheduleTag(9, 103, rec(103))
		e.EveryTag(0, 2, 200, rec(200))
		return e
	}

	var refLog []firing
	ref := build(&refLog)
	ref.Run()

	// Same construction, but stop at t=4, clone, and let the clone finish.
	var baseLog, cloneLog []firing
	base := build(&baseLog)
	base.RunUntil(4)
	clone, handles := base.Clone(func(tag uint64) Action {
		if tag == 200 {
			return Periodic(2, 200, func(e *Engine) { cloneLog = append(cloneLog, firing{e.Now(), 200}) })
		}
		return func(e *Engine) { cloneLog = append(cloneLog, firing{e.Now(), tag}) }
	})
	for _, tag := range []uint64{101, 102, 103} {
		h, ok := handles[tag]
		if !ok || !h.Pending() {
			t.Fatalf("tag %d: no live handle in clone", tag)
		}
	}
	if got, want := clone.Now(), base.Now(); got != want {
		t.Fatalf("clone clock %g, base %g", got, want)
	}
	clone.Run()

	want := append(append([]firing{}, baseLog...), cloneLog...)
	if !reflect.DeepEqual(refLog, want) {
		t.Fatalf("clone diverged:\nref   %v\nsplit %v", refLog, want)
	}

	// The base is untouched by the clone's run and finishes on its own.
	base.Run()
	if !reflect.DeepEqual(refLog, baseLog) {
		t.Fatalf("base perturbed by clone:\nref  %v\nbase %v", refLog, baseLog)
	}
}

// Rescheduling through a rebound handle must move the cloned event without
// touching the original engine's copy.
func TestCloneHandleReschedule(t *testing.T) {
	e := New()
	fired := ""
	e.ScheduleTag(3, 7, func(*Engine) { fired += "orig" })
	clone, handles := e.Clone(func(tag uint64) Action {
		return func(*Engine) { fired += fmt.Sprintf("clone@%d", tag) }
	})
	h := handles[7]
	clone.Reschedule(h, 10)
	clone.Run()
	if clone.Now() != 10 || fired != "clone@7" {
		t.Fatalf("clone: now=%g fired=%q", clone.Now(), fired)
	}
	e.Run()
	if e.Now() != 3 || fired != "clone@7orig" {
		t.Fatalf("original: now=%g fired=%q", e.Now(), fired)
	}
}

func TestCloneRejectsUnboundTag(t *testing.T) {
	e := New()
	e.ScheduleTag(1, 9, func(*Engine) {})
	defer func() {
		if recover() == nil {
			t.Fatal("Clone with nil rebind result did not panic")
		}
	}()
	e.Clone(func(uint64) Action { return nil })
}
