// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a priority queue of timestamped events. Events fire in
// (time, insertion-order) order, so two runs with identical inputs produce
// identical schedules. Event handles support cancellation and rescheduling,
// which the scheduler uses to move job-completion events when a job's
// slowdown changes.
//
// Event structs are pooled: once an event has fired or been cancelled its
// storage is reused by a later Schedule, so a long simulation performs O(1)
// allocations per firing instead of one per Schedule. Handles carry a
// generation stamp, making operations on spent handles safe no-ops rather
// than corruption of whatever event happens to occupy the storage next.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Action is the callback invoked when an event fires. It receives the engine
// so handlers can schedule follow-up events.
type Action func(e *Engine)

// Event is the pooled storage for one scheduled occurrence. Callers never
// hold an *Event directly; they hold a Handle.
type Event struct {
	at    float64
	seq   uint64
	index int // heap index; -1 when not queued, windowedIdx mid-window
	gen   uint64
	tag   uint64
	fire  Action
}

// windowedIdx marks an event popped into the current window by NextWindow
// but not yet fired: it is out of the heap, yet its handle must stay pending
// so earlier events in the same window can cancel or reschedule it exactly
// as they could under serial stepping.
const windowedIdx = -2

// Handle identifies one scheduled event. The zero Handle refers to no event
// and every operation on it is a no-op. A Handle is spent once its event
// fires or is cancelled; operations on spent handles are no-ops too (the
// underlying storage may already belong to a different event).
type Handle struct {
	ev  *Event
	gen uint64
}

// Pending reports whether the event is still due to fire — queued in the
// heap, or popped into the current window but not yet dispatched.
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen &&
		(h.ev.index >= 0 || h.ev.index == windowedIdx)
}

// At returns the simulated time at which the event is due to fire, or NaN
// if the handle is zero or spent.
func (h Handle) At() float64 {
	if !h.Pending() {
		return math.NaN()
	}
	return h.ev.at
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator clock and event queue.
// It is not safe for concurrent use; the simulation is single-threaded by
// design so results are reproducible.
type Engine struct {
	now       float64
	seq       uint64
	queue     eventQueue
	free      []*Event // recycled event storage
	windowed  int      // popped by NextWindow, not yet fired or cancelled
	fired     uint64
	maxT      float64
	maxEvents uint64
	halted    bool
	exhausted bool
}

// New returns an engine with the clock at time zero and no horizon.
func New() *Engine {
	return &Engine{maxT: math.Inf(1)}
}

// SetMaxEvents installs a runaway backstop: Run halts once n events have
// fired, and Exhausted reports it. Zero (the default) means unlimited.
func (e *Engine) SetMaxEvents(n uint64) { e.maxEvents = n }

// Exhausted reports whether a Run stopped because the event budget was
// spent rather than because the queue drained or the horizon was reached.
func (e *Engine) Exhausted() bool { return e.exhausted }

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still due to fire: queued in the
// heap, plus any popped into the current window but not yet dispatched. The
// latter term keeps handlers that read Pending mid-window (the sampler's
// stop condition) observing exactly what they would under serial stepping,
// where undelivered same-time events are still in the heap.
func (e *Engine) Pending() int { return len(e.queue) + e.windowed }

// SetHorizon stops the run when the clock would pass t. Events scheduled at
// exactly t still fire.
func (e *Engine) SetHorizon(t float64) { e.maxT = t }

// Halt stops the run after the current event handler returns.
func (e *Engine) Halt() { e.halted = true }

// Schedule enqueues fn to fire at absolute time at. Scheduling in the past
// panics: it always indicates a logic error in the caller, and silently
// clamping would corrupt causality.
func (e *Engine) Schedule(at float64, fn Action) Handle {
	return e.ScheduleTag(at, 0, fn)
}

// ScheduleTag is Schedule with an opaque classification tag attached to the
// event. The engine never interprets tags; window executors read them back
// via Fired.Tag to decide event independence without calling into the
// action. Plain Schedule leaves the tag zero ("unclassified").
func (e *Engine) ScheduleTag(at float64, tag uint64, fn Action) Handle {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %g before now %g", at, e.now))
	}
	if math.IsNaN(at) {
		panic("sim: schedule at NaN")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = &Event{}
	}
	e.seq++
	ev.at = at
	ev.seq = e.seq
	ev.tag = tag
	ev.fire = fn
	ev.index = -1
	heap.Push(&e.queue, ev)
	return Handle{ev: ev, gen: ev.gen}
}

// After enqueues fn to fire d seconds from now.
func (e *Engine) After(d float64, fn Action) Handle {
	return e.ScheduleTag(e.now+d, 0, fn)
}

// AfterTag enqueues fn to fire d seconds from now with a classification tag.
func (e *Engine) AfterTag(d float64, tag uint64, fn Action) Handle {
	return e.ScheduleTag(e.now+d, tag, fn)
}

// Every schedules fn at absolute time start and then every interval seconds
// for as long as other events remain queued. The self-rescheduling stops as
// soon as the tick is the only thing left, so a periodic task (telemetry
// sampling, progress reporting) never keeps the queue from draining or the
// run from terminating. A non-positive interval panics.
func (e *Engine) Every(start, interval float64, fn Action) {
	e.EveryTag(start, interval, 0, fn)
}

// recycle marks ev spent (invalidating every Handle stamped with the old
// generation) and returns its storage to the pool.
func (e *Engine) recycle(ev *Event) {
	ev.gen++
	ev.fire = nil
	e.free = append(e.free, ev)
}

// Cancel removes the event from the queue so it will not fire. Cancelling a
// zero, fired, or already-cancelled handle is a no-op. The storage is
// recycled immediately, so very long simulations neither accumulate dead
// queue entries nor allocate per firing.
func (e *Engine) Cancel(h Handle) {
	if !h.Pending() {
		return
	}
	if h.ev.index == windowedIdx {
		// Popped into the current window but not yet fired: not in the heap.
		// Recycling bumps the generation, so FireWindowed skips it — the
		// same observable outcome as a serial cancel-before-fire.
		e.windowed--
		e.recycle(h.ev)
		return
	}
	heap.Remove(&e.queue, h.ev.index)
	e.recycle(h.ev)
}

// Reschedule cancels h and schedules its action (and tag) at a new absolute
// time, returning the replacement handle. The handle must be pending.
func (e *Engine) Reschedule(h Handle, at float64) Handle {
	if !h.Pending() {
		panic("sim: reschedule of a spent or zero event handle")
	}
	fn := h.ev.fire
	tag := h.ev.tag
	e.Cancel(h)
	return e.ScheduleTag(at, tag, fn)
}

// Step fires the next event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue[0]
	if ev.at > e.maxT {
		return false
	}
	heap.Pop(&e.queue)
	e.now = ev.at
	e.fired++
	fn := ev.fire
	// Handles to ev stay valid (and inert: index is -1) while the handler
	// runs; the storage is recycled only after it returns.
	fn(e)
	e.recycle(ev)
	return true
}

// Run fires events until the queue is empty, the horizon is reached, the
// event budget is exhausted, or Halt is called. It returns the final
// simulated time.
func (e *Engine) Run() float64 {
	e.halted = false
	e.exhausted = false
	for !e.halted {
		if e.maxEvents > 0 && e.fired >= e.maxEvents {
			e.exhausted = true
			break
		}
		if !e.Step() {
			break
		}
	}
	return e.now
}

// RunUntil runs the engine, stopping before any event later than t fires.
// The clock is left at the time of the last fired event.
func (e *Engine) RunUntil(t float64) float64 {
	old := e.maxT
	e.maxT = t
	e.Run()
	e.maxT = old
	return e.now
}
