// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a priority queue of timestamped events. Events fire in
// (time, insertion-order) order, so two runs with identical inputs produce
// identical schedules. Event handles support cancellation and rescheduling,
// which the scheduler uses to move job-completion events when a job's
// slowdown changes.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Action is the callback invoked when an event fires. It receives the engine
// so handlers can schedule follow-up events.
type Action func(e *Engine)

// Event is a scheduled occurrence. The zero value is not usable; obtain
// events from Engine.Schedule.
type Event struct {
	at     float64
	seq    uint64
	index  int // heap index; -1 when not queued
	fire   Action
	cancel bool
}

// At returns the simulated time at which the event is due to fire.
func (ev *Event) At() float64 { return ev.at }

// Cancelled reports whether Cancel was called on the event.
func (ev *Event) Cancelled() bool { return ev.cancel }

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator clock and event queue.
// It is not safe for concurrent use; the simulation is single-threaded by
// design so results are reproducible.
type Engine struct {
	now       float64
	seq       uint64
	queue     eventQueue
	fired     uint64
	maxT      float64
	maxEvents uint64
	halted    bool
	exhausted bool
}

// New returns an engine with the clock at time zero and no horizon.
func New() *Engine {
	return &Engine{maxT: math.Inf(1)}
}

// SetMaxEvents installs a runaway backstop: Run halts once n events have
// fired, and Exhausted reports it. Zero (the default) means unlimited.
func (e *Engine) SetMaxEvents(n uint64) { e.maxEvents = n }

// Exhausted reports whether a Run stopped because the event budget was
// spent rather than because the queue drained or the horizon was reached.
func (e *Engine) Exhausted() bool { return e.exhausted }

// Now returns the current simulated time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently queued (including
// cancelled events that have not yet been popped).
func (e *Engine) Pending() int { return len(e.queue) }

// SetHorizon stops the run when the clock would pass t. Events scheduled at
// exactly t still fire.
func (e *Engine) SetHorizon(t float64) { e.maxT = t }

// Halt stops the run after the current event handler returns.
func (e *Engine) Halt() { e.halted = true }

// Schedule enqueues fn to fire at absolute time at. Scheduling in the past
// panics: it always indicates a logic error in the caller, and silently
// clamping would corrupt causality.
func (e *Engine) Schedule(at float64, fn Action) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %g before now %g", at, e.now))
	}
	if math.IsNaN(at) {
		panic("sim: schedule at NaN")
	}
	e.seq++
	ev := &Event{at: at, seq: e.seq, fire: fn, index: -1}
	heap.Push(&e.queue, ev)
	return ev
}

// After enqueues fn to fire d seconds from now.
func (e *Engine) After(d float64, fn Action) *Event {
	return e.Schedule(e.now+d, fn)
}

// Cancel marks ev so it will not fire. Cancelling an already-fired or
// already-cancelled event is a no-op. The event is removed from the queue
// immediately so very long simulations do not accumulate dead entries.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.cancel {
		return
	}
	ev.cancel = true
	if ev.index >= 0 {
		heap.Remove(&e.queue, ev.index)
	}
}

// Reschedule cancels ev and schedules its action at a new absolute time,
// returning the replacement event.
func (e *Engine) Reschedule(ev *Event, at float64) *Event {
	fn := ev.fire
	e.Cancel(ev)
	return e.Schedule(at, fn)
}

// Step fires the next event, if any, and reports whether one fired.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.cancel {
			heap.Pop(&e.queue)
			continue
		}
		if ev.at > e.maxT {
			return false
		}
		heap.Pop(&e.queue)
		e.now = ev.at
		e.fired++
		ev.fire(e)
		return true
	}
	return false
}

// Run fires events until the queue is empty, the horizon is reached, the
// event budget is exhausted, or Halt is called. It returns the final
// simulated time.
func (e *Engine) Run() float64 {
	e.halted = false
	e.exhausted = false
	for !e.halted {
		if e.maxEvents > 0 && e.fired >= e.maxEvents {
			e.exhausted = true
			break
		}
		if !e.Step() {
			break
		}
	}
	return e.now
}

// RunUntil runs the engine, stopping before any event later than t fires.
// The clock is left at the time of the last fired event.
func (e *Engine) RunUntil(t float64) float64 {
	old := e.maxT
	e.maxT = t
	e.Run()
	e.maxT = old
	return e.now
}
