package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(3, func(*Engine) { got = append(got, 3) })
	e.Schedule(1, func(*Engine) { got = append(got, 1) })
	e.Schedule(2, func(*Engine) { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %g, want 3", e.Now())
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	e := New()
	var got []string
	e.Schedule(5, func(*Engine) { got = append(got, "a") })
	e.Schedule(5, func(*Engine) { got = append(got, "b") })
	e.Schedule(5, func(*Engine) { got = append(got, "c") })
	e.Run()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("tie-break violated insertion order: %v", got)
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	e := New()
	var at float64
	e.Schedule(10, func(e *Engine) {
		e.After(5, func(e *Engine) { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("After fired at %g, want 15", at)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	ev := e.Schedule(1, func(*Engine) { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
	// Double-cancel is a no-op.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelRemovesFromQueue(t *testing.T) {
	e := New()
	ev := e.Schedule(1, func(*Engine) {})
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Cancel(ev)
	if e.Pending() != 0 {
		t.Fatalf("pending after cancel = %d, want 0", e.Pending())
	}
}

func TestReschedule(t *testing.T) {
	e := New()
	var at float64
	ev := e.Schedule(10, func(e *Engine) { at = e.Now() })
	e.Reschedule(ev, 20)
	e.Run()
	if at != 20 {
		t.Fatalf("rescheduled event fired at %g, want 20", at)
	}
	if e.Fired() != 1 {
		t.Fatalf("fired = %d, want 1 (original must not fire)", e.Fired())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func(*Engine) {})
}

func TestHorizon(t *testing.T) {
	e := New()
	var got []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.Schedule(at, func(*Engine) { got = append(got, at) })
	}
	e.RunUntil(2.5)
	if len(got) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", got)
	}
	// Remaining events still fire on an unbounded Run.
	e.Run()
	if len(got) != 4 {
		t.Fatalf("fired %v after resume, want all 4", got)
	}
}

func TestHalt(t *testing.T) {
	e := New()
	n := 0
	e.Schedule(1, func(e *Engine) { n++; e.Halt() })
	e.Schedule(2, func(*Engine) { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("fired %d events, want 1 (halted)", n)
	}
	e.Run()
	if n != 2 {
		t.Fatalf("fired %d events after resume, want 2", n)
	}
}

func TestRecurringEvent(t *testing.T) {
	e := New()
	count := 0
	var tick Action
	tick = func(e *Engine) {
		count++
		if count < 5 {
			e.After(30, tick)
		}
	}
	e.After(30, tick)
	e.Run()
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
	if e.Now() != 150 {
		t.Fatalf("clock = %g, want 150", e.Now())
	}
}

// Property: for any set of schedule times, events fire in sorted order and
// the clock never moves backwards.
func TestQuickFiringOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []float64
		for _, r := range raw {
			at := float64(r)
			e.Schedule(at, func(e *Engine) { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestQuickCancelSubset(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		e := New()
		rng := rand.New(rand.NewSource(seed))
		want := 0
		fired := 0
		for _, r := range raw {
			ev := e.Schedule(float64(r), func(*Engine) { fired++ })
			if rng.Intn(2) == 0 {
				e.Cancel(ev)
			} else {
				want++
			}
		}
		e.Run()
		return fired == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%97), func(*Engine) {})
		}
		e.Run()
	}
}

func TestMaxEventsBackstop(t *testing.T) {
	e := New()
	// A self-perpetuating tick that would never drain.
	var tick Action
	n := 0
	tick = func(e *Engine) {
		n++
		e.After(1, tick)
	}
	e.After(1, tick)
	e.SetMaxEvents(100)
	e.Run()
	if !e.Exhausted() {
		t.Fatal("Exhausted() = false after hitting the budget")
	}
	if n != 100 {
		t.Fatalf("fired %d events, want exactly 100", n)
	}
	// Raising the budget lets the run continue.
	e.SetMaxEvents(150)
	e.Run()
	if n != 150 {
		t.Fatalf("fired %d events after raise, want 150", n)
	}
}

func TestMaxEventsZeroMeansUnlimited(t *testing.T) {
	e := New()
	for i := 0; i < 50; i++ {
		e.Schedule(float64(i), func(*Engine) {})
	}
	e.Run()
	if e.Exhausted() {
		t.Fatal("unlimited engine reported exhaustion")
	}
	if e.Fired() != 50 {
		t.Fatalf("fired = %d", e.Fired())
	}
}
