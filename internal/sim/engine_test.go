package sim

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrder(t *testing.T) {
	e := New()
	var got []int
	e.Schedule(3, func(*Engine) { got = append(got, 3) })
	e.Schedule(1, func(*Engine) { got = append(got, 1) })
	e.Schedule(2, func(*Engine) { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 3 {
		t.Fatalf("clock = %g, want 3", e.Now())
	}
}

func TestTieBreakByInsertion(t *testing.T) {
	e := New()
	var got []string
	e.Schedule(5, func(*Engine) { got = append(got, "a") })
	e.Schedule(5, func(*Engine) { got = append(got, "b") })
	e.Schedule(5, func(*Engine) { got = append(got, "c") })
	e.Run()
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("tie-break violated insertion order: %v", got)
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	e := New()
	var at float64
	e.Schedule(10, func(e *Engine) {
		e.After(5, func(e *Engine) { at = e.Now() })
	})
	e.Run()
	if at != 15 {
		t.Fatalf("After fired at %g, want 15", at)
	}
}

func TestCancel(t *testing.T) {
	e := New()
	fired := false
	h := e.Schedule(1, func(*Engine) { fired = true })
	e.Cancel(h)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if h.Pending() {
		t.Fatal("Pending() = true after Cancel")
	}
	// Double-cancel and zero-handle cancel are no-ops.
	e.Cancel(h)
	e.Cancel(Handle{})
}

func TestCancelRemovesFromQueue(t *testing.T) {
	e := New()
	h := e.Schedule(1, func(*Engine) {})
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
	e.Cancel(h)
	if e.Pending() != 0 {
		t.Fatalf("pending after cancel = %d, want 0", e.Pending())
	}
}

func TestReschedule(t *testing.T) {
	e := New()
	var at float64
	h := e.Schedule(10, func(e *Engine) { at = e.Now() })
	h = e.Reschedule(h, 20)
	if got := h.At(); got != 20 {
		t.Fatalf("At() = %g after reschedule, want 20", got)
	}
	e.Run()
	if at != 20 {
		t.Fatalf("rescheduled event fired at %g, want 20", at)
	}
	if e.Fired() != 1 {
		t.Fatalf("fired = %d, want 1 (original must not fire)", e.Fired())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := New()
	e.Schedule(10, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(5, func(*Engine) {})
}

func TestHorizon(t *testing.T) {
	e := New()
	var got []float64
	for _, at := range []float64{1, 2, 3, 4} {
		at := at
		e.Schedule(at, func(*Engine) { got = append(got, at) })
	}
	e.RunUntil(2.5)
	if len(got) != 2 {
		t.Fatalf("fired %v, want events at 1 and 2 only", got)
	}
	// Remaining events still fire on an unbounded Run.
	e.Run()
	if len(got) != 4 {
		t.Fatalf("fired %v after resume, want all 4", got)
	}
}

func TestHalt(t *testing.T) {
	e := New()
	n := 0
	e.Schedule(1, func(e *Engine) { n++; e.Halt() })
	e.Schedule(2, func(*Engine) { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("fired %d events, want 1 (halted)", n)
	}
	e.Run()
	if n != 2 {
		t.Fatalf("fired %d events after resume, want 2", n)
	}
}

func TestRecurringEvent(t *testing.T) {
	e := New()
	count := 0
	var tick Action
	tick = func(e *Engine) {
		count++
		if count < 5 {
			e.After(30, tick)
		}
	}
	e.After(30, tick)
	e.Run()
	if count != 5 {
		t.Fatalf("ticks = %d, want 5", count)
	}
	if e.Now() != 150 {
		t.Fatalf("clock = %g, want 150", e.Now())
	}
}

// TestStaleHandleIsInert pins down the pool-safety contract: once an event
// has fired, its handle is spent, and cancelling it must not disturb a new
// event that was given the recycled storage.
func TestStaleHandleIsInert(t *testing.T) {
	e := New()
	var stale Handle
	stale = e.Schedule(1, func(*Engine) {})
	e.Run()
	if stale.Pending() {
		t.Fatal("handle still pending after its event fired")
	}
	if !math.IsNaN(stale.At()) {
		t.Fatalf("At() on spent handle = %g, want NaN", stale.At())
	}

	// The next Schedule reuses the fired event's storage (pool of one).
	fired := false
	fresh := e.Schedule(2, func(*Engine) { fired = true })
	e.Cancel(stale) // must NOT cancel the fresh event
	e.Run()
	if !fired {
		t.Fatal("stale Cancel killed a recycled event")
	}
	_ = fresh
}

// TestCancelDuringHandler checks that a handler cancelling other pending
// events (the simulator's teardown pattern) works and that self-cancel of
// the currently-firing event is a no-op rather than a double-recycle.
func TestCancelDuringHandler(t *testing.T) {
	e := New()
	firedB := false
	var ha, hb Handle
	ha = e.Schedule(1, func(e *Engine) {
		e.Cancel(ha) // self: already popped, must be inert
		e.Cancel(hb)
	})
	hb = e.Schedule(2, func(*Engine) { firedB = true })
	e.Run()
	if firedB {
		t.Fatal("event cancelled from a handler still fired")
	}
	if e.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", e.Fired())
	}
}

// TestRescheduleSpentPanics pins the contract that Reschedule requires a
// pending handle — silently rescheduling a recycled event would fire some
// other event's action.
func TestReschedulePanicsOnSpentHandle(t *testing.T) {
	e := New()
	h := e.Schedule(1, func(*Engine) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("rescheduling a spent handle did not panic")
		}
	}()
	e.Reschedule(h, 5)
}

// Property: for any set of schedule times, events fire in sorted order and
// the clock never moves backwards.
func TestQuickFiringOrder(t *testing.T) {
	f := func(raw []uint16) bool {
		e := New()
		var fired []float64
		for _, r := range raw {
			at := float64(r)
			e.Schedule(at, func(e *Engine) { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset fires exactly the complement.
func TestQuickCancelSubset(t *testing.T) {
	f := func(raw []uint16, seed int64) bool {
		e := New()
		rng := rand.New(rand.NewSource(seed))
		want := 0
		fired := 0
		for _, r := range raw {
			h := e.Schedule(float64(r), func(*Engine) { fired++ })
			if rng.Intn(2) == 0 {
				e.Cancel(h)
			} else {
				want++
			}
		}
		e.Run()
		return fired == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := New()
		for j := 0; j < 1000; j++ {
			e.Schedule(float64(j%97), func(*Engine) {})
		}
		e.Run()
	}
}

// BenchmarkEngineScheduleCancel measures the schedule/cancel/reschedule
// churn of a long-lived engine — the pattern the simulator's completion
// events follow. With the event pool this is allocation-free at steady
// state.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := New()
	// Warm the pool and keep a rolling window of pending events.
	var hs [64]Handle
	for i := range hs {
		hs[i] = e.Schedule(float64(i)+1e6, func(*Engine) {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := i % len(hs)
		e.Cancel(hs[slot])
		hs[slot] = e.Schedule(float64(i)+1e6, func(*Engine) {})
		hs[slot] = e.Reschedule(hs[slot], float64(i)+2e6)
	}
	b.StopTimer()
	for _, h := range hs {
		e.Cancel(h)
	}
}

func TestEveryStopsWhenQueueDrains(t *testing.T) {
	e := New()
	var work, ticks []float64
	for _, at := range []float64{5, 12, 29} {
		at := at
		e.Schedule(at, func(*Engine) { work = append(work, at) })
	}
	e.Every(0, 10, func(e *Engine) { ticks = append(ticks, e.Now()) })
	e.Run()

	if want := []float64{5, 12, 29}; !reflect.DeepEqual(work, want) {
		t.Fatalf("work fired at %v, want %v", work, want)
	}
	// Ticks at 0, 10, 20, 30; the tick at 30 finds the queue empty and does
	// not reschedule, so the run terminates.
	if want := []float64{0, 10, 20, 30}; !reflect.DeepEqual(ticks, want) {
		t.Fatalf("ticks fired at %v, want %v", ticks, want)
	}
	if e.Pending() != 0 {
		t.Fatalf("%d events still queued after Run", e.Pending())
	}
}

func TestEveryAloneFiresOnce(t *testing.T) {
	e := New()
	n := 0
	e.Every(3, 10, func(*Engine) { n++ })
	e.Run()
	if n != 1 {
		t.Fatalf("lone periodic fired %d times, want 1", n)
	}
	if e.Now() != 3 {
		t.Fatalf("clock at %g, want 3", e.Now())
	}
}

func TestEveryBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(_, 0, _) did not panic")
		}
	}()
	New().Every(0, 0, func(*Engine) {})
}
