package sim

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// windowRun drives the engine entirely through NextWindow/FireWindowed
// (firing each window in pop order) and returns the final time.
func windowRun(e *Engine) float64 {
	var buf []Fired
	for {
		buf = e.NextWindow(buf)
		if len(buf) == 0 {
			return e.Now()
		}
		for _, f := range buf {
			e.FireWindowed(f)
		}
	}
}

// TestWindowMatchesSerial schedules a randomized workload — including
// handlers that schedule follow-ups at the current timestamp and at later
// ones — on two engines and asserts the window-driven run fires the exact
// event sequence of the serial run.
func TestWindowMatchesSerial(t *testing.T) {
	build := func(log *[]int) *Engine {
		e := New()
		rng := rand.New(rand.NewSource(7))
		id := 0
		var add func(at float64, depth int)
		add = func(at float64, depth int) {
			me := id
			id++
			e.ScheduleTag(at, uint64(me), func(e *Engine) {
				*log = append(*log, me)
				if depth > 0 {
					// Same-time follow-up: must fire after every event
					// already queued at this timestamp.
					add(e.Now(), depth-1)
					add(e.Now()+float64(rng.Intn(3)), depth-1)
				}
			})
		}
		for i := 0; i < 40; i++ {
			add(float64(rng.Intn(8)), 2)
		}
		return e
	}

	var serial, windowed []int
	es := build(&serial)
	endS := es.Run()
	ew := build(&windowed)
	endW := windowRun(ew)

	if !reflect.DeepEqual(serial, windowed) {
		t.Fatalf("window firing order diverged from serial:\nserial   %v\nwindowed %v", serial, windowed)
	}
	if endS != endW || es.Fired() != ew.Fired() {
		t.Fatalf("final state diverged: serial (t=%g fired=%d) windowed (t=%g fired=%d)",
			endS, es.Fired(), endW, ew.Fired())
	}
}

// TestWindowCancelMidWindow has the first member of a window cancel the
// second; the second must not fire even though it was already popped.
func TestWindowCancelMidWindow(t *testing.T) {
	e := New()
	fired := []string{}
	var hb Handle
	e.Schedule(1, func(e *Engine) {
		fired = append(fired, "a")
		e.Cancel(hb)
	})
	hb = e.Schedule(1, func(e *Engine) { fired = append(fired, "b") })
	e.Schedule(1, func(e *Engine) { fired = append(fired, "c") })

	buf := e.NextWindow(nil)
	if len(buf) != 3 {
		t.Fatalf("window size %d, want 3", len(buf))
	}
	if !hb.Pending() {
		t.Fatal("windowed member should stay pending until fired")
	}
	if got := e.Pending(); got != 3 {
		t.Fatalf("Pending = %d mid-window, want 3 (un-fired members must count)", got)
	}
	n := 0
	for _, f := range buf {
		if e.FireWindowed(f) {
			n++
		}
	}
	if want := []string{"a", "c"}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if n != 2 || hb.Pending() {
		t.Fatalf("fired count %d (want 2), cancelled handle pending=%t", n, hb.Pending())
	}
}

// TestWindowRescheduleMidWindow moves a popped member: to a later time it
// must fire there; to the current time it must fire after every member of
// the current window — both identical to serial semantics.
func TestWindowRescheduleMidWindow(t *testing.T) {
	e := New()
	var fired []string
	var later, sameT Handle
	e.Schedule(1, func(e *Engine) {
		fired = append(fired, "a")
		later = e.Reschedule(later, 5)
		sameT = e.Reschedule(sameT, e.Now())
	})
	later = e.ScheduleTag(1, 42, func(e *Engine) { fired = append(fired, "later") })
	sameT = e.Schedule(1, func(e *Engine) { fired = append(fired, "same") })
	e.Schedule(1, func(e *Engine) { fired = append(fired, "b") })

	windowRun(e)
	want := []string{"a", "b", "same", "later"}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if e.Now() != 5 {
		t.Fatalf("clock %g, want 5", e.Now())
	}
	if later.ev.tag != 42 {
		t.Fatalf("reschedule dropped the tag: %d", later.ev.tag)
	}
}

// TestWindowHorizonAndDrop checks NextWindow refuses events beyond the
// horizon, and DropWindow returns popped members with their original order
// intact.
func TestWindowHorizonAndDrop(t *testing.T) {
	e := New()
	var fired []int
	for i := 0; i < 3; i++ {
		me := i
		e.Schedule(2, func(e *Engine) { fired = append(fired, me) })
	}
	e.Schedule(9, func(e *Engine) { fired = append(fired, 99) })
	e.SetHorizon(1)
	if buf := e.NextWindow(nil); len(buf) != 0 {
		t.Fatalf("NextWindow yielded %d events beyond the horizon", len(buf))
	}
	e.SetHorizon(100)

	buf := e.NextWindow(nil)
	if len(buf) != 3 {
		t.Fatalf("window size %d, want 3", len(buf))
	}
	e.FireWindowed(buf[0]) // partially execute, then unwind the rest
	e.DropWindow(buf[1:])
	e.Run()
	if want := []int{0, 1, 2, 99}; !reflect.DeepEqual(fired, want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

// TestWindowAllocationFree asserts the pop/fire cycle allocates nothing at
// steady state: events are pooled and the window buffer is caller scratch.
func TestWindowAllocationFree(t *testing.T) {
	e := New()
	var buf []Fired
	noop := func(e *Engine) {}
	cycle := func() {
		for i := 0; i < 4; i++ {
			e.ScheduleTag(e.Now()+1, uint64(i), noop)
		}
		buf = e.NextWindow(buf)
		for _, f := range buf {
			e.FireWindowed(f)
		}
	}
	cycle() // grow the pool and buffer once
	if got := testing.AllocsPerRun(50, cycle); got != 0 {
		t.Fatalf("window cycle allocates %.1f per iteration, want 0", got)
	}
}

// BenchmarkWindowCycle measures the windowed dispatch loop — schedule a
// same-time batch, pop it as one window, fire every member — against which
// the serial Step path's heap pop is the reference. The delta is the whole
// cost the windowed executor adds per event.
func BenchmarkWindowCycle(b *testing.B) {
	for _, batch := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			e := New()
			var buf []Fired
			noop := func(e *Engine) {}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k := 0; k < batch; k++ {
					e.ScheduleTag(e.Now()+1, uint64(k+1), noop)
				}
				buf = e.NextWindow(buf)
				for _, f := range buf {
					e.FireWindowed(f)
				}
			}
		})
	}
}
