package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

// parseCSV parses emitted CSV and returns header + rows, enforcing a
// rectangular shape (encoding/csv already errors on ragged rows).
func parseCSV(t *testing.T, buf *bytes.Buffer) ([]string, [][]string) {
	t.Helper()
	r := csv.NewReader(buf)
	all, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("empty CSV")
	}
	return all[0], all[1:]
}

func TestThroughputGridCSV(t *testing.T) {
	p := tiny()
	tr0, err := p.SyntheticTrace(0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := p.BaselineNorm(tr0.Jobs, p.SystemNodes)
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.ThroughputSweep(tr0.Jobs, p.SystemNodes, norm, "large 25%", 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header, rows := parseCSV(t, &buf)
	if strings.Join(header, ",") != "trace,overest,mem_pct,policy,norm_throughput" {
		t.Fatalf("header = %v", header)
	}
	if len(rows) != 8*3 {
		t.Fatalf("rows = %d, want 24 (8 configs × 3 policies)", len(rows))
	}
	// Infeasible cells are empty, feasible ones parse as floats.
	for _, row := range rows {
		if row[4] == "" {
			continue
		}
		if !strings.ContainsAny(row[4], "0123456789") {
			t.Fatalf("bad throughput cell %q", row[4])
		}
	}
}

func TestFig6CSV(t *testing.T) {
	p := tiny()
	f, err := RunFig6(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	header, rows := parseCSV(t, &buf)
	if header[0] != "scenario" || header[4] != "response_s" {
		t.Fatalf("header = %v", header)
	}
	if len(rows) == 0 {
		t.Fatal("no ECDF rows")
	}
}

func TestFig7CSV(t *testing.T) {
	p := tiny()
	f, err := RunFig7(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	_, rows := parseCSV(t, &buf)
	want := 8 * len(Fig7LargeFracs) * 2 // panels × mixes × policies
	if len(rows) != want {
		t.Fatalf("rows = %d, want %d", len(rows), want)
	}
}

func TestFig9CSV(t *testing.T) {
	p := tiny()
	f8, err := RunFig8(p, false)
	if err != nil {
		t.Fatal(err)
	}
	f9, err := Fig9FromFig8(f8, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f9.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	_, rows := parseCSV(t, &buf)
	if len(rows) != len(Fig8Overests)*2 {
		t.Fatalf("rows = %d", len(rows))
	}

	var buf8 bytes.Buffer
	if err := f8.WriteCSV(&buf8); err != nil {
		t.Fatal(err)
	}
	_, rows8 := parseCSV(t, &buf8)
	if len(rows8) != len(Fig8Overests)*8*3 {
		t.Fatalf("fig8 rows = %d", len(rows8))
	}
}

func TestTableAndFig24CSV(t *testing.T) {
	p := tiny()
	t2, err := RunTable2(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := t2.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	_, rows := parseCSV(t, &buf)
	if len(rows) != 5*3*2 { // buckets × classes × traces
		t.Fatalf("table2 rows = %d", len(rows))
	}

	t3, err := RunTable3(p)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := t3.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, rows = parseCSV(t, &buf); len(rows) != 4 {
		t.Fatalf("table3 rows = %d", len(rows))
	}

	f2, err := RunFig2(p)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f2.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, rows = parseCSV(t, &buf); len(rows) != p.GrizzlyWeeks {
		t.Fatalf("fig2 rows = %d", len(rows))
	}

	f4, err := RunFig4(p)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := f4.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, rows = parseCSV(t, &buf); len(rows) != 2*5*8 {
		t.Fatalf("fig4 rows = %d", len(rows))
	}
}

func TestAblationCSVs(t *testing.T) {
	p := tiny()
	au, err := RunAblationUpdateInterval(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := au.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, rows := parseCSV(t, &buf); len(rows) != len(UpdateIntervals) {
		t.Fatalf("update rows = %d", len(rows))
	}

	ao, err := RunAblationOOM(p)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ao.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, rows := parseCSV(t, &buf); len(rows) != 4 {
		t.Fatalf("oom rows = %d", len(rows))
	}

	ab, err := RunAblationBackfill(p)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, rows := parseCSV(t, &buf); len(rows) != 6 {
		t.Fatalf("backfill rows = %d", len(rows))
	}

	al, err := RunAblationLender(p)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := al.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, rows := parseCSV(t, &buf); len(rows) != 6 {
		t.Fatalf("lender rows = %d", len(rows))
	}
}
