package experiments

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"dismem/internal/sweep"
)

// Replication: quick-preset results are noisy, so headline metrics can be
// replicated across seeds and reported as mean ± standard deviation.

// Stat is a replicated scalar metric.
type Stat struct {
	Mean, Stdev float64
	N           int
}

func (s Stat) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean, s.Stdev, s.N)
}

// ErrNoSamples is returned when every replication failed or none ran.
var ErrNoSamples = errors.New("experiments: no replication samples")

// Replicate evaluates metric under `seeds` different preset seeds in
// parallel and aggregates the outcomes. NaN results (infeasible scenarios)
// are skipped; if everything is NaN the error is ErrNoSamples.
func Replicate(p Preset, seeds int, metric func(Preset) (float64, error)) (Stat, error) {
	if seeds < 1 {
		seeds = 1
	}
	tasks := make([]sweep.Task[float64], seeds)
	for i := 0; i < seeds; i++ {
		q := p
		q.Seed = p.Seed + int64(i)*7919 // distinct, deterministic seeds
		tasks[i] = func() (float64, error) { return metric(q) }
	}
	values, err := sweep.Values(sweep.Run(tasks, 0))
	if err != nil {
		return Stat{}, err
	}
	var sum float64
	var kept []float64
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		kept = append(kept, v)
		sum += v
	}
	if len(kept) == 0 {
		return Stat{}, ErrNoSamples
	}
	mean := sum / float64(len(kept))
	var sq float64
	for _, v := range kept {
		sq += (v - mean) * (v - mean)
	}
	stdev := 0.0
	if len(kept) > 1 {
		stdev = math.Sqrt(sq / float64(len(kept)-1))
	}
	return Stat{Mean: mean, Stdev: stdev, N: len(kept)}, nil
}

// Headlines replicates the paper's four headline metrics across seeds.
type Headlines struct {
	Seeds              int
	ThroughputGainPts  Stat // max dynamic−static normalised throughput, Fig. 5 grid
	TPDGainFrac        Stat // max dynamic/static−1 throughput per dollar, Fig. 7
	MedianRespReduct   Stat // underprovisioned +60 % median response reduction, Fig. 6
	MemorySavingPoints Stat // static−dynamic minimum provisioning gap, Fig. 9
}

// RunHeadlines replicates all four headline metrics. The four replications
// are independent and run concurrently on the shared pool; within each,
// Replicate fans the seeds out too, and every (figure, seed) trace request
// dedupes through the tracegen cache — a replication seed generates its
// 50 %-mix trace once, not once per figure. Errors surface in the fixed
// metric order the serial code used.
func RunHeadlines(p Preset, seeds int) (*Headlines, error) {
	pool := sweep.SharedPool()
	throughput := sweep.Submit(pool, func() (Stat, error) {
		return Replicate(p, seeds, func(q Preset) (float64, error) {
			f5, err := RunFig5(q, false)
			if err != nil {
				return 0, err
			}
			return f5.DynamicAdvantage(), nil
		})
	})
	tpd := sweep.Submit(pool, func() (Stat, error) {
		return Replicate(p, seeds, func(q Preset) (float64, error) {
			f7, err := RunFig7(q)
			if err != nil {
				return 0, err
			}
			return f7.MaxDynamicGain(), nil
		})
	})
	resp := sweep.Submit(pool, func() (Stat, error) {
		return Replicate(p, seeds, func(q Preset) (float64, error) {
			f6, err := RunFig6(q)
			if err != nil {
				return 0, err
			}
			best := math.NaN()
			for _, panel := range f6.Panels {
				if panel.Overest > 0 && panel.Scenario == "underprovisioned" &&
					panel.Static != nil && panel.Dynamic != nil {
					r := panel.MedianReduction()
					if math.IsNaN(best) || r > best {
						best = r
					}
				}
			}
			return best, nil
		})
	})
	saving := sweep.Submit(pool, func() (Stat, error) {
		return Replicate(p, seeds, func(q Preset) (float64, error) {
			f9, err := RunFig9(q)
			if err != nil {
				return 0, err
			}
			return float64(f9.MaxMemorySaving()), nil
		})
	})

	out := &Headlines{Seeds: seeds}
	var err error
	if out.ThroughputGainPts, err = throughput.Get(); err != nil {
		return nil, err
	}
	if out.TPDGainFrac, err = tpd.Get(); err != nil {
		return nil, err
	}
	if out.MedianRespReduct, err = resp.Get(); err != nil {
		return nil, err
	}
	if out.MemorySavingPoints, err = saving.Get(); err != nil {
		return nil, err
	}
	return out, nil
}

func (h *Headlines) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline metrics over %d seeds (mean ± stdev)\n\n", h.Seeds)
	fmt.Fprintf(&b, "max throughput gain (dyn−static):     %s   (paper: up to 0.13)\n", h.ThroughputGainPts)
	fmt.Fprintf(&b, "max throughput-per-$ gain:            %s   (paper: up to 0.38)\n", h.TPDGainFrac)
	fmt.Fprintf(&b, "median response reduction (+60%%):     %s   (paper: 0.69)\n", h.MedianRespReduct)
	fmt.Fprintf(&b, "memory saving at 95%% (pct points):    %s   (paper: ~40)\n", h.MemorySavingPoints)
	return b.String()
}
