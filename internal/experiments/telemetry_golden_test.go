package experiments

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"dismem/internal/core"
	"dismem/internal/policy"
	"dismem/internal/telemetry"
)

// goldenTelemetryDigest is the SHA-256 of the JSONL event log produced by
// the Bench-preset dynamic-policy scenario below. It locks the telemetry
// determinism guarantee end to end: same seed and parameters ⇒ byte-identical
// event log — through the trace generator, the simulator's emission points,
// and the hand-rolled JSONL encoder. A digest change means event content,
// ordering, or encoding changed; that is an intentional format change or a
// bug, never drift.
//
// To regenerate after an intentional change, run the test and copy the
// "got" digest it prints on failure.
const goldenTelemetryDigest = "9c5e98f8ef78f258dd19b639f0a6582a429b8b46cec76e12c7326e7dc1383faf"

func benchTelemetryLog(t *testing.T) []byte {
	t.Helper()
	p := Bench()
	tr, err := p.SyntheticTrace(0.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MemConfigByPct(62)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := telemetry.New(telemetry.Options{
		Sink:           telemetry.NewJSONL(&buf),
		SampleInterval: 300,
	})
	if _, err := p.RunScenarioWith(tr.Jobs, p.SystemNodes, mc, policy.Dynamic,
		func(cfg *core.Config) { cfg.Telemetry = rec }); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGoldenTelemetryEventLog(t *testing.T) {
	if testing.Short() {
		t.Skip("golden telemetry digest skipped in -short mode")
	}
	a := benchTelemetryLog(t)
	if len(a) == 0 {
		t.Fatal("empty event log")
	}
	sum := sha256.Sum256(a)
	if got := hex.EncodeToString(sum[:]); got != goldenTelemetryDigest {
		t.Errorf("telemetry event log digest changed:\n got %s\nwant %s", got, goldenTelemetryDigest)
	}
	// Two in-process runs must agree byte for byte as well — this holds
	// even when the digest above is being intentionally regenerated.
	b := benchTelemetryLog(t)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed and parameters produced different event logs")
	}
	// And the log must round-trip through the reader.
	log, err := telemetry.ReadLog(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	if len(log.Events) == 0 || log.Series.Len() == 0 {
		t.Fatalf("decoded log empty: %d events, %d samples", len(log.Events), log.Series.Len())
	}
}
