package experiments

import (
	"fmt"
	"strings"
)

// Fig2 reproduces Figure 2: every one-week period of the Grizzly dataset as
// a point (CPU utilisation, max job node-hours, max job memory), with the
// simulated (sampled) weeks flagged. The paper samples weeks with ≥ 70 %
// utilisation.
type Fig2 struct {
	Points []Fig2Point
	// Normalisation constants for the y axes (the paper normalises both
	// metrics to [0,1]).
	MaxNodeHours float64
	MaxMemMB     int64
}

// Fig2Point is one week.
type Fig2Point struct {
	Week        int
	Utilization float64
	NodeHours   float64 // max job node-hours in the week
	MemMB       int64   // max per-node job memory in the week
	Sampled     bool
}

// RunFig2 builds the dataset and samples seven representative weeks, as in
// the paper.
func RunFig2(p Preset) (*Fig2, error) {
	d := p.GrizzlyDataset()
	sampled, err := d.SampleWeeks(newRand(p.Seed+4000), 0.7, 7)
	if err != nil {
		return nil, err
	}
	chosen := map[int]bool{}
	for _, w := range sampled {
		chosen[w.Index] = true
	}
	out := &Fig2{}
	for i := range d.Weeks {
		w := &d.Weeks[i]
		pt := Fig2Point{
			Week:        w.Index,
			Utilization: w.Utilization,
			NodeHours:   w.MaxJobNodeHours(),
			MemMB:       w.MaxJobMemMB(),
			Sampled:     chosen[w.Index],
		}
		if pt.NodeHours > out.MaxNodeHours {
			out.MaxNodeHours = pt.NodeHours
		}
		if pt.MemMB > out.MaxMemMB {
			out.MaxMemMB = pt.MemMB
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

func (f *Fig2) String() string {
	var b strings.Builder
	b.WriteString("Figure 2: Grizzly one-week periods (sampled weeks marked *)\n\n")
	fmt.Fprintf(&b, "%6s %8s %14s %14s\n", "week", "util%", "norm-node-h", "norm-max-mem")
	for _, pt := range f.Points {
		mark := " "
		if pt.Sampled {
			mark = "*"
		}
		nh, mm := 0.0, 0.0
		if f.MaxNodeHours > 0 {
			nh = pt.NodeHours / f.MaxNodeHours
		}
		if f.MaxMemMB > 0 {
			mm = float64(pt.MemMB) / float64(f.MaxMemMB)
		}
		fmt.Fprintf(&b, "%5d%s %8.1f %14.3f %14.3f\n", pt.Week, mark, pt.Utilization*100, nh, mm)
	}
	return b.String()
}

// Fig4 reproduces Figure 4: heatmaps of the share of jobs per (job size
// bin, per-node memory bucket) cell, for average and maximum memory usage,
// on the synthetic trace.
type Fig4 struct {
	SizeBins []string
	MemBins  []string
	Avg      [][]float64 // [mem bin][size bin] share of jobs
	Max      [][]float64
	Jobs     int
}

// Fig4SizeEdges are the paper's size bins: [1,1] [2,2] (2,4] (4,8] (8,16]
// (16,32] (32,64] (64,128].
var fig4SizeEdges = []int{1, 2, 4, 8, 16, 32, 64, 128}

// fig4MemEdgesGB are the memory buckets in GB/node.
var fig4MemEdgesGB = []float64{12, 24, 48, 96, 128}

// RunFig4 generates the 50 % large-job synthetic trace and bins it.
func RunFig4(p Preset) (*Fig4, error) {
	tr, err := p.SyntheticTrace(0.5, 0)
	if err != nil {
		return nil, err
	}
	out := &Fig4{Jobs: len(tr.Jobs)}
	out.SizeBins = []string{"[1,1]", "[2,2]", "(2,4]", "(4,8]", "(8,16]", "(16,32]", "(32,64]", "(64,128]"}
	out.MemBins = []string{"[0,12)", "[12,24)", "[24,48)", "[48,96)", "[96,128)"}
	out.Avg = newGrid(len(out.MemBins), len(out.SizeBins))
	out.Max = newGrid(len(out.MemBins), len(out.SizeBins))

	for _, j := range tr.Jobs {
		s := sizeBin(j.Nodes)
		maxMB := j.PeakUsageMB()
		avg, err := j.Usage.MeanOver(j.BaseRuntime)
		if err != nil {
			return nil, err
		}
		out.Max[memBin(float64(maxMB)/1024)][s]++
		out.Avg[memBin(avg/1024)][s]++
	}
	n := float64(len(tr.Jobs))
	for _, grid := range [][][]float64{out.Avg, out.Max} {
		for i := range grid {
			for k := range grid[i] {
				grid[i][k] /= n
			}
		}
	}
	return out, nil
}

func newGrid(rows, cols int) [][]float64 {
	g := make([][]float64, rows)
	for i := range g {
		g[i] = make([]float64, cols)
	}
	return g
}

func sizeBin(nodes int) int {
	for i, hi := range fig4SizeEdges {
		if nodes <= hi {
			return i
		}
	}
	return len(fig4SizeEdges) - 1
}

func memBin(gb float64) int {
	for i, hi := range fig4MemEdgesGB {
		if gb < hi {
			return i
		}
	}
	return len(fig4MemEdgesGB) - 1
}

func (f *Fig4) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: share of jobs per (size, memory) cell\n")
	for _, part := range []struct {
		name string
		grid [][]float64
	}{{"average memory used (GB/node)", f.Avg}, {"maximum memory used (GB/node)", f.Max}} {
		fmt.Fprintf(&b, "\n%s\n%-9s", part.name, "")
		for _, s := range f.SizeBins {
			fmt.Fprintf(&b, " %8s", s)
		}
		b.WriteString("\n")
		// Print top bucket first, like the paper's heatmap.
		for i := len(f.MemBins) - 1; i >= 0; i-- {
			fmt.Fprintf(&b, "%-9s", f.MemBins[i])
			for k := range f.SizeBins {
				fmt.Fprintf(&b, " %7.2f%%", part.grid[i][k]*100)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
