package experiments

import (
	"fmt"
	"math"
	"strings"

	"dismem/internal/job"
	"dismem/internal/policy"
	"dismem/internal/sweep"
)

// Infeasible marks a missing bar: the scenario cannot run all jobs.
var Infeasible = math.NaN()

// ThroughputRow is one memory configuration's normalised throughput per
// policy; NaN marks the paper's "missing bars".
type ThroughputRow struct {
	MemPct   int
	Baseline float64
	Static   float64
	Dynamic  float64
}

// ThroughputGrid is one panel of Figures 5 and 8: normalised throughput as
// a function of total system memory.
type ThroughputGrid struct {
	Trace   string  // column label ("large 50%", "grizzly", …)
	Overest float64 // row label
	Rows    []ThroughputRow
}

// BaselineNorm computes the normalisation denominator: the baseline
// policy's throughput on the 100 %-memory system. The paper normalises
// every panel against it; per its methodology the denominator uses the
// accurate (+0 % overestimation) variant of the trace.
func (p Preset) BaselineNorm(jobs0 []*job.Job, nodes int) (float64, error) {
	mc, err := MemConfigByPct(100)
	if err != nil {
		return 0, err
	}
	res, err := p.RunScenario(jobs0, nodes, mc, policy.Baseline)
	if err != nil {
		return 0, err
	}
	if res.Infeasible || res.Throughput() == 0 {
		return 0, fmt.Errorf("experiments: baseline at 100%% memory infeasible (job %d)", res.InfeasibleJob)
	}
	return res.Throughput(), nil
}

// ThroughputSweep runs all three policies over every memory configuration
// and normalises by norm. The 24 scenarios are independent simulations and
// run in parallel across the available cores.
func (p Preset) ThroughputSweep(jobs []*job.Job, nodes int, norm float64, trace string, overest float64) (*ThroughputGrid, error) {
	mcs := MemoryConfigs()
	pols := []policy.Kind{policy.Baseline, policy.Static, policy.Dynamic}

	tasks := make([]sweep.Task[float64], 0, len(mcs)*len(pols))
	for _, mc := range mcs {
		for _, pol := range pols {
			mc, pol := mc, pol
			tasks = append(tasks, func() (float64, error) {
				res, err := p.RunScenario(jobs, nodes, mc, pol)
				if err != nil {
					return 0, err
				}
				if res.Infeasible {
					return Infeasible, nil
				}
				return res.Throughput() / norm, nil
			})
		}
	}
	values, err := sweep.Values(sweep.Run(tasks, 0))
	if err != nil {
		return nil, err
	}

	g := &ThroughputGrid{Trace: trace, Overest: overest}
	for i, mc := range mcs {
		base := i * len(pols)
		g.Rows = append(g.Rows, ThroughputRow{
			MemPct:   mc.LabelPct,
			Baseline: values[base],
			Static:   values[base+1],
			Dynamic:  values[base+2],
		})
	}
	return g, nil
}

// GrizzlyGrid runs the sweep over every sampled Grizzly week and averages
// the normalised throughputs point-wise, as the paper aggregates its seven
// simulated weeks. Each week is normalised against its own +0 % baseline.
// A cell is infeasible if any week cannot run its jobs there.
func (p Preset) GrizzlyGrid(overest float64) (*ThroughputGrid, error) {
	traces0, err := p.GrizzlyTraces(0)
	if err != nil {
		return nil, err
	}
	tracesOv := traces0
	if overest != 0 {
		if tracesOv, err = p.GrizzlyTraces(overest); err != nil {
			return nil, err
		}
	}
	if len(tracesOv) != len(traces0) {
		return nil, fmt.Errorf("experiments: grizzly week count changed across overestimations")
	}
	// One norm-then-sweep chain per sampled week, all weeks in flight at
	// once on the shared pool.
	pool := sweep.SharedPool()
	futs := make([]*sweep.Future[*ThroughputGrid], len(traces0))
	for i := range traces0 {
		i := i
		futs[i] = sweep.Submit(pool, func() (*ThroughputGrid, error) {
			norm, err := p.BaselineNorm(traces0[i], p.GrizzlyNodes)
			if err != nil {
				return nil, err
			}
			return p.ThroughputSweep(tracesOv[i], p.GrizzlyNodes, norm, "grizzly", overest)
		})
	}
	grids, err := sweep.CollectValues(futs)
	if err != nil {
		return nil, err
	}
	return averageGrids(grids), nil
}

// averageGrids averages matching cells; a cell infeasible in any input
// stays infeasible.
func averageGrids(grids []*ThroughputGrid) *ThroughputGrid {
	if len(grids) == 1 {
		return grids[0]
	}
	out := &ThroughputGrid{Trace: grids[0].Trace, Overest: grids[0].Overest}
	for ri := range grids[0].Rows {
		row := ThroughputRow{MemPct: grids[0].Rows[ri].MemPct}
		var b, s, d float64
		bad := [3]bool{}
		for _, g := range grids {
			r := g.Rows[ri]
			for k, v := range [3]float64{r.Baseline, r.Static, r.Dynamic} {
				if math.IsNaN(v) {
					bad[k] = true
				}
			}
			b += r.Baseline
			s += r.Static
			d += r.Dynamic
		}
		n := float64(len(grids))
		row.Baseline, row.Static, row.Dynamic = b/n, s/n, d/n
		if bad[0] {
			row.Baseline = Infeasible
		}
		if bad[1] {
			row.Static = Infeasible
		}
		if bad[2] {
			row.Dynamic = Infeasible
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// String renders the grid as the paper's bar values.
func (g *ThroughputGrid) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace=%s  overestimation=+%.0f%%\n", g.Trace, g.Overest*100)
	fmt.Fprintf(&b, "%8s %10s %10s %10s\n", "mem%", "baseline", "static", "dynamic")
	for _, r := range g.Rows {
		fmt.Fprintf(&b, "%8d %10s %10s %10s\n",
			r.MemPct, cell(r.Baseline), cell(r.Static), cell(r.Dynamic))
	}
	return b.String()
}

func cell(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}
