package experiments

import (
	"fmt"
	"strings"

	"dismem/internal/core"
	"dismem/internal/metrics"
	"dismem/internal/policy"
	"dismem/internal/topology"
	"dismem/internal/tracegen"
)

// The ablation experiments probe the design choices the paper discusses in
// §2.2 but does not sweep: the memory-update interval ("a critical
// parameter"), Fail/Restart vs Checkpoint/Restart OOM handling, the EASY
// backfill pass, and the lender-selection order on a torus interconnect.
// All run on the underprovisioned, overestimated scenario where the dynamic
// policy matters most (50 % large jobs, +60 %, 50 % memory).

// ablationScenario fixes the common workload and system.
func (p Preset) ablationScenario() (jobsAndSystem, error) {
	tr, err := p.SyntheticTrace(0.5, 0.6)
	if err != nil {
		return jobsAndSystem{}, err
	}
	tr0, err := p.SyntheticTrace(0.5, 0)
	if err != nil {
		return jobsAndSystem{}, err
	}
	norm, err := p.BaselineNorm(tr0.Jobs, p.SystemNodes)
	if err != nil {
		return jobsAndSystem{}, err
	}
	mc, err := MemConfigByPct(50)
	if err != nil {
		return jobsAndSystem{}, err
	}
	return jobsAndSystem{trace: tr, mc: mc, norm: norm}, nil
}

type jobsAndSystem struct {
	trace *tracegen.Output
	mc    MemConfig
	norm  float64
}

// AblationUpdateInterval sweeps the Monitor's update period.
type AblationUpdateInterval struct {
	Rows []UpdateIntervalRow
}

// UpdateIntervalRow is one interval's outcome.
type UpdateIntervalRow struct {
	IntervalSec    float64
	NormThroughput float64
	OOMKills       int
	Resizes        int
	ReclaimedGB    float64
}

// UpdateIntervals swept by the ablation; 300 s is the paper's setting.
var UpdateIntervals = []float64{60, 300, 900, 1800}

// RunAblationUpdateInterval executes the sweep.
func RunAblationUpdateInterval(p Preset) (*AblationUpdateInterval, error) {
	sc, err := p.ablationScenario()
	if err != nil {
		return nil, err
	}
	out := &AblationUpdateInterval{}
	for _, iv := range UpdateIntervals {
		var tally core.Tally
		res, err := p.RunScenarioWith(sc.trace.Jobs, p.SystemNodes, sc.mc, policy.Dynamic,
			func(cfg *core.Config) {
				cfg.UpdateInterval = iv
				cfg.Observer = &tally
			})
		if err != nil {
			return nil, err
		}
		row := UpdateIntervalRow{IntervalSec: iv, NormThroughput: Infeasible}
		if !res.Infeasible {
			row.NormThroughput = res.Throughput() / sc.norm
			row.OOMKills = res.OOMKills
			row.Resizes = tally.Resizes
			row.ReclaimedGB = float64(tally.ReclaimedMB) / 1024
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func (a *AblationUpdateInterval) String() string {
	var b strings.Builder
	b.WriteString("Ablation: memory-update interval (dynamic, 50% mem, +60% overest)\n\n")
	fmt.Fprintf(&b, "%10s %12s %8s %9s %12s\n", "interval", "throughput", "OOM", "resizes", "reclaimedGB")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%9.0fs %12s %8d %9d %12.0f\n",
			r.IntervalSec, cell(r.NormThroughput), r.OOMKills, r.Resizes, r.ReclaimedGB)
	}
	return b.String()
}

// AblationOOM compares Fail/Restart against Checkpoint/Restart with
// several checkpoint intervals.
type AblationOOM struct {
	Rows []OOMRow
}

// OOMRow is one OOM-handling configuration's outcome.
type OOMRow struct {
	Label          string
	NormThroughput float64
	OOMKills       int
	Abandoned      int
	MedianResponse float64
}

// RunAblationOOM executes the comparison.
func RunAblationOOM(p Preset) (*AblationOOM, error) {
	sc, err := p.ablationScenario()
	if err != nil {
		return nil, err
	}
	configs := []struct {
		label  string
		mutate func(*core.Config)
	}{
		{"fail/restart", func(cfg *core.Config) { cfg.OOM = core.FailRestart }},
		{"c/r ideal", func(cfg *core.Config) { cfg.OOM = core.CheckpointRestart }},
		{"c/r 10min", func(cfg *core.Config) {
			cfg.OOM = core.CheckpointRestart
			cfg.CheckpointInterval = 600
		}},
		{"c/r 1h", func(cfg *core.Config) {
			cfg.OOM = core.CheckpointRestart
			cfg.CheckpointInterval = 3600
		}},
	}
	out := &AblationOOM{}
	for _, c := range configs {
		res, err := p.RunScenarioWith(sc.trace.Jobs, p.SystemNodes, sc.mc, policy.Dynamic, c.mutate)
		if err != nil {
			return nil, err
		}
		row := OOMRow{Label: c.label, NormThroughput: Infeasible}
		if !res.Infeasible {
			row.NormThroughput = res.Throughput() / sc.norm
			row.OOMKills = res.OOMKills
			row.Abandoned = res.Abandoned
			if rts := res.ResponseTimes(); len(rts) > 0 {
				e, err := metrics.NewECDF(rts)
				if err != nil {
					return nil, err
				}
				row.MedianResponse = e.Median()
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func (a *AblationOOM) String() string {
	var b strings.Builder
	b.WriteString("Ablation: out-of-memory handling (dynamic, 50% mem, +60% overest)\n\n")
	fmt.Fprintf(&b, "%-14s %12s %6s %10s %14s\n", "mode", "throughput", "OOM", "abandoned", "median-resp(s)")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-14s %12s %6d %10d %14.0f\n",
			r.Label, cell(r.NormThroughput), r.OOMKills, r.Abandoned, r.MedianResponse)
	}
	return b.String()
}

// AblationBackfill compares the backfill algorithms: EASY (the paper's),
// conservative (per-job reservations), and strict FIFO.
type AblationBackfill struct {
	Rows []BackfillRow
}

// BackfillRow is one (policy, algorithm) cell.
type BackfillRow struct {
	Policy         string
	Mode           string
	NormThroughput float64
	MedianWait     float64
}

// Backfill reports whether the row used any backfill (kept for the CSV
// consumers that predate the three-way comparison).
func (r BackfillRow) Backfill() bool { return r.Mode != "none" }

// RunAblationBackfill executes the comparison for static and dynamic.
func RunAblationBackfill(p Preset) (*AblationBackfill, error) {
	sc, err := p.ablationScenario()
	if err != nil {
		return nil, err
	}
	out := &AblationBackfill{}
	for _, pol := range []policy.Kind{policy.Static, policy.Dynamic} {
		for _, mode := range []core.BackfillMode{core.EASYBackfill, core.ConservativeBackfill, core.NoBackfill} {
			mode := mode
			res, err := p.RunScenarioWith(sc.trace.Jobs, p.SystemNodes, sc.mc, pol,
				func(cfg *core.Config) { cfg.Backfill = mode })
			if err != nil {
				return nil, err
			}
			row := BackfillRow{Policy: pol.String(), Mode: mode.String(), NormThroughput: Infeasible}
			if !res.Infeasible {
				row.NormThroughput = res.Throughput() / sc.norm
				var waits []float64
				for i := range res.Records {
					if w := res.Records[i].WaitTime(); w >= 0 {
						waits = append(waits, w)
					}
				}
				if len(waits) > 0 {
					e, err := metrics.NewECDF(waits)
					if err != nil {
						return nil, err
					}
					row.MedianWait = e.Median()
				}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (a *AblationBackfill) String() string {
	var b strings.Builder
	b.WriteString("Ablation: backfill algorithm (50% mem, +60% overest)\n\n")
	fmt.Fprintf(&b, "%-9s %-13s %12s %14s\n", "policy", "backfill", "throughput", "median-wait(s)")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-9s %-13s %12s %14.0f\n", r.Policy, r.Mode, cell(r.NormThroughput), r.MedianWait)
	}
	return b.String()
}

// AblationPriority probes the paper's fairness mitigation: raising a job's
// priority after repeated OOM failures (§2.2). It compares boosting after
// the first failure, the default third failure, and never.
type AblationPriority struct {
	Rows []PriorityRow
}

// PriorityRow is one boost setting's outcome.
type PriorityRow struct {
	Label          string
	NormThroughput float64
	OOMKills       int
	MaxRestarts    int     // worst single job
	Fairness       float64 // Jain's index over response times (1 = equal)
}

// RunAblationPriority executes the comparison on a tighter system (37 %
// memory) where OOM restarts actually occur.
func RunAblationPriority(p Preset) (*AblationPriority, error) {
	tr, err := p.SyntheticTrace(0.5, 0.6)
	if err != nil {
		return nil, err
	}
	tr0, err := p.SyntheticTrace(0.5, 0)
	if err != nil {
		return nil, err
	}
	norm, err := p.BaselineNorm(tr0.Jobs, p.SystemNodes)
	if err != nil {
		return nil, err
	}
	mc, err := MemConfigByPct(43)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		label string
		boost int
	}{
		{"boost after 1", 1},
		{"boost after 3", 3},
		{"never boost", 1 << 30},
	}
	out := &AblationPriority{}
	for _, c := range configs {
		boost := c.boost
		res, err := p.RunScenarioWith(tr.Jobs, p.SystemNodes, mc, policy.Dynamic,
			func(cfg *core.Config) { cfg.PriorityBoost = boost })
		if err != nil {
			return nil, err
		}
		row := PriorityRow{Label: c.label, NormThroughput: Infeasible}
		if !res.Infeasible {
			row.NormThroughput = res.Throughput() / norm
			row.OOMKills = res.OOMKills
			for i := range res.Records {
				if r := res.Records[i].Restarts; r > row.MaxRestarts {
					row.MaxRestarts = r
				}
			}
			row.Fairness = metrics.JainFairness(invert(res.ResponseTimes()))
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// invert maps response times to rates so Jain's index rewards uniformly
// low response times.
func invert(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x > 0 {
			out[i] = 1 / x
		}
	}
	return out
}

func (a *AblationPriority) String() string {
	var b strings.Builder
	b.WriteString("Ablation: priority boost after OOM failures (dynamic, 43% mem, +60% overest)\n\n")
	fmt.Fprintf(&b, "%-15s %12s %6s %13s %10s\n", "setting", "throughput", "OOM", "max-restarts", "fairness")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-15s %12s %6d %13d %10.3f\n",
			r.Label, cell(r.NormThroughput), r.OOMKills, r.MaxRestarts, r.Fairness)
	}
	return b.String()
}

// AblationLender compares lender-selection orders under hop penalties on a
// torus.
type AblationLender struct {
	Rows []LenderRow
}

// LenderRow is one (order, hop penalty) cell.
type LenderRow struct {
	Order          string
	HopPenalty     float64
	NormThroughput float64
}

// RunAblationLender executes the comparison.
func RunAblationLender(p Preset) (*AblationLender, error) {
	sc, err := p.ablationScenario()
	if err != nil {
		return nil, err
	}
	torus := topology.Design(p.SystemNodes)
	out := &AblationLender{}
	for _, hp := range []float64{0, 0.25, 1.0} {
		for _, lp := range []core.LenderPolicy{core.MostFree, core.NearestFirst} {
			hp, lp := hp, lp
			res, err := p.RunScenarioWith(sc.trace.Jobs, p.SystemNodes, sc.mc, policy.Dynamic,
				func(cfg *core.Config) {
					cfg.Topology = &torus
					cfg.LenderPolicy = lp
					cfg.HopPenalty = hp
				})
			if err != nil {
				return nil, err
			}
			row := LenderRow{Order: lp.String(), HopPenalty: hp, NormThroughput: Infeasible}
			if !res.Infeasible {
				row.NormThroughput = res.Throughput() / sc.norm
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out, nil
}

func (a *AblationLender) String() string {
	var b strings.Builder
	b.WriteString("Ablation: lender selection on a torus (dynamic, 50% mem, +60% overest)\n\n")
	fmt.Fprintf(&b, "%-14s %11s %12s\n", "order", "hop-penalty", "throughput")
	for _, r := range a.Rows {
		fmt.Fprintf(&b, "%-14s %11.2f %12s\n", r.Order, r.HopPenalty, cell(r.NormThroughput))
	}
	return b.String()
}
