package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dismem/internal/core"
	"dismem/internal/metrics"
	"dismem/internal/policy"
	"dismem/internal/sweep"
	"dismem/internal/telemetry"
	"dismem/internal/tracegen"
)

// ScenarioSpec is a user-defined experiment, loaded from JSON: one
// generated workload swept over memory configurations and policies with
// custom simulator knobs. It exposes the same machinery the built-in
// figures use, so downstream users can define studies without writing Go.
//
// Example:
//
//	{
//	  "name": "my-study",
//	  "trace": {"model": "lublin", "large_frac": 0.25, "overestimation": 0.5},
//	  "mem_pcts": [50, 75, 100],
//	  "policies": ["static", "dynamic"],
//	  "backfill": "conservative",
//	  "update_interval_s": 120,
//	  "oom": "checkpoint_restart"
//	}
type ScenarioSpec struct {
	Name  string `json:"name"`
	Trace struct {
		Model          string  `json:"model"`          // cirne (default) | lublin
		LargeFrac      float64 `json:"large_frac"`     // fraction of large-memory jobs
		Overestimation float64 `json:"overestimation"` // request inflation
		ChainFrac      float64 `json:"chain_frac"`     // dependency chains
		Load           float64 `json:"load"`           // 0 = preset default
		Days           float64 `json:"days"`           // 0 = preset default
		SystemNodes    int     `json:"system_nodes"`   // 0 = preset default
		Seed           int64   `json:"seed"`           // 0 = preset default
	} `json:"trace"`
	MemPcts          []int    `json:"mem_pcts"`          // empty = all eight configurations
	Policies         []string `json:"policies"`          // empty = baseline, static, dynamic
	Backfill         string   `json:"backfill"`          // easy (default) | conservative | none
	UpdateInterval   float64  `json:"update_interval_s"` // 0 = preset default
	OOM              string   `json:"oom"`               // fail_restart (default) | checkpoint_restart
	EnforceTimeLimit bool     `json:"enforce_time_limit"`
	Pressure         string   `json:"pressure"` // global (default) | domains
	Domains          int      `json:"domains"`  // pressure-domain count (0 = derive; needs pressure=domains)

	// Telemetry, when non-nil, builds one private recorder per
	// (memory, policy) cell. Cells run on parallel sweep workers, so a
	// shared recorder would interleave nondeterministically; a
	// recorder-per-cell keeps each cell's event log byte-deterministic.
	// The factory is called from the cell's worker; the recorder is closed
	// when that cell's simulation finishes. Returning nil disables
	// telemetry for the cell. Set programmatically (dmpexp -telemetry);
	// not part of the JSON schema.
	Telemetry func(memPct int, pol string) *telemetry.Recorder `json:"-"`
}

// LoadScenario parses and validates a spec. Unknown fields are rejected
// (the daemon serves untrusted documents, and a typoed knob silently
// falling back to a default would return a confidently wrong simulation),
// and every enum error names the offending JSON field.
func LoadScenario(r io.Reader) (*ScenarioSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s ScenarioSpec
	if err := dec.Decode(&s); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, errors.New("scenario: empty spec (want a JSON object)")
		}
		return nil, fmt.Errorf("scenario: %v", err)
	}
	if s.Name == "" {
		s.Name = "scenario"
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Validate checks every enum and range field, naming the JSON field in each
// error so a daemon client can map the message back to its document.
func (s *ScenarioSpec) Validate() error {
	if _, err := s.policies(); err != nil {
		return err
	}
	if _, err := s.backfill(); err != nil {
		return err
	}
	if _, err := s.oom(); err != nil {
		return err
	}
	if _, err := s.pressure(); err != nil {
		return err
	}
	for _, pct := range s.MemPcts {
		if _, err := MemConfigByPct(pct); err != nil {
			return fmt.Errorf("scenario: field %q: %v", "mem_pcts", err)
		}
	}
	if s.Trace.LargeFrac < 0 || s.Trace.LargeFrac > 1 {
		return fmt.Errorf("scenario: field %q: %g out of [0,1]", "trace.large_frac", s.Trace.LargeFrac)
	}
	if s.Trace.ChainFrac < 0 || s.Trace.ChainFrac > 1 {
		return fmt.Errorf("scenario: field %q: %g out of [0,1]", "trace.chain_frac", s.Trace.ChainFrac)
	}
	if s.Trace.Overestimation < 0 {
		return fmt.Errorf("scenario: field %q: %g is negative", "trace.overestimation", s.Trace.Overestimation)
	}
	if s.UpdateInterval < 0 {
		return fmt.Errorf("scenario: field %q: %g is negative", "update_interval_s", s.UpdateInterval)
	}
	return nil
}

func (s *ScenarioSpec) policies() ([]policy.Kind, error) {
	if len(s.Policies) == 0 {
		return []policy.Kind{policy.Baseline, policy.Static, policy.Dynamic}, nil
	}
	var out []policy.Kind
	for i, name := range s.Policies {
		switch strings.ToLower(name) {
		case "baseline":
			out = append(out, policy.Baseline)
		case "static":
			out = append(out, policy.Static)
		case "dynamic":
			out = append(out, policy.Dynamic)
		default:
			return nil, fmt.Errorf("scenario: field %q: unknown policy %q (want baseline, static, or dynamic)",
				fmt.Sprintf("policies[%d]", i), name)
		}
	}
	return out, nil
}

func (s *ScenarioSpec) backfill() (core.BackfillMode, error) {
	switch strings.ToLower(s.Backfill) {
	case "", "easy":
		return core.EASYBackfill, nil
	case "conservative":
		return core.ConservativeBackfill, nil
	case "none":
		return core.NoBackfill, nil
	}
	return 0, fmt.Errorf("scenario: field %q: unknown mode %q (want easy, conservative, or none)",
		"backfill", s.Backfill)
}

func (s *ScenarioSpec) oom() (core.OOMMode, error) {
	switch strings.ToLower(s.OOM) {
	case "", "fail_restart":
		return core.FailRestart, nil
	case "checkpoint_restart":
		return core.CheckpointRestart, nil
	}
	return 0, fmt.Errorf("scenario: field %q: unknown mode %q (want fail_restart or checkpoint_restart)",
		"oom", s.OOM)
}

func (s *ScenarioSpec) pressure() (core.PressureMode, error) {
	switch strings.ToLower(s.Pressure) {
	case "", "global":
		if s.Domains != 0 {
			return 0, fmt.Errorf("scenario: field %q: set to %d without %q: %q",
				"domains", s.Domains, "pressure", "domains")
		}
		return core.PressureGlobal, nil
	case "domains":
		if s.Domains < 0 {
			return 0, fmt.Errorf("scenario: field %q: negative count %d", "domains", s.Domains)
		}
		return core.PressureDomains, nil
	}
	return 0, fmt.Errorf("scenario: field %q: unknown mode %q (want global or domains)",
		"pressure", s.Pressure)
}

// ScenarioResult is the sweep outcome: one row per (memory, policy).
type ScenarioResult struct {
	Name string
	Rows []ScenarioRow
}

// ScenarioRow carries absolute metrics (the spec defines no baseline to
// normalise against).
type ScenarioRow struct {
	MemPct         int
	Policy         string
	Throughput     float64 // jobs/s; NaN = infeasible
	MedianResponse float64
	OOMKills       int
	MeanStretch    float64
}

// scenarioTraceParams resolves the preset/spec overlay into the trace
// pipeline's parameters: spec values override the preset's scale knobs
// where set. RunScenarioSpecCtx and ScenarioKey share it, so the key can
// never drift from what actually runs.
func (p Preset) scenarioTraceParams(s *ScenarioSpec) tracegen.Params {
	nodes := p.SystemNodes
	if s.Trace.SystemNodes > 0 {
		nodes = s.Trace.SystemNodes
	}
	load := p.Load
	if s.Trace.Load > 0 {
		load = s.Trace.Load
	}
	days := p.Days
	if s.Trace.Days > 0 {
		days = s.Trace.Days
	}
	seed := p.Seed
	if s.Trace.Seed != 0 {
		seed = s.Trace.Seed
	}
	return tracegen.Params{
		SystemNodes:       nodes,
		Load:              load,
		Days:              days,
		LargeFrac:         s.Trace.LargeFrac,
		Overestimation:    s.Trace.Overestimation,
		NormalNodeMB:      NormalNodeMB,
		GoogleCollections: p.GoogleCollections,
		Model:             s.Trace.Model,
		Cirne:             p.Cirne,
		Seed:              seed,
	}
}

// resolvedMemPcts returns the memory axis the spec sweeps: its own list, or
// all eight paper configurations when empty.
func (s *ScenarioSpec) resolvedMemPcts() []int {
	if len(s.MemPcts) > 0 {
		return s.MemPcts
	}
	var mems []int
	for _, mc := range MemoryConfigs() {
		mems = append(mems, mc.LabelPct)
	}
	return mems
}

// ScenarioKey returns the canonical SHA-256 identity of (preset, spec) —
// the same content-addressing scheme as tracegen.Key, extended over the
// sweep dimensions. Two requests with this key, run at this preset, produce
// byte-identical results, so the dmpd daemon keys its result cache on it.
// The trace portion reuses tracegen.Key on the resolved parameters, which
// already canonicalises default spellings and pointer identity.
func (p Preset) ScenarioKey(s *ScenarioSpec) (string, error) {
	pols, err := s.policies()
	if err != nil {
		return "", err
	}
	bf, err := s.backfill()
	if err != nil {
		return "", err
	}
	oom, err := s.oom()
	if err != nil {
		return "", err
	}
	pm, err := s.pressure()
	if err != nil {
		return "", err
	}
	c := tracegen.NewCanon("dismem/scenario/v1")
	c.Str("name", s.Name)
	c.Str("trace", tracegen.Key(p.scenarioTraceParams(s)))
	c.Float("chain", s.Trace.ChainFrac)
	for _, pct := range s.resolvedMemPcts() {
		c.Int("mem", int64(pct))
	}
	for _, pol := range pols {
		c.Str("pol", pol.String())
	}
	c.Str("backfill", bf.String())
	c.Str("oom", oom.String())
	c.Str("pressure", pm.String())
	c.Int("domains", int64(s.Domains))
	update := p.UpdateInterval
	if s.UpdateInterval > 0 {
		update = s.UpdateInterval
	}
	c.Float("update", update)
	enforce := int64(0)
	if s.EnforceTimeLimit {
		enforce = 1
	}
	c.Int("enforce", enforce)
	return c.Sum(), nil
}

// RunScenarioSpec executes the spec at the preset's scale.
func (p Preset) RunScenarioSpec(s *ScenarioSpec) (*ScenarioResult, error) {
	return p.RunScenarioSpecCtx(context.Background(), s)
}

// RunScenarioSpecCtx is RunScenarioSpec under a context: cancellation
// aborts in-flight cell simulations (polled between events via
// core.Config.Interrupt) and skips cells not yet started, returning the
// context's error. The sweep itself still runs every cell to a result or
// error before returning, so a cancelled run never leaks tasks into the
// shared pool. An uncancelled context changes nothing — results are
// byte-identical to RunScenarioSpec.
func (p Preset) RunScenarioSpecCtx(ctx context.Context, s *ScenarioSpec) (*ScenarioResult, error) {
	pols, err := s.policies()
	if err != nil {
		return nil, err
	}
	bf, err := s.backfill()
	if err != nil {
		return nil, err
	}
	oom, err := s.oom()
	if err != nil {
		return nil, err
	}
	pm, err := s.pressure()
	if err != nil {
		return nil, err
	}
	mems := s.resolvedMemPcts()
	// Dependency chains are a BuildJobs option the pipeline does not
	// thread through; scenarioJobs regenerates the dependency layer over
	// cloned jobs when asked (the cached trace is shared, so the chains
	// are never written through the shared pointers).
	jobs, params, err := p.scenarioJobs(ctx, s)
	if err != nil {
		return nil, err
	}
	nodes := params.SystemNodes

	var tasks []sweep.Task[ScenarioRow]
	for _, pct := range mems {
		mc, err := MemConfigByPct(pct)
		if err != nil {
			return nil, err
		}
		for _, pol := range pols {
			mc, pol := mc, pol
			tasks = append(tasks, func() (ScenarioRow, error) {
				row := ScenarioRow{MemPct: mc.LabelPct, Policy: pol.String(),
					Throughput: Infeasible, MedianResponse: Infeasible, MeanStretch: Infeasible}
				if err := ctx.Err(); err != nil {
					return row, err // cancelled before this cell started
				}
				var rec *telemetry.Recorder
				if s.Telemetry != nil {
					rec = s.Telemetry(mc.LabelPct, pol.String())
				}
				res, err := p.RunScenarioWith(jobs, nodes, mc, pol, func(cfg *core.Config) {
					cfg.Backfill = bf
					cfg.OOM = oom
					cfg.Pressure = pm
					cfg.Domains = s.Domains
					cfg.EnforceTimeLimit = s.EnforceTimeLimit
					if s.UpdateInterval > 0 {
						cfg.UpdateInterval = s.UpdateInterval
					}
					if ctx.Done() != nil {
						// ctx.Err is nil until cancellation, so an
						// uncancelled run is provably unperturbed
						// (core's nil-interrupt purity test).
						cfg.Interrupt = ctx.Err
					}
					cfg.Telemetry = rec
				})
				if cerr := rec.Close(); cerr != nil && err == nil {
					err = cerr
				}
				if err != nil {
					return row, err
				}
				if !res.Infeasible {
					row.Throughput = res.Throughput()
					row.OOMKills = res.OOMKills
					row.MeanStretch = res.MeanStretch()
					if rts := res.ResponseTimes(); len(rts) > 0 {
						e, err := metrics.NewECDF(rts)
						if err != nil {
							return row, err
						}
						row.MedianResponse = e.Median()
					}
				}
				return row, nil
			})
		}
	}
	rows, err := sweep.Values(sweep.Run(tasks, 0))
	if err != nil {
		return nil, err
	}
	return &ScenarioResult{Name: s.Name, Rows: rows}, nil
}

func (r *ScenarioResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario %q\n\n", r.Name)
	fmt.Fprintf(&b, "%6s %-9s %14s %14s %6s %9s\n", "mem%", "policy", "jobs/s", "median-resp(s)", "OOM", "stretch")
	for _, row := range r.Rows {
		if isNaN(row.Throughput) {
			fmt.Fprintf(&b, "%6d %-9s %14s %14s %6s %9s\n", row.MemPct, row.Policy, "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%6d %-9s %14.6f %14.0f %6d %9.3f\n",
			row.MemPct, row.Policy, row.Throughput, row.MedianResponse, row.OOMKills, row.MeanStretch)
	}
	return b.String()
}

// WriteCSV emits mem_pct,policy,throughput,median_response_s,oom_kills,mean_stretch.
func (r *ScenarioResult) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			strconv.Itoa(row.MemPct), row.Policy,
			f2s(row.Throughput), f2s(row.MedianResponse),
			strconv.Itoa(row.OOMKills), f2s(row.MeanStretch),
		})
	}
	return writeAll(w, []string{"mem_pct", "policy", "throughput", "median_response_s", "oom_kills", "mean_stretch"}, rows)
}
