package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dismem/internal/core"
	"dismem/internal/job"
	"dismem/internal/metrics"
	"dismem/internal/policy"
	"dismem/internal/sweep"
	"dismem/internal/telemetry"
	"dismem/internal/tracegen"
)

// ScenarioSpec is a user-defined experiment, loaded from JSON: one
// generated workload swept over memory configurations and policies with
// custom simulator knobs. It exposes the same machinery the built-in
// figures use, so downstream users can define studies without writing Go.
//
// Example:
//
//	{
//	  "name": "my-study",
//	  "trace": {"model": "lublin", "large_frac": 0.25, "overestimation": 0.5},
//	  "mem_pcts": [50, 75, 100],
//	  "policies": ["static", "dynamic"],
//	  "backfill": "conservative",
//	  "update_interval_s": 120,
//	  "oom": "checkpoint_restart"
//	}
type ScenarioSpec struct {
	Name  string `json:"name"`
	Trace struct {
		Model          string  `json:"model"`          // cirne (default) | lublin
		LargeFrac      float64 `json:"large_frac"`     // fraction of large-memory jobs
		Overestimation float64 `json:"overestimation"` // request inflation
		ChainFrac      float64 `json:"chain_frac"`     // dependency chains
		Load           float64 `json:"load"`           // 0 = preset default
		Days           float64 `json:"days"`           // 0 = preset default
		SystemNodes    int     `json:"system_nodes"`   // 0 = preset default
		Seed           int64   `json:"seed"`           // 0 = preset default
	} `json:"trace"`
	MemPcts          []int    `json:"mem_pcts"`          // empty = all eight configurations
	Policies         []string `json:"policies"`          // empty = baseline, static, dynamic
	Backfill         string   `json:"backfill"`          // easy (default) | conservative | none
	UpdateInterval   float64  `json:"update_interval_s"` // 0 = preset default
	OOM              string   `json:"oom"`               // fail_restart (default) | checkpoint_restart
	EnforceTimeLimit bool     `json:"enforce_time_limit"`

	// Telemetry, when non-nil, builds one private recorder per
	// (memory, policy) cell. Cells run on parallel sweep workers, so a
	// shared recorder would interleave nondeterministically; a
	// recorder-per-cell keeps each cell's event log byte-deterministic.
	// The factory is called from the cell's worker; the recorder is closed
	// when that cell's simulation finishes. Returning nil disables
	// telemetry for the cell. Set programmatically (dmpexp -telemetry);
	// not part of the JSON schema.
	Telemetry func(memPct int, pol string) *telemetry.Recorder `json:"-"`
}

// LoadScenario parses and validates a spec.
func LoadScenario(r io.Reader) (*ScenarioSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s ScenarioSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %v", err)
	}
	if s.Name == "" {
		s.Name = "scenario"
	}
	if _, err := s.policies(); err != nil {
		return nil, err
	}
	if _, err := s.backfill(); err != nil {
		return nil, err
	}
	if _, err := s.oom(); err != nil {
		return nil, err
	}
	for _, pct := range s.MemPcts {
		if _, err := MemConfigByPct(pct); err != nil {
			return nil, err
		}
	}
	if s.Trace.LargeFrac < 0 || s.Trace.LargeFrac > 1 {
		return nil, fmt.Errorf("scenario: large_frac %g out of [0,1]", s.Trace.LargeFrac)
	}
	return &s, nil
}

func (s *ScenarioSpec) policies() ([]policy.Kind, error) {
	if len(s.Policies) == 0 {
		return []policy.Kind{policy.Baseline, policy.Static, policy.Dynamic}, nil
	}
	var out []policy.Kind
	for _, name := range s.Policies {
		switch strings.ToLower(name) {
		case "baseline":
			out = append(out, policy.Baseline)
		case "static":
			out = append(out, policy.Static)
		case "dynamic":
			out = append(out, policy.Dynamic)
		default:
			return nil, fmt.Errorf("scenario: unknown policy %q", name)
		}
	}
	return out, nil
}

func (s *ScenarioSpec) backfill() (core.BackfillMode, error) {
	switch strings.ToLower(s.Backfill) {
	case "", "easy":
		return core.EASYBackfill, nil
	case "conservative":
		return core.ConservativeBackfill, nil
	case "none":
		return core.NoBackfill, nil
	}
	return 0, fmt.Errorf("scenario: unknown backfill %q", s.Backfill)
}

func (s *ScenarioSpec) oom() (core.OOMMode, error) {
	switch strings.ToLower(s.OOM) {
	case "", "fail_restart":
		return core.FailRestart, nil
	case "checkpoint_restart":
		return core.CheckpointRestart, nil
	}
	return 0, fmt.Errorf("scenario: unknown oom %q", s.OOM)
}

// ScenarioResult is the sweep outcome: one row per (memory, policy).
type ScenarioResult struct {
	Name string
	Rows []ScenarioRow
}

// ScenarioRow carries absolute metrics (the spec defines no baseline to
// normalise against).
type ScenarioRow struct {
	MemPct         int
	Policy         string
	Throughput     float64 // jobs/s; NaN = infeasible
	MedianResponse float64
	OOMKills       int
	MeanStretch    float64
}

// RunScenario executes the spec at the preset's scale.
func (p Preset) RunScenarioSpec(s *ScenarioSpec) (*ScenarioResult, error) {
	pols, err := s.policies()
	if err != nil {
		return nil, err
	}
	bf, err := s.backfill()
	if err != nil {
		return nil, err
	}
	oom, err := s.oom()
	if err != nil {
		return nil, err
	}
	mems := s.MemPcts
	if len(mems) == 0 {
		for _, mc := range MemoryConfigs() {
			mems = append(mems, mc.LabelPct)
		}
	}

	nodes := p.SystemNodes
	if s.Trace.SystemNodes > 0 {
		nodes = s.Trace.SystemNodes
	}
	load := p.Load
	if s.Trace.Load > 0 {
		load = s.Trace.Load
	}
	days := p.Days
	if s.Trace.Days > 0 {
		days = s.Trace.Days
	}
	seed := p.Seed
	if s.Trace.Seed != 0 {
		seed = s.Trace.Seed
	}
	tr, err := tracegen.Cached(tracegen.Params{
		SystemNodes:       nodes,
		Load:              load,
		Days:              days,
		LargeFrac:         s.Trace.LargeFrac,
		Overestimation:    s.Trace.Overestimation,
		NormalNodeMB:      NormalNodeMB,
		GoogleCollections: p.GoogleCollections,
		Model:             s.Trace.Model,
		Cirne:             p.Cirne,
		Seed:              seed,
	})
	if err != nil {
		return nil, err
	}
	// Dependency chains are a BuildJobs option the pipeline does not
	// thread through; regenerate the dependency layer here when asked.
	// The generated trace is cached and shared, so the jobs are cloned
	// before the chains are written — never through the shared pointers.
	jobs := tr.Jobs
	if s.Trace.ChainFrac > 0 {
		jobs = make([]*job.Job, len(tr.Jobs))
		for i, jb := range tr.Jobs {
			clone := *jb
			jobs[i] = &clone
		}
		chainRng := newRand(seed + 99)
		for i := range jobs {
			if i > 0 && chainRng.Float64() < s.Trace.ChainFrac {
				back := 1 + chainRng.Intn(min(i, 5))
				jobs[i].DependsOn = jobs[i].ID - back
			}
		}
	}

	var tasks []sweep.Task[ScenarioRow]
	for _, pct := range mems {
		mc, err := MemConfigByPct(pct)
		if err != nil {
			return nil, err
		}
		for _, pol := range pols {
			mc, pol := mc, pol
			tasks = append(tasks, func() (ScenarioRow, error) {
				row := ScenarioRow{MemPct: mc.LabelPct, Policy: pol.String(),
					Throughput: Infeasible, MedianResponse: Infeasible, MeanStretch: Infeasible}
				var rec *telemetry.Recorder
				if s.Telemetry != nil {
					rec = s.Telemetry(mc.LabelPct, pol.String())
				}
				res, err := p.RunScenarioWith(jobs, nodes, mc, pol, func(cfg *core.Config) {
					cfg.Backfill = bf
					cfg.OOM = oom
					cfg.EnforceTimeLimit = s.EnforceTimeLimit
					if s.UpdateInterval > 0 {
						cfg.UpdateInterval = s.UpdateInterval
					}
					cfg.Telemetry = rec
				})
				if cerr := rec.Close(); cerr != nil && err == nil {
					err = cerr
				}
				if err != nil {
					return row, err
				}
				if !res.Infeasible {
					row.Throughput = res.Throughput()
					row.OOMKills = res.OOMKills
					row.MeanStretch = res.MeanStretch()
					if rts := res.ResponseTimes(); len(rts) > 0 {
						e, err := metrics.NewECDF(rts)
						if err != nil {
							return row, err
						}
						row.MedianResponse = e.Median()
					}
				}
				return row, nil
			})
		}
	}
	rows, err := sweep.Values(sweep.Run(tasks, 0))
	if err != nil {
		return nil, err
	}
	return &ScenarioResult{Name: s.Name, Rows: rows}, nil
}

func (r *ScenarioResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scenario %q\n\n", r.Name)
	fmt.Fprintf(&b, "%6s %-9s %14s %14s %6s %9s\n", "mem%", "policy", "jobs/s", "median-resp(s)", "OOM", "stretch")
	for _, row := range r.Rows {
		if isNaN(row.Throughput) {
			fmt.Fprintf(&b, "%6d %-9s %14s %14s %6s %9s\n", row.MemPct, row.Policy, "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%6d %-9s %14.6f %14.0f %6d %9.3f\n",
			row.MemPct, row.Policy, row.Throughput, row.MedianResponse, row.OOMKills, row.MeanStretch)
	}
	return b.String()
}

// WriteCSV emits mem_pct,policy,throughput,median_response_s,oom_kills,mean_stretch.
func (r *ScenarioResult) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			strconv.Itoa(row.MemPct), row.Policy,
			f2s(row.Throughput), f2s(row.MedianResponse),
			strconv.Itoa(row.OOMKills), f2s(row.MeanStretch),
		})
	}
	return writeAll(w, []string{"mem_pct", "policy", "throughput", "median_response_s", "oom_kills", "mean_stretch"}, rows)
}
