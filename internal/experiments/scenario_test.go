package experiments

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
)

const sampleSpec = `{
  "name": "lublin-study",
  "trace": {"model": "lublin", "large_frac": 0.25, "overestimation": 0.5, "seed": 9},
  "mem_pcts": [50, 100],
  "policies": ["static", "dynamic"],
  "backfill": "conservative",
  "update_interval_s": 120
}`

func TestLoadScenario(t *testing.T) {
	s, err := LoadScenario(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "lublin-study" || s.Trace.Model != "lublin" {
		t.Fatalf("spec = %+v", s)
	}
	if len(s.MemPcts) != 2 || s.UpdateInterval != 120 {
		t.Fatalf("spec fields lost: %+v", s)
	}
}

func TestLoadScenarioRejections(t *testing.T) {
	// Every validation error must name the offending JSON field (or say
	// what's structurally wrong) — daemon clients see these verbatim.
	cases := []struct {
		name, in, wantErr string
	}{
		{"bad policy", `{"policies": ["magic"]}`, `policies[0]`},
		{"bad backfill", `{"backfill": "optimistic"}`, `"backfill"`},
		{"bad oom", `{"oom": "panic"}`, `"oom"`},
		{"bad mem pct", `{"mem_pcts": [99]}`, `"mem_pcts"`},
		{"large_frac range", `{"trace": {"large_frac": 2}}`, `"trace.large_frac"`},
		{"chain_frac range", `{"trace": {"chain_frac": -0.5}}`, `"trace.chain_frac"`},
		{"negative overestimation", `{"trace": {"overestimation": -1}}`, `"trace.overestimation"`},
		{"negative update interval", `{"update_interval_s": -3}`, `"update_interval_s"`},
		{"bad pressure", `{"pressure": "vibes"}`, `"pressure"`},
		{"domains without pressure", `{"domains": 4}`, `"domains"`},
		{"negative domains", `{"pressure": "domains", "domains": -1}`, `"domains"`},
		{"unknown field", `{"unknown_field": 1}`, `unknown_field`},
		{"not json", `not json`, `scenario:`},
		{"empty input", ``, `empty spec`},
		{"whitespace only", "  \n\t", `empty spec`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadScenario(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not name %q", err, tc.wantErr)
			}
		})
	}
}

func TestScenarioKey(t *testing.T) {
	p := tiny()
	load := func(in string) *ScenarioSpec {
		t.Helper()
		s, err := LoadScenario(strings.NewReader(in))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := load(sampleSpec)
	k1, err := p.ScenarioKey(base)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := p.ScenarioKey(load(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("identical specs hash differently")
	}
	if len(k1) != 64 {
		t.Fatalf("key %q is not a sha256 hex digest", k1)
	}
	// Canonical spellings collapse: explicit defaults hash like omissions.
	expl := load(sampleSpec)
	expl.OOM = "fail_restart"
	expl.Pressure = "global"
	if k3, _ := p.ScenarioKey(expl); k3 != k1 {
		t.Fatal("explicit default spellings changed the key")
	}
	// Every swept dimension must move the key.
	for name, mut := range map[string]func(*ScenarioSpec){
		"update interval": func(s *ScenarioSpec) { s.UpdateInterval = 60 },
		"policies":        func(s *ScenarioSpec) { s.Policies = []string{"dynamic"} },
		"mem pcts":        func(s *ScenarioSpec) { s.MemPcts = []int{100} },
		"backfill":        func(s *ScenarioSpec) { s.Backfill = "none" },
		"oom":             func(s *ScenarioSpec) { s.OOM = "checkpoint_restart" },
		"pressure":        func(s *ScenarioSpec) { s.Pressure = "domains" },
		"chain frac":      func(s *ScenarioSpec) { s.Trace.ChainFrac = 0.25 },
		"seed":            func(s *ScenarioSpec) { s.Trace.Seed = 11 },
		"enforce":         func(s *ScenarioSpec) { s.EnforceTimeLimit = true },
	} {
		s := load(sampleSpec)
		mut(s)
		k, err := p.ScenarioKey(s)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if k == k1 {
			t.Errorf("changing %s did not change the key", name)
		}
	}
	// The key validates: a spec that cannot run cannot be keyed.
	bad := load(sampleSpec)
	bad.Policies = []string{"magic"}
	if _, err := p.ScenarioKey(bad); err == nil {
		t.Fatal("keyed an invalid spec")
	}
}

func TestRunScenarioSpecCtxCancelled(t *testing.T) {
	p := tiny()
	s, err := LoadScenario(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	s.Trace.SystemNodes = p.SystemNodes
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunScenarioSpecCtx(ctx, s); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunScenarioSpec(t *testing.T) {
	p := tiny()
	s, err := LoadScenario(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	// Keep the trace at the tiny preset scale.
	s.Trace.SystemNodes = p.SystemNodes
	res, err := p.RunScenarioSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*2 { // 2 mem configs × 2 policies
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	feasible := 0
	for _, row := range res.Rows {
		if !isNaN(row.Throughput) {
			feasible++
			if row.Throughput <= 0 || row.MeanStretch < 0.999 {
				t.Fatalf("implausible row %+v", row)
			}
		}
	}
	if feasible == 0 {
		t.Fatal("nothing feasible")
	}
	if !strings.Contains(res.String(), "lublin-study") {
		t.Fatal("rendering broken")
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, rows := parseCSV(t, &buf); len(rows) != 4 {
		t.Fatalf("csv rows = %d", len(rows))
	}
}

func TestRunScenarioSpecDefaultsAndChains(t *testing.T) {
	p := tiny()
	s, err := LoadScenario(strings.NewReader(`{"trace": {"chain_frac": 0.3}}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunScenarioSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: all eight memory configs × three policies.
	if len(res.Rows) != 8*3 {
		t.Fatalf("rows = %d, want 24", len(res.Rows))
	}
}

func TestWriteReport(t *testing.T) {
	p := tiny()
	var buf bytes.Buffer
	if err := WriteReport(&buf, p, ReportOptions{Ablations: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# dismem evaluation report",
		"Table 2", "Table 3",
		"Figure 5", "Figure 9",
		"Memory utilisation", "Ablations", "Headline metrics",
		"_generated in",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
