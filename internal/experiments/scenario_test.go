package experiments

import (
	"bytes"
	"strings"
	"testing"
)

const sampleSpec = `{
  "name": "lublin-study",
  "trace": {"model": "lublin", "large_frac": 0.25, "overestimation": 0.5, "seed": 9},
  "mem_pcts": [50, 100],
  "policies": ["static", "dynamic"],
  "backfill": "conservative",
  "update_interval_s": 120
}`

func TestLoadScenario(t *testing.T) {
	s, err := LoadScenario(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "lublin-study" || s.Trace.Model != "lublin" {
		t.Fatalf("spec = %+v", s)
	}
	if len(s.MemPcts) != 2 || s.UpdateInterval != 120 {
		t.Fatalf("spec fields lost: %+v", s)
	}
}

func TestLoadScenarioRejections(t *testing.T) {
	cases := []string{
		`{"policies": ["magic"]}`,
		`{"backfill": "optimistic"}`,
		`{"oom": "panic"}`,
		`{"mem_pcts": [99]}`,
		`{"trace": {"large_frac": 2}}`,
		`{"unknown_field": 1}`,
		`not json`,
	}
	for _, in := range cases {
		if _, err := LoadScenario(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestRunScenarioSpec(t *testing.T) {
	p := tiny()
	s, err := LoadScenario(strings.NewReader(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	// Keep the trace at the tiny preset scale.
	s.Trace.SystemNodes = p.SystemNodes
	res, err := p.RunScenarioSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*2 { // 2 mem configs × 2 policies
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	feasible := 0
	for _, row := range res.Rows {
		if !isNaN(row.Throughput) {
			feasible++
			if row.Throughput <= 0 || row.MeanStretch < 0.999 {
				t.Fatalf("implausible row %+v", row)
			}
		}
	}
	if feasible == 0 {
		t.Fatal("nothing feasible")
	}
	if !strings.Contains(res.String(), "lublin-study") {
		t.Fatal("rendering broken")
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if _, rows := parseCSV(t, &buf); len(rows) != 4 {
		t.Fatalf("csv rows = %d", len(rows))
	}
}

func TestRunScenarioSpecDefaultsAndChains(t *testing.T) {
	p := tiny()
	s, err := LoadScenario(strings.NewReader(`{"trace": {"chain_frac": 0.3}}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunScenarioSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: all eight memory configs × three policies.
	if len(res.Rows) != 8*3 {
		t.Fatalf("rows = %d, want 24", len(res.Rows))
	}
}

func TestWriteReport(t *testing.T) {
	p := tiny()
	var buf bytes.Buffer
	if err := WriteReport(&buf, p, ReportOptions{Ablations: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# dismem evaluation report",
		"Table 2", "Table 3",
		"Figure 5", "Figure 9",
		"Memory utilisation", "Ablations", "Headline metrics",
		"_generated in",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
