// Package experiments regenerates every table and figure of the paper's
// evaluation (§3–§4). Each experiment has a Run function returning a typed
// result with a text renderer that prints the same rows/series the paper
// reports.
//
// Experiments run at a configurable Preset scale: Full matches the paper
// (1024-node synthetic system, 1490-node Grizzly system, week-long traces);
// Quick is a proportionally scaled-down variant for tests and benchmarks
// that preserves the memory distributions and relative comparisons.
package experiments

import (
	"fmt"
	"math"

	"dismem/internal/cluster"
	"dismem/internal/core"
	"dismem/internal/job"
	"dismem/internal/policy"
	"dismem/internal/tracegen"
	"dismem/internal/traces/grizzly"
	"dismem/internal/workload"
)

// Preset fixes the scale of an experiment run.
type Preset struct {
	Name        string
	SystemNodes int // synthetic-trace system size (paper: 1024)
	Days        float64
	Load        float64

	GrizzlyNodes  int // Grizzly system size (paper: 1490)
	GrizzlyWeeks  int // weeks in the synthetic Grizzly dataset
	GrizzlySample int // high-utilisation weeks to simulate (paper: 7)

	GoogleCollections int
	Cirne             *workload.CirneParams // nil = paper defaults

	UpdateInterval float64 // dynamic-policy update period (paper: 300 s)
	Seed           int64

	// Shards partitions the cluster ledger (0 = single shard); Parallel
	// selects the windowed executor with Workers-sized refresh fan-out
	// (0 = GOMAXPROCS). All default off: results are bit-identical either
	// way — the switches trade nothing but speed — but the golden digests
	// are recorded against the serial executor, so experiments flip them
	// only when explicitly asked (dmpsim/dmpexp -shards/-parallel).
	Shards   int
	Parallel bool
	Workers  int
}

// Full is the paper-scale preset.
func Full() Preset {
	return Preset{
		Name:              "full",
		SystemNodes:       1024,
		Days:              7,
		Load:              0.8,
		GrizzlyNodes:      grizzly.SystemNodes,
		GrizzlyWeeks:      26,
		GrizzlySample:     7,
		GoogleCollections: 5000,
		UpdateInterval:    300,
		Seed:              1,
	}
}

// Quick is a scaled-down preset: a 64-node system, one simulated day,
// smaller and shorter jobs. Memory distributions are unchanged, so policy
// comparisons keep their shape.
func Quick() Preset {
	c := workload.NewCirneParams(64, 0.8, 1)
	c.MaxNodes = 16
	c.RuntimeLogMean = math.Log(1800)
	c.RuntimeLogSig = 1.2
	c.MaxRuntime = 86400
	return Preset{
		Name:              "quick",
		SystemNodes:       64,
		Days:              1,
		Load:              0.8,
		GrizzlyNodes:      160,
		GrizzlyWeeks:      8,
		GrizzlySample:     1,
		GoogleCollections: 1500,
		Cirne:             &c,
		UpdateInterval:    300,
		Seed:              1,
	}
}

// Bench is the benchmark-scale preset: smaller still than Quick so a full
// table/figure regeneration fits in a testing.B iteration.
func Bench() Preset {
	c := workload.NewCirneParams(32, 0.8, 0.25)
	c.MaxNodes = 8
	c.RuntimeLogMean = math.Log(900)
	c.RuntimeLogSig = 1.0
	c.MaxRuntime = 6 * 3600
	return Preset{
		Name:              "bench",
		SystemNodes:       32,
		Days:              0.25,
		Load:              0.8,
		GrizzlyNodes:      144,
		GrizzlyWeeks:      3,
		GoogleCollections: 800,
		Cirne:             &c,
		UpdateInterval:    300,
		Seed:              1,
	}
}

// NormalNodeMB is the normal node capacity in the paper's main
// configuration (64 GB; large nodes have 128 GB). The trace's normal/large
// memory-job boundary is defined against it.
const NormalNodeMB = int64(64) * 1024

// LargeNodeMB is the large node capacity (128 GB).
const LargeNodeMB = int64(128) * 1024

// MemConfig is one point on the paper's "total system memory" axis. The
// axis percentage is the system's total memory relative to a system whose
// nodes all have 128 GB. Points below 50 % use 32 GB normal / 64 GB large
// nodes; points at or above use 64 GB / 128 GB (paper §3.4).
type MemConfig struct {
	LabelPct  int   // the paper's x-axis label (37, 43, 50, …, 100)
	NormalMB  int64 // capacity of a normal node in this configuration
	LargeFrac float64
}

// TotalMemMB returns the configuration's total memory for n nodes.
func (mc MemConfig) TotalMemMB(n int) int64 {
	nLarge := int(float64(n)*mc.LargeFrac + 0.5)
	return int64(n-nLarge)*mc.NormalMB + int64(nLarge)*2*mc.NormalMB
}

// MemoryConfigs returns the paper's eight memory provisioning points.
func MemoryConfigs() []MemConfig {
	half := int64(32) * 1024
	return []MemConfig{
		{37, half, 0.50},         // 37.5 %
		{43, half, 0.75},         // 43.75 %
		{50, NormalNodeMB, 0},    // 50 %
		{57, NormalNodeMB, 0.15}, // 57.5 %
		{62, NormalNodeMB, 0.25}, // 62.5 %
		{75, NormalNodeMB, 0.50},
		{87, NormalNodeMB, 0.75}, // 87.5 %
		{100, NormalNodeMB, 1},
	}
}

// MemConfigByPct returns the configuration with the given axis label.
func MemConfigByPct(pct int) (MemConfig, error) {
	for _, mc := range MemoryConfigs() {
		if mc.LabelPct == pct {
			return mc, nil
		}
	}
	return MemConfig{}, fmt.Errorf("experiments: no memory configuration labelled %d%%", pct)
}

// SyntheticTrace returns the synthetic workload for a (large-job mix,
// overestimation) scenario via the Fig. 3 pipeline. Traces are served from
// the content-addressed tracegen cache: panels, figures, and replication
// seeds that need the same workload share one immutable generation, so
// callers must never mutate the returned Output or its Jobs.
func (p Preset) SyntheticTrace(largeFrac, overest float64) (*tracegen.Output, error) {
	return tracegen.Cached(p.syntheticParams(largeFrac, overest))
}

// SyntheticTraceUncached bypasses the trace cache; the golden tests use it
// to prove cached and fresh generations are bit-identical.
func (p Preset) SyntheticTraceUncached(largeFrac, overest float64) (*tracegen.Output, error) {
	return tracegen.Run(p.syntheticParams(largeFrac, overest))
}

func (p Preset) syntheticParams(largeFrac, overest float64) tracegen.Params {
	return tracegen.Params{
		SystemNodes:       p.SystemNodes,
		Load:              p.Load,
		Days:              p.Days,
		LargeFrac:         largeFrac,
		Overestimation:    overest,
		NormalNodeMB:      NormalNodeMB,
		GoogleCollections: p.GoogleCollections,
		Cirne:             p.Cirne,
		Seed:              p.Seed,
	}
}

// GrizzlyDataset synthesises the LDMS dataset at the preset's scale.
func (p Preset) GrizzlyDataset() *grizzly.Dataset {
	rng := newRand(p.Seed + 1000)
	return grizzly.Generate(grizzly.Params{
		Nodes:     p.GrizzlyNodes,
		WeekCount: p.GrizzlyWeeks,
	}, rng)
}

// GrizzlyTraces samples the preset's number of representative
// high-utilisation weeks and builds one job trace per week with the given
// overestimation (paper §3.2.1: seven sampled weeks, simulated
// independently).
func (p Preset) GrizzlyTraces(overest float64) ([][]*job.Job, error) {
	d := p.GrizzlyDataset()
	n := p.GrizzlySample
	if n <= 0 {
		n = 1
	}
	weeks, err := d.SampleWeeks(newRand(p.Seed+2000), 0.7, n)
	if err != nil {
		// Fall back to the single highest-utilisation week.
		best := &d.Weeks[0]
		for i := range d.Weeks {
			if d.Weeks[i].Utilization > best.Utilization {
				best = &d.Weeks[i]
			}
		}
		weeks = []*grizzly.Week{best}
	}
	out := make([][]*job.Job, 0, len(weeks))
	for _, w := range weeks {
		jobs, err := w.BuildJobs(grizzly.BuildParams{
			Overestimation: overest,
			Seed:           p.Seed + 3000 + int64(w.Index),
		})
		if err != nil {
			return nil, err
		}
		out = append(out, jobs)
	}
	return out, nil
}

// GrizzlyTrace returns the first sampled week's trace (the single-week
// convenience used by dmpsim).
func (p Preset) GrizzlyTrace(overest float64) ([]*job.Job, error) {
	traces, err := p.GrizzlyTraces(overest)
	if err != nil {
		return nil, err
	}
	return traces[0], nil
}

// RunScenario simulates jobs on nodes under one memory configuration and
// policy.
func (p Preset) RunScenario(jobs []*job.Job, nodes int, mc MemConfig, pol policy.Kind) (*core.Result, error) {
	return p.RunScenarioWith(jobs, nodes, mc, pol, nil)
}

// ConfigFor returns the simulator configuration a scenario run uses; the
// CLI exposes it via dmpsim -dump-conf.
func (p Preset) ConfigFor(nodes int, mc MemConfig, pol policy.Kind) core.Config {
	return core.Config{
		Cluster: cluster.Config{
			Nodes:     nodes,
			Cores:     32,
			NormalMB:  mc.NormalMB,
			LargeFrac: mc.LargeFrac,
			Shards:    p.Shards,
		},
		Policy:         pol,
		UpdateInterval: p.UpdateInterval,
		Seed:           p.Seed,
		Parallel:       p.Parallel,
		Workers:        p.Workers,
	}
}

// RunScenarioWith is RunScenario with a configuration hook, used by the
// ablation experiments to flip individual simulator switches.
func (p Preset) RunScenarioWith(jobs []*job.Job, nodes int, mc MemConfig, pol policy.Kind, mutate func(*core.Config)) (*core.Result, error) {
	cfg := p.ConfigFor(nodes, mc, pol)
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := core.New(cfg, jobs)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
