package experiments

import "math/rand"

// newRand returns a deterministic RNG for the given seed; experiments never
// touch the global source so runs are reproducible.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
