package experiments

import (
	"encoding/csv"
	"io"
	"math"
	"strconv"

	"dismem/internal/metrics"
)

// CSV exporters: every experiment result can emit a flat, plot-ready CSV
// with one observation per row (tidy format), so the paper's figures can be
// regenerated with any plotting tool. Infeasible cells are written as
// empty fields.

func writeAll(w io.Writer, header []string, rows [][]string) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if err := cw.WriteAll(rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func f2s(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return strconv.FormatFloat(v, 'g', 8, 64)
}

// WriteCSV emits trace,overest,mem_pct,policy,norm_throughput rows.
func (g *ThroughputGrid) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, r := range g.Rows {
		for _, pr := range []struct {
			name string
			v    float64
		}{{"baseline", r.Baseline}, {"static", r.Static}, {"dynamic", r.Dynamic}} {
			rows = append(rows, []string{
				g.Trace, f2s(g.Overest), strconv.Itoa(r.MemPct), pr.name, f2s(pr.v),
			})
		}
	}
	return writeAll(w, []string{"trace", "overest", "mem_pct", "policy", "norm_throughput"}, rows)
}

// WriteCSV emits all panels of Figure 5 in tidy form.
func (f *Fig5) WriteCSV(w io.Writer) error {
	return writeGrids(w, f.Panels)
}

// WriteCSV emits all panels of Figure 8 in tidy form.
func (f *Fig8) WriteCSV(w io.Writer) error {
	return writeGrids(w, append(append([]*ThroughputGrid{}, f.Synthetic...), f.Grizzly...))
}

func writeGrids(w io.Writer, grids []*ThroughputGrid) error {
	var rows [][]string
	for _, g := range grids {
		for _, r := range g.Rows {
			for _, pr := range []struct {
				name string
				v    float64
			}{{"baseline", r.Baseline}, {"static", r.Static}, {"dynamic", r.Dynamic}} {
				rows = append(rows, []string{
					g.Trace, f2s(g.Overest), strconv.Itoa(r.MemPct), pr.name, f2s(pr.v),
				})
			}
		}
	}
	return writeAll(w, []string{"trace", "overest", "mem_pct", "policy", "norm_throughput"}, rows)
}

// WriteCSV emits scenario,overest,policy,cum_prob,response_s rows with up
// to 100 ECDF points per distribution.
func (f *Fig6) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, p := range f.Panels {
		for _, pr := range []struct {
			name string
			e    *metrics.ECDF
		}{{"static", p.Static}, {"dynamic", p.Dynamic}} {
			if pr.e == nil {
				continue
			}
			for _, pt := range pr.e.Points(100) {
				rows = append(rows, []string{
					p.Scenario, f2s(p.Overest), pr.name, f2s(pt.P), f2s(pt.X),
				})
			}
		}
	}
	return writeAll(w, []string{"scenario", "overest", "policy", "cum_prob", "response_s"}, rows)
}

// WriteCSV emits sys_pct,overest,large_pct,policy,throughput_per_dollar.
func (f *Fig7) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, p := range f.Panels {
		for _, pt := range p.Points {
			rows = append(rows,
				[]string{strconv.Itoa(p.SysPct), f2s(p.Overest), strconv.Itoa(pt.LargePct), "static", f2s(pt.Static)},
				[]string{strconv.Itoa(p.SysPct), f2s(p.Overest), strconv.Itoa(pt.LargePct), "dynamic", f2s(pt.Dynamic)})
		}
	}
	return writeAll(w, []string{"sys_pct", "overest", "large_pct", "policy", "throughput_per_dollar"}, rows)
}

// WriteCSV emits overest,policy,min_mem_pct (0 = unreachable).
func (f *Fig9) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, pt := range f.Points {
		rows = append(rows,
			[]string{f2s(pt.Overest), "static", strconv.Itoa(pt.StaticPct)},
			[]string{f2s(pt.Overest), "dynamic", strconv.Itoa(pt.DynamicPct)})
	}
	return writeAll(w, []string{"overest", "policy", "min_mem_pct"}, rows)
}

// WriteCSV emits week,utilization,max_node_hours,max_mem_mb,sampled.
func (f *Fig2) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, pt := range f.Points {
		rows = append(rows, []string{
			strconv.Itoa(pt.Week), f2s(pt.Utilization), f2s(pt.NodeHours),
			strconv.FormatInt(pt.MemMB, 10), strconv.FormatBool(pt.Sampled),
		})
	}
	return writeAll(w, []string{"week", "utilization", "max_node_hours", "max_mem_mb", "sampled"}, rows)
}

// WriteCSV emits metric,size_bin,mem_bin,share.
func (f *Fig4) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, part := range []struct {
		name string
		grid [][]float64
	}{{"avg", f.Avg}, {"max", f.Max}} {
		for mi, memBin := range f.MemBins {
			for si, sizeBin := range f.SizeBins {
				rows = append(rows, []string{part.name, sizeBin, memBin, f2s(part.grid[mi][si])})
			}
		}
	}
	return writeAll(w, []string{"metric", "size_bin", "mem_bin", "share"}, rows)
}

// WriteCSV emits trace,size_class,bucket,share.
func (t *Table2) WriteCSV(w io.Writer) error {
	var rows [][]string
	classes := []string{"all", "normal", "large"}
	for bi, bucket := range t.Buckets {
		for ci, class := range classes {
			rows = append(rows,
				[]string{"synthetic", class, bucket, f2s(t.Synthetic[ci][bi])},
				[]string{"grizzly", class, bucket, f2s(t.Grizzly[ci][bi])})
		}
	}
	return writeAll(w, []string{"trace", "size_class", "bucket", "share"}, rows)
}

// WriteCSV emits interval_s,norm_throughput,oom_kills,resizes,reclaimed_gb.
func (a *AblationUpdateInterval) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			f2s(r.IntervalSec), f2s(r.NormThroughput),
			strconv.Itoa(r.OOMKills), strconv.Itoa(r.Resizes), f2s(r.ReclaimedGB),
		})
	}
	return writeAll(w, []string{"interval_s", "norm_throughput", "oom_kills", "resizes", "reclaimed_gb"}, rows)
}

// WriteCSV emits mode,norm_throughput,oom_kills,abandoned,median_response_s.
func (a *AblationOOM) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			r.Label, f2s(r.NormThroughput),
			strconv.Itoa(r.OOMKills), strconv.Itoa(r.Abandoned), f2s(r.MedianResponse),
		})
	}
	return writeAll(w, []string{"mode", "norm_throughput", "oom_kills", "abandoned", "median_response_s"}, rows)
}

// WriteCSV emits policy,backfill,norm_throughput,median_wait_s.
func (a *AblationBackfill) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			r.Policy, r.Mode, f2s(r.NormThroughput), f2s(r.MedianWait),
		})
	}
	return writeAll(w, []string{"policy", "backfill", "norm_throughput", "median_wait_s"}, rows)
}

// WriteCSV emits order,hop_penalty,norm_throughput.
func (a *AblationLender) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{r.Order, f2s(r.HopPenalty), f2s(r.NormThroughput)})
	}
	return writeAll(w, []string{"order", "hop_penalty", "norm_throughput"}, rows)
}

// WriteCSV emits class,metric,min,q1,median,q3,max.
func (t *Table3) WriteCSV(w io.Writer) error {
	row := func(class, metric string, s metrics.Summary) []string {
		return []string{class, metric, f2s(s.Min), f2s(s.Q1), f2s(s.Median), f2s(s.Q3), f2s(s.Max)}
	}
	rows := [][]string{
		row("normal", "memory_mb", t.NormalMem),
		row("normal", "node_hours", t.NormalNH),
		row("large", "memory_mb", t.LargeMem),
		row("large", "node_hours", t.LargeNH),
	}
	return writeAll(w, []string{"class", "metric", "min", "q1", "median", "q3", "max"}, rows)
}

// WriteCSV emits setting,norm_throughput,oom_kills,max_restarts,fairness.
func (a *AblationPriority) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, r := range a.Rows {
		rows = append(rows, []string{
			r.Label, f2s(r.NormThroughput),
			strconv.Itoa(r.OOMKills), strconv.Itoa(r.MaxRestarts), f2s(r.Fairness),
		})
	}
	return writeAll(w, []string{"setting", "norm_throughput", "oom_kills", "max_restarts", "fairness"}, rows)
}
