package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"dismem/internal/policy"
	"dismem/internal/sweep"
)

// Utilization quantifies the paper's motivation (§1: 25–76 % of memory
// typically idle) on the simulated system: how much memory each policy
// keeps allocated versus how much the jobs actually touch, across
// provisioning levels.
type Utilization struct {
	Overest float64
	Rows    []UtilizationRow
}

// UtilizationRow is one (memory, policy) cell; utilisations are fractions
// of total capacity over the makespan, NaN = infeasible.
type UtilizationRow struct {
	MemPct    int
	Policy    string
	Allocated float64 // memory held by jobs
	Used      float64 // memory actually touched
	Nodes     float64 // busy-node share
}

// Stranded returns allocated-but-untouched memory (the reclaimable waste).
func (r UtilizationRow) Stranded() float64 { return r.Allocated - r.Used }

// RunUtilization measures the 50 % large-job, +60 % overestimation
// workload under all three policies.
func RunUtilization(p Preset) (*Utilization, error) {
	const overest = 0.6
	tr, err := p.SyntheticTrace(0.5, overest)
	if err != nil {
		return nil, err
	}
	mcs := MemoryConfigs()
	pols := []policy.Kind{policy.Baseline, policy.Static, policy.Dynamic}
	tasks := make([]sweep.Task[UtilizationRow], 0, len(mcs)*len(pols))
	for _, mc := range mcs {
		for _, pol := range pols {
			mc, pol := mc, pol
			tasks = append(tasks, func() (UtilizationRow, error) {
				row := UtilizationRow{MemPct: mc.LabelPct, Policy: pol.String(),
					Allocated: Infeasible, Used: Infeasible, Nodes: Infeasible}
				res, err := p.RunScenario(tr.Jobs, p.SystemNodes, mc, pol)
				if err != nil {
					return row, err
				}
				if !res.Infeasible {
					row.Allocated = res.AllocationUtilisation()
					row.Used = res.MemoryUtilisation()
					row.Nodes = res.NodeUtilisation()
				}
				return row, nil
			})
		}
	}
	rows, err := sweep.Values(sweep.Run(tasks, 0))
	if err != nil {
		return nil, err
	}
	return &Utilization{Overest: overest, Rows: rows}, nil
}

func (u *Utilization) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Memory utilisation by policy (50%% large jobs, +%.0f%% overestimation)\n\n", u.Overest*100)
	fmt.Fprintf(&b, "%6s %-9s %10s %10s %10s %10s\n", "mem%", "policy", "allocated", "used", "stranded", "busy-nodes")
	for _, r := range u.Rows {
		if isNaN(r.Allocated) {
			fmt.Fprintf(&b, "%6d %-9s %10s %10s %10s %10s\n", r.MemPct, r.Policy, "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%6d %-9s %9.1f%% %9.1f%% %9.1f%% %9.1f%%\n",
			r.MemPct, r.Policy, r.Allocated*100, r.Used*100, r.Stranded()*100, r.Nodes*100)
	}
	return b.String()
}

// WriteCSV emits mem_pct,policy,allocated,used,stranded,busy_nodes.
func (u *Utilization) WriteCSV(w io.Writer) error {
	var rows [][]string
	for _, r := range u.Rows {
		stranded := Infeasible
		if !isNaN(r.Allocated) {
			stranded = r.Stranded()
		}
		rows = append(rows, []string{
			strconv.Itoa(r.MemPct), r.Policy,
			f2s(r.Allocated), f2s(r.Used), f2s(stranded), f2s(r.Nodes),
		})
	}
	return writeAll(w, []string{"mem_pct", "policy", "allocated", "used", "stranded", "busy_nodes"}, rows)
}
