package experiments

import (
	"fmt"
	"strings"

	"dismem/internal/textplot"
)

// Terminal renderings of the experiment results, used by dmpexp -plot.

// Plot renders the grid as grouped bars per memory configuration.
func (g *ThroughputGrid) Plot() string {
	groups := make([]string, len(g.Rows))
	base := textplot.Series{Name: "baseline"}
	stat := textplot.Series{Name: "static"}
	dyn := textplot.Series{Name: "dynamic"}
	for i, r := range g.Rows {
		groups[i] = fmt.Sprintf("%d%%", r.MemPct)
		base.Values = append(base.Values, r.Baseline)
		stat.Values = append(stat.Values, r.Static)
		dyn.Values = append(dyn.Values, r.Dynamic)
	}
	title := fmt.Sprintf("normalised throughput — %s, +%.0f%% overestimation", g.Trace, g.Overest*100)
	return textplot.GroupedBars(title, groups, []textplot.Series{base, stat, dyn}, 30)
}

// Plot renders every panel.
func (f *Fig5) Plot() string {
	var sb strings.Builder
	for _, g := range f.Panels {
		sb.WriteString(g.Plot())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Plot renders the synthetic panels (and Grizzly when present).
func (f *Fig8) Plot() string {
	var sb strings.Builder
	for _, g := range append(append([]*ThroughputGrid{}, f.Synthetic...), f.Grizzly...) {
		sb.WriteString(g.Plot())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Plot renders the week scatter: utilisation vs normalised max memory,
// sampled weeks marked.
func (f *Fig2) Plot() string {
	var pts []textplot.Point
	for _, p := range f.Points {
		y := 0.0
		if f.MaxMemMB > 0 {
			y = float64(p.MemMB) / float64(f.MaxMemMB)
		}
		pts = append(pts, textplot.Point{X: p.Utilization, Y: y, Marked: p.Sampled})
	}
	return textplot.Scatter("Grizzly weeks: utilisation (x) vs normalised max memory (y); * = simulated", pts, 60, 14)
}

// Plot renders minimum provisioning per overestimation, both policies.
func (f *Fig9) Plot() string {
	groups := make([]string, len(f.Points))
	stat := textplot.Series{Name: "static"}
	dyn := textplot.Series{Name: "dynamic"}
	for i, pt := range f.Points {
		groups[i] = fmt.Sprintf("+%.0f%%", pt.Overest*100)
		stat.Values = append(stat.Values, nanIfZero(pt.StaticPct))
		dyn.Values = append(dyn.Values, nanIfZero(pt.DynamicPct))
	}
	return textplot.GroupedBars(
		fmt.Sprintf("minimum memory %% for ≥%.0f%% baseline throughput", f.Threshold*100),
		groups, []textplot.Series{stat, dyn}, 30)
}

func nanIfZero(v int) float64 {
	if v == 0 {
		return Infeasible
	}
	return float64(v)
}

// Plot renders the update-interval sweep as throughput bars.
func (a *AblationUpdateInterval) Plot() string {
	var bars []textplot.Bar
	for _, r := range a.Rows {
		bars = append(bars, textplot.Bar{
			Label: fmt.Sprintf("%.0fs", r.IntervalSec),
			Value: r.NormThroughput,
		})
	}
	return textplot.BarChart("normalised throughput by update interval", bars, 40, "")
}

// Plot renders the OOM-mode comparison.
func (a *AblationOOM) Plot() string {
	var bars []textplot.Bar
	for _, r := range a.Rows {
		bars = append(bars, textplot.Bar{Label: r.Label, Value: r.NormThroughput})
	}
	return textplot.BarChart("normalised throughput by OOM handling", bars, 40, "")
}

// Plot renders the backfill comparison.
func (a *AblationBackfill) Plot() string {
	var bars []textplot.Bar
	for _, r := range a.Rows {
		bars = append(bars, textplot.Bar{Label: r.Policy + "/" + r.Mode, Value: r.NormThroughput})
	}
	return textplot.BarChart("normalised throughput by backfill algorithm", bars, 40, "")
}

// Plot renders the lender-order comparison.
func (a *AblationLender) Plot() string {
	var bars []textplot.Bar
	for _, r := range a.Rows {
		bars = append(bars, textplot.Bar{
			Label: fmt.Sprintf("%s hp=%.2f", r.Order, r.HopPenalty),
			Value: r.NormThroughput,
		})
	}
	return textplot.BarChart("normalised throughput by lender order", bars, 40, "")
}

// Plot renders the Fig. 4 heatmaps with shaded cells.
func (f *Fig4) Plot() string {
	var sb strings.Builder
	for _, part := range []struct {
		name string
		grid [][]float64
	}{{"average memory used", f.Avg}, {"maximum memory used", f.Max}} {
		// Paper orientation: highest memory bucket on top.
		rows := make([][]float64, 0, len(f.MemBins))
		labels := make([]string, 0, len(f.MemBins))
		for i := len(f.MemBins) - 1; i >= 0; i-- {
			row := make([]float64, len(f.SizeBins))
			for k := range f.SizeBins {
				row[k] = part.grid[i][k] * 100
			}
			rows = append(rows, row)
			labels = append(labels, f.MemBins[i])
		}
		sb.WriteString(textplot.Heatmap(part.name+" (% of jobs)", labels, f.SizeBins, rows, "%.1f"))
		sb.WriteByte('\n')
	}
	return sb.String()
}
