package experiments

import (
	"fmt"
	"strings"
)

// Fig9 reproduces Figure 9: the minimum total system memory needed to keep
// throughput at ≥ 95 % of the fully provisioned baseline, as a function of
// the overestimation factor, for the static and dynamic policies (synthetic
// trace, 50 % large jobs).
type Fig9 struct {
	Threshold float64 // 0.95
	Points    []Fig9Point
}

// Fig9Point is one overestimation level's minimum provisioning; 0 means no
// configuration reached the threshold.
type Fig9Point struct {
	Overest    float64
	StaticPct  int
	DynamicPct int
}

// RunFig9 derives the figure from a Figure 8 synthetic sweep.
func RunFig9(p Preset) (*Fig9, error) {
	f8, err := RunFig8(p, false)
	if err != nil {
		return nil, err
	}
	return Fig9FromFig8(f8, 0.95)
}

// Fig9FromFig8 extracts the minimum-memory points from an existing sweep.
func Fig9FromFig8(f8 *Fig8, threshold float64) (*Fig9, error) {
	if len(f8.Synthetic) != len(Fig8Overests) {
		return nil, fmt.Errorf("experiments: fig8 sweep incomplete (%d panels)", len(f8.Synthetic))
	}
	out := &Fig9{Threshold: threshold}
	for i, ov := range Fig8Overests {
		pt := Fig9Point{Overest: ov}
		for _, r := range f8.Synthetic[i].Rows { // rows are memory-ascending
			if pt.StaticPct == 0 && !isNaN(r.Static) && r.Static >= threshold {
				pt.StaticPct = r.MemPct
			}
			if pt.DynamicPct == 0 && !isNaN(r.Dynamic) && r.Dynamic >= threshold {
				pt.DynamicPct = r.MemPct
			}
		}
		out.Points = append(out.Points, pt)
	}
	return out, nil
}

func (f *Fig9) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: minimum memory for ≥%.0f%% of baseline throughput (50%% large jobs)\n\n", f.Threshold*100)
	fmt.Fprintf(&b, "%12s %12s %12s\n", "overest", "static", "dynamic")
	for _, pt := range f.Points {
		fmt.Fprintf(&b, "%11.0f%% %12s %12s\n", pt.Overest*100, pctCell(pt.StaticPct), pctCell(pt.DynamicPct))
	}
	return b.String()
}

func pctCell(p int) string {
	if p == 0 {
		return "-"
	}
	return fmt.Sprintf("%d%%", p)
}

// MaxMemorySaving returns the largest static−dynamic provisioning gap in
// percentage points — the paper's "saving almost 40 % more memory".
func (f *Fig9) MaxMemorySaving() int {
	best := 0
	for _, pt := range f.Points {
		if pt.StaticPct > 0 && pt.DynamicPct > 0 {
			if d := pt.StaticPct - pt.DynamicPct; d > best {
				best = d
			}
		}
	}
	return best
}
