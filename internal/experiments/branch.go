package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"dismem/internal/core"
	"dismem/internal/job"
	"dismem/internal/policy"
	"dismem/internal/sweep"
	"dismem/internal/telemetry"
	"dismem/internal/tracegen"
)

// What-if branching: pause one simulation at a decision point, fork it
// copy-on-write into N variants, and run base and branches concurrently on
// the sweep pool. The shared prefix is simulated once; each branch pays only
// for its own suffix plus the ledger shards it actually touches, which is
// what makes late-diverging what-if sweeps O(suffix) instead of O(N runs).

// BranchVariant is one what-if overlay applied to a forked simulator. Zero
// fields keep the base's configuration, so the zero variant is the no-op
// branch — byte-identical to the base's own future, as the differential
// suite proves.
type BranchVariant struct {
	Name string `json:"name"`
	// Policy swaps the placement policy for the remainder of the run:
	// baseline, static, or dynamic. Empty keeps the base's policy.
	Policy string `json:"policy"`
	// Backfill swaps the backfill algorithm: easy, conservative, or none.
	Backfill string `json:"backfill"`
	// Repack deschedules every running job at the branch point — progress
	// checkpointed in full, allocations released — and lets the scheduler
	// repack the cluster from a clean slate (the descheduling study).
	Repack bool `json:"repack"`
	// UpdateInterval overrides the mean memory-update period (the
	// malleability knob) for jobs dispatched after the branch point.
	UpdateInterval float64 `json:"update_interval_s"`
}

// Validate checks the variant's enums.
func (v *BranchVariant) Validate() error {
	if v.Name == "" {
		return fmt.Errorf("branch: variant with empty %q", "name")
	}
	if v.Policy != "" {
		if _, err := parsePolicy(v.Policy); err != nil {
			return fmt.Errorf("branch: variant %q: %v", v.Name, err)
		}
	}
	if v.Backfill != "" {
		if _, err := parseBackfill(v.Backfill); err != nil {
			return fmt.Errorf("branch: variant %q: %v", v.Name, err)
		}
	}
	if v.UpdateInterval < 0 {
		return fmt.Errorf("branch: variant %q: negative update_interval_s", v.Name)
	}
	return nil
}

func parsePolicy(name string) (policy.Kind, error) {
	switch strings.ToLower(name) {
	case "baseline":
		return policy.Baseline, nil
	case "static":
		return policy.Static, nil
	case "dynamic":
		return policy.Dynamic, nil
	}
	return 0, fmt.Errorf("unknown policy %q (want baseline, static, or dynamic)", name)
}

func parseBackfill(name string) (core.BackfillMode, error) {
	switch strings.ToLower(name) {
	case "easy":
		return core.EASYBackfill, nil
	case "conservative":
		return core.ConservativeBackfill, nil
	case "none":
		return core.NoBackfill, nil
	}
	return 0, fmt.Errorf("unknown backfill mode %q (want easy, conservative, or none)", name)
}

// applyVariant applies one overlay to a freshly forked simulator.
func applyVariant(f *core.Simulator, v BranchVariant) error {
	if v.Policy != "" {
		k, err := parsePolicy(v.Policy)
		if err != nil {
			return err
		}
		f.SetPolicy(k)
	}
	if v.Backfill != "" {
		m, err := parseBackfill(v.Backfill)
		if err != nil {
			return err
		}
		f.SetBackfill(m)
	}
	if v.UpdateInterval > 0 {
		f.SetUpdateInterval(v.UpdateInterval)
	}
	if v.Repack {
		f.DescheduleRepack()
	}
	return nil
}

// BranchRun is one branch's outcome: its full simulation Result plus the
// fork-economics counters (shared-prefix events inherited, CoW copies paid).
type BranchRun struct {
	Name   string
	Result *core.Result
	Stats  core.BranchStats
}

// Branch forks the paused base simulator once per variant, applies each
// overlay, and finishes the base and every branch concurrently on the sweep
// pool. The base must be started, stepped to the desired branch point
// (core.Simulator.StepUntil), and not finished. On return the base's Result
// is first, branch runs follow in variant order. sinks, when non-nil, maps a
// variant name to the telemetry sink its branch records its suffix through
// (forked from the base's recorder, so prefix+suffix is a complete stream);
// variants absent from the map run without telemetry.
func Branch(base *core.Simulator, variants []BranchVariant,
	sinks map[string]telemetry.Sink) (*core.Result, []BranchRun, error) {
	forks := make([]*core.Simulator, len(variants))
	for i, v := range variants {
		if err := v.Validate(); err != nil {
			return nil, nil, err
		}
		var tel *telemetry.Recorder
		if sink, ok := sinks[v.Name]; ok {
			tel = base.Telemetry().Fork(sink)
		}
		f, err := base.Fork(tel)
		if err != nil {
			return nil, nil, err
		}
		if err := applyVariant(f, v); err != nil {
			return nil, nil, err
		}
		forks[i] = f
	}

	// Base and branches are independent after Fork; run them all
	// concurrently. Task 0 is the base.
	tasks := make([]sweep.Task[*core.Result], 0, len(forks)+1)
	tasks = append(tasks, base.Finish)
	for _, f := range forks {
		tasks = append(tasks, f.Finish)
	}
	results, err := sweep.Values(sweep.Run(tasks, 0))
	if err != nil {
		return nil, nil, err
	}

	runs := make([]BranchRun, len(forks))
	for i, f := range forks {
		runs[i] = BranchRun{Name: variants[i].Name, Result: results[i+1], Stats: f.BranchStats()}
	}
	// Record the fork economics on the base's stream — after the branch
	// runs, so the CoW counters reflect what each branch actually paid.
	for _, r := range runs {
		base.Telemetry().Branch(r.Name, r.Stats.SharedEvents, r.Stats.NodeCopies, r.Stats.ShardThaws)
	}
	return results[0], runs, nil
}

// BranchSpec is the what-if request the daemon serves: one (memory, policy)
// cell of a scenario re-simulated to a branch point and forked under variant
// overlays.
type BranchSpec struct {
	MemPct   int             `json:"mem_pct"`
	Policy   string          `json:"policy"`
	AtTime   float64         `json:"at_time_s"` // branch point; 0 = final state
	Variants []BranchVariant `json:"variants"`
}

// Validate checks the branch request against the paper's configuration axes.
func (b *BranchSpec) Validate() error {
	if _, err := MemConfigByPct(b.MemPct); err != nil {
		return fmt.Errorf("branch: field %q: %v", "mem_pct", err)
	}
	if _, err := parsePolicy(b.Policy); err != nil {
		return fmt.Errorf("branch: field %q: %v", "policy", err)
	}
	if b.AtTime < 0 {
		return fmt.Errorf("branch: field %q: negative time %g", "at_time_s", b.AtTime)
	}
	if len(b.Variants) == 0 {
		return fmt.Errorf("branch: field %q: at least one variant required", "variants")
	}
	seen := map[string]bool{}
	for i := range b.Variants {
		if err := b.Variants[i].Validate(); err != nil {
			return err
		}
		if seen[b.Variants[i].Name] {
			return fmt.Errorf("branch: duplicate variant name %q", b.Variants[i].Name)
		}
		seen[b.Variants[i].Name] = true
	}
	return nil
}

// ValidateFor checks the branch request against a concrete scenario: the
// branched (memory, policy) cell must be one the scenario actually sweeps,
// since a branch re-simulates that cell's prefix and a cell the scenario
// never ran would silently answer a different question than the cached
// result the client branched from.
func (b *BranchSpec) ValidateFor(s *ScenarioSpec) error {
	if err := b.Validate(); err != nil {
		return err
	}
	mem := false
	for _, pct := range s.resolvedMemPcts() {
		if pct == b.MemPct {
			mem = true
			break
		}
	}
	if !mem {
		return fmt.Errorf("branch: scenario %q has no %d%% memory cell", s.Name, b.MemPct)
	}
	k, err := parsePolicy(b.Policy)
	if err != nil {
		return err
	}
	pols, err := s.policies()
	if err != nil {
		return err
	}
	for _, p := range pols {
		if p == k {
			return nil
		}
	}
	return fmt.Errorf("branch: scenario %q has no %q policy cell", s.Name, b.Policy)
}

// LoadBranchSpec parses and validates a branch request document. Unknown
// fields are rejected for the same reason LoadScenario rejects them: the
// daemon serves untrusted documents, and a typoed overlay knob silently
// ignored would return a confidently wrong what-if.
func LoadBranchSpec(r io.Reader) (*BranchSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var b BranchSpec
	if err := dec.Decode(&b); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, errors.New("branch: empty spec (want a JSON object)")
		}
		return nil, fmt.Errorf("branch: %v", err)
	}
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return &b, nil
}

// BranchKey returns the canonical SHA-256 identity of a branch request
// against a completed scenario: the parent scenario's key folded with every
// branch dimension. Two requests with the same key, run at the same preset,
// produce byte-identical branch results, so the dmpd daemon caches and
// single-flights branch computations under it exactly like scenarios.
func BranchKey(scenarioID string, br *BranchSpec) string {
	c := tracegen.NewCanon("dismem/branch/v1")
	c.Str("scenario", scenarioID)
	c.Int("mem", int64(br.MemPct))
	c.Str("pol", strings.ToLower(br.Policy))
	c.Float("at", br.AtTime)
	for _, v := range br.Variants {
		c.Str("var", v.Name)
		c.Str("vpol", strings.ToLower(v.Policy))
		c.Str("vbf", strings.ToLower(v.Backfill))
		repack := int64(0)
		if v.Repack {
			repack = 1
		}
		c.Int("vrepack", repack)
		c.Float("vupdate", v.UpdateInterval)
	}
	return c.Sum()
}

// BranchRow is one branch's summary in a BranchResult.
type BranchRow struct {
	Name         string  `json:"name"`
	Policy       string  `json:"policy"`
	Completed    int     `json:"completed"`
	OOMKills     int     `json:"oom_kills"`
	Makespan     float64 `json:"makespan_s"`
	Throughput   float64 `json:"throughput"`
	MeanStretch  float64 `json:"mean_stretch"`
	SharedEvents uint64  `json:"shared_events"`
	NodeCopies   int64   `json:"cow_node_copies"`
	ShardThaws   int64   `json:"cow_shard_thaws"`
}

// BranchResult is the daemon-facing outcome: the base cell's row (variant
// name "base") followed by one row per variant.
type BranchResult struct {
	Name string      `json:"name"`
	Rows []BranchRow `json:"rows"`
}

func branchRow(name string, res *core.Result, st core.BranchStats) BranchRow {
	row := BranchRow{
		Name: name, Policy: res.Policy,
		SharedEvents: st.SharedEvents, NodeCopies: st.NodeCopies, ShardThaws: st.ShardThaws,
	}
	if !res.Infeasible {
		row.Completed = res.Completed
		row.OOMKills = res.OOMKills
		row.Makespan = res.Makespan
		row.Throughput = res.Throughput()
		row.MeanStretch = res.MeanStretch()
	}
	return row
}

// RunBranchSpec re-simulates the selected scenario cell to the branch point
// and fans the variants out as concurrent copy-on-write branches. An AtTime
// of zero (or past the cell's last event) brands the final state: every
// event fires in the prefix and the branches replay only their overlays'
// consequences — useful with repack variants. Cancellation via ctx aborts
// the prefix between events; the concurrent branch runs are not
// interruptible (they own no connection state and finish in bounded time).
func (p Preset) RunBranchSpec(ctx context.Context, s *ScenarioSpec, br *BranchSpec) (*BranchResult, error) {
	if err := br.ValidateFor(s); err != nil {
		return nil, err
	}
	mc, err := MemConfigByPct(br.MemPct)
	if err != nil {
		return nil, err
	}
	polKind, err := parsePolicy(br.Policy)
	if err != nil {
		return nil, err
	}
	bf, err := s.backfill()
	if err != nil {
		return nil, err
	}
	oom, err := s.oom()
	if err != nil {
		return nil, err
	}
	pm, err := s.pressure()
	if err != nil {
		return nil, err
	}
	jobs, params, err := p.scenarioJobs(ctx, s)
	if err != nil {
		return nil, err
	}

	cfg := p.ConfigFor(params.SystemNodes, mc, polKind)
	cfg.Backfill = bf
	cfg.OOM = oom
	cfg.Pressure = pm
	cfg.Domains = s.Domains
	cfg.EnforceTimeLimit = s.EnforceTimeLimit
	if s.UpdateInterval > 0 {
		cfg.UpdateInterval = s.UpdateInterval
	}
	if ctx.Done() != nil {
		cfg.Interrupt = ctx.Err
	}
	base, err := core.New(cfg, jobs)
	if err != nil {
		return nil, err
	}
	base.Start()
	at := br.AtTime
	if at == 0 {
		at = infTime
	}
	if err := base.StepUntil(at); err != nil {
		return nil, err
	}
	baseRes, runs, err := Branch(base, br.Variants, nil)
	if err != nil {
		return nil, err
	}

	out := &BranchResult{Name: s.Name}
	out.Rows = append(out.Rows, branchRow("base", baseRes, core.BranchStats{}))
	for _, r := range runs {
		out.Rows = append(out.Rows, branchRow(r.Name, r.Result, r.Stats))
	}
	return out, nil
}

// infTime is "after every event": StepUntil fires the whole timeline.
const infTime = 1e300

// scenarioJobs resolves the spec's trace (cached) and overlays dependency
// chains, exactly as RunScenarioSpecCtx does for the sweep cells; the two
// share this helper so a branched cell replays the sweep's precise workload.
func (p Preset) scenarioJobs(ctx context.Context, s *ScenarioSpec) ([]*job.Job, tracegen.Params, error) {
	params := p.scenarioTraceParams(s)
	if err := ctx.Err(); err != nil {
		return nil, params, err
	}
	tr, err := tracegen.Cached(params)
	if err != nil {
		return nil, params, err
	}
	jobs := tr.Jobs
	if s.Trace.ChainFrac > 0 {
		jobs = make([]*job.Job, len(tr.Jobs))
		for i, jb := range tr.Jobs {
			clone := *jb
			jobs[i] = &clone
		}
		chainRng := newRand(params.Seed + 99)
		for i := range jobs {
			if i > 0 && chainRng.Float64() < s.Trace.ChainFrac {
				back := 1 + chainRng.Intn(min(i, 5))
				jobs[i].DependsOn = jobs[i].ID - back
			}
		}
	}
	return jobs, params, nil
}
