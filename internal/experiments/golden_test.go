package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
	"testing"

	"dismem/internal/core"
	"dismem/internal/policy"
)

// Golden digests of one Bench()-preset scenario per policy (job mix 50 %,
// +60 % overestimation, 75 % memory configuration — the BenchmarkScenario
// cell). They were recorded on the pre-index implementation that rescanned
// and re-sorted the cluster on every borrow; the incremental indexes must
// reproduce the simulation bit-for-bit, so any digest change here means the
// optimisation altered scheduling behaviour and is a bug, not drift.
//
// To regenerate after an intentional behaviour change, run the test and
// copy the "got" digests it prints on failure.
var goldenScenarioDigests = map[string]string{
	"baseline": "d3e5ba7b5ade33f87867007770910bdfd98be75793b6878f4cb9bbad0ed91b15",
	"static":   "ffc9305f18012fc49827355b2f0df9b58410132d9d53e31602456bfec1329c8f",
	"dynamic":  "28f13c4fd4640b3aa3b2c64e322252b2afd913f1aa762241bc775dc9fa893f6f",
}

// digestResult folds every determinism-relevant field of a Result — job
// records, attempts, OOM kills, the utilisation integrals — into a sha256
// digest. Floats are folded as exact IEEE-754 bit patterns: two runs are
// "identical" only if every time stamp matches to the last bit.
func digestResult(r *core.Result) string {
	var b strings.Builder
	fb := func(f float64) { fmt.Fprintf(&b, "%016x,", math.Float64bits(f)) }
	fmt.Fprintf(&b, "policy=%s,infeasible=%t,job=%d,", r.Policy, r.Infeasible, r.InfeasibleJob)
	fmt.Fprintf(&b, "completed=%d,timedout=%d,abandoned=%d,oom=%d,nodes=%d,cap=%d,",
		r.Completed, r.TimedOut, r.Abandoned, r.OOMKills, r.Nodes, r.TotalCapacityMB)
	fb(r.Makespan)
	fb(r.AllocMBSeconds)
	fb(r.UsedMBSeconds)
	fb(r.BusyNodeSeconds)
	for i := range r.Records {
		rec := &r.Records[i]
		fmt.Fprintf(&b, "id=%d,outcome=%d,restarts=%d,", rec.Job.ID, rec.Outcome, rec.Restarts)
		fb(rec.Submit)
		fb(rec.FirstStart)
		fb(rec.LastStart)
		fb(rec.Finish)
		for _, a := range rec.Attempts {
			fmt.Fprintf(&b, "how=%d,", a.How)
			fb(a.Start)
			fb(a.End)
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// TestGoldenScenarioDigest is the determinism regression gate for the
// incremental cluster-ledger indexes: it runs the BenchmarkScenario cell
// twice per policy and asserts (a) the two runs are bit-identical and
// (b) they match the digest recorded before the indexes existed.
func TestGoldenScenarioDigest(t *testing.T) {
	p := Bench()
	trace, err := p.SyntheticTrace(0.5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MemConfigByPct(75)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []policy.Kind{policy.Baseline, policy.Static, policy.Dynamic} {
		t.Run(kind.String(), func(t *testing.T) {
			res1, err := p.RunScenario(trace.Jobs, p.SystemNodes, mc, kind)
			if err != nil {
				t.Fatal(err)
			}
			res2, err := p.RunScenario(trace.Jobs, p.SystemNodes, mc, kind)
			if err != nil {
				t.Fatal(err)
			}
			d1, d2 := digestResult(res1), digestResult(res2)
			if d1 != d2 {
				t.Fatalf("two identical runs diverged: %s vs %s", d1, d2)
			}
			want := goldenScenarioDigests[kind.String()]
			if d1 != want {
				t.Fatalf("digest mismatch for %s:\n  got  %s\n  want %s\n"+
					"(events fired: run1=%d jobs, completed=%d oom=%d)",
					kind, d1, want, len(res1.Records), res1.Completed, res1.OOMKills)
			}
		})
	}
}
