package experiments

import (
	"fmt"
	"strings"
)

// Fig8 reproduces Figure 8: the effect of memory overestimation on
// throughput. Each panel sweeps total system memory for one overestimation
// factor; the top row uses the synthetic trace with 50 % large jobs, the
// bottom row the Grizzly trace.
type Fig8 struct {
	Synthetic []*ThroughputGrid // one grid per overestimation factor
	Grizzly   []*ThroughputGrid
}

// Fig8Overests are the paper's overestimation panels.
var Fig8Overests = []float64{0, 0.25, 0.50, 0.60, 0.75, 1.00}

// RunFig8 executes the sweep; includeGrizzly controls the bottom row.
func RunFig8(p Preset, includeGrizzly bool) (*Fig8, error) {
	const largeFrac = 0.50
	out := &Fig8{}

	trace0, err := p.SyntheticTrace(largeFrac, 0)
	if err != nil {
		return nil, err
	}
	norm, err := p.BaselineNorm(trace0.Jobs, p.SystemNodes)
	if err != nil {
		return nil, err
	}
	for _, ov := range Fig8Overests {
		jobs := trace0.Jobs
		if ov != 0 {
			tr, err := p.SyntheticTrace(largeFrac, ov)
			if err != nil {
				return nil, err
			}
			jobs = tr.Jobs
		}
		g, err := p.ThroughputSweep(jobs, p.SystemNodes, norm, "large 50%", ov)
		if err != nil {
			return nil, err
		}
		out.Synthetic = append(out.Synthetic, g)
	}

	if includeGrizzly {
		for _, ov := range Fig8Overests {
			g, err := p.GrizzlyGrid(ov)
			if err != nil {
				return nil, err
			}
			out.Grizzly = append(out.Grizzly, g)
		}
	}
	return out, nil
}

func (f *Fig8) String() string {
	var b strings.Builder
	b.WriteString("Figure 8: throughput vs total memory across overestimation factors\n\n")
	for _, g := range f.Synthetic {
		b.WriteString(g.String())
		b.WriteString("\n")
	}
	for _, g := range f.Grizzly {
		b.WriteString(g.String())
		b.WriteString("\n")
	}
	return b.String()
}

// DynamicAdvantageAt returns dynamic − static at a given memory point and
// overestimation in the synthetic row — the paper highlights >38 % at
// (+100 %, 37 % memory).
func (f *Fig8) DynamicAdvantageAt(overest float64, memPct int) (float64, error) {
	for i, ov := range Fig8Overests {
		if ov != overest || i >= len(f.Synthetic) {
			continue
		}
		for _, r := range f.Synthetic[i].Rows {
			if r.MemPct == memPct {
				if isNaN(r.Dynamic) || isNaN(r.Static) {
					return 0, fmt.Errorf("experiments: point (+%g%%, %d%%) infeasible", overest*100, memPct)
				}
				return r.Dynamic - r.Static, nil
			}
		}
	}
	return 0, fmt.Errorf("experiments: point (+%g%%, %d%%) not in Figure 8", overest*100, memPct)
}
