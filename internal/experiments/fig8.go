package experiments

import (
	"fmt"
	"strings"

	"dismem/internal/sweep"
)

// Fig8 reproduces Figure 8: the effect of memory overestimation on
// throughput. Each panel sweeps total system memory for one overestimation
// factor; the top row uses the synthetic trace with 50 % large jobs, the
// bottom row the Grizzly trace.
type Fig8 struct {
	Synthetic []*ThroughputGrid // one grid per overestimation factor
	Grizzly   []*ThroughputGrid
}

// Fig8Overests are the paper's overestimation panels.
var Fig8Overests = []float64{0, 0.25, 0.50, 0.60, 0.75, 1.00}

// RunFig8 executes the sweep; includeGrizzly controls the bottom row. The
// whole figure is one up-front task DAG: the shared baseline norm is a
// future all six synthetic panels wait on, and the Grizzly rows run
// alongside rather than after them.
func RunFig8(p Preset, includeGrizzly bool) (*Fig8, error) {
	const largeFrac = 0.50
	pool := sweep.SharedPool()

	norm := sweep.Submit(pool, func() (float64, error) {
		trace0, err := p.SyntheticTrace(largeFrac, 0)
		if err != nil {
			return 0, err
		}
		return p.BaselineNorm(trace0.Jobs, p.SystemNodes)
	})
	var synth, griz []*sweep.Future[*ThroughputGrid]
	for _, ov := range Fig8Overests {
		ov := ov
		synth = append(synth, sweep.Submit(pool, func() (*ThroughputGrid, error) {
			tr, err := p.SyntheticTrace(largeFrac, ov)
			if err != nil {
				return nil, err
			}
			n, err := norm.Get()
			if err != nil {
				return nil, err
			}
			return p.ThroughputSweep(tr.Jobs, p.SystemNodes, n, "large 50%", ov)
		}))
	}
	if includeGrizzly {
		for _, ov := range Fig8Overests {
			ov := ov
			griz = append(griz, sweep.Submit(pool, func() (*ThroughputGrid, error) {
				return p.GrizzlyGrid(ov)
			}))
		}
	}

	out := &Fig8{}
	var err error
	if out.Synthetic, err = sweep.CollectValues(synth); err != nil {
		return nil, err
	}
	if includeGrizzly {
		if out.Grizzly, err = sweep.CollectValues(griz); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (f *Fig8) String() string {
	var b strings.Builder
	b.WriteString("Figure 8: throughput vs total memory across overestimation factors\n\n")
	for _, g := range f.Synthetic {
		b.WriteString(g.String())
		b.WriteString("\n")
	}
	for _, g := range f.Grizzly {
		b.WriteString(g.String())
		b.WriteString("\n")
	}
	return b.String()
}

// DynamicAdvantageAt returns dynamic − static at a given memory point and
// overestimation in the synthetic row — the paper highlights >38 % at
// (+100 %, 37 % memory).
func (f *Fig8) DynamicAdvantageAt(overest float64, memPct int) (float64, error) {
	for i, ov := range Fig8Overests {
		if ov != overest || i >= len(f.Synthetic) {
			continue
		}
		for _, r := range f.Synthetic[i].Rows {
			if r.MemPct == memPct {
				if isNaN(r.Dynamic) || isNaN(r.Static) {
					return 0, fmt.Errorf("experiments: point (+%g%%, %d%%) infeasible", overest*100, memPct)
				}
				return r.Dynamic - r.Static, nil
			}
		}
	}
	return 0, fmt.Errorf("experiments: point (+%g%%, %d%%) not in Figure 8", overest*100, memPct)
}
