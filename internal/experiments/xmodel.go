package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"

	"dismem/internal/tracegen"
	"dismem/internal/workload"
)

// ModelComparison checks that the paper's conclusion — dynamic beats static
// on underprovisioned, overestimated systems — is robust to the synthetic
// workload model by running the same sweep under the CIRNE and the
// Lublin–Feitelson generators.
type ModelComparison struct {
	Grids map[string]*ThroughputGrid // model name → 50 % large, +60 % sweep
}

// ModelNames lists the compared generators.
var ModelNames = []string{"cirne", "lublin"}

// RunModelComparison executes the comparison.
func RunModelComparison(p Preset) (*ModelComparison, error) {
	out := &ModelComparison{Grids: map[string]*ThroughputGrid{}}
	// Scale the Lublin model to the preset like the CIRNE override does:
	// job sizes and runtimes must fit the (possibly tiny) system.
	lp := workload.NewLublinParams(p.SystemNodes, p.Load, p.Days)
	if p.Cirne != nil {
		lp.MaxNodes = p.Cirne.MaxNodes
		lp.MaxRuntime = p.Cirne.MaxRuntime
	}
	if lp.MaxNodes > p.SystemNodes {
		lp.MaxNodes = p.SystemNodes
	}
	lp.UHi = math.Log2(float64(lp.MaxNodes))
	if lp.UMed > lp.UHi {
		lp.UMed = lp.UHi / 2
	}
	for _, model := range ModelNames {
		gen := func(overest float64) (*tracegen.Output, error) {
			return tracegen.Run(tracegen.Params{
				SystemNodes:       p.SystemNodes,
				Load:              p.Load,
				Days:              p.Days,
				LargeFrac:         0.5,
				Overestimation:    overest,
				NormalNodeMB:      NormalNodeMB,
				GoogleCollections: p.GoogleCollections,
				Model:             model,
				Cirne:             p.Cirne,
				Lublin:            &lp,
				Seed:              p.Seed,
			})
		}
		tr0, err := gen(0)
		if err != nil {
			return nil, err
		}
		norm, err := p.BaselineNorm(tr0.Jobs, p.SystemNodes)
		if err != nil {
			return nil, err
		}
		tr, err := gen(0.6)
		if err != nil {
			return nil, err
		}
		grid, err := p.ThroughputSweep(tr.Jobs, p.SystemNodes, norm, model+" large 50%", 0.6)
		if err != nil {
			return nil, err
		}
		out.Grids[model] = grid
	}
	return out, nil
}

// DynamicWinsEverywhere reports whether dynamic ≥ static − tolerance on
// every feasible point of every model.
func (m *ModelComparison) DynamicWinsEverywhere(tolerance float64) bool {
	for _, g := range m.Grids {
		for _, r := range g.Rows {
			if !isNaN(r.Dynamic) && !isNaN(r.Static) && r.Dynamic < r.Static-tolerance {
				return false
			}
		}
	}
	return true
}

func (m *ModelComparison) String() string {
	var b strings.Builder
	b.WriteString("Cross-model robustness: 50% large jobs, +60% overestimation\n\n")
	for _, name := range ModelNames {
		if g, ok := m.Grids[name]; ok {
			b.WriteString(g.String())
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "dynamic ≥ static on every feasible point: %v\n", m.DynamicWinsEverywhere(0.02))
	return b.String()
}

// WriteCSV reuses the tidy grid format with the model in the trace column.
func (m *ModelComparison) WriteCSV(w io.Writer) error {
	grids := make([]*ThroughputGrid, 0, len(m.Grids))
	for _, name := range ModelNames {
		if g, ok := m.Grids[name]; ok {
			grids = append(grids, g)
		}
	}
	return writeGrids(w, grids)
}
