package experiments

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
	"testing"

	"dismem/internal/metrics"
)

// Golden digests of the whole figure pipeline at the Quick() preset,
// recorded on the pre-pipeline implementation: the serial RunFig5/6/7/8/9
// and RunHeadlines that generated every trace from scratch and ran each
// stage behind a barrier. The pooled, cached pipeline must reproduce every
// figure bit-for-bit (float64 bit patterns included); a digest change here
// means the restructuring altered results, which is a bug, not drift.
//
// To regenerate after an intentional behaviour change, run the test and
// copy the "got" digests it prints on failure.
var goldenPipelineDigests = map[string]string{
	"fig5":      "e5e6ebb1bd95e61702726ef24d4b8e3464e916508d6e0f79f36464bdd0f36dee",
	"fig6":      "e033bed213879d45a9ce5da963d942ecbe3a09a6b7881f037cb594b84a87f4e0",
	"fig7":      "8fa5814b6039cf673bc8d2e03ea15e34adfc62486ea45a88001015935014c0b4",
	"fig8":      "7641957a780cad66416b72b2cb9aa73743d2c1658c2bfd7bd8eef13659c2a496",
	"fig9":      "ce9ae7b21d3df63535ca85f3f17340e0b3ffcc9cf85a0ca81ff7b5c5326ae24e",
	"headlines": "c053fa812dafe93933bdc0659af80f3df0b94bdfdf437afe57f48ab5684ec905",
}

// fbits folds a float64 into the digest as its exact IEEE-754 bit pattern.
func fbits(b *strings.Builder, f float64) { fmt.Fprintf(b, "%016x,", math.Float64bits(f)) }

func digestGrid(b *strings.Builder, g *ThroughputGrid) {
	fmt.Fprintf(b, "trace=%s,", g.Trace)
	fbits(b, g.Overest)
	for _, r := range g.Rows {
		fmt.Fprintf(b, "mem=%d,", r.MemPct)
		fbits(b, r.Baseline)
		fbits(b, r.Static)
		fbits(b, r.Dynamic)
	}
}

func seal(b *strings.Builder) string {
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

func digestFig5(f *Fig5) string {
	var b strings.Builder
	for _, g := range f.Panels {
		digestGrid(&b, g)
	}
	return seal(&b)
}

func digestECDF(b *strings.Builder, e *metrics.ECDF) {
	if e == nil {
		b.WriteString("nil,")
		return
	}
	fmt.Fprintf(b, "n=%d,", e.Len())
	for _, pt := range e.Points(0) {
		fbits(b, pt.X)
		fbits(b, pt.P)
	}
}

func digestFig6(f *Fig6) string {
	var b strings.Builder
	for i := range f.Panels {
		p := &f.Panels[i]
		fmt.Fprintf(&b, "sc=%s,mem=%d,", p.Scenario, p.MemPct)
		fbits(&b, p.Overest)
		digestECDF(&b, p.Static)
		digestECDF(&b, p.Dynamic)
	}
	return seal(&b)
}

func digestFig7(f *Fig7) string {
	var b strings.Builder
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "sys=%d,", p.SysPct)
		fbits(&b, p.Overest)
		for _, pt := range p.Points {
			fmt.Fprintf(&b, "large=%d,", pt.LargePct)
			fbits(&b, pt.Static)
			fbits(&b, pt.Dynamic)
		}
	}
	return seal(&b)
}

func digestFig8(f *Fig8) string {
	var b strings.Builder
	for _, g := range f.Synthetic {
		digestGrid(&b, g)
	}
	b.WriteString("grizzly,")
	for _, g := range f.Grizzly {
		digestGrid(&b, g)
	}
	return seal(&b)
}

func digestFig9(f *Fig9) string {
	var b strings.Builder
	fbits(&b, f.Threshold)
	for _, pt := range f.Points {
		fbits(&b, pt.Overest)
		fmt.Fprintf(&b, "static=%d,dynamic=%d,", pt.StaticPct, pt.DynamicPct)
	}
	return seal(&b)
}

func digestStat(b *strings.Builder, s Stat) {
	fbits(b, s.Mean)
	fbits(b, s.Stdev)
	fmt.Fprintf(b, "n=%d,", s.N)
}

func digestHeadlines(h *Headlines) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seeds=%d,", h.Seeds)
	digestStat(&b, h.ThroughputGainPts)
	digestStat(&b, h.TPDGainFrac)
	digestStat(&b, h.MedianRespReduct)
	digestStat(&b, h.MemorySavingPoints)
	return seal(&b)
}

// TestGoldenPipelineDigest is the determinism regression gate for the
// barrier-free experiment pipeline: every figure and the replicated
// headline metrics, at the Quick() preset, must match the digests captured
// on the serial, uncached implementation.
func TestGoldenPipelineDigest(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-pipeline golden run is expensive; skipped with -short")
	}
	p := Quick()
	steps := []struct {
		name string
		run  func() (string, error)
	}{
		{"fig5", func() (string, error) {
			f, err := RunFig5(p, false)
			if err != nil {
				return "", err
			}
			return digestFig5(f), nil
		}},
		{"fig6", func() (string, error) {
			f, err := RunFig6(p)
			if err != nil {
				return "", err
			}
			return digestFig6(f), nil
		}},
		{"fig7", func() (string, error) {
			f, err := RunFig7(p)
			if err != nil {
				return "", err
			}
			return digestFig7(f), nil
		}},
		{"fig8", func() (string, error) {
			f, err := RunFig8(p, false)
			if err != nil {
				return "", err
			}
			return digestFig8(f), nil
		}},
		{"fig9", func() (string, error) {
			f, err := RunFig9(p)
			if err != nil {
				return "", err
			}
			return digestFig9(f), nil
		}},
		{"headlines", func() (string, error) {
			h, err := RunHeadlines(p, 2)
			if err != nil {
				return "", err
			}
			return digestHeadlines(h), nil
		}},
	}
	for _, s := range steps {
		s := s
		t.Run(s.name, func(t *testing.T) {
			got, err := s.run()
			if err != nil {
				t.Fatal(err)
			}
			if want := goldenPipelineDigests[s.name]; got != want {
				t.Fatalf("digest mismatch for %s:\n  got  %s\n  want %s", s.name, got, want)
			}
		})
	}
}

// TestFig5PipelineMatchesSerial compares the live pipelines head to head,
// with no recorded digests in between: the barrier-free pooled run served
// from the trace cache must equal the serial run that generates every
// trace from scratch, down to the last float64 bit. This covers both
// axes the tentpole changed — pooled-vs-serial scheduling and
// cached-vs-uncached trace generation.
func TestFig5PipelineMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("two full Fig. 5 runs are expensive; skipped with -short")
	}
	p := Quick()
	serial, err := RunFig5Serial(p, false)
	if err != nil {
		t.Fatal(err)
	}
	pooled, err := RunFig5(p, false)
	if err != nil {
		t.Fatal(err)
	}
	ds, dp := digestFig5(serial), digestFig5(pooled)
	if ds != dp {
		t.Fatalf("pooled+cached pipeline diverged from the serial reference:\n  serial %s\n  pooled %s", ds, dp)
	}
}
