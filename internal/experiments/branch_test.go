package experiments

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"dismem/internal/core"
	"dismem/internal/policy"
	"dismem/internal/telemetry"
)

func branchTestSpec() *ScenarioSpec {
	s := &ScenarioSpec{}
	s.Name = "branch-test"
	s.MemPcts = []int{75}
	s.Policies = []string{"dynamic"}
	return s
}

// pausedBase builds one scenario cell and steps it to the branch point.
func pausedBase(t *testing.T, tel *telemetry.Recorder, at float64) *core.Simulator {
	t.Helper()
	p := Bench()
	s := branchTestSpec()
	jobs, params, err := p.scenarioJobs(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := MemConfigByPct(75)
	if err != nil {
		t.Fatal(err)
	}
	cfg := p.ConfigFor(params.SystemNodes, mc, corePolicy(t, "dynamic"))
	cfg.Telemetry = tel
	base, err := core.New(cfg, jobs)
	if err != nil {
		t.Fatal(err)
	}
	base.Start()
	if err := base.StepUntil(at); err != nil {
		t.Fatal(err)
	}
	return base
}

func corePolicy(t *testing.T, name string) policy.Kind {
	t.Helper()
	k, err := parsePolicy(name)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestBranchNoopAndVariants: the no-op branch's Result equals the base's
// (both equal a fresh run), variant branches produce valid diverging runs,
// and the base recorder carries one KindBranch event per variant.
func TestBranchNoopAndVariants(t *testing.T) {
	var baseLog bytes.Buffer
	tel := telemetry.New(telemetry.Options{Sink: telemetry.NewJSONL(&baseLog)})
	base := pausedBase(t, tel, 3600)

	variants := []BranchVariant{
		{Name: "noop"},
		{Name: "swap-static", Policy: "static"},
		{Name: "no-backfill", Backfill: "none"},
		{Name: "repack", Repack: true},
		{Name: "fast-updates", UpdateInterval: 60},
	}
	baseRes, runs, err := Branch(base, variants, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != len(variants) {
		t.Fatalf("got %d runs, want %d", len(runs), len(variants))
	}
	if !reflect.DeepEqual(runs[0].Result, baseRes) {
		t.Fatalf("no-op branch diverged from base\nbase:   %+v\nbranch: %+v", baseRes, runs[0].Result)
	}
	if runs[0].Stats.SharedEvents == 0 {
		t.Fatal("no-op branch reports zero shared-prefix events")
	}
	if got := runs[1].Result.Policy; got != "static" {
		t.Fatalf("swap-static branch reports policy %q", got)
	}
	// A repacked branch preempts at least one running job.
	preempted := 0
	for _, rec := range runs[3].Result.Records {
		for _, a := range rec.Attempts {
			if a.How == core.AttemptPreempted {
				preempted++
			}
		}
	}
	if preempted == 0 {
		t.Fatal("repack branch preempted nothing")
	}
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(baseLog.String(), `"ev":"branch"`); got != len(variants) {
		t.Fatalf("base log has %d branch events, want %d", got, len(variants))
	}
	for _, r := range runs {
		if r.Result.Completed == 0 {
			t.Fatalf("branch %q completed no jobs: %+v", r.Name, r.Result)
		}
	}
}

// TestBranchSuffixTelemetry: a branch recording through a sink forked from
// the base's recorder emits a parseable JSONL suffix.
func TestBranchSuffixTelemetry(t *testing.T) {
	var baseLog, suffix bytes.Buffer
	tel := telemetry.New(telemetry.Options{Sink: telemetry.NewJSONL(&baseLog)})
	base := pausedBase(t, tel, 3600)
	_, runs, err := Branch(base, []BranchVariant{{Name: "noop"}},
		map[string]telemetry.Sink{"noop": telemetry.NewJSONL(&suffix)})
	if err != nil {
		t.Fatal(err)
	}
	if runs[0].Result == nil {
		t.Fatal("branch returned no result")
	}
	if err := tel.Close(); err != nil {
		t.Fatal(err)
	}
	if suffix.Len() == 0 {
		t.Fatal("branch suffix telemetry is empty")
	}
	for _, line := range strings.Split(strings.TrimSpace(suffix.String()), "\n") {
		if !strings.HasPrefix(line, `{"t":`) {
			t.Fatalf("malformed suffix line: %s", line)
		}
	}
}

// TestRunBranchSpec drives the daemon-facing entry point end to end.
func TestRunBranchSpec(t *testing.T) {
	p := Bench()
	s := branchTestSpec()
	br := &BranchSpec{
		MemPct: 75, Policy: "dynamic", AtTime: 3600,
		Variants: []BranchVariant{{Name: "noop"}, {Name: "swap", Policy: "static"}},
	}
	res, err := p.RunBranchSpec(context.Background(), s, br)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (base + 2 variants)", len(res.Rows))
	}
	if res.Rows[0].Name != "base" || res.Rows[1].Name != "noop" || res.Rows[2].Name != "swap" {
		t.Fatalf("row order: %+v", res.Rows)
	}
	for i := range res.Rows[:2] {
		if res.Rows[i].Completed == 0 {
			t.Fatalf("row %d completed nothing: %+v", i, res.Rows[i])
		}
	}
	// The no-op branch reproduces the base cell exactly.
	if res.Rows[0].Makespan != res.Rows[1].Makespan || res.Rows[0].Throughput != res.Rows[1].Throughput {
		t.Fatalf("no-op branch diverged from base: %+v vs %+v", res.Rows[0], res.Rows[1])
	}
	if res.Rows[2].Policy != "static" {
		t.Fatalf("swap row policy %q", res.Rows[2].Policy)
	}
}

// TestBranchSpecValidate covers the request validation table.
func TestBranchSpecValidate(t *testing.T) {
	ok := func() *BranchSpec {
		return &BranchSpec{MemPct: 75, Policy: "dynamic", AtTime: 100,
			Variants: []BranchVariant{{Name: "a"}}}
	}
	if err := ok().Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*BranchSpec){
		"bad-mem":      func(b *BranchSpec) { b.MemPct = 33 },
		"bad-policy":   func(b *BranchSpec) { b.Policy = "bogus" },
		"neg-time":     func(b *BranchSpec) { b.AtTime = -1 },
		"no-variants":  func(b *BranchSpec) { b.Variants = nil },
		"dup-variant":  func(b *BranchSpec) { b.Variants = append(b.Variants, BranchVariant{Name: "a"}) },
		"unnamed":      func(b *BranchSpec) { b.Variants[0].Name = "" },
		"bad-backfill": func(b *BranchSpec) { b.Variants[0].Backfill = "bogus" },
		"bad-vpolicy":  func(b *BranchSpec) { b.Variants[0].Policy = "bogus" },
		"neg-update":   func(b *BranchSpec) { b.Variants[0].UpdateInterval = -5 },
	} {
		b := ok()
		mut(b)
		if err := b.Validate(); err == nil {
			t.Fatalf("%s: validation passed", name)
		}
	}
}
