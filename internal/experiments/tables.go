package experiments

import (
	"fmt"
	"strings"

	"dismem/internal/metrics"
	"dismem/internal/workload"
)

// Table2 reproduces the paper's Table 2: the share of jobs per max-memory
// bucket (GB/node), for all jobs and split by job size (normal ≤ 32 nodes,
// large > 32), for both the synthetic and the Grizzly trace.
type Table2 struct {
	Buckets   []string
	Synthetic [3][]float64 // all / normal / large shares per bucket
	Grizzly   [3][]float64
}

// RunTable2 builds both traces at the preset scale and histograms their
// per-node peak memory.
func RunTable2(p Preset) (*Table2, error) {
	out := &Table2{}
	for _, b := range workload.ArcherAll {
		out.Buckets = append(out.Buckets, fmt.Sprintf("[%g,%g)", b.LoGB, b.HiGB))
	}

	// Synthetic: sample the ARCHER distributions by size class, as the
	// pipeline's Step 5 does.
	rng := newRand(p.Seed + 100)
	const n = 20000
	var all, normal, large []int64
	for i := 0; i < n; i++ {
		isLarge := rng.Float64() < 0.33 // share of >32-node jobs in the model
		var v int64
		if isLarge {
			v = workload.ArcherLargeSize.SampleMB(rng)
			large = append(large, v)
		} else {
			v = workload.ArcherNormalSize.SampleMB(rng)
			normal = append(normal, v)
		}
		all = append(all, v)
	}
	out.Synthetic[0] = workload.ArcherAll.Histogram(all)
	out.Synthetic[1] = workload.ArcherAll.Histogram(normal)
	out.Synthetic[2] = workload.ArcherAll.Histogram(large)

	// Grizzly: histogram the synthetic LDMS dataset.
	d := p.GrizzlyDataset()
	all, normal, large = nil, nil, nil
	for _, w := range d.Weeks {
		for i := range w.Jobs {
			j := &w.Jobs[i]
			v := j.PeakMB()
			all = append(all, v)
			if j.Nodes > 32 {
				large = append(large, v)
			} else {
				normal = append(normal, v)
			}
		}
	}
	out.Grizzly[0] = workload.GrizzlyAll.Histogram(all)
	out.Grizzly[1] = workload.GrizzlyAll.Histogram(normal)
	out.Grizzly[2] = workload.GrizzlyAll.Histogram(large)
	return out, nil
}

func (t *Table2) String() string {
	var b strings.Builder
	b.WriteString("Table 2: max memory usage per node (share of jobs)\n\n")
	fmt.Fprintf(&b, "%-10s %21s   %21s\n", "", "---- synthetic ----", "----- grizzly -----")
	fmt.Fprintf(&b, "%-10s %6s %6s %6s   %6s %6s %6s\n", "GB/node", "all", "norm", "large", "all", "norm", "large")
	for i, bucket := range t.Buckets {
		fmt.Fprintf(&b, "%-10s %5.1f%% %5.1f%% %5.1f%%   %5.1f%% %5.1f%% %5.1f%%\n",
			bucket,
			t.Synthetic[0][i]*100, t.Synthetic[1][i]*100, t.Synthetic[2][i]*100,
			t.Grizzly[0][i]*100, t.Grizzly[1][i]*100, t.Grizzly[2][i]*100)
	}
	return b.String()
}

// Table3 reproduces the paper's Table 3: five-number summaries of per-node
// memory (MB) and node-hours, for normal- and large-memory jobs of the
// synthetic trace.
type Table3 struct {
	NormalMem, LargeMem metrics.Summary // MB per node
	NormalNH, LargeNH   metrics.Summary // node-hours
	NormalCount         int
	LargeCount          int
}

// RunTable3 generates a 50 % large-memory trace and characterises it.
func RunTable3(p Preset) (*Table3, error) {
	tr, err := p.SyntheticTrace(0.5, 0)
	if err != nil {
		return nil, err
	}
	var nm, lm, nn, ln []float64
	for _, j := range tr.Jobs {
		peak := float64(j.PeakUsageMB())
		nh := j.NodeHours()
		if j.PeakUsageMB() > NormalNodeMB {
			lm = append(lm, peak)
			ln = append(ln, nh)
		} else {
			nm = append(nm, peak)
			nn = append(nn, nh)
		}
	}
	out := &Table3{NormalCount: len(nm), LargeCount: len(lm)}
	if out.NormalMem, err = metrics.Summarize(nm); err != nil {
		return nil, err
	}
	if out.LargeMem, err = metrics.Summarize(lm); err != nil {
		return nil, err
	}
	if out.NormalNH, err = metrics.Summarize(nn); err != nil {
		return nil, err
	}
	if out.LargeNH, err = metrics.Summarize(ln); err != nil {
		return nil, err
	}
	return out, nil
}

func (t *Table3) String() string {
	var b strings.Builder
	b.WriteString("Table 3: normal and large memory job characteristics\n\n")
	fmt.Fprintf(&b, "%-8s %22s %22s\n", "", "normal-memory jobs", "large-memory jobs")
	fmt.Fprintf(&b, "%-8s %11s %10s %11s %10s\n", "metric", "mem (MB)", "node-h", "mem (MB)", "node-h")
	row := func(name string, f func(metrics.Summary) float64) {
		fmt.Fprintf(&b, "%-8s %11.0f %10.1f %11.0f %10.1f\n",
			name, f(t.NormalMem), f(t.NormalNH), f(t.LargeMem), f(t.LargeNH))
	}
	row("min", func(s metrics.Summary) float64 { return s.Min })
	row("q1", func(s metrics.Summary) float64 { return s.Q1 })
	row("median", func(s metrics.Summary) float64 { return s.Median })
	row("q3", func(s metrics.Summary) float64 { return s.Q3 })
	row("max", func(s metrics.Summary) float64 { return s.Max })
	fmt.Fprintf(&b, "\njobs: %d normal, %d large\n", t.NormalCount, t.LargeCount)
	return b.String()
}
