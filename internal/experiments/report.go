package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// ReportOptions selects what the markdown report includes.
type ReportOptions struct {
	Grizzly   bool // include the Grizzly columns (slower)
	Ablations bool
	Seeds     int // >1 replicates the headline metrics
}

// WriteReport runs the full evaluation at the preset's scale and writes a
// self-contained markdown report — the automated counterpart of this
// repository's EXPERIMENTS.md.
func WriteReport(w io.Writer, p Preset, opts ReportOptions) error {
	start := time.Now()
	out := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := out("# dismem evaluation report\n\npreset: %s (%d synthetic nodes, %.2g days, seed %d)\n\n",
		p.Name, p.SystemNodes, p.Days, p.Seed); err != nil {
		return err
	}

	code := func(title, body string) error {
		return out("## %s\n\n```\n%s```\n\n", title, body)
	}

	t2, err := RunTable2(p)
	if err != nil {
		return err
	}
	if err := code("Table 2 — max memory per node", t2.String()); err != nil {
		return err
	}
	t3, err := RunTable3(p)
	if err != nil {
		return err
	}
	if err := code("Table 3 — job characteristics", t3.String()); err != nil {
		return err
	}
	f2, err := RunFig2(p)
	if err != nil {
		return err
	}
	if err := code("Figure 2 — Grizzly week sampling", f2.String()); err != nil {
		return err
	}
	f4, err := RunFig4(p)
	if err != nil {
		return err
	}
	if err := code("Figure 4 — usage heatmaps", f4.String()); err != nil {
		return err
	}
	f5, err := RunFig5(p, opts.Grizzly)
	if err != nil {
		return err
	}
	if err := code("Figure 5 — throughput vs provisioned memory", f5.String()); err != nil {
		return err
	}
	f6, err := RunFig6(p)
	if err != nil {
		return err
	}
	if err := code("Figure 6 — response-time distributions", f6.String()); err != nil {
		return err
	}
	f7, err := RunFig7(p)
	if err != nil {
		return err
	}
	if err := code("Figure 7 — throughput per dollar", f7.String()); err != nil {
		return err
	}
	f8, err := RunFig8(p, opts.Grizzly)
	if err != nil {
		return err
	}
	if err := code("Figure 8 — overestimation sweep", f8.String()); err != nil {
		return err
	}
	f9, err := Fig9FromFig8(f8, 0.95)
	if err != nil {
		return err
	}
	if err := code("Figure 9 — minimum provisioning for 95% throughput", f9.String()); err != nil {
		return err
	}
	u, err := RunUtilization(p)
	if err != nil {
		return err
	}
	if err := code("Memory utilisation by policy", u.String()); err != nil {
		return err
	}

	if opts.Ablations {
		au, err := RunAblationUpdateInterval(p)
		if err != nil {
			return err
		}
		ao, err := RunAblationOOM(p)
		if err != nil {
			return err
		}
		ab, err := RunAblationBackfill(p)
		if err != nil {
			return err
		}
		al, err := RunAblationLender(p)
		if err != nil {
			return err
		}
		ap, err := RunAblationPriority(p)
		if err != nil {
			return err
		}
		var sb strings.Builder
		for _, s := range []fmt.Stringer{au, ao, ab, al, ap} {
			sb.WriteString(s.String())
			sb.WriteByte('\n')
		}
		if err := code("Ablations", sb.String()); err != nil {
			return err
		}
	}

	// Headline summary, optionally replicated.
	if opts.Seeds > 1 {
		h, err := RunHeadlines(p, opts.Seeds)
		if err != nil {
			return err
		}
		if err := code("Headline metrics", h.String()); err != nil {
			return err
		}
	} else {
		var sb strings.Builder
		fmt.Fprintf(&sb, "max throughput gain (dynamic-static): %+.1f%%  (paper: up to 13%%)\n",
			f5.DynamicAdvantage()*100)
		fmt.Fprintf(&sb, "max throughput-per-dollar gain:       %+.1f%%  (paper: up to 38%%)\n",
			f7.MaxDynamicGain()*100)
		best := 0.0
		for _, panel := range f6.Panels {
			if panel.Overest > 0 && panel.Scenario == "underprovisioned" {
				if r := panel.MedianReduction(); r > best {
					best = r
				}
			}
		}
		fmt.Fprintf(&sb, "median response reduction (+60%%):     %.0f%%  (paper: 69%%)\n", best*100)
		fmt.Fprintf(&sb, "memory saving at 95%% throughput:      %d pts (paper: ~40)\n", f9.MaxMemorySaving())
		if err := code("Headline metrics", sb.String()); err != nil {
			return err
		}
	}
	return out("_generated in %.1fs_\n", time.Since(start).Seconds())
}
