package experiments

import (
	"fmt"
	"strings"

	"dismem/internal/sweep"
)

// Fig5 reproduces Figure 5: normalised throughput vs. total system memory
// for large-job mixes 0–100 % plus the Grizzly trace, at +0 % and +60 %
// overestimation, under all three policies.
type Fig5 struct {
	Panels []*ThroughputGrid // columns × rows, column-major
}

// Fig5LargeFracs are the paper's job-mix columns.
var Fig5LargeFracs = []float64{0, 0.15, 0.25, 0.50, 0.75, 1.00}

// Fig5Overests are the paper's overestimation rows.
var Fig5Overests = []float64{0, 0.60}

// RunFig5 executes the full sweep. Pass includeGrizzly=false to skip the
// Grizzly column (it needs the larger system and dataset).
//
// The whole figure is submitted to the shared pool as one task DAG up
// front: each column's baseline-norm simulation is a future its two panels
// wait on, trace generations dedupe through the tracegen cache, and panel
// sweeps from different columns interleave freely — nothing waits behind a
// barrier it does not depend on. Results are bit-identical to the serial
// pipeline (RunFig5Serial); the golden tests enforce it.
func RunFig5(p Preset, includeGrizzly bool) (*Fig5, error) {
	pool := sweep.SharedPool()
	var panels []*sweep.Future[*ThroughputGrid]
	for _, lf := range Fig5LargeFracs {
		lf := lf
		label := fmt.Sprintf("large %.0f%%", lf*100)
		// Normalisation uses the +0 % trace, shared by the column.
		norm := sweep.Submit(pool, func() (float64, error) {
			trace0, err := p.SyntheticTrace(lf, 0)
			if err != nil {
				return 0, err
			}
			return p.BaselineNorm(trace0.Jobs, p.SystemNodes)
		})
		for _, ov := range Fig5Overests {
			ov := ov
			panels = append(panels, sweep.Submit(pool, func() (*ThroughputGrid, error) {
				tr, err := p.SyntheticTrace(lf, ov) // cache-shared with the norm task at +0 %
				if err != nil {
					return nil, err
				}
				n, err := norm.Get()
				if err != nil {
					return nil, err
				}
				return p.ThroughputSweep(tr.Jobs, p.SystemNodes, n, label, ov)
			}))
		}
	}
	if includeGrizzly {
		for _, ov := range Fig5Overests {
			ov := ov
			panels = append(panels, sweep.Submit(pool, func() (*ThroughputGrid, error) {
				return p.GrizzlyGrid(ov)
			}))
		}
	}
	grids, err := sweep.CollectValues(panels)
	if err != nil {
		return nil, err
	}
	return &Fig5{Panels: grids}, nil
}

// RunFig5Serial is the retained pre-pipeline implementation: every stage
// in sequence, every trace generated from scratch, barriers between
// stages. The golden tests and benchmarks use it as the reference the
// barrier-free pipeline must match bit-for-bit (and beat on wall-clock).
func RunFig5Serial(p Preset, includeGrizzly bool) (*Fig5, error) {
	out := &Fig5{}
	for _, lf := range Fig5LargeFracs {
		label := fmt.Sprintf("large %.0f%%", lf*100)
		// Normalisation uses the +0 % trace, shared by the column; every
		// generation bypasses the cache, as the pre-pipeline code did.
		trace0, err := p.SyntheticTraceUncached(lf, 0)
		if err != nil {
			return nil, err
		}
		norm, err := p.BaselineNorm(trace0.Jobs, p.SystemNodes)
		if err != nil {
			return nil, err
		}
		for _, ov := range Fig5Overests {
			jobs := trace0.Jobs
			if ov != 0 {
				tr, err := p.SyntheticTraceUncached(lf, ov)
				if err != nil {
					return nil, err
				}
				jobs = tr.Jobs
			}
			g, err := p.ThroughputSweep(jobs, p.SystemNodes, norm, label, ov)
			if err != nil {
				return nil, err
			}
			out.Panels = append(out.Panels, g)
		}
	}
	if includeGrizzly {
		for _, ov := range Fig5Overests {
			g, err := p.GrizzlyGrid(ov)
			if err != nil {
				return nil, err
			}
			out.Panels = append(out.Panels, g)
		}
	}
	return out, nil
}

// RunFig5Panel executes a single (largeFrac, overest) panel — the unit the
// benchmarks time.
func RunFig5Panel(p Preset, largeFrac, overest float64) (*ThroughputGrid, error) {
	trace0, err := p.SyntheticTrace(largeFrac, 0)
	if err != nil {
		return nil, err
	}
	norm, err := p.BaselineNorm(trace0.Jobs, p.SystemNodes)
	if err != nil {
		return nil, err
	}
	jobs := trace0.Jobs
	if overest != 0 {
		tr, err := p.SyntheticTrace(largeFrac, overest)
		if err != nil {
			return nil, err
		}
		jobs = tr.Jobs
	}
	return p.ThroughputSweep(jobs, p.SystemNodes, norm,
		fmt.Sprintf("large %.0f%%", largeFrac*100), overest)
}

func (f *Fig5) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: normalised throughput vs total system memory\n\n")
	for _, g := range f.Panels {
		b.WriteString(g.String())
		b.WriteString("\n")
	}
	return b.String()
}

// DynamicAdvantage returns the largest (dynamic − static) normalised
// throughput gap across all panels — the paper's headline "up to 13 %".
func (f *Fig5) DynamicAdvantage() float64 {
	best := 0.0
	for _, g := range f.Panels {
		for _, r := range g.Rows {
			if !isNaN(r.Dynamic) && !isNaN(r.Static) {
				if d := r.Dynamic - r.Static; d > best {
					best = d
				}
			}
		}
	}
	return best
}

func isNaN(v float64) bool { return v != v }
