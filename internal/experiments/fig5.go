package experiments

import (
	"fmt"
	"strings"
)

// Fig5 reproduces Figure 5: normalised throughput vs. total system memory
// for large-job mixes 0–100 % plus the Grizzly trace, at +0 % and +60 %
// overestimation, under all three policies.
type Fig5 struct {
	Panels []*ThroughputGrid // columns × rows, column-major
}

// Fig5LargeFracs are the paper's job-mix columns.
var Fig5LargeFracs = []float64{0, 0.15, 0.25, 0.50, 0.75, 1.00}

// Fig5Overests are the paper's overestimation rows.
var Fig5Overests = []float64{0, 0.60}

// RunFig5 executes the full sweep. Pass includeGrizzly=false to skip the
// Grizzly column (it needs the larger system and dataset).
func RunFig5(p Preset, includeGrizzly bool) (*Fig5, error) {
	out := &Fig5{}
	for _, lf := range Fig5LargeFracs {
		label := fmt.Sprintf("large %.0f%%", lf*100)
		// Normalisation uses the +0 % trace, shared by the column.
		trace0, err := p.SyntheticTrace(lf, 0)
		if err != nil {
			return nil, err
		}
		norm, err := p.BaselineNorm(trace0.Jobs, p.SystemNodes)
		if err != nil {
			return nil, err
		}
		for _, ov := range Fig5Overests {
			jobs := trace0.Jobs
			if ov != 0 {
				tr, err := p.SyntheticTrace(lf, ov)
				if err != nil {
					return nil, err
				}
				jobs = tr.Jobs
			}
			g, err := p.ThroughputSweep(jobs, p.SystemNodes, norm, label, ov)
			if err != nil {
				return nil, err
			}
			out.Panels = append(out.Panels, g)
		}
	}
	if includeGrizzly {
		for _, ov := range Fig5Overests {
			g, err := p.GrizzlyGrid(ov)
			if err != nil {
				return nil, err
			}
			out.Panels = append(out.Panels, g)
		}
	}
	return out, nil
}

// RunFig5Panel executes a single (largeFrac, overest) panel — the unit the
// benchmarks time.
func RunFig5Panel(p Preset, largeFrac, overest float64) (*ThroughputGrid, error) {
	trace0, err := p.SyntheticTrace(largeFrac, 0)
	if err != nil {
		return nil, err
	}
	norm, err := p.BaselineNorm(trace0.Jobs, p.SystemNodes)
	if err != nil {
		return nil, err
	}
	jobs := trace0.Jobs
	if overest != 0 {
		tr, err := p.SyntheticTrace(largeFrac, overest)
		if err != nil {
			return nil, err
		}
		jobs = tr.Jobs
	}
	return p.ThroughputSweep(jobs, p.SystemNodes, norm,
		fmt.Sprintf("large %.0f%%", largeFrac*100), overest)
}

func (f *Fig5) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: normalised throughput vs total system memory\n\n")
	for _, g := range f.Panels {
		b.WriteString(g.String())
		b.WriteString("\n")
	}
	return b.String()
}

// DynamicAdvantage returns the largest (dynamic − static) normalised
// throughput gap across all panels — the paper's headline "up to 13 %".
func (f *Fig5) DynamicAdvantage() float64 {
	best := 0.0
	for _, g := range f.Panels {
		for _, r := range g.Rows {
			if !isNaN(r.Dynamic) && !isNaN(r.Static) {
				if d := r.Dynamic - r.Static; d > best {
					best = d
				}
			}
		}
	}
	return best
}

func isNaN(v float64) bool { return v != v }
