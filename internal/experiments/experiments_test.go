package experiments

import (
	"math"
	"strings"
	"testing"

	"dismem/internal/policy"
)

// tiny returns a preset even smaller than Quick for unit tests.
func tiny() Preset {
	p := Quick()
	p.Name = "tiny"
	p.SystemNodes = 32
	p.Days = 0.25
	p.GrizzlyNodes = 144
	p.GrizzlyWeeks = 3
	p.GoogleCollections = 800
	c := *p.Cirne
	c.MaxNodes = 8
	c.RuntimeLogMean = math.Log(900)
	c.MaxRuntime = 6 * 3600
	p.Cirne = &c
	return p
}

func TestMemoryConfigsMatchPaperAxis(t *testing.T) {
	mcs := MemoryConfigs()
	wantPct := []int{37, 43, 50, 57, 62, 75, 87, 100}
	if len(mcs) != len(wantPct) {
		t.Fatalf("configs = %d, want %d", len(mcs), len(wantPct))
	}
	fullMem := float64(MemConfig{LabelPct: 100, NormalMB: NormalNodeMB, LargeFrac: 1}.TotalMemMB(1000))
	for i, mc := range mcs {
		if mc.LabelPct != wantPct[i] {
			t.Fatalf("config %d label %d, want %d", i, mc.LabelPct, wantPct[i])
		}
		frac := float64(mc.TotalMemMB(1000)) / fullMem
		if math.Abs(frac-float64(mc.LabelPct)/100) > 0.01 {
			t.Fatalf("config %d%%: actual fraction %.3f", mc.LabelPct, frac)
		}
	}
	if _, err := MemConfigByPct(99); err == nil {
		t.Fatal("unknown label accepted")
	}
}

func TestRunScenarioBasic(t *testing.T) {
	p := tiny()
	tr, err := p.SyntheticTrace(0.25, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) == 0 {
		t.Fatal("empty trace")
	}
	mc, err := MemConfigByPct(100)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.RunScenario(tr.Jobs, p.SystemNodes, mc, policy.Dynamic)
	if err != nil {
		t.Fatal(err)
	}
	if res.Infeasible {
		t.Fatalf("100%% system infeasible (job %d)", res.InfeasibleJob)
	}
	if res.Completed == 0 {
		t.Fatal("nothing completed")
	}
}

func TestThroughputSweepShape(t *testing.T) {
	p := tiny()
	tr0, err := p.SyntheticTrace(0.5, 0)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := p.BaselineNorm(tr0.Jobs, p.SystemNodes)
	if err != nil {
		t.Fatal(err)
	}
	g, err := p.ThroughputSweep(tr0.Jobs, p.SystemNodes, norm, "large 50%", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(g.Rows))
	}
	last := g.Rows[len(g.Rows)-1]
	// At 100 % memory the baseline normalises to exactly 1.
	if math.Abs(last.Baseline-1) > 1e-9 {
		t.Fatalf("baseline at 100%% = %v, want 1", last.Baseline)
	}
	// Disaggregated policies never lose to the baseline at 100 %
	// (everything fits locally, so they are equivalent within noise).
	if !isNaN(last.Static) && last.Static < 0.9 {
		t.Fatalf("static at 100%% = %v, implausibly low", last.Static)
	}
	// Dynamic at least matches static on every feasible point (small
	// tolerance for scheduling noise).
	for _, r := range g.Rows {
		if !isNaN(r.Dynamic) && !isNaN(r.Static) && r.Dynamic < r.Static-0.1 {
			t.Fatalf("mem %d%%: dynamic %.3f below static %.3f", r.MemPct, r.Dynamic, r.Static)
		}
	}
	// Baseline must have missing bars below 50 % when 64 GB-request
	// jobs exist (32 GB normal nodes cannot hold them; the paper's
	// missing bars) — only check that the printed table renders.
	if !strings.Contains(g.String(), "mem%") {
		t.Fatal("table rendering broken")
	}
}

func TestFig5PanelHeadline(t *testing.T) {
	p := tiny()
	g, err := RunFig5Panel(p, 0.5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// With +60 % overestimation large-memory requests exceed 128 GB, so
	// the baseline column must be entirely infeasible (paper: baseline
	// shown only in the top row).
	for _, r := range g.Rows {
		if !isNaN(r.Baseline) {
			t.Fatalf("baseline feasible at %d%% despite +60%% overestimation", r.MemPct)
		}
	}
	// Dynamic must beat static somewhere on underprovisioned systems.
	adv := 0.0
	for _, r := range g.Rows {
		if !isNaN(r.Dynamic) && !isNaN(r.Static) && r.Dynamic-r.Static > adv {
			adv = r.Dynamic - r.Static
		}
	}
	if adv <= 0 {
		t.Fatalf("dynamic never beats static in the +60%% panel:\n%s", g)
	}
}

func TestFig6Runs(t *testing.T) {
	p := tiny()
	f, err := RunFig6(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Panels) != 6 {
		t.Fatalf("panels = %d, want 6", len(f.Panels))
	}
	sawBoth := false
	for _, panel := range f.Panels {
		if panel.Static != nil && panel.Dynamic != nil {
			sawBoth = true
		}
	}
	if !sawBoth {
		t.Fatal("no panel produced both ECDFs")
	}
	if !strings.Contains(f.String(), "median reduction") {
		t.Fatal("rendering broken")
	}
}

func TestFig7Runs(t *testing.T) {
	p := tiny()
	f, err := RunFig7(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Panels) != 8 { // 4 systems × 2 overestimations
		t.Fatalf("panels = %d, want 8", len(f.Panels))
	}
	for _, panel := range f.Panels {
		if len(panel.Points) != len(Fig7LargeFracs) {
			t.Fatalf("panel %d%%/%g: %d points", panel.SysPct, panel.Overest, len(panel.Points))
		}
	}
	// Feasible cost-benefit values must be positive and finite.
	for _, panel := range f.Panels {
		for _, pt := range panel.Points {
			for _, v := range []float64{pt.Static, pt.Dynamic} {
				if !math.IsNaN(v) && (v <= 0 || math.IsInf(v, 0)) {
					t.Fatalf("bad throughput/$ %v", v)
				}
			}
		}
	}
}

func TestFig8AndFig9(t *testing.T) {
	p := tiny()
	f8, err := RunFig8(p, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Synthetic) != len(Fig8Overests) {
		t.Fatalf("panels = %d, want %d", len(f8.Synthetic), len(Fig8Overests))
	}
	f9, err := Fig9FromFig8(f8, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if len(f9.Points) != len(Fig8Overests) {
		t.Fatalf("fig9 points = %d", len(f9.Points))
	}
	// Where overestimation is substantial — the regime the paper's
	// claim covers — dynamic never needs more memory than static. At
	// +0 % the two policies are near-equal and the tiny test scale can
	// flip the 95 % threshold crossing by one configuration step, so
	// low-overestimation points are exempt.
	for _, pt := range f9.Points {
		if pt.Overest < 0.5 {
			continue
		}
		if pt.StaticPct > 0 && pt.DynamicPct > 0 && pt.DynamicPct > pt.StaticPct {
			t.Fatalf("overest +%.0f%%: dynamic needs %d%% > static %d%%",
				pt.Overest*100, pt.DynamicPct, pt.StaticPct)
		}
	}
	if !strings.Contains(f9.String(), "overest") {
		t.Fatal("fig9 rendering broken")
	}
}

func TestTable2Shares(t *testing.T) {
	p := tiny()
	tb, err := RunTable2(p)
	if err != nil {
		t.Fatal(err)
	}
	for name, group := range map[string][3][]float64{"synthetic": tb.Synthetic, "grizzly": tb.Grizzly} {
		for k, shares := range group {
			var sum float64
			for _, s := range shares {
				sum += s
			}
			if len(shares) != 5 {
				t.Fatalf("%s[%d]: %d buckets", name, k, len(shares))
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s[%d]: shares sum to %g", name, k, sum)
			}
		}
	}
	if !strings.Contains(tb.String(), "GB/node") {
		t.Fatal("rendering broken")
	}
}

func TestTable3Characterisation(t *testing.T) {
	p := tiny()
	tb, err := RunTable3(p)
	if err != nil {
		t.Fatal(err)
	}
	if tb.NormalCount == 0 || tb.LargeCount == 0 {
		t.Fatalf("counts: %d normal, %d large", tb.NormalCount, tb.LargeCount)
	}
	// Large-memory jobs live strictly above the normal-node boundary.
	if tb.LargeMem.Min <= float64(NormalNodeMB) {
		t.Fatalf("large-memory min %g not above %d", tb.LargeMem.Min, NormalNodeMB)
	}
	if tb.NormalMem.Max > float64(NormalNodeMB) {
		t.Fatalf("normal-memory max %g above boundary", tb.NormalMem.Max)
	}
	if tb.NormalMem.Median >= tb.LargeMem.Median {
		t.Fatal("normal median not below large median")
	}
}

func TestFig2Sampling(t *testing.T) {
	p := tiny()
	f, err := RunFig2(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Points) != p.GrizzlyWeeks {
		t.Fatalf("points = %d, want %d", len(f.Points), p.GrizzlyWeeks)
	}
	sampled := 0
	for _, pt := range f.Points {
		if pt.Sampled {
			sampled++
			if pt.Utilization < 0.7 {
				t.Fatalf("sampled week %d utilisation %g < 0.7", pt.Week, pt.Utilization)
			}
		}
	}
	if sampled == 0 {
		t.Fatal("no weeks sampled")
	}
}

func TestFig4Heatmap(t *testing.T) {
	p := tiny()
	f, err := RunFig4(p)
	if err != nil {
		t.Fatal(err)
	}
	sumCells := func(grid [][]float64) float64 {
		var s float64
		for _, row := range grid {
			for _, v := range row {
				s += v
			}
		}
		return s
	}
	if s := sumCells(f.Avg); math.Abs(s-1) > 1e-9 {
		t.Fatalf("avg heatmap sums to %g", s)
	}
	if s := sumCells(f.Max); math.Abs(s-1) > 1e-9 {
		t.Fatalf("max heatmap sums to %g", s)
	}
	// Average usage is lower than maximum usage: the topmost memory row
	// must hold no more mass for avg than for max.
	top := len(f.MemBins) - 1
	var avgTop, maxTop float64
	for k := range f.SizeBins {
		avgTop += f.Avg[top][k]
		maxTop += f.Max[top][k]
	}
	if avgTop > maxTop+1e-9 {
		t.Fatalf("avg mass in top bucket %g exceeds max mass %g", avgTop, maxTop)
	}
}

func TestGrizzlyGridMultiWeek(t *testing.T) {
	p := tiny()
	p.GrizzlySample = 2
	g, err := p.GrizzlyGrid(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 8 {
		t.Fatalf("rows = %d", len(g.Rows))
	}
	// At 100% memory the per-week normalised baselines average to ~1.
	last := g.Rows[len(g.Rows)-1]
	if isNaN(last.Baseline) || math.Abs(last.Baseline-1) > 1e-9 {
		t.Fatalf("baseline at 100%% = %v, want 1", last.Baseline)
	}
}

func TestAverageGridsInfeasiblePropagates(t *testing.T) {
	a := &ThroughputGrid{Trace: "g", Rows: []ThroughputRow{{MemPct: 50, Baseline: 0.8, Static: 0.9, Dynamic: 1.0}}}
	b := &ThroughputGrid{Trace: "g", Rows: []ThroughputRow{{MemPct: 50, Baseline: Infeasible, Static: 0.7, Dynamic: 0.8}}}
	avg := averageGrids([]*ThroughputGrid{a, b})
	r := avg.Rows[0]
	if !isNaN(r.Baseline) {
		t.Fatalf("baseline = %v, want infeasible", r.Baseline)
	}
	if math.Abs(r.Static-0.8) > 1e-12 || math.Abs(r.Dynamic-0.9) > 1e-12 {
		t.Fatalf("averages wrong: %+v", r)
	}
	// Single grid passes through unchanged.
	if averageGrids([]*ThroughputGrid{a}) != a {
		t.Fatal("single-grid average must be identity")
	}
}

func TestGrizzlyTracesAlignedAcrossOverestimation(t *testing.T) {
	p := tiny()
	p.GrizzlySample = 2
	a, err := p.GrizzlyTraces(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.GrizzlyTraces(0.6)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("week counts differ: %d vs %d", len(a), len(b))
	}
	for w := range a {
		if len(a[w]) != len(b[w]) {
			t.Fatalf("week %d: job counts differ", w)
		}
		for i := range a[w] {
			if a[w][i].ID != b[w][i].ID {
				t.Fatalf("week %d: job order differs at %d", w, i)
			}
			if a[w][i].PeakUsageMB() != b[w][i].PeakUsageMB() {
				t.Fatalf("week %d job %d: peaks differ across overestimation", w, i)
			}
			if b[w][i].RequestMB < a[w][i].RequestMB {
				t.Fatalf("week %d job %d: +60%% request below +0%%", w, i)
			}
		}
	}
}

func TestPresetsWellFormed(t *testing.T) {
	for _, p := range []Preset{Quick(), Full(), Bench()} {
		if p.SystemNodes <= 0 || p.Days <= 0 || p.Load <= 0 || p.Load > 1 {
			t.Fatalf("%s: bad system fields %+v", p.Name, p)
		}
		if p.GrizzlyNodes <= 0 || p.GrizzlyWeeks <= 0 || p.GoogleCollections <= 0 {
			t.Fatalf("%s: bad trace fields %+v", p.Name, p)
		}
		if p.UpdateInterval <= 0 {
			t.Fatalf("%s: bad update interval", p.Name)
		}
		if p.Cirne != nil && p.Cirne.MaxNodes > p.SystemNodes {
			t.Fatalf("%s: jobs can outsize the system", p.Name)
		}
	}
	full := Full()
	if full.SystemNodes != 1024 || full.GrizzlyNodes != 1490 || full.GrizzlySample != 7 {
		t.Fatalf("full preset deviates from the paper: %+v", full)
	}
}
