package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestAblationUpdateInterval(t *testing.T) {
	p := tiny()
	a, err := RunAblationUpdateInterval(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != len(UpdateIntervals) {
		t.Fatalf("rows = %d", len(a.Rows))
	}
	// Shorter intervals mean at least as many resize operations.
	for i := 1; i < len(a.Rows); i++ {
		if a.Rows[i].Resizes > a.Rows[i-1].Resizes {
			t.Fatalf("interval %gs has more resizes (%d) than shorter %gs (%d)",
				a.Rows[i].IntervalSec, a.Rows[i].Resizes,
				a.Rows[i-1].IntervalSec, a.Rows[i-1].Resizes)
		}
	}
	// Every interval must still reclaim something on this workload.
	for _, r := range a.Rows {
		if !isNaN(r.NormThroughput) && r.Resizes == 0 {
			t.Fatalf("interval %gs: no resizes at all", r.IntervalSec)
		}
	}
	if !strings.Contains(a.String(), "interval") {
		t.Fatal("rendering broken")
	}
}

func TestAblationOOM(t *testing.T) {
	p := tiny()
	a, err := RunAblationOOM(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(a.Rows))
	}
	for _, r := range a.Rows {
		if isNaN(r.NormThroughput) {
			t.Fatalf("%s infeasible", r.Label)
		}
	}
	if !strings.Contains(a.String(), "fail/restart") {
		t.Fatal("rendering broken")
	}
}

func TestAblationBackfill(t *testing.T) {
	p := tiny()
	a, err := RunAblationBackfill(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 (2 policies x 3 algorithms)", len(a.Rows))
	}
	// Backfill never reduces throughput much on this workload (it only
	// adds work the FIFO head was not going to run anyway).
	byKey := map[string]float64{}
	for _, r := range a.Rows {
		byKey[r.Policy+"/"+r.Mode] = r.NormThroughput
	}
	for _, pol := range []string{"static", "dynamic"} {
		if byKey[pol+"/easy"] < byKey[pol+"/none"]-0.1 {
			t.Fatalf("%s: EASY throughput %.3f well below FIFO %.3f",
				pol, byKey[pol+"/easy"], byKey[pol+"/none"])
		}
		// Conservative sits between FIFO and EASY packing-wise; it
		// must not collapse.
		if byKey[pol+"/conservative"] < byKey[pol+"/none"]-0.15 {
			t.Fatalf("%s: conservative throughput %.3f collapsed below FIFO %.3f",
				pol, byKey[pol+"/conservative"], byKey[pol+"/none"])
		}
	}
}

func TestAblationLender(t *testing.T) {
	p := tiny()
	a, err := RunAblationLender(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(a.Rows))
	}
	// With zero hop penalty the two orders must perform comparably
	// (identical model, different lease placement only).
	var zeroMost, zeroNear float64
	for _, r := range a.Rows {
		if r.HopPenalty == 0 {
			if r.Order == "most-free" {
				zeroMost = r.NormThroughput
			} else {
				zeroNear = r.NormThroughput
			}
		}
	}
	if zeroMost == 0 || zeroNear == 0 {
		t.Fatal("zero-penalty rows missing")
	}
	if diff := zeroMost - zeroNear; diff > 0.25 || diff < -0.25 {
		t.Fatalf("zero-penalty orders diverge: %.3f vs %.3f", zeroMost, zeroNear)
	}
}

func TestAblationPriority(t *testing.T) {
	p := tiny()
	a, err := RunAblationPriority(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(a.Rows))
	}
	for _, r := range a.Rows {
		if isNaN(r.NormThroughput) {
			t.Fatalf("%s infeasible", r.Label)
		}
		if r.Fairness < 0 || r.Fairness > 1+1e-9 {
			t.Fatalf("%s: fairness %g out of range", r.Label, r.Fairness)
		}
	}
	if !strings.Contains(a.String(), "boost after 1") {
		t.Fatal("rendering broken")
	}
}

func TestReplicate(t *testing.T) {
	p := tiny()
	calls := 0
	s, err := Replicate(p, 4, func(q Preset) (float64, error) {
		calls++
		return float64(q.Seed % 10), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 {
		t.Fatalf("n = %d, want 4", s.N)
	}
	if s.Stdev < 0 {
		t.Fatalf("stdev = %g", s.Stdev)
	}
	// NaN samples are dropped.
	s, err = Replicate(p, 3, func(q Preset) (float64, error) {
		if q.Seed != p.Seed {
			return Infeasible, nil
		}
		return 5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 1 || s.Mean != 5 {
		t.Fatalf("stat = %+v, want single sample of 5", s)
	}
	// All-NaN is an error.
	if _, err := Replicate(p, 2, func(Preset) (float64, error) { return Infeasible, nil }); err != ErrNoSamples {
		t.Fatalf("err = %v, want ErrNoSamples", err)
	}
}

func TestReplicateSeedsDiffer(t *testing.T) {
	p := tiny()
	seen := map[int64]bool{}
	var mu sync.Mutex
	_, err := Replicate(p, 5, func(q Preset) (float64, error) {
		mu.Lock()
		seen[q.Seed] = true
		mu.Unlock()
		return 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("distinct seeds = %d, want 5", len(seen))
	}
}

func TestModelComparison(t *testing.T) {
	p := tiny()
	m, err := RunModelComparison(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Grids) != 2 {
		t.Fatalf("grids = %d, want 2", len(m.Grids))
	}
	// The headline conclusion must hold under both workload models
	// (small tolerance for quick-scale noise).
	if !m.DynamicWinsEverywhere(0.15) {
		t.Fatalf("dynamic loses under some model:\n%s", m)
	}
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lublin") {
		t.Fatal("CSV missing lublin rows")
	}
}

func TestUtilizationExperiment(t *testing.T) {
	p := tiny()
	u, err := RunUtilization(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Rows) != 8*3 {
		t.Fatalf("rows = %d, want 24", len(u.Rows))
	}
	byKey := map[string]UtilizationRow{}
	for _, r := range u.Rows {
		if !isNaN(r.Used) && r.Used > r.Allocated+1e-9 {
			t.Fatalf("%d%%/%s: used %g above allocated %g", r.MemPct, r.Policy, r.Used, r.Allocated)
		}
		byKey[r.Policy+"/"+strconvItoa(r.MemPct)] = r
	}
	// At a feasible provisioning level, static strands more memory than
	// dynamic (the reclaiming effect).
	s, okS := byKey["static/100"]
	d, okD := byKey["dynamic/100"]
	if !okS || !okD || isNaN(s.Allocated) || isNaN(d.Allocated) {
		t.Fatal("100% rows missing")
	}
	if d.Stranded() > s.Stranded()+1e-9 {
		t.Fatalf("dynamic strands more (%g) than static (%g)", d.Stranded(), s.Stranded())
	}
	if !strings.Contains(u.String(), "stranded") {
		t.Fatal("rendering broken")
	}
	var buf bytes.Buffer
	if err := u.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
}

func strconvItoa(v int) string { return fmt.Sprintf("%d", v) }
