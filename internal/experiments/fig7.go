package experiments

import (
	"fmt"
	"math"
	"strings"

	"dismem/internal/metrics"
	"dismem/internal/policy"
	"dismem/internal/sweep"
)

// Fig7 reproduces Figure 7: throughput per dollar as a function of the job
// mix, for four system provisioning levels (100/75/50/25 % of full memory),
// at +0 % and +60 % overestimation, for the static and dynamic policies.
type Fig7 struct {
	Panels []Fig7Panel
}

// Fig7Panel is one (system memory, overestimation) panel.
type Fig7Panel struct {
	SysPct  int
	Overest float64
	Points  []Fig7Point
}

// Fig7Point is one job-mix point: absolute throughput per dollar (NaN =
// infeasible).
type Fig7Point struct {
	LargePct int
	Static   float64
	Dynamic  float64
}

// Fig7SysConfigs maps the paper's system labels to memory configurations.
// 25 % is a system of 32 GB nodes only (half-capacity family, 0 % large).
func Fig7SysConfigs() []struct {
	SysPct int
	MC     MemConfig
} {
	return []struct {
		SysPct int
		MC     MemConfig
	}{
		{100, MemConfig{LabelPct: 100, NormalMB: NormalNodeMB, LargeFrac: 1}},
		{75, MemConfig{LabelPct: 75, NormalMB: NormalNodeMB, LargeFrac: 0.5}},
		{50, MemConfig{LabelPct: 50, NormalMB: NormalNodeMB, LargeFrac: 0}},
		{25, MemConfig{LabelPct: 25, NormalMB: 32 * 1024, LargeFrac: 0}},
	}
}

// Fig7LargeFracs are the job-mix points on the x axis.
var Fig7LargeFracs = []float64{0, 0.25, 0.50, 0.75, 1.00}

// RunFig7 executes the sweep: all 80 simulations are submitted to the
// shared pool up front. Each job mix is generated once per overestimation
// level and shared across the four system panels — the per-figure memo map
// this code used to carry is now the process-wide tracegen cache, which
// also shares the mixes with Fig. 5 and the replication harness.
func RunFig7(p Preset) (*Fig7, error) {
	pool := sweep.SharedPool()
	pols := []policy.Kind{policy.Static, policy.Dynamic}
	var futs []*sweep.Future[float64]
	for _, sys := range Fig7SysConfigs() {
		sys := sys
		for _, ov := range Fig5Overests {
			ov := ov
			for _, lf := range Fig7LargeFracs {
				lf := lf
				for _, pol := range pols {
					pol := pol
					futs = append(futs, sweep.Submit(pool, func() (float64, error) {
						tr, err := p.SyntheticTrace(lf, ov)
						if err != nil {
							return 0, err
						}
						res, err := p.RunScenario(tr.Jobs, p.SystemNodes, sys.MC, pol)
						if err != nil {
							return 0, err
						}
						if res.Infeasible {
							return math.NaN(), nil
						}
						totalMem := sys.MC.TotalMemMB(p.SystemNodes)
						return metrics.ThroughputPerDollar(res.Throughput(), p.SystemNodes, totalMem), nil
					}))
				}
			}
		}
	}
	values, err := sweep.CollectValues(futs)
	if err != nil {
		return nil, err
	}
	out := &Fig7{}
	i := 0
	for _, sys := range Fig7SysConfigs() {
		for _, ov := range Fig5Overests {
			panel := Fig7Panel{SysPct: sys.SysPct, Overest: ov}
			for _, lf := range Fig7LargeFracs {
				panel.Points = append(panel.Points, Fig7Point{
					LargePct: int(lf * 100),
					Static:   values[i],
					Dynamic:  values[i+1],
				})
				i += 2
			}
			out.Panels = append(out.Panels, panel)
		}
	}
	return out, nil
}

func (f *Fig7) String() string {
	var b strings.Builder
	b.WriteString("Figure 7: throughput per dollar (jobs/s/$) vs job mix\n\n")
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "system %d%% memory, overestimation +%.0f%%\n", p.SysPct, p.Overest*100)
		fmt.Fprintf(&b, "  %8s %14s %14s\n", "large%", "static", "dynamic")
		for _, pt := range p.Points {
			fmt.Fprintf(&b, "  %8d %14s %14s\n", pt.LargePct, sciCell(pt.Static), sciCell(pt.Dynamic))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func sciCell(v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3e", v)
}

// MaxDynamicGain returns the largest relative throughput-per-dollar
// advantage of dynamic over static across all panels — the paper's
// headline "up to 38 %".
func (f *Fig7) MaxDynamicGain() float64 {
	best := 0.0
	for _, p := range f.Panels {
		for _, pt := range p.Points {
			if !math.IsNaN(pt.Static) && !math.IsNaN(pt.Dynamic) && pt.Static > 0 {
				if g := pt.Dynamic/pt.Static - 1; g > best {
					best = g
				}
			}
		}
	}
	return best
}
