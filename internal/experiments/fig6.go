package experiments

import (
	"fmt"
	"strings"

	"dismem/internal/metrics"
	"dismem/internal/policy"
	"dismem/internal/sweep"
)

// Fig6 reproduces Figure 6: the empirical CDF of job response times for
// over-provisioned, matching, and under-provisioned systems at +0 % and
// +60 % overestimation, comparing the static and dynamic policies.
//
// With a 50 % large-memory job mix, the demanded share of large nodes is
// ~50 %: 100 % memory over-provisions, 75 % matches, and 50 % (no large
// nodes) under-provisions — the same construction as the paper's three
// scenarios.
type Fig6 struct {
	Panels []Fig6Panel
}

// Fig6Panel is one (provisioning, overestimation) cell with both policies'
// response-time distributions.
type Fig6Panel struct {
	Scenario string // "overprovisioned" | "match" | "underprovisioned"
	MemPct   int
	Overest  float64
	Static   *metrics.ECDF
	Dynamic  *metrics.ECDF
}

// MedianReduction returns 1 − median(dynamic)/median(static): the paper's
// "median response time reduced by 69 %" metric.
func (p *Fig6Panel) MedianReduction() float64 {
	if p.Static == nil || p.Dynamic == nil || p.Static.Median() == 0 {
		return 0
	}
	return 1 - p.Dynamic.Median()/p.Static.Median()
}

// Fig6Scenarios maps provisioning labels to memory configurations.
var Fig6Scenarios = []struct {
	Name   string
	MemPct int
}{
	{"overprovisioned", 100},
	{"match", 75},
	{"underprovisioned", 50},
}

// RunFig6 executes the six panels. All twelve simulations are submitted
// to the shared pool up front — each fetches its trace from the tracegen
// cache, so the two policies of a panel share one generation and the
// figure shares its traces with Fig. 5's 50 %-mix column.
func RunFig6(p Preset) (*Fig6, error) {
	const largeFrac = 0.50
	pool := sweep.SharedPool()
	mcs := make([]MemConfig, len(Fig6Scenarios))
	for i, sc := range Fig6Scenarios {
		mc, err := MemConfigByPct(sc.MemPct)
		if err != nil {
			return nil, err
		}
		mcs[i] = mc
	}
	pols := []policy.Kind{policy.Static, policy.Dynamic}
	var futs []*sweep.Future[*metrics.ECDF]
	for _, ov := range Fig5Overests {
		ov := ov
		for _, mc := range mcs {
			mc := mc
			for _, pol := range pols {
				pol := pol
				futs = append(futs, sweep.Submit(pool, func() (*metrics.ECDF, error) {
					trace, err := p.SyntheticTrace(largeFrac, ov)
					if err != nil {
						return nil, err
					}
					res, err := p.RunScenario(trace.Jobs, p.SystemNodes, mc, pol)
					if err != nil {
						return nil, err
					}
					if res.Infeasible {
						return nil, nil
					}
					rts := res.ResponseTimes()
					if len(rts) == 0 {
						return nil, nil
					}
					return metrics.NewECDF(rts)
				}))
			}
		}
	}
	ecdfs, err := sweep.CollectValues(futs)
	if err != nil {
		return nil, err
	}
	out := &Fig6{}
	i := 0
	for _, ov := range Fig5Overests {
		for _, sc := range Fig6Scenarios {
			panel := Fig6Panel{Scenario: sc.Name, MemPct: sc.MemPct, Overest: ov}
			panel.Static = ecdfs[i]
			panel.Dynamic = ecdfs[i+1]
			i += 2
			out.Panels = append(out.Panels, panel)
		}
	}
	return out, nil
}

func (f *Fig6) String() string {
	var b strings.Builder
	b.WriteString("Figure 6: response-time ECDF (seconds) by provisioning scenario\n\n")
	qs := []float64{0.25, 0.5, 0.75, 0.9}
	for _, p := range f.Panels {
		fmt.Fprintf(&b, "%s, mem %d%%, overestimation +%.0f%%\n", p.Scenario, p.MemPct, p.Overest*100)
		fmt.Fprintf(&b, "  %-8s", "policy")
		for _, q := range qs {
			fmt.Fprintf(&b, " %9s", fmt.Sprintf("p%02.0f", q*100))
		}
		b.WriteString("\n")
		for _, row := range []struct {
			name string
			e    *metrics.ECDF
		}{{"static", p.Static}, {"dynamic", p.Dynamic}} {
			fmt.Fprintf(&b, "  %-8s", row.name)
			for _, q := range qs {
				if row.e == nil {
					fmt.Fprintf(&b, " %9s", "-")
				} else {
					fmt.Fprintf(&b, " %9.0f", row.e.Quantile(q))
				}
			}
			b.WriteString("\n")
		}
		if p.Static != nil && p.Dynamic != nil {
			fmt.Fprintf(&b, "  median reduction: %.0f%%\n", p.MedianReduction()*100)
		}
		b.WriteString("\n")
	}
	return b.String()
}
