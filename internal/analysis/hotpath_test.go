package analysis_test

import (
	"testing"

	"dismem/internal/analysis"
	"dismem/internal/analysis/analysistest"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.HotPathAlloc, "hotpath")
}
