package analysis_test

import (
	"testing"

	"dismem/internal/analysis"
	"dismem/internal/analysis/analysistest"
)

func TestCowAlias(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CowAlias, "cowalias")
}

func TestCowAliasPathFilter(t *testing.T) {
	cases := map[string]bool{
		"internal/cluster":               true,
		"dismem/internal/cluster":        true,
		"dismem/internal/cluster/sub":    true,
		"dismem/internal/core":           false,
		"dismem/internal/clusterutils":   false,
		"example.com/x/internal/cluster": true,
		"example.com/x/internal/core":    false,
	}
	for path, want := range cases {
		if got := analysis.CowAlias.PathFilter(path); got != want {
			t.Errorf("PathFilter(%q) = %v, want %v", path, got, want)
		}
	}
}
