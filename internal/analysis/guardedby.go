package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GuardedByDirective annotates a struct field with the sibling mutex that
// must be held to touch it:
//
//	mu sync.Mutex
//	m  map[string]*entry //dmp:guardedby(mu)
//
// The argument names a field of the same struct whose type is sync.Mutex or
// sync.RWMutex; anything else is a stale annotation and fails the build.
const GuardedByDirective = "dmp:guardedby"

// GuardedBy enforces //dmp:guardedby(mu) contracts: an annotated field may
// only be read while the named mutex (on the same owner value) is held, and
// only written while it is held exclusively. Locksets are tracked
// intra-procedurally — E.Lock()/E.RLock() acquire, E.Unlock()/E.RUnlock()
// release, `defer E.Unlock()` keeps the lock held for the rest of the body,
// goroutine literals start with nothing held — and uncovered accesses in
// unexported functions become "requires lock" facts that propagate to their
// call sites over the module call graph, so a locked exported method may
// delegate to lock-free unexported helpers without either side being flagged.
// Accesses whose owner is not a stable name (call results, map elements) are
// not checked; the index is module-wide, so contracts on exported fields bind
// in every importing package.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc: "fields annotated //dmp:guardedby(mu) must only be accessed with the " +
		"named sibling mutex held (exclusively for writes); unexported helpers " +
		"inherit the obligation through the call graph",
	Run: runGuardedBy,
}

// guardSpec is the parsed contract of one annotated field.
type guardSpec struct {
	mutex string // sibling mutex field name
	rw    bool   // guard is a sync.RWMutex
}

// indexDiag is a diagnostic found while building a module-wide index; it is
// emitted by whichever pass owns the file, keeping attribution (and therefore
// //dmplint:ignore scoping) per package.
type indexDiag struct {
	file string
	pos  token.Pos
	msg  string
}

// guardIndex is the module-wide table of guarded fields.
type guardIndex struct {
	fields map[*types.Var]*guardSpec
	stale  []indexDiag
}

func guardedIndex(pass *Pass) *guardIndex {
	return pass.Module.Cached("guardedby.index", func() any {
		return buildGuardIndex(pass.Module)
	}).(*guardIndex)
}

func buildGuardIndex(m *Module) *guardIndex {
	idx := &guardIndex{fields: make(map[*types.Var]*guardSpec)}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				st, ok := n.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				for _, field := range st.Fields.List {
					arg, dpos, found := fieldDirective(field, GuardedByDirective)
					if !found {
						continue
					}
					file := pkg.Fset.Position(dpos).Filename
					if len(field.Names) == 0 {
						idx.stale = append(idx.stale, indexDiag{file, dpos,
							"//dmp:guardedby cannot annotate an embedded field"})
						continue
					}
					fname := field.Names[0].Name
					if arg == "" {
						idx.stale = append(idx.stale, indexDiag{file, dpos, fmt.Sprintf(
							"malformed //dmp:guardedby on %s: missing mutex field name", fname)})
						continue
					}
					sibling := findSiblingField(st, arg)
					if sibling == nil {
						idx.stale = append(idx.stale, indexDiag{file, dpos, fmt.Sprintf(
							"stale //dmp:guardedby on %s: no sibling field %q", fname, arg)})
						continue
					}
					mt := pkg.Info.TypeOf(sibling.Type)
					isMu := namedIn(mt, "sync", "Mutex")
					isRW := namedIn(mt, "sync", "RWMutex")
					if !isMu && !isRW {
						idx.stale = append(idx.stale, indexDiag{file, dpos, fmt.Sprintf(
							"stale //dmp:guardedby on %s: sibling %q is not a sync.Mutex or sync.RWMutex", fname, arg)})
						continue
					}
					for _, nameID := range field.Names {
						if fv, isVar := pkg.Info.Defs[nameID].(*types.Var); isVar {
							idx.fields[fv] = &guardSpec{mutex: arg, rw: isRW}
						}
					}
				}
				return true
			})
		}
	}
	return idx
}

// findSiblingField returns the struct field named name, or nil.
func findSiblingField(st *ast.StructType, name string) *ast.Field {
	for _, f := range st.Fields.List {
		for _, n := range f.Names {
			if n.Name == name {
				return f
			}
		}
	}
	return nil
}

// lockMode is how strongly a mutex is held.
type lockMode int

const (
	lockNone  lockMode = iota
	lockRead           // RLock: reads of guarded fields allowed
	lockWrite          // Lock: reads and writes allowed
)

// lockset maps a rendered mutex path ("st.mu", "cache.mu") to how it is held.
type lockset map[string]lockMode

func cloneLS(ls lockset) lockset {
	c := make(lockset, len(ls))
	for k, v := range ls {
		c[k] = v
	}
	return c
}

// gbReq identifies one lock obligation a function imposes on its callers:
// "the mutex named .mutex on the value passed in .slot must be held".
type gbReq struct {
	slot  int // -1 = receiver, else parameter index
	mutex string
}

// gbFacts is the per-function summary the interprocedural phase consumes.
type gbFacts struct {
	exported bool
	slots    map[string]int // receiver/parameter name -> slot
	requires map[gbReq]lockMode
	reqField map[gbReq]string // guarded field that induced the requirement
	callLS   map[*ast.CallExpr]lockset
}

func runGuardedBy(pass *Pass) {
	idx := guardedIndex(pass)
	inPass := make(map[string]bool, len(pass.Files))
	for _, f := range pass.Files {
		inPass[pass.Fset.Position(f.Pos()).Filename] = true
	}
	for _, d := range idx.stale {
		if inPass[d.file] {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
	if len(idx.fields) == 0 {
		return
	}
	facts := make(map[*types.Func]*gbFacts)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			facts[fn] = gbAnalyzeFunc(pass, idx, fd, fn)
		}
	}
	gbPropagateAndReport(pass, facts)
}

// gbAnalyzeFunc walks one function body, reporting accesses that are locally
// wrong and summarizing the obligations it pushes onto callers.
func gbAnalyzeFunc(pass *Pass, idx *guardIndex, fd *ast.FuncDecl, fn *types.Func) *gbFacts {
	facts := &gbFacts{
		exported: fn.Exported(),
		slots:    make(map[string]int),
		requires: make(map[gbReq]lockMode),
		reqField: make(map[gbReq]string),
		callLS:   make(map[*ast.CallExpr]lockset),
	}
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		facts.slots[fd.Recv.List[0].Names[0].Name] = -1
	}
	slot := 0
	for _, p := range fd.Type.Params.List {
		for _, name := range p.Names {
			facts.slots[name.Name] = slot
			slot++
		}
		if len(p.Names) == 0 {
			slot++
		}
	}
	w := &gbWalker{pass: pass, idx: idx, facts: facts}
	w.block(fd.Body.List, lockset{})
	return facts
}

type gbWalker struct {
	pass  *Pass
	idx   *guardIndex
	facts *gbFacts
}

func (w *gbWalker) block(stmts []ast.Stmt, ls lockset) {
	for _, s := range stmts {
		w.stmt(s, ls)
	}
}

// stmt threads the lockset through one statement. Branch bodies get cloned
// locksets: a lock released (or taken) on one arm must not leak into the
// code after the branch, which keeps the common
// `if ...; ok { mu.Unlock(); return }` early-exit pattern accurate for the
// fall-through path.
func (w *gbWalker) stmt(s ast.Stmt, ls lockset) {
	switch st := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.expr(st.X, ls)
	case *ast.AssignStmt:
		for _, r := range st.Rhs {
			w.expr(r, ls)
		}
		for _, l := range st.Lhs {
			w.lvalue(l, ls)
		}
	case *ast.IncDecStmt:
		w.lvalue(st.X, ls)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v, ls)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.deferred(st.Call, ls)
	case *ast.GoStmt:
		w.goCall(st.Call, ls)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.expr(r, ls)
		}
	case *ast.SendStmt:
		w.expr(st.Chan, ls)
		w.expr(st.Value, ls)
	case *ast.IfStmt:
		cls := cloneLS(ls)
		w.stmt(st.Init, cls)
		w.expr(st.Cond, cls)
		w.block(st.Body.List, cloneLS(cls))
		if st.Else != nil {
			w.stmt(st.Else, cloneLS(cls))
		}
	case *ast.ForStmt:
		cls := cloneLS(ls)
		w.stmt(st.Init, cls)
		if st.Cond != nil {
			w.expr(st.Cond, cls)
		}
		w.block(st.Body.List, cls)
		w.stmt(st.Post, cls)
	case *ast.RangeStmt:
		w.expr(st.X, ls)
		cls := cloneLS(ls)
		if st.Key != nil {
			w.lvalue(st.Key, cls)
		}
		if st.Value != nil {
			w.lvalue(st.Value, cls)
		}
		w.block(st.Body.List, cls)
	case *ast.SwitchStmt:
		cls := cloneLS(ls)
		w.stmt(st.Init, cls)
		if st.Tag != nil {
			w.expr(st.Tag, cls)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			ccls := cloneLS(cls)
			for _, e := range cc.List {
				w.expr(e, ccls)
			}
			w.block(cc.Body, ccls)
		}
	case *ast.TypeSwitchStmt:
		cls := cloneLS(ls)
		w.stmt(st.Init, cls)
		w.stmt(st.Assign, cls)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			w.block(cc.Body, cloneLS(cls))
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			ccls := cloneLS(ls)
			w.stmt(cc.Comm, ccls)
			w.block(cc.Body, ccls)
		}
	case *ast.BlockStmt:
		w.block(st.List, ls)
	case *ast.LabeledStmt:
		w.stmt(st.Stmt, ls)
	}
}

// expr walks one expression: lock operations mutate the lockset, other calls
// snapshot it for the interprocedural phase, guarded-field reads are checked,
// and function-literal bodies run under a cloned lockset (goroutine literals
// are handled by goCall with an empty one).
func (w *gbWalker) expr(e ast.Expr, ls lockset) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.block(x.Body.List, cloneLS(ls))
			return false
		case *ast.CallExpr:
			if base, op, ok := w.lockOp(x); ok {
				applyLockOp(ls, base, op)
				return false
			}
			w.facts.callLS[x] = cloneLS(ls)
			return true
		case *ast.SelectorExpr:
			w.access(x, ls, false)
			return true
		}
		return true
	})
}

// lvalue walks an assignment target: the outermost guarded selector on the
// spine is a write, everything hanging off it (indexes, bases) is reads.
func (w *gbWalker) lvalue(e ast.Expr, ls lockset) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			w.expr(x.Index, ls)
			e = x.X
		case *ast.SelectorExpr:
			if fv, ok := w.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && w.idx.fields[fv] != nil {
				w.access(x, ls, true)
				w.expr(x.X, ls)
				return
			}
			e = x.X
		default:
			w.expr(e, ls)
			return
		}
	}
}

// goCall models `go f(...)`: arguments are evaluated on the current
// goroutine under the current lockset, but the call itself (and a literal's
// body) runs on a fresh goroutine holding nothing.
func (w *gbWalker) goCall(call *ast.CallExpr, ls lockset) {
	w.facts.callLS[call] = lockset{}
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		w.block(fun.Body.List, lockset{})
	case *ast.SelectorExpr:
		w.expr(fun.X, ls)
	}
	for _, a := range call.Args {
		w.expr(a, ls)
	}
}

// deferred models `defer f(...)`. A deferred Unlock/RUnlock means the lock
// stays held for the remainder of the body, so it does not change the
// lockset; other deferred calls run under whatever is held at registration
// time (LIFO ordering makes that the correct approximation for the
// lock-then-defer-unlock idiom).
func (w *gbWalker) deferred(call *ast.CallExpr, ls lockset) {
	if _, _, ok := w.lockOp(call); ok {
		return
	}
	w.facts.callLS[call] = cloneLS(ls)
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		w.block(fun.Body.List, cloneLS(ls))
	case *ast.SelectorExpr:
		w.expr(fun.X, ls)
	}
	for _, a := range call.Args {
		w.expr(a, ls)
	}
}

// lockOp recognizes E.Lock/Unlock/RLock/RUnlock where E has type sync.Mutex
// or sync.RWMutex and renders to a stable name.
func (w *gbWalker) lockOp(call *ast.CallExpr) (base, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	t := w.pass.TypeOf(sel.X)
	if !namedIn(t, "sync", "Mutex") && !namedIn(t, "sync", "RWMutex") {
		return "", "", false
	}
	base = renderExpr(sel.X)
	if base == "" {
		return "", "", false
	}
	return base, sel.Sel.Name, true
}

func applyLockOp(ls lockset, base, op string) {
	switch op {
	case "Lock":
		ls[base] = lockWrite
	case "RLock":
		if ls[base] < lockRead {
			ls[base] = lockRead
		}
	case "Unlock", "RUnlock":
		delete(ls, base)
	}
}

// access checks one guarded-field selector under the current lockset.
func (w *gbWalker) access(sel *ast.SelectorExpr, ls lockset, write bool) {
	fv, ok := w.pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	spec := w.idx.fields[fv]
	if spec == nil {
		return
	}
	base := renderExpr(sel.X)
	if base == "" {
		return // owner is not a stable name; out of scope
	}
	key := base + "." + spec.mutex
	need := lockRead
	if write {
		need = lockWrite
	}
	have := ls[key]
	if have >= need {
		return
	}
	if have == lockRead && need == lockWrite {
		// Wrong mode is a local bug — callers cannot upgrade an RLock.
		w.pass.Reportf(sel.Pos(),
			"write of %s requires %s held exclusively, but only RLock is held (//dmp:guardedby(%s))",
			renderExpr(sel), key, spec.mutex)
		return
	}
	if slot, isOwn := w.facts.slots[base]; isOwn && !w.facts.exported {
		// Unexported helper touching a caller-supplied value: record the
		// obligation instead of reporting, and let the interprocedural phase
		// check every call site.
		req := gbReq{slot: slot, mutex: spec.mutex}
		if w.facts.requires[req] < need {
			w.facts.requires[req] = need
			w.facts.reqField[req] = fv.Name()
		}
		return
	}
	if write {
		w.pass.Reportf(sel.Pos(),
			"write of %s requires %s held exclusively (//dmp:guardedby(%s))",
			renderExpr(sel), key, spec.mutex)
	} else {
		w.pass.Reportf(sel.Pos(),
			"read of %s requires %s held (//dmp:guardedby(%s))",
			renderExpr(sel), key, spec.mutex)
	}
}

// gbPropagateAndReport pushes "requires lock" facts up the call graph to a
// fixpoint — an unexported caller that cannot satisfy a callee's obligation
// on one of its own receiver/parameters inherits it — then reports every
// call site left holding an unmet obligation.
func gbPropagateAndReport(pass *Pass, facts map[*types.Func]*gbFacts) {
	graph := pass.Module.Graph()
	for changed := true; changed; {
		changed = false
		for fn, f := range facts {
			node := graph.Node(fn)
			if node == nil {
				continue
			}
			for _, e := range node.Calls {
				cf := facts[e.Callee]
				if cf == nil || len(cf.requires) == 0 {
					continue
				}
				ls := f.callLS[e.Call]
				for req, mode := range cf.requires {
					base := renderExpr(callSlotExpr(e.Call, req.slot))
					if base == "" {
						continue
					}
					if ls[base+"."+req.mutex] >= mode {
						continue
					}
					slot, isOwn := f.slots[base]
					if !isOwn || f.exported {
						continue // reported in the phase below
					}
					up := gbReq{slot: slot, mutex: req.mutex}
					if f.requires[up] < mode {
						f.requires[up] = mode
						f.reqField[up] = cf.reqField[req]
						changed = true
					}
				}
			}
		}
	}
	for fn, f := range facts {
		node := graph.Node(fn)
		if node == nil {
			continue
		}
		for _, e := range node.Calls {
			cf := facts[e.Callee]
			if cf == nil || len(cf.requires) == 0 {
				continue
			}
			ls := f.callLS[e.Call]
			for req, mode := range cf.requires {
				base := renderExpr(callSlotExpr(e.Call, req.slot))
				if base == "" {
					continue
				}
				key := base + "." + req.mutex
				if ls[key] >= mode {
					continue
				}
				if _, isOwn := f.slots[base]; isOwn && !f.exported {
					continue // forwarded to this function's own callers
				}
				how := "held"
				if mode == lockWrite {
					how = "held exclusively"
				}
				pass.Reportf(e.Pos, "call to %s requires %s %s (callee touches //dmp:guardedby field %s)",
					e.Callee.Name(), key, how, cf.reqField[req])
			}
		}
	}
}

// callSlotExpr returns the expression a callee obligation slot binds to at a
// call site: the method receiver for slot -1, else the positional argument.
func callSlotExpr(call *ast.CallExpr, slot int) ast.Expr {
	if slot < 0 {
		fun := ast.Unparen(call.Fun)
		switch ix := fun.(type) {
		case *ast.IndexExpr:
			fun = ix.X
		case *ast.IndexListExpr:
			fun = ix.X
		}
		if sel, ok := fun.(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	if slot < len(call.Args) {
		return call.Args[slot]
	}
	return nil
}
