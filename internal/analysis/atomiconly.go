package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicOnlyDirective marks a counter whose every access must go through
// sync/atomic:
//
//	hits int64 //dmp:atomiconly
//
// The annotation is optional for plain-typed fields — any field the module
// touches through sync/atomic functions is enforced automatically — but
// writing it makes the contract explicit and survives refactors that
// temporarily remove the atomic accesses (which would otherwise silently
// drop enforcement; with the annotation they surface as a stale directive).
const AtomicOnlyDirective = "dmp:atomiconly"

// AtomicOnly enforces all-or-nothing atomicity on shared counters, the
// tracegen.CacheStats / server-metrics pattern. Three rules, all module-wide:
//
//  1. A plain-typed field or package variable that is passed to a sync/atomic
//     function (atomic.AddInt64(&s.hits, 1)) anywhere in the module — or that
//     carries //dmp:atomiconly — must never be read or written directly: one
//     plain access racing the atomic ones is a data race that -race only
//     catches on the schedules it happens to run.
//  2. A field or variable of a sync/atomic type (atomic.Int64, atomic.Value,
//     ...) may only be used as a method receiver or have its address taken.
//     Whole-value stores (t.state = atomic.Value{}) and copies tear the value
//     out from under concurrent Load/CompareAndSwap callers; go vet's
//     copylocks misses atomic.Value, which carries no noCopy sentinel.
//  3. A //dmp:atomiconly annotation on something the module never actually
//     accesses atomically is stale and reported, like every other dmp
//     annotation.
//
// Keyed composite-literal elements are exempt: initialization happens before
// the value is shared.
var AtomicOnly = &Analyzer{
	Name: "atomiconly",
	Doc: "fields accessed through sync/atomic anywhere in the module (or marked " +
		"//dmp:atomiconly) must never see a plain load or store, and values of " +
		"sync/atomic types must never be copied or overwritten wholesale",
	Run: runAtomicOnly,
}

// atomicFact is what the module knows about one enforced variable.
type atomicFact struct {
	name     string
	typed    bool // type is declared in sync/atomic
	declared bool // carries //dmp:atomiconly
	declFile string
	declPos  token.Pos
	viaFuncs bool // address passed to a sync/atomic function somewhere
	typedUse bool // atomic-typed methods called on it somewhere
}

type atomicIndex struct {
	vars  map[*types.Var]*atomicFact
	stale []indexDiag
}

func atomicOnlyIndex(pass *Pass) *atomicIndex {
	return pass.Module.Cached("atomiconly.index", func() any {
		return buildAtomicIndex(pass.Module)
	}).(*atomicIndex)
}

func buildAtomicIndex(m *Module) *atomicIndex {
	idx := &atomicIndex{vars: make(map[*types.Var]*atomicFact)}
	fact := func(v *types.Var) *atomicFact {
		f := idx.vars[v]
		if f == nil {
			f = &atomicFact{name: v.Name(), typed: typeIn(v.Type(), "sync/atomic")}
			idx.vars[v] = f
		}
		return f
	}
	declare := func(pkg *Package, obj types.Object, arg string, dpos token.Pos) {
		v, ok := obj.(*types.Var)
		if !ok {
			return
		}
		file := pkg.Fset.Position(dpos).Filename
		if arg != "" {
			idx.stale = append(idx.stale, indexDiag{file, dpos, fmt.Sprintf(
				"malformed //dmp:atomiconly on %s: takes no argument", v.Name())})
			return
		}
		f := fact(v)
		f.declared = true
		f.declFile = file
		f.declPos = dpos
	}
	for _, pkg := range m.Packages {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.StructType:
					if x.Fields == nil {
						return true
					}
					for _, field := range x.Fields.List {
						arg, dpos, found := fieldDirective(field, AtomicOnlyDirective)
						for _, nameID := range field.Names {
							obj := pkg.Info.Defs[nameID]
							if found {
								declare(pkg, obj, arg, dpos)
							} else if v, ok := obj.(*types.Var); ok && typeIn(v.Type(), "sync/atomic") {
								fact(v) // rule 2 applies to every atomic-typed field
							}
						}
					}
				case *ast.ValueSpec:
					arg, dpos, found := specDirective(x, AtomicOnlyDirective)
					for _, nameID := range x.Names {
						obj := pkg.Info.Defs[nameID]
						if found {
							declare(pkg, obj, arg, dpos)
						} else if v, ok := obj.(*types.Var); ok && !v.IsField() &&
							v.Pkg() != nil && v.Parent() == v.Pkg().Scope() &&
							typeIn(v.Type(), "sync/atomic") {
							fact(v)
						}
					}
				case *ast.CallExpr:
					if path, _, ok := pkgFuncCallInfo(pkg.Info, x); ok && path == "sync/atomic" {
						for _, a := range x.Args {
							if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
								if v := atomicTargetVar(pkg.Info, u.X); v != nil {
									fact(v).viaFuncs = true
								}
							}
						}
						return true
					}
					if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
						if v := atomicTargetVar(pkg.Info, sel.X); v != nil && typeIn(v.Type(), "sync/atomic") {
							fact(v).typedUse = true
						}
					}
				}
				return true
			})
		}
	}
	return idx
}

// atomicTargetVar resolves an expression to the field or package-level
// variable it names, or nil: locals have purely local discipline and are the
// province of -race, not this analyzer.
func atomicTargetVar(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && !v.IsField() &&
			v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v
		}
	}
	return nil
}

func runAtomicOnly(pass *Pass) {
	idx := atomicOnlyIndex(pass)
	inPass := make(map[string]bool, len(pass.Files))
	for _, f := range pass.Files {
		inPass[pass.Fset.Position(f.Pos()).Filename] = true
	}
	for _, d := range idx.stale {
		if inPass[d.file] {
			pass.Reportf(d.pos, "%s", d.msg)
		}
	}
	for _, fct := range idx.vars {
		if !fct.declared || !inPass[fct.declFile] {
			continue
		}
		switch {
		case !fct.typed && !fct.viaFuncs:
			pass.Reportf(fct.declPos,
				"stale //dmp:atomiconly on %s: no sync/atomic access to it anywhere in the module", fct.name)
		case fct.typed && !fct.typedUse:
			pass.Reportf(fct.declPos,
				"stale //dmp:atomiconly on %s: never accessed through its atomic methods", fct.name)
		}
	}
	if len(idx.vars) == 0 {
		return
	}
	for _, f := range pass.Files {
		checkAtomicAccesses(pass, idx, f)
	}
}

// parentMap records each node's syntactic parent within one file.
type parentMap map[ast.Node]ast.Node

func buildParents(f *ast.File) parentMap {
	pm := make(parentMap)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			pm[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return pm
}

// parentSkippingParens walks up through ParenExprs.
func parentSkippingParens(pm parentMap, n ast.Node) ast.Node {
	p := pm[n]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			return p
		}
		p = pm[pe]
	}
}

func checkAtomicAccesses(pass *Pass, idx *atomicIndex, f *ast.File) {
	pm := buildParents(f)
	info := pass.TypesInfo
	ast.Inspect(f, func(n ast.Node) bool {
		var fv *types.Var
		var node ast.Expr
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if v, ok := info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
				fv, node = v, x
			}
		case *ast.Ident:
			if p, ok := pm[x].(*ast.SelectorExpr); ok && p.Sel == x {
				return true // counted at the enclosing selector
			}
			if v, ok := info.Uses[x].(*types.Var); ok && !v.IsField() &&
				v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				fv, node = v, x
			}
		}
		if fv == nil {
			return true
		}
		fct := idx.vars[fv]
		if fct == nil {
			return true
		}
		parent := parentSkippingParens(pm, node)
		// Keyed composite-literal elements: initialization before sharing.
		if kv, ok := parent.(*ast.KeyValueExpr); ok && kv.Key == node {
			if _, isLit := pm[kv].(*ast.CompositeLit); isLit {
				return true
			}
		}
		if fct.typed {
			switch p := parent.(type) {
			case *ast.SelectorExpr:
				// Method receiver: x.f.Add(1).
				if call, ok := parentSkippingParens(pm, p).(*ast.CallExpr); ok && ast.Unparen(call.Fun) == p {
					return true
				}
			case *ast.UnaryExpr:
				if p.Op == token.AND {
					return true // address taken: methods called through the pointer
				}
			}
			name := renderExpr(node)
			if name == "" {
				name = fct.name
			}
			pass.Reportf(node.Pos(),
				"whole-value access to %s: sync/atomic values must not be copied or overwritten; use their methods",
				name)
			return true
		}
		if !fct.declared && !fct.viaFuncs {
			return true
		}
		// Plain-typed enforced target: the only sanctioned use is &x passed
		// straight into a sync/atomic call.
		if u, ok := parent.(*ast.UnaryExpr); ok && u.Op == token.AND {
			if call, ok := parentSkippingParens(pm, u).(*ast.CallExpr); ok {
				if path, _, isPkg := pkgFuncCall(pass, call); isPkg && path == "sync/atomic" {
					return true
				}
			}
		}
		name := renderExpr(node)
		if name == "" {
			name = fct.name
		}
		reason := "it is accessed via sync/atomic elsewhere in the module"
		if fct.declared {
			reason = "it is marked //dmp:atomiconly"
		}
		pass.Reportf(node.Pos(), "plain access to %s: %s; use sync/atomic", name, reason)
		return true
	})
}
