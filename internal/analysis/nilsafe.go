package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilSafeEmit enforces both halves of the telemetry Recorder's nil contract.
//
// Definition side: every exported method on *Recorder must open with the
// nil-receiver guard (`if r == nil { return ... }`), so a simulator holding a
// nil recorder pays exactly one pointer compare per emit. A value receiver is
// flagged too: it cannot be nil-guarded at all.
//
// Caller side: code must not wrap a single emit in its own `if rec != nil`
// check — the guard already lives inside the method, and a redundant outer
// check both duplicates the branch and invites the un-guarded call pattern to
// spread. (Nil checks that guard a *block* of work, e.g. a loop assembling
// lease events, are deliberately allowed: they skip argument computation,
// not just the call.)
var NilSafeEmit = &Analyzer{
	Name: "nilsafe-emit",
	Doc: "Recorder methods must start with the nil-receiver guard, and callers must not " +
		"pre-check != nil around a single emit; the disabled path is one pointer compare",
	Run: runNilSafeEmit,
}

func runNilSafeEmit(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkRecorderMethod(pass, fn)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ifStmt, ok := n.(*ast.IfStmt)
			if ok {
				checkRedundantNilCheck(pass, ifStmt)
			}
			return true
		})
	}
}

// recorderReceiver returns the receiver ident (nil when unnamed) when fn is
// a method on Recorder or *Recorder, with pointer reporting.
func recorderReceiver(fn *ast.FuncDecl) (recv *ast.Ident, pointer, ok bool) {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return nil, false, false
	}
	field := fn.Recv.List[0]
	t := field.Type
	if star, isStar := t.(*ast.StarExpr); isStar {
		pointer = true
		t = star.X
	}
	ident, isIdent := t.(*ast.Ident)
	if !isIdent || ident.Name != "Recorder" {
		return nil, false, false
	}
	if len(field.Names) == 1 {
		recv = field.Names[0]
	}
	return recv, pointer, true
}

// checkRecorderMethod verifies the nil guard on one exported Recorder method.
func checkRecorderMethod(pass *Pass, fn *ast.FuncDecl) {
	recv, pointer, ok := recorderReceiver(fn)
	if !ok || !fn.Name.IsExported() || fn.Body == nil {
		return
	}
	if !pointer {
		pass.Reportf(fn.Pos(),
			"Recorder.%s uses a value receiver: telemetry methods must use *Recorder so a "+
				"nil (disabled) recorder stays callable", fn.Name.Name)
		return
	}
	if recv == nil {
		pass.Reportf(fn.Pos(),
			"Recorder.%s discards its receiver: telemetry methods must start with the "+
				"`if r == nil { return }` guard", fn.Name.Name)
		return
	}
	if len(fn.Body.List) == 0 || !startsWithNilGuard(fn.Body.List[0], recv.Name) {
		pass.Reportf(fn.Pos(),
			"Recorder.%s does not start with the nil-receiver guard: the first statement "+
				"must be `if %s == nil { return ... }` (disabled telemetry is one pointer compare)",
			fn.Name.Name, recv.Name)
	}
}

// startsWithNilGuard reports whether stmt is an if whose condition contains
// `recv == nil` (possibly OR-ed with cheap early-out conditions, as in
// PoolCheck) and whose body returns.
func startsWithNilGuard(stmt ast.Stmt, recvName string) bool {
	ifStmt, ok := stmt.(*ast.IfStmt)
	if !ok || ifStmt.Init != nil {
		return false
	}
	if !condChecksNil(ifStmt.Cond, recvName, token.EQL) {
		return false
	}
	n := len(ifStmt.Body.List)
	if n == 0 {
		return false
	}
	_, returns := ifStmt.Body.List[n-1].(*ast.ReturnStmt)
	return returns
}

// condChecksNil reports whether cond contains the comparison `name <op> nil`
// at the top level or under || / && chains.
func condChecksNil(cond ast.Expr, name string, op token.Token) bool {
	switch e := cond.(type) {
	case *ast.ParenExpr:
		return condChecksNil(e.X, name, op)
	case *ast.BinaryExpr:
		if e.Op == token.LOR || e.Op == token.LAND {
			return condChecksNil(e.X, name, op) || condChecksNil(e.Y, name, op)
		}
		if e.Op != op {
			return false
		}
		return (exprIsName(e.X, name) && exprIsNil(e.Y)) ||
			(exprIsName(e.Y, name) && exprIsNil(e.X))
	}
	return false
}

func exprIsName(e ast.Expr, name string) bool {
	ident, ok := e.(*ast.Ident)
	return ok && ident.Name == name
}

func exprIsNil(e ast.Expr) bool {
	ident, ok := e.(*ast.Ident)
	return ok && ident.Name == "nil"
}

// checkRedundantNilCheck flags `if x != nil { x.Emit(...) }` where x is a
// *Recorder and the body is exactly the one emit call.
func checkRedundantNilCheck(pass *Pass, ifStmt *ast.IfStmt) {
	if ifStmt.Init != nil || ifStmt.Else != nil || len(ifStmt.Body.List) != 1 {
		return
	}
	bin, ok := ifStmt.Cond.(*ast.BinaryExpr)
	if !ok || bin.Op != token.NEQ {
		return
	}
	var checked ast.Expr
	switch {
	case exprIsNil(bin.Y):
		checked = bin.X
	case exprIsNil(bin.X):
		checked = bin.Y
	default:
		return
	}
	if !isRecorderPtr(pass.TypeOf(checked)) {
		return
	}
	exprStmt, ok := ifStmt.Body.List[0].(*ast.ExprStmt)
	if !ok {
		return
	}
	call, ok := exprStmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	recv, typeName, method, ok := methodCall(pass, call)
	if !ok || typeName != "Recorder" {
		return
	}
	if types.ExprString(recv) != types.ExprString(checked) {
		return
	}
	pass.Reportf(ifStmt.Pos(),
		"redundant nil check around %s.%s: Recorder methods are nil-safe, call it directly "+
			"(the guard inside the method is the single pointer compare)",
		types.ExprString(recv), method)
}

// isRecorderPtr reports whether t is *Recorder for any type named Recorder.
func isRecorderPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && named.Obj().Name() == "Recorder"
}
