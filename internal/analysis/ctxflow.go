package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces request-context plumbing in the daemon's serving packages
// (internal/server and experiments): any function reachable from an HTTP
// handler must thread the request's context, not mint or resurrect one.
//
// Handlers are recognized by signature — a parameter list containing both an
// http.ResponseWriter and a *http.Request — and the reachable set is computed
// over the module call graph, including goroutines the handler starts and
// calls made through function-typed struct fields (resolved via the graph's
// field-wiring table, which is how the server's runFn/branchFn seams are
// followed into the experiment runners). On that set, two things are flagged:
//
//   - context.Background() / context.TODO(): a fresh root context detaches
//     the work from the request's cancellation and deadline;
//   - a context argument that is read from a struct field or is the nil
//     literal: a stored context is a context that outlives (or predates) the
//     request it is handed to. Deliberate detachment points — the server's
//     join-a-running-run seam — are sanctioned case by case with
//     //dmplint:ignore and a reason.
//
// Calls through interfaces are not followed (the graph records but cannot
// resolve them); the argument-shape rule still applies at such call sites,
// which is what makes dropped contexts visible even across dynamic seams.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "on call paths reachable from an HTTP handler in internal/server and " +
		"experiments, flag context.Background()/context.TODO() and context " +
		"arguments read from struct fields or passed as nil",
	PathFilter: ctxFlowPath,
	Run:        runCtxFlow,
}

// ctxFlowPackages are the import-path segments ctxflow patrols.
var ctxFlowPackages = []string{"internal/server", "experiments"}

func ctxFlowPath(path string) bool {
	for _, seg := range ctxFlowPackages {
		if path == seg || strings.HasSuffix(path, "/"+seg) ||
			strings.Contains(path, "/"+seg+"/") || strings.HasPrefix(path, seg+"/") {
			return true
		}
	}
	return false
}

// handlerReach computes the set of functions reachable from HTTP handlers,
// module-wide, following static edges and field-wired dynamic calls.
func handlerReach(pass *Pass) map[*types.Func]bool {
	return pass.Module.Cached("ctxflow.reach", func() any {
		g := pass.Module.Graph()
		reach := make(map[*types.Func]bool)
		var stack []*types.Func
		push := func(fn *types.Func) {
			if fn != nil && !reach[fn] {
				reach[fn] = true
				stack = append(stack, fn)
			}
		}
		for fn := range g.Funcs {
			if isHandlerSig(fn) {
				push(fn)
			}
		}
		for len(stack) > 0 {
			fn := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			node := g.Node(fn)
			if node == nil {
				continue
			}
			for _, e := range node.Calls {
				push(e.Callee)
			}
			for _, d := range node.Dyn {
				if d.Field != nil {
					for _, target := range g.FieldFuncs[d.Field] {
						push(target)
					}
				}
			}
		}
		return reach
	}).(map[*types.Func]bool)
}

// isHandlerSig reports whether fn's parameters include a ResponseWriter and
// a Request. Matching is by type name, not import path — the same choice
// methodCall makes — so analyzer fixtures can define lightweight stand-ins
// instead of pulling net/http's dependency tree through the source importer.
func isHandlerSig(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	var w, r bool
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if typeNamed(t, "ResponseWriter") {
			w = true
		}
		if typeNamed(t, "Request") {
			r = true
		}
	}
	return w && r
}

// typeNamed reports whether t (pointers dereferenced) is a named type with
// the given name, regardless of package.
func typeNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == name
}

func runCtxFlow(pass *Pass) {
	reach := handlerReach(pass)
	if len(reach) == 0 {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || !reach[fn] {
				continue
			}
			checkCtxFlow(pass, fd)
		}
	}
}

func checkCtxFlow(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if path, name, isPkg := pkgFuncCall(pass, call); isPkg && path == "context" &&
			(name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(),
				"context.%s() in %s, which is reachable from an HTTP handler; thread the request context instead",
				name, fd.Name.Name)
			return true
		}
		sig, isSig := typeAsSignature(pass.TypeOf(call.Fun))
		if !isSig {
			return true
		}
		for i, arg := range call.Args {
			if i >= sig.Params().Len() {
				break
			}
			if !namedIn(sig.Params().At(i).Type(), "context", "Context") {
				continue
			}
			switch a := ast.Unparen(arg).(type) {
			case *ast.Ident:
				if _, isNil := pass.TypesInfo.Uses[a].(*types.Nil); isNil {
					pass.Reportf(a.Pos(),
						"nil context passed to %s on a handler-reachable path; pass the request context",
						calleeName(call))
				}
			case *ast.SelectorExpr:
				if v, isVar := pass.TypesInfo.Uses[a.Sel].(*types.Var); isVar && v.IsField() {
					pass.Reportf(a.Pos(),
						"context read from field %s passed to %s on a handler-reachable path; plumb the request context instead",
						renderExpr(a), calleeName(call))
				}
			}
		}
		return true
	})
}

// typeAsSignature unwraps t to a function signature, if it is one.
func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// calleeName renders the called function for diagnostics, best-effort.
func calleeName(call *ast.CallExpr) string {
	if name := renderExpr(call.Fun); name != "" {
		return name
	}
	return "the call"
}
