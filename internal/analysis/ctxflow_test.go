package analysis_test

import (
	"testing"

	"dismem/internal/analysis"
	"dismem/internal/analysis/analysistest"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.CtxFlow, "ctxflow")
}

func TestCtxFlowPathFilter(t *testing.T) {
	cases := map[string]bool{
		"internal/server":               true,
		"dismem/internal/server":        true,
		"dismem/experiments":            true,
		"dismem/experiments/sub":        true,
		"dismem/internal/core":          false,
		"dismem/internal/serverutil":    false,
		"example.com/x/internal/server": true,
		"example.com/x/internal/sweep":  false,
	}
	for path, want := range cases {
		if got := analysis.CtxFlow.PathFilter(path); got != want {
			t.Errorf("PathFilter(%q) = %v, want %v", path, got, want)
		}
	}
}
