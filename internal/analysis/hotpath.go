package analysis

import (
	"go/ast"
	"go/types"
)

// HotPathDirective marks a function whose body must not allocate: the
// annotation turns the repo's AllocsPerRun==0 benchmarks into a localized,
// per-line diagnostic.
const HotPathDirective = "dmp:hotpath"

// HotPathAlloc checks functions annotated //dmp:hotpath for the allocation
// sources the 0-alloc tests keep catching after the fact:
//
//   - closures capturing outer variables that escape (stored, returned, or
//     handed to Engine.Schedule/After/Every); a capturing closure passed
//     directly to an ordinary call (sort, index walks) stays on the stack
//     and is allowed
//   - fmt.Sprintf and friends (always allocate), except feeding panic —
//     a path that ends the process may format its last words
//   - implicit interface boxing: passing, assigning, converting, or
//     returning a non-pointer concrete value where an interface is expected
//   - unhinted append growth: appending to a slice declared in the function
//     without capacity (var s []T, s := []T{...}, make([]T, n)); hot-path
//     slices must reuse scratch (buf[:0]) or make([]T, 0, cap)
//
// The checks are lexical — they look at the annotated body only, not at
// callees — so the diagnostic always points into the function that carries
// the contract.
var HotPathAlloc = &Analyzer{
	Name: "hotpath-alloc",
	Doc: "functions annotated //dmp:hotpath may not contain escaping capturing closures, " +
		"fmt.Sprintf, interface-boxing conversions, or unhinted append growth",
	Run: runHotPathAlloc,
}

// fmtAllocating lists fmt functions that always allocate their result.
var fmtAllocating = map[string]bool{
	"Sprintf": true, "Sprint": true, "Sprintln": true, "Errorf": true,
}

// boxExemptPkgs are stdlib packages that take interface{} parameters by
// design; boxing into them is the documented calling convention, not an
// accidental allocation.
var boxExemptPkgs = map[string]bool{
	"sort": true, "slices": true, "fmt": true, "errors": true,
}

func runHotPathAlloc(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if funcDocHasDirective(fn, HotPathDirective) {
				checkHotPath(pass, fn)
			}
		}
	}
}

type hotPathChecker struct {
	pass *Pass
	fn   *ast.FuncDecl

	// callArgLits maps closure literals that appear directly as call
	// arguments to whether that call retains them (Engine scheduling).
	callArgLits map[*ast.FuncLit]bool
	// panicArgs holds the argument expressions of panic calls; everything
	// inside them is exempt (the path ends the process).
	panicArgs []ast.Expr
	// unhinted maps function-local slice variables to their no-capacity
	// declaration site.
	unhinted map[*types.Var]bool
	// lits holds every closure literal in the body; returns inside them
	// answer the closure's signature, not the annotated function's.
	lits []*ast.FuncLit
}

func checkHotPath(pass *Pass, fn *ast.FuncDecl) {
	c := &hotPathChecker{
		pass:        pass,
		fn:          fn,
		callArgLits: make(map[*ast.FuncLit]bool),
		unhinted:    make(map[*types.Var]bool),
	}
	c.classifyDecls()
	c.collectCallContext()
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			c.checkClosure(node)
		case *ast.CallExpr:
			c.checkCall(node)
		case *ast.AssignStmt:
			c.checkAssignBoxing(node)
		case *ast.ReturnStmt:
			c.checkReturnBoxing(node)
		}
		return true
	})
}

// collectCallContext records closure-literal call arguments and panic
// arguments in one pre-pass, standing in for parent links.
func (c *hotPathChecker) collectCallContext() {
	goCalls := make(map[*ast.CallExpr]bool)
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		if g, isGo := n.(*ast.GoStmt); isGo {
			goCalls[g.Call] = true // pre-order: marked before the call is visited
		}
		if lit, isLit := n.(*ast.FuncLit); isLit {
			c.lits = append(c.lits, lit)
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// A literal that is itself the callee — deferred or immediately
		// invoked — runs in place and stays on the stack (open-coded defers);
		// `go func(){...}()` escapes to the new goroutine and stays flagged.
		if lit, isLit := call.Fun.(*ast.FuncLit); isLit && !goCalls[call] {
			c.callArgLits[lit] = false
		}
		if ident, isIdent := call.Fun.(*ast.Ident); isIdent && ident.Name == "panic" {
			if _, isBuiltin := c.pass.TypesInfo.Uses[ident].(*types.Builtin); isBuiltin {
				c.panicArgs = append(c.panicArgs, call.Args...)
			}
		}
		retains := false
		if _, typeName, method, isMethod := methodCall(c.pass, call); isMethod {
			retains = typeName == "Engine" && engineScheduling[method]
		}
		for _, arg := range call.Args {
			if lit, isLit := arg.(*ast.FuncLit); isLit {
				c.callArgLits[lit] = retains
			}
		}
		return true
	})
}

// inPanicArg reports whether node lies inside a panic(...) argument.
func (c *hotPathChecker) inPanicArg(node ast.Node) bool {
	for _, arg := range c.panicArgs {
		if arg.Pos() <= node.Pos() && node.End() <= arg.End() {
			return true
		}
	}
	return false
}

// classifyDecls records every function-local slice variable declared without
// a capacity hint.
func (c *hotPathChecker) classifyDecls() {
	ast.Inspect(c.fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ValueSpec:
			for i, name := range node.Names {
				v, ok := c.pass.TypesInfo.Defs[name].(*types.Var)
				if !ok || !isSliceVar(v) {
					continue
				}
				if len(node.Values) == 0 {
					c.unhinted[v] = true // var s []T — nil, every append grows
				} else if i < len(node.Values) && unhintedSliceExpr(c.pass, node.Values[i]) {
					c.unhinted[v] = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range node.Lhs {
				ident, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				v, ok := c.pass.TypesInfo.Defs[ident].(*types.Var)
				if !ok || !isSliceVar(v) {
					continue
				}
				if len(node.Rhs) == len(node.Lhs) && unhintedSliceExpr(c.pass, node.Rhs[i]) {
					c.unhinted[v] = true
				}
			}
		}
		return true
	})
}

func isSliceVar(v *types.Var) bool {
	_, ok := v.Type().Underlying().(*types.Slice)
	return ok
}

// unhintedSliceExpr reports whether e creates a slice with no spare
// capacity: a composite literal or a two-argument make. Slicing expressions
// (buf[:0]), three-argument make, and call results count as hinted.
func unhintedSliceExpr(pass *Pass, e ast.Expr) bool {
	switch expr := e.(type) {
	case *ast.CompositeLit:
		_, isSlice := pass.TypeOf(expr).Underlying().(*types.Slice)
		return isSlice
	case *ast.CallExpr:
		ident, ok := expr.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		if b, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin); !isBuiltin || b.Name() != "make" {
			return false
		}
		if len(expr.Args) >= 3 {
			return false // explicit capacity
		}
		_, isSlice := pass.TypeOf(expr).Underlying().(*types.Slice)
		return isSlice
	}
	return false
}

// checkClosure flags closures that capture outer variables unless they are
// immediate arguments to a non-retaining call.
func (c *hotPathChecker) checkClosure(lit *ast.FuncLit) {
	captured := c.capturedVars(lit)
	if len(captured) == 0 {
		return
	}
	retains, isCallArg := c.callArgLits[lit]
	if isCallArg && !retains {
		return // stack-allocated in practice: sort.Slice, index walks, ...
	}
	where := "stored or returned"
	if retains {
		where = "handed to the event queue"
	}
	c.pass.Reportf(lit.Pos(),
		"//dmp:hotpath %s: closure capturing %s is %s and escapes to the heap; "+
			"hoist the state or reuse a prebuilt closure",
		c.fn.Name.Name, quotedList(captured), where)
}

// capturedVars returns the names of variables declared in the enclosing
// function but referenced inside lit.
func (c *hotPathChecker) capturedVars(lit *ast.FuncLit) []string {
	var names []string
	seen := make(map[*types.Var]bool)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		ident, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := c.pass.TypesInfo.Uses[ident].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Captured = declared inside the annotated function but outside the
		// literal. Package-level variables are shared state, not captures.
		if v.Pos() < c.fn.Pos() || v.Pos() >= c.fn.End() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true
		}
		seen[v] = true
		names = append(names, v.Name())
		return true
	})
	return names
}

// checkCall covers fmt allocation, interface-boxing call arguments,
// boxing conversions, and unhinted appends.
func (c *hotPathChecker) checkCall(call *ast.CallExpr) {
	if pkgPath, name, ok := pkgFuncCall(c.pass, call); ok && pkgPath == "fmt" && fmtAllocating[name] {
		if !c.inPanicArg(call) {
			c.pass.Reportf(call.Pos(),
				"//dmp:hotpath %s: fmt.%s allocates its result on every call; "+
					"precompute the string or move formatting off the hot path",
				c.fn.Name.Name, name)
		}
		return
	}
	if isBuiltinAppend(c.pass, call) && len(call.Args) > 0 {
		if v, ok := identObj(c.pass, call.Args[0]).(*types.Var); ok && c.unhinted[v] {
			c.pass.Reportf(call.Pos(),
				"//dmp:hotpath %s: append to %s, declared without capacity — growth "+
					"reallocates; reuse a scratch buffer (buf[:0]) or make([]T, 0, cap)",
				c.fn.Name.Name, v.Name())
		}
		return
	}
	// Conversion to an interface type: T(x) where T is an interface.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) && boxes(c.pass.TypeOf(call.Args[0])) {
			if !c.inPanicArg(call) {
				c.pass.Reportf(call.Pos(),
					"//dmp:hotpath %s: converting %s to interface %s boxes the value on the heap",
					c.fn.Name.Name, c.pass.TypeOf(call.Args[0]), tv.Type)
			}
		}
		return
	}
	// Ordinary call: arguments passed into interface-typed parameters.
	// Builtins (panic's argument is a dying path) and stdlib packages whose
	// API takes interface{} by design (sort.Slice) are not boxing sites worth
	// policing; the rule exists for the repo's own interfaces.
	if ident, isIdent := call.Fun.(*ast.Ident); isIdent {
		if _, isBuiltin := c.pass.TypesInfo.Uses[ident].(*types.Builtin); isBuiltin {
			return
		}
	}
	if pkgPath, _, isPkgCall := pkgFuncCall(c.pass, call); isPkgCall && boxExemptPkgs[pkgPath] {
		return
	}
	sig, ok := c.pass.TypeOf(call.Fun).(*types.Signature)
	if !ok || c.inPanicArg(call) {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var paramType types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // s... forwards the slice, no per-element boxing
			}
			paramType = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			paramType = params.At(i).Type()
		default:
			continue
		}
		if types.IsInterface(paramType) && boxes(c.pass.TypeOf(arg)) {
			c.pass.Reportf(arg.Pos(),
				"//dmp:hotpath %s: passing %s as interface %s boxes the value on the heap",
				c.fn.Name.Name, c.pass.TypeOf(arg), paramType)
		}
	}
}

// checkAssignBoxing flags assignments of concrete non-pointer values into
// interface-typed variables.
func (c *hotPathChecker) checkAssignBoxing(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		lt := c.pass.TypeOf(as.Lhs[i])
		if lt == nil || !types.IsInterface(lt) {
			continue
		}
		if boxes(c.pass.TypeOf(as.Rhs[i])) && !c.inPanicArg(as.Rhs[i]) {
			c.pass.Reportf(as.Rhs[i].Pos(),
				"//dmp:hotpath %s: assigning %s to interface %s boxes the value on the heap",
				c.fn.Name.Name, c.pass.TypeOf(as.Rhs[i]), lt)
		}
	}
}

// checkReturnBoxing flags returning concrete non-pointer values as
// interface results.
func (c *hotPathChecker) checkReturnBoxing(ret *ast.ReturnStmt) {
	for _, lit := range c.lits {
		if lit.Body != nil && lit.Body.Pos() <= ret.Pos() && ret.End() <= lit.Body.End() {
			return // returns from the closure, not from the annotated function
		}
	}
	sig, ok := c.pass.TypeOf(funcIdent(c.fn)).(*types.Signature)
	if !ok {
		return
	}
	results := sig.Results()
	if len(ret.Results) != results.Len() {
		return // bare return or comma-ok forms
	}
	for i, e := range ret.Results {
		rt := results.At(i).Type()
		if types.IsInterface(rt) && boxes(c.pass.TypeOf(e)) {
			c.pass.Reportf(e.Pos(),
				"//dmp:hotpath %s: returning %s as interface %s boxes the value on the heap",
				c.fn.Name.Name, c.pass.TypeOf(e), rt)
		}
	}
}

func funcIdent(fn *ast.FuncDecl) *ast.Ident { return fn.Name }

// boxes reports whether storing a value of type t in an interface requires a
// heap allocation: concrete non-pointer-shaped types do (structs, strings,
// slices, large and small scalars alike); pointers, channels, maps,
// functions, and unsafe pointers are stored directly; nil and existing
// interfaces do not convert.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Interface:
		return false
	case *types.Basic:
		// Untyped nil and untyped constants that default to nil-able kinds.
		return u.Kind() != types.UntypedNil
	}
	return true
}
