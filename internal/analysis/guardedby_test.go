package analysis_test

import (
	"testing"

	"dismem/internal/analysis"
	"dismem/internal/analysis/analysistest"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.GuardedBy, "guardedby")
}
