package analysis_test

import (
	"testing"

	"dismem/internal/analysis"
	"dismem/internal/analysis/analysistest"
)

func TestAtomicOnly(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.AtomicOnly, "atomiconly")
}
