package analysis_test

import (
	"testing"

	"dismem/internal/analysis"
	"dismem/internal/analysis/analysistest"
)

func TestNilSafeEmit(t *testing.T) {
	analysistest.Run(t, "testdata", analysis.NilSafeEmit, "nilsafe")
}
