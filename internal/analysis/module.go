package analysis

// Module bundles every package of one dmplint invocation so analyzers can
// reason interprocedurally: the call graph, the guarded-field index, and the
// atomic-field facts are all module-wide properties that a single package
// cannot compute for itself (a helper's callers, a counter's atomic accesses,
// and a handler's reachable callees routinely live in sibling packages).
//
// A Module is built once per run over the full target set and shared by every
// Pass; derived indexes are computed lazily and cached, so a run that never
// consults the call graph never builds it. The driver is single-threaded, so
// no locking is needed.
type Module struct {
	Packages []*Package

	graph *Graph
	cache map[string]any // analyzer-owned module-wide indexes, by analyzer key
}

// NewModule bundles the given packages into one analysis scope.
func NewModule(pkgs []*Package) *Module {
	return &Module{Packages: pkgs}
}

// Graph returns the module-wide call graph, building it on first use.
func (m *Module) Graph() *Graph {
	if m.graph == nil {
		m.graph = BuildGraph(m.Packages)
	}
	return m.graph
}

// Cached memoizes one module-wide index under key: the first caller pays for
// build, every later pass reuses the result. Analyzers use it so their
// whole-module fact tables (guarded fields, atomic fields, handler
// reachability) are computed once per run, not once per package.
func (m *Module) Cached(key string, build func() any) any {
	if m.cache == nil {
		m.cache = make(map[string]any)
	}
	if v, ok := m.cache[key]; ok {
		return v
	}
	v := build()
	m.cache[key] = v
	return v
}

// RunModule applies the analyzers to every package of the module, sharing one
// Module (and therefore one call graph and one set of module-wide fact
// indexes) across all passes. Suppressions are applied per package, exactly
// as RunAnalyzers does; the returned diagnostics are sorted by position.
func RunModule(m *Module, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, pkg := range m.Packages {
		all = append(all, runPackage(m, pkg, analyzers)...)
	}
	SortDiagnostics(all)
	return all
}

// runPackage runs the analyzers over one package of the module and filters
// the findings through that package's //dmplint:ignore directives.
func runPackage(m *Module, pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.PathFilter != nil && !a.PathFilter(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Module:    m,
			pkg:       pkg,
		}
		a.Run(pass)
		diags = append(diags, pass.diags...)
	}
	sups, malformed := collectSuppressions(pkg.Fset, pkg.Files)
	diags = applySuppressions(diags, sups)
	diags = append(diags, malformed...)
	SortDiagnostics(diags)
	return diags
}
