package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file builds dmplint's module-wide call graph, the substrate the
// interprocedural analyzers (guardedby, ctxflow, hotpath-reach) walk. The
// graph is intentionally static and syntax-directed:
//
//   - direct calls to package-level functions (f(), pkg.F()) and method
//     calls on concrete receivers (x.M(), including promoted methods and
//     generic instantiations) resolve through the type info to exactly one
//     *types.Func and become edges;
//   - calls through function values (locals, parameters, struct fields) and
//     through interface methods cannot be resolved without a points-to
//     analysis and are recorded as DynCalls instead of edges. Analyzers that
//     need soundness over the graph (hotpath-reach) surface function-value
//     DynCalls as explicit escape-hatch diagnostics, so an unverifiable hot
//     call is a visible, allowlistable fact rather than a silent hole.
//     Interface dispatch is the module's sanctioned polymorphism boundary
//     (Sink, Policy, Backfiller) and stays silent; its implementations are
//     covered at their own definitions.
//
// Calls inside function literals attach to the enclosing declared function:
// for reachability purposes a closure's body is work its definer may cause,
// which errs conservative for the hot-path closure check.
type Graph struct {
	// Funcs maps every declared function and method in the module to its
	// node. Functions without bodies (declarations only) are absent.
	Funcs map[*types.Func]*FuncNode

	// FieldFuncs is a one-step points-to table for function-typed struct
	// fields: every declared function the module ever assigns to the field,
	// via `x.f = F` / `x.f = recv.M` or a composite-literal element. A
	// DynCall through such a field (recorded in DynCall.Field) can then be
	// expanded to this set — exact for the repo's wiring pattern, where a
	// field is assigned once in a constructor and only tests re-point it.
	FieldFuncs map[*types.Var][]*types.Func
}

// FuncNode is one declared function with its outgoing calls.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Calls []Edge    // statically resolved calls, in source order
	Dyn   []DynCall // calls the graph cannot follow, in source order
}

// Edge is one resolved static call.
type Edge struct {
	Callee *types.Func
	Call   *ast.CallExpr
	Pos    token.Pos
}

// DynCall is one call the static graph cannot follow.
type DynCall struct {
	Call *ast.CallExpr
	Pos  token.Pos
	// Through names what the call goes through: "function value" or
	// "interface method".
	Through string
	// Field is the struct field the function value was read from, when the
	// call is x.f(...) with f a function-typed field; Graph.FieldFuncs[Field]
	// then lists the possible callees. Nil for other dynamic calls.
	Field *types.Var
}

// BuildGraph constructs the call graph over the given packages.
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{
		Funcs:      make(map[*types.Func]*FuncNode),
		FieldFuncs: make(map[*types.Var][]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg}
				collectCalls(pkg, fd, node)
				g.Funcs[fn] = node
			}
			collectFieldWiring(pkg, f, g.FieldFuncs)
		}
	}
	return g
}

// collectFieldWiring records which declared functions are stored into
// function-typed struct fields, from assignments (`s.runFn = s.execute`)
// and keyed composite-literal elements (`&Server{runFn: execute}`).
func collectFieldWiring(pkg *Package, f *ast.File, out map[*types.Var][]*types.Func) {
	record := func(field types.Object, rhs ast.Expr) {
		v, ok := field.(*types.Var)
		if !ok || !v.IsField() {
			return
		}
		fn := staticFuncRef(pkg.Info, rhs)
		if fn == nil {
			return
		}
		for _, prev := range out[v] {
			if prev == fn {
				return
			}
		}
		out[v] = append(out[v], fn)
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range x.Lhs {
				if i >= len(x.Rhs) {
					break
				}
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if obj, found := pkg.Info.Uses[sel.Sel]; found {
					record(obj, x.Rhs[i])
				}
			}
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				if obj, found := pkg.Info.Uses[key]; found {
					record(obj, kv.Value)
				}
			}
		}
		return true
	})
}

// staticFuncRef resolves an expression used as a value to the declared
// function it references: a bare function identifier, a qualified pkg.F,
// or a method value recv.M. Returns nil for anything else.
func staticFuncRef(info *types.Info, e ast.Expr) *types.Func {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[x].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
			if sel, found := info.Selections[x]; found && types.IsInterface(sel.Recv()) {
				return nil // interface method value: target unknown
			}
			return fn
		}
	}
	return nil
}

// Node returns the graph node for fn, or nil for functions the module does
// not declare (stdlib, bodyless declarations).
func (g *Graph) Node(fn *types.Func) *FuncNode { return g.Funcs[fn] }

// collectCalls records every call in fd's body (function literals included)
// on node, classifying each as a static edge or a dynamic call.
func collectCalls(pkg *Package, fd *ast.FuncDecl, node *FuncNode) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, through, field := ResolveCall(pkg.Info, call)
		switch {
		case callee != nil:
			node.Calls = append(node.Calls, Edge{Callee: callee, Call: call, Pos: call.Pos()})
		case through != "":
			node.Dyn = append(node.Dyn, DynCall{Call: call, Pos: call.Pos(), Through: through, Field: field})
		}
		return true
	})
}

// ResolveCall resolves one call expression to its static callee. It returns
// (callee, "", nil) for a resolved call, (nil, through, field) for a dynamic
// call the graph cannot follow (field non-nil when the call reads a
// function-typed struct field), and (nil, "", nil) for non-calls in call
// syntax (type conversions, builtins) and immediately-invoked function
// literals (whose bodies are walked in place).
func ResolveCall(info *types.Info, call *ast.CallExpr) (callee *types.Func, through string, field *types.Var) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: Submit[T](...) / x.M[T](...).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ix.X
	case *ast.IndexListExpr:
		fun = ix.X
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[f].(type) {
		case *types.Func:
			return obj, "", nil
		case *types.Builtin, *types.TypeName, nil:
			return nil, "", nil
		case *types.Var:
			return nil, "function value", nil
		}
		return nil, "", nil
	case *ast.SelectorExpr:
		// pkg.F(...): qualified reference to a package-level function.
		if id, ok := f.X.(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
					return fn, "", nil
				}
				return nil, "", nil // pkg.Type(...) conversion
			}
		}
		sel, ok := info.Selections[f]
		if !ok {
			// Qualified type in a conversion, or unresolved.
			return nil, "", nil
		}
		switch sel.Kind() {
		case types.MethodVal:
			if types.IsInterface(sel.Recv()) {
				return nil, "interface method", nil
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn, "", nil
			}
			return nil, "", nil
		case types.FieldVal:
			if v, ok := sel.Obj().(*types.Var); ok {
				return nil, "function value", v
			}
			return nil, "function value", nil
		}
		return nil, "", nil
	case *ast.FuncLit:
		return nil, "", nil // body walked in place by the enclosing inspection
	}
	// Anything else producing a func value: index into a slice of funcs,
	// call returning a func, type assertion, ...
	if t := info.TypeOf(call.Fun); t != nil {
		if _, isSig := t.Underlying().(*types.Signature); isSig {
			return nil, "function value", nil
		}
	}
	return nil, "", nil
}

// Reachable walks the static edges from the given roots and returns every
// module-declared function reachable from them, roots included. stop, when
// non-nil, prunes the walk: a function for which stop returns true is
// included in the result but its outgoing edges are not followed.
func (g *Graph) Reachable(roots []*types.Func, stop func(*FuncNode) bool) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var stack []*types.Func
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := g.Funcs[fn]
		if node == nil || (stop != nil && stop(node)) {
			continue
		}
		for _, e := range node.Calls {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}
