package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DomainMergeDirective marks a function that is a sanctioned merge step for
// per-domain contention state: it may read the domain-indexed caches because
// it combines them across a job's home-domain set (or rebuilds them from
// per-node truth) before anything escapes.
const DomainMergeDirective = "dmp:domainmerge"

// domainStateFields are the Simulator's domain-indexed contention caches.
// Each slot is local truth for one pressure domain; a value read from one
// slot says nothing about another domain, so any consumer must either merge
// across the relevant domain set or be the rebuild step itself.
var domainStateFields = map[string]bool{
	"domTraffic": true,
	"domRho":     true,
	"domValid":   true,
}

// DomainMerge enforces the pressure-domain locality contract: the per-domain
// caches (domTraffic, domRho, domValid) may be written anywhere — the
// invalidation sites just drop a validity bit — but READ only inside a
// function annotated //dmp:domainmerge. The annotated functions
// (refreshDomains, domainSlowdown) are the merge steps: they rebuild a
// domain from per-node traffic or fold per-domain rho across a job's home
// domains. A read anywhere else is a latent cross-domain leak: one domain's
// rho applied to a job resident in another domain, exactly the bug class the
// 30-seed domains-vs-global differential tests can detect but not localize.
//
// Symmetrically, an annotated function that reads no domain state is
// reported: a stale directive usually means the merge logic moved and took
// the contract's documentation with it.
var DomainMerge = &Analyzer{
	Name: "domainmerge",
	Doc: "per-domain contention state (domTraffic, domRho, domValid) may be read only in " +
		"functions annotated //dmp:domainmerge, which merge across the domain set; " +
		"reads elsewhere leak one domain's pressure into another",
	PathFilter: domainCorePath,
	Run:        runDomainMerge,
}

// domainCorePath admits only the simulator core, where the domain caches
// live; the fixture module bypasses the filter via analysistest.
func domainCorePath(path string) bool {
	const core = "internal/core"
	return path == core || strings.HasSuffix(path, "/"+core) ||
		strings.Contains(path, "/"+core+"/")
}

func runDomainMerge(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkDomainMerge(pass, fn)
		}
	}
}

func checkDomainMerge(pass *Pass, fn *ast.FuncDecl) {
	annotated := funcDocHasDirective(fn, DomainMergeDirective)

	// Pre-pass: plain `=` assignment targets are writes, not reads — both
	// whole-slice installs (s.domValid = make(...)) and per-slot stores
	// (s.domValid[d] = false). Compound assignments (+=) and ++/-- read the
	// old value first and stay subject to the directive.
	writes := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN {
			return true
		}
		for _, lhs := range as.Lhs {
			if sel := domainFieldTarget(pass, lhs); sel != nil {
				writes[sel] = true
			}
		}
		return true
	})

	reads := 0
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !isDomainStateField(pass, sel) || writes[sel] {
			return true
		}
		reads++
		if !annotated {
			pass.Reportf(sel.Pos(),
				"per-domain contention state %s read in %s, which is not a merge step: one "+
					"domain's cache says nothing about another; annotate //dmp:domainmerge and "+
					"fold across the domain set, or route through refreshDomains/domainSlowdown",
				sel.Sel.Name, fn.Name.Name)
		}
		return true
	})

	if annotated && reads == 0 {
		pass.Reportf(fn.Pos(),
			"stale //dmp:domainmerge on %s: the function reads no per-domain contention state",
			fn.Name.Name)
	}
}

// domainFieldTarget resolves an assignment LHS to the domain-state selector
// it stores into: the selector itself, or the selector under an index or
// parenthesis (s.domValid[d]).
func domainFieldTarget(pass *Pass, lhs ast.Expr) *ast.SelectorExpr {
	for {
		switch x := lhs.(type) {
		case *ast.IndexExpr:
			lhs = x.X
		case *ast.ParenExpr:
			lhs = x.X
		case *ast.SelectorExpr:
			if isDomainStateField(pass, x) {
				return x
			}
			return nil
		default:
			return nil
		}
	}
}

// isDomainStateField reports whether sel selects a struct field carrying one
// of the domain cache names. Matching is by field name, like maporder's
// type-name matching, so the fixture can define a lightweight stand-in.
func isDomainStateField(pass *Pass, sel *ast.SelectorExpr) bool {
	if !domainStateFields[sel.Sel.Name] {
		return false
	}
	if s, ok := pass.TypesInfo.Selections[sel]; ok {
		return s.Kind() == types.FieldVal
	}
	v, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	return ok && v.IsField()
}
