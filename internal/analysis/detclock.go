package analysis

import (
	"go/ast"
)

// DetClock forbids nondeterministic inputs inside the simulator core: the
// wall clock, the global math/rand state, and the process environment.
// Everything those provide must instead flow from sim.Engine.Now and the
// scenario's seeded *rand.Rand, so a Result is a pure function of
// (Config, jobs, Seed).
var DetClock = &Analyzer{
	Name: "detclock",
	Doc: "forbid wall-clock reads (time.Now/Since/...), global math/rand, and os.Getenv " +
		"in the deterministic simulator packages; simulated time comes from sim.Engine and " +
		"randomness from the scenario's seeded *rand.Rand",
	PathFilter: GuardedPath,
	Run:        runDetClock,
}

// detClockBanned maps import path -> banned package-level functions -> the
// replacement named in the diagnostic. Methods on seeded *rand.Rand values
// are untouched: only the process-global entry points are banned.
var detClockBanned = map[string]map[string]string{
	"time": {
		"Now":       "sim.Engine.Now",
		"Since":     "sim.Engine.Now arithmetic",
		"Until":     "sim.Engine.Now arithmetic",
		"Sleep":     "sim.Engine.After",
		"After":     "sim.Engine.After",
		"AfterFunc": "sim.Engine.After",
		"Tick":      "sim.Engine.Every",
		"NewTimer":  "sim.Engine.After",
		"NewTicker": "sim.Engine.Every",
	},
	"math/rand": {
		"Int": "", "Intn": "", "Int31": "", "Int31n": "", "Int63": "", "Int63n": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "", "Seed": "", "Read": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint32": "", "Uint64": "", "UintN": "", "Uint64N": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "", "N": "",
	},
	"os": {
		"Getenv":    "explicit Config fields",
		"LookupEnv": "explicit Config fields",
		"Environ":   "explicit Config fields",
	},
}

func runDetClock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, name, ok := pkgFuncCall(pass, call)
			if !ok {
				return true
			}
			banned, ok := detClockBanned[pkgPath]
			if !ok {
				return true
			}
			repl, ok := banned[name]
			if !ok {
				return true
			}
			switch pkgPath {
			case "time":
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock inside the deterministic simulator; use %s",
					name, repl)
			case "math/rand", "math/rand/v2":
				pass.Reportf(call.Pos(),
					"rand.%s draws from the process-global generator inside the deterministic simulator; "+
						"use the scenario's seeded *rand.Rand", name)
			case "os":
				pass.Reportf(call.Pos(),
					"os.%s makes simulator behaviour depend on the process environment; use %s",
					name, repl)
			}
			return true
		})
	}
}
